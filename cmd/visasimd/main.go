// Command visasimd is the long-running simulation service: an HTTP daemon
// that accepts sweep cells (core.Config JSON), executes them on a bounded
// worker pool, and serves repeated cells from a content-addressed result
// cache — the simulator is deterministic, so a cached result is
// byte-identical to re-running the cell. With -store DIR the cache is
// backed by a persistent on-disk store (internal/store): results survive
// restarts, and a warm daemon serves them from disk without re-simulating.
//
// Endpoints:
//
//	POST /v1/sweeps           submit cells, returns a job ID
//	GET  /v1/jobs/{id}        poll job status and results
//	GET  /v1/jobs/{id}/stream NDJSON per-cell results as they resolve
//	GET  /healthz             liveness
//	GET  /metrics             expvar metrics (queue, cache hit ratio, cells/sec)
//	GET  /metrics/prom        the same metrics in Prometheus text format,
//	                          plus queue-wait/simulate/cache-serve histograms
//
// Logging is structured (-log-format text|json, -log-level debug|info|...);
// every line about a job carries the submission's sweep correlation ID
// (the X-Visasim-Sweep header, minted server-side when absent), so client,
// coordinator and daemon logs of one sweep grep together.
//
// Quickstart:
//
//	visasimd -addr :8080 &
//	curl -s localhost:8080/v1/sweeps -d '{"cells":[{"key":"demo",
//	  "config":{"Benchmarks":["gcc","mcf","vpr","perlbmk"],"Scheme":1,
//	  "MaxInstructions":100000}}]}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight jobs finish, queued
// jobs are canceled, new submissions get 503.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"visasim/internal/obs"
	"visasim/internal/server"
	"visasim/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		jobWorkers = flag.Int("job-workers", 2, "concurrently executing jobs")
		simWorkers = flag.Int("workers", 0, "concurrent simulations across all jobs (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "bounded job queue; beyond it submissions get 503")
		jobHistory = flag.Int("job-history", 256, "terminal jobs retained for polling; older ones are evicted")
		drainWait  = flag.Duration("drain", 10*time.Minute, "shutdown grace period for in-flight jobs")
		storeDir   = flag.String("store", "", "persist results to this directory; warm restarts serve from disk")
		storeMax   = flag.Int64("store-max-bytes", 0, "evict oldest store entries beyond this size (0 = unbounded)")
		cacheMax   = flag.Int("cache-entries", 0, "resolved results kept in memory, LRU-evicted beyond it (0 = default 4096, negative = unbounded)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log line format: text or json")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visasimd: %v\n", err)
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax})
		if err != nil {
			logger.Error("opening store failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		logger.Info("store opened", "dir", st.Dir(),
			"entries", st.Len(), "bytes", st.Bytes())
	}

	srv := server.New(server.Options{
		JobWorkers:   *jobWorkers,
		SimWorkers:   *simWorkers,
		QueueDepth:   *queueDepth,
		JobHistory:   *jobHistory,
		CacheEntries: *cacheMax,
		Store:        st,
		Logger:       logger,
	})
	// One daemon per process, so publishing to the global expvar registry
	// is safe here (the server library itself never does), and the metrics
	// also appear under /debug/vars alongside Go runtime stats.
	expvar.Publish("visasimd", srv.MetricsVar())

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr,
		"job_workers", *jobWorkers, "queue_depth", *queueDepth)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", *drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("drain failed", "err", err)
		os.Exit(1)
	}
}
