// Command visasimd is the long-running simulation service: an HTTP daemon
// that accepts sweep cells (core.Config JSON), executes them on a bounded
// worker pool, and serves repeated cells from a content-addressed result
// cache — the simulator is deterministic, so a cached result is
// byte-identical to re-running the cell. With -store DIR the cache is
// backed by a persistent on-disk store (internal/store): results survive
// restarts, and a warm daemon serves them from disk without re-simulating.
//
// Endpoints:
//
//	POST /v1/sweeps           submit cells, returns a job ID
//	GET  /v1/jobs/{id}        poll job status and results
//	GET  /v1/jobs/{id}/stream NDJSON per-cell results as they resolve
//	GET  /v1/tenants          tenant quotas and usage (with -tenants)
//	GET  /healthz             liveness
//	GET  /metrics             expvar metrics (queue, cache hit ratio, cells/sec)
//	GET  /metrics/prom        the same metrics in Prometheus text format,
//	                          plus queue-wait/simulate/cache-serve histograms
//
// Logging is structured (-log-format text|json, -log-level debug|info|...);
// every line about a job carries the submission's sweep correlation ID
// (the X-Visasim-Sweep header, minted server-side when absent), so client,
// coordinator and daemon logs of one sweep grep together.
//
// Quickstart:
//
//	visasimd -addr :8080 &
//	curl -s localhost:8080/v1/sweeps -d '{"cells":[{"key":"demo",
//	  "config":{"Benchmarks":["gcc","mcf","vpr","perlbmk"],"Scheme":1,
//	  "MaxInstructions":100000}}]}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/metrics
//
// Cluster mode: with -register URL the daemon joins a visasimcoord pool at
// startup (advertising -advertise, or a loopback URL derived from -addr)
// and deregisters at shutdown — no static backend lists. With -tenants FILE
// submissions must carry a known X-Visasim-Key API key; unknown keys get
// 401 and rate/quota rejections get 429 with Retry-After hints (the Go
// client backs off on them automatically).
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight jobs finish, queued
// jobs are canceled, new submissions get 503.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/obs"
	"visasim/internal/server"
	"visasim/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		jobWorkers = flag.Int("job-workers", 2, "concurrently executing jobs")
		simWorkers = flag.Int("workers", 0, "concurrent simulations across all jobs (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "bounded job queue; beyond it submissions get 503")
		jobHistory = flag.Int("job-history", 256, "terminal jobs retained for polling; older ones are evicted")
		drainWait  = flag.Duration("drain", 10*time.Minute, "shutdown grace period for in-flight jobs")
		storeDir   = flag.String("store", "", "persist results to this directory; warm restarts serve from disk")
		storeMax   = flag.Int64("store-max-bytes", 0, "evict oldest store entries beyond this size (0 = unbounded)")
		cacheMax   = flag.Int("cache-entries", 0, "resolved results kept in memory, LRU-evicted beyond it (0 = default 4096, negative = unbounded)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat  = flag.String("log-format", "text", "log line format: text or json")
		tenants    = flag.String("tenants", "", "tenant registry JSON; turns on per-tenant admission control (X-Visasim-Key auth, 429 on quota)")
		register   = flag.String("register", "", "visasimcoord base URL to self-register with at startup (and deregister from at shutdown)")
		advertise  = flag.String("advertise", "", "URL the coordinator should dial this daemon at (default derived from -addr on 127.0.0.1)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visasimd: %v\n", err)
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMax})
		if err != nil {
			logger.Error("opening store failed", "dir", *storeDir, "err", err)
			os.Exit(1)
		}
		logger.Info("store opened", "dir", st.Dir(),
			"entries", st.Len(), "bytes", st.Bytes())
	}

	var reg *cluster.Registry
	if *tenants != "" {
		var err error
		if reg, err = cluster.LoadRegistry(*tenants); err != nil {
			logger.Error("loading tenant registry failed", "path", *tenants, "err", err)
			os.Exit(1)
		}
		logger.Info("admission control on", "tenants", reg.Len(), "path", *tenants)
	}

	srv := server.New(server.Options{
		JobWorkers:   *jobWorkers,
		SimWorkers:   *simWorkers,
		QueueDepth:   *queueDepth,
		JobHistory:   *jobHistory,
		CacheEntries: *cacheMax,
		Store:        st,
		Tenants:      reg,
		Logger:       logger,
	})
	// One daemon per process, so publishing to the global expvar registry
	// is safe here (the server library itself never does), and the metrics
	// also appear under /debug/vars alongside Go runtime stats.
	expvar.Publish("visasimd", srv.MetricsVar())

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr,
		"job_workers", *jobWorkers, "queue_depth", *queueDepth)

	// Dynamic membership: hand our URL to the coordinator once we're
	// serving, and take it back at shutdown so the pool never routes to a
	// daemon that is gone. Registration retries briefly — daemon and
	// coordinator usually boot together.
	selfURL := *advertise
	if selfURL == "" {
		selfURL = deriveAdvertise(*addr)
	}
	if *register != "" {
		go func() {
			if err := postMembership(ctx, *register, "register", selfURL, 30*time.Second); err != nil {
				logger.Error("registering with coordinator failed",
					"coordinator", *register, "advertise", selfURL, "err", err)
				return
			}
			logger.Info("registered with coordinator",
				"coordinator", *register, "advertise", selfURL)
		}()
	}

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down", "drain", *drainWait)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if *register != "" {
		// Best effort: a dead coordinator should not block our own drain.
		if err := postMembership(shutdownCtx, *register, "deregister", selfURL, 5*time.Second); err != nil {
			logger.Warn("deregistering from coordinator failed",
				"coordinator", *register, "err", err)
		} else {
			logger.Info("deregistered from coordinator", "coordinator", *register)
		}
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("http shutdown", "err", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("drain failed", "err", err)
		os.Exit(1)
	}
}

// deriveAdvertise turns a listen address into a dialable loopback URL: a
// bare ":8080" (or a wildcard host) advertises 127.0.0.1. Daemons reachable
// on another interface pass -advertise explicitly.
func deriveAdvertise(addr string) string {
	host, port, err := splitHostPort(addr)
	if err != nil || host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + host + ":" + port
}

func splitHostPort(addr string) (host, port string, err error) {
	i := strings.LastIndex(addr, ":")
	if i < 0 {
		return "", "", fmt.Errorf("no port in %q", addr)
	}
	return strings.Trim(addr[:i], "[]"), addr[i+1:], nil
}

// postMembership POSTs {"url": selfURL} to the coordinator's
// /v1/backends/{op} endpoint, retrying until the deadline — at boot the
// coordinator may come up moments after the daemon.
func postMembership(ctx context.Context, coordURL, op, selfURL string, window time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, window)
	defer cancel()
	body, err := json.Marshal(map[string]string{"url": selfURL})
	if err != nil {
		return err
	}
	target := strings.TrimRight(coordURL, "/") + "/v1/backends/" + op
	client := &http.Client{Timeout: 5 * time.Second}
	for {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		resp, derr := client.Do(req)
		if derr == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			derr = fmt.Errorf("coordinator answered HTTP %d", resp.StatusCode)
		}
		select {
		case <-ctx.Done():
			return derr
		case <-time.After(500 * time.Millisecond):
		}
	}
}
