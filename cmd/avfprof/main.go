// Command avfprof performs the paper's offline instruction vulnerability
// profiling (§2.1) for one benchmark: it classifies every dynamic
// instruction as ACE or un-ACE over a post-retirement analysis window,
// collapses the classification to per-PC tags (the 1-bit ISA extension the
// VISA issue logic reads), and reports the resulting tag accuracy.
//
// Example:
//
//	avfprof -benchmark mcf -n 1000000 -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"visasim/internal/ace"
	"visasim/internal/core"
	"visasim/internal/workload"
)

func main() {
	var (
		bench    = flag.String("benchmark", "gcc", "benchmark to profile (see -list)")
		n        = flag.Uint64("n", 400_000, "dynamic instructions to classify")
		window   = flag.Int("window", ace.DefaultWindow, "post-retirement analysis window")
		top      = flag.Int("top", 0, "print the N static instructions with the most tag mismatches")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		saveFile = flag.String("save", "", "write the profile to this file")
		loadFile = flag.String("load", "", "read a previously saved profile instead of profiling")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			b := workload.MustGet(name)
			fmt.Printf("%-10s %s-intensive\n", name, b.Class)
		}
		return
	}

	b, err := workload.Get(*bench)
	if err != nil {
		fatal(err)
	}
	var prof *ace.Profile
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			fatal(err)
		}
		prof, err = ace.Load(f, b.Name, b.Params.Seed, 0)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		prof, err = core.ProfileFor(b, *n, *window)
		if err != nil {
			fatal(err)
		}
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fatal(err)
		}
		if err := prof.Save(f, b.Name, b.Params.Seed, *window); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "profile saved to %s\n", *saveFile)
	}

	fmt.Printf("benchmark          %s (%s-intensive)\n", b.Name, b.Class)
	fmt.Printf("dynamic instrs     %d (window %d)\n", prof.DynInstrs, *window)
	fmt.Printf("ACE fraction       %.3f\n", prof.ACEFraction())
	fmt.Printf("tag accuracy       %.3f (committed instances vs per-PC tags)\n", prof.Accuracy())
	fmt.Printf("windowing errors   %d late marks\n", prof.LateMarks)

	tagged := 0
	for _, v := range prof.Tag {
		if v {
			tagged++
		}
	}
	fmt.Printf("tagged PCs         %d of %d static instructions\n", tagged, len(prof.Tag))

	if *top > 0 {
		prog, err := b.Generate()
		if err != nil {
			fatal(err)
		}
		type row struct {
			idx      int
			mismatch uint64
		}
		var rows []row
		for i := range prog.Instrs {
			if prof.Tag[i] {
				rows = append(rows, row{i, prof.Instances[i] - prof.ACEInstances[i]})
			}
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].mismatch > rows[b].mismatch })
		if len(rows) > *top {
			rows = rows[:*top]
		}
		fmt.Printf("\ntop tag false positives (un-ACE instances under ACE-tagged PCs):\n")
		for _, r := range rows {
			fmt.Printf("  %8d mismatches  %6d/%6d ACE  %v\n",
				r.mismatch, prof.ACEInstances[r.idx], prof.Instances[r.idx],
				prog.Instrs[r.idx].String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "avfprof:", err)
	os.Exit(1)
}
