// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments [-n budget] [-workers N] [targets...]
//
// Targets: fig1 fig2 fig5 fig6 fig8 fig9 fig10 table1 table2 table3 all
// (default: all), plus `bench`, which measures simulator throughput and
// writes machine-readable records (see -bench-json, -cpuprofile, and
// -bench-min, which turns the run into a CI throughput-floor gate), and
// `explore`, which screens the design space through the analytical twin
// (internal/twin) and verifies the Pareto frontier through the simulator
// (see -explore-samples, -explore-seed, -explore-verify, -explore-json and
// DESIGN.md §11). The shapes — not the absolute values — are the
// reproduction target; EXPERIMENTS.md records the comparison against the
// paper.
//
// With -server, every sweep runs through a visasimd daemon instead of
// in-process, so repeated regenerations (and overlapping figures) hit the
// daemon's content-addressed result cache. With -backends URL,URL,... the
// sweeps instead shard across a cluster of daemons via the dispatch
// coordinator (least-loaded assignment, retry/failover, optional -hedge);
// add -store DIR to checkpoint completed cells to disk and -resume to skip
// cells already checkpointed by an earlier (possibly killed) run. `bench`
// always measures the local simulator and ignores all of these.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"visasim/internal/core"
	"visasim/internal/decision"
	"visasim/internal/dispatch"
	"visasim/internal/experiments"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/pipeline"
	"visasim/internal/server"
	"visasim/internal/store"
	"visasim/internal/workload"
)

func main() {
	var (
		budget        = flag.Uint64("n", experiments.DefaultBudget, "instructions per simulation")
		workers       = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		csvDir        = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		benchJSON     = flag.String("bench-json", "BENCH_pr1.json", "where the bench target writes throughput records")
		benchMin      = flag.Float64("bench-min", 0, "bench target: exit nonzero if any cell's cycles/sec falls below this floor (0 disables)")
		cpuProf       = flag.String("cpuprofile", "", "write a pprof CPU profile of the bench target to this file")
		serverURL     = flag.String("server", "", "run sweeps through a visasimd daemon at this base URL (e.g. http://localhost:8080)")
		serverTimeout = flag.Duration("server-timeout", time.Hour, "per-sweep deadline when using -server (0 disables)")
		backendsCSV   = flag.String("backends", "", "comma-separated visasimd base URLs; sweeps shard across them via the dispatch coordinator")
		storeDir      = flag.String("store", "", "with -backends: checkpoint completed cells to this directory")
		resume        = flag.Bool("resume", false, "with -backends and -store: skip cells already checkpointed")
		hedgeAfter    = flag.Duration("hedge", 0, "with -backends: re-dispatch straggler cells after this delay (0 disables)")
		logLevel      = flag.String("log-level", "warn", "minimum log level for -server/-backends sweeps: debug, info, warn, error")
		logFormat     = flag.String("log-format", "text", "log line format: text or json")
		traceLevel    = flag.Int("trace-level", 0, "record per-cell decision traces: 0 off, 1 decision edges, 2 adds per-sample observations (local sweeps only)")
		traceDir      = flag.String("trace-dir", "", "with -trace-level: write each cell's trace to DIR/<key>.vdt (default decision-traces)")

		exploreSamples = flag.Uint64("explore-samples", 0, "explore target: screen this many seeded samples instead of the full space (0 = exhaustive)")
		exploreSeed    = flag.Uint64("explore-seed", 1, "explore target: sampling seed")
		exploreVerify  = flag.Int("explore-verify", 8, "explore target: frontier points to verify through the simulator (0 = screen only)")
		exploreJSON    = flag.String("explore-json", "", "explore target: also write the full frontier report as JSON to this file")
		exploreOrgs    = flag.String("explore-orgs", "", "explore target: comma-separated IQ organizations to sweep (default all: unified-age,swque,partitioned)")
		exploreProts   = flag.String("explore-prots", "", "explore target: comma-separated IQ protection modes to sweep (default all: none,parity,ecc,partial-replication)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	// Ctrl-C aborts a remote sweep mid-flight (queued cells are skipped,
	// in-flight dispatches canceled) instead of letting it poll on; local
	// in-process sweeps are unaffected.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	p := experiments.Params{Budget: *budget, Workers: *workers}
	if *traceLevel > 0 {
		dir := *traceDir
		if dir == "" {
			dir = "decision-traces"
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		p.TraceLevel = *traceLevel
		p.TraceSink = func(key string, tr *decision.Trace) {
			// Cell keys embed "/" separators; flatten for the filesystem.
			path := filepath.Join(dir, strings.ReplaceAll(key, "/", "_")+".vdt")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: trace %s: %v\n", key, err)
				return
			}
			if err := tr.Encode(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "experiments: trace %s: %v\n", key, err)
				return
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: trace %s: %v\n", key, err)
			}
		}
	}
	switch {
	case *backendsCSV != "":
		var st *store.Store
		if *storeDir != "" {
			var err error
			st, err = store.Open(*storeDir, store.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: opening store: %v\n", err)
				os.Exit(1)
			}
		} else if *resume {
			fmt.Fprintln(os.Stderr, "experiments: -resume needs -store")
			os.Exit(1)
		}
		coord, err := dispatch.New(dispatch.Options{
			Backends:   strings.Split(*backendsCSV, ","),
			HedgeAfter: *hedgeAfter,
			Store:      st,
			Resume:     *resume,
			Logger:     logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer coord.Close()
		p.Runner = func(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
			return coord.RunContext(ctx, cells, opt)
		}
	case *serverURL != "":
		cli := &server.Client{BaseURL: strings.TrimRight(*serverURL, "/"),
			Timeout: *serverTimeout, Logger: logger}
		p.Runner = func(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
			return cli.RunContext(ctx, cells, opt)
		}
	}
	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{"table2", "table3", "fig1", "fig2", "table1",
			"fig5", "fig6", "fig8", "fig9", "fig10", "iqmatrix"}
	}

	for _, tgt := range targets {
		start := time.Now()
		if tgt == "bench" {
			out, err := runBench(p, *benchJSON, *cpuProf, *benchMin)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(out)
			fmt.Fprintf(os.Stderr, "[bench done in %v]\n\n", time.Since(start).Round(time.Millisecond))
			continue
		}
		if tgt == "explore" {
			out, err := runExplore(p, exploreParams{
				Samples: *exploreSamples,
				Seed:    *exploreSeed,
				Verify:  *exploreVerify,
				JSON:    *exploreJSON,
				Orgs:    *exploreOrgs,
				Prots:   *exploreProts,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: explore: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(out)
			fmt.Fprintf(os.Stderr, "[explore done in %v]\n\n", time.Since(start).Round(time.Millisecond))
			continue
		}
		out, csv, err := run(tgt, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", tgt, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *csvDir != "" && csv != nil {
			if err := writeCSV(*csvDir, tgt, csv); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", tgt, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", tgt, time.Since(start).Round(time.Millisecond))
	}
}

// csvWriter is satisfied by the figure results that have flat CSV forms.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

func writeCSV(dir, target string, c csvWriter) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, target+".csv"))
	if err != nil {
		return err
	}
	if err := c.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(target string, p experiments.Params) (string, csvWriter, error) {
	switch target {
	case "fig1":
		r, err := experiments.Fig1(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig2":
		r, err := experiments.Fig2(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig5":
		r, err := experiments.Fig5(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig6":
		r, err := experiments.Fig6(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig8":
		r, err := experiments.Fig8(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig9":
		r, err := experiments.Fig9(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig10":
		r, err := experiments.Fig10(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "table1":
		r, err := experiments.Table1(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "table2":
		return experiments.Table2(), nil, nil
	case "table3":
		return experiments.Table3(), nil, nil
	case "iqmatrix":
		r, err := experiments.IQMatrix(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "ext-rob":
		r, err := experiments.ExtensionROBDVM(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), nil, err
	case "ablations":
		var b strings.Builder
		or, err := experiments.AblationOracleTags(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(or.String() + "\n")
		tc, err := experiments.AblationTcache(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(tc.String() + "\n")
		iq, err := experiments.AblationIQSize(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(iq.String() + "\n")
		iv, err := experiments.AblationInterval(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(iv.String() + "\n")
		w, err := experiments.AblationWindow(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(w.String() + "\n")
		wd, err := experiments.AblationWidth(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(wd.String() + "\n")
		pr, err := experiments.AblationPredictor(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(pr.String())
		return b.String(), nil, nil
	default:
		return "", nil, fmt.Errorf("unknown target %q", target)
	}
}

// runBench measures simulator throughput (not simulated-machine behaviour):
// one baseline cell per workload category, run through the harness so the
// numbers include everything an experiment pays for. Records are written to
// jsonPath in the same schema as `make bench-throughput` (BENCH_pr1.json),
// keyed "throughput/<mix>", plus a "total" row covering the whole batch.
//
// A nonzero minCPS is a throughput floor on the batch's core-loop rate
// (the total row's SimCyclesPerSec — pipeline run time alone, excluding the
// one-time ACE profiling pass and workload synthesis, matching what the
// go-test BenchmarkSimulatorThroughput measures): if the batch falls below
// it, runBench returns an error so CI fails the build on a performance
// regression. Sim seconds accumulate per worker, so the figure is per-core
// whatever the worker count; the error lists per-cell rates for triage.
func runBench(p experiments.Params, jsonPath, cpuProfile string, minCPS float64) (string, error) {
	var cells []harness.Cell
	for _, name := range []string{"CPU-A", "MIX-A", "MEM-A"} {
		for _, m := range workload.Mixes() {
			if m.Name != name {
				continue
			}
			cells = append(cells, harness.Cell{
				Key: "throughput/" + m.Name,
				Cfg: core.Config{
					Benchmarks:      m.Benchmarks[:],
					Scheme:          core.SchemeBase,
					Policy:          pipeline.PolicyICOUNT,
					MaxInstructions: p.Budget,
				},
			})
		}
	}
	t0 := time.Now()
	_, stats, err := harness.RunStats(cells, harness.Options{
		Workers:    p.Workers,
		CPUProfile: cpuProfile,
	})
	if err != nil {
		return "", err
	}
	wall := time.Since(t0).Seconds()

	total := harness.CellStats{Seconds: wall}
	for _, st := range stats {
		total.Cycles += st.Cycles
		total.Instructions += st.Instructions
		total.SimSeconds += st.SimSeconds
	}
	if wall > 0 {
		total.CyclesPerSec = float64(total.Cycles) / wall
		total.InstrsPerSec = float64(total.Instructions) / wall
	}
	// Total sim seconds accumulate per-worker CPU time, so the total row's
	// sim rate stays a per-core figure whatever the worker count.
	if total.SimSeconds > 0 {
		total.SimCyclesPerSec = float64(total.Cycles) / total.SimSeconds
	}
	records := map[string]harness.CellStats{"total": total}
	for k, st := range stats {
		records[k] = st
	}
	if minCPS > 0 && total.SimCyclesPerSec < minCPS {
		return "", fmt.Errorf("throughput floor %.0f sim cycles/sec not met: total %.0f (per-cell: %s)",
			minCPS, total.SimCyclesPerSec, func() string {
				var parts []string
				for k, st := range stats {
					parts = append(parts, fmt.Sprintf("%s %.0f", k, st.SimCyclesPerSec))
				}
				sort.Strings(parts)
				return strings.Join(parts, ", ")
			}())
	}
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}

	keys := make([]string, 0, len(records))
	for k := range records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "Simulator throughput (budget %d, written to %s):\n", p.Budget, jsonPath)
	fmt.Fprintf(&b, "%-20s %12s %12s %10s %14s %14s\n", "cell", "cycles", "instrs", "seconds", "cycles/sec", "sim-cyc/sec")
	for _, k := range keys {
		st := records[k]
		fmt.Fprintf(&b, "%-20s %12d %12d %10.3f %14.0f %14.0f\n",
			k, st.Cycles, st.Instructions, st.Seconds, st.CyclesPerSec, st.SimCyclesPerSec)
	}
	return b.String(), nil
}
