// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments [-n budget] [-workers N] [targets...]
//
// Targets: fig1 fig2 fig5 fig6 fig8 fig9 fig10 table1 table2 table3 all
// (default: all). The shapes — not the absolute values — are the
// reproduction target; EXPERIMENTS.md records the comparison against the
// paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"visasim/internal/experiments"
)

func main() {
	var (
		budget  = flag.Uint64("n", experiments.DefaultBudget, "instructions per simulation")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		csvDir  = flag.String("csv", "", "also write machine-readable CSVs into this directory")
	)
	flag.Parse()

	p := experiments.Params{Budget: *budget, Workers: *workers}
	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{"table2", "table3", "fig1", "fig2", "table1",
			"fig5", "fig6", "fig8", "fig9", "fig10"}
	}

	for _, tgt := range targets {
		start := time.Now()
		out, csv, err := run(tgt, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", tgt, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *csvDir != "" && csv != nil {
			if err := writeCSV(*csvDir, tgt, csv); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", tgt, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", tgt, time.Since(start).Round(time.Millisecond))
	}
}

// csvWriter is satisfied by the figure results that have flat CSV forms.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

func writeCSV(dir, target string, c csvWriter) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, target+".csv"))
	if err != nil {
		return err
	}
	if err := c.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(target string, p experiments.Params) (string, csvWriter, error) {
	switch target {
	case "fig1":
		r, err := experiments.Fig1(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig2":
		r, err := experiments.Fig2(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig5":
		r, err := experiments.Fig5(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig6":
		r, err := experiments.Fig6(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig8":
		r, err := experiments.Fig8(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig9":
		r, err := experiments.Fig9(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "fig10":
		r, err := experiments.Fig10(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "table1":
		r, err := experiments.Table1(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), r, nil
	case "table2":
		return experiments.Table2(), nil, nil
	case "table3":
		return experiments.Table3(), nil, nil
	case "ext-rob":
		r, err := experiments.ExtensionROBDVM(p)
		if err != nil {
			return "", nil, err
		}
		return r.String(), nil, err
	case "ablations":
		var b strings.Builder
		or, err := experiments.AblationOracleTags(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(or.String() + "\n")
		tc, err := experiments.AblationTcache(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(tc.String() + "\n")
		iq, err := experiments.AblationIQSize(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(iq.String() + "\n")
		iv, err := experiments.AblationInterval(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(iv.String() + "\n")
		w, err := experiments.AblationWindow(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(w.String() + "\n")
		wd, err := experiments.AblationWidth(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(wd.String() + "\n")
		pr, err := experiments.AblationPredictor(p)
		if err != nil {
			return "", nil, err
		}
		b.WriteString(pr.String())
		return b.String(), nil, nil
	default:
		return "", nil, fmt.Errorf("unknown target %q", target)
	}
}
