package main

import (
	"fmt"
	"os"
	"strings"

	"visasim/internal/experiments"
	"visasim/internal/explore"
	"visasim/internal/twin"
)

// exploreParams carries the explore target's own flags alongside the
// shared experiment parameters.
type exploreParams struct {
	Samples uint64 // 0 = exhaustive enumeration of the default space
	Seed    uint64
	Verify  int    // frontier points to verify through the simulator (0 = none)
	JSON    string // optional machine-readable frontier report path
	Orgs    string // comma-separated IQ organizations ("" = all registered)
	Prots   string // comma-separated IQ protection modes ("" = all registered)
}

// runExplore screens the default design space through the analytical twin,
// keeps the Pareto frontier over (IPC, IQ AVF, area), verifies a spread of
// frontier points through p.Runner (local harness, visasimd, or dispatch
// cluster — whatever the shared flags selected), and renders the frontier
// table.
func runExplore(p experiments.Params, ep exploreParams) (string, error) {
	model, err := twin.Default()
	if err != nil {
		return "", fmt.Errorf("loading twin model: %w", err)
	}
	space := explore.DefaultSpace()
	if orgs, err := explore.ParseOrgs(ep.Orgs); err != nil {
		return "", err
	} else if orgs != nil {
		space.Orgs = orgs
	}
	if prots, err := explore.ParseProts(ep.Prots); err != nil {
		return "", err
	} else if prots != nil {
		space.Prots = prots
	}
	enum, err := space.Compile(model)
	if err != nil {
		return "", err
	}
	res, err := explore.Screen(model, enum, explore.Options{
		Workers: p.Workers,
		Samples: int64(ep.Samples),
		Seed:    ep.Seed,
	})
	if err != nil {
		return "", err
	}

	var verified []explore.Verified
	if ep.Verify > 0 {
		sel := explore.Select(res.Frontier, ep.Verify)
		verified, err = explore.Verify(model, sel, p.Runner, p.Workers)
		if err != nil {
			return "", err
		}
	}

	if ep.JSON != "" {
		blob, err := explore.MarshalReport(&explore.RunReport{
			Model:      model.Version,
			Budget:     model.Budget,
			SpaceSize:  res.Size,
			Screened:   res.Screened,
			ElapsedSec: res.Elapsed.Seconds(),
			Frontier:   res.Frontier,
			Verified:   verified,
		})
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(ep.JSON, blob, 0o644); err != nil {
			return "", err
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Design-space exploration (twin model v%d, verify budget %d instructions):\n",
		model.Version, model.Budget)
	b.WriteString(explore.Summary(res) + "\n\n")
	show := res.Frontier
	const tableCap = 40
	if len(show) > tableCap && ep.Verify == 0 {
		show = explore.Select(show, tableCap)
		fmt.Fprintf(&b, "(showing %d of %d frontier points, spread by area; use -explore-json for all)\n",
			len(show), len(res.Frontier))
	} else if ep.Verify > 0 {
		show = explore.Select(res.Frontier, ep.Verify)
	}
	if err := explore.WriteFrontier(&b, show, verified); err != nil {
		return "", err
	}
	return b.String(), nil
}
