package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"visasim/internal/dispatch"
)

// localPool is the autoscaler's actuator: it spawns visasimd processes on
// loopback ports and registers them with the coordinator, and drains the
// most recently spawned one away on scale-down. Only processes this pool
// started are ever stopped — externally registered backends are not its to
// manage.
type localPool struct {
	coord *dispatch.Coordinator
	bin   string
	args  []string
	log   *slog.Logger

	mu    sync.Mutex
	procs []*localProc // spawn order; scale-down pops the newest
}

type localProc struct {
	url string
	cmd *exec.Cmd
}

func newLocalPool(coord *dispatch.Coordinator, bin string, args []string, log *slog.Logger) *localPool {
	return &localPool{coord: coord, bin: bin, args: args, log: log}
}

// ScaleUp starts one visasimd on a fresh loopback port, waits for it to
// answer /healthz, and joins it to the pool.
func (p *localPool) ScaleUp(ctx context.Context) error {
	port, err := freePort()
	if err != nil {
		return fmt.Errorf("picking a port: %w", err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	url := "http://" + addr
	args := append([]string{"-addr", addr}, p.args...)
	cmd := exec.Command(p.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawning %s: %w", p.bin, err)
	}
	if err := waitHealthy(ctx, url); err != nil {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		return fmt.Errorf("spawned backend %s never became healthy: %w", url, err)
	}
	if err := p.coord.Join(url); err != nil {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		return err
	}
	p.mu.Lock()
	p.procs = append(p.procs, &localProc{url: url, cmd: cmd})
	p.mu.Unlock()
	p.log.Info("autoscaler spawned backend", "url", url, "pid", cmd.Process.Pid)
	return nil
}

// ScaleDown drains the most recently spawned local backend out of the pool
// and stops its process. A pool with no local spawns holds instead of
// touching backends somebody else registered.
func (p *localPool) ScaleDown(ctx context.Context) error {
	p.mu.Lock()
	if len(p.procs) == 0 {
		p.mu.Unlock()
		return nil
	}
	proc := p.procs[len(p.procs)-1]
	p.procs = p.procs[:len(p.procs)-1]
	p.mu.Unlock()

	if err := p.coord.Drain(ctx, proc.url); err != nil {
		p.log.Warn("draining spawned backend failed; stopping it anyway",
			"url", proc.url, "err", err)
	}
	p.stop(proc)
	p.log.Info("autoscaler retired backend", "url", proc.url)
	return nil
}

// StopAll terminates every spawned backend at coordinator shutdown.
func (p *localPool) StopAll() {
	p.mu.Lock()
	procs := p.procs
	p.procs = nil
	p.mu.Unlock()
	for _, proc := range procs {
		p.stop(proc)
	}
}

// stop asks the daemon to exit gracefully (it drains in-flight jobs on
// SIGTERM) and force-kills after a grace period.
func (p *localPool) stop(proc *localProc) {
	proc.cmd.Process.Signal(os.Interrupt) //nolint:errcheck
	done := make(chan struct{})
	go func() { proc.cmd.Wait(); close(done) }() //nolint:errcheck
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		proc.cmd.Process.Kill() //nolint:errcheck
		<-done
	}
}

// freePort asks the kernel for an unused loopback port.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// waitHealthy polls url/healthz until it answers 200 or ctx expires.
func waitHealthy(ctx context.Context, url string) error {
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return err
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// splitCSV splits a comma-separated flag into trimmed, non-empty parts.
func splitCSV(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitSpace splits a space-separated flag likewise.
func splitSpace(s string) []string {
	return strings.Fields(s)
}
