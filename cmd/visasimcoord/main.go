// Command visasimcoord is the cluster control plane: a long-running
// coordinator daemon that schedules sweeps across a pool of visasimd
// backends with SLO-aware priority queuing, multi-tenant admission control,
// dynamic membership, and cache-affinity routing (internal/dispatch +
// internal/cluster).
//
// Unlike linking the coordinator into a client process, visasimcoord owns a
// registration-based pool: backends join by POSTing their URL (visasimd
// does this itself with -register), operators drain them out gracefully
// (`visasimctl drain`), and -backends merely seeds the pool. Scheduling and
// routing never change results — the simulator is deterministic, so a sweep
// dispatched through any policy is byte-identical to a local harness run.
//
// Endpoints (see dispatch.Coordinator.Control):
//
//	GET  /healthz                 liveness
//	GET  /v1/backends             pool membership and health
//	POST /v1/backends/register    {"url": ...} join after a handshake probe
//	POST /v1/backends/deregister  {"url": ...} leave immediately
//	POST /v1/backends/drain       {"url": ...} finish in-flight work, then leave
//	GET  /v1/tenants              tenant quotas and usage (with -tenants)
//	POST /v1/dispatch             run a sweep through the scheduler
//	GET  /metrics, /metrics/prom  coordinator metrics (expvar JSON / Prometheus)
//
// With -tenants FILE every dispatch must carry a known X-Visasim-Key; rate
// or quota rejections answer 429 with Retry-After hints. -scheduler picks
// the queue discipline (priority, sjf, fcfs) — sjf costs cells through the
// analytical twin. With -autoscale-max N the coordinator runs an autoscaler
// that spawns local visasimd processes (-visasimd-bin) when the queue
// backs up and drains them away after a sustained idle period.
//
// Quickstart:
//
//	visasimcoord -addr :9090 &
//	visasimd -addr :8081 -register http://localhost:9090 &
//	visasimd -addr :8082 -register http://localhost:9090 &
//	visasimctl sweep -coord http://localhost:9090 -cells cells.json
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/dispatch"
	"visasim/internal/obs"
	"visasim/internal/store"
	"visasim/internal/twin"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		backendsCSV = flag.String("backends", "", "comma-separated visasimd URLs seeding the pool (may be empty: backends register themselves)")
		tenantsPath = flag.String("tenants", "", "tenant registry JSON; turns on admission control")
		scheduler   = flag.String("scheduler", "priority", "queue discipline: priority, sjf, or fcfs")
		routing     = flag.String("routing", "least-loaded", "backend routing: least-loaded, affinity, or random")
		workers     = flag.Int("workers", 0, "concurrently in-flight dispatch groups (0 = 4 per seed backend, floor 8)")
		hedge       = flag.Duration("hedge", 0, "re-dispatch straggler cells after this delay (0 disables)")
		cellTimeout = flag.Duration("timeout", 10*time.Minute, "per-cell dispatch attempt deadline")
		storeDir    = flag.String("store", "", "checkpoint completed cells to this directory")
		seed        = flag.Int64("seed", 0, "backoff-jitter RNG seed (0 = from the clock)")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logFormat   = flag.String("log-format", "text", "log line format: text or json")

		asMin   = flag.Int("autoscale-min", 1, "autoscaler: minimum backend count")
		asMax   = flag.Int("autoscale-max", 0, "autoscaler: maximum backend count (0 disables autoscaling)")
		asDepth = flag.Int("autoscale-depth", 4, "autoscaler: queue depth that triggers a scale-up")
		asIdle  = flag.Duration("autoscale-idle", 30*time.Second, "autoscaler: idle period before a scale-down")
		asTick  = flag.Duration("autoscale-interval", time.Second, "autoscaler: control-loop sampling interval")
		simBin  = flag.String("visasimd-bin", "visasimd", "visasimd binary the autoscaler spawns (resolved via PATH)")
		simArgs = flag.String("visasimd-args", "", "extra space-separated flags for spawned visasimd processes")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visasimcoord: %v\n", err)
		os.Exit(2)
	}

	opt := dispatch.Options{
		Backends:    splitCSV(*backendsCSV),
		Dynamic:     true, // registration-based membership is the point
		HedgeAfter:  *hedge,
		Workers:     *workers,
		CellTimeout: *cellTimeout,
		Seed:        *seed,
		Logger:      logger,
	}
	if opt.Routing, err = dispatch.ParseRouting(*routing); err != nil {
		logger.Error("bad -routing", "err", err)
		os.Exit(2)
	}
	if opt.Ordering, err = cluster.ParseOrdering(*scheduler); err != nil {
		logger.Error("bad -scheduler", "err", err)
		os.Exit(2)
	}
	if opt.Ordering == cluster.OrderSJF {
		// Shortest-job-first costs cells through the analytical twin;
		// off-model cells fall back to their instruction budget inside
		// TwinCost, and a missing model falls back entirely.
		if model, terr := twin.Default(); terr == nil {
			opt.Cost = cluster.TwinCost(model)
		} else {
			logger.Warn("analytical twin unavailable; sjf costs by instruction budget", "err", terr)
		}
	}
	if *tenantsPath != "" {
		reg, lerr := cluster.LoadRegistry(*tenantsPath)
		if lerr != nil {
			logger.Error("loading tenant registry failed", "path", *tenantsPath, "err", lerr)
			os.Exit(1)
		}
		opt.Admission = cluster.NewAdmission(reg)
		logger.Info("admission control on", "tenants", reg.Len(), "path", *tenantsPath)
	}
	if *storeDir != "" {
		st, serr := store.Open(*storeDir, store.Options{})
		if serr != nil {
			logger.Error("opening store failed", "dir", *storeDir, "err", serr)
			os.Exit(1)
		}
		opt.Store = st
	}

	coord, err := dispatch.New(opt)
	if err != nil {
		logger.Error("starting coordinator failed", "err", err)
		os.Exit(1)
	}
	defer coord.Close()
	expvar.Publish("visasimcoord", coord.MetricsVar())

	var scaler *cluster.Autoscaler
	var pool *localPool
	if *asMax > 0 {
		pool = newLocalPool(coord, *simBin, splitSpace(*simArgs), logger)
		defer pool.StopAll()
		scaler = cluster.NewAutoscaler(coord, pool, cluster.AutoscalerOptions{
			Min:           *asMin,
			Max:           *asMax,
			ScaleUpDepth:  *asDepth,
			ScaleDownIdle: *asIdle,
			Interval:      *asTick,
			Logger:        logger,
		})
		scaler.Start()
		defer scaler.Close()
		logger.Info("autoscaler on", "min", *asMin, "max", *asMax,
			"scale_up_depth", *asDepth, "scale_down_idle", *asIdle, "bin", *simBin)
	}

	mux := http.NewServeMux()
	mux.Handle("/", coord.Control())
	mux.Handle("GET /debug/vars", expvar.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "seed_backends", len(opt.Backends),
		"scheduler", *scheduler, "routing", *routing)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("http shutdown", "err", err)
	}
}
