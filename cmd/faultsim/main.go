// Command faultsim runs a statistical soft-error injection campaign against
// the simulated issue queue: uniformly random (cycle, entry, bit) strikes
// classified by ground-truth ACE analysis. The corrupting fraction is the
// empirical AVF; it converges on the simulator's accounted AVF, connecting
// the paper's AVF numbers to actual upset outcomes.
//
// Example:
//
//	faultsim -mix MEM-A -n 200000 -rate 200
//	faultsim -mix CPU-A -scheme visa+opt2     # protected machine
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/inject"
	"visasim/internal/pipeline"
	"visasim/internal/trace"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

func main() {
	var (
		mixName    = flag.String("mix", "CPU-A", "Table 3 workload mix")
		schemeName = flag.String("scheme", "base", "reliability scheme: base, visa, visa+opt1, visa+opt2")
		budget     = flag.Uint64("n", 200_000, "instructions to commit during the campaign")
		rate       = flag.Float64("rate", 200, "expected strikes per 1000 cycles")
		seed       = flag.Uint64("seed", 1, "strike-stream seed")
		verbose    = flag.Bool("v", false, "log every corrupting strike")
	)
	flag.Parse()

	var mix *workload.Mix
	for _, m := range workload.Mixes() {
		if strings.EqualFold(m.Name, *mixName) {
			mm := m
			mix = &mm
			break
		}
	}
	if mix == nil {
		fatal(fmt.Errorf("unknown mix %q", *mixName))
	}

	sched := uarch.SchedOldestFirst
	var ctrl pipeline.Controller
	switch strings.ToLower(*schemeName) {
	case "base":
	case "visa":
		sched = uarch.SchedVISA
	case "visa+opt1", "visa+opt2":
		// Controllers live in internal/alloc; reuse core's wiring by
		// refusing here to keep this tool simple.
		fatal(fmt.Errorf("faultsim supports base and visa; use cmd/visasim for %s AVF", *schemeName))
	default:
		fatal(fmt.Errorf("unknown scheme %q", *schemeName))
	}

	streams := make([]*trace.Stream, 4)
	for i, name := range mix.Benchmarks {
		b, err := workload.Get(name)
		if err != nil {
			fatal(err)
		}
		prof, err := core.ProfileFor(b, *budget+8192, ace.DefaultWindow)
		if err != nil {
			fatal(err)
		}
		prog, err := b.Generate()
		if err != nil {
			fatal(err)
		}
		prof.Apply(prog)
		streams[i] = trace.NewStream(trace.NewExecutor(prog, b.Params.Seed, i), prof.Bits)
	}
	proc, err := pipeline.New(pipeline.Params{
		Machine:         config.Default(),
		Scheduler:       sched,
		Policy:          pipeline.PolicyICOUNT,
		Controller:      ctrl,
		Streams:         streams,
		MaxInstructions: *budget,
	})
	if err != nil {
		fatal(err)
	}

	opts := inject.Options{
		Instructions:     *budget,
		StrikesPerKCycle: *rate,
		Seed:             *seed,
	}
	if *verbose {
		opts.Observer = func(s inject.Strike) {
			if s.Outcome == inject.Corrupting {
				fmt.Printf("cycle %-10d slot %-3d bit %-3d CORRUPTING\n", s.Cycle, s.Slot, s.Bit)
			}
		}
	}
	c, err := inject.Run(proc, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload   %s (%s)\n", mix.Name, strings.Join(mix.Benchmarks[:], ","))
	fmt.Printf("scheme     %s\n", *schemeName)
	fmt.Println(c.String())
	fmt.Printf("\ninterpretation: of %d simulated upsets in the IQ, %.1f%% would corrupt\n",
		c.Trials, 100*c.EmpiricalAVF())
	fmt.Printf("architectural state; the rest land on idle entries, wrong-path\n")
	fmt.Printf("instructions, or dynamically dead (un-ACE) payload bits.\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultsim:", err)
	os.Exit(1)
}
