// Command visasim runs one SMT simulation: a workload (a Table 3 mix name
// or an explicit comma-separated benchmark list) under a reliability scheme
// and fetch policy, printing performance and vulnerability results.
//
// Examples:
//
//	visasim -mix CPU-A
//	visasim -benchmarks mcf,gcc,swim,perlbmk -scheme visa+opt2 -policy FLUSH
//	visasim -mix MEM-B -scheme dvm -dvm-target-frac 0.5 -n 400000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

func main() {
	var (
		mixName    = flag.String("mix", "", "Table 3 workload mix (CPU-A … MEM-C)")
		benchList  = flag.String("benchmarks", "", "comma-separated benchmark list (alternative to -mix)")
		schemeName = flag.String("scheme", "base", "reliability scheme: base, visa, visa+opt1, visa+opt2, dvm, dvm-static")
		polName    = flag.String("policy", "ICOUNT", "fetch policy: ICOUNT, STALL, FLUSH, DG, PDG")
		budget     = flag.Uint64("n", core.DefaultInstructions, "committed instructions to simulate (after warmup)")
		warmup     = flag.Int64("warmup", 0, "warmup instructions (0 = budget/4, negative disables)")
		targetFrac = flag.Float64("dvm-target-frac", 0.5, "DVM reliability target as a fraction of the baseline MaxIQ_AVF")
		ratio      = flag.Float64("dvm-static-ratio", 1.5, "wq_ratio for the static DVM variant")
		intervals  = flag.Bool("intervals", false, "print per-interval statistics")
		jsonOut    = flag.Bool("json", false, "emit the full result as JSON instead of text")
		cfgPath    = flag.String("config", "", "machine configuration JSON file (default: the paper's machine)")
		iqOrg      = flag.String("iq-org", "", "issue-queue organization: unified-age, swque, partitioned (default: unified-age)")
		iqWM       = flag.Int("iq-watermark", 0, "per-thread entry cap for -iq-org partitioned (0 = default 17)")
		iqProt     = flag.String("iq-protection", "", "issue-queue protection: none, parity, ecc, partial-replication (default: none)")
		traceLvl   = flag.Int("trace-level", 0, "record a decision trace: 0 off, 1 decision edges, 2 adds per-sample observations")
		traceOut   = flag.String("trace-out", "", "decision trace output file (default decisions.vdt when -trace-level > 0)")
	)
	flag.Parse()

	benchmarks, err := resolveWorkload(*mixName, *benchList)
	if err != nil {
		fatal(err)
	}
	scheme, err := parseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	policy, err := parsePolicy(*polName)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{
		Benchmarks:      benchmarks,
		Scheme:          scheme,
		Policy:          policy,
		MaxInstructions: *budget,
		Warmup:          *warmup,
		DVMStaticRatio:  *ratio,
	}
	if *cfgPath != "" {
		data, err := os.ReadFile(*cfgPath)
		if err != nil {
			fatal(err)
		}
		m, err := config.Parse(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *cfgPath, err))
		}
		cfg.Machine = &m
	}
	if *iqOrg != "" || *iqWM != 0 || *iqProt != "" {
		// Overlay the IQ axes on whatever machine -config selected.
		m := config.Default()
		if cfg.Machine != nil {
			m = *cfg.Machine
		}
		if *iqOrg != "" {
			m.IQOrg = *iqOrg
		}
		if *iqWM != 0 {
			m.IQWatermark = *iqWM
		}
		if *iqProt != "" {
			m.IQProtection = *iqProt
		}
		m = m.Canonical()
		if err := m.Validate(); err != nil {
			fatal(err)
		}
		cfg.Machine = &m
	}
	if scheme == core.SchemeDVM || scheme == core.SchemeDVMStatic {
		// DVM needs an absolute target: derive it from a baseline run.
		fmt.Fprintf(os.Stderr, "measuring baseline MaxIQ_AVF for the DVM target...\n")
		base := cfg
		base.Scheme = core.SchemeBase
		b, err := core.Run(base)
		if err != nil {
			fatal(err)
		}
		cfg.DVMTarget = *targetFrac * b.MaxIQAVF
		fmt.Fprintf(os.Stderr, "MaxIQ_AVF %.4f → target %.4f\n", b.MaxIQAVF, cfg.DVMTarget)
	}

	res, tr, err := core.RunTraced(cfg, core.RunOptions{TraceLevel: *traceLvl})
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		path := *traceOut
		if path == "" {
			path = "decisions.vdt"
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tr.Encode(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "decision trace: %d events → %s (inspect with `tracedump show -in %s`)\n",
			len(tr.Events), path, path)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	printResult(res, cfg)
	if *intervals {
		fmt.Printf("\n%-6s %-8s %-8s %-10s %-8s\n", "ivl", "IPC", "RQL", "L2miss", "IQ AVF")
		for _, iv := range res.Intervals {
			fmt.Printf("%-6d %-8.2f %-8.1f %-10d %-8.4f\n",
				iv.Index, iv.IPC, iv.AvgReadyLen, iv.L2Misses, iv.IQAVF)
		}
	}
}

func resolveWorkload(mixName, benchList string) ([]string, error) {
	switch {
	case mixName != "" && benchList != "":
		return nil, fmt.Errorf("use either -mix or -benchmarks, not both")
	case mixName != "":
		for _, m := range workload.Mixes() {
			if strings.EqualFold(m.Name, mixName) {
				return m.Benchmarks[:], nil
			}
		}
		return nil, fmt.Errorf("unknown mix %q (want one of CPU-A..MEM-C)", mixName)
	case benchList != "":
		return strings.Split(benchList, ","), nil
	default:
		return workload.Mixes()[0].Benchmarks[:], nil // CPU-A
	}
}

func parseScheme(s string) (core.Scheme, error) {
	for v := core.Scheme(0); int(v) < core.NumSchemes; v++ {
		if strings.EqualFold(v.String(), s) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parsePolicy(s string) (pipeline.FetchPolicyKind, error) {
	for _, p := range pipeline.AllPolicies() {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown fetch policy %q", s)
}

func printResult(r *core.Result, cfg core.Config) {
	fmt.Printf("workload        %s\n", strings.Join(r.Benchmarks, ","))
	fmt.Printf("scheme/policy   %v / %v\n", r.Scheme, r.Policy)
	if cfg.Machine != nil {
		m := cfg.Machine.Canonical()
		if m.IQOrg != config.OrgUnifiedAGE || m.IQProtection != config.ProtNone {
			line := fmt.Sprintf("IQ org/prot     %s", m.IQOrg)
			if m.IQOrg == config.OrgPartitioned {
				line += fmt.Sprintf(" (watermark %d)", m.IQWatermark)
			}
			fmt.Printf("%s / %s\n", line, m.IQProtection)
		}
	}
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("throughput IPC  %.3f\n", r.ThroughputIPC)
	fmt.Printf("harmonic IPC    %.3f\n", r.HarmonicIPC)
	fmt.Printf("IQ AVF          %.4f (max interval %.4f, tag-estimated %.4f)\n",
		r.IQAVF, r.MaxIQAVF, r.IQAVFTagged)
	fmt.Printf("ROB/RF/FU AVF   %.4f / %.4f / %.4f\n", r.ROBAVF, r.RFAVF, r.FUAVF)
	fmt.Printf("ACE fraction    %.3f  (tag accuracy %.3f committed, %.3f incl. squashed)\n",
		r.ProfileACEFraction, r.CommittedTagAccuracy, r.CombinedTagAccuracy())
	fmt.Printf("mispredict rate %.3f  wrong-path fetched %d  squashed %d  flushes %d\n",
		r.MispredictRate, r.WrongPathFetched, r.Squashed, r.Flushes)
	fmt.Printf("L1D/L2/DTLB     %.3f / %.3f / %.3f miss   L2 misses %d\n",
		r.L1DMissRate, r.L2MissRate, r.DTLBMissRate, r.L2Misses)
	fmt.Printf("IQ occupancy    %.1f mean, ready %.1f mean\n", r.MeanIQOccupancy, r.MeanReadyLen)
	if cfg.DVMTarget > 0 {
		fmt.Printf("DVM             target %.4f  PVE %.1f%%  mean wq_ratio %.2f\n",
			cfg.DVMTarget, 100*r.PVE(cfg.DVMTarget), r.DVMMeanRatio)
	}
	for i, c := range r.Commits {
		share := 0.0
		if i < len(r.IQThreadShare) {
			share = r.IQThreadShare[i]
		}
		fmt.Printf("thread %d        %-8s %10d commits (IPC %.3f, %4.1f%% of IQ vulnerability)\n",
			i, r.Benchmarks[i], c, float64(c)/float64(r.Cycles), 100*share)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "visasim:", err)
	os.Exit(1)
}
