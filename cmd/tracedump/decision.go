package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"visasim/internal/decision"
	"visasim/internal/replay"
)

func readTrace(path string) (*decision.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := decision.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// inputPath resolves a subcommand's trace file: the -in flag or a single
// positional argument.
func inputPath(fs *flag.FlagSet, in, sub string) string {
	switch {
	case in != "" && fs.NArg() == 0:
		return in
	case in == "" && fs.NArg() == 1:
		return fs.Arg(0)
	default:
		fatal(fmt.Errorf("%s: want one trace file (-in FILE or a positional argument)", sub))
		panic("unreachable")
	}
}

func writeTrace(path string, tr *decision.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// cmdShow decodes and pretty-prints a recorded decision trace.
func cmdShow(args []string) {
	fs := flag.NewFlagSet("tracedump show", flag.ExitOnError)
	var (
		in       = fs.String("in", "", "decision trace file (.vdt)")
		ndjson   = fs.Bool("ndjson", false, "emit NDJSON instead of the table")
		measured = fs.Bool("measured", false, "only events in the measured region (after warmup)")
	)
	fs.Parse(args)
	tr, err := readTrace(inputPath(fs, *in, "show"))
	if err != nil {
		fatal(err)
	}
	if *measured {
		tr.Events = tr.EventsFrom(tr.MeasureStart)
	}
	if *ndjson {
		if err := tr.WriteNDJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	printTrace(tr)
}

func printTrace(tr *decision.Trace) {
	fmt.Printf("cell            %s\n", orDash(tr.CellKey))
	fmt.Printf("scheme/policy   %s / %s  (controller %s)\n", tr.Scheme, tr.Policy, orDash(tr.Controller))
	fmt.Printf("config hash     %s\n", orDash(tr.ConfigHash))
	fmt.Printf("trace level     %d   measure start cycle %d\n", tr.Level, tr.MeasureStart)
	fmt.Printf("events          %d\n\n", len(tr.Events))
	fmt.Printf("%-10s %-14s %-3s %-5s %-22s %-24s %s\n",
		"cycle", "kind", "fcd", "ivl", "iq(r/w)", "action", "avf(sample/interval)")
	for _, ev := range tr.Events {
		forced := ""
		if ev.Forced {
			forced = "F"
		}
		fmt.Printf("%-10d %-14s %-3s %-5d %-22s %-24s %.4f / %.4f\n",
			ev.Cycle, ev.Kind, forced, ev.Inputs.IntervalIndex,
			fmt.Sprintf("%d (%d/%d)", ev.Inputs.IQLen, ev.Inputs.ReadyLen, ev.Inputs.WaitingLen),
			fmtAction(ev.Action),
			ev.Inputs.SampleAVF, ev.Inputs.IntervalAVF)
	}
	s := tr.Summary
	fmt.Printf("\nsummary: %d cycles, %d commits, IPC %.3f, IQ AVF %.4f (max %.4f), ROB AVF %.4f, %d switches, %d triggers\n",
		s.Cycles, s.Commits, s.ThroughputIPC, s.IQAVF, s.MaxIQAVF, s.ROBAVF, s.PolicySwitches, s.DVMTriggers)
}

func fmtAction(a decision.Action) string {
	flush := "icount"
	if a.UseFlush {
		flush = "flush"
	}
	return fmt.Sprintf("iql=%d wq=%d %s gate=%08b", a.IQLCap, a.WaitingCap, flush, a.GateMask)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// cmdDiff compares two decision traces: where the event streams diverge and
// how the run summaries differ.
func cmdDiff(args []string) {
	fs := flag.NewFlagSet("tracedump diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff: want exactly two trace files, got %d", fs.NArg()))
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		fatal(err)
	}

	if a.ConfigHash != b.ConfigHash {
		fmt.Printf("config hash     %s vs %s (different cells)\n", orDash(a.ConfigHash), orDash(b.ConfigHash))
	}
	fmt.Printf("events          %d vs %d\n", len(a.Events), len(b.Events))
	div := -1
	n := min(len(a.Events), len(b.Events))
	for i := 0; i < n; i++ {
		if a.Events[i] != b.Events[i] {
			div = i
			break
		}
	}
	switch {
	case div >= 0:
		fmt.Printf("first diverging event: #%d\n  %s: cycle %d %s %s\n  %s: cycle %d %s %s\n",
			div,
			fs.Arg(0), a.Events[div].Cycle, a.Events[div].Kind, fmtAction(a.Events[div].Action),
			fs.Arg(1), b.Events[div].Cycle, b.Events[div].Kind, fmtAction(b.Events[div].Action))
	case len(a.Events) != len(b.Events):
		fmt.Printf("event streams agree for %d events, then one trace ends\n", n)
	default:
		fmt.Printf("event streams identical\n")
	}

	d := replay.SummaryDiff(a.Summary, b.Summary)
	if d.Zero() {
		fmt.Printf("summaries identical\n")
		return
	}
	fmt.Printf("summary deltas (%s − %s):\n", fs.Arg(1), fs.Arg(0))
	printDiff(d)
}

func printDiff(d replay.Diff) {
	fmt.Printf("  cycles          %+d\n", d.DCycles)
	fmt.Printf("  commits         %+d\n", d.DCommits)
	fmt.Printf("  throughput IPC  %+.4f\n", d.DThroughputIPC)
	fmt.Printf("  IQ AVF          %+.4f   (max interval %+.4f)\n", d.DIQAVF, d.DMaxIQAVF)
	fmt.Printf("  ROB AVF         %+.4f\n", d.DROBAVF)
	fmt.Printf("  policy switches %+d   dvm triggers %+d\n", d.DPolicySwitches, d.DDVMTriggers)
}

// cmdReplay re-runs the cell recorded in a trace — untouched or with the
// first K decisions flipped — and reports the outcome.
func cmdReplay(args []string) {
	fs := flag.NewFlagSet("tracedump replay", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "decision trace file (.vdt)")
		k       = fs.Int("counterfactual-k", 0, "flip the first K recorded decisions (0 = untouched replay)")
		out     = fs.String("out", "", "write the replay's trace here (.vdt)")
		jsonOut = fs.Bool("json", false, "emit the outcome as JSON")
	)
	fs.Parse(args)
	tr, err := readTrace(inputPath(fs, *in, "replay"))
	if err != nil {
		fatal(err)
	}

	if *k <= 0 {
		_, alt, err := replay.Replay(tr, nil)
		if err != nil {
			fatal(err)
		}
		d := replay.SummaryDiff(tr.Summary, alt.Summary)
		if !d.Zero() {
			fmt.Printf("untouched replay DIVERGED from the recorded run:\n")
			printDiff(d)
			os.Exit(1)
		}
		fmt.Printf("untouched replay reproduced the recorded run (%d events, %d cycles)\n",
			len(alt.Events), alt.Summary.Cycles)
		if *out != "" {
			if err := writeTrace(*out, alt); err != nil {
				fatal(err)
			}
		}
		return
	}

	outc, err := replay.Counterfactual(tr, *k)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := writeTrace(*out, outc.Trace); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outc); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("counterfactual replay: %d forced decision(s)\n", len(outc.Forced))
	for i, f := range outc.Forced {
		until := fmt.Sprintf("%d", f.Until)
		if f.Until == decision.Forever {
			until = "end"
		}
		fmt.Printf("  force %d: cycles [%d, %s) mask %#x %s\n", i, f.From, until, f.Mask, fmtAction(f.Action))
	}
	fmt.Printf("deltas (alternative − recorded):\n")
	printDiff(outc.Diff)
}
