package main

import (
	"flag"
	"fmt"

	"visasim/internal/ace"
	"visasim/internal/core"
	"visasim/internal/trace"
	"visasim/internal/workload"
)

// cmdACE prints a window of a benchmark's committed dynamic instruction
// stream with its ground-truth ACE classification and the per-PC tag the
// VISA hardware would see.
func cmdACE(args []string) {
	fs := flag.NewFlagSet("tracedump ace", flag.ExitOnError)
	var (
		bench = fs.String("benchmark", "gcc", "benchmark to trace")
		skip  = fs.Uint64("skip", 0, "instructions to skip before printing")
		n     = fs.Uint64("n", 50, "instructions to print")
	)
	fs.Parse(args)

	b, err := workload.Get(*bench)
	if err != nil {
		fatal(err)
	}
	prof, err := core.ProfileFor(b, *skip+*n+1024, ace.DefaultWindow)
	if err != nil {
		fatal(err)
	}
	prog, err := b.Generate()
	if err != nil {
		fatal(err)
	}
	prof.Apply(prog)

	exec := trace.NewExecutor(prog, b.Params.Seed, 0)
	var d trace.DynInst
	for i := uint64(0); i < *skip; i++ {
		exec.Next(&d)
	}
	fmt.Printf("%-8s %-6s %-5s %-42s %-18s %s\n",
		"seq", "truth", "tag", "instruction", "address", "control")
	for i := uint64(0); i < *n; i++ {
		exec.Next(&d)
		truth := "unACE"
		if d.Seq < prof.Bits.Len() && prof.Bits.Get(d.Seq) {
			truth = "ACE"
		}
		tag := "-"
		if d.Static.ACETag {
			tag = "ACE"
		}
		addr := ""
		if d.Static.Kind.IsMem() {
			addr = fmt.Sprintf("%#x", d.Addr)
		}
		ctl := ""
		if d.Static.Kind.IsControl() {
			if d.Taken {
				ctl = fmt.Sprintf("taken -> %#x", d.NextPC)
			} else {
				ctl = "not taken"
			}
		}
		fmt.Printf("%-8d %-6s %-5s %-42v %-18s %s\n", d.Seq, truth, tag, d.Static, addr, ctl)
	}
}
