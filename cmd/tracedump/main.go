// Command tracedump inspects visasim traces.
//
// Subcommands:
//
//	tracedump ace    -benchmark mcf -skip 1000 -n 40
//	    print a window of a benchmark's committed instruction stream with
//	    its ground-truth ACE classification and per-PC tag
//	tracedump show   -in cell.vdt [-ndjson] [-measured]
//	    decode and pretty-print a recorded decision trace
//	tracedump diff   a.vdt b.vdt
//	    compare two decision traces: event divergence and summary deltas
//	tracedump replay -in cell.vdt [-counterfactual-k K] [-out alt.vdt]
//	    re-run the recorded cell, untouched (K=0, byte-identical) or with
//	    the first K decisions flipped, and report the AVF/IPC diff
//
// Bare flags (no subcommand) keep their historical meaning: `tracedump
// -benchmark mcf` is `tracedump ace -benchmark mcf`.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]
	cmd := "ace"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "ace":
		cmdACE(args)
	case "show":
		cmdShow(args)
	case "diff":
		cmdDiff(args)
	case "replay":
		cmdReplay(args)
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown subcommand %q (want ace, show, diff or replay)\n", cmd)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}
