// Command visasimctl operates a visasimd cluster from the shell: probe
// backend health, dump their metrics, or dispatch a sweep across all of
// them through the coordinator (internal/dispatch) — with the same
// retry/failover/hedging and checkpointed-resume behaviour the experiments
// binary gets via -backends. Against a visasimcoord control plane it also
// lists tenants and pool membership, drains backends gracefully, and
// submits sweeps with a tenant API key and priority class (sweep -coord);
// sweep -local runs the same cells in-process, and because the simulator is
// deterministic the two outputs diff byte-identically with -results-only.
//
// Usage:
//
//	visasimctl health  -backends URL,URL,...
//	visasimctl metrics -backends URL,URL,... [-prom]
//	visasimctl sweep   (-backends URL,... | -coord URL | -local) [-cells FILE]
//	                   [-key API_KEY] [-priority CLASS] [-results-only]
//	                   [-store DIR] [-resume] [-hedge 2s] [-workers N]
//	                   [-timeout 10m] [-log-level info] [-log-format text] [-seed N]
//	visasimctl explore -backends URL,URL,... [-samples N] [-seed N] [-verify K]
//	                   [-workers N] [-hedge 2s] [-timeout 10m] [-json FILE]
//	visasimctl tenants  -server URL [-json]
//	visasimctl backends -coord URL
//	visasimctl drain    -coord URL BACKEND_URL
//
// The explore subcommand screens the SMT design space through the
// analytical twin (internal/twin) locally, then verifies a spread of the
// Pareto frontier across the cluster and prints the frontier report table
// (DESIGN.md §11). With -verify 0 it screens only and needs no backends.
//
// The sweep subcommand reads cells from FILE (or stdin when "-", the
// default) in the same JSON shape POST /v1/sweeps accepts:
//
//	{"cells":[{"key":"demo","config":{"Benchmarks":["gcc"],
//	  "Scheme":1,"MaxInstructions":100000}}]}
//
// and writes keyed results as JSON on stdout. With -store the completed
// cells are checkpointed to disk as they finish; re-running with -resume
// re-dispatches only the cells not yet checkpointed, so a killed sweep
// continues where it stopped. Exit status is non-zero when any backend is
// unhealthy (health) or the sweep fails (sweep).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/dispatch"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/server"
	"visasim/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "health":
		err = cmdHealth(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "explore":
		err = cmdExplore(os.Args[2:])
	case "tenants":
		err = cmdTenants(os.Args[2:])
	case "drain":
		err = cmdDrain(os.Args[2:])
	case "backends":
		err = cmdBackends(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "visasimctl: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "visasimctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  visasimctl health  -backends URL,URL,...
  visasimctl metrics -backends URL,URL,... [-prom]
  visasimctl sweep   (-backends URL,... | -coord URL | -local) [-cells FILE]
                     [-key API_KEY] [-priority interactive|standard|bulk]
                     [-results-only] [-store DIR] [-resume]
                     [-hedge D] [-workers N] [-timeout D]
                     [-log-level L] [-log-format F] [-seed N]
  visasimctl explore -backends URL,URL,... [-samples N] [-seed N] [-verify K]
                     [-workers N] [-hedge D] [-timeout D] [-json FILE]
                     [-log-level L] [-log-format F]
  visasimctl tenants  -server URL
  visasimctl backends -coord URL
  visasimctl drain    -coord URL BACKEND_URL`)
}

// backendList splits and validates the -backends flag value.
func backendList(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("-backends is required (comma-separated visasimd base URLs)")
	}
	return strings.Split(csv, ","), nil
}

// cmdHealth probes every backend once and prints one line each; the exit
// status reports whether the whole cluster is serviceable.
func cmdHealth(args []string) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	backendsCSV := fs.String("backends", "", "comma-separated visasimd base URLs")
	timeout := fs.Duration("timeout", 10*time.Second, "probe deadline")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	urls, err := backendList(*backendsCSV)
	if err != nil {
		return err
	}
	c, err := dispatch.New(dispatch.Options{Backends: urls})
	if err != nil {
		return err
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	down := 0
	for _, st := range c.Probe(ctx) {
		if st.Healthy {
			fmt.Printf("%-40s healthy\n", st.URL)
		} else {
			down++
			fmt.Printf("%-40s DOWN: %s\n", st.URL, st.Error)
		}
	}
	if down > 0 {
		return fmt.Errorf("%d of %d backends down", down, len(urls))
	}
	return nil
}

// cmdMetrics fetches every backend's /metrics and prints them as one JSON
// object keyed by backend URL; with -prom it fetches /metrics/prom instead
// and prints the Prometheus text blocks separated by a "# == URL ==" banner.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	backendsCSV := fs.String("backends", "", "comma-separated visasimd base URLs")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch deadline per backend")
	prom := fs.Bool("prom", false, "fetch /metrics/prom (Prometheus text) instead of expvar JSON")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	urls, err := backendList(*backendsCSV)
	if err != nil {
		return err
	}
	if *prom {
		var firstErr error
		for _, raw := range urls {
			url := strings.TrimRight(strings.TrimSpace(raw), "/")
			fmt.Printf("# == %s ==\n", url)
			blob, err := fetchBody(url+"/metrics/prom", *timeout)
			if err != nil {
				fmt.Printf("# error: %v\n", err)
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: %w", url, err)
				}
				continue
			}
			os.Stdout.Write(blob) //nolint:errcheck
		}
		return firstErr
	}
	out := make(map[string]json.RawMessage, len(urls))
	for _, raw := range urls {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		blob, err := fetchBody(url+"/metrics", *timeout)
		if err == nil && !json.Valid(blob) {
			err = fmt.Errorf("non-JSON metrics body (%d bytes)", len(blob))
		}
		if err != nil {
			out[url] = mustJSON(map[string]string{"error": err.Error()})
			continue
		}
		out[url] = blob
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func fetchBody(url string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 4<<20))
}

func mustJSON(v any) json.RawMessage {
	blob, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage(`"unmarshalable"`)
	}
	return blob
}

// cmdSweep runs one sweep and prints keyed results on stdout. Three modes
// share one output shape, so results can be diffed byte for byte — the
// simulator is deterministic, so they must match:
//
//   - -backends runs the in-process coordinator over a static pool
//   - -coord posts the sweep to a visasimcoord control plane (tenant key
//     and priority class travel as headers)
//   - -local runs the cells through internal/harness in this process
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	backendsCSV := fs.String("backends", "", "comma-separated visasimd base URLs")
	coordURL := fs.String("coord", "", "visasimcoord base URL to dispatch through (instead of -backends)")
	local := fs.Bool("local", false, "run the cells locally through the harness (no cluster)")
	apiKey := fs.String("key", "", "tenant API key (X-Visasim-Key) for admission-controlled clusters")
	priority := fs.String("priority", "", "priority class: interactive, standard, or bulk")
	resultsOnly := fs.Bool("results-only", false, "omit per-cell cost stats (deterministic output, diffable across modes)")
	cellsPath := fs.String("cells", "-", `cells JSON file ("-" = stdin; same shape as POST /v1/sweeps)`)
	storeDir := fs.String("store", "", "checkpoint completed cells to this directory")
	resume := fs.Bool("resume", false, "skip cells already checkpointed in -store")
	hedge := fs.Duration("hedge", 0, "re-dispatch straggler cells after this delay (0 disables)")
	workers := fs.Int("workers", 0, "concurrently in-flight cells (0 = 4 per backend)")
	cellTimeout := fs.Duration("timeout", 10*time.Minute, "per-cell dispatch attempt deadline")
	verbose := fs.Bool("v", false, "print coordinator metrics (Prometheus text) to stderr after the sweep")
	logLevel := fs.String("log-level", "warn", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log line format: text or json")
	seed := fs.Int64("seed", 0, "backoff-jitter RNG seed (0 = from the clock)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		return err
	}
	cells, err := readCells(*cellsPath)
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM cancel the sweep: queued groups are skipped and every
	// in-flight dispatch attempt is aborted, instead of the old behaviour
	// of polling the cluster to completion after the operator gave up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *priority != "" {
		class, cerr := cluster.ParseClass(*priority)
		if cerr != nil {
			return cerr
		}
		ctx = cluster.WithClass(ctx, class)
	}
	if *apiKey != "" {
		ctx = cluster.WithAPIKey(ctx, *apiKey)
	}

	var results map[string]json.RawMessage
	var stats harness.Stats
	switch {
	case *local:
		results, stats, err = sweepLocal(cells, *workers)
	case *coordURL != "":
		results, stats, err = sweepViaCoord(ctx, *coordURL, cells, *apiKey, *priority)
	default:
		results, stats, err = sweepViaBackends(ctx, cells, sweepDispatchOptions{
			backendsCSV: *backendsCSV, storeDir: *storeDir, resume: *resume,
			hedge: *hedge, workers: *workers, cellTimeout: *cellTimeout,
			seed: *seed, verbose: *verbose, logger: logger,
		})
	}
	if err != nil {
		return err
	}

	type outCell struct {
		Key    string             `json:"key"`
		Result json.RawMessage    `json:"result"`
		Stats  *harness.CellStats `json:"stats,omitempty"`
	}
	out := struct {
		Cells []outCell `json:"cells"`
	}{Cells: make([]outCell, 0, len(cells))}
	for _, c := range cells { // submission order, not map order
		oc := outCell{Key: c.Key, Result: results[c.Key]}
		if !*resultsOnly {
			st := stats[c.Key]
			oc.Stats = &st
		}
		out.Cells = append(out.Cells, oc)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// rawResults marshals keyed results once, so every sweep mode emits the
// identical result bytes.
func rawResults(cells []harness.Cell, res harness.Results) (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage, len(cells))
	for _, c := range cells {
		blob, err := json.Marshal(res[c.Key])
		if err != nil {
			return nil, fmt.Errorf("encoding result for cell %s: %w", c.Key, err)
		}
		out[c.Key] = blob
	}
	return out, nil
}

// sweepLocal runs the cells in-process — the ground truth the cluster modes
// must match byte for byte.
func sweepLocal(cells []harness.Cell, workers int) (map[string]json.RawMessage, harness.Stats, error) {
	res, stats, err := harness.RunStats(cells, harness.Options{Workers: workers})
	if err != nil {
		return nil, nil, err
	}
	raw, err := rawResults(cells, res)
	return raw, stats, err
}

// sweepDispatchOptions carries the static-pool mode's flags.
type sweepDispatchOptions struct {
	backendsCSV string
	storeDir    string
	resume      bool
	hedge       time.Duration
	workers     int
	cellTimeout time.Duration
	seed        int64
	verbose     bool
	logger      *slog.Logger
}

// sweepViaBackends runs the in-process coordinator over a static pool.
func sweepViaBackends(ctx context.Context, cells []harness.Cell, o sweepDispatchOptions) (map[string]json.RawMessage, harness.Stats, error) {
	urls, err := backendList(o.backendsCSV)
	if err != nil {
		return nil, nil, err
	}
	var st *store.Store
	if o.storeDir != "" {
		if st, err = store.Open(o.storeDir, store.Options{}); err != nil {
			return nil, nil, err
		}
	} else if o.resume {
		return nil, nil, fmt.Errorf("-resume needs -store")
	}
	coord, err := dispatch.New(dispatch.Options{
		Backends:    urls,
		HedgeAfter:  o.hedge,
		Workers:     o.workers,
		CellTimeout: o.cellTimeout,
		Store:       st,
		Resume:      o.resume,
		Seed:        o.seed,
		Logger:      o.logger,
	})
	if err != nil {
		return nil, nil, err
	}
	defer coord.Close()

	start := time.Now()
	results, stats, err := coord.RunStatsContext(ctx, cells, harness.Options{})
	if o.verbose {
		fmt.Fprintf(os.Stderr, "visasimctl: %d cells in %v\n",
			len(cells), time.Since(start).Round(time.Millisecond))
		coord.WritePrometheus(os.Stderr)
	}
	if err != nil {
		return nil, nil, err
	}
	raw, err := rawResults(cells, results)
	return raw, stats, err
}

// sweepViaCoord posts the whole sweep to a visasimcoord control plane and
// lets its scheduler run it.
func sweepViaCoord(ctx context.Context, coordURL string, cells []harness.Cell, apiKey, priority string) (map[string]json.RawMessage, harness.Stats, error) {
	req := server.SubmitRequest{Cells: make([]server.SubmitCell, len(cells))}
	for i, c := range cells {
		req.Cells[i] = server.SubmitCell{Key: c.Key, Config: c.Cfg}
	}
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	target := strings.TrimRight(coordURL, "/") + "/v1/dispatch"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target, strings.NewReader(string(blob)))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		hreq.Header.Set(cluster.KeyHeader, apiKey)
	}
	if priority != "" {
		hreq.Header.Set(cluster.ClassHeader, priority)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, nil, fmt.Errorf("coordinator answered HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var dr dispatch.DispatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return nil, nil, fmt.Errorf("decoding dispatch response: %w", err)
	}
	results := make(map[string]json.RawMessage, len(dr.Cells))
	stats := make(harness.Stats, len(dr.Cells))
	for _, c := range dr.Cells {
		// The control plane indents its response; re-compact so the result
		// bytes are identical to a local json.Marshal of the same Result.
		var compact bytes.Buffer
		if err := json.Compact(&compact, c.Result); err != nil {
			return nil, nil, fmt.Errorf("cell %s: %w", c.Key, err)
		}
		results[c.Key] = compact.Bytes()
		stats[c.Key] = c.Stats
	}
	return results, stats, nil
}

// readCells decodes a sweep request in the daemon's submit shape.
func readCells(path string) ([]harness.Cell, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var req server.SubmitRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding cells: %w", err)
	}
	if len(req.Cells) == 0 {
		return nil, fmt.Errorf("no cells in %s", path)
	}
	cells := make([]harness.Cell, len(req.Cells))
	for i, c := range req.Cells {
		cells[i] = harness.Cell{Key: c.Key, Cfg: c.Config}
	}
	return cells, nil
}
