package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"visasim/internal/dispatch"
	"visasim/internal/explore"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/twin"
)

// cmdExplore screens the default design space through the analytical twin
// locally (screening is microseconds per point — there is nothing to
// distribute) and verifies the Pareto frontier across the visasimd cluster
// via the dispatch coordinator, printing the frontier report table.
func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	backendsCSV := fs.String("backends", "", "comma-separated visasimd base URLs")
	samples := fs.Uint64("samples", 0, "screen this many seeded samples instead of the full space (0 = exhaustive)")
	seed := fs.Uint64("seed", 1, "sampling seed")
	verify := fs.Int("verify", 8, "frontier points to verify across the cluster (0 = screen only, no backends needed)")
	workers := fs.Int("workers", 0, "screening parallelism and in-flight verify cells (0 = defaults)")
	hedge := fs.Duration("hedge", 0, "re-dispatch straggler verify cells after this delay (0 disables)")
	cellTimeout := fs.Duration("timeout", 10*time.Minute, "per-cell dispatch attempt deadline")
	jsonPath := fs.String("json", "", "also write the full frontier report as JSON to this file")
	orgsCSV := fs.String("orgs", "", "comma-separated IQ organizations to sweep (default all: unified-age,swque,partitioned)")
	protsCSV := fs.String("prots", "", "comma-separated IQ protection modes to sweep (default all: none,parity,ecc,partial-replication)")
	logLevel := fs.String("log-level", "warn", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "log line format: text or json")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	model, err := twin.Default()
	if err != nil {
		return fmt.Errorf("loading twin model: %w", err)
	}
	space := explore.DefaultSpace()
	if orgs, err := explore.ParseOrgs(*orgsCSV); err != nil {
		return err
	} else if orgs != nil {
		space.Orgs = orgs
	}
	if prots, err := explore.ParseProts(*protsCSV); err != nil {
		return err
	} else if prots != nil {
		space.Prots = prots
	}
	enum, err := space.Compile(model)
	if err != nil {
		return err
	}
	res, err := explore.Screen(model, enum, explore.Options{
		Workers: *workers,
		Samples: int64(*samples),
		Seed:    *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "visasimctl: "+explore.Summary(res))

	var verified []explore.Verified
	sel := explore.Select(res.Frontier, *verify)
	if *verify == 0 {
		// Screen-only: show a spread of the frontier rather than every point.
		const tableCap = 40
		sel = explore.Select(res.Frontier, tableCap)
	}
	if *verify > 0 {
		urls, err := backendList(*backendsCSV)
		if err != nil {
			return fmt.Errorf("verification needs a cluster (or use -verify 0): %w", err)
		}
		logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
		if err != nil {
			return err
		}
		coord, err := dispatch.New(dispatch.Options{
			Backends:    urls,
			HedgeAfter:  *hedge,
			Workers:     *workers,
			CellTimeout: *cellTimeout,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		defer coord.Close()

		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		runner := func(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
			return coord.RunContext(ctx, cells, opt)
		}
		verified, err = explore.Verify(model, sel, runner, *workers)
		if err != nil {
			return err
		}
	}

	if *jsonPath != "" {
		blob, err := explore.MarshalReport(&explore.RunReport{
			Model:      model.Version,
			Budget:     model.Budget,
			SpaceSize:  res.Size,
			Screened:   res.Screened,
			ElapsedSec: res.Elapsed.Seconds(),
			Frontier:   res.Frontier,
			Verified:   verified,
		})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			return err
		}
	}
	return explore.WriteFrontier(os.Stdout, sel, verified)
}
