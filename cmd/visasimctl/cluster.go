package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/dispatch"
)

// This file holds the control-plane subcommands: tenant visibility and
// membership operations against a visasimcoord (or, for tenants, a
// tenanted visasimd — both serve GET /v1/tenants in the same shape).

// cmdTenants prints tenant quotas and usage as a table (or JSON with -json).
func cmdTenants(args []string) error {
	fs := flag.NewFlagSet("tenants", flag.ExitOnError)
	server := fs.String("server", "", "visasimcoord or visasimd base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch deadline")
	asJSON := fs.Bool("json", false, "print the raw JSON instead of a table")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if strings.TrimSpace(*server) == "" {
		return fmt.Errorf("-server is required (visasimcoord or visasimd base URL)")
	}
	url := strings.TrimRight(strings.TrimSpace(*server), "/")
	blob, err := fetchBody(url+"/v1/tenants", *timeout)
	if err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	var tenants []cluster.TenantStatus
	if err := json.Unmarshal(blob, &tenants); err != nil {
		return fmt.Errorf("decoding tenants: %w", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tenants)
	}
	if len(tenants) == 0 {
		fmt.Println("no tenants (admission control is off)")
		return nil
	}
	fmt.Printf("%-16s %-12s %10s %10s %12s %10s %10s\n",
		"TENANT", "CLASS", "RATE/S", "QUOTA", "QUEUED", "ADMITTED", "REJECTED")
	for _, t := range tenants {
		quota := "unlimited"
		if t.MaxQueued > 0 {
			quota = fmt.Sprintf("%d", t.MaxQueued)
		}
		rate := "unlimited"
		if t.RatePerSec > 0 {
			rate = fmt.Sprintf("%g", t.RatePerSec)
		}
		fmt.Printf("%-16s %-12s %10s %10s %12d %10d %10d\n",
			t.ID, t.Class, rate, quota, t.Queued, t.Admitted, t.Rejected)
	}
	return nil
}

// cmdBackends prints the coordinator's pool membership.
func cmdBackends(args []string) error {
	fs := flag.NewFlagSet("backends", flag.ExitOnError)
	coord := fs.String("coord", "", "visasimcoord base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch deadline")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if strings.TrimSpace(*coord) == "" {
		return fmt.Errorf("-coord is required (visasimcoord base URL)")
	}
	url := strings.TrimRight(strings.TrimSpace(*coord), "/")
	blob, err := fetchBody(url+"/v1/backends", *timeout)
	if err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	var members []dispatch.BackendStatus
	if err := json.Unmarshal(blob, &members); err != nil {
		return fmt.Errorf("decoding backends: %w", err)
	}
	if len(members) == 0 {
		fmt.Println("no backends registered")
		return nil
	}
	for _, m := range members {
		state := "healthy"
		if !m.Healthy {
			state = "DOWN"
		}
		if m.Draining {
			state += ", draining"
		}
		fmt.Printf("%-40s %-18s inflight=%d dispatched=%d\n",
			m.URL, state, m.Inflight, m.Dispatched)
	}
	return nil
}

// cmdDrain gracefully drains one backend out of a coordinator's pool: no
// new cells route to it, in-flight cells finish, then it leaves.
func cmdDrain(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	coord := fs.String("coord", "", "visasimcoord base URL")
	timeout := fs.Duration("timeout", 5*time.Minute, "drain deadline (in-flight cells must finish)")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if strings.TrimSpace(*coord) == "" {
		return fmt.Errorf("-coord is required (visasimcoord base URL)")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("drain takes exactly one backend URL argument")
	}
	backend := fs.Arg(0)
	url := strings.TrimRight(strings.TrimSpace(*coord), "/")

	body, err := json.Marshal(map[string]string{"url": backend})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Post(url+"/v1/backends/drain", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("coordinator answered HTTP %d: %s",
			resp.StatusCode, strings.TrimSpace(string(blob)))
	}
	fmt.Printf("drained %s\n", backend)
	var members []dispatch.BackendStatus
	if err := json.NewDecoder(resp.Body).Decode(&members); err == nil {
		fmt.Printf("%d backends remain in the pool\n", len(members))
	}
	return nil
}
