#!/usr/bin/env bash
# Docs lint: keep the prose honest.
#   1. Every relative markdown link in README/DESIGN/EXPERIMENTS/ROADMAP
#      must point at a file that exists.
#   2. Every intra-document anchor link (#heading) must match a heading's
#      GitHub slug in the target document.
#   3. Every binary under cmd/ must be mentioned in README.md.
# Used by `make docs-lint` and the CI docs-lint step.
set -euo pipefail

cd "$(dirname "$0")/.."

DOCS="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md CHANGES.md"
fail=0

# GitHub heading slug: lowercase, strip punctuation except dashes and
# spaces, spaces to dashes.
slugs() {
    sed -n 's/^#\{1,6\} //p' "$1" \
        | tr '[:upper:]' '[:lower:]' \
        | sed -e 's/[^a-z0-9 §./-]//g' -e 's/[§./]//g' -e 's/ /-/g'
}

for doc in $DOCS; do
    [ -f "$doc" ] || { echo "docs-lint: $doc missing"; fail=1; continue; }
    # Markdown link targets, skipping absolute URLs.
    targets=$(grep -o ']([^)]*)' "$doc" | sed -e 's/^](//' -e 's/)$//' \
        | grep -v '^https\?://' | grep -v '^mailto:' || true)
    for t in $targets; do
        file="${t%%#*}"
        frag=""
        case "$t" in *'#'*) frag="${t#*#}" ;; esac
        if [ -z "$file" ]; then
            file="$doc" # pure #anchor link
        fi
        if [ ! -e "$file" ]; then
            echo "docs-lint: $doc links to missing file: $t"
            fail=1
            continue
        fi
        if [ -n "$frag" ]; then
            case "$file" in
            *.md)
                if ! slugs "$file" | grep -qx "$frag"; then
                    echo "docs-lint: $doc links to missing anchor: $t"
                    fail=1
                fi
                ;;
            esac
        fi
    done
done

for d in cmd/*/; do
    bin=$(basename "$d")
    if ! grep -q "$bin" README.md; then
        echo "docs-lint: README.md does not mention cmd/$bin"
        fail=1
    fi
done

if [ "$fail" != 0 ]; then
    exit 1
fi
echo "docs-lint: OK (links, anchors and cmd/* coverage)"
