#!/usr/bin/env bash
# Observability smoke test: boot visasimd, run one cell with a known sweep
# correlation ID, and assert the two promises end to end —
#   1. GET /metrics/prom serves valid Prometheus text including histograms,
#   2. the submitted sweep ID appears in the daemon's structured logs.
# Used by `make obs-smoke` and the CI obs-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18417"
SWEEP="sweep-obs-smoke-$$"
TMP="$(mktemp -d)"
LOG="$TMP/visasimd.log"
BIN="$TMP/visasimd"

cleanup() {
    [ -n "${DPID:-}" ] && kill "$DPID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/visasimd
"$BIN" -addr "$ADDR" -log-format json -log-level debug 2>"$LOG" &
DPID=$!

for i in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "obs-smoke: daemon never came up"; cat "$LOG"; exit 1; }
    sleep 0.2
done

JOB=$(curl -sf "http://$ADDR/v1/sweeps" \
    -H "Content-Type: application/json" \
    -H "X-Visasim-Sweep: $SWEEP" \
    -d '{"cells":[{"key":"smoke","config":{"Benchmarks":["gcc"],"Scheme":1,"MaxInstructions":20000}}]}' \
    | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "obs-smoke: submit returned no job ID"; cat "$LOG"; exit 1; }

for i in $(seq 1 150); do
    STATE=$(curl -sf "http://$ADDR/v1/jobs/$JOB" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled) echo "obs-smoke: job ended $STATE"; cat "$LOG"; exit 1 ;;
    esac
    [ "$i" = 150 ] && { echo "obs-smoke: job never finished"; cat "$LOG"; exit 1; }
    sleep 0.2
done

PROM="$TMP/metrics.prom"
curl -sf "http://$ADDR/metrics/prom" >"$PROM"
for want in \
    "# TYPE visasimd_jobs_done_total counter" \
    "visasimd_jobs_done_total 1" \
    "# TYPE visasimd_simulate_seconds histogram" \
    'visasimd_simulate_seconds_bucket{le="+Inf"} 1' \
    "visasimd_queue_wait_seconds_count 1"; do
    grep -qF "$want" "$PROM" || {
        echo "obs-smoke: /metrics/prom missing: $want"; cat "$PROM"; exit 1; }
done

grep -q "\"sweep\":\"$SWEEP\"" "$LOG" || {
    echo "obs-smoke: daemon log does not carry sweep ID $SWEEP"; cat "$LOG"; exit 1; }
grep -q "job finished" "$LOG" || {
    echo "obs-smoke: daemon log has no 'job finished' line"; cat "$LOG"; exit 1; }

echo "obs-smoke: OK (job $JOB, sweep $SWEEP correlated; Prometheus endpoint valid)"
