#!/usr/bin/env bash
# Explore smoke test: screen a small seeded sample of the design space
# through the analytical twin and verify the frontier three ways —
#   1. locally (experiments explore, in-process harness),
#   2. through a real visasimd daemon (experiments explore -server),
#   3. through the dispatch coordinator (visasimctl explore -backends) —
# then assert the three frontier reports are byte-identical apart from
# wall-clock. Screening is deterministic and the simulator is
# content-addressed, so any divergence is a real bug in a Runner seam.
# Used by `make explore-smoke` and the CI explore-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18431"
TMP="$(mktemp -d)"
LOG="$TMP/visasimd.log"

SAMPLES=20000
SEED=7
VERIFY=3

cleanup() {
    [ -n "${DPID:-}" ] && kill "$DPID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/visasimd" ./cmd/visasimd
go build -o "$TMP/experiments" ./cmd/experiments
go build -o "$TMP/visasimctl" ./cmd/visasimctl

"$TMP/visasimd" -addr "$ADDR" -log-format json -log-level warn 2>"$LOG" &
DPID=$!
for i in $(seq 1 50); do
    curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "explore-smoke: daemon never came up"; cat "$LOG"; exit 1; }
    sleep 0.2
done

run_flags="-explore-samples $SAMPLES -explore-seed $SEED -explore-verify $VERIFY"
"$TMP/experiments" $run_flags -explore-json "$TMP/local.json" explore >"$TMP/local.out"
"$TMP/experiments" $run_flags -explore-json "$TMP/daemon.json" \
    -server "http://$ADDR" explore >"$TMP/daemon.out"
"$TMP/visasimctl" explore -backends "http://$ADDR" \
    -samples "$SAMPLES" -seed "$SEED" -verify "$VERIFY" \
    -json "$TMP/ctl.json" >"$TMP/ctl.out"

# The table must carry verified simulator columns.
grep -q 'ERR(IPC)' "$TMP/local.out" || {
    echo "explore-smoke: local frontier table has no verification columns"
    cat "$TMP/local.out"; exit 1; }

# Byte-parity across Runner seams: only wall-clock may differ.
for f in local daemon ctl; do
    sed '/"ElapsedSec"/d' "$TMP/$f.json" >"$TMP/$f.cmp"
done
diff -u "$TMP/local.cmp" "$TMP/daemon.cmp" >/dev/null || {
    echo "explore-smoke: local vs daemon frontier reports differ"
    diff -u "$TMP/local.cmp" "$TMP/daemon.cmp" | head -40; exit 1; }
diff -u "$TMP/local.cmp" "$TMP/ctl.cmp" >/dev/null || {
    echo "explore-smoke: local vs coordinator frontier reports differ"
    diff -u "$TMP/local.cmp" "$TMP/ctl.cmp" | head -40; exit 1; }

# Sanity: the reports actually contain a frontier and the requested number
# of verified cells.
VERIFIED=$(grep -c '"Key": "explore/' "$TMP/local.json" || true)
[ "$VERIFIED" = "$VERIFY" ] || {
    echo "explore-smoke: expected $VERIFY verified cells, found $VERIFIED"; exit 1; }
grep -q '"Frontier": \[' "$TMP/local.json" || {
    echo "explore-smoke: report has no frontier"; exit 1; }

# Non-default issue-queue axes: restrict the organization and protection
# axes to a non-default point (partitioned + parity), screen a small
# sample, and verify one frontier point through the daemon. Every frontier
# row must carry the restricted axes, proving the org/prot plumbing holds
# end to end (twin screen -> frontier -> simulator verification).
"$TMP/experiments" -explore-samples 4000 -explore-seed "$SEED" -explore-verify 1 \
    -explore-orgs partitioned -explore-prots parity \
    -explore-json "$TMP/iqaxes.json" -server "http://$ADDR" explore >"$TMP/iqaxes.out"
grep -q 'partitioned' "$TMP/iqaxes.out" && grep -q 'parity' "$TMP/iqaxes.out" || {
    echo "explore-smoke: restricted org/prot axes missing from frontier table"
    cat "$TMP/iqaxes.out"; exit 1; }
IQVERIFIED=$(grep -c '"Key": "explore/' "$TMP/iqaxes.json" || true)
[ "$IQVERIFIED" = "1" ] || {
    echo "explore-smoke: expected 1 verified org/prot cell, found $IQVERIFIED"; exit 1; }

echo "explore-smoke: OK ($SAMPLES screened, $VERIFY verified; local, daemon and coordinator reports byte-identical; non-default org/prot point verified)"
