#!/usr/bin/env bash
# Cluster smoke test: boot a visasimcoord with ZERO static backends, let two
# visasimd daemons join by self-registration, run two tenanted sweeps of
# mixed priority classes through the control plane, drain one backend while
# work is in flight, and assert the promises end to end —
#   1. both sweep outputs are byte-identical to a local harness run
#      (scheduling, routing and drains never change result bytes),
#   2. the drained backend leaves exactly one member in the pool,
#   3. the coordinator's structured log carries every membership transition
#      (joined x2, draining, drained) under one cluster- correlation scope.
# Used by `make cluster-smoke` and the CI cluster-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."

COORD="127.0.0.1:19431"
D1="127.0.0.1:19432"
D2="127.0.0.1:19433"
TMP="$(mktemp -d)"
CLOG="$TMP/visasimcoord.log"

cleanup() {
    [ -n "${D1PID:-}" ] && kill "$D1PID" 2>/dev/null || true
    [ -n "${D2PID:-}" ] && kill "$D2PID" 2>/dev/null || true
    [ -n "${CPID:-}" ] && kill "$CPID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/visasimcoord" ./cmd/visasimcoord
go build -o "$TMP/visasimd" ./cmd/visasimd
go build -o "$TMP/visasimctl" ./cmd/visasimctl

cat >"$TMP/tenants.json" <<'EOF'
{"tenants": [
  {"id": "papers", "key": "pk-papers", "class": "interactive"},
  {"id": "batch", "key": "pk-batch", "class": "bulk"}
]}
EOF

# Two disjoint sweeps (unique budgets => unique cell keys) big enough that a
# drain lands while cells are still in flight.
{
    echo '{"cells":['
    for i in 1 2 3 4 5 6; do
        [ "$i" != 1 ] && echo ','
        printf '{"key":"int-%d","config":{"Benchmarks":["gcc","mcf"],"Scheme":1,"MaxInstructions":%d}}' \
            "$i" $((300000 + i))
    done
    echo ']}'
} >"$TMP/cells-interactive.json"
{
    echo '{"cells":['
    for i in 1 2 3 4 5 6; do
        [ "$i" != 1 ] && echo ','
        printf '{"key":"blk-%d","config":{"Benchmarks":["vpr","perlbmk"],"Scheme":2,"MaxInstructions":%d}}' \
            "$i" $((300000 + i))
    done
    echo ']}'
} >"$TMP/cells-bulk.json"

# Coordinator with an EMPTY static pool: membership comes only from daemon
# self-registration.
"$TMP/visasimcoord" -addr "$COORD" -tenants "$TMP/tenants.json" \
    -scheduler priority -routing affinity \
    -log-format json -log-level debug 2>"$CLOG" &
CPID=$!

for i in $(seq 1 50); do
    curl -sf "http://$COORD/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "cluster-smoke: coordinator never came up"; cat "$CLOG"; exit 1; }
    sleep 0.2
done

"$TMP/visasimd" -addr "$D1" -register "http://$COORD" 2>"$TMP/d1.log" &
D1PID=$!
"$TMP/visasimd" -addr "$D2" -register "http://$COORD" 2>"$TMP/d2.log" &
D2PID=$!

for i in $(seq 1 50); do
    N=$(curl -sf "http://$COORD/v1/backends" | grep -o '"url"' | wc -l || true)
    [ "$N" = 2 ] && break
    [ "$i" = 50 ] && { echo "cluster-smoke: expected 2 registered backends, have $N"; cat "$CLOG"; exit 1; }
    sleep 0.2
done

# Mixed-priority load from both tenants, concurrently.
"$TMP/visasimctl" sweep -coord "http://$COORD" -key pk-papers -priority interactive \
    -results-only -cells "$TMP/cells-interactive.json" >"$TMP/out-interactive.json" &
SW1=$!
"$TMP/visasimctl" sweep -coord "http://$COORD" -key pk-batch -priority bulk \
    -results-only -cells "$TMP/cells-bulk.json" >"$TMP/out-bulk.json" &
SW2=$!

# Drain one backend mid-flight: no new cells route to it, in-flight cells
# finish, then it leaves — the sweeps above must not lose a single cell.
sleep 0.3
"$TMP/visasimctl" drain -coord "http://$COORD" "http://$D1" >/dev/null || {
    echo "cluster-smoke: drain failed"; cat "$CLOG"; exit 1; }

wait "$SW1" || { echo "cluster-smoke: interactive sweep failed"; cat "$CLOG"; exit 1; }
wait "$SW2" || { echo "cluster-smoke: bulk sweep failed"; cat "$CLOG"; exit 1; }

# Byte-parity: the control plane must produce exactly the bytes a local
# harness run produces.
"$TMP/visasimctl" sweep -local -results-only -cells "$TMP/cells-interactive.json" >"$TMP/local-interactive.json"
"$TMP/visasimctl" sweep -local -results-only -cells "$TMP/cells-bulk.json" >"$TMP/local-bulk.json"
cmp "$TMP/out-interactive.json" "$TMP/local-interactive.json" || {
    echo "cluster-smoke: interactive sweep diverged from local run"; exit 1; }
cmp "$TMP/out-bulk.json" "$TMP/local-bulk.json" || {
    echo "cluster-smoke: bulk sweep diverged from local run"; exit 1; }

N=$(curl -sf "http://$COORD/v1/backends" | grep -o '"url"' | wc -l || true)
[ "$N" = 1 ] || { echo "cluster-smoke: expected 1 backend after drain, have $N"; cat "$CLOG"; exit 1; }

# Tenant accounting survived the round trip.
"$TMP/visasimctl" tenants -server "http://$COORD" >"$TMP/tenants.out"
for want in papers batch; do
    grep -q "^$want " "$TMP/tenants.out" || {
        echo "cluster-smoke: tenants table missing $want"; cat "$TMP/tenants.out"; exit 1; }
done

# Membership transitions are logged under one cluster- correlation scope.
SCOPE=$(sed -n 's/.*"scope":"\(cluster-[^"]*\)".*/\1/p' "$CLOG" | sort -u)
[ "$(echo "$SCOPE" | wc -l)" = 1 ] && [ -n "$SCOPE" ] || {
    echo "cluster-smoke: expected one cluster- scope, got: $SCOPE"; cat "$CLOG"; exit 1; }
for want in "backend joined" "backend draining" "backend drained"; do
    grep -q "\"msg\":\"$want\".*\"scope\":\"$SCOPE\"" "$CLOG" || {
        echo "cluster-smoke: coordinator log missing '$want' under $SCOPE"; cat "$CLOG"; exit 1; }
done
[ "$(grep -c '"msg":"backend joined"' "$CLOG")" = 2 ] || {
    echo "cluster-smoke: expected exactly 2 join lines"; cat "$CLOG"; exit 1; }

echo "cluster-smoke: OK (2 registered backends, mixed-priority sweeps byte-identical to local, drain lost no cells, scope $SCOPE)"
