package visasim

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/inject"
	"visasim/internal/pipeline"
	"visasim/internal/trace"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

// determinismCells is a small batch spanning schemes and policies; every
// cell must produce the identical result regardless of the worker schedule
// it runs under.
func determinismCells() []harness.Cell {
	cpuA := []string{"bzip2", "eon", "gcc", "perlbmk"}
	memA := []string{"mcf", "equake", "vpr", "swim"}
	const budget = 12_000
	return []harness.Cell{
		{Key: "base", Cfg: core.Config{Benchmarks: cpuA, Scheme: core.SchemeBase, Policy: pipeline.PolicyICOUNT, MaxInstructions: budget}},
		{Key: "visa", Cfg: core.Config{Benchmarks: cpuA, Scheme: core.SchemeVISA, Policy: pipeline.PolicyICOUNT, MaxInstructions: budget}},
		{Key: "opt2", Cfg: core.Config{Benchmarks: memA, Scheme: core.SchemeVISAOpt2, Policy: pipeline.PolicyFLUSH, MaxInstructions: budget}},
		{Key: "dvm", Cfg: core.Config{Benchmarks: memA, Scheme: core.SchemeDVM, Policy: pipeline.PolicyICOUNT, DVMTarget: 0.04, MaxInstructions: budget}},
	}
}

// serializeBatch reduces a harness result map to a canonical byte form
// (keyed summaries, deterministic field order via the goldenSummary
// projection plus the result metadata).
func serializeBatch(t *testing.T, res harness.Results) map[string]string {
	t.Helper()
	out := make(map[string]string, len(res))
	for key, r := range res {
		blob, err := json.Marshal(struct {
			Summary goldenSummary
			Scheme  string
			ACEFrac float64
			TagAcc  float64
		}{summarize(r), r.Scheme.String(), r.ProfileACEFraction, r.CommittedTagAccuracy})
		if err != nil {
			t.Fatal(err)
		}
		out[key] = string(blob)
	}
	return out
}

// TestHarnessWorkerCountInvariance runs the same batch serially and fully
// parallel: the worker schedule must never leak into results. (This is the
// property that lets the experiment harness parallelise sweeps at all, and
// the test -race exercises the worker pool for data races.)
func TestHarnessWorkerCountInvariance(t *testing.T) {
	cells := determinismCells()
	serial, err := harness.Run(cells, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := harness.Run(cells, harness.Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	a, b := serializeBatch(t, serial), serializeBatch(t, parallel)
	if len(a) != len(b) {
		t.Fatalf("result count differs: %d serial vs %d parallel", len(a), len(b))
	}
	for key, want := range a {
		if got := b[key]; got != want {
			t.Errorf("cell %s differs across worker counts\nserial:   %s\nparallel: %s", key, want, got)
		}
	}
}

// newInjectProcessor builds a fresh default-machine processor for an
// injection campaign.
func newInjectProcessor(t *testing.T, names []string, budget uint64) *pipeline.Processor {
	t.Helper()
	streams := make([]*trace.Stream, len(names))
	for i, name := range names {
		b, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Generate()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ace.Run(prog, b.Params.Seed, 0, budget+8192, 0)
		if err != nil {
			t.Fatal(err)
		}
		prof.Apply(prog)
		streams[i] = trace.NewStream(trace.NewExecutor(prog, b.Params.Seed, i), prof.Bits)
	}
	proc, err := pipeline.New(pipeline.Params{
		Machine:         config.Default(),
		Scheduler:       uarch.SchedVISA,
		Policy:          pipeline.PolicyICOUNT,
		Streams:         streams,
		MaxInstructions: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

// TestInjectCampaignDeterminism re-runs a seeded fault-injection campaign:
// the full strike sequence — time, location, and outcome of every upset —
// must repeat exactly. Statistical conclusions from a campaign are only
// reproducible if the campaign itself is.
func TestInjectCampaignDeterminism(t *testing.T) {
	const budget = 8_000
	mix := []string{"gcc", "mcf", "vpr", "perlbmk"}
	run := func() ([]inject.Strike, *inject.Campaign) {
		proc := newInjectProcessor(t, mix, budget)
		var strikes []inject.Strike
		c, err := inject.Run(proc, inject.Options{
			Instructions:     budget,
			StrikesPerKCycle: 400,
			Seed:             1234,
			Observer:         func(s inject.Strike) { strikes = append(strikes, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return strikes, c
	}

	strikes1, c1 := run()
	strikes2, c2 := run()
	if len(strikes1) == 0 {
		t.Fatal("campaign injected no strikes; budget too small to test anything")
	}
	if !reflect.DeepEqual(strikes1, strikes2) {
		n := len(strikes1)
		if len(strikes2) < n {
			n = len(strikes2)
		}
		for i := 0; i < n; i++ {
			if strikes1[i] != strikes2[i] {
				t.Fatalf("strike %d differs: %+v vs %+v", i, strikes1[i], strikes2[i])
			}
		}
		t.Fatalf("strike counts differ: %d vs %d", len(strikes1), len(strikes2))
	}
	if *c1 != *c2 {
		t.Errorf("campaign stats differ:\n%+v\n%+v", *c1, *c2)
	}
}
