package visasim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/inject"
	"visasim/internal/pipeline"
	"visasim/internal/replay"
	"visasim/internal/trace"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

// determinismCells is a small batch spanning schemes and policies; every
// cell must produce the identical result regardless of the worker schedule
// it runs under.
func determinismCells() []harness.Cell {
	cpuA := []string{"bzip2", "eon", "gcc", "perlbmk"}
	memA := []string{"mcf", "equake", "vpr", "swim"}
	const budget = 12_000
	return []harness.Cell{
		{Key: "base", Cfg: core.Config{Benchmarks: cpuA, Scheme: core.SchemeBase, Policy: pipeline.PolicyICOUNT, MaxInstructions: budget}},
		{Key: "visa", Cfg: core.Config{Benchmarks: cpuA, Scheme: core.SchemeVISA, Policy: pipeline.PolicyICOUNT, MaxInstructions: budget}},
		{Key: "opt2", Cfg: core.Config{Benchmarks: memA, Scheme: core.SchemeVISAOpt2, Policy: pipeline.PolicyFLUSH, MaxInstructions: budget}},
		{Key: "dvm", Cfg: core.Config{Benchmarks: memA, Scheme: core.SchemeDVM, Policy: pipeline.PolicyICOUNT, DVMTarget: 0.04, MaxInstructions: budget}},
		// Controller-less memory-bound STALL cell: dead-cycle skip-ahead is
		// live here, so the matrix also pins that skipping runs stay
		// schedule-invariant and observation-neutral.
		{Key: "stall", Cfg: core.Config{Benchmarks: memA, Scheme: core.SchemeBase, Policy: pipeline.PolicySTALL, MaxInstructions: budget}},
	}
}

// serializeBatch reduces a harness result map to a canonical byte form
// (keyed summaries, deterministic field order via the goldenSummary
// projection plus the result metadata).
func serializeBatch(t *testing.T, res harness.Results) map[string]string {
	t.Helper()
	out := make(map[string]string, len(res))
	for key, r := range res {
		blob, err := json.Marshal(struct {
			Summary goldenSummary
			Scheme  string
			ACEFrac float64
			TagAcc  float64
		}{summarize(r), r.Scheme.String(), r.ProfileACEFraction, r.CommittedTagAccuracy})
		if err != nil {
			t.Fatal(err)
		}
		out[key] = string(blob)
	}
	return out
}

// TestHarnessWorkerCountInvariance runs the same batch serially and fully
// parallel: the worker schedule must never leak into results. (This is the
// property that lets the experiment harness parallelise sweeps at all, and
// the test -race exercises the worker pool for data races.)
func TestHarnessWorkerCountInvariance(t *testing.T) {
	cells := determinismCells()
	serial, err := harness.Run(cells, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := harness.Run(cells, harness.Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	a, b := serializeBatch(t, serial), serializeBatch(t, parallel)
	if len(a) != len(b) {
		t.Fatalf("result count differs: %d serial vs %d parallel", len(a), len(b))
	}
	for key, want := range a {
		if got := b[key]; got != want {
			t.Errorf("cell %s differs across worker counts\nserial:   %s\nparallel: %s", key, want, got)
		}
	}
}

// encodeTraces reduces a traces map to canonical per-key bytes.
func encodeTraces(t *testing.T, traces harness.Traces) map[string]string {
	t.Helper()
	out := make(map[string]string, len(traces))
	for key, tr := range traces {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("encoding trace %s: %v", key, err)
		}
		out[key] = buf.String()
	}
	return out
}

// TestTracingDoesNotPerturbResults runs the determinism batch untraced and
// traced at the verbose level: results must be byte-identical. This is the
// observation-only guarantee that lets TraceLevel stay out of Config.Hash.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	cells := determinismCells()
	plain, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, _, traces, err := harness.RunTraced(cells, harness.Options{TraceLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := serializeBatch(t, plain), serializeBatch(t, traced)
	for key, want := range a {
		if got := b[key]; got != want {
			t.Errorf("cell %s: traced result differs from untraced\nuntraced: %s\ntraced:   %s", key, want, got)
		}
	}
	// Every controller-bearing cell must actually have recorded something.
	for _, key := range []string{"opt2", "dvm"} {
		if tr := traces[key]; tr == nil || len(tr.Events) == 0 {
			t.Errorf("cell %s recorded no decision events", key)
		}
	}
}

// TestReplayDeterminismMatrix is the replay pin: traces recorded under
// different worker schedules are byte-identical, and an untouched replay of
// each — reconstructed purely from the trace's embedded config — reproduces
// both the result and the trace byte-for-byte.
func TestReplayDeterminismMatrix(t *testing.T) {
	cells := determinismCells()
	res1, _, traces1, err := harness.RunTraced(cells, harness.Options{Workers: 1, TraceLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, tracesN, err := harness.RunTraced(cells, harness.Options{Workers: runtime.GOMAXPROCS(0), TraceLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc1, encN := encodeTraces(t, traces1), encodeTraces(t, tracesN)
	if len(enc1) != len(encN) {
		t.Fatalf("trace counts differ: %d serial vs %d parallel", len(enc1), len(encN))
	}
	for key, want := range enc1 {
		if got := encN[key]; got != want {
			t.Errorf("cell %s: trace differs across worker counts", key)
		}
	}

	for key, tr := range traces1 {
		if len(tr.Events) == 0 {
			continue // controller-less cells have nothing to replay against
		}
		replayRes, replayTr, err := replay.Replay(tr, nil)
		if err != nil {
			t.Fatalf("replaying %s: %v", key, err)
		}
		wantRes, err := json.Marshal(res1[key])
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := json.Marshal(replayRes)
		if err != nil {
			t.Fatal(err)
		}
		if string(wantRes) != string(gotRes) {
			t.Errorf("cell %s: untouched replay changed the result", key)
		}
		var buf bytes.Buffer
		if err := replayTr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.String() != enc1[key] {
			t.Errorf("cell %s: untouched replay changed the trace encoding", key)
		}
	}
}

// newInjectProcessor builds a fresh default-machine processor for an
// injection campaign.
func newInjectProcessor(t *testing.T, names []string, budget uint64) *pipeline.Processor {
	t.Helper()
	streams := make([]*trace.Stream, len(names))
	for i, name := range names {
		b, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Generate()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ace.Run(prog, b.Params.Seed, 0, budget+8192, 0)
		if err != nil {
			t.Fatal(err)
		}
		prof.Apply(prog)
		streams[i] = trace.NewStream(trace.NewExecutor(prog, b.Params.Seed, i), prof.Bits)
	}
	proc, err := pipeline.New(pipeline.Params{
		Machine:         config.Default(),
		Scheduler:       uarch.SchedVISA,
		Policy:          pipeline.PolicyICOUNT,
		Streams:         streams,
		MaxInstructions: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

// TestInjectCampaignDeterminism re-runs a seeded fault-injection campaign:
// the full strike sequence — time, location, and outcome of every upset —
// must repeat exactly. Statistical conclusions from a campaign are only
// reproducible if the campaign itself is.
func TestInjectCampaignDeterminism(t *testing.T) {
	const budget = 8_000
	mix := []string{"gcc", "mcf", "vpr", "perlbmk"}
	run := func() ([]inject.Strike, *inject.Campaign) {
		proc := newInjectProcessor(t, mix, budget)
		var strikes []inject.Strike
		c, err := inject.Run(proc, inject.Options{
			Instructions:     budget,
			StrikesPerKCycle: 400,
			Seed:             1234,
			Observer:         func(s inject.Strike) { strikes = append(strikes, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return strikes, c
	}

	strikes1, c1 := run()
	strikes2, c2 := run()
	if len(strikes1) == 0 {
		t.Fatal("campaign injected no strikes; budget too small to test anything")
	}
	if !reflect.DeepEqual(strikes1, strikes2) {
		n := len(strikes1)
		if len(strikes2) < n {
			n = len(strikes2)
		}
		for i := 0; i < n; i++ {
			if strikes1[i] != strikes2[i] {
				t.Fatalf("strike %d differs: %+v vs %+v", i, strikes1[i], strikes2[i])
			}
		}
		t.Fatalf("strike counts differ: %d vs %d", len(strikes1), len(strikes2))
	}
	if *c1 != *c2 {
		t.Errorf("campaign stats differ:\n%+v\n%+v", *c1, *c2)
	}
}
