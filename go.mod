module visasim

go 1.22
