package visasim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"visasim/internal/core"
	"visasim/internal/decision"
	"visasim/internal/pipeline"
)

// decisionGoldenCell is one pinned decision-trace fixture: a cell whose
// recorded decision stream is compared byte-for-byte against its NDJSON
// golden. The cells cover each control loop the tracer observes: DVM's
// waiting-queue throttle (with level-2 sample events), Opt2's allocation cap
// plus FLUSH engagement, and Opt1's IPC-driven allocation.
type decisionGoldenCell struct {
	Name   string
	Cfg    core.Config
	Level  int
	Budget uint64
}

func decisionGoldenCells() []decisionGoldenCell {
	memA := []string{"mcf", "equake", "vpr", "swim"}
	mixA := []string{"gcc", "mcf", "vpr", "perlbmk"}
	cells := []decisionGoldenCell{
		// The DVM cell runs a smaller budget: its per-thread dispatch gates
		// re-decide every cycle, so gate edges dominate the stream and a
		// full golden-budget fixture would be megabytes.
		{"memA-dvm-icount", core.Config{Benchmarks: memA, Scheme: core.SchemeDVM, Policy: pipeline.PolicyICOUNT, DVMTarget: 0.04}, 2, 4_000},
		{"memA-visaopt2-flush", core.Config{Benchmarks: memA, Scheme: core.SchemeVISAOpt2, Policy: pipeline.PolicyFLUSH}, 1, goldenBudget},
		{"mixA-visaopt1-icount", core.Config{Benchmarks: mixA, Scheme: core.SchemeVISAOpt1, Policy: pipeline.PolicyICOUNT}, 1, goldenBudget},
	}
	for i := range cells {
		cells[i].Cfg.MaxInstructions = cells[i].Budget
	}
	return cells
}

func decisionGoldenPath(name string) string {
	return filepath.Join("testdata", "golden", "decisions", name+".ndjson")
}

// TestGoldenDecisionTraces pins the recorded decision streams bit-for-bit
// (NDJSON renders floats in shortest-round-trip form, so byte equality is
// bit equality). Regenerate alongside the result goldens:
//
//	go test -run TestGolden -update .
//
// A diff here means the control loops decided differently — a modelling
// change that must be deliberate, not a side effect.
func TestGoldenDecisionTraces(t *testing.T) {
	for _, cell := range decisionGoldenCells() {
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			_, tr, err := core.RunTraced(cell.Cfg, core.RunOptions{
				TraceLevel: cell.Level,
				CellKey:    cell.Name,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(tr.Events) == 0 {
				t.Fatal("trace records no events; the cell exercises no control loop")
			}
			var buf bytes.Buffer
			if err := tr.WriteNDJSON(&buf); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()

			path := decisionGoldenPath(cell.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestGolden -update .`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("decision trace drifted from %s\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}

			// The binary codec must round-trip the same trace the NDJSON
			// golden pins.
			var bin bytes.Buffer
			if err := tr.Encode(&bin); err != nil {
				t.Fatal(err)
			}
			tr2, err := decision.Decode(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			var buf2 bytes.Buffer
			if err := tr2.WriteNDJSON(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf2.Bytes()) {
				t.Error("binary round trip changed the NDJSON rendering")
			}
		})
	}
}

// TestDecisionGoldenFilesHaveCells mirrors TestGoldenFilesHaveCells for the
// decisions/ subdirectory.
func TestDecisionGoldenFilesHaveCells(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden", "decisions"))
	if err != nil {
		t.Skipf("no decision golden directory yet: %v", err)
	}
	known := map[string]bool{}
	for _, c := range decisionGoldenCells() {
		known[c.Name+".ndjson"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("stale decision golden %s has no matrix cell", e.Name())
		}
	}
}
