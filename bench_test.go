// Package visasim's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per artefact — see DESIGN.md's
// experiment index) plus throughput micro-benchmarks for the substrates.
//
// The figure benchmarks report the headline quantities as custom metrics
// (avf-reduction, ipc-change, pve, …) so `go test -bench` doubles as a
// compact reproduction report. Absolute wall-clock numbers measure the
// simulator, not the simulated machine.
package visasim

import (
	"encoding/json"
	"flag"
	"os"
	"sync"
	"testing"
	"time"

	"visasim/internal/ace"
	"visasim/internal/cluster"
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/experiments"
	"visasim/internal/explore"
	"visasim/internal/harness"
	"visasim/internal/inject"
	"visasim/internal/iqorg"
	"visasim/internal/isa"
	"visasim/internal/pipeline"
	"visasim/internal/trace"
	"visasim/internal/twin"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

// benchBudget keeps `go test -bench=.` affordable; cmd/experiments uses
// larger budgets for the recorded EXPERIMENTS.md runs.
const benchBudget = 60_000

func params() experiments.Params { return experiments.Params{Budget: benchBudget} }

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(params())
		if err != nil {
			b.Fatal(err)
		}
		var iq, rob float64
		for ci := 0; ci < 3; ci++ {
			iq += r.AVF[ci][0] / 3
			rob += r.AVF[ci][1] / 3
		}
		b.ReportMetric(100*iq, "iq-avf-%")
		b.ReportMetric(100*rob, "rob-avf-%")
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanLen, "mean-rql")
		b.ReportMetric(r.MeanACEPct, "ready-ace-%")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Average, "accuracy-%")
		b.ReportMetric(100*r.SquashedInclusive, "squashed-acc-%")
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AvgAVFReduction(2), "opt2-avf-cut-%")
		b.ReportMetric(100*r.AvgIPCChange(2), "opt2-ipc-change-%")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AvgAVFReduction(), "opt2-avf-cut-%")
		b.ReportMetric(100*r.AvgIPCChange(), "opt2-ipc-change-%")
	}
}

func benchDVM(b *testing.B, run func(experiments.Params) (*experiments.Fig8Result, error)) {
	for i := 0; i < b.N; i++ {
		r, err := run(params())
		if err != nil {
			b.Fatal(err)
		}
		var before, after float64
		for ci := 0; ci < 3; ci++ {
			before += 100 * r.PVEBase[ci][2] / 3 // 0.5*MaxAVF column
			after += 100 * r.PVEDVM[ci][2] / 3
		}
		b.ReportMetric(before, "pve-base-%")
		b.ReportMetric(after, "pve-dvm-%")
	}
}

func BenchmarkFig8(b *testing.B) { benchDVM(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B) { benchDVM(b, experiments.Fig9) }

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(params())
		if err != nil {
			b.Fatal(err)
		}
		var open, dyn float64
		for ci := 0; ci < 3; ci++ {
			for fi := range r.Fracs {
				open += 100 * r.PVE[2][ci][fi] // visa+opt2
				dyn += 100 * r.PVE[4][ci][fi]  // dvm-dynamic
			}
		}
		n := float64(3 * len(r.Fracs))
		b.ReportMetric(open/n, "pve-opt2-%")
		b.ReportMetric(dyn/n, "pve-dvm-%")
	}
}

func BenchmarkAblationOracleTags(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationOracleTags(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((r.Profiled[0]+r.Profiled[1]+r.Profiled[2])/3, "tags-norm-avf")
		b.ReportMetric((r.Oracle[0]+r.Oracle[1]+r.Oracle[2])/3, "oracle-norm-avf")
	}
}

func BenchmarkAblationTcache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationTcache(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormIPC[2], "t16-norm-ipc")
		b.ReportMetric(r.NormIPC[len(r.NormIPC)-1], "tinf-norm-ipc")
	}
}

func BenchmarkAblationIQSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationIQSize(params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AVF[len(r.AVF)-1]/r.AVF[0], "avf-128-over-32")
	}
}

func BenchmarkFaultInjection(b *testing.B) {
	var instrs uint64
	var simTime time.Duration
	for i := 0; i < b.N; i++ {
		proc := newBenchProcessor(b, workload.Mixes()[0].Benchmarks[:])
		t0 := time.Now()
		c, err := inject.Run(proc, inject.Options{
			Instructions:     benchBudget,
			StrikesPerKCycle: 400,
			Seed:             uint64(i),
		})
		simTime += time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		instrs += benchBudget
		b.ReportMetric(100*c.EmpiricalAVF(), "empirical-avf-%")
		b.ReportMetric(100*c.MeasuredAVF, "accounted-avf-%")
	}
	recordBench(b, "FaultInjection", 0, instrs, simTime)
}

// --- substrate micro-benchmarks -------------------------------------------

// benchJSONPath, when set, makes the throughput benchmarks append their
// results to a machine-readable JSON file (see `make bench-throughput`,
// which writes BENCH_pr7.json) so throughput regressions are diffable
// across PRs. For BenchmarkTwinScreen the Instructions field counts
// screened configurations, so InstrsPerSec is configs/sec.
var benchJSONPath = flag.String("bench-json", "", "write throughput benchmark records to this JSON file")

// benchRecord is one benchmark's machine-readable result. Cycle-rate
// fields carry omitempty: instruction-only benchmarks (dispatch
// scheduling, fault-injection screening) have no simulated-cycle notion,
// and a literal `"CyclesPerSec": 0` in the JSON reads as a catastrophic
// regression rather than "not measured".
type benchRecord struct {
	Cycles       uint64  `json:",omitempty"` // simulated cycles across all iterations
	Instructions uint64  // committed instructions across all iterations
	Seconds      float64 // wall-clock spent simulating
	CyclesPerSec float64 `json:",omitempty"`
	InstrsPerSec float64
	// SkippedCycles counts cycles advanced by dead-cycle skip-ahead
	// (included in Cycles); simulation benchmarks report it so the
	// skip-ahead contribution stays attributable across PRs.
	SkippedCycles uint64 `json:",omitempty"`
}

var (
	benchRecMu sync.Mutex
	benchRecs  = map[string]benchRecord{}
)

// recordBench stores a benchmark record and rewrites the JSON file (maps
// marshal with sorted keys, so the output is stable). Pass cycles 0 for
// instruction-only benchmarks; the zero-valued cycle-rate fields are then
// omitted from the JSON. The optional trailing count is skipped cycles.
func recordBench(b *testing.B, name string, cycles, instrs uint64, elapsed time.Duration, skipped ...uint64) {
	b.Helper()
	if *benchJSONPath == "" || elapsed <= 0 {
		return
	}
	rec := benchRecord{
		Cycles:       cycles,
		Instructions: instrs,
		Seconds:      elapsed.Seconds(),
		InstrsPerSec: float64(instrs) / elapsed.Seconds(),
	}
	if cycles > 0 {
		rec.CyclesPerSec = float64(cycles) / elapsed.Seconds()
	}
	for _, s := range skipped {
		rec.SkippedCycles += s
	}
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	benchRecs[name] = rec
	blob, err := json.MarshalIndent(benchRecs, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*benchJSONPath, append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchSimThroughput runs one full-pipeline throughput benchmark on the
// given workload mix and records it under recName. Skipped cycles are
// reported separately so the dead-cycle skip-ahead contribution stays
// attributable across PRs (skipped cycles cost ~nothing; the cycles/sec
// headline includes them because they are simulated time the experiments
// would otherwise have to step through).
func benchSimThroughput(b *testing.B, names []string, recName string) {
	var cycles, instrs, skipped uint64
	var simTime time.Duration
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		proc := newBenchProcessor(b, names)
		b.StartTimer()
		t0 := time.Now()
		res := proc.Run()
		simTime += time.Since(t0)
		cycles += res.Cycles
		instrs += res.TotalCommits()
		skipped += res.SkippedCycles
		b.ReportMetric(float64(res.Cycles), "cycles/op")
		b.ReportMetric(float64(res.TotalCommits()), "instrs/op")
	}
	if simTime > 0 {
		b.ReportMetric(float64(cycles)/simTime.Seconds(), "cycles/sec")
	}
	if cycles > 0 {
		b.ReportMetric(100*float64(skipped)/float64(cycles), "skipped-%")
	}
	recordBench(b, recName, cycles, instrs, simTime, skipped)
}

// BenchmarkSimulatorThroughput measures simulated cycles per second on the
// CPU group A workload: the figure that bounds every experiment's cost.
func BenchmarkSimulatorThroughput(b *testing.B) {
	benchSimThroughput(b, workload.Mixes()[0].Benchmarks[:], "SimulatorThroughput")
}

// BenchmarkSimulatorThroughputMEM is the memory-bound counterpart (MEM
// group A): long L2-miss stalls make dead-cycle skip-ahead and the cached
// load-block disposition dominant here, so this record attributes those
// wins separately from the SoA and batching wins visible on the CPU-bound
// mix.
func BenchmarkSimulatorThroughputMEM(b *testing.B) {
	benchSimThroughput(b, workload.MixesIn(workload.CatMEM)[0].Benchmarks[:], "SimulatorThroughputMEM")
}

// BenchmarkSimulatorThroughputMIX covers the third standard mix category
// (MIX group A, CPU+MEM blend).
func BenchmarkSimulatorThroughputMIX(b *testing.B) {
	benchSimThroughput(b, workload.MixesIn(workload.CatMIX)[0].Benchmarks[:], "SimulatorThroughputMIX")
}

// BenchmarkBatchedSweep measures sweep throughput through the harness — the
// batched-cell path where workers reuse per-worker uop pools and all cells
// share the tagged-program cache. One op = a six-cell sweep spanning the
// CPU/MIX/MEM group-A mixes under both schedulers. Cycles/sec here is
// aggregate across workers (it scales with GOMAXPROCS), so compare it
// against itself across PRs, not against the single-core records above.
func BenchmarkBatchedSweep(b *testing.B) {
	mixes := workload.Mixes()
	var cells []harness.Cell
	for _, mi := range []int{0, 3, 6} { // CPU-A, MIX-A, MEM-A
		for _, s := range []core.Scheme{core.SchemeBase, core.SchemeVISA} {
			cells = append(cells, harness.Cell{
				Key: mixes[mi].Name + "/" + s.String(),
				Cfg: core.Config{
					Benchmarks:      mixes[mi].Benchmarks[:],
					Scheme:          s,
					Policy:          pipeline.PolicyICOUNT,
					MaxInstructions: benchBudget / 4,
				},
			})
		}
	}
	var cycles, instrs, skipped uint64
	var simTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := harness.Run(cells, harness.Options{})
		simTime += time.Since(t0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			cycles += r.Cycles
			instrs += r.TotalCommits()
			skipped += r.SkippedCycles
		}
	}
	if simTime > 0 {
		b.ReportMetric(float64(cycles)/simTime.Seconds(), "cycles/sec")
	}
	recordBench(b, "BatchedSweep", cycles, instrs, simTime, skipped)
}

// BenchmarkTwinScreen measures the analytical twin's screening throughput
// (configs/sec): the rate internal/explore evaluates design points at
// during screen-then-verify exploration. One op = one Decode+Evaluate over
// the default design space, single goroutine.
func BenchmarkTwinScreen(b *testing.B) {
	model, err := twin.Default()
	if err != nil {
		b.Fatal(err)
	}
	enum, err := explore.DefaultSpace().Compile(model)
	if err != nil {
		b.Fatal(err)
	}
	var in twin.Input
	var pred twin.Prediction
	size := enum.Size()
	b.ResetTimer()
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		enum.Decode(int64(i)%size, &in)
		model.Evaluate(&in, &pred)
	}
	elapsed := time.Since(t0)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "configs/sec")
	}
	recordBench(b, "TwinScreen", 0, uint64(b.N), elapsed)
}

// BenchmarkDispatchScheduler measures the coordinator's scheduling overhead
// (items/sec): cost estimation through the analytical twin plus a Push/Pop
// round trip through the priority queue under SJF ordering, the most
// expensive scheduler configuration. One op = one item scheduled; items
// cycle through all priority classes and a spread of budgets so the heap
// sees realistic reordering. The Instructions field of the JSON record
// counts scheduled items, so InstrsPerSec is items/sec.
func BenchmarkDispatchScheduler(b *testing.B) {
	model, err := twin.Default()
	if err != nil {
		b.Fatal(err)
	}
	cost := cluster.TwinCost(model)
	mixes := workload.Mixes()
	cfgs := make([]core.Config, 8)
	for i := range cfgs {
		cfgs[i] = core.Config{
			Benchmarks:      mixes[i%len(mixes)].Benchmarks[:],
			Scheme:          core.SchemeBase,
			MaxInstructions: uint64(50_000 * (i + 1)),
		}
	}
	q := cluster.NewQueue(cluster.OrderSJF)
	const batch = 64 // drain in batches so the heap reaches real depth
	b.ResetTimer()
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		q.Push(&cluster.Item{
			Class: cluster.PriorityClass(i % cluster.NumClasses),
			Cost:  cost(cfgs[i%len(cfgs)]),
		})
		if (i+1)%batch == 0 {
			for j := 0; j < batch; j++ {
				q.Pop()
			}
		}
	}
	for q.Len() > 0 {
		q.Pop()
	}
	elapsed := time.Since(t0)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "items/sec")
	}
	recordBench(b, "DispatchScheduler", 0, uint64(b.N), elapsed)
}

func BenchmarkTraceExecutor(b *testing.B) {
	w := workload.MustGet("gcc")
	prog, err := w.Generate()
	if err != nil {
		b.Fatal(err)
	}
	exec := trace.NewExecutor(prog, 1, 0)
	var d trace.DynInst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Next(&d)
	}
}

func BenchmarkACEAnalyzer(b *testing.B) {
	w := workload.MustGet("gcc")
	prog, err := w.Generate()
	if err != nil {
		b.Fatal(err)
	}
	exec := trace.NewExecutor(prog, 1, 0)
	an := ace.New(ace.DefaultWindow, func(uint64, bool) {})
	var d trace.DynInst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Next(&d)
		an.Retire(&d)
	}
}

// iqOrgBenchUops builds a reusable pool of synthetic uops spread across
// four threads, sized to fill one issue queue per pass.
func iqOrgBenchUops(n int) []*uarch.Uop {
	in := &isa.Inst{Kind: isa.IntALU, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	pool := make([]*uarch.Uop, n)
	for i := range pool {
		pool[i] = &uarch.Uop{Dyn: trace.DynInst{Static: in}, Thread: int32(i % 4), IQSlot: -1, LSQSlot: -1}
	}
	return pool
}

// iqOrgPass runs one synthetic fill/wake/drain pass shaped like the
// pipeline's issue-queue hot path: storage operations (Insert, Wake,
// Remove) go straight to the shared queue; the policy decisions
// (CanAccept, Select, EndCycle) dispatch through the Organization
// interface when org is non-nil, and hand-inline the seed's unified-AGE
// behaviour when it is nil (the "direct" baseline; the internal/iqorg
// overhead test asserts the difference stays under 5%). Odd-indexed uops
// arrive with a pending source so half the pool takes the Wake path;
// draining selects oldest-first in issue-width batches. Returns the
// select cycles and queue ops consumed.
func iqOrgPass(org iqorg.Organization, q *uarch.IQ, pool []*uarch.Uop, age uint64) (cycles, ops uint64) {
	const issueWidth = 8
	for i, u := range pool {
		u.Age = age + uint64(i)
		u.SrcPending = int8(i & 1)
		if q.Full() || (org != nil && !org.CanAccept(int(u.Thread))) {
			u.SrcPending = 0
			continue
		}
		q.Insert(u)
		ops++
	}
	for _, u := range pool {
		if u.IQSlot >= 0 && u.SrcPending != 0 {
			u.SrcPending = 0
			q.Wake(u)
			ops++
		}
	}
	for q.Len() > 0 {
		var sel []int32
		if org != nil {
			sel = org.Select(uarch.SchedOldestFirst)
		} else {
			sel = q.ReadyCandidates(uarch.SchedOldestFirst)
		}
		ops++
		if len(sel) == 0 {
			break
		}
		if len(sel) > issueWidth {
			sel = sel[:issueWidth]
		}
		for _, slot := range sel {
			q.Remove(q.At(int(slot)))
			ops++
		}
		if org != nil {
			org.EndCycle(age + cycles)
		}
		cycles++
	}
	return cycles, ops
}

// BenchmarkIQOrganizations measures the issue-queue organization layer's
// op throughput (ops/sec over Insert+Wake+Select+Remove) for every
// registered organization, plus the "direct" bare-queue baseline. One op
// unit = one fill/wake/drain pass over a paper-sized 96-entry queue.
func BenchmarkIQOrganizations(b *testing.B) {
	iqSize := config.Default().IQSize
	variants := []struct {
		name string
		mk   func() iqorg.Organization
	}{
		{"direct", nil},
	}
	for _, k := range iqorg.Kinds() {
		k := k
		variants = append(variants, struct {
			name string
			mk   func() iqorg.Organization
		}{k.String(), func() iqorg.Organization { return iqorg.NewKind(k, uarch.NewIQ(iqSize), 0) }})
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			pool := iqOrgBenchUops(iqSize)
			var org iqorg.Organization
			q := uarch.NewIQ(iqSize)
			if v.mk != nil {
				org = v.mk()
				q = org.Queue()
			}
			var cycles, ops uint64
			age := uint64(0)
			b.ResetTimer()
			t0 := time.Now()
			for i := 0; i < b.N; i++ {
				c, o := iqOrgPass(org, q, pool, age)
				cycles += c
				ops += o
				age += uint64(iqSize) + c
			}
			elapsed := time.Since(t0)
			if elapsed > 0 {
				b.ReportMetric(float64(ops)/elapsed.Seconds(), "queue-ops/sec")
			}
			recordBench(b, "IQOrg/"+v.name, cycles, ops, elapsed)
		})
	}
}

func BenchmarkProgramGeneration(b *testing.B) {
	w := workload.MustGet("gcc")
	for i := 0; i < b.N; i++ {
		if _, err := w.Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchProcessor(b *testing.B, names []string) *pipeline.Processor {
	b.Helper()
	streams := make([]*trace.Stream, len(names))
	for i, name := range names {
		w, err := workload.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := core.ProfileFor(w, benchBudget+8192, ace.DefaultWindow)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := w.Generate()
		if err != nil {
			b.Fatal(err)
		}
		prof.Apply(prog)
		streams[i] = trace.NewStream(trace.NewExecutor(prog, w.Params.Seed, i), prof.Bits)
	}
	proc, err := pipeline.New(pipeline.Params{
		Machine:         config.Default(),
		Scheduler:       uarch.SchedOldestFirst,
		Policy:          pipeline.PolicyICOUNT,
		Streams:         streams,
		MaxInstructions: benchBudget,
	})
	if err != nil {
		b.Fatal(err)
	}
	return proc
}
