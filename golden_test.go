package visasim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test -run TestGolden -update .
//
// Goldens pin the simulator's numeric results bit-for-bit. Any hot-path
// change must leave them byte-identical; only a deliberate modelling change
// may regenerate them, and the diff then documents exactly what moved.
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenBudget keeps the matrix affordable; combined with the default
// warmup (budget/4) each cell simulates 30K instructions.
const goldenBudget = 24_000

// goldenCell is one pinned scheme × workload × policy combination. The
// matrix spans every machinery class the optimization can disturb: the
// baseline scheduler, VISA issue prioritisation, dynamic IQ allocation
// (opt1/opt2 with FLUSH), DVM's waiting-queue throttling, and the FLUSH
// fetch policy's squash-heavy paths on a memory-bound mix.
type goldenCell struct {
	Name   string
	Cfg    core.Config
	Budget uint64
}

func goldenCells() []goldenCell {
	cpuA := []string{"bzip2", "eon", "gcc", "perlbmk"}
	memA := []string{"mcf", "equake", "vpr", "swim"}
	mixA := []string{"gcc", "mcf", "vpr", "perlbmk"}
	cells := []goldenCell{
		{"cpuA-base-icount", core.Config{Benchmarks: cpuA, Scheme: core.SchemeBase, Policy: pipeline.PolicyICOUNT}, goldenBudget},
		{"cpuA-visa-icount", core.Config{Benchmarks: cpuA, Scheme: core.SchemeVISA, Policy: pipeline.PolicyICOUNT}, goldenBudget},
		{"cpuA-visaopt2-icount", core.Config{Benchmarks: cpuA, Scheme: core.SchemeVISAOpt2, Policy: pipeline.PolicyICOUNT}, goldenBudget},
		{"memA-base-flush", core.Config{Benchmarks: memA, Scheme: core.SchemeBase, Policy: pipeline.PolicyFLUSH}, goldenBudget},
		{"memA-dvm-icount", core.Config{Benchmarks: memA, Scheme: core.SchemeDVM, Policy: pipeline.PolicyICOUNT, DVMTarget: 0.04}, goldenBudget},
		{"mixA-visaopt1-icount", core.Config{Benchmarks: mixA, Scheme: core.SchemeVISAOpt1, Policy: pipeline.PolicyICOUNT}, goldenBudget},
	}
	for i := range cells {
		cells[i].Cfg.MaxInstructions = cells[i].Budget
		// Sampled invariant checking: every golden run also cross-checks
		// the incremental fast-path counters against the full walk.
		cells[i].Cfg.InvariantEvery = 1024
	}
	return cells
}

// goldenSummary is the pinned projection of a core.Result. Floats are
// serialized by encoding/json in shortest-round-trip form, so a byte-equal
// comparison is a bit-exact comparison.
type goldenSummary struct {
	Cycles        uint64
	Commits       []uint64
	ThroughputIPC float64
	HarmonicIPC   float64

	IQAVF        float64
	IQAVFTagged  float64
	ROBAVF       float64
	ROBAVFTagged float64
	RFAVF        float64
	FUAVF        float64
	MaxIQAVF     float64
	MaxROBAVF    float64

	L2Misses         uint64
	Mispredicts      uint64
	Fetched          uint64
	WrongPathFetched uint64
	Squashed         uint64
	SquashedTagged   uint64
	Flushes          uint64

	MeanIQOccupancy       float64
	MeanReadyLen          float64
	MeanResidencyTagged   float64
	MeanResidencyUntagged float64
	MeanReadyWaitTagged   float64
	MeanReadyWaitUntagged float64
	IQThreadShare         []float64

	Intervals    int
	DVMMeanRatio float64
}

func summarize(r *core.Result) goldenSummary {
	return goldenSummary{
		Cycles:        r.Cycles,
		Commits:       r.Commits,
		ThroughputIPC: r.ThroughputIPC,
		HarmonicIPC:   r.HarmonicIPC,

		IQAVF:        r.IQAVF,
		IQAVFTagged:  r.IQAVFTagged,
		ROBAVF:       r.ROBAVF,
		ROBAVFTagged: r.ROBAVFTagged,
		RFAVF:        r.RFAVF,
		FUAVF:        r.FUAVF,
		MaxIQAVF:     r.MaxIQAVF,
		MaxROBAVF:    r.MaxROBAVF,

		L2Misses:         r.L2Misses,
		Mispredicts:      r.Mispredicts,
		Fetched:          r.Fetched,
		WrongPathFetched: r.WrongPathFetched,
		Squashed:         r.Squashed,
		SquashedTagged:   r.SquashedTagged,
		Flushes:          r.Flushes,

		MeanIQOccupancy:       r.MeanIQOccupancy,
		MeanReadyLen:          r.MeanReadyLen,
		MeanResidencyTagged:   r.MeanResidencyTagged,
		MeanResidencyUntagged: r.MeanResidencyUntagged,
		MeanReadyWaitTagged:   r.MeanReadyWaitTagged,
		MeanReadyWaitUntagged: r.MeanReadyWaitUntagged,
		IQThreadShare:         r.IQThreadShare,

		Intervals:    len(r.Intervals),
		DVMMeanRatio: r.DVMMeanRatio,
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func TestGoldenResults(t *testing.T) {
	for _, cell := range goldenCells() {
		t.Run(cell.Name, func(t *testing.T) {
			t.Parallel()
			res, err := core.Run(cell.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(summarize(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := goldenPath(cell.Name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestGolden -update .`): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("result drifted from %s\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestGoldenFilesHaveCells fails when a golden file exists without a
// matching matrix cell — stale goldens would otherwise silently stop
// guarding anything.
func TestGoldenFilesHaveCells(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Skipf("no golden directory yet: %v", err)
	}
	known := map[string]bool{}
	for _, c := range goldenCells() {
		known[c.Name+".json"] = true
	}
	for _, e := range entries {
		if e.IsDir() {
			// Subdirectories hold other golden families (e.g. decisions/,
			// checked by TestDecisionGoldenFilesHaveCells).
			continue
		}
		if !known[e.Name()] {
			t.Errorf("stale golden file %s has no matrix cell", e.Name())
		}
	}
}
