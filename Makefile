# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short test-race test-cover cluster-test cluster-smoke obs-smoke explore-smoke perf-smoke docs-lint bench bench-throughput golden twin-golden experiments examples serve fmt vet staticcheck clean

all: build test

build:
	$(GO) build ./...

# Tier-1 gate: vet first, then the full suite.
test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-enabled pass over the whole module; the harness determinism test
# exercises the worker pool under the race detector. The race detector's
# ~10x slowdown pushes the experiments package past go test's default
# 10-minute budget, hence the explicit timeout.
test-race:
	$(GO) test -race -timeout 45m ./...

# Full-module coverage: the go test output is the per-package summary
# (each "ok" line carries its coverage %), the profile lands in coverage.out
# (kept as a CI artifact; locally: go tool cover -html=coverage.out).
test-cover:
	$(GO) test -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Cluster test: in-process backends exercising the control plane end to end
# — dispatch parity and resume, priority scheduling and starvation
# resistance, dynamic join/drain mid-sweep, affinity routing, the HTTP
# control plane, and tenant admission with client 429 backoff (see
# internal/dispatch, internal/cluster, DESIGN.md §12).
cluster-test:
	$(GO) test -v -run 'TestClusterParity|TestResumeSkipsCompletedCells|TestPrioritySchedulingResistsStarvation|TestJoinAndDrainMidSweepLosesNoCells|TestDynamicPoolWaitsForFirstBackend|TestAffinityRoutingBeatsRandom|TestCoordinatorAdmission|TestControlPlaneLifecycle' ./internal/dispatch/
	$(GO) test -v -run 'TestTenantAdmission|TestClientBacksOffOn429' ./internal/server/

# Cluster smoke test: real processes — a visasimcoord with zero static
# backends, two self-registering visasimd daemons, mixed-priority tenanted
# sweeps, and a mid-flight drain, asserting byte-identical results against
# a local run (see scripts/cluster-smoke.sh).
cluster-smoke:
	./scripts/cluster-smoke.sh

# Observability smoke test: boots a real visasimd, runs one cell with a
# known sweep correlation ID, then asserts /metrics/prom serves valid
# Prometheus text (histograms included) and the daemon's structured logs
# carry the sweep ID (see DESIGN.md §9).
obs-smoke:
	./scripts/obs-smoke.sh

# Design-space exploration smoke test: screens a seeded sample through the
# analytical twin and verifies the frontier locally, through a real
# visasimd, and through the dispatch coordinator, asserting the three
# frontier reports are byte-identical (see internal/explore, DESIGN.md §11).
explore-smoke:
	./scripts/explore-smoke.sh

# Prose gate: README/DESIGN/EXPERIMENTS/ROADMAP/CHANGES links and anchors
# must resolve, and every cmd/* binary must be mentioned in README.
docs-lint:
	./scripts/docs-lint.sh

bench:
	$(GO) test -bench=. -benchmem .

# Simulator-, twin- and scheduler-throughput benchmarks only; writes
# machine-readable results to BENCH_pr10.json for regression tracking across
# PRs (earlier PRs' records live in BENCH_pr1/7/8/9.json). The per-mix
# simulator benches (CPU-A, MEM-A, MIX-A) and the batched sweep attribute
# the event-driven core's wins per workload category.
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkBatchedSweep|BenchmarkFaultInjection|BenchmarkTwinScreen|BenchmarkDispatchScheduler|BenchmarkIQOrganizations' -benchmem -bench-json BENCH_pr10.json .

# Throughput-floor gate: one baseline cell per workload category through the
# harness, single worker, asserting every cell clears 354266 cycles/sec —
# 2x the PR1 baseline (177133, see BENCH_pr1.json) — so a core-loop
# performance regression fails the build rather than landing silently.
perf-smoke:
	$(GO) run ./cmd/experiments -n 200000 -workers 1 -bench-json /tmp/perf-smoke.json -bench-min 354266 bench

# Regenerates testdata/golden from current simulator behaviour. Only run
# after a deliberate modelling change; commit the diff with an explanation.
golden:
	$(GO) test . -run TestGolden -update

# Refits the analytical twin against fresh simulator measurements and
# rewrites internal/twin/model.json plus testdata/golden/twin. Run after
# any change to the simulator's modelled behaviour or the twin's equations;
# commit both artifacts together.
twin-golden:
	$(GO) test ./internal/twin -run TestGoldenCalibration -update

# Regenerates every table and figure at the recorded budget (see
# EXPERIMENTS.md). Takes several minutes.
experiments:
	$(GO) run ./cmd/experiments -n 400000 all
	$(GO) run ./cmd/experiments -n 200000 ablations ext-rob

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/memhog
	$(GO) run ./examples/dvmbudget
	$(GO) run ./examples/profiling
	$(GO) run ./examples/service

# Run the simulation daemon (see README "Simulation service").
serve:
	$(GO) run ./cmd/visasimd -addr :8080

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Needs staticcheck on PATH (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@2024.1.1).
staticcheck:
	staticcheck ./...

clean:
	$(GO) clean ./...
