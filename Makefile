# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short bench experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerates every table and figure at the recorded budget (see
# EXPERIMENTS.md). Takes several minutes.
experiments:
	$(GO) run ./cmd/experiments -n 400000 all
	$(GO) run ./cmd/experiments -n 200000 ablations ext-rob

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/memhog
	$(GO) run ./examples/dvmbudget
	$(GO) run ./examples/profiling

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
