// Quickstart: simulate the paper's 4-context CPU workload (bzip2, eon, gcc,
// perlbmk) on the Table 2 SMT machine, first unprotected and then with the
// full VISA+opt2 reliability scheme, and compare issue-queue vulnerability
// and performance.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

func main() {
	workload := []string{"bzip2", "eon", "gcc", "perlbmk"}

	base, err := core.Run(core.Config{
		Benchmarks:      workload,
		Scheme:          core.SchemeBase,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	protected, err := core.Run(core.Config{
		Benchmarks:      workload,
		Scheme:          core.SchemeVISAOpt2,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %v\n\n", workload)
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "visa+opt2")
	fmt.Printf("%-22s %12.3f %12.3f\n", "throughput IPC", base.ThroughputIPC, protected.ThroughputIPC)
	fmt.Printf("%-22s %12.4f %12.4f\n", "IQ AVF", base.IQAVF, protected.IQAVF)
	fmt.Printf("%-22s %12.4f %12.4f\n", "max interval IQ AVF", base.MaxIQAVF, protected.MaxIQAVF)
	fmt.Printf("\nIQ vulnerability reduced %.0f%% at %+.1f%% IPC\n",
		100*(1-protected.IQAVF/base.IQAVF),
		100*(protected.ThroughputIPC/base.ThroughputIPC-1))
}
