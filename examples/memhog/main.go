// memhog shows why the paper's opt2 exists: on a mixed workload where mcf
// floods the shared issue queue with cache-miss-dependent instructions,
// plain dynamic IQ capping (opt1) throttles everyone, while the
// L2-miss-sensitive variant (opt2) switches to FLUSH and recovers the
// performance — with a larger vulnerability reduction than either.
//
// Run with: go run ./examples/memhog
package main

import (
	"fmt"
	"log"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

func main() {
	// Table 3's MIX group A: two compute-bound threads (gcc, perlbmk)
	// sharing the core with two memory-bound ones (mcf, vpr).
	workload := []string{"gcc", "mcf", "vpr", "perlbmk"}

	fmt.Printf("workload: %v\n\n", workload)
	fmt.Printf("%-12s %10s %10s %10s %9s\n", "scheme", "IPC", "harmonic", "IQ AVF", "flushes")

	var base *core.Result
	for _, scheme := range []core.Scheme{
		core.SchemeBase, core.SchemeVISA, core.SchemeVISAOpt1, core.SchemeVISAOpt2,
	} {
		res, err := core.Run(core.Config{
			Benchmarks:      workload,
			Scheme:          scheme,
			Policy:          pipeline.PolicyICOUNT,
			MaxInstructions: 200_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if scheme == core.SchemeBase {
			base = res
		}
		fmt.Printf("%-12v %10.3f %10.3f %10.4f %9d\n",
			scheme, res.ThroughputIPC, res.HarmonicIPC, res.IQAVF, res.Flushes)
	}

	fmt.Printf("\nbaseline diagnosis: %.0f%% mean IQ occupancy, %.1f L2 misses per 1K instructions\n",
		100*base.MeanIQOccupancy/96, 1000*float64(base.L2Misses)/float64(base.TotalCommits()))
}
