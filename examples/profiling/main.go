// profiling walks the offline vulnerability-profiling flow the paper's ISA
// extension depends on (§2.1): classify a benchmark's dynamic instructions
// as ACE/un-ACE with the post-retirement liveness analyzer, collapse to
// per-PC tags, and inspect what the 1-bit tags get right and wrong.
//
// Run with: go run ./examples/profiling
package main

import (
	"fmt"
	"log"

	"visasim/internal/ace"
	"visasim/internal/core"
	"visasim/internal/isa"
	"visasim/internal/workload"
)

func main() {
	for _, name := range []string{"gcc", "mesa", "mcf"} {
		b, err := workload.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := core.ProfileFor(b, 300_000, ace.DefaultWindow)
		if err != nil {
			log.Fatal(err)
		}

		prog, err := b.Generate()
		if err != nil {
			log.Fatal(err)
		}
		prof.Apply(prog)

		// Count per-kind tag composition.
		var taggedByKind, totalByKind [isa.NumKinds]int
		for i := range prog.Instrs {
			k := prog.Instrs[i].Kind
			totalByKind[k]++
			if prog.Instrs[i].ACETag {
				taggedByKind[k]++
			}
		}

		fmt.Printf("%s (%s-intensive): %d dynamic instructions profiled\n",
			name, b.Class, prof.DynInstrs)
		fmt.Printf("  ACE fraction %.1f%%, per-PC tag accuracy %.1f%%\n",
			100*prof.ACEFraction(), 100*prof.Accuracy())
		for k := isa.Kind(0); int(k) < isa.NumKinds; k++ {
			if totalByKind[k] == 0 {
				continue
			}
			fmt.Printf("  %-6v %5d static, %4.0f%% tagged ACE\n",
				k, totalByKind[k], 100*float64(taggedByKind[k])/float64(totalByKind[k]))
		}
		fmt.Println()
	}
	fmt.Println("The tags above are what VISA issue reads: a branch is always ACE,")
	fmt.Println("NOPs never are, and everything else depends on whether its value")
	fmt.Println("can still reach architectural state.")
}
