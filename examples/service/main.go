// Service example: run the visasimd simulation service in-process, then use
// the programmatic client to submit a small VISA-vs-baseline sweep (ICOUNT
// fetch policy) and print the issue-queue AVF delta. The sweep is submitted
// twice to show the content-addressed cache at work: the second submission
// is served without re-simulating, byte-identical to the first.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/server"
)

func main() {
	// The daemon, on a loopback port. Against a real deployment only the
	// client half of this program is needed.
	srv := server.New(server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck

	cli := &server.Client{BaseURL: "http://" + ln.Addr().String()}
	workload := []string{"bzip2", "eon", "gcc", "perlbmk"}
	cells := []harness.Cell{
		{Key: "base", Cfg: core.Config{Benchmarks: workload, Scheme: core.SchemeBase,
			Policy: pipeline.PolicyICOUNT, MaxInstructions: 100_000}},
		{Key: "visa", Cfg: core.Config{Benchmarks: workload, Scheme: core.SchemeVISA,
			Policy: pipeline.PolicyICOUNT, MaxInstructions: 100_000}},
	}

	t0 := time.Now()
	res, err := cli.Run(cells, harness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(t0)

	base, visa := res["base"], res["visa"]
	fmt.Printf("workload %v under ICOUNT\n\n", workload)
	fmt.Printf("%-16s %10s %10s\n", "", "base", "visa")
	fmt.Printf("%-16s %10.4f %10.4f\n", "IQ AVF", base.IQAVF, visa.IQAVF)
	fmt.Printf("%-16s %10.3f %10.3f\n", "throughput IPC", base.ThroughputIPC, visa.ThroughputIPC)
	fmt.Printf("\nVISA issue cuts IQ AVF by %.1f%% at %+.1f%% IPC\n",
		100*(1-visa.IQAVF/base.IQAVF),
		100*(visa.ThroughputIPC/base.ThroughputIPC-1))

	// Same sweep again: every cell is a cache hit.
	t0 = time.Now()
	if _, err := cli.Run(cells, harness.Options{}); err != nil {
		log.Fatal(err)
	}
	warm := time.Since(t0)
	fmt.Printf("\nfirst run %v, cached rerun %v\n", cold.Round(time.Millisecond), warm.Round(time.Millisecond))

	metrics, err := http.Get(cli.BaseURL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer metrics.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(metrics.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon metrics: sims_run=%v cache_hits=%v cache_hit_ratio=%.2f\n",
		m["sims_run"], m["cache_hits"], m["cache_hit_ratio"])

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	httpSrv.Shutdown(ctx) //nolint:errcheck
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
