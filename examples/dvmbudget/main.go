// dvmbudget demonstrates dynamic vulnerability management (§5): pick a
// reliability budget for the issue queue — a fraction of the worst-case
// interval AVF the unmanaged machine exhibits — and let DVM keep every 10K-
// cycle interval under it, trading as little performance as it can.
//
// Run with: go run ./examples/dvmbudget
package main

import (
	"fmt"
	"log"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

func main() {
	// A memory-heavy workload: the hardest case for interval AVF spikes
	// (L2-miss clogs park ACE bits in the IQ for hundreds of cycles).
	workload := []string{"mcf", "equake", "vpr", "swim"}
	const budget = 200_000

	base, err := core.Run(core.Config{
		Benchmarks:      workload,
		Scheme:          core.SchemeBase,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %v\n", workload)
	fmt.Printf("unmanaged: IPC %.3f, mean IQ AVF %.4f, MaxIQ_AVF %.4f\n\n",
		base.ThroughputIPC, base.IQAVF, base.MaxIQAVF)

	fmt.Printf("%-14s %12s %12s %12s %10s\n",
		"target", "PVE before", "PVE w/ DVM", "IPC cost", "wq_ratio")
	for _, frac := range []float64{0.7, 0.5, 0.3} {
		target := frac * base.MaxIQAVF
		dvm, err := core.Run(core.Config{
			Benchmarks:      workload,
			Scheme:          core.SchemeDVM,
			Policy:          pipeline.PolicyICOUNT,
			MaxInstructions: budget,
			DVMTarget:       target,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.1f*MaxAVF     %11.1f%% %11.1f%% %+11.1f%% %10.2f\n",
			frac,
			100*base.PVE(target),
			100*dvm.PVE(target),
			100*(1-dvm.ThroughputIPC/base.ThroughputIPC),
			dvm.DVMMeanRatio)
	}
	fmt.Println("\n(PVE = fraction of intervals whose IQ AVF exceeds the target;")
	fmt.Println(" IPC cost is relative slowdown versus the unmanaged machine)")
}
