// Package branch implements the front-end branch prediction resources of
// Table 2: a gshare direction predictor with per-thread global history, a
// set-associative branch target buffer shared by all threads, and a bounded
// per-thread return address stack.
//
// History is updated speculatively at prediction time and repaired from a
// per-branch checkpoint on misprediction, as the pipeline does.
package branch

import (
	"math/bits"

	"visasim/internal/config"
)

// Checkpoint captures the speculative predictor state at a branch so a
// misprediction can restore it.
type Checkpoint struct {
	History uint32
	RASTop  int
	RASVal  uint64
}

// Predictor is the per-core branch prediction unit.
type Predictor struct {
	cfg config.BranchConfig

	pht     []uint8  // 2-bit saturating counters, shared across threads
	history []uint32 // per-thread global history

	btb      []btbEntry // sets*assoc
	btbAssoc int
	btbMask  uint64

	ras   [][]uint64 // per-thread circular RAS
	rasSP []int      // per-thread top index

	// Stats.
	Lookups     uint64
	Mispredicts uint64
	BTBMisses   uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
	used   uint64
}

// New builds a predictor for nthreads contexts.
func New(cfg config.BranchConfig, nthreads int) *Predictor {
	sets := cfg.BTBEntries / cfg.BTBAssoc
	p := &Predictor{
		cfg:      cfg,
		pht:      make([]uint8, cfg.GshareEntries),
		history:  make([]uint32, nthreads),
		btb:      make([]btbEntry, cfg.BTBEntries),
		btbAssoc: cfg.BTBAssoc,
		btbMask:  uint64(sets - 1),
		ras:      make([][]uint64, nthreads),
		rasSP:    make([]int, nthreads),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	for t := range p.ras {
		p.ras[t] = make([]uint64, cfg.RASEntries)
	}
	return p
}

func (p *Predictor) phtIndex(thread int, pc uint64) int {
	if p.cfg.Kind == config.PredBimodal {
		return int(pc >> 2 & uint64(p.cfg.GshareEntries-1))
	}
	h := uint64(p.history[thread]) & ((1 << p.cfg.HistoryBits) - 1)
	return int((pc>>2 ^ h) & uint64(p.cfg.GshareEntries-1))
}

// Checkpoint snapshots thread's speculative state before a prediction.
func (p *Predictor) Checkpoint(thread int) Checkpoint {
	sp := p.rasSP[thread]
	top := (sp - 1 + len(p.ras[thread])) % len(p.ras[thread])
	return Checkpoint{
		History: p.history[thread],
		RASTop:  sp,
		RASVal:  p.ras[thread][top],
	}
}

// Restore rewinds thread's speculative state to cp (misprediction repair).
func (p *Predictor) Restore(thread int, cp Checkpoint) {
	p.history[thread] = cp.History
	p.rasSP[thread] = cp.RASTop
	top := (cp.RASTop - 1 + len(p.ras[thread])) % len(p.ras[thread])
	p.ras[thread][top] = cp.RASVal
}

// PredictDirection predicts a conditional branch at pc and speculatively
// shifts the predicted outcome into thread's history.
func (p *Predictor) PredictDirection(thread int, pc uint64) bool {
	p.Lookups++
	taken := p.pht[p.phtIndex(thread, pc)] >= 2
	p.pushHistory(thread, taken)
	return taken
}

func (p *Predictor) pushHistory(thread int, taken bool) {
	h := p.history[thread] << 1
	if taken {
		h |= 1
	}
	p.history[thread] = h & ((1 << p.cfg.HistoryBits) - 1)
}

// Resolve updates the PHT with a conditional branch's actual outcome. On a
// misprediction the caller must also Restore a checkpoint and then call
// FixHistory with the actual outcome.
func (p *Predictor) Resolve(thread int, pc uint64, cpHistory uint32, taken bool) {
	// Index with the history the prediction saw, not the current
	// speculative history (bimodal ignores it).
	idx := int(pc >> 2 & uint64(p.cfg.GshareEntries-1))
	if p.cfg.Kind == config.PredGshare {
		h := uint64(cpHistory) & ((1 << p.cfg.HistoryBits) - 1)
		idx = int((pc>>2 ^ h) & uint64(p.cfg.GshareEntries-1))
	}
	c := p.pht[idx]
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	p.pht[idx] = c
}

// FixHistory shifts the actual outcome into thread's (just-restored)
// history after a misprediction.
func (p *Predictor) FixHistory(thread int, taken bool) { p.pushHistory(thread, taken) }

// BTBLookup returns the predicted target for a control instruction at pc.
func (p *Predictor) BTBLookup(pc uint64, now uint64) (uint64, bool) {
	set := pc >> 2 & p.btbMask
	tag := pc >> 2 >> bits.Len64(p.btbMask)
	base := int(set) * p.btbAssoc
	for i := 0; i < p.btbAssoc; i++ {
		e := &p.btb[base+i]
		if e.valid && e.tag == tag {
			e.used = now
			return e.target, true
		}
	}
	p.BTBMisses++
	return 0, false
}

// BTBInsert installs pc→target.
func (p *Predictor) BTBInsert(pc, target uint64, now uint64) {
	set := pc >> 2 & p.btbMask
	tag := pc >> 2 >> bits.Len64(p.btbMask)
	base := int(set) * p.btbAssoc
	victim := base
	for i := 0; i < p.btbAssoc; i++ {
		e := &p.btb[base+i]
		if e.valid && e.tag == tag {
			e.target = target
			e.used = now
			return
		}
		if !e.valid {
			victim = base + i
		} else if v := &p.btb[victim]; v.valid && e.used < v.used {
			victim = base + i
		}
	}
	p.btb[victim] = btbEntry{tag: tag, target: target, valid: true, used: now}
}

// Push records a call's return address on thread's RAS.
func (p *Predictor) Push(thread int, retPC uint64) {
	sp := p.rasSP[thread]
	p.ras[thread][sp] = retPC
	p.rasSP[thread] = (sp + 1) % len(p.ras[thread])
}

// Pop predicts a return target from thread's RAS.
func (p *Predictor) Pop(thread int) uint64 {
	sp := (p.rasSP[thread] - 1 + len(p.ras[thread])) % len(p.ras[thread])
	p.rasSP[thread] = sp
	return p.ras[thread][sp]
}

// MispredictRate returns mispredictions per direction lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// NoteMispredict increments the misprediction counter (the pipeline detects
// mispredictions against its oracle).
func (p *Predictor) NoteMispredict() { p.Mispredicts++ }
