package branch

import (
	"testing"

	"visasim/internal/config"
)

func newPred() *Predictor { return New(config.Default().Branch, 4) }

func TestGshareLearnsBias(t *testing.T) {
	p := newPred()
	const pc = 0x40_0100
	wrong := 0
	for i := 0; i < 200; i++ {
		cp := p.Checkpoint(0)
		pred := p.PredictDirection(0, pc)
		if pred != true {
			wrong++
			p.Restore(0, cp)
			p.FixHistory(0, true)
		}
		p.Resolve(0, pc, cp.History, true)
	}
	// Cold-start: each fresh history pattern indexes an untrained
	// counter, so up to HistoryBits+a few mispredicts are inherent.
	if wrong > 15 {
		t.Fatalf("always-taken branch mispredicted %d/200 times", wrong)
	}
	// The tail must be clean once the history saturates.
	cpTail := p.Checkpoint(0)
	if !p.PredictDirection(0, pc) {
		t.Fatal("saturated always-taken branch predicted not-taken")
	}
	p.Restore(0, cpTail)
}

func TestGshareLearnsAlternation(t *testing.T) {
	p := newPred()
	const pc = 0x40_0200
	wrong := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		cp := p.Checkpoint(0)
		pred := p.PredictDirection(0, pc)
		if pred != taken {
			wrong++
			p.Restore(0, cp)
			p.FixHistory(0, taken)
		}
		p.Resolve(0, pc, cp.History, taken)
	}
	// With history-indexed counters, alternation becomes predictable.
	if wrong > 40 {
		t.Fatalf("alternating branch mispredicted %d/400 times", wrong)
	}
}

func TestPerThreadHistoryIsolated(t *testing.T) {
	p := newPred()
	h0 := p.Checkpoint(0).History
	p.PredictDirection(1, 0x40_0000)
	if p.Checkpoint(0).History != h0 {
		t.Fatal("thread 1 prediction changed thread 0 history")
	}
}

func TestBTBInsertLookup(t *testing.T) {
	p := newPred()
	if _, ok := p.BTBLookup(0x1000, 1); ok {
		t.Fatal("cold BTB hit")
	}
	p.BTBInsert(0x1000, 0x2000, 2)
	tgt, ok := p.BTBLookup(0x1000, 3)
	if !ok || tgt != 0x2000 {
		t.Fatalf("BTB lookup = %#x,%v", tgt, ok)
	}
	// Update in place.
	p.BTBInsert(0x1000, 0x3000, 4)
	if tgt, _ := p.BTBLookup(0x1000, 5); tgt != 0x3000 {
		t.Fatalf("BTB not updated: %#x", tgt)
	}
}

func TestBTBEviction(t *testing.T) {
	cfg := config.Default().Branch
	p := New(cfg, 1)
	sets := cfg.BTBEntries / cfg.BTBAssoc
	// Fill one set beyond capacity; stride of sets×4 bytes maps to the
	// same set.
	base := uint64(0x40_0000)
	stride := uint64(sets * 4)
	for i := 0; i <= cfg.BTBAssoc; i++ {
		p.BTBInsert(base+uint64(i)*stride, 0x9000, uint64(i))
	}
	hits := 0
	for i := 0; i <= cfg.BTBAssoc; i++ {
		if _, ok := p.BTBLookup(base+uint64(i)*stride, 100); ok {
			hits++
		}
	}
	if hits != cfg.BTBAssoc {
		t.Fatalf("%d hits after overfilling a %d-way set", hits, cfg.BTBAssoc)
	}
}

func TestRASPushPop(t *testing.T) {
	p := newPred()
	p.Push(0, 0x100)
	p.Push(0, 0x200)
	if got := p.Pop(0); got != 0x200 {
		t.Fatalf("pop %#x", got)
	}
	if got := p.Pop(0); got != 0x100 {
		t.Fatalf("pop %#x", got)
	}
}

func TestRASPerThread(t *testing.T) {
	p := newPred()
	p.Push(0, 0x100)
	p.Push(1, 0x999)
	if got := p.Pop(0); got != 0x100 {
		t.Fatalf("thread 0 pop %#x", got)
	}
}

func TestCheckpointRestoresHistoryAndRAS(t *testing.T) {
	p := newPred()
	p.Push(0, 0xAAA)
	cp := p.Checkpoint(0)
	// Speculative damage: predictions shift history, a pop consumes RAS.
	p.PredictDirection(0, 0x40_0000)
	p.PredictDirection(0, 0x40_0004)
	p.Pop(0)
	p.Restore(0, cp)
	if p.Checkpoint(0).History != cp.History {
		t.Fatal("history not restored")
	}
	if got := p.Pop(0); got != 0xAAA {
		t.Fatalf("RAS top not restored: %#x", got)
	}
}

func TestMispredictStats(t *testing.T) {
	p := newPred()
	p.PredictDirection(0, 0x40_0000)
	p.NoteMispredict()
	if p.MispredictRate() != 1 {
		t.Fatalf("rate %v", p.MispredictRate())
	}
}

func TestBimodalIgnoresHistory(t *testing.T) {
	cfg := config.Default().Branch
	cfg.Kind = config.PredBimodal
	p := New(cfg, 2)
	const pc = 0x40_0300
	// Train taken under one history...
	for i := 0; i < 4; i++ {
		cp := p.Checkpoint(0)
		p.PredictDirection(0, pc)
		p.Resolve(0, pc, cp.History, true)
	}
	// ...then scramble the history with other branches; bimodal must
	// still predict taken for pc.
	for i := 0; i < 10; i++ {
		p.PredictDirection(0, 0x40_1000+uint64(i)*4)
	}
	cp := p.Checkpoint(0)
	if !p.PredictDirection(0, pc) {
		t.Fatal("bimodal forgot a trained branch after history churn")
	}
	p.Restore(0, cp)
}

func TestPredictorKindString(t *testing.T) {
	if config.PredGshare.String() != "gshare" || config.PredBimodal.String() != "bimodal" {
		t.Fatal("predictor names")
	}
}
