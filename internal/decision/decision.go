// Package decision defines the structured decision trace recorded at every
// runtime-policy decision point of a simulation — DVM waiting-queue
// triggers, Opt1/Opt2 allocation-cap and FLUSH-engagement choices, and
// dispatch-gate changes — plus the forced-action schedules that replay a
// recorded run with up to K alternative decisions (see DESIGN.md §10).
//
// The package is pure data: it imports nothing from the simulator, so
// internal/pipeline can emit events through the Sink interface without an
// import cycle. Traces are deterministic — the simulator is, and recording
// only observes — so an untouched replay of a recorded cell reproduces both
// the trace and the results byte-identically, which the root determinism
// tests assert.
package decision

// Kind classifies one decision event.
type Kind uint8

// Decision-event kinds. Edge-detected kinds fire when the controller's
// effective directive changes, not every cycle it holds, so traces stay
// compact.
const (
	// KindPolicySwitch records a controller-driven fetch-policy mode
	// change: FLUSH semantics engaging or disengaging (Opt2's response
	// when interval L2 misses exceed Tcache_miss, or a forced override).
	KindPolicySwitch Kind = iota
	// KindDVMTrigger records the waiting-queue throttle engaging (DVM's
	// response mechanism turning on).
	KindDVMTrigger
	// KindDVMRelease records the waiting-queue throttle releasing.
	KindDVMRelease
	// KindIQLCap records the dynamic allocation cap (the paper's IQL)
	// changing, including to/from "uncapped".
	KindIQLCap
	// KindGate records the per-thread dispatch-gate mask changing (DVM's
	// L2-miss response and its fewest-ACE-tags restore).
	KindGate
	// KindSample is a verbose (TraceLevel ≥ 2) observation emitted once
	// per fine-grained AVF sample even when nothing changed, so replay
	// analysis can see the inputs between decisions.
	KindSample

	numKinds
)

var kindNames = [...]string{
	KindPolicySwitch: "policy-switch",
	KindDVMTrigger:   "dvm-trigger",
	KindDVMRelease:   "dvm-release",
	KindIQLCap:       "iql-cap",
	KindGate:         "gate",
	KindSample:       "sample",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind(?)"
}

// Valid reports whether k is a known event kind.
func (k Kind) Valid() bool { return k < numKinds }

// Inputs is the controller-visible state snapshot at the moment of a
// decision: the subset of the pipeline's per-cycle View that the paper's
// control loops actually read. Everything here is a deterministic function
// of the simulated machine, never of the wall clock.
type Inputs struct {
	IntervalIndex int32 `json:"interval"`
	SampleIndex   int32 `json:"sample"`

	// Issue-queue occupancy split from the per-cycle census.
	IQLen      int32 `json:"iq_len"`
	ReadyLen   int32 `json:"ready_len"`
	WaitingLen int32 `json:"waiting_len"`

	// Previous-interval statistics (what Opt1/Opt2 decide from).
	PrevIPC          float64 `json:"prev_ipc"`
	PrevMeanReadyLen float64 `json:"prev_rql"`
	PrevL2Misses     uint64  `json:"prev_l2"`

	// Online tag-AVF estimates (what DVM's counter hardware decides from).
	SampleAVF   float64 `json:"sample_avf"`
	IntervalAVF float64 `json:"interval_avf"`
}

// Action is the chosen (or forced) directive. It mirrors the pipeline's
// Decision in plain portable fields: negative caps mean "no cap", GateMask
// has one bit per thread.
type Action struct {
	IQLCap     int32 `json:"iql_cap"`
	WaitingCap int32 `json:"waiting_cap"`
	UseFlush   bool  `json:"use_flush"`
	GateMask   uint8 `json:"gate_mask"`
}

// Event is one recorded decision.
type Event struct {
	Cycle  uint64 `json:"cycle"`
	Kind   Kind   `json:"-"`
	Forced bool   `json:"forced,omitempty"` // a replay override produced this action
	Inputs Inputs `json:"inputs"`
	Action Action `json:"action"`
}

// Summary pins the headline results of the run that produced a trace, so a
// trace file is self-contained for diffing: `tracedump diff` reports
// AVF/IPC deltas without re-opening the result objects.
type Summary struct {
	Cycles        uint64  `json:"cycles"`
	Commits       uint64  `json:"commits"`
	ThroughputIPC float64 `json:"throughput_ipc"`
	IQAVF         float64 `json:"iq_avf"`
	ROBAVF        float64 `json:"rob_avf"`
	MaxIQAVF      float64 `json:"max_iq_avf"`

	PolicySwitches uint64 `json:"policy_switches"`
	DVMTriggers    uint64 `json:"dvm_triggers"`
}

// Trace is a full recorded decision trace: provenance, the event stream,
// and the run's result summary. ConfigJSON holds the canonical core.Config
// encoding so a replayer can rebuild the exact cell from the trace alone;
// decision itself treats it as opaque bytes.
type Trace struct {
	// Controller names the scheme's controller ("" when the scheme runs
	// no controller); Scheme and Policy echo the cell configuration.
	Controller string
	Scheme     string
	Policy     string
	// CellKey is the harness/sweep cell key the trace was recorded under
	// ("" for single runs).
	CellKey string
	// ConfigHash is core.Config.Hash() of the recorded cell — the same
	// content address the result cache uses. TraceLevel is deliberately
	// not part of that hash: tracing must never change what is simulated.
	ConfigHash string
	// ConfigJSON is the canonical core.Config JSON (opaque here).
	ConfigJSON []byte
	// Level is the TraceLevel the trace was recorded at.
	Level int
	// MeasureStart is the absolute cycle statistics collection began
	// (after warmup); events before it happened during warmup.
	MeasureStart uint64

	Events  []Event
	Summary Summary
}

// EventsFrom returns the events at or after cycle (e.g. the measured
// region's events via EventsFrom(tr.MeasureStart)).
func (t *Trace) EventsFrom(cycle uint64) []Event {
	for i, ev := range t.Events {
		if ev.Cycle >= cycle {
			return t.Events[i:]
		}
	}
	return nil
}

// Sink receives decision events during a run. The pipeline calls it
// synchronously from the simulation goroutine; implementations must not
// feed anything back into the simulation — recording is observation only.
type Sink interface {
	// Level is the trace level the sink wants: 1 records decision edges,
	// 2 additionally records per-sample observations (KindSample).
	Level() int
	// Record receives one event. Events arrive in nondecreasing cycle
	// order.
	Record(Event)
	// MeasureStart is called when statistics collection begins (at the
	// warmup boundary), with the absolute cycle.
	MeasureStart(cycle uint64)
}

// Recorder is the standard Sink: it accumulates events in memory.
type Recorder struct {
	level        int
	measureStart uint64
	events       []Event
}

// NewRecorder returns a Recorder at the given trace level (values below 1
// are clamped to 1 — a level-0 run should pass no sink at all).
func NewRecorder(level int) *Recorder {
	if level < 1 {
		level = 1
	}
	return &Recorder{level: level}
}

// Level implements Sink.
func (r *Recorder) Level() int { return r.level }

// Record implements Sink.
func (r *Recorder) Record(ev Event) { r.events = append(r.events, ev) }

// MeasureStart implements Sink.
func (r *Recorder) MeasureStart(cycle uint64) { r.measureStart = cycle }

// Trace returns the accumulated trace skeleton (events, level, measure
// start); the caller fills provenance and the result summary.
func (r *Recorder) Trace() *Trace {
	return &Trace{Level: r.level, MeasureStart: r.measureStart, Events: r.events}
}
