package decision

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// The on-disk trace format, version 1: a magic tag, a varint-framed header
// (provenance strings, canonical config JSON, level, measure start,
// summary), then the event stream with delta-encoded cycles. Integers are
// unsigned varints (signed caps use zigzag varints), floats are fixed
// little-endian IEEE-754 bits — so encoding is byte-deterministic and the
// round trip is exact, which the golden and fuzz tests pin.
const (
	traceMagic   = "VSDT"
	traceVersion = 1

	// maxBlob bounds any single length-prefixed field, and maxEvents the
	// event count, so a corrupt or adversarial header cannot drive huge
	// allocations (the fuzzer exercises exactly that).
	maxBlob   = 16 << 20
	maxEvents = 1 << 28
)

// ErrCorrupt is wrapped by every decode failure caused by the input bytes
// (as opposed to I/O errors from the underlying reader).
var ErrCorrupt = errors.New("corrupt decision trace")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

type traceWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (tw *traceWriter) uvarint(v uint64) {
	n := binary.PutUvarint(tw.buf[:], v)
	tw.w.Write(tw.buf[:n]) //nolint:errcheck // sticky error read at Flush
}

func (tw *traceWriter) varint(v int64) {
	n := binary.PutVarint(tw.buf[:], v)
	tw.w.Write(tw.buf[:n]) //nolint:errcheck
}

func (tw *traceWriter) float(v float64) {
	binary.LittleEndian.PutUint64(tw.buf[:8], math.Float64bits(v))
	tw.w.Write(tw.buf[:8]) //nolint:errcheck
}

func (tw *traceWriter) bytes(b []byte) {
	tw.uvarint(uint64(len(b)))
	tw.w.Write(b) //nolint:errcheck
}

func (tw *traceWriter) string(s string) { tw.bytes([]byte(s)) }

// Encode writes the trace in the versioned binary format. Encoding the same
// trace twice produces identical bytes.
func (t *Trace) Encode(w io.Writer) error {
	tw := &traceWriter{w: bufio.NewWriter(w)}
	tw.w.WriteString(traceMagic) //nolint:errcheck
	tw.uvarint(traceVersion)
	tw.string(t.Controller)
	tw.string(t.Scheme)
	tw.string(t.Policy)
	tw.string(t.CellKey)
	tw.string(t.ConfigHash)
	tw.bytes(t.ConfigJSON)
	tw.uvarint(uint64(t.Level))
	tw.uvarint(t.MeasureStart)

	tw.uvarint(t.Summary.Cycles)
	tw.uvarint(t.Summary.Commits)
	tw.float(t.Summary.ThroughputIPC)
	tw.float(t.Summary.IQAVF)
	tw.float(t.Summary.ROBAVF)
	tw.float(t.Summary.MaxIQAVF)
	tw.uvarint(t.Summary.PolicySwitches)
	tw.uvarint(t.Summary.DVMTriggers)

	tw.uvarint(uint64(len(t.Events)))
	prev := uint64(0)
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Cycle < prev {
			return fmt.Errorf("decision: event %d cycle %d before predecessor %d", i, ev.Cycle, prev)
		}
		tw.uvarint(ev.Cycle - prev)
		prev = ev.Cycle
		flags := byte(0)
		if ev.Action.UseFlush {
			flags |= 1
		}
		if ev.Forced {
			flags |= 2
		}
		tw.w.WriteByte(byte(ev.Kind)) //nolint:errcheck
		tw.w.WriteByte(flags)         //nolint:errcheck
		tw.varint(int64(ev.Inputs.IntervalIndex))
		tw.varint(int64(ev.Inputs.SampleIndex))
		tw.varint(int64(ev.Inputs.IQLen))
		tw.varint(int64(ev.Inputs.ReadyLen))
		tw.varint(int64(ev.Inputs.WaitingLen))
		tw.uvarint(ev.Inputs.PrevL2Misses)
		tw.float(ev.Inputs.PrevIPC)
		tw.float(ev.Inputs.PrevMeanReadyLen)
		tw.float(ev.Inputs.SampleAVF)
		tw.float(ev.Inputs.IntervalAVF)
		tw.varint(int64(ev.Action.IQLCap))
		tw.varint(int64(ev.Action.WaitingCap))
		tw.w.WriteByte(ev.Action.GateMask) //nolint:errcheck
	}
	return tw.w.Flush()
}

type traceReader struct {
	r *bufio.Reader
}

func (tr *traceReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return 0, corruptf("uvarint: %v", err)
	}
	return v, nil
}

func (tr *traceReader) varint32(what string) (int32, error) {
	v, err := binary.ReadVarint(tr.r)
	if err != nil {
		return 0, corruptf("%s: %v", what, err)
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, corruptf("%s %d outside int32", what, v)
	}
	return int32(v), nil
}

func (tr *traceReader) float() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(tr.r, b[:]); err != nil {
		return 0, corruptf("float: %v", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (tr *traceReader) bytes() ([]byte, error) {
	n, err := tr.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxBlob {
		return nil, corruptf("field length %d exceeds %d", n, maxBlob)
	}
	if n == 0 {
		return nil, nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(tr.r, b); err != nil {
		return nil, corruptf("field body: %v", err)
	}
	return b, nil
}

func (tr *traceReader) string() (string, error) {
	b, err := tr.bytes()
	return string(b), err
}

// Decode reads a trace written by Encode. Corrupt or truncated input yields
// an error wrapping ErrCorrupt; Decode never panics (fuzzed).
func Decode(r io.Reader) (*Trace, error) {
	tr := &traceReader{r: bufio.NewReader(r)}
	var magic [len(traceMagic)]byte
	if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
		return nil, corruptf("magic: %v", err)
	}
	if string(magic[:]) != traceMagic {
		return nil, corruptf("bad magic %q", magic)
	}
	version, err := tr.uvarint()
	if err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, corruptf("version %d, want %d", version, traceVersion)
	}

	t := &Trace{}
	if t.Controller, err = tr.string(); err != nil {
		return nil, err
	}
	if t.Scheme, err = tr.string(); err != nil {
		return nil, err
	}
	if t.Policy, err = tr.string(); err != nil {
		return nil, err
	}
	if t.CellKey, err = tr.string(); err != nil {
		return nil, err
	}
	if t.ConfigHash, err = tr.string(); err != nil {
		return nil, err
	}
	if t.ConfigJSON, err = tr.bytes(); err != nil {
		return nil, err
	}
	level, err := tr.uvarint()
	if err != nil {
		return nil, err
	}
	if level > math.MaxInt32 {
		return nil, corruptf("level %d out of range", level)
	}
	t.Level = int(level)
	if t.MeasureStart, err = tr.uvarint(); err != nil {
		return nil, err
	}

	if t.Summary.Cycles, err = tr.uvarint(); err != nil {
		return nil, err
	}
	if t.Summary.Commits, err = tr.uvarint(); err != nil {
		return nil, err
	}
	if t.Summary.ThroughputIPC, err = tr.float(); err != nil {
		return nil, err
	}
	if t.Summary.IQAVF, err = tr.float(); err != nil {
		return nil, err
	}
	if t.Summary.ROBAVF, err = tr.float(); err != nil {
		return nil, err
	}
	if t.Summary.MaxIQAVF, err = tr.float(); err != nil {
		return nil, err
	}
	if t.Summary.PolicySwitches, err = tr.uvarint(); err != nil {
		return nil, err
	}
	if t.Summary.DVMTriggers, err = tr.uvarint(); err != nil {
		return nil, err
	}

	count, err := tr.uvarint()
	if err != nil {
		return nil, err
	}
	if count > maxEvents {
		return nil, corruptf("event count %d exceeds %d", count, maxEvents)
	}
	// Grow incrementally: a lying header must not allocate the claimed
	// count up front.
	cap0 := count
	if cap0 > 4096 {
		cap0 = 4096
	}
	t.Events = make([]Event, 0, cap0)
	cycle := uint64(0)
	for i := uint64(0); i < count; i++ {
		var ev Event
		delta, err := tr.uvarint()
		if err != nil {
			return nil, err
		}
		if delta > math.MaxUint64-cycle {
			return nil, corruptf("event %d cycle overflow", i)
		}
		cycle += delta
		ev.Cycle = cycle
		kind, err := tr.r.ReadByte()
		if err != nil {
			return nil, corruptf("event kind: %v", err)
		}
		ev.Kind = Kind(kind)
		if !ev.Kind.Valid() {
			return nil, corruptf("event %d has unknown kind %d", i, kind)
		}
		flags, err := tr.r.ReadByte()
		if err != nil {
			return nil, corruptf("event flags: %v", err)
		}
		if flags&^byte(3) != 0 {
			return nil, corruptf("event %d has unknown flags %#x", i, flags)
		}
		ev.Action.UseFlush = flags&1 != 0
		ev.Forced = flags&2 != 0
		if ev.Inputs.IntervalIndex, err = tr.varint32("interval index"); err != nil {
			return nil, err
		}
		if ev.Inputs.SampleIndex, err = tr.varint32("sample index"); err != nil {
			return nil, err
		}
		if ev.Inputs.IQLen, err = tr.varint32("iq len"); err != nil {
			return nil, err
		}
		if ev.Inputs.ReadyLen, err = tr.varint32("ready len"); err != nil {
			return nil, err
		}
		if ev.Inputs.WaitingLen, err = tr.varint32("waiting len"); err != nil {
			return nil, err
		}
		if ev.Inputs.PrevL2Misses, err = tr.uvarint(); err != nil {
			return nil, err
		}
		if ev.Inputs.PrevIPC, err = tr.float(); err != nil {
			return nil, err
		}
		if ev.Inputs.PrevMeanReadyLen, err = tr.float(); err != nil {
			return nil, err
		}
		if ev.Inputs.SampleAVF, err = tr.float(); err != nil {
			return nil, err
		}
		if ev.Inputs.IntervalAVF, err = tr.float(); err != nil {
			return nil, err
		}
		if ev.Action.IQLCap, err = tr.varint32("iql cap"); err != nil {
			return nil, err
		}
		if ev.Action.WaitingCap, err = tr.varint32("waiting cap"); err != nil {
			return nil, err
		}
		if ev.Action.GateMask, err = tr.r.ReadByte(); err != nil {
			return nil, corruptf("gate mask: %v", err)
		}
		t.Events = append(t.Events, ev)
	}
	// Trailing garbage means the stream is not a single encoded trace.
	if _, err := tr.r.ReadByte(); err != io.EOF {
		return nil, corruptf("trailing bytes after event stream")
	}
	return t, nil
}

// ndjsonHeader and ndjsonLine shape the NDJSON exposition: one header line,
// one line per event, one summary line. Field order is fixed by the struct
// definitions, so the output is deterministic and golden-testable.
type ndjsonHeader struct {
	Type         string `json:"type"` // "header"
	Controller   string `json:"controller,omitempty"`
	Scheme       string `json:"scheme"`
	Policy       string `json:"policy"`
	CellKey      string `json:"cell,omitempty"`
	ConfigHash   string `json:"config_hash"`
	Level        int    `json:"trace_level"`
	MeasureStart uint64 `json:"measure_start"`
	Events       int    `json:"events"`
}

type ndjsonEvent struct {
	Type string `json:"type"` // "event"
	Kind string `json:"kind"`
	Event
}

type ndjsonSummary struct {
	Type string `json:"type"` // "summary"
	Summary
}

// WriteNDJSON renders the trace as newline-delimited JSON: a header line,
// one event line per event, and a summary line. This is the daemon's trace
// download format and the golden-trace fixture format.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	hdr := ndjsonHeader{
		Type:       "header",
		Controller: t.Controller,
		Scheme:     t.Scheme,
		Policy:     t.Policy,
		CellKey:    t.CellKey,
		ConfigHash: t.ConfigHash,
		Level:      t.Level, MeasureStart: t.MeasureStart,
		Events: len(t.Events),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if err := enc.Encode(ndjsonEvent{Type: "event", Kind: ev.Kind.String(), Event: ev}); err != nil {
			return err
		}
	}
	return enc.Encode(ndjsonSummary{Type: "summary", Summary: t.Summary})
}
