package decision

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodeRoundTrip feeds arbitrary bytes to Decode, registered alongside
// the ace-profile and machine-config fuzzers. Decode must never panic;
// whenever it accepts an input, re-encoding the decoded trace and decoding
// it again must reproduce it exactly — the property the golden-trace and
// replay machinery rely on — and every rejection must wrap ErrCorrupt so
// callers can distinguish bad bytes from I/O failures.
func FuzzDecodeRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := testTrace().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	empty := &Trace{}
	var seedEmpty bytes.Buffer
	if err := empty.Encode(&seedEmpty); err != nil {
		f.Fatal(err)
	}
	f.Add(seedEmpty.Bytes())
	f.Add([]byte{})
	f.Add([]byte("VSDT"))
	f.Add([]byte("not a decision trace"))
	truncated := seed.Bytes()
	f.Add(truncated[:len(truncated)/2])
	f.Add(append(append([]byte{}, seed.Bytes()...), 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := tr.Encode(&out); err != nil {
			t.Fatalf("re-encoding an accepted trace: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an encoded trace: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", tr2, tr)
		}
	})
}
