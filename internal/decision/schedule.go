package decision

import "sort"

// Force field masks: which Action fields a Force overrides. Unmasked fields
// keep whatever the live controller decided.
const (
	ForceIQLCap uint8 = 1 << iota
	ForceWaitingCap
	ForceUseFlush
	ForceGates
)

// Force overrides part of the controller's decision on every cycle of
// [From, Until). The window matters: the paper's control loops re-decide
// every cycle, so a single-cycle override would be re-decided away one
// cycle later; a counterfactual must hold its alternative until the next
// recorded decision point to be measurable.
type Force struct {
	From  uint64 `json:"from"`
	Until uint64 `json:"until"` // exclusive; use Forever for "rest of run"
	Mask  uint8  `json:"mask"`
	// Action supplies the forced field values (only Mask-selected fields
	// are consulted).
	Action Action `json:"action"`
}

// Forever is the open upper bound for a Force window.
const Forever = ^uint64(0)

// activeAt reports whether the force covers cycle.
func (f *Force) activeAt(cycle uint64) bool {
	return cycle >= f.From && cycle < f.Until
}

// Schedule is a forced-action schedule: the `-counterfactual-k` replay
// mechanism. An empty (or nil) schedule forces nothing — that replay must
// reproduce the recorded run byte-identically.
type Schedule []Force

// Normalize sorts the forces by window start so application order (later
// forces win on overlap) is deterministic regardless of construction order.
func (s Schedule) Normalize() {
	sort.SliceStable(s, func(i, j int) bool { return s[i].From < s[j].From })
}

// OverridesAt merges every force active at cycle (later forces in the
// schedule win per field) and reports whether any applied.
func (s Schedule) OverridesAt(cycle uint64) (Action, uint8, bool) {
	var act Action
	var mask uint8
	for i := range s {
		f := &s[i]
		if !f.activeAt(cycle) {
			continue
		}
		if f.Mask&ForceIQLCap != 0 {
			act.IQLCap = f.Action.IQLCap
		}
		if f.Mask&ForceWaitingCap != 0 {
			act.WaitingCap = f.Action.WaitingCap
		}
		if f.Mask&ForceUseFlush != 0 {
			act.UseFlush = f.Action.UseFlush
		}
		if f.Mask&ForceGates != 0 {
			act.GateMask = f.Action.GateMask
		}
		mask |= f.Mask
	}
	return act, mask, mask != 0
}

// Alternative builds the canonical counterfactual for a recorded event: the
// "what if the policy had decided the other way" force, held from the
// event's cycle until `until` (typically the next recorded decision, or
// Forever for the last one):
//
//   - policy-switch: invert the FLUSH engagement;
//   - dvm-trigger:   suppress the waiting-queue cap (no throttle);
//   - dvm-release:   keep throttling at the tightest cap instead;
//   - iql-cap:       lift the allocation cap;
//   - gate:          do not gate any thread's dispatch.
//
// Sample events are observations, not decisions; Alternative returns
// ok=false for them (and for unknown kinds).
func Alternative(ev Event, until uint64) (Force, bool) {
	f := Force{From: ev.Cycle, Until: until}
	switch ev.Kind {
	case KindPolicySwitch:
		f.Mask = ForceUseFlush
		f.Action.UseFlush = !ev.Action.UseFlush
	case KindDVMTrigger:
		f.Mask = ForceWaitingCap
		f.Action.WaitingCap = -1
	case KindDVMRelease:
		f.Mask = ForceWaitingCap
		f.Action.WaitingCap = 1
	case KindIQLCap:
		f.Mask = ForceIQLCap
		f.Action.IQLCap = -1
	case KindGate:
		f.Mask = ForceGates
		f.Action.GateMask = 0
	default:
		return Force{}, false
	}
	return f, true
}
