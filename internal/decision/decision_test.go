package decision

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// testTrace builds a fully populated trace exercising every field the codec
// carries, including zero-delta (same-cycle) events.
func testTrace() *Trace {
	return &Trace{
		Controller:   "dvm",
		Scheme:       "dvm",
		Policy:       "ICOUNT",
		CellKey:      "MEM-A/dvm/ICOUNT",
		ConfigHash:   "deadbeef",
		ConfigJSON:   []byte(`{"Benchmarks":["mcf"]}`),
		Level:        2,
		MeasureStart: 7000,
		Events: []Event{
			{Cycle: 100, Kind: KindIQLCap,
				Inputs: Inputs{IntervalIndex: 1, PrevIPC: 3.5, PrevMeanReadyLen: 11.25, PrevL2Misses: 4, IQLen: 40, ReadyLen: 12, WaitingLen: 28},
				Action: Action{IQLCap: 48, WaitingCap: -1}},
			{Cycle: 100, Kind: KindGate,
				Inputs: Inputs{IntervalIndex: 1, SampleIndex: 5, SampleAVF: 0.41, IntervalAVF: 0.39},
				Action: Action{IQLCap: -1, WaitingCap: 12, GateMask: 0b0101}},
			{Cycle: 350, Kind: KindPolicySwitch, Forced: true,
				Inputs: Inputs{IntervalIndex: 2, PrevL2Misses: 40},
				Action: Action{IQLCap: -1, WaitingCap: -1, UseFlush: true}},
			{Cycle: 9999, Kind: KindDVMTrigger,
				Inputs: Inputs{SampleIndex: 9, SampleAVF: 0.9, IntervalAVF: 0.7, ReadyLen: 3},
				Action: Action{IQLCap: -1, WaitingCap: 6}},
		},
		Summary: Summary{Cycles: 20000, Commits: 60000, ThroughputIPC: 3.0,
			IQAVF: 0.21, ROBAVF: 0.11, MaxIQAVF: 0.44, PolicySwitches: 1, DVMTriggers: 1},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	want := testTrace()
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", got, want)
	}
	// Deterministic encoding: same trace, same bytes.
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding an identical trace produced different bytes")
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	var good bytes.Buffer
	if err := testTrace().Encode(&good); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOPE....."),
		"truncated":  good.Bytes()[:good.Len()/2],
		"trailing":   append(append([]byte{}, good.Bytes()...), 0xFF),
		"bad length": []byte("VSDT\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

func TestEncodeRejectsUnorderedEvents(t *testing.T) {
	tr := testTrace()
	tr.Events[0].Cycle, tr.Events[1].Cycle = 500, 100
	if err := tr.Encode(&bytes.Buffer{}); err == nil {
		t.Fatal("Encode accepted events out of cycle order")
	}
}

func TestNDJSONShape(t *testing.T) {
	var buf bytes.Buffer
	tr := testTrace()
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := len(tr.Events) + 2; len(lines) != want {
		t.Fatalf("%d NDJSON lines, want %d (header + events + summary)", len(lines), want)
	}
	if !strings.Contains(lines[0], `"type":"header"`) {
		t.Errorf("first line is not a header: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"iql-cap"`) {
		t.Errorf("event line missing kind name: %s", lines[1])
	}
	if !strings.Contains(lines[len(lines)-1], `"type":"summary"`) {
		t.Errorf("last line is not a summary: %s", lines[len(lines)-1])
	}
	// Determinism: identical traces render identical NDJSON.
	var buf2 bytes.Buffer
	if err := testTrace().WriteNDJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("NDJSON output is not deterministic")
	}
}

func TestScheduleOverrides(t *testing.T) {
	s := Schedule{
		{From: 100, Until: 200, Mask: ForceUseFlush, Action: Action{UseFlush: true}},
		{From: 150, Until: 160, Mask: ForceWaitingCap, Action: Action{WaitingCap: 5}},
	}
	if _, _, any := s.OverridesAt(99); any {
		t.Fatal("override before window")
	}
	if _, _, any := s.OverridesAt(200); any {
		t.Fatal("override at exclusive end")
	}
	act, mask, any := s.OverridesAt(155)
	if !any || mask != ForceUseFlush|ForceWaitingCap || !act.UseFlush || act.WaitingCap != 5 {
		t.Fatalf("merged override wrong: act=%+v mask=%#x any=%v", act, mask, any)
	}
	act, mask, _ = s.OverridesAt(199)
	if mask != ForceUseFlush || !act.UseFlush {
		t.Fatalf("single override wrong: act=%+v mask=%#x", act, mask)
	}
}

func TestScheduleNormalizeOrdersByFrom(t *testing.T) {
	s := Schedule{{From: 500}, {From: 10}, {From: 200}}
	s.Normalize()
	for i := 1; i < len(s); i++ {
		if s[i-1].From > s[i].From {
			t.Fatalf("schedule not sorted: %v", s)
		}
	}
}

func TestAlternativeFlips(t *testing.T) {
	cases := []struct {
		ev   Event
		mask uint8
		want Action
	}{
		{Event{Kind: KindPolicySwitch, Action: Action{UseFlush: true}}, ForceUseFlush, Action{UseFlush: false}},
		{Event{Kind: KindPolicySwitch, Action: Action{UseFlush: false}}, ForceUseFlush, Action{UseFlush: true}},
		{Event{Kind: KindDVMTrigger, Action: Action{WaitingCap: 12}}, ForceWaitingCap, Action{WaitingCap: -1}},
		{Event{Kind: KindDVMRelease, Action: Action{WaitingCap: -1}}, ForceWaitingCap, Action{WaitingCap: 1}},
		{Event{Kind: KindIQLCap, Action: Action{IQLCap: 32}}, ForceIQLCap, Action{IQLCap: -1}},
		{Event{Kind: KindGate, Action: Action{GateMask: 0b11}}, ForceGates, Action{GateMask: 0}},
	}
	for i, c := range cases {
		c.ev.Cycle = 42
		f, ok := Alternative(c.ev, 100)
		if !ok {
			t.Fatalf("case %d: no alternative", i)
		}
		if f.From != 42 || f.Until != 100 || f.Mask != c.mask || f.Action != c.want {
			t.Errorf("case %d (%v): force %+v, want mask %#x action %+v", i, c.ev.Kind, f, c.mask, c.want)
		}
	}
	if _, ok := Alternative(Event{Kind: KindSample}, 100); ok {
		t.Fatal("sample events must have no alternative")
	}
}

func TestEventsFrom(t *testing.T) {
	tr := testTrace()
	if got := tr.EventsFrom(0); len(got) != len(tr.Events) {
		t.Fatalf("EventsFrom(0) returned %d events", len(got))
	}
	if got := tr.EventsFrom(101); len(got) != 2 || got[0].Cycle != 350 {
		t.Fatalf("EventsFrom(101) wrong: %+v", got)
	}
	if got := tr.EventsFrom(10_000); got != nil {
		t.Fatalf("EventsFrom past end returned %+v", got)
	}
}

func TestKindNames(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if !k.Valid() || strings.Contains(k.String(), "?") {
			t.Errorf("kind %d invalid or unnamed", k)
		}
	}
	if numKinds.Valid() || Kind(200).Valid() {
		t.Fatal("out-of-range kind reported valid")
	}
}
