// Package workload defines the benchmark suite and SMT workload mixes used
// by the paper's evaluation.
//
// The paper runs SPEC CPU2000 binaries; this reproduction substitutes
// synthetic programs (package program) whose generator parameters are tuned
// per named benchmark so that the performance-relevant characteristics —
// compute- vs memory-intensity, ILP, branch behaviour, code footprint and
// dead-code fraction — land the benchmark in the same taxonomy the paper
// uses (Table 3): CPU-intensive, memory-intensive, or mixed.
package workload

import (
	"fmt"
	"sort"

	"visasim/internal/program"
	"visasim/internal/rng"
)

// Class is a benchmark's resource-behaviour class.
type Class uint8

// Benchmark classes.
const (
	CPUIntensive Class = iota
	MEMIntensive
)

func (c Class) String() string {
	if c == CPUIntensive {
		return "cpu"
	}
	return "mem"
}

// Benchmark is one named single-threaded workload.
type Benchmark struct {
	Name   string
	Class  Class
	Params program.Params
}

// Generate builds the benchmark's program image.
func (b Benchmark) Generate() (*program.Program, error) {
	return program.Generate(b.Params)
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// intMix returns a kind mix for an integer benchmark.
func intMix(load, store, nop float64) program.KindMix {
	return program.KindMix{
		IntALU: 1 - load - store - nop - 0.04,
		IntMul: 0.03,
		IntDiv: 0.01,
		Load:   load,
		Store:  store,
		Nop:    nop,
	}
}

// fpMix returns a kind mix for a floating-point benchmark.
func fpMix(load, store, nop, fp float64) program.KindMix {
	alu := 1 - load - store - nop - fp
	return program.KindMix{
		IntALU: alu,
		Load:   load,
		Store:  store,
		FPALU:  fp * 0.6,
		FPMul:  fp * 0.3,
		FPDiv:  fp * 0.1,
		Nop:    nop,
	}
}

// base returns generator defaults shared by all profiles; per-benchmark
// definitions override the distinguishing knobs.
func base(name string) program.Params {
	return program.Params{
		Name:         name,
		Seed:         rng.HashString(name),
		StaticInstrs: 3000,
		Phases:       4,

		LoopsPerPhase: 3,
		LoopNestProb:  0.4,
		TripMean:      24,
		BlockLen:      8,
		IfProb:        0.45,
		IfBiasMean:    0.90,
		IfBiasSpread:  0.08,
		Routines:      3,
		CallProb:      0.5,

		DepMean:   6,
		IndepFrac: 0.24,
		DeadFrac:  0.18,
		AccumFrac: 0.06,

		Mem: program.MemParams{
			LoadBufBytes: 512,
			OutBufBytes:  1 * mb,
			CommBufBytes: 512,
			TempFrac:     0.2,
			CommFrac:     0.35,
			StrideBytes:  8,
			RandomFrac:   0.05,
		},
	}
}

// benchmarks is the SPEC CPU2000 subset named by the paper (Tables 1 and 3).
var benchmarks = buildBenchmarks()

func buildBenchmarks() map[string]Benchmark {
	m := map[string]Benchmark{}
	add := func(name string, class Class, tune func(*program.Params)) {
		p := base(name)
		tune(&p)
		m[name] = Benchmark{Name: name, Class: class, Params: p}
	}

	// --- CPU-intensive integer programs -------------------------------
	// Working sets sit comfortably inside the shared L1D (64KB across 4
	// threads) with low access randomness: these programs are
	// compute-bound, as their SPEC namesakes are at their SimPoints.
	add("bzip2", CPUIntensive, func(p *program.Params) {
		p.Mix = intMix(0.24, 0.10, 0.06)
		p.DepMean, p.TripMean = 8, 40
		p.DeadFrac, p.AccumFrac = 0.18, 0.10
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.25, CommFrac: 0.35, StrideBytes: 8, RandomFrac: 0.02}
	})
	add("eon", CPUIntensive, func(p *program.Params) {
		p.Mix = intMix(0.22, 0.12, 0.05)
		p.DepMean, p.TripMean = 9, 20
		p.DeadFrac, p.AccumFrac = 0.16, 0.09
		p.Routines, p.CallProb = 6, 0.8
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.20, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.01}
	})
	add("gcc", CPUIntensive, func(p *program.Params) {
		p.Mix = intMix(0.25, 0.11, 0.07)
		p.StaticInstrs = 5000
		p.DepMean, p.TripMean = 7, 14
		p.IfBiasMean, p.IfBiasSpread = 0.85, 0.12
		p.DeadFrac, p.AccumFrac = 0.16, 0.04
		p.Mem = program.MemParams{LoadBufBytes: 2 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.30, CommFrac: 0.30, StrideBytes: 8, RandomFrac: 0.03}
	})
	add("perlbmk", CPUIntensive, func(p *program.Params) {
		p.Mix = intMix(0.26, 0.12, 0.05)
		p.DepMean, p.TripMean = 8, 18
		p.Routines, p.CallProb = 5, 0.7
		p.DeadFrac, p.AccumFrac = 0.12, 0.004
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.20, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.02}
	})
	add("gap", CPUIntensive, func(p *program.Params) {
		p.Mix = intMix(0.24, 0.10, 0.06)
		p.DepMean, p.TripMean = 8, 30
		p.DeadFrac, p.AccumFrac = 0.12, 0.02
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.15, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.02}
	})
	add("crafty", CPUIntensive, func(p *program.Params) {
		p.Mix = intMix(0.22, 0.08, 0.05)
		p.DepMean, p.TripMean = 9, 12
		p.IfBiasMean = 0.85
		p.DeadFrac, p.AccumFrac = 0.18, 0.06
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.25, CommFrac: 0.35, StrideBytes: 8, RandomFrac: 0.02}
	})
	add("facerec", CPUIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.22, 0.08, 0.04, 0.30)
		p.DepMean, p.TripMean = 10, 50
		p.DeadFrac, p.AccumFrac = 0.12, 0.03
		p.Mem = program.MemParams{LoadBufBytes: 2 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.15, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.02}
	})
	add("mesa", CPUIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.20, 0.10, 0.05, 0.28)
		p.DepMean, p.TripMean = 9, 26
		// mesa has the paper's lowest PC-tagging accuracy (74.9%):
		// lots of per-instance ACE variation from accumulators and
		// dead writes.
		p.DeadFrac, p.AccumFrac = 0.22, 0.25
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.30, CommFrac: 0.30, StrideBytes: 8, RandomFrac: 0.03}
	})

	// --- memory-intensive programs -------------------------------------
	add("mcf", MEMIntensive, func(p *program.Params) {
		p.Mix = intMix(0.32, 0.09, 0.05)
		p.DepMean, p.TripMean = 4, 30
		p.IndepFrac = 0.18
		p.IfBiasMean, p.IfBiasSpread = 0.70, 0.20
		p.DeadFrac, p.AccumFrac = 0.12, 0.03
		p.Mem = program.MemParams{LoadBufBytes: 128 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.10, CommFrac: 0.30, StrideBytes: 32, RandomFrac: 0.20}
	})
	add("vpr", MEMIntensive, func(p *program.Params) {
		p.Mix = intMix(0.28, 0.10, 0.05)
		p.DepMean, p.TripMean = 4.5, 22
		p.IndepFrac = 0.20
		p.IfBiasMean = 0.72
		p.DeadFrac, p.AccumFrac = 0.20, 0.14
		p.Mem = program.MemParams{LoadBufBytes: 64 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.20, CommFrac: 0.30, StrideBytes: 16, RandomFrac: 0.10}
	})
	add("equake", MEMIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.30, 0.10, 0.04, 0.26)
		p.DepMean, p.TripMean = 4.5, 60
		p.IndepFrac = 0.22
		p.DeadFrac, p.AccumFrac = 0.10, 0.02
		p.Mem = program.MemParams{LoadBufBytes: 64 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.10, CommFrac: 0.30, StrideBytes: 16, RandomFrac: 0.08}
	})
	add("swim", MEMIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.30, 0.12, 0.03, 0.30)
		p.DepMean, p.TripMean = 5, 120
		p.IndepFrac = 0.25
		p.IfProb = 0.2
		p.DeadFrac, p.AccumFrac = 0.08, 0.01
		p.Mem = program.MemParams{LoadBufBytes: 128 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.08, CommFrac: 0.30, StrideBytes: 16, RandomFrac: 0.06}
	})
	add("lucas", MEMIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.28, 0.10, 0.03, 0.32)
		p.DepMean, p.TripMean = 5, 90
		p.IndepFrac = 0.22
		p.IfProb = 0.25
		p.DeadFrac, p.AccumFrac = 0.08, 0.02
		p.Mem = program.MemParams{LoadBufBytes: 64 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.08, CommFrac: 0.30, StrideBytes: 16, RandomFrac: 0.08}
	})
	add("galgel", MEMIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.27, 0.10, 0.04, 0.34)
		p.DepMean, p.TripMean = 5, 70
		p.IndepFrac = 0.22
		p.DeadFrac, p.AccumFrac = 0.10, 0.02
		p.Mem = program.MemParams{LoadBufBytes: 64 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.10, CommFrac: 0.30, StrideBytes: 16, RandomFrac: 0.08}
	})
	add("twolf", MEMIntensive, func(p *program.Params) {
		p.Mix = intMix(0.27, 0.10, 0.05)
		p.DepMean, p.TripMean = 4.5, 18
		p.IndepFrac = 0.20
		p.IfBiasMean = 0.74
		p.DeadFrac, p.AccumFrac = 0.16, 0.07
		p.Mem = program.MemParams{LoadBufBytes: 32 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.18, CommFrac: 0.30, StrideBytes: 16, RandomFrac: 0.10}
	})

	// --- Table 1-only FP programs (profiling accuracy study) -----------
	add("applu", CPUIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.24, 0.10, 0.03, 0.34)
		p.DepMean, p.TripMean = 8, 100
		p.IfProb = 0.2
		p.DeadFrac, p.AccumFrac = 0.10, 0.001
		p.Mem = program.MemParams{LoadBufBytes: 2 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.10, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.01}
	})
	add("mgrid", CPUIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.26, 0.09, 0.03, 0.36)
		p.DepMean, p.TripMean = 9, 150
		p.IfProb = 0.15
		p.DeadFrac, p.AccumFrac = 0.08, 0.0005
		p.Mem = program.MemParams{LoadBufBytes: 2 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.08, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.01}
	})
	add("wupwise", CPUIntensive, func(p *program.Params) {
		p.Mix = fpMix(0.24, 0.10, 0.03, 0.32)
		p.DepMean, p.TripMean = 8, 80
		p.IfProb = 0.25
		p.DeadFrac, p.AccumFrac = 0.10, 0.01
		p.Mem = program.MemParams{LoadBufBytes: 1 * kb, OutBufBytes: 1 * mb, CommBufBytes: 512, TempFrac: 0.10, CommFrac: 0.40, StrideBytes: 8, RandomFrac: 0.01}
	})

	return m
}

// Get returns the named benchmark.
func Get(name string) (Benchmark, error) {
	b, ok := benchmarks[name]
	if !ok {
		return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return b, nil
}

// MustGet is Get, panicking on unknown names (for static tables).
func MustGet(name string) Benchmark {
	b, err := Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns all benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Category classifies an SMT mix: all CPU-intensive threads, all
// memory-intensive, or half and half.
type Category uint8

// Mix categories (Table 3 row groups).
const (
	CatCPU Category = iota
	CatMIX
	CatMEM
)

func (c Category) String() string {
	switch c {
	case CatCPU:
		return "CPU"
	case CatMIX:
		return "MIX"
	default:
		return "MEM"
	}
}

// Categories lists the three mix categories in Table 3 order.
func Categories() []Category { return []Category{CatCPU, CatMIX, CatMEM} }

// Mix is one 4-context SMT workload (a Table 3 row).
type Mix struct {
	Name       string
	Category   Category
	Group      string // "A", "B" or "C"
	Benchmarks [4]string
}

// Threads resolves the mix's benchmarks.
func (m Mix) Threads() ([4]Benchmark, error) {
	var out [4]Benchmark
	for i, n := range m.Benchmarks {
		b, err := Get(n)
		if err != nil {
			return out, fmt.Errorf("mix %s: %w", m.Name, err)
		}
		out[i] = b
	}
	return out, nil
}

// Mixes returns the nine SMT workloads of Table 3.
func Mixes() []Mix {
	return []Mix{
		{"CPU-A", CatCPU, "A", [4]string{"bzip2", "eon", "gcc", "perlbmk"}},
		{"CPU-B", CatCPU, "B", [4]string{"gap", "facerec", "crafty", "mesa"}},
		{"CPU-C", CatCPU, "C", [4]string{"gcc", "perlbmk", "facerec", "crafty"}},
		{"MIX-A", CatMIX, "A", [4]string{"gcc", "mcf", "vpr", "perlbmk"}},
		{"MIX-B", CatMIX, "B", [4]string{"mcf", "mesa", "crafty", "equake"}},
		{"MIX-C", CatMIX, "C", [4]string{"vpr", "facerec", "swim", "gap"}},
		{"MEM-A", CatMEM, "A", [4]string{"mcf", "equake", "vpr", "swim"}},
		{"MEM-B", CatMEM, "B", [4]string{"lucas", "galgel", "mcf", "vpr"}},
		{"MEM-C", CatMEM, "C", [4]string{"equake", "swim", "twolf", "galgel"}},
	}
}

// MixesIn returns the Table 3 workloads in the given category.
func MixesIn(cat Category) []Mix {
	var out []Mix
	for _, m := range Mixes() {
		if m.Category == cat {
			out = append(out, m)
		}
	}
	return out
}

// Table1Benchmarks lists the benchmarks of the paper's Table 1 in its
// column order.
func Table1Benchmarks() []string {
	return []string{
		"applu", "bzip2", "crafty", "eon", "equake", "facerec",
		"galgel", "gap", "gcc", "lucas", "mcf", "mesa",
		"mgrid", "perlbmk", "swim", "twolf", "vpr", "wupwise",
	}
}
