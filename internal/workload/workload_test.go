package workload

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/trace"
)

func TestAllBenchmarksGenerate(t *testing.T) {
	for _, name := range Names() {
		b := MustGet(name)
		prog, err := b.Generate()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prog.Len() < 500 {
			t.Errorf("%s: only %d static instructions", name, prog.Len())
		}
	}
}

func TestSuiteCoversPaper(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("suite has %d benchmarks, paper uses 18", len(names))
	}
	if got := len(Table1Benchmarks()); got != 18 {
		t.Fatalf("Table 1 lists %d benchmarks", got)
	}
	for _, n := range Table1Benchmarks() {
		if _, err := Get(n); err != nil {
			t.Errorf("Table 1 benchmark %s missing: %v", n, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMixesMatchTable3(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 9 {
		t.Fatalf("%d mixes, want 9", len(mixes))
	}
	counts := map[Category]int{}
	for _, m := range mixes {
		counts[m.Category]++
		th, err := m.Threads()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		seen := map[string]bool{}
		for _, b := range th {
			if seen[b.Name] {
				t.Errorf("%s: duplicate thread %s", m.Name, b.Name)
			}
			seen[b.Name] = true
		}
		// Category composition: CPU mixes are all CPU-intensive, MEM
		// all memory-intensive, MIX half and half (Table 3).
		cpu := 0
		for _, b := range th {
			if b.Class == CPUIntensive {
				cpu++
			}
		}
		switch m.Category {
		case CatCPU:
			if cpu != 4 {
				t.Errorf("%s: %d CPU threads, want 4", m.Name, cpu)
			}
		case CatMEM:
			if cpu != 0 {
				t.Errorf("%s: %d CPU threads, want 0", m.Name, cpu)
			}
		case CatMIX:
			if cpu != 2 {
				t.Errorf("%s: %d CPU threads, want 2", m.Name, cpu)
			}
		}
	}
	for _, c := range Categories() {
		if counts[c] != 3 {
			t.Errorf("category %v has %d mixes, want 3", c, counts[c])
		}
		if len(MixesIn(c)) != 3 {
			t.Errorf("MixesIn(%v) = %d", c, len(MixesIn(c)))
		}
	}
}

func TestSpecificTable3Rows(t *testing.T) {
	mixes := Mixes()
	if mixes[0].Benchmarks != [4]string{"bzip2", "eon", "gcc", "perlbmk"} {
		t.Errorf("CPU group A = %v", mixes[0].Benchmarks)
	}
	if mixes[6].Benchmarks != [4]string{"mcf", "equake", "vpr", "swim"} {
		t.Errorf("MEM group A = %v", mixes[6].Benchmarks)
	}
}

// TestClassBehaviourSeparation verifies the taxonomy is real: CPU-class
// programs must produce far fewer long-latency misses than MEM-class ones.
// A cheap proxy: the fraction of load addresses that leave a 64KB footprint.
func TestClassBehaviourSeparation(t *testing.T) {
	bigFootprint := func(name string) float64 {
		b := MustGet(name)
		prog, _ := b.Generate()
		exec := trace.NewExecutor(prog, b.Params.Seed, 0)
		var d trace.DynInst
		pages := map[uint64]bool{}
		loads := 0
		for i := 0; i < 60000; i++ {
			exec.Next(&d)
			if d.Static.Kind == isa.Load {
				loads++
				pages[d.Addr>>12] = true
			}
		}
		return float64(len(pages)) * 4096
	}
	cpu := bigFootprint("bzip2")
	mem := bigFootprint("mcf")
	if mem < 4*cpu {
		t.Fatalf("mcf footprint %.0fKB not clearly larger than bzip2's %.0fKB", mem/1024, cpu/1024)
	}
}

func TestClassString(t *testing.T) {
	if CPUIntensive.String() != "cpu" || MEMIntensive.String() != "mem" {
		t.Fatal("class names")
	}
	if CatCPU.String() != "CPU" || CatMIX.String() != "MIX" || CatMEM.String() != "MEM" {
		t.Fatal("category names")
	}
}
