// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Simulations must be bit-reproducible across runs and across the parallel
// experiment harness, so every component that needs randomness owns its own
// generator seeded from (benchmark, thread, purpose) identifiers rather than
// sharing global state.
package rng

// Source is a splitmix64/xoshiro-style 64-bit generator. The zero value is
// not usable; construct with New.
type Source struct {
	s0, s1 uint64
}

// New returns a generator seeded from seed. Distinct seeds (including
// adjacent integers) produce decorrelated streams: the seed is scrambled
// through two rounds of splitmix64 before use.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the generator to the state derived from seed.
func (s *Source) Reseed(seed uint64) {
	s.s0 = splitmix64(&seed)
	s.s1 = splitmix64(&seed)
	if s.s0 == 0 && s.s1 == 0 {
		s.s0 = 0x9E3779B97F4A7C15
	}
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits (xoroshiro128+).
func (s *Source) Uint64() uint64 {
	a, b := s.s0, s.s1
	r := a + b
	b ^= a
	s.s0 = rotl(a, 24) ^ b ^ (b << 16)
	s.s1 = rotl(b, 37)
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1): the number of trials until first success with p = 1/m,
// clamped to at least 1.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1 / m
	n := 1
	for !s.Bool(p) && n < int(16*m)+1 {
		n++
	}
	return n
}

// Hash64 deterministically mixes two 64-bit values into one; useful for
// deriving per-object seeds from a base seed and an identifier.
func Hash64(a, b uint64) uint64 {
	x := a ^ 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x ^= b
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HashString deterministically hashes a string to 64 bits (FNV-1a).
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
