package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestReseed(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed: got %d want %d", i, got, first[i])
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	// Adjacent seeds must not produce overlapping prefixes.
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d times in 1000 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("seed 0 produced %d zero draws", zeros)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", p)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	for _, mean := range []float64{1, 2, 5, 20, 100} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			v := s.Geometric(mean)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", mean, v)
			}
			sum += float64(v)
		}
		got := sum / n
		if mean == 1 {
			if got != 1 {
				t.Fatalf("Geometric(1) mean %v, want exactly 1", got)
			}
			continue
		}
		if got < 0.8*mean || got > 1.2*mean {
			t.Fatalf("Geometric(%v) mean %v", mean, got)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 symmetric (should not be)")
	}
}

func TestHashString(t *testing.T) {
	if HashString("mcf") == HashString("gcc") {
		t.Fatal("distinct names hashed equal")
	}
	if HashString("") == 0 {
		t.Fatal("empty string hashed to zero offset")
	}
}

// Property: Uint64 streams from equal seeds are equal, from different seeds
// differ within a short prefix.
func TestQuickSeedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		c, d := New(seed), New(seed+1)
		diff := false
		for i := 0; i < 8; i++ {
			if c.Uint64() != d.Uint64() {
				diff = true
			}
		}
		return diff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Intn stays in range for arbitrary positive n.
func TestQuickIntnProperty(t *testing.T) {
	s := New(99)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
