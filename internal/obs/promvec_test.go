package obs

import (
	"strings"
	"testing"
)

// TestSnapshotVecGolden pins the snapshot-backed family rendering: one
// HELP/TYPE preamble, sorted deterministic series, label escaping, and a
// child set that tracks the snapshot function call-by-call (a departed
// member stops appearing — the property FuncVec cannot offer).
func TestSnapshotVecGolden(t *testing.T) {
	r := NewRegistry()
	members := []string{"http://b:9090", "http://a:9090"}
	r.NewGaugeSnapshotVec("demo_backend_inflight", "In-flight cells per backend.", func() []Sample {
		out := make([]Sample, 0, len(members))
		for i, m := range members {
			out = append(out, Sample{Labels: map[string]string{"backend": m}, Value: float64(i + 1)})
		}
		return out
	})

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP demo_backend_inflight In-flight cells per backend.
# TYPE demo_backend_inflight gauge
demo_backend_inflight{backend="http://a:9090"} 2
demo_backend_inflight{backend="http://b:9090"} 1
`
	if b.String() != want {
		t.Errorf("rendering drifted\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// Membership change: the next scrape reflects it with no duplicates.
	members = []string{"http://a:9090"}
	b.Reset()
	r.WritePrometheus(&b)
	if strings.Count(b.String(), "demo_backend_inflight{") != 1 {
		t.Errorf("departed member still rendered:\n%s", b.String())
	}
}

func TestSnapshotVecCounterTypeAndEmpty(t *testing.T) {
	r := NewRegistry()
	r.NewCounterSnapshotVec("demo_admitted_total", "Admitted cells per tenant.", func() []Sample { return nil })
	var b strings.Builder
	r.WritePrometheus(&b)
	want := "# HELP demo_admitted_total Admitted cells per tenant.\n# TYPE demo_admitted_total counter\n"
	if b.String() != want {
		t.Errorf("empty snapshot rendering = %q, want %q", b.String(), want)
	}
}

// TestHistogramVecGolden pins the labeled-histogram rendering: per-child
// cumulative buckets under one preamble, children sorted by label value.
func TestHistogramVecGolden(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("demo_latency_seconds", "Sweep latency by class.", "class", []float64{0.1, 1})
	h.Observe("interactive", 0.05)
	h.Observe("interactive", 0.5)
	h.Observe("bulk", 30)

	if h.Count("interactive") != 2 || h.Count("bulk") != 1 || h.Count("missing") != 0 {
		t.Fatalf("counts = %d/%d/%d", h.Count("interactive"), h.Count("bulk"), h.Count("missing"))
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP demo_latency_seconds Sweep latency by class.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{class="bulk",le="0.1"} 0
demo_latency_seconds_bucket{class="bulk",le="1"} 0
demo_latency_seconds_bucket{class="bulk",le="+Inf"} 1
demo_latency_seconds_sum{class="bulk"} 30
demo_latency_seconds_count{class="bulk"} 1
demo_latency_seconds_bucket{class="interactive",le="0.1"} 1
demo_latency_seconds_bucket{class="interactive",le="1"} 2
demo_latency_seconds_bucket{class="interactive",le="+Inf"} 2
demo_latency_seconds_sum{class="interactive"} 0.55
demo_latency_seconds_count{class="interactive"} 2
`
	if b.String() != want {
		t.Errorf("rendering drifted\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestHistogramVecValidation(t *testing.T) {
	r := NewRegistry()
	for name, fn := range map[string]func(){
		"bad bounds": func() { r.NewHistogramVec("v1", "x", "class", []float64{1, 1}) },
		"no label":   func() { r.NewHistogramVec("v2", "x", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
