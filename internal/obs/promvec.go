package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// This file adds the two vector collectors the multi-tenant control plane
// needs beyond prom.go's fixed families: SnapshotVec, whose labeled samples
// are produced wholesale at scrape time (the right shape when series come
// and go — tenants, dynamically registered backends — because nothing is
// ever registered per series and a member that rejoins cannot duplicate
// itself), and HistogramVec, a labeled histogram family (per-priority-class
// latency distributions).

// Sample is one labeled measurement returned by a SnapshotVec's snapshot
// function.
type Sample struct {
	// Labels are the sample's label pairs; keys render sorted.
	Labels map[string]string
	// Value is the sample's value at snapshot time.
	Value float64
}

// SnapshotVec is a metric family whose entire child set is recomputed by
// one function at scrape time. Use it when series membership is dynamic:
// the function reflects exactly the tenants/backends that exist right now,
// and departed members simply stop appearing.
type SnapshotVec struct {
	name string
	help string
	typ  string
	fn   func() []Sample
}

// NewGaugeSnapshotVec creates and registers a snapshot-backed gauge family.
func (r *Registry) NewGaugeSnapshotVec(name, help string, fn func() []Sample) *SnapshotVec {
	v := &SnapshotVec{name: name, help: help, typ: "gauge", fn: fn}
	r.Register(v)
	return v
}

// NewCounterSnapshotVec creates and registers a snapshot-backed counter
// family; every series the function reports must be monotone over time.
func (r *Registry) NewCounterSnapshotVec(name, help string, fn func() []Sample) *SnapshotVec {
	v := &SnapshotVec{name: name, help: help, typ: "counter", fn: fn}
	r.Register(v)
	return v
}

// Name returns the metric family name.
func (v *SnapshotVec) Name() string { return v.name }

func (v *SnapshotVec) write(w io.Writer) {
	header(w, v.name, v.help, v.typ)
	samples := v.fn()
	lines := make([]string, 0, len(samples))
	for _, s := range samples {
		lines = append(lines, fmt.Sprintf("%s%s %s", v.name, renderLabels(s.Labels), formatFloat(s.Value)))
	}
	// Deterministic output regardless of snapshot order.
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// renderLabels renders {k="v",...} with sorted keys; "" when empty.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=\"" + escapeLabel(labels[k]) + "\""
	}
	return s + "}"
}

// HistogramVec is a histogram family keyed by one label — e.g. sweep
// latency by priority class. Children share the family's HELP/TYPE
// preamble and bucket bounds; unknown label values create children on
// first use.
type HistogramVec struct {
	name   string
	help   string
	label  string
	bounds []float64

	mu       sync.Mutex
	children map[string]*histChild
}

// histChild is one label value's bucket state.
type histChild struct {
	counts []uint64
	sum    float64
	total  uint64
}

// NewHistogramVec creates and registers a labeled histogram family with the
// given upper bounds (nil selects DefBuckets).
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not increasing: " + name)
		}
	}
	if label == "" {
		panic("obs: histogram vec needs a label name: " + name)
	}
	h := &HistogramVec{
		name:     name,
		help:     help,
		label:    label,
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*histChild{},
	}
	r.Register(h)
	return h
}

// Name returns the metric family name.
func (h *HistogramVec) Name() string { return h.name }

// Observe records one sample under the given label value.
func (h *HistogramVec) Observe(labelValue string, v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.children[labelValue]
	if c == nil {
		c = &histChild{counts: make([]uint64, len(h.bounds))}
		h.children[labelValue] = c
	}
	c.total++
	c.sum += v
	for i, b := range h.bounds {
		if v <= b {
			c.counts[i]++
		}
	}
}

// Count returns how many samples the given label value has observed.
func (h *HistogramVec) Count(labelValue string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c := h.children[labelValue]; c != nil {
		return c.total
	}
	return 0
}

func (h *HistogramVec) write(w io.Writer) {
	h.mu.Lock()
	values := make([]string, 0, len(h.children))
	for v := range h.children {
		values = append(values, v)
	}
	sort.Strings(values)
	type snap struct {
		value  string
		counts []uint64
		sum    float64
		total  uint64
	}
	snaps := make([]snap, 0, len(values))
	for _, v := range values {
		c := h.children[v]
		snaps = append(snaps, snap{
			value:  v,
			counts: append([]uint64(nil), c.counts...),
			sum:    c.sum,
			total:  c.total,
		})
	}
	h.mu.Unlock()

	header(w, h.name, h.help, "histogram")
	for _, s := range snaps {
		lv := escapeLabel(s.value) // escaped by hand; %q would double-escape
		for i, b := range h.bounds {
			fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=%q} %d\n", h.name, h.label, lv, formatFloat(b), s.counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s=\"%s\",le=\"+Inf\"} %d\n", h.name, h.label, lv, s.total)
		fmt.Fprintf(w, "%s_sum{%s=\"%s\"} %s\n", h.name, h.label, lv, formatFloat(s.sum))
		fmt.Fprintf(w, "%s_count{%s=\"%s\"} %d\n", h.name, h.label, lv, s.total)
	}
}
