package obs

import (
	"strings"
	"testing"
)

// TestPrometheusRenderingGolden pins the exact text-exposition bytes the
// registry produces: family ordering, TYPE/HELP lines, cumulative buckets,
// +Inf terminator, _sum/_count. A scraper-visible format change must show
// up here as a deliberate diff.
func TestPrometheusRenderingGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("demo_jobs_total", "Jobs accepted.")
	g := r.NewGauge("demo_queue_depth", "Jobs waiting.")
	r.NewGaugeFunc("demo_hit_ratio", "Cache hit ratio.", func() float64 { return 0.25 })
	r.NewCounterFunc("demo_cells_total", "Cells resolved.", func() float64 { return 7 })
	h := r.NewHistogram("demo_wait_seconds", "Queue wait.", []float64{0.01, 0.1, 1})

	c.Add(3)
	c.Inc()
	g.Set(5)
	g.Add(-3)
	h.Observe(0.004)
	h.Observe(0.05)
	h.Observe(42)

	var b strings.Builder
	r.WritePrometheus(&b)
	want := `# HELP demo_cells_total Cells resolved.
# TYPE demo_cells_total counter
demo_cells_total 7
# HELP demo_hit_ratio Cache hit ratio.
# TYPE demo_hit_ratio gauge
demo_hit_ratio 0.25
# HELP demo_jobs_total Jobs accepted.
# TYPE demo_jobs_total counter
demo_jobs_total 4
# HELP demo_queue_depth Jobs waiting.
# TYPE demo_queue_depth gauge
demo_queue_depth 2
# HELP demo_wait_seconds Queue wait.
# TYPE demo_wait_seconds histogram
demo_wait_seconds_bucket{le="0.01"} 1
demo_wait_seconds_bucket{le="0.1"} 2
demo_wait_seconds_bucket{le="1"} 2
demo_wait_seconds_bucket{le="+Inf"} 3
demo_wait_seconds_sum 42.054
demo_wait_seconds_count 3
`
	if b.String() != want {
		t.Errorf("rendering drifted\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	r.NewGauge("dup_total", "y")
}

func TestHistogramCountAndDefaults(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "x", nil)
	if got, want := len(h.bounds), len(DefBuckets); got != want {
		t.Fatalf("default buckets: got %d, want %d", got, want)
	}
	h.Observe(0.002)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	cases := map[float64]string{0.5: "0.5"}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(2.5e-1); got != "0.25" {
		t.Errorf("formatFloat(0.25) = %q", got)
	}
}
