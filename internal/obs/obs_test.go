package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewSweepIDShapeAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewSweepID()
		if !strings.HasPrefix(id, "sweep-") || len(id) != len("sweep-")+16 {
			t.Fatalf("malformed sweep ID %q", id)
		}
		if !ValidSweepID(id) {
			t.Fatalf("minted ID %q fails its own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate sweep ID %q in 100 mints", id)
		}
		seen[id] = true
	}
}

func TestEnsureSweepMintsOnceAndInherits(t *testing.T) {
	ctx, id := EnsureSweep(context.Background())
	if id == "" || SweepID(ctx) != id {
		t.Fatalf("EnsureSweep: ctx carries %q, returned %q", SweepID(ctx), id)
	}
	ctx2, id2 := EnsureSweep(ctx)
	if id2 != id {
		t.Fatalf("EnsureSweep re-minted: %q then %q", id, id2)
	}
	if SweepID(ctx2) != id {
		t.Fatalf("inherited ctx lost the ID")
	}
}

func TestSweepIDAbsent(t *testing.T) {
	if got := SweepID(context.Background()); got != "" {
		t.Fatalf("empty context carries sweep ID %q", got)
	}
}

func TestValidSweepID(t *testing.T) {
	for _, ok := range []string{"sweep-abc123", "Sweep_0.1:x", "a"} {
		if !ValidSweepID(ok) {
			t.Errorf("ValidSweepID(%q) = false, want true", ok)
		}
	}
	bad := []string{"", "has space", "new\nline", "quote\"", strings.Repeat("x", 129)}
	for _, b := range bad {
		if ValidSweepID(b) {
			t.Errorf("ValidSweepID(%q) = true, want false", b)
		}
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must report disabled at every level.
	l := Logger(nil)
	l.Info("dropped", "k", "v")
	if l.Enabled(context.Background(), 0) {
		t.Fatal("nop logger claims to be enabled")
	}
}
