package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is a deliberately small Prometheus text-exposition (version
// 0.0.4) implementation: counters, gauges, function-backed gauges and
// cumulative histograms, rendered in deterministic order. The module takes
// no third-party dependencies, and the subset here — TYPE/HELP comments,
// monotone counters, +Inf-terminated cumulative buckets, _sum and _count —
// is everything a Prometheus or VictoriaMetrics scraper needs from us.

// Collector is one named metric family that can render itself.
type Collector interface {
	// Name returns the metric family name (used for ordering and
	// duplicate detection).
	Name() string
	write(w io.Writer)
}

// Registry holds metric families and renders them with WritePrometheus.
// Register-time panics on duplicate names keep wiring mistakes loud; all
// other operations are safe for concurrent use.
type Registry struct {
	mu   sync.Mutex
	cols []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector; duplicate family names panic (a wiring bug,
// not a runtime condition).
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.cols {
		if have.Name() == c.Name() {
			panic("obs: duplicate metric " + c.Name())
		}
	}
	r.cols = append(r.cols, c)
}

// WritePrometheus renders every registered family in name order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	cols := make([]Collector, len(r.cols))
	copy(cols, r.cols)
	r.mu.Unlock()
	sort.Slice(cols, func(i, j int) bool { return cols[i].Name() < cols[j].Name() })
	for _, c := range cols {
		c.write(w)
	}
}

// header writes the family's # HELP / # TYPE preamble.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotone int64 counter.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// NewCounter creates and registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.Register(c)
	return c
}

// Name returns the metric family name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by d (d must be >= 0 to keep it monotone).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a settable int64 gauge.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// NewGauge creates and registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.Register(g)
	return g
}

// Name returns the metric family name.
func (g *Gauge) Name() string { return g.name }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// GaugeFunc renders a value computed at scrape time — the bridge that lets
// the Prometheus endpoint read counters the expvar tier already maintains
// without double bookkeeping.
type GaugeFunc struct {
	name string
	help string
	typ  string // "gauge" or "counter" (a fn-backed monotone source)
	fn   func() float64
}

// NewGaugeFunc creates and registers a scrape-time gauge.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, typ: "gauge", fn: fn}
	r.Register(g)
	return g
}

// NewCounterFunc creates and registers a scrape-time counter whose value
// comes from fn; fn must be monotone (e.g. backed by an expvar.Int that is
// only ever Add-ed to).
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, typ: "counter", fn: fn}
	r.Register(g)
	return g
}

// Name returns the metric family name.
func (g *GaugeFunc) Name() string { return g.name }

func (g *GaugeFunc) write(w io.Writer) {
	header(w, g.name, g.help, g.typ)
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// funcChild is one labeled series of a FuncVec.
type funcChild struct {
	labels string // pre-rendered {k="v",...}
	fn     func() float64
}

// FuncVec is a function-backed metric family with labeled children — e.g.
// per-backend dispatch counters keyed by a backend label. Children share one
// HELP/TYPE preamble, as the exposition format requires.
type FuncVec struct {
	name string
	help string
	typ  string

	mu       sync.Mutex
	children []funcChild
}

// NewGaugeFuncVec creates and registers a labeled scrape-time gauge family.
func (r *Registry) NewGaugeFuncVec(name, help string) *FuncVec {
	v := &FuncVec{name: name, help: help, typ: "gauge"}
	r.Register(v)
	return v
}

// NewCounterFuncVec creates and registers a labeled scrape-time counter
// family; every child's fn must be monotone.
func (r *Registry) NewCounterFuncVec(name, help string) *FuncVec {
	v := &FuncVec{name: name, help: help, typ: "counter"}
	r.Register(v)
	return v
}

// Name returns the metric family name.
func (v *FuncVec) Name() string { return v.name }

// With adds one labeled child read at scrape time. Children render in the
// order they were added; label keys render sorted.
func (v *FuncVec) With(labels map[string]string, fn func() float64) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=\"" + escapeLabel(labels[k]) + "\""
	}
	s += "}"
	v.mu.Lock()
	v.children = append(v.children, funcChild{labels: s, fn: fn})
	v.mu.Unlock()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func (v *FuncVec) write(w io.Writer) {
	v.mu.Lock()
	children := append([]funcChild(nil), v.children...)
	v.mu.Unlock()
	header(w, v.name, v.help, v.typ)
	for _, c := range children {
		fmt.Fprintf(w, "%s%s %s\n", v.name, c.labels, formatFloat(c.fn()))
	}
}

// DefBuckets is the default histogram bucketing for service latencies in
// seconds: sub-millisecond cache serves through multi-minute simulations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Histogram is a cumulative-bucket histogram (Prometheus semantics: each
// bucket counts observations <= its upper bound, and an implicit +Inf
// bucket equals _count).
type Histogram struct {
	name   string
	help   string
	bounds []float64

	mu     sync.Mutex
	counts []uint64
	sum    float64
	total  uint64
}

// NewHistogram creates and registers a histogram with the given upper
// bounds (nil selects DefBuckets). Bounds must be strictly increasing.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not increasing: " + name)
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)),
	}
	r.Register(h)
	return h
}

// Name returns the metric family name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	header(w, h.name, h.help, "histogram")
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, total)
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, total)
}
