// Package obs is the cluster's shared observability kit: sweep correlation
// IDs that tie one logical sweep's log lines together across the client,
// the dispatch coordinator and every visasimd daemon it touches, plus a
// dependency-free Prometheus text-format metric registry (prom.go).
//
// A correlation ID is minted once — at server.Client.Submit, or at the
// coordinator's sweep entry point, whichever runs first — carried in a
// context.Context on the way down and in the SweepHeader HTTP header across
// process boundaries, and attached to every structured log line each layer
// emits. Grepping any one layer's logs for the ID therefore reconstructs
// the sweep's full path: submit, queue, simulate or cache-serve, retry,
// failover, hedge. See DESIGN.md §9.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
)

// SweepHeader is the HTTP header that carries a sweep's correlation ID
// between processes (client → daemon, coordinator → daemon).
const SweepHeader = "X-Visasim-Sweep"

// sweepKey is the context key the correlation ID travels under in-process.
type sweepKey struct{}

// NewSweepID mints a fresh correlation ID: "sweep-" plus 16 hex characters
// of crypto/rand entropy — short enough for log lines, long enough that
// concurrent sweeps never collide in practice.
func NewSweepID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// fixed ID rather than pulling in a time/counter fallback.
		return "sweep-0000000000000000"
	}
	return "sweep-" + hex.EncodeToString(b[:])
}

// WithSweep returns ctx carrying the correlation ID.
func WithSweep(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, sweepKey{}, id)
}

// SweepID returns the correlation ID carried by ctx, or "" when none is.
func SweepID(ctx context.Context) string {
	id, _ := ctx.Value(sweepKey{}).(string)
	return id
}

// EnsureSweep returns ctx guaranteed to carry a correlation ID, minting one
// when absent, plus the ID itself. The layer that mints is the sweep's
// origin; everyone downstream inherits.
func EnsureSweep(ctx context.Context) (context.Context, string) {
	if id := SweepID(ctx); id != "" {
		return ctx, id
	}
	id := NewSweepID()
	return WithSweep(ctx, id), id
}

// ValidSweepID bounds what the daemon accepts from the wire: IDs are
// operational metadata that end up verbatim in log lines, so reject
// anything long or outside a conservative character set (defence against
// log injection via header).
func ValidSweepID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}

// NopLogger returns a logger that discards everything — the default for
// libraries whose callers did not configure logging, so instrumented code
// never nil-checks.
func NopLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

// discardHandler drops every record. slog.DiscardHandler exists from Go
// 1.24 on; this keeps the module buildable at its declared go 1.22.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Logger returns l, or the nop logger when l is nil — the standard guard at
// every instrumented entry point.
func Logger(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return NopLogger()
}

// NewLogger builds a logger from the flag vocabulary the binaries share:
// level one of debug/info/warn/error, format one of text/json. Lines go to
// w (a daemon passes os.Stderr).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
}
