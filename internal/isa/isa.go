// Package isa defines the synthetic instruction-set architecture used by the
// visasim SMT processor model.
//
// The ISA is deliberately minimal: the simulator is timing- and
// vulnerability-driven, so instructions carry dataflow (register operands),
// memory behaviour (access-pattern identifiers resolved by the tracer) and
// control behaviour (branch targets), but no value semantics. Following the
// paper, the ISA is extended with a 1-bit ACE-ness tag filled in by offline
// vulnerability profiling (the paper extends the Alpha ISA the same way).
package isa

import "fmt"

// Kind enumerates instruction classes. Each class maps to one function-unit
// class and one execution latency.
type Kind uint8

// Instruction kinds.
const (
	Nop Kind = iota
	IntALU
	IntMul
	IntDiv
	Load
	Store
	FPALU
	FPMul
	FPDiv
	Branch // conditional branch
	Jump   // unconditional direct jump
	Call   // subroutine call (pushes return address)
	Return // subroutine return (pops return address)

	numKinds
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	Nop:    "nop",
	IntALU: "ialu",
	IntMul: "imul",
	IntDiv: "idiv",
	Load:   "load",
	Store:  "store",
	FPALU:  "falu",
	FPMul:  "fmul",
	FPDiv:  "fdiv",
	Branch: "br",
	Jump:   "jmp",
	Call:   "call",
	Return: "ret",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether the kind accesses data memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// IsControl reports whether the kind can redirect the PC.
func (k Kind) IsControl() bool {
	return k == Branch || k == Jump || k == Call || k == Return
}

// IsFP reports whether the kind executes on the floating-point cluster.
func (k Kind) IsFP() bool { return k == FPALU || k == FPMul || k == FPDiv }

// FUClass identifies a function-unit pool (Table 2 of the paper).
type FUClass uint8

// Function-unit classes.
const (
	FUIntALU    FUClass = iota // 8 units
	FUIntMulDiv                // 4 units
	FULoadStore                // 4 units
	FUFPALU                    // 8 units
	FUFPMulDiv                 // 4 units

	NumFUClasses
)

var fuNames = [...]string{
	FUIntALU:    "int-alu",
	FUIntMulDiv: "int-muldiv",
	FULoadStore: "load-store",
	FUFPALU:     "fp-alu",
	FUFPMulDiv:  "fp-muldiv",
}

func (c FUClass) String() string {
	if int(c) < len(fuNames) {
		return fuNames[c]
	}
	return fmt.Sprintf("fu(%d)", uint8(c))
}

// FU returns the function-unit class that executes kind k. Nop and control
// instructions use the integer ALU pool.
func (k Kind) FU() FUClass {
	switch k {
	case IntMul, IntDiv:
		return FUIntMulDiv
	case Load, Store:
		return FULoadStore
	case FPALU:
		return FUFPALU
	case FPMul, FPDiv:
		return FUFPMulDiv
	default:
		return FUIntALU
	}
}

// Latency returns the execution latency in cycles for kind k, excluding any
// memory-hierarchy latency (loads add cache access time on top).
func (k Kind) Latency() int {
	switch k {
	case IntMul:
		return 3
	case IntDiv:
		return 20
	case FPALU:
		return 2
	case FPMul:
		return 4
	case FPDiv:
		return 12
	case Load, Store:
		return 1 // address generation; cache latency added separately
	default:
		return 1
	}
}

// Reg identifies an architectural register. The file holds 32 integer and
// 32 floating-point registers; RegNone marks an absent operand.
type Reg uint8

// Register-space constants.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	NumRegs    = NumIntRegs + NumFPRegs

	// FPBase is the index of the first floating-point register.
	FPBase Reg = NumIntRegs

	// RegZero is the hardwired zero register (writes are discarded,
	// reads are always ready), as in the Alpha ISA (r31).
	RegZero Reg = 0

	// RegSP is the conventional stack-pointer register used by
	// generated programs for call/return address material.
	RegSP Reg = 1

	// RegNone marks an unused operand slot.
	RegNone Reg = 0xFF
)

// Valid reports whether r names a real register.
func (r Reg) Valid() bool { return r < NumRegs }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= FPBase && r < NumRegs }

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r-FPBase)
	case r.Valid():
		return fmt.Sprintf("r%d", r)
	default:
		return fmt.Sprintf("reg(%d)", uint8(r))
	}
}

// InstBytes is the fixed encoding size of one instruction; PCs advance by
// this amount on fall-through.
const InstBytes = 4

// Inst is a static (program-image) instruction.
type Inst struct {
	PC   uint64
	Kind Kind

	Dest Reg // RegNone if no destination
	Src1 Reg // RegNone if unused
	Src2 Reg // RegNone if unused

	// Target is the taken-path PC for control instructions (except
	// Return, whose target comes from the return-address stack).
	Target uint64

	// MemPattern selects the tracer's address-pattern generator for
	// loads and stores; 0 for non-memory instructions.
	MemPattern uint32

	// BranchPattern selects the tracer's outcome generator for
	// conditional branches; 0 otherwise.
	BranchPattern uint32

	// ACETag is the 1-bit ISA extension written by offline
	// vulnerability profiling: true if any profiled dynamic instance of
	// this PC was ACE. The issue logic (VISA) reads only this bit.
	ACETag bool
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool { return in.Dest != RegNone && in.Dest != RegZero }

// FallThrough returns the PC of the next sequential instruction.
func (in *Inst) FallThrough() uint64 { return in.PC + InstBytes }

func (in *Inst) String() string {
	s := fmt.Sprintf("%#08x: %-5s %s", in.PC, in.Kind, in.Dest)
	if in.Src1 != RegNone {
		s += ", " + in.Src1.String()
	}
	if in.Src2 != RegNone {
		s += ", " + in.Src2.String()
	}
	if in.Kind.IsControl() {
		s += fmt.Sprintf(" -> %#08x", in.Target)
	}
	if in.ACETag {
		s += " [ACE]"
	}
	return s
}
