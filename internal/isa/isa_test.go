package isa

import (
	"strings"
	"testing"
)

func TestKindClassification(t *testing.T) {
	tests := []struct {
		k       Kind
		mem     bool
		control bool
		fp      bool
	}{
		{Nop, false, false, false},
		{IntALU, false, false, false},
		{IntMul, false, false, false},
		{IntDiv, false, false, false},
		{Load, true, false, false},
		{Store, true, false, false},
		{FPALU, false, false, true},
		{FPMul, false, false, true},
		{FPDiv, false, false, true},
		{Branch, false, true, false},
		{Jump, false, true, false},
		{Call, false, true, false},
		{Return, false, true, false},
	}
	for _, tt := range tests {
		if tt.k.IsMem() != tt.mem {
			t.Errorf("%v IsMem = %v", tt.k, tt.k.IsMem())
		}
		if tt.k.IsControl() != tt.control {
			t.Errorf("%v IsControl = %v", tt.k, tt.k.IsControl())
		}
		if tt.k.IsFP() != tt.fp {
			t.Errorf("%v IsFP = %v", tt.k, tt.k.IsFP())
		}
	}
}

func TestFUMapping(t *testing.T) {
	tests := []struct {
		k Kind
		c FUClass
	}{
		{IntALU, FUIntALU},
		{Nop, FUIntALU},
		{Branch, FUIntALU},
		{IntMul, FUIntMulDiv},
		{IntDiv, FUIntMulDiv},
		{Load, FULoadStore},
		{Store, FULoadStore},
		{FPALU, FUFPALU},
		{FPMul, FUFPMulDiv},
		{FPDiv, FUFPMulDiv},
	}
	for _, tt := range tests {
		if got := tt.k.FU(); got != tt.c {
			t.Errorf("%v FU = %v, want %v", tt.k, got, tt.c)
		}
	}
}

func TestLatencies(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if k.Latency() < 1 {
			t.Errorf("%v latency %d < 1", k, k.Latency())
		}
	}
	if IntDiv.Latency() <= IntMul.Latency() {
		t.Error("divide should be slower than multiply")
	}
	if FPDiv.Latency() <= FPMul.Latency() {
		t.Error("FP divide should be slower than FP multiply")
	}
}

func TestKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); int(k) < NumKinds; k++ {
		s := k.String()
		if s == "" || strings.Contains(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if !strings.Contains(Kind(200).String(), "kind(") {
		t.Error("out-of-range kind should render numerically")
	}
}

func TestRegProperties(t *testing.T) {
	if !RegZero.Valid() || RegZero.IsFP() {
		t.Error("zero register misclassified")
	}
	if !FPBase.IsFP() {
		t.Error("FPBase must be FP")
	}
	if RegNone.Valid() {
		t.Error("RegNone must be invalid")
	}
	if Reg(NumRegs).Valid() {
		t.Error("register beyond file must be invalid")
	}
	if got := Reg(5).String(); got != "r5" {
		t.Errorf("r5 renders %q", got)
	}
	if got := (FPBase + 3).String(); got != "f3" {
		t.Errorf("f3 renders %q", got)
	}
	if got := RegNone.String(); got != "-" {
		t.Errorf("RegNone renders %q", got)
	}
}

func TestInstHelpers(t *testing.T) {
	in := Inst{PC: 0x1000, Kind: IntALU, Dest: 5, Src1: 6, Src2: RegNone}
	if !in.HasDest() {
		t.Error("HasDest false for r5 dest")
	}
	if in.FallThrough() != 0x1004 {
		t.Errorf("fall-through %#x", in.FallThrough())
	}
	zero := Inst{Kind: IntALU, Dest: RegZero}
	if zero.HasDest() {
		t.Error("write to zero register counts as dest")
	}
	none := Inst{Kind: Store, Dest: RegNone}
	if none.HasDest() {
		t.Error("RegNone dest counts as dest")
	}
}

func TestInstString(t *testing.T) {
	in := Inst{PC: 0x2000, Kind: Branch, Dest: RegNone, Src1: 7, Src2: RegNone, Target: 0x2100, ACETag: true}
	s := in.String()
	for _, want := range []string{"br", "r7", "0x00002100", "[ACE]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
