package server

import (
	"encoding/json"
	"expvar"
	"sync"

	"visasim/internal/cluster"
	"visasim/internal/harness"
	"visasim/internal/obs"
)

// maxCellStatRecords bounds the per-cell stats map in /metrics; beyond it,
// new cells still simulate and cache but stop adding metric rows.
const maxCellStatRecords = 512

// jsonVar renders any JSON-marshalable value as an expvar.Var.
type jsonVar struct{ v any }

func (j jsonVar) String() string {
	b, err := json.Marshal(j.v)
	if err != nil {
		return `"unmarshalable"`
	}
	return string(b)
}

// metrics aggregates the daemon's counters in a private expvar.Map — expvar
// types for atomicity and rendering, but deliberately not published to the
// process-global expvar registry so multiple Servers (tests!) never collide
// on names. cmd/visasimd publishes the root map once under "visasimd".
type metrics struct {
	root expvar.Map

	jobsSubmitted expvar.Int // accepted by POST /v1/sweeps
	jobsQueued    expvar.Int // gauge: waiting in the queue
	jobsRunning   expvar.Int // gauge: being executed now
	jobsDone      expvar.Int
	jobsFailed    expvar.Int
	jobsCanceled  expvar.Int // rejected at shutdown while queued
	jobsRejected  expvar.Int // refused at submit (queue full / shutdown)

	admissionRejects expvar.Int // submissions bounced by the admission gate

	cellsTotal     expvar.Int // resolved cells, hits + misses
	cacheHits      expvar.Int // resolved without a fresh simulation
	simsRun        expvar.Int // fresh simulations executed
	hitRatio       expvar.Float
	cacheSize      expvar.Int
	cacheEvictions expvar.Int   // resolved entries dropped by the LRU cap
	storeHits      expvar.Int   // cells served from the persistent store
	storeMisses    expvar.Int   // store lookups that fell through to a run
	storePutErrors expvar.Int   // failed write-throughs (daemon kept going)
	storeEntries   expvar.Int   // gauge: entries resident on disk
	storeBytes     expvar.Int   // gauge: bytes resident on disk
	simCycles      expvar.Int   // simulated cycles across all fresh runs
	simInstrs      expvar.Int   // committed instructions across all fresh runs
	simSeconds     expvar.Float // summed core.Run wall-clock (overlaps under parallelism)
	cellsPerSec    expvar.Float // fresh cells per summed simulation second
	cyclesPerSec   expvar.Float

	statsMu    sync.Mutex
	cellStats  expvar.Map // per-cell CellStats, keyed by hash prefix
	statsCount int

	// prom is the Prometheus text-format view served at /metrics/prom:
	// scrape-time readers over the expvar counters above (one source of
	// truth, two renderings) plus real latency histograms, which expvar
	// cannot express.
	prom          *obs.Registry
	histQueueWait *obs.Histogram // submit → job start
	histSimulate  *obs.Histogram // harness.RunStats wall-clock per fresh cell
	histCacheHit  *obs.Histogram // resolved-without-simulating serve time
}

func newMetrics() *metrics {
	m := &metrics{}
	m.root.Init()
	m.cellStats.Init()
	for name, v := range map[string]expvar.Var{
		"jobs_submitted":    &m.jobsSubmitted,
		"jobs_queued":       &m.jobsQueued,
		"jobs_running":      &m.jobsRunning,
		"jobs_done":         &m.jobsDone,
		"jobs_failed":       &m.jobsFailed,
		"jobs_canceled":     &m.jobsCanceled,
		"jobs_rejected":     &m.jobsRejected,
		"admission_rejects": &m.admissionRejects,
		"cells_total":       &m.cellsTotal,
		"cache_hits":        &m.cacheHits,
		"sims_run":          &m.simsRun,
		"cache_hit_ratio":   &m.hitRatio,
		"cache_size":        &m.cacheSize,
		"cache_evictions":   &m.cacheEvictions,
		"store_hits":        &m.storeHits,
		"store_misses":      &m.storeMisses,
		"store_put_errors":  &m.storePutErrors,
		"store_entries":     &m.storeEntries,
		"store_bytes":       &m.storeBytes,
		"sim_cycles":        &m.simCycles,
		"sim_instructions":  &m.simInstrs,
		"sim_seconds":       &m.simSeconds,
		"cells_per_sec":     &m.cellsPerSec,
		"cycles_per_sec":    &m.cyclesPerSec,
		"cells":             &m.cellStats,
	} {
		m.root.Set(name, v)
	}
	m.initProm()
	return m
}

// intFn adapts an expvar.Int into a scrape-time Prometheus reader.
func intFn(v *expvar.Int) func() float64 {
	return func() float64 { return float64(v.Value()) }
}

// floatFn adapts an expvar.Float likewise.
func floatFn(v *expvar.Float) func() float64 {
	return func() float64 { return v.Value() }
}

// initProm builds the Prometheus registry over the expvar counters (the
// single source of truth) and creates the latency histograms. Metric names
// follow Prometheus conventions: *_total for counters, base units
// (seconds, bytes) in the name.
func (m *metrics) initProm() {
	m.prom = obs.NewRegistry()
	p := m.prom
	p.NewCounterFunc("visasimd_jobs_submitted_total", "Sweep jobs accepted by POST /v1/sweeps.", intFn(&m.jobsSubmitted))
	p.NewGaugeFunc("visasimd_jobs_queued", "Jobs waiting in the bounded queue.", intFn(&m.jobsQueued))
	p.NewGaugeFunc("visasimd_jobs_running", "Jobs currently executing.", intFn(&m.jobsRunning))
	p.NewCounterFunc("visasimd_jobs_done_total", "Jobs that completed with every cell resolved.", intFn(&m.jobsDone))
	p.NewCounterFunc("visasimd_jobs_failed_total", "Jobs that finished with at least one failed cell.", intFn(&m.jobsFailed))
	p.NewCounterFunc("visasimd_jobs_canceled_total", "Queued jobs canceled by shutdown.", intFn(&m.jobsCanceled))
	p.NewCounterFunc("visasimd_jobs_rejected_total", "Submissions refused (queue full or shutting down).", intFn(&m.jobsRejected))
	p.NewCounterFunc("visasimd_admission_rejected_jobs_total", "Submissions bounced by the tenant admission gate (401 or 429).", intFn(&m.admissionRejects))
	p.NewCounterFunc("visasimd_cells_total", "Cells resolved, cache hits plus fresh simulations.", intFn(&m.cellsTotal))
	p.NewCounterFunc("visasimd_cache_hits_total", "Cells resolved without a fresh simulation.", intFn(&m.cacheHits))
	p.NewCounterFunc("visasimd_sims_run_total", "Fresh simulations executed.", intFn(&m.simsRun))
	p.NewGaugeFunc("visasimd_cache_hit_ratio", "Lifetime cache hit ratio over resolved cells.", floatFn(&m.hitRatio))
	p.NewGaugeFunc("visasimd_cache_entries", "Result-cache entries resident in memory.", intFn(&m.cacheSize))
	p.NewGaugeFunc("visasimd_cache_evictions_total", "Resolved entries dropped by the in-memory LRU cap.", intFn(&m.cacheEvictions))
	p.NewCounterFunc("visasimd_store_hits_total", "Cells served from the persistent store.", intFn(&m.storeHits))
	p.NewCounterFunc("visasimd_store_misses_total", "Store lookups that fell through to a simulation.", intFn(&m.storeMisses))
	p.NewCounterFunc("visasimd_store_put_errors_total", "Failed store write-throughs (daemon kept going).", intFn(&m.storePutErrors))
	p.NewGaugeFunc("visasimd_store_entries", "Entries resident in the persistent store.", intFn(&m.storeEntries))
	p.NewGaugeFunc("visasimd_store_bytes", "Bytes resident in the persistent store.", intFn(&m.storeBytes))
	p.NewCounterFunc("visasimd_sim_cycles_total", "Simulated cycles across all fresh runs.", intFn(&m.simCycles))
	p.NewCounterFunc("visasimd_sim_instructions_total", "Committed instructions across all fresh runs.", intFn(&m.simInstrs))
	p.NewCounterFunc("visasimd_sim_seconds_total", "Summed simulation wall-clock seconds (overlaps under parallelism).", floatFn(&m.simSeconds))
	p.NewGaugeFunc("visasimd_sim_cycles_per_sec", "Simulated cycles per summed simulation second.", floatFn(&m.cyclesPerSec))
	m.histQueueWait = p.NewHistogram("visasimd_queue_wait_seconds",
		"Time a job spent queued before a worker started it.", nil)
	m.histSimulate = p.NewHistogram("visasimd_simulate_seconds",
		"Wall-clock of one fresh cell simulation (queue wait excluded).", nil)
	m.histCacheHit = p.NewHistogram("visasimd_cache_serve_seconds",
		"Time to serve a cell from the in-memory cache or the store.", nil)
}

// initTenantProm adds the per-tenant Prometheus families when admission
// control is on. They are obs.SnapshotVec readers over the admission
// snapshot — one source of truth, recomputed at scrape time — so the label
// set always matches the registry and no key material ever leaves it.
func (m *metrics) initTenantProm(adm *cluster.Admission) {
	tenantSamples := func(value func(cluster.TenantStatus) float64) func() []obs.Sample {
		return func() []obs.Sample {
			snap := adm.Snapshot()
			out := make([]obs.Sample, len(snap))
			for i, ts := range snap {
				out[i] = obs.Sample{
					Labels: map[string]string{"tenant": ts.ID},
					Value:  value(ts),
				}
			}
			return out
		}
	}
	m.prom.NewCounterSnapshotVec("visasimd_tenant_admitted_cells_total",
		"Cells admitted per tenant.",
		tenantSamples(func(ts cluster.TenantStatus) float64 { return float64(ts.Admitted) }))
	m.prom.NewCounterSnapshotVec("visasimd_tenant_rejected_cells_total",
		"Cells rejected per tenant (rate or quota).",
		tenantSamples(func(ts cluster.TenantStatus) float64 { return float64(ts.Rejected) }))
	m.prom.NewGaugeSnapshotVec("visasimd_tenant_queued_cells",
		"Outstanding admitted cells per tenant (the quota in use).",
		tenantSamples(func(ts cluster.TenantStatus) float64 { return float64(ts.Queued) }))
}

// recordCell accounts one resolved cell (hit or miss) and refreshes the
// derived hit ratio.
func (m *metrics) recordCell(hit bool) {
	m.cellsTotal.Add(1)
	if hit {
		m.cacheHits.Add(1)
	}
	if total := m.cellsTotal.Value(); total > 0 {
		m.hitRatio.Set(float64(m.cacheHits.Value()) / float64(total))
	}
}

// recordSim accounts one fresh simulation's cost and publishes its
// CellStats row under the cell's hash prefix.
func (m *metrics) recordSim(hash string, st harness.CellStats) {
	m.simsRun.Add(1)
	m.simCycles.Add(int64(st.Cycles))
	m.simInstrs.Add(int64(st.Instructions))
	m.simSeconds.Add(st.Seconds)
	if secs := m.simSeconds.Value(); secs > 0 {
		m.cellsPerSec.Set(float64(m.simsRun.Value()) / secs)
		m.cyclesPerSec.Set(float64(m.simCycles.Value()) / secs)
	}
	m.statsMu.Lock()
	if m.statsCount < maxCellStatRecords {
		m.statsCount++
		m.cellStats.Set(hash[:12], jsonVar{st})
	}
	m.statsMu.Unlock()
}
