package server

import (
	"encoding/json"
	"expvar"
	"sync"

	"visasim/internal/harness"
)

// maxCellStatRecords bounds the per-cell stats map in /metrics; beyond it,
// new cells still simulate and cache but stop adding metric rows.
const maxCellStatRecords = 512

// jsonVar renders any JSON-marshalable value as an expvar.Var.
type jsonVar struct{ v any }

func (j jsonVar) String() string {
	b, err := json.Marshal(j.v)
	if err != nil {
		return `"unmarshalable"`
	}
	return string(b)
}

// metrics aggregates the daemon's counters in a private expvar.Map — expvar
// types for atomicity and rendering, but deliberately not published to the
// process-global expvar registry so multiple Servers (tests!) never collide
// on names. cmd/visasimd publishes the root map once under "visasimd".
type metrics struct {
	root expvar.Map

	jobsSubmitted expvar.Int // accepted by POST /v1/sweeps
	jobsQueued    expvar.Int // gauge: waiting in the queue
	jobsRunning   expvar.Int // gauge: being executed now
	jobsDone      expvar.Int
	jobsFailed    expvar.Int
	jobsCanceled  expvar.Int // rejected at shutdown while queued
	jobsRejected  expvar.Int // refused at submit (queue full / shutdown)

	cellsTotal     expvar.Int // resolved cells, hits + misses
	cacheHits      expvar.Int // resolved without a fresh simulation
	simsRun        expvar.Int // fresh simulations executed
	hitRatio       expvar.Float
	cacheSize      expvar.Int
	cacheEvictions expvar.Int   // resolved entries dropped by the LRU cap
	storeHits      expvar.Int   // cells served from the persistent store
	storeMisses    expvar.Int   // store lookups that fell through to a run
	storePutErrors expvar.Int   // failed write-throughs (daemon kept going)
	storeEntries   expvar.Int   // gauge: entries resident on disk
	storeBytes     expvar.Int   // gauge: bytes resident on disk
	simCycles      expvar.Int   // simulated cycles across all fresh runs
	simInstrs      expvar.Int   // committed instructions across all fresh runs
	simSeconds     expvar.Float // summed core.Run wall-clock (overlaps under parallelism)
	cellsPerSec    expvar.Float // fresh cells per summed simulation second
	cyclesPerSec   expvar.Float

	statsMu    sync.Mutex
	cellStats  expvar.Map // per-cell CellStats, keyed by hash prefix
	statsCount int
}

func newMetrics() *metrics {
	m := &metrics{}
	m.root.Init()
	m.cellStats.Init()
	for name, v := range map[string]expvar.Var{
		"jobs_submitted":   &m.jobsSubmitted,
		"jobs_queued":      &m.jobsQueued,
		"jobs_running":     &m.jobsRunning,
		"jobs_done":        &m.jobsDone,
		"jobs_failed":      &m.jobsFailed,
		"jobs_canceled":    &m.jobsCanceled,
		"jobs_rejected":    &m.jobsRejected,
		"cells_total":      &m.cellsTotal,
		"cache_hits":       &m.cacheHits,
		"sims_run":         &m.simsRun,
		"cache_hit_ratio":  &m.hitRatio,
		"cache_size":       &m.cacheSize,
		"cache_evictions":  &m.cacheEvictions,
		"store_hits":       &m.storeHits,
		"store_misses":     &m.storeMisses,
		"store_put_errors": &m.storePutErrors,
		"store_entries":    &m.storeEntries,
		"store_bytes":      &m.storeBytes,
		"sim_cycles":       &m.simCycles,
		"sim_instructions": &m.simInstrs,
		"sim_seconds":      &m.simSeconds,
		"cells_per_sec":    &m.cellsPerSec,
		"cycles_per_sec":   &m.cyclesPerSec,
		"cells":            &m.cellStats,
	} {
		m.root.Set(name, v)
	}
	return m
}

// recordCell accounts one resolved cell (hit or miss) and refreshes the
// derived hit ratio.
func (m *metrics) recordCell(hit bool) {
	m.cellsTotal.Add(1)
	if hit {
		m.cacheHits.Add(1)
	}
	if total := m.cellsTotal.Value(); total > 0 {
		m.hitRatio.Set(float64(m.cacheHits.Value()) / float64(total))
	}
}

// recordSim accounts one fresh simulation's cost and publishes its
// CellStats row under the cell's hash prefix.
func (m *metrics) recordSim(hash string, st harness.CellStats) {
	m.simsRun.Add(1)
	m.simCycles.Add(int64(st.Cycles))
	m.simInstrs.Add(int64(st.Instructions))
	m.simSeconds.Add(st.Seconds)
	if secs := m.simSeconds.Value(); secs > 0 {
		m.cellsPerSec.Set(float64(m.simsRun.Value()) / secs)
		m.cyclesPerSec.Set(float64(m.simCycles.Value()) / secs)
	}
	m.statsMu.Lock()
	if m.statsCount < maxCellStatRecords {
		m.statsCount++
		m.cellStats.Set(hash[:12], jsonVar{st})
	}
	m.statsMu.Unlock()
}
