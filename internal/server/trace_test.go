package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// TestTracedJobServesNDJSONTrace covers the trace download path: a
// trace_level submission records per-cell decision traces, serves them as
// NDJSON, and produces results byte-identical to an untraced submission of
// the same cell (tracing is observation only).
func TestTracedJobServesNDJSONTrace(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := testCfg("mcf", core.SchemeVISAOpt2)

	ack := submit(t, ts, SubmitRequest{
		Cells:      []SubmitCell{{Key: "traced", Config: cfg}},
		TraceLevel: 1,
	})
	st := waitJob(t, ts, ack.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}
	c := st.Cells[0]
	if !c.HasTrace {
		t.Fatal("traced cell reports no trace")
	}
	if c.CacheHit {
		t.Fatal("traced cell claims a cache hit; traced jobs must bypass the cache")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + ack.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("NDJSON trace has %d lines, want header + summary at least", len(lines))
	}
	if !strings.Contains(lines[0], `"type":"header"`) || !strings.Contains(lines[0], `"trace_level":1`) {
		t.Errorf("bad header line: %s", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], `"type":"summary"`) {
		t.Errorf("bad summary line: %s", lines[len(lines)-1])
	}

	// Tracing must not perturb the simulation: an untraced submission of
	// the identical cell returns byte-identical result JSON.
	plain := waitJob(t, ts, submit(t, ts, SubmitRequest{
		Cells: []SubmitCell{{Key: "plain", Config: cfg}},
	}).ID)
	if plain.State != StateDone {
		t.Fatalf("untraced job state %s", plain.State)
	}
	if !bytes.Equal(c.Result, plain.Cells[0].Result) {
		t.Error("traced and untraced results differ")
	}
}

// TestTraceEndpointErrors covers the endpoint's rejection paths.
func TestTraceEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := testCfg("gcc", core.SchemeBase)

	// Untraced job: no trace to serve.
	plain := submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "a", Config: cfg}}})
	waitJob(t, ts, plain.ID)
	if code := getStatus(t, ts.URL+"/v1/jobs/"+plain.ID+"/trace"); code != http.StatusNotFound {
		t.Errorf("untraced job trace: HTTP %d, want 404", code)
	}

	// Traced multi-cell job: cell selection required, unknown keys 404.
	traced := submit(t, ts, SubmitRequest{
		Cells: []SubmitCell{
			{Key: "a", Config: cfg},
			{Key: "b", Config: testCfg("mcf", core.SchemeBase)},
		},
		TraceLevel: 1,
	})
	waitJob(t, ts, traced.ID)
	base := ts.URL + "/v1/jobs/" + traced.ID + "/trace"
	if code := getStatus(t, base); code != http.StatusBadRequest {
		t.Errorf("multi-cell trace without ?cell: HTTP %d, want 400", code)
	}
	if code := getStatus(t, base+"?cell=nope"); code != http.StatusNotFound {
		t.Errorf("unknown cell: HTTP %d, want 404", code)
	}
	if code := getStatus(t, base+"?cell=b"); code != http.StatusOK {
		t.Errorf("known cell: HTTP %d, want 200", code)
	}
	if code := getStatus(t, ts.URL+"/v1/jobs/nope/trace"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode
}

// TestClientTraceDownload exercises the client-side path: a TraceLevel
// client submits traced sweeps and downloads each cell's trace.
func TestClientTraceDownload(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cli := &Client{BaseURL: ts.URL, TraceLevel: 1}

	cells := []harness.Cell{{Key: "c1", Cfg: testCfg("mcf", core.SchemeVISAOpt2)}}
	ack, err := cli.Submit(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Wait(context.Background(), ack.ID); err != nil {
		t.Fatal(err)
	}
	body, err := cli.Trace(context.Background(), ack.ID, "c1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"type":"header"`) {
		t.Errorf("trace body missing header line: %.120s", body)
	}
}
