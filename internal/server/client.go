package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/obs"
)

// Client runs sweeps against a visasimd daemon. Its Run and RunStats
// methods mirror harness.Run / harness.RunStats, so callers (notably
// experiments.Params.Runner) can swap local execution for the service —
// and its cache — without other changes.
type Client struct {
	// BaseURL locates the daemon, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval spaces job polls (50ms when 0).
	PollInterval time.Duration
	// Timeout bounds one Run/RunStats call end to end — submit plus the
	// wait for the job to reach a terminal state. Zero means no deadline;
	// set one so a wedged daemon fails the sweep instead of hanging it.
	// Callers needing per-call control use Wait with their own context.
	Timeout time.Duration
	// Logger receives the client's structured log lines — every submit,
	// wait and failure, each carrying the sweep correlation ID (minted at
	// Submit when the context does not already carry one, and sent to the
	// daemon in the obs.SweepHeader header). Nil discards.
	Logger *slog.Logger
	// TraceLevel, when > 0, asks the daemon to record decision traces for
	// every submitted cell (see SubmitRequest.TraceLevel); download them
	// with Trace after the job resolves.
	TraceLevel int
	// APIKey identifies the tenant against an admission-controlled daemon
	// or coordinator; it travels in the cluster.KeyHeader header. Empty
	// sends no key (fine against untenanted servers, 401 against tenanted
	// ones).
	APIKey string
	// Retry429 bounds how many times Submit automatically backs off and
	// retries a 429 (throttled) answer, honoring the server's Retry-After /
	// cluster.RetryAfterMsHeader hints. 0 means the default (4); negative
	// disables the backoff so a 429 surfaces immediately.
	Retry429 int
}

func (c *Client) log() *slog.Logger { return obs.Logger(c.Logger) }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

// HTTPError is a non-2xx daemon response. Carrying the status code lets
// callers key policy on it — the dispatch coordinator treats 4xx (the
// request itself was rejected) as permanent and everything else (5xx,
// overload, shutdown races) as retryable on another backend.
type HTTPError struct {
	// StatusCode is the HTTP status the daemon answered with.
	StatusCode int
	// Msg is the daemon's error body (or raw bytes when not JSON).
	Msg string
	// RetryAfter is the server's back-off hint on a 429 — the
	// cluster.RetryAfterMsHeader millisecond value when present, else the
	// Retry-After header in either RFC 7231 form (delta-seconds or an
	// HTTP-date). Hints are clamped to [0, maxRetryAfter]; zero when the
	// response carried neither header or the hint was in the past.
	RetryAfter time.Duration
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.StatusCode)
}

// Temporary reports whether retrying the identical request could succeed:
// false for 4xx (except 429, the canonical back-off-and-retry status),
// true for everything else.
func (e *HTTPError) Temporary() bool {
	if e.StatusCode == http.StatusTooManyRequests {
		return true
	}
	return e.StatusCode < 400 || e.StatusCode >= 500
}

// maxRetryAfter caps any server back-off hint. A misconfigured (or hostile)
// server sending "Retry-After: 99999999999" or a far-future HTTP-date must
// not park a sweep for years — and naive multiplication of such values by
// time.Second overflows int64 into a negative Duration, which the Submit
// back-off loop would treat as "no hint" and hammer the server instead.
const maxRetryAfter = time.Hour

// clampRetryAfter folds a hint into [0, maxRetryAfter]: negatives (a date in
// the past, or an overflowed product) mean "retry now", not "never".
func clampRetryAfter(d time.Duration) time.Duration {
	switch {
	case d <= 0:
		return 0
	case d > maxRetryAfter:
		return maxRetryAfter
	}
	return d
}

// parseRetryAfter interprets a Retry-After header value per RFC 7231 §7.1.3:
// either delta-seconds or an HTTP-date. Unparseable values yield 0.
func parseRetryAfter(v string) time.Duration {
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs > int64(maxRetryAfter/time.Second) {
			return maxRetryAfter
		}
		return clampRetryAfter(time.Duration(secs) * time.Second)
	}
	if at, err := http.ParseTime(v); err == nil {
		return clampRetryAfter(time.Until(at))
	}
	return 0
}

// decodeError surfaces the server's JSON error body as an *HTTPError,
// capturing any back-off hint headers on the way. The millisecond header is
// preferred (finer grained, set by our own daemons); the standard Retry-After
// header is honored in both RFC 7231 forms — delta-seconds and HTTP-date.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	he := &HTTPError{StatusCode: resp.StatusCode, Msg: string(bytes.TrimSpace(body))}
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		he.Msg = er.Error
	}
	if ms := resp.Header.Get(cluster.RetryAfterMsHeader); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			if v > int64(maxRetryAfter/time.Millisecond) {
				v = int64(maxRetryAfter / time.Millisecond)
			}
			he.RetryAfter = time.Duration(v) * time.Millisecond
		}
	}
	if he.RetryAfter == 0 {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			he.RetryAfter = parseRetryAfter(ra)
		}
	}
	return he
}

// Submit posts one sweep and returns the job acknowledgement. The request
// is canceled when ctx expires. Submit is the correlation origin: when ctx
// does not already carry a sweep ID (a coordinator minted one upstream),
// one is minted here, and either way it travels to the daemon in the
// obs.SweepHeader header so client, daemon and coordinator logs of the
// same sweep grep together.
// An admission-throttled daemon (429) is retried automatically: Submit
// sleeps for the server's hinted duration and tries again, up to Retry429
// times, so quota pressure degrades a tenant's sweep into a polite wait
// instead of an error.
func (c *Client) Submit(ctx context.Context, cells []harness.Cell) (SubmitResponse, error) {
	ctx, sweep := obs.EnsureSweep(ctx)
	req := SubmitRequest{Cells: make([]SubmitCell, len(cells)), TraceLevel: c.TraceLevel}
	for i, cell := range cells {
		req.Cells[i] = SubmitCell{Key: cell.Key, Config: cell.Cfg}
	}
	blob, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	for attempt := 0; ; attempt++ {
		ack, err := c.submitOnce(ctx, sweep, blob, len(cells))
		var he *HTTPError
		if err == nil || !errors.As(err, &he) ||
			he.StatusCode != http.StatusTooManyRequests || attempt >= c.retries429() {
			return ack, err
		}
		wait := he.RetryAfter
		if wait <= 0 {
			wait = 100 * time.Millisecond
		}
		c.log().Warn("sweep submit throttled; backing off", "sweep", sweep,
			"server", c.BaseURL, "retry_after", wait, "attempt", attempt+1)
		select {
		case <-ctx.Done():
			return SubmitResponse{}, fmt.Errorf("server: backing off after 429: %w", ctx.Err())
		case <-time.After(wait):
		}
	}
}

// retries429 resolves the Retry429 knob: default 4, negative disables.
func (c *Client) retries429() int {
	switch {
	case c.Retry429 < 0:
		return 0
	case c.Retry429 == 0:
		return 4
	default:
		return c.Retry429
	}
}

// submitOnce is one POST /v1/sweeps attempt.
func (c *Client) submitOnce(ctx context.Context, sweep string, blob []byte, cells int) (SubmitResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/sweeps", bytes.NewReader(blob))
	if err != nil {
		return SubmitResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(obs.SweepHeader, sweep)
	if c.APIKey != "" {
		hreq.Header.Set(cluster.KeyHeader, c.APIKey)
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		c.log().Error("sweep submit failed", "sweep", sweep, "server", c.BaseURL, "err", err)
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		err := decodeError(resp)
		c.log().Error("sweep submit rejected", "sweep", sweep, "server", c.BaseURL, "err", err)
		return SubmitResponse{}, err
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return SubmitResponse{}, fmt.Errorf("decoding submit response: %w", err)
	}
	c.log().Info("sweep submitted", "sweep", sweep, "server", c.BaseURL,
		"job", ack.ID, "cells", cells)
	return ack, nil
}

// Job fetches a job's current status. The request is canceled when ctx
// expires.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, decodeError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// Wait polls the job until it reaches a terminal state or ctx expires,
// whichever comes first; an expired context is returned as an error (and
// cancels any in-flight poll) rather than waiting forever on a job the
// daemon never finishes.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return JobStatus{}, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, fmt.Errorf("server: waiting for job %s: %w", id, ctx.Err())
		case <-time.After(c.poll()):
		}
	}
}

// Trace downloads one cell's recorded decision trace from a resolved traced
// job as NDJSON bytes (decision.Trace.WriteNDJSON's format: a header line,
// one line per event, a summary line). The job must have been submitted by a
// client with TraceLevel > 0.
func (c *Client) Trace(ctx context.Context, jobID, cellKey string) ([]byte, error) {
	u := c.BaseURL + "/v1/jobs/" + jobID + "/trace"
	if cellKey != "" {
		u += "?cell=" + url.QueryEscape(cellKey)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Run submits the cells, waits for the job, and returns keyed results with
// harness.Run's semantics: the first failing cell aborts with a *CellError.
// It ignores caller cancellation; interactive callers use RunContext.
func (c *Client) Run(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStats(cells, opt)
	return res, err
}

// RunContext is Run bounded by ctx: canceling ctx aborts the submit or the
// poll loop immediately, so a coordinator or CLI abort actually stops the
// sweep instead of letting it poll to completion in the background.
func (c *Client) RunContext(ctx context.Context, cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStatsContext(ctx, cells, opt)
	return res, err
}

// RunStats is RunStatsContext with a background context — it returns only
// when the job resolves or c.Timeout expires.
func (c *Client) RunStats(cells []harness.Cell, opt harness.Options) (harness.Results, harness.Stats, error) {
	return c.RunStatsContext(context.Background(), cells, opt)
}

// RunStatsContext is Run plus the per-cell cost records the daemon measured
// (for cache hits these echo the original simulation, not the cached
// serve). The opt.Workers bound is ignored — concurrency is the daemon's to
// manage. The call ends at ctx's cancellation or after c.Timeout (when
// set), whichever comes first; the c.Timeout deadline stays a bound even
// for callers passing a never-canceled context.
func (c *Client) RunStatsContext(ctx context.Context, cells []harness.Cell, _ harness.Options) (harness.Results, harness.Stats, error) {
	if len(cells) == 0 {
		return harness.Results{}, harness.Stats{}, nil
	}
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	ctx, sweep := obs.EnsureSweep(ctx)
	ack, err := c.Submit(ctx, cells)
	if err != nil {
		return nil, nil, err
	}
	st, err := c.Wait(ctx, ack.ID)
	if err != nil {
		c.log().Error("sweep wait failed", "sweep", sweep, "server", c.BaseURL,
			"job", ack.ID, "err", err)
		return nil, nil, err
	}
	c.log().Info("sweep finished", "sweep", sweep, "server", c.BaseURL,
		"job", ack.ID, "state", st.State, "cache_hits", st.CacheHits)
	if st.State == StateCanceled {
		return nil, nil, errors.New("server: job canceled: " + st.Error)
	}
	results := make(harness.Results, len(st.Cells))
	stats := make(harness.Stats, len(st.Cells))
	for _, cell := range st.Cells {
		if cell.Error != "" {
			return nil, nil, &harness.CellError{Key: cell.Key, Err: errors.New(cell.Error)}
		}
		var res core.Result
		if err := json.Unmarshal(cell.Result, &res); err != nil {
			return nil, nil, fmt.Errorf("decoding result for cell %s: %w", cell.Key, err)
		}
		results[cell.Key] = &res
		stats[cell.Key] = cell.Stats
	}
	return results, stats, nil
}
