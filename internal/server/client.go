package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// Client runs sweeps against a visasimd daemon. Its Run and RunStats
// methods mirror harness.Run / harness.RunStats, so callers (notably
// experiments.Params.Runner) can swap local execution for the service —
// and its cache — without other changes.
type Client struct {
	// BaseURL locates the daemon, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval spaces job polls (50ms when 0).
	PollInterval time.Duration
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

// decodeError surfaces the server's JSON error body.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return fmt.Errorf("server: %s (HTTP %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// Submit posts one sweep and returns the job acknowledgement.
func (c *Client) Submit(cells []harness.Cell) (SubmitResponse, error) {
	req := SubmitRequest{Cells: make([]SubmitCell, len(cells))}
	for i, cell := range cells {
		req.Cells[i] = SubmitCell{Key: cell.Key, Config: cell.Cfg}
	}
	blob, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	resp, err := c.http().Post(c.BaseURL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		return SubmitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return SubmitResponse{}, decodeError(resp)
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return SubmitResponse{}, fmt.Errorf("decoding submit response: %w", err)
	}
	return ack, nil
}

// Job fetches a job's current status.
func (c *Client) Job(id string) (JobStatus, error) {
	resp, err := c.http().Get(c.BaseURL + "/v1/jobs/" + id)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, decodeError(resp)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, fmt.Errorf("decoding job status: %w", err)
	}
	return st, nil
}

// Wait polls the job until it reaches a terminal state.
func (c *Client) Wait(id string) (JobStatus, error) {
	for {
		st, err := c.Job(id)
		if err != nil {
			return JobStatus{}, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		time.Sleep(c.poll())
	}
}

// Run submits the cells, waits for the job, and returns keyed results with
// harness.Run's semantics: the first failing cell aborts with a *CellError.
func (c *Client) Run(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStats(cells, opt)
	return res, err
}

// RunStats is Run plus the per-cell cost records the daemon measured (for
// cache hits these echo the original simulation, not the cached serve). The
// opt.Workers bound is ignored — concurrency is the daemon's to manage.
func (c *Client) RunStats(cells []harness.Cell, _ harness.Options) (harness.Results, harness.Stats, error) {
	if len(cells) == 0 {
		return harness.Results{}, harness.Stats{}, nil
	}
	ack, err := c.Submit(cells)
	if err != nil {
		return nil, nil, err
	}
	st, err := c.Wait(ack.ID)
	if err != nil {
		return nil, nil, err
	}
	if st.State == StateCanceled {
		return nil, nil, errors.New("server: job canceled: " + st.Error)
	}
	results := make(harness.Results, len(st.Cells))
	stats := make(harness.Stats, len(st.Cells))
	for _, cell := range st.Cells {
		if cell.Error != "" {
			return nil, nil, &harness.CellError{Key: cell.Key, Err: errors.New(cell.Error)}
		}
		var res core.Result
		if err := json.Unmarshal(cell.Result, &res); err != nil {
			return nil, nil, fmt.Errorf("decoding result for cell %s: %w", cell.Key, err)
		}
		results[cell.Key] = &res
		stats[cell.Key] = cell.Stats
	}
	return results, stats, nil
}
