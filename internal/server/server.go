// Package server is the visasimd simulation service: an HTTP front end over
// the deterministic simulator with a bounded job queue, a content-addressed
// result cache, and expvar-based metrics.
//
// Clients POST sweep cells (core.Config values, the same shape the harness
// runs) to /v1/sweeps, receive a job ID, and poll /v1/jobs/{id} or stream
// /v1/jobs/{id}/stream for results. Each cell is content-addressed by
// core.Config.Hash — the SHA-256 of its canonical configuration — and the
// simulator is deterministic, so a cached core.Result is byte-identical to
// a fresh run and can be served without re-simulating. Concurrent identical
// cells share a single simulation (single-flight); see DESIGN.md §7 for the
// soundness argument.
//
// Execution is a two-level bounded pool: Options.JobWorkers jobs run
// concurrently, and across all of them Options.SimWorkers simulations may be
// in flight, each executed through internal/harness.RunStats so the daemon
// reports the same per-cell cost records the CLI tools do.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/decision"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/store"
	"visasim/internal/workload"
)

// Options tunes the service.
type Options struct {
	// JobWorkers bounds concurrently executing jobs (2 when 0).
	JobWorkers int
	// SimWorkers bounds concurrently running simulations across all jobs
	// (GOMAXPROCS when 0, as in harness.Options).
	SimWorkers int
	// QueueDepth bounds the job queue; submissions beyond it are rejected
	// with 503 (64 when 0).
	QueueDepth int
	// JobHistory bounds how many terminal (done/failed/canceled) jobs the
	// server keeps for polling (256 when 0). Older terminal jobs are
	// evicted oldest-first and their IDs 404; their results stay reachable
	// through the content-addressed cache, so a long-running daemon does
	// not grow with every submission.
	JobHistory int
	// CacheEntries bounds resolved results resident in memory (4096 when
	// 0; negative means unbounded). Past it the least-recently-used
	// entries are evicted — re-served from Store when one is configured,
	// re-simulated otherwise.
	CacheEntries int
	// Store, when non-nil, is the durable result tier: every fresh
	// simulation is written through to it, and a cache miss consults it
	// before simulating, so a restarted daemon serves previously computed
	// cells from disk (see DESIGN.md §8).
	Store *store.Store
	// Tenants, when non-nil, turns on multi-tenant admission control: every
	// submission must carry a known API key in the cluster.KeyHeader header
	// (unknown or missing keys answer 401), and each tenant's token-bucket
	// rate and outstanding-cell quota are enforced at submit. Rejections
	// answer 429 with Retry-After (whole seconds) and
	// cluster.RetryAfterMsHeader (millisecond precision) hints; the client
	// in this package backs off on them automatically. Quota is released
	// when the job retires — done, failed, or canceled alike. Nil keeps the
	// daemon single-tenant and unauthenticated.
	Tenants *cluster.Registry
	// Logger receives the service's structured log lines. Every line
	// about a job or cell carries the job's sweep correlation ID (taken
	// from the obs.SweepHeader request header, or minted at submit), so
	// one grep correlates daemon activity with the submitting client's
	// and coordinator's logs. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.SimWorkers <= 0 {
		o.SimWorkers = harness.DefaultWorkers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 256
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 4096
	}
	return o
}

// jobCell is the server-side state of one submitted cell.
type jobCell struct {
	key  string
	hash string
	cfg  core.Config // canonical form

	done  bool
	hit   bool
	res   *core.Result
	err   error
	stats harness.CellStats
	trace *decision.Trace // recorded when the job's traceLevel > 0
}

// job is one accepted sweep submission.
type job struct {
	id string
	// sweep is the correlation ID the submission carried (or was minted
	// at accept); immutable after creation.
	sweep string
	// queuedAt is when the submission was accepted, for the queue-wait
	// histogram.
	queuedAt time.Time
	// traceLevel is the submission's decision-trace level; traced jobs
	// bypass the result cache (see SubmitRequest.TraceLevel).
	traceLevel int
	// tenant is the admitted tenant's ID when admission control is on;
	// its quota is released when the job retires.
	tenant string

	mu      sync.Mutex
	state   string
	err     string
	cells   []jobCell
	changed chan struct{} // closed and replaced on every state change
}

// bump signals watchers that the job changed. Callers hold j.mu.
func (j *job) bump() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Server is the simulation service. Create with New, mount Handler on an
// http.Server, and stop with Shutdown.
type Server struct {
	opt   Options
	cache *resultCache
	store *store.Store // durable tier; nil when not configured
	met   *metrics
	adm   *cluster.Admission // nil when Options.Tenants is nil
	log   *slog.Logger

	mu     sync.Mutex
	closed bool
	jobs   map[string]*job
	hist   []string // terminal job IDs, oldest first, capped at JobHistory
	seq    int

	queue chan *job
	quit  chan struct{}
	sem   chan struct{} // simulation slots
	wg    sync.WaitGroup
}

// New starts a Server's worker pool and returns it ready to serve.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:   opt,
		cache: newResultCache(opt.CacheEntries),
		store: opt.Store,
		met:   newMetrics(),
		log:   obs.Logger(opt.Logger),
		jobs:  map[string]*job{},
		queue: make(chan *job, opt.QueueDepth),
		quit:  make(chan struct{}),
		sem:   make(chan struct{}, opt.SimWorkers),
	}
	if opt.Tenants != nil {
		s.adm = cluster.NewAdmission(opt.Tenants)
		s.met.initTenantProm(s.adm)
	}
	s.wg.Add(opt.JobWorkers)
	for i := 0; i < opt.JobWorkers; i++ {
		go s.worker()
	}
	return s
}

// MetricsVar exposes the root metrics map, e.g. for expvar.Publish in a
// daemon binary. The library never touches the global expvar registry.
func (s *Server) MetricsVar() expvar.Var { return &s.met.root }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/prom", s.handleMetricsProm)
	return mux
}

// Shutdown stops the service gracefully: new submissions are rejected,
// in-flight jobs run to completion, and still-queued jobs are canceled. It
// returns once every worker has exited, or ctx's error if that takes too
// long (workers keep draining in the background either way). Shutdown is
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker executes queued jobs until the queue closes. After Shutdown it
// keeps draining the queue but cancels instead of running.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.met.jobsQueued.Add(-1)
		select {
		case <-s.quit:
			s.cancelJob(j)
			continue
		default:
		}
		s.runJob(j)
	}
}

func (s *Server) cancelJob(j *job) {
	// Log before publishing the terminal state: a client that polls the job
	// to completion may tear down its log sink the moment the state flips,
	// so the write has to land first.
	s.met.jobsCanceled.Add(1)
	s.log.Warn("job canceled", "sweep", j.sweep, "job", j.id,
		"reason", "shutdown before the job ran")
	j.mu.Lock()
	j.state = StateCanceled
	j.err = "server shutting down before the job ran"
	j.bump()
	j.mu.Unlock()
	s.retireJob(j)
}

// retireJob records j as terminal and evicts terminal jobs beyond the
// JobHistory cap, oldest first, so the jobs map (and the per-cell Results
// it pins) stays bounded on a long-running daemon. It is also the single
// admission-release point: every accepted job — done, failed, or canceled —
// retires exactly once, so its tenant's outstanding-cell quota frees here
// and nowhere else.
func (s *Server) retireJob(j *job) {
	if s.adm != nil && j.tenant != "" {
		s.adm.Release(j.tenant, len(j.cells))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hist = append(s.hist, j.id)
	for len(s.hist) > s.opt.JobHistory {
		delete(s.jobs, s.hist[0])
		s.hist = s.hist[1:]
	}
}

// runJob resolves every cell of j through the cache: the single-flight
// leader of each content hash simulates (through harness.RunStats, bounded
// by the server-wide simulation semaphore) and everyone else — later cells
// of this job, or cells of concurrent jobs — shares the leader's result.
func (s *Server) runJob(j *job) {
	queueWait := time.Since(j.queuedAt)
	s.met.histQueueWait.Observe(queueWait.Seconds())
	j.mu.Lock()
	j.state = StateRunning
	j.bump()
	j.mu.Unlock()
	s.met.jobsRunning.Add(1)
	s.log.Info("job running", "sweep", j.sweep, "job", j.id,
		"cells", len(j.cells), "queue_wait", queueWait)

	var wg sync.WaitGroup
	for i := range j.cells {
		c := &j.cells[i]
		if j.traceLevel > 0 {
			// Traced cells bypass the cache in both directions: a cached
			// result has no trace to serve, and filling the cache from here
			// would gain nothing (the result is byte-identical to an
			// untraced run's, but the single-flight entry has nowhere to
			// carry the trace).
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.runTracedCell(j, c)
			}()
			continue
		}
		e, leader := s.cache.claim(c.hash)
		if !leader {
			if e.resolved() {
				t0 := time.Now()
				s.finishCell(j, c, e, true)
				s.met.histCacheHit.Observe(time.Since(t0).Seconds())
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Shared-flight follower: the wait is dominated by the
				// leader's simulation, so it belongs to neither the
				// cache-serve nor the simulate histogram.
				<-e.done
				s.finishCell(j, c, e, true)
			}()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The durable tier first: a previous process — or an evicted
			// in-memory entry — may already hold this address on disk, in
			// which case the cell is a hit without simulating.
			if s.store != nil {
				t0 := time.Now()
				if res, st, ok := s.store.Get(c.hash); ok {
					s.met.storeHits.Add(1)
					s.cache.fill(e, res, st)
					s.syncCacheGauges()
					s.finishCell(j, c, e, true)
					s.met.histCacheHit.Observe(time.Since(t0).Seconds())
					s.log.Debug("cell served from store", "sweep", j.sweep,
						"job", j.id, "cell", c.key, "hash", c.hash[:12])
					return
				}
				s.met.storeMisses.Add(1)
			}
			s.sem <- struct{}{}
			t0 := time.Now()
			res, stats, err := harness.RunStats(
				[]harness.Cell{{Key: c.hash, Cfg: c.cfg}},
				harness.Options{Workers: 1, Labels: map[string]string{"sweep": j.sweep}})
			s.met.histSimulate.Observe(time.Since(t0).Seconds())
			<-s.sem
			if err != nil {
				s.cache.fail(c.hash, e, err)
				s.log.Error("cell simulation failed", "sweep", j.sweep,
					"job", j.id, "cell", c.key, "hash", c.hash[:12], "err", err)
			} else {
				st := stats[c.hash]
				s.met.recordSim(c.hash, st)
				s.cache.fill(e, res[c.hash], st)
				if s.store != nil {
					// Best-effort write-through: a full disk degrades the
					// daemon to memory-only instead of failing the cell.
					if perr := s.store.Put(c.hash, res[c.hash], st); perr != nil {
						s.met.storePutErrors.Add(1)
						s.log.Warn("store write-through failed", "sweep", j.sweep,
							"job", j.id, "hash", c.hash[:12], "err", perr)
					}
				}
				s.log.Debug("cell simulated", "sweep", j.sweep, "job", j.id,
					"cell", c.key, "hash", c.hash[:12],
					"seconds", st.Seconds, "cycles", st.Cycles,
					"iq_high_water", st.Telemetry.IQHighWater,
					"policy_switches", st.Telemetry.PolicySwitches,
					"dvm_triggers", st.Telemetry.DVMTriggers)
			}
			s.syncCacheGauges()
			s.finishCell(j, c, e, false)
		}()
	}
	wg.Wait()

	failed := false
	hits := 0
	j.mu.Lock()
	for i := range j.cells {
		if j.cells[i].err != nil {
			failed = true
		}
		if j.cells[i].hit {
			hits++
		}
	}
	j.mu.Unlock()

	state := StateDone
	if failed {
		state = StateFailed
	}
	s.met.jobsRunning.Add(-1)
	if failed {
		s.met.jobsFailed.Add(1)
	} else {
		s.met.jobsDone.Add(1)
	}
	// Log before publishing the terminal state: a client that polls the job
	// to completion may tear down its log sink the moment the state flips,
	// so the write has to land first.
	s.log.Info("job finished", "sweep", j.sweep, "job", j.id,
		"state", state, "cells", len(j.cells), "cache_hits", hits)

	j.mu.Lock()
	j.state = state
	j.bump()
	j.mu.Unlock()
	s.retireJob(j)
}

// runTracedCell simulates one cell of a traced job with decision recording,
// outside the single-flight cache.
func (s *Server) runTracedCell(j *job, c *jobCell) {
	s.sem <- struct{}{}
	t0 := time.Now()
	res, stats, traces, err := harness.RunTraced(
		[]harness.Cell{{Key: c.key, Cfg: c.cfg}},
		harness.Options{Workers: 1, TraceLevel: j.traceLevel,
			Labels: map[string]string{"sweep": j.sweep}})
	s.met.histSimulate.Observe(time.Since(t0).Seconds())
	<-s.sem

	j.mu.Lock()
	c.done = true
	if err != nil {
		var ce *harness.CellError
		if errors.As(err, &ce) {
			err = ce.Err
		}
		c.err = err
	} else {
		c.res = res[c.key]
		c.stats = stats[c.key]
		c.trace = traces[c.key]
	}
	j.bump()
	j.mu.Unlock()
	s.met.recordCell(false)
	if err != nil {
		s.log.Error("traced cell simulation failed", "sweep", j.sweep,
			"job", j.id, "cell", c.key, "hash", c.hash[:12], "err", err)
		return
	}
	s.log.Debug("traced cell simulated", "sweep", j.sweep, "job", j.id,
		"cell", c.key, "hash", c.hash[:12], "trace_level", j.traceLevel)
}

// syncCacheGauges refreshes the cache/store occupancy gauges after a cell
// resolves.
func (s *Server) syncCacheGauges() {
	s.met.cacheSize.Set(int64(s.cache.size()))
	s.met.cacheEvictions.Set(s.cache.evicted())
	if s.store != nil {
		s.met.storeEntries.Set(int64(s.store.Len()))
		s.met.storeBytes.Set(s.store.Bytes())
	}
}

// finishCell records a resolved cache entry into the job's cell.
func (s *Server) finishCell(j *job, c *jobCell, e *cacheEntry, hit bool) {
	j.mu.Lock()
	c.done = true
	c.hit = hit
	if e.err != nil {
		// Followers of a failed leader report the shared cause; the
		// CellError key (the leader's hash) is not this cell's key, so
		// unwrap to the cause.
		err := e.err
		var ce *harness.CellError
		if errors.As(err, &ce) {
			err = ce.Err
		}
		c.err = err
	} else {
		c.res = e.res
		c.stats = e.stats
	}
	j.bump()
	j.mu.Unlock()
	s.met.recordCell(hit)
}

// --- HTTP handlers ---

// writeJSON responds compactly — deliberately un-indented, so embedded
// json.RawMessage result bytes pass through exactly as json.Marshal
// produced them (the byte-identical cache guarantee covers the wire form).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, "submission has no cells")
		return
	}

	cells := make([]jobCell, len(req.Cells))
	seen := map[string]int{}
	for i, sc := range req.Cells {
		canon, err := sc.Config.Canonical()
		if err != nil {
			writeError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
		if err := canon.Machine.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
		for _, b := range canon.Benchmarks {
			if _, err := workload.Get(b); err != nil {
				writeError(w, http.StatusBadRequest, "cell %d: %v", i, err)
				return
			}
		}
		hash, err := canon.Hash()
		if err != nil {
			writeError(w, http.StatusBadRequest, "cell %d: %v", i, err)
			return
		}
		key := sc.Key
		if key == "" {
			key = hash
		}
		if prev, dup := seen[key]; dup {
			writeError(w, http.StatusBadRequest, "cells %d and %d share key %q", prev, i, key)
			return
		}
		seen[key] = i
		cells[i] = jobCell{key: key, hash: hash, cfg: canon}
	}

	// Adopt the caller's sweep correlation ID (obs.SweepHeader) when it is
	// present and well formed — so daemon log lines grep together with the
	// submitting client's — and mint one otherwise, so every job is
	// correlatable even from bare-curl submissions.
	sweep := r.Header.Get(obs.SweepHeader)
	if !obs.ValidSweepID(sweep) {
		sweep = obs.NewSweepID()
	}

	// The admission gate: authenticate the tenant key and charge the cells
	// against its rate and quota before the job can enter the queue. Every
	// rejection below this point must hand the charge back.
	tenant := ""
	if s.adm != nil {
		t, err := s.adm.Admit(r.Header.Get(cluster.KeyHeader), len(cells))
		if err != nil {
			s.rejectAdmission(w, sweep, err)
			return
		}
		tenant = t.ID
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.releaseAdmission(tenant, len(cells))
		s.met.jobsRejected.Add(1)
		s.log.Warn("job rejected", "sweep", sweep, "reason", "shutting down")
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.seq++
	traceLevel := req.TraceLevel
	if traceLevel < 0 {
		traceLevel = 0
	}
	j := &job{
		id:         fmt.Sprintf("job-%d", s.seq),
		sweep:      sweep,
		queuedAt:   time.Now(),
		traceLevel: traceLevel,
		tenant:     tenant,
		state:      StateQueued,
		cells:      cells,
		changed:    make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.releaseAdmission(tenant, len(cells))
		s.met.jobsRejected.Add(1)
		s.log.Warn("job rejected", "sweep", sweep, "reason", "queue full",
			"queue_depth", s.opt.QueueDepth)
		writeError(w, http.StatusServiceUnavailable, "job queue full (%d queued)", s.opt.QueueDepth)
		return
	}
	s.jobs[j.id] = j
	s.mu.Unlock()

	s.met.jobsSubmitted.Add(1)
	s.met.jobsQueued.Add(1)
	if tenant != "" {
		s.log.Info("job accepted", "sweep", sweep, "job", j.id, "cells", len(cells), "tenant", tenant)
	} else {
		s.log.Info("job accepted", "sweep", sweep, "job", j.id, "cells", len(cells))
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:     j.id,
		Sweep:  sweep,
		Cells:  len(cells),
		Job:    "/v1/jobs/" + j.id,
		Stream: "/v1/jobs/" + j.id + "/stream",
	})
}

// rejectAdmission answers an admission failure: 401 for an unknown (or
// missing) API key, 429 with both retry hints for a rate or quota bounce.
func (s *Server) rejectAdmission(w http.ResponseWriter, sweep string, err error) {
	s.met.jobsRejected.Add(1)
	s.met.admissionRejects.Add(1)
	var ae *cluster.AdmissionError
	switch {
	case errors.Is(err, cluster.ErrUnknownKey):
		s.log.Warn("job rejected", "sweep", sweep, "reason", "unknown API key")
		writeError(w, http.StatusUnauthorized, "%v", err)
	case errors.As(err, &ae):
		secs := int((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.Header().Set(cluster.RetryAfterMsHeader,
			strconv.FormatInt(ae.RetryAfter.Milliseconds(), 10))
		s.log.Warn("job rejected", "sweep", sweep, "tenant", ae.Tenant,
			"reason", ae.Reason, "retry_after", ae.RetryAfter)
		writeError(w, http.StatusTooManyRequests, "%v", err)
	default:
		s.log.Error("admission failed", "sweep", sweep, "err", err)
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// releaseAdmission hands an admitted charge back when the job is rejected
// after the admission gate (queue full, shutdown race).
func (s *Server) releaseAdmission(tenant string, cells int) {
	if s.adm != nil && tenant != "" {
		s.adm.Release(tenant, cells)
	}
}

// snapshot renders the job's current state. It marshals results outside the
// critical section; a resolved cell's Result is immutable.
func (s *Server) snapshot(j *job) JobStatus {
	j.mu.Lock()
	st := JobStatus{ID: j.id, State: j.state, Error: j.err}
	cells := make([]jobCell, len(j.cells))
	copy(cells, j.cells)
	j.mu.Unlock()

	st.Cells = make([]CellStatus, len(cells))
	for i := range cells {
		st.Cells[i] = cellStatus(&cells[i])
		if cells[i].done && cells[i].hit {
			st.CacheHits++
		}
	}
	return st
}

func cellStatus(c *jobCell) CellStatus {
	cs := CellStatus{
		Key:      c.key,
		Hash:     c.hash,
		Done:     c.done,
		CacheHit: c.hit,
		Stats:    c.stats,
		HasTrace: c.trace != nil,
	}
	if c.err != nil {
		cs.Error = c.err.Error()
	} else if c.res != nil {
		// Marshal the cached *core.Result directly: encoding/json is
		// deterministic for it, so these bytes are identical to a fresh
		// run's encoding (pinned by TestCachedResultByteIdentical).
		blob, err := json.Marshal(c.res)
		if err != nil {
			cs.Error = fmt.Sprintf("encoding result: %v", err)
		} else {
			cs.Result = blob
		}
	}
	return cs
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.snapshot(j))
}

// handleStream writes NDJSON StreamEvents: one "cell" event as each cell
// resolves (cache hits arrive immediately, fresh runs as they finish), then
// an "end" event with the job's terminal state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	j.mu.Lock()
	sent := make([]bool, len(j.cells))
	j.mu.Unlock()
	for {
		j.mu.Lock()
		state := j.state
		jerr := j.err
		changed := j.changed
		var fresh []jobCell
		for i := range j.cells {
			if j.cells[i].done && !sent[i] {
				sent[i] = true
				fresh = append(fresh, j.cells[i])
			}
		}
		j.mu.Unlock()

		for k := range fresh {
			cs := cellStatus(&fresh[k])
			if err := enc.Encode(StreamEvent{Type: "cell", Cell: &cs}); err != nil {
				return
			}
		}
		if state == StateDone || state == StateFailed || state == StateCanceled {
			enc.Encode(StreamEvent{Type: "end", State: state, Error: jerr}) //nolint:errcheck
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves one cell's recorded decision trace as NDJSON (header
// line, one line per event, summary line — decision.Trace.WriteNDJSON's
// format). The cell is selected with ?cell=KEY; a single-cell job needs no
// parameter.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	key := r.URL.Query().Get("cell")

	j.mu.Lock()
	traceLevel := j.traceLevel
	var c *jobCell
	switch {
	case key != "":
		for i := range j.cells {
			if j.cells[i].key == key {
				c = &j.cells[i]
				break
			}
		}
	case len(j.cells) == 1:
		c = &j.cells[0]
	}
	var (
		done bool
		tr   *decision.Trace
	)
	if c != nil {
		done, tr = c.done, c.trace
	}
	j.mu.Unlock()

	switch {
	case traceLevel <= 0:
		writeError(w, http.StatusNotFound, "job %s was not submitted with trace_level > 0", j.id)
	case c == nil && key == "":
		writeError(w, http.StatusBadRequest, "job %s has several cells; select one with ?cell=KEY", j.id)
	case c == nil:
		writeError(w, http.StatusNotFound, "job %s has no cell %q", j.id, key)
	case !done:
		writeError(w, http.StatusConflict, "cell %q has not resolved yet", key)
	case tr == nil:
		writeError(w, http.StatusNotFound, "cell %q recorded no trace (simulation failed?)", key)
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteNDJSON(w) //nolint:errcheck // client went away; nothing to do
	}
}

// handleTenants reports tenant quotas and usage (never keys) — the same
// shape the coordinator's control plane serves, so `visasimctl tenants`
// works against either. An untenanted daemon answers an empty list.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	if s.adm == nil {
		writeJSON(w, http.StatusOK, []cluster.TenantStatus{})
		return
	}
	writeJSON(w, http.StatusOK, s.adm.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s.met.root.String()) //nolint:errcheck
}

// handleMetricsProm renders the same counters (plus latency histograms,
// which expvar cannot express) in Prometheus text exposition format 0.0.4.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	// Occupancy gauges are synced on cell resolution; refresh at scrape
	// time too so an idle daemon still reports current cache/store sizes.
	s.syncCacheGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.prom.WritePrometheus(w) //nolint:errcheck // scraper went away; nothing to do
}
