package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/harness"
)

// tenantRegistry is the one-tenant registry the admission tests share:
// effectively unlimited rate, but at most two cells outstanding.
func tenantRegistry(t *testing.T) *cluster.Registry {
	t.Helper()
	reg, err := cluster.NewRegistry([]cluster.Tenant{
		{ID: "papers", Key: "pk", RatePerSec: 100000, MaxQueued: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// postSweep submits raw, with arbitrary headers, and returns the response —
// unlike the submit helper it does not require a 202.
func postSweep(t *testing.T, url string, req SubmitRequest, headers map[string]string) *http.Response {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/sweeps", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func sweepOf(n int, budgetOffset uint64) SubmitRequest {
	var req SubmitRequest
	for i := 0; i < n; i++ {
		cfg := testCfg("gcc", core.SchemeBase)
		cfg.MaxInstructions = testBudget + budgetOffset + uint64(i)
		req.Cells = append(req.Cells, SubmitCell{
			Key: fmt.Sprintf("cell-%d-%d", budgetOffset, i), Config: cfg})
	}
	return req
}

// TestTenantAdmission exercises the daemon-side gate end to end: missing and
// wrong keys answer 401, an over-quota submission answers 429 with both
// retry hints, an in-quota one runs, and retiring the job releases the quota
// so the tenant can submit again.
func TestTenantAdmission(t *testing.T) {
	_, ts := newTestServer(t, Options{Tenants: tenantRegistry(t)})
	auth := map[string]string{cluster.KeyHeader: "pk"}

	if resp := postSweep(t, ts.URL, sweepOf(1, 0), nil); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless submit: HTTP %d, want 401", resp.StatusCode)
	}
	if resp := postSweep(t, ts.URL, sweepOf(1, 0),
		map[string]string{cluster.KeyHeader: "wrong"}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-key submit: HTTP %d, want 401", resp.StatusCode)
	}

	// Three cells can never fit a two-cell quota, whatever the timing.
	resp := postSweep(t, ts.URL, sweepOf(3, 100), auth)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer second count", ra)
	}
	if resp.Header.Get(cluster.RetryAfterMsHeader) == "" {
		t.Errorf("429 without %s", cluster.RetryAfterMsHeader)
	}

	// Two in-quota sweeps back to back: the second is admitted only because
	// the first job's retirement released its cells.
	for round := uint64(0); round < 2; round++ {
		resp := postSweep(t, ts.URL, sweepOf(2, 200+100*round), auth)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d: HTTP %d, want 202", round, resp.StatusCode)
		}
		var ack SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		if st := waitJob(t, ts, ack.ID); st.State != StateDone {
			t.Fatalf("round %d: job state %s", round, st.State)
		}
	}

	var tenants []cluster.TenantStatus
	tresp, err := http.Get(ts.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if err := json.NewDecoder(tresp.Body).Decode(&tenants); err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 1 || tenants[0].ID != "papers" ||
		tenants[0].Admitted != 4 || tenants[0].Rejected != 3 || tenants[0].Queued != 0 {
		t.Fatalf("tenants = %+v, want papers admitted 4, rejected 3, queued 0", tenants)
	}

	promResp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	var prom bytes.Buffer
	if _, err := prom.ReadFrom(promResp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`visasimd_tenant_admitted_cells_total{tenant="papers"} 4`,
		`visasimd_tenant_rejected_cells_total{tenant="papers"} 3`,
		`visasimd_admission_rejected_jobs_total 3`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

// TestClientBacksOffOn429 pins the client side of the contract: a throttled
// submit is retried after the server's millisecond hint instead of failing,
// and the tenant's sweep completes once the quota frees.
func TestClientBacksOffOn429(t *testing.T) {
	s, _ := newTestServer(t, Options{Tenants: tenantRegistry(t)})

	// Front the real daemon with a throttle that bounces the first two
	// submissions the way the admission gate would, hint included.
	var throttled atomic.Int64
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/sweeps" && throttled.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set(cluster.RetryAfterMsHeader, "30")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(errorResponse{Error: "tenant papers over quota"}) //nolint:errcheck
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(front.Close)

	cells := []harness.Cell{
		{Key: "gcc", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "mcf", Cfg: testCfg("mcf", core.SchemeVISA)},
	}
	cl := &Client{BaseURL: front.URL, APIKey: "pk", PollInterval: 2 * time.Millisecond,
		Timeout: 2 * time.Minute}
	t0 := time.Now()
	got, err := cl.Run(cells, harness.Options{})
	if err != nil {
		t.Fatalf("Run after throttling: %v", err)
	}
	if elapsed := time.Since(t0); elapsed < 60*time.Millisecond {
		t.Errorf("Run returned in %v; two 30ms backoffs should take at least 60ms", elapsed)
	}
	if n := throttled.Load(); n != 3 {
		t.Errorf("submit attempts = %d, want 3 (two throttled, one admitted)", n)
	}
	want, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for key := range want {
		gj, err := json.Marshal(got[key])
		if err != nil {
			t.Fatal(err)
		}
		wj, err := json.Marshal(want[key])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj, wj) {
			t.Errorf("cell %s: served result differs from local run", key)
		}
	}

	// A disabled-backoff client surfaces the 429 immediately.
	throttled.Store(0)
	cl2 := &Client{BaseURL: front.URL, APIKey: "pk", Retry429: -1}
	_, err = cl2.Run(cells[:1], harness.Options{})
	var he *HTTPError
	if !errors.As(err, &he) || he.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("Retry429=-1 error = %v, want an HTTP 429", err)
	}
	if he.RetryAfter != 30*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 30ms from the millisecond header", he.RetryAfter)
	}
}
