package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
)

// testBudget keeps simulations fast; profiles are cached process-wide, so
// reusing benchmarks across tests costs little.
const testBudget = 6000

func testCfg(bench string, scheme core.Scheme) core.Config {
	return core.Config{
		Benchmarks:      []string{bench},
		Scheme:          scheme,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: testBudget,
	}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := newHTTPServer(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s, ts
}

// newHTTPServer mounts an existing Server on an httptest listener without
// tying the Server's lifetime to the test (the warm-restart test shuts the
// first Server down itself, mid-test).
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func submit(t *testing.T, ts *httptest.Server, req SubmitRequest) SubmitResponse {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var ack SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

func waitJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := getJob(t, ts, id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job %s: HTTP %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getMetrics(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubmitAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ack := submit(t, ts, SubmitRequest{Cells: []SubmitCell{
		{Key: "gcc-base", Config: testCfg("gcc", core.SchemeBase)},
	}})
	if ack.Cells != 1 || ack.ID == "" {
		t.Fatalf("bad ack %+v", ack)
	}
	st := waitJob(t, ts, ack.ID)
	if st.State != StateDone {
		t.Fatalf("job state %s, want done (error %q)", st.State, st.Error)
	}
	if len(st.Cells) != 1 {
		t.Fatalf("got %d cells", len(st.Cells))
	}
	c := st.Cells[0]
	if c.Key != "gcc-base" || !c.Done || c.Error != "" || len(c.Result) == 0 {
		t.Fatalf("bad cell %+v", c)
	}
	var res core.Result
	if err := json.Unmarshal(c.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.TotalCommits() < testBudget {
		t.Fatalf("implausible result: cycles=%d commits=%d", res.Cycles, res.TotalCommits())
	}
	if c.Stats.Cycles != res.Cycles {
		t.Fatalf("stats cycles %d != result cycles %d", c.Stats.Cycles, res.Cycles)
	}
}

// TestCachedResultByteIdentical is the acceptance check: the second
// submission of an identical cell is a cache hit whose Result JSON is
// byte-identical to both the first response and a fresh harness.Run.
func TestCachedResultByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := testCfg("mcf", core.SchemeVISA)

	first := waitJob(t, ts, submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "c", Config: cfg}}}).ID)
	second := waitJob(t, ts, submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "c", Config: cfg}}}).ID)
	if first.State != StateDone || second.State != StateDone {
		t.Fatalf("states %s/%s", first.State, second.State)
	}
	if first.Cells[0].CacheHit {
		t.Fatal("first submission claims a cache hit")
	}
	if !second.Cells[0].CacheHit || second.CacheHits != 1 {
		t.Fatalf("second submission not served from cache: %+v", second.Cells[0])
	}
	if !bytes.Equal(first.Cells[0].Result, second.Cells[0].Result) {
		t.Fatal("cached Result JSON differs from the original run")
	}

	fresh, err := harness.Run([]harness.Cell{{Key: "c", Cfg: cfg}}, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	freshJSON, err := json.Marshal(fresh["c"])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Cells[0].Result, freshJSON) {
		t.Fatal("cached Result JSON differs from a fresh harness.Run of the same config")
	}

	m := getMetrics(t, ts)
	if hits, _ := m["cache_hits"].(float64); hits < 1 {
		t.Fatalf("/metrics cache_hits = %v, want >= 1", m["cache_hits"])
	}
	if ratio, _ := m["cache_hit_ratio"].(float64); ratio <= 0 {
		t.Fatalf("/metrics cache_hit_ratio = %v, want > 0", m["cache_hit_ratio"])
	}
}

// TestNoWarmupParity guards the canonicalization fix for Warmup<0: a
// submitted no-warmup cell must simulate without warmup (not silently pick
// up the default when core.Run re-applies defaults to the canonical form),
// so the daemon's Result is byte-identical to a local harness.Run of the
// same config.
func TestNoWarmupParity(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg := testCfg("gcc", core.SchemeBase)
	cfg.Warmup = -1

	st := waitJob(t, ts, submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "nowarm", Config: cfg}}}).ID)
	if st.State != StateDone {
		t.Fatalf("job state %s (error %q)", st.State, st.Error)
	}

	local, err := harness.Run([]harness.Cell{{Key: "nowarm", Cfg: cfg}}, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local["nowarm"])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Cells[0].Result, localJSON) {
		t.Fatal("daemon Result for a no-warmup cell differs from a local harness.Run")
	}

	// Guard against the test passing vacuously: disabling warmup must
	// actually change the simulation relative to the default-warmup config.
	withWarmup, err := harness.Run([]harness.Cell{{Key: "warm", Cfg: testCfg("gcc", core.SchemeBase)}}, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if local["nowarm"].Cycles == withWarmup["warm"].Cycles {
		t.Fatal("no-warmup run matches default-warmup cycle count; warmup was not disabled")
	}
}

// TestSingleFlight pins the de-duplication guarantee: many concurrent
// identical submissions trigger exactly one simulation. Run under -race via
// the tier-1 race target.
func TestSingleFlight(t *testing.T) {
	const n = 8
	_, ts := newTestServer(t, Options{JobWorkers: 4})
	cfg := testCfg("bzip2", core.SchemeVISAOpt2)

	var wg sync.WaitGroup
	acks := make([]SubmitResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acks[i] = submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "same", Config: cfg}}})
		}(i)
	}
	wg.Wait()

	var want []byte
	for i := 0; i < n; i++ {
		st := waitJob(t, ts, acks[i].ID)
		if st.State != StateDone {
			t.Fatalf("job %s state %s (%s)", acks[i].ID, st.State, st.Error)
		}
		if want == nil {
			want = st.Cells[0].Result
		} else if !bytes.Equal(want, st.Cells[0].Result) {
			t.Fatalf("job %s returned a different Result", acks[i].ID)
		}
	}

	m := getMetrics(t, ts)
	if sims, _ := m["sims_run"].(float64); sims != 1 {
		t.Fatalf("%d concurrent identical submissions ran %v simulations, want exactly 1", n, m["sims_run"])
	}
	if total, _ := m["cells_total"].(float64); total != n {
		t.Fatalf("cells_total = %v, want %d", m["cells_total"], n)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"cells": [`},
		{"no cells", `{"cells": []}`},
		{"unknown benchmark", `{"cells":[{"config":{"Benchmarks":["nonesuch"]}}]}`},
		{"no benchmarks", `{"cells":[{"config":{}}]}`},
		{"dvm without target", `{"cells":[{"config":{"Benchmarks":["gcc"],"Scheme":5}}]}`},
		{"duplicate keys", `{"cells":[{"key":"x","config":{"Benchmarks":["gcc"]}},{"key":"x","config":{"Benchmarks":["mcf"]}}]}`},
		{"bad machine", `{"cells":[{"config":{"Benchmarks":["gcc"],"Machine":{"IQSize":-1}}}]}`},
	}
	for _, tc := range cases {
		resp := post(tc.body)
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400 (error %q)", tc.name, resp.StatusCode, er.Error)
		} else if er.Error == "" {
			t.Errorf("%s: 400 without an error body", tc.name)
		}
	}
}

// TestJobHistoryEviction checks the terminal-job cap: with JobHistory 1,
// finishing a second job evicts the first (its ID 404s) while the newest
// terminal job stays pollable and the result cache keeps both results.
func TestJobHistoryEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{JobHistory: 1})
	first := submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "a", Config: testCfg("gcc", core.SchemeBase)}}})
	waitJob(t, ts, first.ID)
	second := submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "b", Config: testCfg("gcc", core.SchemeVISA)}}})
	waitJob(t, ts, second.ID)

	// Retirement runs just after the terminal state becomes visible, so
	// poll briefly for the eviction.
	deadline := time.Now().Add(time.Minute)
	for s.lookup(first.ID) != nil {
		if time.Now().After(deadline) {
			t.Fatal("first job was never evicted")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job: HTTP %d, want 404", resp.StatusCode)
	}
	if st := getJob(t, ts, second.ID); st.State != StateDone {
		t.Fatalf("newest job state %s, want done", st.State)
	}
	if n := s.cache.size(); n != 2 {
		t.Fatalf("result cache has %d entries after eviction, want 2", n)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ack := submit(t, ts, SubmitRequest{Cells: []SubmitCell{
		{Key: "a", Config: testCfg("gcc", core.SchemeBase)},
		{Key: "b", Config: testCfg("gcc", core.SchemeVISA)},
	}})
	resp, err := http.Get(ts.URL + ack.Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var cells, ends int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		switch ev.Type {
		case "cell":
			cells++
			if ev.Cell == nil || !ev.Cell.Done {
				t.Fatalf("cell event without a resolved cell: %+v", ev)
			}
		case "end":
			ends++
			if ev.State != StateDone {
				t.Fatalf("end state %s", ev.State)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cells != 2 || ends != 1 {
		t.Fatalf("stream delivered %d cell events and %d end events", cells, ends)
	}
}

// TestShutdown pins the graceful-shutdown contract: the in-flight job
// finishes, the queued job is canceled cleanly, and new submissions are
// rejected with 503. To make the race-free ordering testable, the test
// claims the in-flight cell's cache entry first (becoming its single-flight
// leader), so the job blocks as a follower until the test releases it —
// the job is deterministically "in flight" across the shutdown.
func TestShutdown(t *testing.T) {
	// One job worker so the second job is necessarily queued behind the
	// first.
	s, ts := newTestServer(t, Options{JobWorkers: 1})
	gated := testCfg("eon", core.SchemeBase)
	canon, err := gated.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := canon.Hash()
	if err != nil {
		t.Fatal(err)
	}
	entry, leader := s.cache.claim(hash)
	if !leader {
		t.Fatal("test could not claim the gate entry")
	}

	inflight := submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "inflight", Config: gated}}})
	queued := submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: "queued", Config: testCfg("vpr", core.SchemeBase)}}})

	deadline := time.Now().Add(time.Minute)
	for getJob(t, ts, inflight.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Shutdown blocks on the gated in-flight job; run it in the
	// background and wait until it has flipped the server to closed
	// (healthz 503) before releasing the gate.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Release the in-flight job with a real result for its config.
	res, stats, err := harness.RunStats([]harness.Cell{{Key: hash, Cfg: canon}}, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.cache.fill(entry, res[hash], stats[hash])
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if st := getJob(t, ts, inflight.ID); st.State != StateDone {
		t.Fatalf("in-flight job ended %s, want done (error %q)", st.State, st.Error)
	}
	if st := getJob(t, ts, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job ended %s, want canceled", st.State)
	}

	blob, _ := json.Marshal(SubmitRequest{Cells: []SubmitCell{{Config: testCfg("gcc", core.SchemeBase)}}})
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit: HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestFailedCellFailsJob exercises the run-path failure handling. Submit
// validation is a superset of the run-time checks, so a failing cell cannot
// be provoked through the HTTP API; inject a job with an unknown benchmark
// directly into the queue instead.
func TestFailedCellFailsJob(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	j := &job{
		id:    "job-injected",
		state: StateQueued,
		cells: []jobCell{{
			key:  "doomed",
			hash: "deadbeefdeadbeef",
			cfg:  core.Config{Benchmarks: []string{"nonesuch"}, MaxInstructions: 1000},
		}},
		changed: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.mu.Unlock()
	s.met.jobsQueued.Add(1)
	s.queue <- j

	deadline := time.Now().Add(time.Minute)
	for {
		st := s.snapshot(j)
		if st.State == StateFailed {
			c := st.Cells[0]
			if c.Error == "" || !strings.Contains(c.Error, "nonesuch") || c.Result != nil {
				t.Fatalf("failed cell %+v", c)
			}
			break
		}
		if st.State == StateDone || time.Now().After(deadline) {
			t.Fatalf("job ended %s, want failed", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Failed entries are evicted so the address can retry later.
	if n := s.cache.size(); n != 0 {
		t.Fatalf("failed entry stayed cached (%d entries)", n)
	}
}
