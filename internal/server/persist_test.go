package server

import (
	"bytes"
	"context"
	"testing"
	"time"

	"visasim/internal/core"
	"visasim/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreWarmRestart extends TestCachedResultByteIdentical across a
// daemon restart: a second daemon sharing the first one's store directory
// serves the whole sweep from disk — zero fresh simulations — with Result
// JSON byte-identical to the first daemon's responses.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	req := SubmitRequest{Cells: []SubmitCell{
		{Key: "base", Config: testCfg("gcc", core.SchemeBase)},
		{Key: "visa", Config: testCfg("gcc", core.SchemeVISA)},
	}}

	// First life: simulate fresh, write through to disk.
	s1 := New(Options{Store: openStore(t, dir)})
	ts1 := newHTTPServer(t, s1)
	first := waitJob(t, ts1, submit(t, ts1, req).ID)
	if first.State != StateDone {
		t.Fatalf("first run state %s (%s)", first.State, first.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second life: fresh process state, same directory.
	s2 := New(Options{Store: openStore(t, dir)})
	ts2 := newHTTPServer(t, s2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s2.Shutdown(ctx) //nolint:errcheck
	}()
	second := waitJob(t, ts2, submit(t, ts2, req).ID)
	if second.State != StateDone {
		t.Fatalf("second run state %s (%s)", second.State, second.Error)
	}

	for i := range second.Cells {
		c := second.Cells[i]
		if !c.CacheHit {
			t.Fatalf("cell %s re-simulated after restart", c.Key)
		}
		if !bytes.Equal(c.Result, first.Cells[i].Result) {
			t.Fatalf("cell %s Result differs across restart", c.Key)
		}
	}
	m := getMetrics(t, ts2)
	if sims, _ := m["sims_run"].(float64); sims != 0 {
		t.Fatalf("restarted daemon ran %v simulations, want 0", m["sims_run"])
	}
	if hits, _ := m["store_hits"].(float64); hits != float64(len(req.Cells)) {
		t.Fatalf("store_hits = %v, want %d", m["store_hits"], len(req.Cells))
	}
}

// TestCacheEvictionBound pins the in-memory LRU cap: with CacheEntries 1
// and no store, a third distinct cell evicts the oldest resolved entry, so
// resubmitting it re-simulates — deterministically byte-identical.
func TestCacheEvictionBound(t *testing.T) {
	s, ts := newTestServer(t, Options{CacheEntries: 1})
	cfgA := testCfg("gcc", core.SchemeBase)
	cfgB := testCfg("gcc", core.SchemeVISA)

	runOne := func(key string, cfg core.Config) CellStatus {
		st := waitJob(t, ts, submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: key, Config: cfg}}}).ID)
		if st.State != StateDone {
			t.Fatalf("job for %s ended %s (%s)", key, st.State, st.Error)
		}
		return st.Cells[0]
	}

	firstA := runOne("a", cfgA)
	runOne("b", cfgB) // evicts A from the bounded memory tier
	if got := s.cache.resolvedLen(); got != 1 {
		t.Fatalf("resolved entries resident = %d, want 1", got)
	}
	if ev := s.cache.evicted(); ev < 1 {
		t.Fatalf("evictions = %d, want >= 1", ev)
	}

	secondA := runOne("a2", cfgA)
	if secondA.CacheHit {
		t.Fatal("evicted cell still reported a cache hit")
	}
	if !bytes.Equal(firstA.Result, secondA.Result) {
		t.Fatal("re-simulated Result differs from the evicted one")
	}
	m := getMetrics(t, ts)
	if sims, _ := m["sims_run"].(float64); sims != 3 {
		t.Fatalf("sims_run = %v, want 3 (A, B, A-again)", m["sims_run"])
	}
}

// TestCacheEvictionFallsBackToStore is the two-tier interaction: an entry
// evicted from the bounded memory tier is re-served from the durable store
// without re-simulating.
func TestCacheEvictionFallsBackToStore(t *testing.T) {
	s := New(Options{CacheEntries: 1, Store: openStore(t, t.TempDir())})
	ts := newHTTPServer(t, s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})

	runOne := func(key string, cfg core.Config) CellStatus {
		st := waitJob(t, ts, submit(t, ts, SubmitRequest{Cells: []SubmitCell{{Key: key, Config: cfg}}}).ID)
		if st.State != StateDone {
			t.Fatalf("job for %s ended %s (%s)", key, st.State, st.Error)
		}
		return st.Cells[0]
	}
	first := runOne("a", testCfg("gcc", core.SchemeBase))
	runOne("b", testCfg("gcc", core.SchemeVISA)) // evicts A from memory
	again := runOne("a2", testCfg("gcc", core.SchemeBase))

	if !again.CacheHit {
		t.Fatal("store-backed re-serve not reported as a hit")
	}
	if !bytes.Equal(first.Result, again.Result) {
		t.Fatal("store-served Result differs from the original")
	}
	m := getMetrics(t, ts)
	if sims, _ := m["sims_run"].(float64); sims != 2 {
		t.Fatalf("sims_run = %v, want 2", m["sims_run"])
	}
	if hits, _ := m["store_hits"].(float64); hits != 1 {
		t.Fatalf("store_hits = %v, want 1", m["store_hits"])
	}
}
