package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/harness"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	_, ts := newTestServer(t, Options{})
	return &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond}
}

// TestClientMatchesLocalRun proves the client is a drop-in harness.Run
// replacement: same keys, and results that decode to the same numbers a
// local run produces.
func TestClientMatchesLocalRun(t *testing.T) {
	cli := newTestClient(t)
	cells := []harness.Cell{
		{Key: "base", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "visa", Cfg: testCfg("gcc", core.SchemeVISA)},
	}

	remote, remoteStats, err := cli.RunStats(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 2 || len(remoteStats) != 2 {
		t.Fatalf("remote returned %d results, %d stats", len(remote), len(remoteStats))
	}
	for key := range local {
		r, l := remote[key], local[key]
		if r == nil {
			t.Fatalf("cell %s missing from remote results", key)
		}
		if r.Cycles != l.Cycles || r.IQAVF != l.IQAVF || r.ThroughputIPC != l.ThroughputIPC {
			t.Fatalf("cell %s differs remote vs local: %d/%d cycles, %v/%v IQAVF",
				key, r.Cycles, l.Cycles, r.IQAVF, l.IQAVF)
		}
		if r.TotalCommits() != l.TotalCommits() {
			t.Fatalf("cell %s commits differ", key)
		}
	}
	// The histogram must survive the HTTP round trip (derived totals, no
	// private state): MeanLen is computed from it on the client side.
	for key := range local {
		if got, want := remote[key].RQHist.MeanLen(), local[key].RQHist.MeanLen(); got != want {
			t.Fatalf("cell %s RQHist.MeanLen %v != %v after round trip", key, got, want)
		}
	}
}

func TestClientSubmitErrors(t *testing.T) {
	cli := newTestClient(t)
	_, err := cli.Run([]harness.Cell{{Key: "bad", Cfg: core.Config{Benchmarks: []string{"nonesuch"}}}}, harness.Options{})
	if err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("bad config error not surfaced: %v", err)
	}
	if _, err := cli.Job(context.Background(), "no-such-job"); err == nil {
		t.Fatal("missing job did not error")
	}
	empty, err := cli.Run(nil, harness.Options{})
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v %v", empty, err)
	}
}

// TestWaitDeadline pins that a daemon which never finishes a job cannot
// hang the client: Wait honours its context and Client.Timeout bounds a
// whole RunStats call. A stub server stands in for the wedged daemon.
func TestWaitDeadline(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: "job-1", Cells: 1})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, JobStatus{ID: "job-1", State: StateRunning})
	})
	stub := httptest.NewServer(mux)
	defer stub.Close()

	cli := &Client{BaseURL: stub.URL, PollInterval: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cli.Wait(ctx, "job-1"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait on a never-terminal job returned %v, want deadline exceeded", err)
	}

	cli.Timeout = 50 * time.Millisecond
	cells := []harness.Cell{{Key: "c", Cfg: testCfg("gcc", core.SchemeBase)}}
	if _, _, err := cli.RunStats(cells, harness.Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunStats with Timeout returned %v, want deadline exceeded", err)
	}
}

// TestParseRetryAfter covers both RFC 7231 Retry-After forms plus the
// clamping rules: delta-seconds, an HTTP-date (future, past, and garbage),
// and hints so large that naive multiplication would overflow a Duration.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		name  string
		value string
		min   time.Duration
		max   time.Duration
	}{
		{"delta seconds", "7", 7 * time.Second, 7 * time.Second},
		{"zero seconds", "0", 0, 0},
		{"negative seconds", "-3", 0, 0},
		{"overflowing seconds", "99999999999999", maxRetryAfter, maxRetryAfter},
		{"http-date future", time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat), 8 * time.Second, 10 * time.Second},
		{"http-date past", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat), 0, 0},
		{"http-date far future", time.Now().Add(400 * 24 * time.Hour).UTC().Format(http.TimeFormat), maxRetryAfter, maxRetryAfter},
		{"garbage", "soon", 0, 0},
		{"empty", "", 0, 0},
	}
	for _, tc := range cases {
		got := parseRetryAfter(tc.value)
		if got < tc.min || got > tc.max {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want in [%v, %v]", tc.name, tc.value, got, tc.min, tc.max)
		}
	}
}

// TestDecodeErrorRetryAfterDate pins the header plumbing end to end: a 429
// carrying only an HTTP-date Retry-After (no millisecond header) must still
// yield a usable positive back-off hint, and an absurd millisecond hint is
// clamped rather than trusted.
func TestDecodeErrorRetryAfterDate(t *testing.T) {
	resp := &http.Response{
		StatusCode: http.StatusTooManyRequests,
		Header:     http.Header{},
		Body:       http.NoBody,
	}
	resp.Header.Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
	var he *HTTPError
	if !errors.As(decodeError(resp), &he) {
		t.Fatal("decodeError did not return an *HTTPError")
	}
	if he.RetryAfter <= 25*time.Second || he.RetryAfter > 30*time.Second {
		t.Errorf("RetryAfter from HTTP-date = %v, want ~30s", he.RetryAfter)
	}

	resp.Body = http.NoBody
	resp.Header.Set(cluster.RetryAfterMsHeader, "999999999999999999")
	if !errors.As(decodeError(resp), &he) {
		t.Fatal("decodeError did not return an *HTTPError")
	}
	if he.RetryAfter != maxRetryAfter {
		t.Errorf("RetryAfter from overflowing ms header = %v, want clamp to %v", he.RetryAfter, maxRetryAfter)
	}
}
