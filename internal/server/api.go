package server

import (
	"encoding/json"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// SubmitCell is one sweep cell in a submission: a key naming the cell in
// the job's result set plus the full simulation configuration (the same
// core.Config shape cmd/visasim's -config machinery and the harness use).
type SubmitCell struct {
	// Key names the cell within the job; it must be unique in the
	// submission. When empty, the cell's content hash is used.
	Key string `json:"key,omitempty"`
	// Config describes the simulation. Defaults are filled in exactly as
	// core.Run fills them, so a partial configuration is fine.
	Config core.Config `json:"config"`
}

// SubmitRequest is the body of POST /v1/sweeps.
type SubmitRequest struct {
	Cells []SubmitCell `json:"cells"`
	// TraceLevel, when > 0, records a decision trace for every cell (1 =
	// decision edges, 2 adds per-sample observations), downloadable from
	// /v1/jobs/{id}/trace?cell=KEY as NDJSON. Traced cells always simulate
	// freshly — they bypass the result cache in both directions — because a
	// cached result has no trace to serve; results are byte-identical
	// either way (tracing is observation only and is not part of the
	// cell's content address).
	TraceLevel int `json:"trace_level,omitempty"`
}

// SubmitResponse acknowledges an accepted sweep.
type SubmitResponse struct {
	// ID identifies the job for polling.
	ID string `json:"id"`
	// Sweep is the correlation ID the job runs under: the submission's
	// obs.SweepHeader value when present and valid, otherwise minted at
	// accept. Grep it across client, daemon and coordinator logs.
	Sweep string `json:"sweep,omitempty"`
	// Cells echoes the number of accepted cells.
	Cells int `json:"cells"`
	// Job is the poll URL for the job ("/v1/jobs/{id}").
	Job string `json:"job"`
	// Stream is the NDJSON event-stream URL ("/v1/jobs/{id}/stream").
	Stream string `json:"stream"`
}

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// CellStatus is one cell's progress within a job.
type CellStatus struct {
	Key string `json:"key"`
	// Hash is the cell's content address: core.Config.Hash() of the
	// canonical configuration, which is also its result-cache key.
	Hash string `json:"hash"`
	// Done reports whether the cell has resolved (result or error).
	Done bool `json:"done"`
	// CacheHit reports that the result came from the cache or was shared
	// with a concurrent identical cell rather than freshly simulated.
	CacheHit bool `json:"cache_hit"`
	// Result is the simulation outcome (exactly core.Result's JSON).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the simulation error, when the cell failed.
	Error string `json:"error,omitempty"`
	// Stats is the simulator cost of the run that produced the result;
	// for cache hits it echoes the original run's cost.
	Stats harness.CellStats `json:"stats"`
	// HasTrace reports that a decision trace was recorded for the cell
	// (submissions with trace_level > 0); download it from
	// /v1/jobs/{id}/trace?cell=KEY.
	HasTrace bool `json:"has_trace,omitempty"`
}

// JobStatus is the body of GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string       `json:"id"`
	State string       `json:"state"`
	Cells []CellStatus `json:"cells"`
	// CacheHits counts resolved cells served without a fresh simulation.
	CacheHits int `json:"cache_hits"`
	// Error is set when the whole job failed or was canceled.
	Error string `json:"error,omitempty"`
}

// StreamEvent is one NDJSON line of GET /v1/jobs/{id}/stream: a "cell"
// event per resolved cell as it resolves, then a final "end" event carrying
// the job's terminal state.
type StreamEvent struct {
	Type string `json:"type"` // "cell" or "end"
	// Cell is set on "cell" events.
	Cell *CellStatus `json:"cell,omitempty"`
	// State is set on the final "end" event.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
