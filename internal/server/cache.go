package server

import (
	"sync"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// cacheEntry is one content-addressed result slot. The fields behind done
// are written exactly once, before done is closed; readers wait on done, so
// the channel close is the publication barrier.
type cacheEntry struct {
	done  chan struct{}
	res   *core.Result
	stats harness.CellStats
	err   error
}

// resolved reports whether the entry has been filled (without blocking).
func (e *cacheEntry) resolved() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// resultCache is the content-addressed result store with single-flight
// semantics: the first claimant of a hash becomes the leader and runs the
// simulation; everyone else waits on the same entry. Determinism makes this
// sound — a config hash fully determines the Result, so sharing one run is
// indistinguishable from running again (see DESIGN.md §7).
//
// Successful results are kept forever (the working sets are experiment
// sweeps, bounded by the config space callers explore); failed entries are
// evicted so a transient failure does not poison the address.
type resultCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

func newResultCache() *resultCache {
	return &resultCache{entries: map[string]*cacheEntry{}}
}

// claim returns the entry for hash and whether the caller is its leader.
// A leader must eventually call fill or fail, or followers block forever.
func (c *resultCache) claim(hash string) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		return e, false
	}
	e = &cacheEntry{done: make(chan struct{})}
	c.entries[hash] = e
	return e, true
}

// fill publishes a successful result to the entry's waiters and future
// claimants.
func (c *resultCache) fill(e *cacheEntry, res *core.Result, stats harness.CellStats) {
	e.res = res
	e.stats = stats
	close(e.done)
}

// fail publishes an error to the entry's waiters and evicts the address so
// a later submission retries.
func (c *resultCache) fail(hash string, e *cacheEntry, err error) {
	c.mu.Lock()
	delete(c.entries, hash)
	c.mu.Unlock()
	e.err = err
	close(e.done)
}

// size returns the number of live entries (resolved or in flight).
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
