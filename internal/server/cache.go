package server

import (
	"container/list"
	"sync"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// cacheEntry is one content-addressed result slot. The fields behind done
// are written exactly once, before done is closed; readers wait on done, so
// the channel close is the publication barrier.
type cacheEntry struct {
	hash  string
	done  chan struct{}
	res   *core.Result
	stats harness.CellStats
	err   error

	// elem is the entry's LRU position, set under resultCache.mu when the
	// entry resolves successfully; nil while in flight (in-flight entries
	// are never evicted — their single-flight followers hold the pointer
	// and the leader must be able to publish to them).
	elem *list.Element
}

// resolved reports whether the entry has been filled (without blocking).
func (e *cacheEntry) resolved() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// resultCache is the in-memory content-addressed result tier with
// single-flight semantics: the first claimant of a hash becomes the leader
// and runs the simulation; everyone else waits on the same entry.
// Determinism makes this sound — a config hash fully determines the
// Result, so sharing one run is indistinguishable from running again (see
// DESIGN.md §7).
//
// Resolved entries are bounded by an LRU cap (maxResolved): beyond it the
// least-recently-claimed resolved entries are dropped, so a long-running
// daemon's memory is bounded regardless of how large a config space its
// clients explore. With a persistent store configured (DESIGN.md §8) an
// evicted address is re-served from disk; without one it re-simulates.
// Failed entries are always evicted so a transient failure does not poison
// the address.
type resultCache struct {
	mu        sync.Mutex
	max       int // resolved-entry cap; <= 0 means unbounded
	entries   map[string]*cacheEntry
	lru       *list.List // of *cacheEntry, front = most recently used
	evictions int64
}

func newResultCache(maxResolved int) *resultCache {
	return &resultCache{
		max:     maxResolved,
		entries: map[string]*cacheEntry{},
		lru:     list.New(),
	}
}

// claim returns the entry for hash and whether the caller is its leader.
// A leader must eventually call fill or fail, or followers block forever.
func (c *resultCache) claim(hash string) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	e = &cacheEntry{hash: hash, done: make(chan struct{})}
	c.entries[hash] = e
	return e, true
}

// fill publishes a successful result to the entry's waiters and future
// claimants, and enforces the resolved-entry cap.
func (c *resultCache) fill(e *cacheEntry, res *core.Result, stats harness.CellStats) {
	e.res = res
	e.stats = stats
	c.mu.Lock()
	// The entry may have been failed-and-reclaimed only for errors, never
	// for fills, so e is still the map's entry for its hash here.
	e.elem = c.lru.PushFront(e)
	for c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		victim := oldest.Value.(*cacheEntry)
		c.lru.Remove(oldest)
		delete(c.entries, victim.hash)
		victim.elem = nil
		c.evictions++
	}
	c.mu.Unlock()
	close(e.done)
}

// fail publishes an error to the entry's waiters and evicts the address so
// a later submission retries.
func (c *resultCache) fail(hash string, e *cacheEntry, err error) {
	c.mu.Lock()
	delete(c.entries, hash)
	c.mu.Unlock()
	e.err = err
	close(e.done)
}

// size returns the number of live entries (resolved or in flight).
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// resolvedLen returns how many resolved entries are resident (the number
// the LRU cap bounds).
func (c *resultCache) resolvedLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// evicted returns how many resolved entries the cap has dropped.
func (c *resultCache) evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
