package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// TestPromMetricsEndpoint exercises GET /metrics/prom end to end: run one
// job, scrape, and check the exposition is well formed — correct content
// type, counters reflecting the job, and at least one populated histogram
// (the format expvar cannot express, and the reason the endpoint exists).
func TestPromMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	ack := submit(t, ts, SubmitRequest{Cells: []SubmitCell{
		{Key: "a", Config: testCfg("gcc", core.SchemeBase)},
		{Key: "b", Config: testCfg("gcc", core.SchemeBase)}, // same hash: a cache share
	}})
	if ack.Sweep == "" {
		t.Fatal("submit ack carries no sweep correlation ID")
	}
	waitJob(t, ts, ack.ID)

	resp, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics/prom: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want Prometheus text 0.0.4", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(blob)

	for _, want := range []string{
		"# TYPE visasimd_jobs_done_total counter",
		"visasimd_jobs_done_total 1",
		"visasimd_cells_total 2",
		"visasimd_sims_run_total 1",
		"# TYPE visasimd_queue_wait_seconds histogram",
		"visasimd_queue_wait_seconds_bucket{le=\"+Inf\"} 1",
		"visasimd_queue_wait_seconds_count 1",
		"# TYPE visasimd_simulate_seconds histogram",
		"visasimd_simulate_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every sample line must parse as "name[{labels}] value" with no stray
	// output; a loose sanity pass over the whole body.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestClientHonorsCancellation pins the satellite fix: a canceled caller
// context aborts RunContext/RunStatsContext promptly even while the daemon
// reports the job forever-running, instead of polling to completion.
func TestClientHonorsCancellation(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: "job-1", Cells: 1})
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, JobStatus{ID: "job-1", State: StateRunning})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cli := &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()

	done := make(chan error, 1)
	go func() {
		_, _, err := cli.RunStatsContext(ctx, []harness.Cell{
			{Key: "x", Cfg: testCfg("gcc", core.SchemeBase)},
		}, harness.Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunStatsContext ignored cancellation (the pre-fix behaviour)")
	}
}

// TestClientTimeoutStillBounds checks the c.Timeout contract survived the
// context plumbing: even with a never-canceled context, Timeout ends the
// wait.
func TestClientTimeoutStillBounds(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: "job-1", Cells: 1})
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, JobStatus{ID: "job-1", State: StateRunning})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	cli := &Client{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond, Timeout: 50 * time.Millisecond}
	done := make(chan error, 1)
	go func() {
		_, _, err := cli.RunStats([]harness.Cell{
			{Key: "x", Cfg: testCfg("gcc", core.SchemeBase)},
		}, harness.Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("got %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Timeout no longer bounds RunStats")
	}
}
