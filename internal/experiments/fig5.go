package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/pipeline"
	"visasim/internal/report"
	"visasim/internal/workload"
)

// fig5Schemes are the proposed schemes, evaluated against SchemeBase.
var fig5Schemes = []core.Scheme{core.SchemeVISA, core.SchemeVISAOpt1, core.SchemeVISAOpt2}

// Fig5Result holds normalised IQ AVF and throughput IPC for VISA,
// VISA+opt1 and VISA+opt2 with ICOUNT fetch, averaged per workload
// category. Values are relative to the unmodified baseline (1.0).
type Fig5Result struct {
	// NormAVF[scheme][category], NormIPC[scheme][category]; schemes in
	// fig5Schemes order, categories in CPU/MIX/MEM order.
	NormAVF [3][3]float64
	NormIPC [3][3]float64
}

// Fig5 reproduces Figure 5.
func Fig5(p Params) (*Fig5Result, error) {
	schemes := append([]core.Scheme{core.SchemeBase}, fig5Schemes...)
	res, err := runMixes(p, schemes, []pipeline.FetchPolicyKind{pipeline.PolicyICOUNT})
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{}
	fillNormalized(res, pipeline.PolicyICOUNT, fig5Schemes, &out.NormAVF, &out.NormIPC)
	return out, nil
}

// fillNormalized computes per-category mean normalised AVF/IPC for schemes
// against SchemeBase under one fetch policy.
func fillNormalized(res map[string]*core.Result, pol pipeline.FetchPolicyKind,
	schemes []core.Scheme, avf, ipc *[3][3]float64) {
	for si, s := range schemes {
		a := categoryMean(func(mix workload.Mix) float64 {
			base := res[key(mix.Name, core.SchemeBase, pol)]
			r := res[key(mix.Name, s, pol)]
			if base.IQAVF == 0 {
				return 1
			}
			return r.IQAVF / base.IQAVF
		})
		i := categoryMean(func(mix workload.Mix) float64 {
			base := res[key(mix.Name, core.SchemeBase, pol)]
			r := res[key(mix.Name, s, pol)]
			if base.ThroughputIPC == 0 {
				return 1
			}
			return r.ThroughputIPC / base.ThroughputIPC
		})
		for ci := 0; ci < 3; ci++ {
			avf[si][ci] = a[ci]
			ipc[si][ci] = i[ci]
		}
	}
}

// AvgAVFReduction returns the mean IQ-AVF reduction of scheme si across
// categories (the paper reports 48% for VISA+opt2 under ICOUNT).
func (r *Fig5Result) AvgAVFReduction(si int) float64 {
	return 1 - (r.NormAVF[si][0]+r.NormAVF[si][1]+r.NormAVF[si][2])/3
}

// AvgIPCChange returns the mean relative IPC change of scheme si (the paper
// reports +1% for VISA+opt2).
func (r *Fig5Result) AvgIPCChange(si int) float64 {
	return (r.NormIPC[si][0]+r.NormIPC[si][1]+r.NormIPC[si][2])/3 - 1
}

func renderNormalized(title string, schemes []core.Scheme, avf, ipc *[3][3]float64) string {
	t := report.NewTable(title+" — normalised IQ AVF",
		"scheme", "CPU", "MIX", "MEM", "avg")
	for si, s := range schemes {
		avg := (avf[si][0] + avf[si][1] + avf[si][2]) / 3
		t.AddRowf(3, s.String(), avf[si][0], avf[si][1], avf[si][2], avg)
	}
	t2 := report.NewTable(title+" — normalised throughput IPC",
		"scheme", "CPU", "MIX", "MEM", "avg")
	for si, s := range schemes {
		avg := (ipc[si][0] + ipc[si][1] + ipc[si][2]) / 3
		t2.AddRowf(3, s.String(), ipc[si][0], ipc[si][1], ipc[si][2], avg)
	}
	return t.String() + "\n" + t2.String()
}

// String renders both panels of Figure 5.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString(renderNormalized("Figure 5 (ICOUNT)", fig5Schemes, &r.NormAVF, &r.NormIPC))
	fmt.Fprintf(&b, "\nVISA+opt2: average IQ AVF reduction %.0f%%, IPC change %+.1f%%\n",
		100*r.AvgAVFReduction(2), 100*r.AvgIPCChange(2))
	return b.String()
}
