package experiments

import (
	"visasim/internal/core"
	"visasim/internal/pipeline"
	"visasim/internal/report"
	"visasim/internal/workload"
)

// Structures profiled by Figure 1.
var fig1Structures = []string{"IQ", "ROB", "RF", "FU"}

// Fig1Result is the microarchitecture soft-error vulnerability profile:
// per-category AVF of the issue queue, reorder buffer, register file and
// function units on the baseline SMT machine (ICOUNT fetch).
type Fig1Result struct {
	// AVF[category][structure] in Table 3 category order and
	// fig1Structures order.
	AVF [3][4]float64
}

// Fig1 reproduces Figure 1.
func Fig1(p Params) (*Fig1Result, error) {
	res, err := runMixes(p, []core.Scheme{core.SchemeBase}, []pipeline.FetchPolicyKind{pipeline.PolicyICOUNT})
	if err != nil {
		return nil, err
	}
	out := &Fig1Result{}
	for si, get := range []func(*core.Result) float64{
		func(r *core.Result) float64 { return r.IQAVF },
		func(r *core.Result) float64 { return r.ROBAVF },
		func(r *core.Result) float64 { return r.RFAVF },
		func(r *core.Result) float64 { return r.FUAVF },
	} {
		m := categoryMean(func(mix workload.Mix) float64 {
			return get(res[key(mix.Name, core.SchemeBase, pipeline.PolicyICOUNT)])
		})
		for ci := range m {
			out.AVF[ci][si] = m[ci]
		}
	}
	return out, nil
}

// MaxStructure returns the structure with the highest AVF in every
// category, or "" if categories disagree — the paper's headline claim is
// that the IQ is the reliability hot-spot everywhere.
func (r *Fig1Result) MaxStructure() string {
	winner := ""
	for ci := range r.AVF {
		best := 0
		for si := range r.AVF[ci] {
			if r.AVF[ci][si] > r.AVF[ci][best] {
				best = si
			}
		}
		if winner == "" {
			winner = fig1Structures[best]
		} else if winner != fig1Structures[best] {
			return ""
		}
	}
	return winner
}

// String renders the figure as a table with bars.
func (r *Fig1Result) String() string {
	t := report.NewTable("Figure 1: microarchitecture soft-error vulnerability profile (AVF %)",
		"structure", "CPU", "MIX", "MEM", "profile")
	for si, s := range fig1Structures {
		avg := (r.AVF[0][si] + r.AVF[1][si] + r.AVF[2][si]) / 3
		t.AddRow(s,
			report.Pct(r.AVF[0][si]),
			report.Pct(r.AVF[1][si]),
			report.Pct(r.AVF[2][si]),
			report.Bar(avg, 0.8, 32))
	}
	return t.String()
}
