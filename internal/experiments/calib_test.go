package experiments

import (
	"testing"

	"visasim/internal/core"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// TestCalibrationBaseline prints per-mix baseline characteristics used to
// tune workload profiles against the paper's taxonomy. Diagnostic.
func TestCalibrationBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	res, err := runMixes(Params{Budget: 120_000}, []core.Scheme{core.SchemeBase},
		[]pipeline.FetchPolicyKind{pipeline.PolicyICOUNT})
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range workload.Mixes() {
		r := res[key(mix.Name, core.SchemeBase, pipeline.PolicyICOUNT)]
		t.Logf("%-6s IPC=%.2f hIPC=%.2f IQAVF=%.3f maxAVF=%.3f occ=%.0f rql=%.1f l1d=%.3f l2mr=%.3f dtlb=%.3f br=%.3f l2miss/KI=%.1f",
			mix.Name, r.ThroughputIPC, r.HarmonicIPC, r.IQAVF, r.MaxIQAVF,
			r.MeanIQOccupancy, r.MeanReadyLen, r.L1DMissRate, r.L2MissRate,
			r.DTLBMissRate, r.MispredictRate,
			1000*float64(r.L2Misses)/float64(r.TotalCommits()))
	}
}

func mixBenchmarks(t *testing.T, name string) []string {
	for _, m := range workload.Mixes() {
		if m.Name == name {
			return m.Benchmarks[:]
		}
	}
	t.Fatalf("unknown mix %s", name)
	return nil
}
