package experiments

import (
	"fmt"
	"sync"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/pipeline"
	"visasim/internal/report"
	"visasim/internal/workload"
)

// Table1Result is the accuracy of PC-based ACE identification over
// committed instructions, per benchmark (the paper reports ~93% average,
// ranging 74.9%–99.9%), plus the squashed-inclusive average (~83%).
type Table1Result struct {
	Benchmarks []string
	Accuracy   []float64 // committed-only, aligned with Benchmarks
	ACEFrac    []float64
	Average    float64
	// SquashedInclusive is the average accuracy when squashed (wrong
	// path) instructions count as un-ACE ground truth, measured on the
	// Table 3 workloads.
	SquashedInclusive float64
}

// Table1 reproduces Table 1.
func Table1(p Params) (*Table1Result, error) {
	names := workload.Table1Benchmarks()
	out := &Table1Result{
		Benchmarks: names,
		Accuracy:   make([]float64, len(names)),
		ACEFrac:    make([]float64, len(names)),
	}
	// Per-benchmark single-thread profiling accuracy, in parallel.
	var wg sync.WaitGroup
	errs := make([]error, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			b, err := workload.Get(name)
			if err != nil {
				errs[i] = err
				return
			}
			prof, err := core.ProfileFor(b, p.budget(), ace.DefaultWindow)
			if err != nil {
				errs[i] = err
				return
			}
			out.Accuracy[i] = prof.Accuracy()
			out.ACEFrac[i] = prof.ACEFraction()
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, a := range out.Accuracy {
		out.Average += a
	}
	out.Average /= float64(len(out.Accuracy))

	// Squashed-inclusive accuracy from the baseline SMT runs.
	res, err := runMixes(p, []core.Scheme{core.SchemeBase}, []pipeline.FetchPolicyKind{pipeline.PolicyICOUNT})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, r := range res {
		out.SquashedInclusive += r.CombinedTagAccuracy()
		n++
	}
	out.SquashedInclusive /= float64(n)
	return out, nil
}

// String renders the table.
func (r *Table1Result) String() string {
	t := report.NewTable("Table 1: accuracy of using PC to identify ACE instructions (committed only)",
		"benchmark", "accuracy", "ACE fraction")
	for i, n := range r.Benchmarks {
		t.AddRow(n, report.Pct(r.Accuracy[i]), report.Pct(r.ACEFrac[i]))
	}
	t.AddRow("AVG", report.Pct(r.Average), "")
	return t.String() + fmt.Sprintf("\naverage accuracy incl. squashed instructions: %s\n",
		report.Pct(r.SquashedInclusive))
}

// Table2 renders the simulated machine configuration.
func Table2() string {
	return "Table 2: simulated machine configuration\n" + config.Default().String() + "\n"
}

// Table3 renders the studied SMT workloads.
func Table3() string {
	t := report.NewTable("Table 3: the studied SMT workloads",
		"type", "group", "benchmarks")
	for _, m := range workload.Mixes() {
		t.AddRow(m.Category.String(), m.Group,
			fmt.Sprintf("%s, %s, %s, %s", m.Benchmarks[0], m.Benchmarks[1], m.Benchmarks[2], m.Benchmarks[3]))
	}
	return t.String()
}
