package experiments

import (
	"fmt"
	"io"

	"visasim/internal/report"
)

// CSV emitters for the figure results, so plots can be regenerated outside
// Go. Each writes one flat table: categories and thresholds become columns
// rather than panels.

var catNames = [3]string{"CPU", "MIX", "MEM"}

// WriteCSV emits structure,category,avf rows.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for si, s := range fig1Structures {
		for ci, cat := range catNames {
			rows = append(rows, []string{s, cat, fmt.Sprintf("%.6f", r.AVF[ci][si])})
		}
	}
	return report.WriteCSV(w, []string{"structure", "category", "avf"}, rows)
}

// WriteCSV emits length,cycles_frac,ace_pct rows.
func (r *Fig2Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for l := 0; l <= r.MaxLen; l++ {
		rows = append(rows, []string{
			fmt.Sprint(l),
			fmt.Sprintf("%.6f", r.Hist.Frac(l)),
			fmt.Sprintf("%.3f", r.Hist.ACEPct(l)),
		})
	}
	return report.WriteCSV(w, []string{"ready_len", "cycles_frac", "ace_pct"}, rows)
}

// WriteCSV emits benchmark,accuracy,ace_fraction rows.
func (r *Table1Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for i, b := range r.Benchmarks {
		rows = append(rows, []string{
			b,
			fmt.Sprintf("%.6f", r.Accuracy[i]),
			fmt.Sprintf("%.6f", r.ACEFrac[i]),
		})
	}
	return report.WriteCSV(w, []string{"benchmark", "accuracy", "ace_fraction"}, rows)
}

// WriteCSV emits scheme,category,norm_avf,norm_ipc rows.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for si, s := range fig5Schemes {
		for ci, cat := range catNames {
			rows = append(rows, []string{
				s.String(), cat,
				fmt.Sprintf("%.6f", r.NormAVF[si][ci]),
				fmt.Sprintf("%.6f", r.NormIPC[si][ci]),
			})
		}
	}
	return report.WriteCSV(w, []string{"scheme", "category", "norm_iq_avf", "norm_ipc"}, rows)
}

// WriteCSV emits policy,scheme,category,norm_avf,norm_ipc rows.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for pi, pol := range r.Policies {
		for si, s := range fig5Schemes {
			for ci, cat := range catNames {
				rows = append(rows, []string{
					pol.String(), s.String(), cat,
					fmt.Sprintf("%.6f", r.NormAVF[pi][si][ci]),
					fmt.Sprintf("%.6f", r.NormIPC[pi][si][ci]),
				})
			}
		}
	}
	return report.WriteCSV(w, []string{"policy", "scheme", "category", "norm_iq_avf", "norm_ipc"}, rows)
}

// WriteCSV emits category,target_frac,pve_base,pve_dvm,thru_deg,harm_deg.
func (r *Fig8Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for ci, cat := range catNames {
		for fi, f := range r.Fracs {
			rows = append(rows, []string{
				cat,
				fmt.Sprintf("%.1f", f),
				fmt.Sprintf("%.6f", r.PVEBase[ci][fi]),
				fmt.Sprintf("%.6f", r.PVEDVM[ci][fi]),
				fmt.Sprintf("%.3f", r.ThruDeg[ci][fi]),
				fmt.Sprintf("%.3f", r.HarmDeg[ci][fi]),
			})
		}
	}
	return report.WriteCSV(w,
		[]string{"category", "target_frac", "pve_base", "pve_dvm", "thru_deg_pct", "harm_deg_pct"}, rows)
}

// WriteCSV emits scheme,category,target_frac,pve rows.
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for si, s := range r.Schemes {
		for ci, cat := range catNames {
			for fi, f := range r.Fracs {
				rows = append(rows, []string{
					s, cat,
					fmt.Sprintf("%.1f", f),
					fmt.Sprintf("%.6f", r.PVE[si][ci][fi]),
				})
			}
		}
	}
	return report.WriteCSV(w, []string{"scheme", "category", "target_frac", "pve"}, rows)
}

// WriteCSV emits mix,org,prot,scheme,ipc,iq_avf,iq_occ,dvm_triggers,area_extra rows.
func (r *IQMatrixResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Mix, c.Org.String(), c.Prot.String(), c.Scheme.String(),
			fmt.Sprintf("%.6f", c.IPC),
			fmt.Sprintf("%.6f", c.IQAVF),
			fmt.Sprintf("%.3f", c.IQOcc),
			fmt.Sprint(c.DVMTriggers),
			fmt.Sprintf("%.1f", c.AreaExtra),
		})
	}
	return report.WriteCSV(w,
		[]string{"mix", "org", "prot", "scheme", "ipc", "iq_avf", "iq_occ", "dvm_triggers", "area_extra"},
		rows)
}
