package experiments

import (
	"testing"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

func TestCalibrationPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, mixName := range []string{"MEM-A", "MIX-A"} {
		for _, pol := range pipeline.AllPolicies() {
			r, err := core.Run(core.Config{
				Benchmarks:      mixBenchmarks(t, mixName),
				Scheme:          core.SchemeBase,
				Policy:          pol,
				MaxInstructions: 120_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s %-6v IPC=%.2f IQAVF=%.3f occ=%.0f rql=%.1f flushes=%d wrong=%d",
				mixName, pol, r.ThroughputIPC, r.IQAVF, r.MeanIQOccupancy, r.MeanReadyLen, r.Flushes, r.WrongPathFetched)
		}
	}
}

func TestCalibrationDVM(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	r, err := Fig8(Params{Budget: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
}
