// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each experiment
// returns structured results plus a rendered text report; cmd/experiments
// prints them and bench_test.go wraps them as benchmarks.
//
// Absolute numbers differ from the paper (the substrate is a synthetic
// workload model, not SPEC2000 on M-Sim); the shapes — which scheme wins,
// by roughly what factor, and where behaviour crosses over — are the
// reproduction targets, recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"visasim/internal/core"
	"visasim/internal/decision"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// Params tunes an experiment run.
type Params struct {
	// Budget is the per-simulation committed-instruction budget
	// (DefaultBudget when 0). The paper simulates 400M instructions per
	// workload; see DESIGN.md for the scaling substitution.
	Budget uint64
	// Workers bounds concurrent simulations (GOMAXPROCS when 0).
	Workers int
	// Runner, when non-nil, replaces harness.Run for every sweep. It must
	// have harness.Run's semantics (keyed results, first error aborts).
	// cmd/experiments -server points it at a server.Client so sweeps
	// execute on — and populate the result cache of — a visasimd daemon.
	Runner func(cells []harness.Cell, opt harness.Options) (harness.Results, error)

	// TraceLevel records a per-cell decision trace for every sweep cell
	// (see core.RunOptions.TraceLevel). Traces are delivered to TraceSink
	// as cells finish; tracing never changes results. Only the local
	// harness path records — a custom Runner receives the level through
	// harness.Options and may ignore it.
	TraceLevel int
	// TraceSink receives each recorded (cell key, trace) pair. Ignored
	// when nil or TraceLevel is 0.
	TraceSink func(key string, tr *decision.Trace)
}

// run executes one sweep through the configured runner (harness.Run when
// none is set). Every experiment goes through this seam.
func (p Params) run(cells []harness.Cell) (harness.Results, error) {
	opt := harness.Options{Workers: p.Workers, TraceLevel: p.TraceLevel}
	if p.Runner != nil {
		return p.Runner(cells, opt)
	}
	res, _, traces, err := harness.RunTraced(cells, opt)
	if err != nil {
		return nil, err
	}
	if p.TraceSink != nil {
		// Deterministic delivery order regardless of worker schedule.
		keys := make([]string, 0, len(traces))
		for k := range traces {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p.TraceSink(k, traces[k])
		}
	}
	return res, nil
}

// DefaultBudget is the default per-run instruction budget.
const DefaultBudget = 200_000

func (p Params) budget() uint64 {
	if p.Budget == 0 {
		return DefaultBudget
	}
	return p.Budget
}

// key builds a stable cell key.
func key(parts ...any) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(p)
	}
	return s
}

// runMixes runs every Table 3 mix under each (scheme, policy) pair.
func runMixes(p Params, schemes []core.Scheme, policies []pipeline.FetchPolicyKind) (harness.Results, error) {
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		for _, s := range schemes {
			for _, pol := range policies {
				cells = append(cells, harness.Cell{
					Key: key(mix.Name, s, pol),
					Cfg: core.Config{
						Benchmarks:      mix.Benchmarks[:],
						Scheme:          s,
						Policy:          pol,
						MaxInstructions: p.budget(),
					},
				})
			}
		}
	}
	return p.run(cells)
}

// categoryMean averages f over the mixes of each category, returning values
// in Table 3 category order (CPU, MIX, MEM).
func categoryMean(f func(mix workload.Mix) float64) [3]float64 {
	var out [3]float64
	for ci, cat := range workload.Categories() {
		mixes := workload.MixesIn(cat)
		sum := 0.0
		for _, m := range mixes {
			sum += f(m)
		}
		out[ci] = sum / float64(len(mixes))
	}
	return out
}
