package experiments

import (
	"strings"
	"testing"

	"visasim/internal/pipeline"
	"visasim/internal/stats"
)

// Rendering tests with synthetic data: the String() methods are part of the
// reproduction's deliverable (cmd/experiments output), so their structure is
// pinned here without running simulations.

func TestFig1Render(t *testing.T) {
	r := &Fig1Result{}
	for ci := 0; ci < 3; ci++ {
		r.AVF[ci] = [4]float64{0.43, 0.16, 0.11, 0.02}
	}
	s := r.String()
	for _, want := range []string{"Figure 1", "IQ", "ROB", "RF", "FU", "43.0%", "CPU", "MEM"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFig2Render(t *testing.T) {
	h := stats.NewRQHistogram(96)
	for i := 0; i < 100; i++ {
		h.Observe(i%30, (i%30)/2)
	}
	r := &Fig2Result{Hist: h, MeanLen: h.MeanLen(), MeanACEPct: h.MeanACEPct(), MaxLen: h.MaxObserved()}
	s := r.String()
	for _, want := range []string{"Figure 2", "mean RQL", "ACE%"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTable1Render(t *testing.T) {
	r := &Table1Result{
		Benchmarks:        []string{"bzip2", "mcf"},
		Accuracy:          []float64{0.9, 0.8},
		ACEFrac:           []float64{0.4, 0.5},
		Average:           0.85,
		SquashedInclusive: 0.8,
	}
	s := r.String()
	for _, want := range []string{"Table 1", "bzip2", "90.0%", "AVG", "85.0%", "squashed"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestFig5Render(t *testing.T) {
	r := &Fig5Result{}
	for si := 0; si < 3; si++ {
		for ci := 0; ci < 3; ci++ {
			r.NormAVF[si][ci] = 0.5
			r.NormIPC[si][ci] = 1.01
		}
	}
	s := r.String()
	for _, want := range []string{"Figure 5", "visa+opt2", "0.500", "1.010", "AVF reduction 50%"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if got := r.AvgAVFReduction(2); got != 0.5 {
		t.Errorf("reduction %v", got)
	}
	if got := r.AvgIPCChange(2); got < 0.0099 || got > 0.0101 {
		t.Errorf("ipc change %v", got)
	}
}

func TestFig8Render(t *testing.T) {
	r := &Fig8Result{Policy: pipeline.PolicyICOUNT, Fracs: DVMFracs, MeanRatio: 1.2}
	for ci := 0; ci < 3; ci++ {
		r.PVEBase[ci] = []float64{0.7, 0.6, 0.5, 0.4, 0.3}
		r.PVEDVM[ci] = []float64{0, 0, 0.01, 0.02, 0.1}
		r.ThruDeg[ci] = []float64{1, 2, 3, 4, 5}
		r.HarmDeg[ci] = []float64{1, 2, 3, 4, 5}
	}
	s := r.String()
	for _, want := range []string{"Figure 8", "ICOUNT", "0.5*MaxAVF", "wq_ratio: 1.20"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	r.Policy = pipeline.PolicyFLUSH
	if !strings.Contains(r.String(), "Figure 9") {
		t.Error("FLUSH variant must render as Figure 9")
	}
}

func TestFig10Render(t *testing.T) {
	r := &Fig10Result{
		Fracs:   DVMFracs,
		Schemes: []string{"visa", "visa+opt1", "visa+opt2", "dvm-static", "dvm-dynamic"},
	}
	for si := range r.PVE {
		for ci := range r.PVE[si] {
			r.PVE[si][ci] = make([]float64, len(DVMFracs))
		}
	}
	s := r.String()
	for _, want := range []string{"Figure 10", "dvm-dynamic", "0.3*MaxAVF"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestAblationRenders(t *testing.T) {
	or := &OracleTagResult{Profiled: [3]float64{0.8, 0.7, 0.9}, Oracle: [3]float64{0.7, 0.6, 0.8}}
	if !strings.Contains(or.String(), "oracle") {
		t.Error("oracle render")
	}
	th := &ThresholdResult{Thresholds: []uint64{16, 1 << 30}, NormAVF: []float64{0.6, 0.4}, NormIPC: []float64{1, 0.5}}
	if s := th.String(); !strings.Contains(s, "∞ (opt1)") || !strings.Contains(s, "16") {
		t.Errorf("threshold render:\n%s", s)
	}
	wr := &WindowResult{Windows: []int{2000}, Accuracy: []float64{0.9}, ACEFrac: []float64{0.4}}
	if !strings.Contains(wr.String(), "2000") {
		t.Error("window render")
	}
	iq := &IQSizeResult{Sizes: []int{32}, IPC: []float64{2}, AVF: []float64{0.3}}
	if !strings.Contains(iq.String(), "32") {
		t.Error("iq size render")
	}
	w := &WidthResult{Widths: []int{4}, IPC: []float64{2}, AVF: []float64{0.2}}
	if !strings.Contains(w.String(), "width") {
		t.Error("width render")
	}
	iv := &IntervalResult{Intervals: []int{1000}, NormAVF: []float64{0.5}, NormIPC: []float64{0.6}}
	if !strings.Contains(iv.String(), "1000") {
		t.Error("interval render")
	}
	ext := &ROBDVMResult{Fracs: []float64{0.5}}
	for ci := 0; ci < 3; ci++ {
		ext.PVEBase[ci] = []float64{1}
		ext.PVEDVM[ci] = []float64{0}
		ext.ThruDeg[ci] = []float64{10}
	}
	if !strings.Contains(ext.String(), "reorder buffer") {
		t.Error("extension render")
	}
}

func TestCSVEmitters(t *testing.T) {
	var buf strings.Builder

	f1 := &Fig1Result{}
	f1.AVF[0][0] = 0.5
	if err := f1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "structure,category,avf") ||
		!strings.Contains(buf.String(), "IQ,CPU,0.500000") {
		t.Fatalf("fig1 csv:\n%s", buf.String())
	}

	buf.Reset()
	f5 := &Fig5Result{}
	f5.NormAVF[2][1] = 0.6
	f5.NormIPC[2][1] = 1.02
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "visa+opt2,MIX,0.600000,1.020000") {
		t.Fatalf("fig5 csv:\n%s", buf.String())
	}

	buf.Reset()
	f8 := &Fig8Result{Fracs: []float64{0.5}}
	for ci := 0; ci < 3; ci++ {
		f8.PVEBase[ci] = []float64{0.9}
		f8.PVEDVM[ci] = []float64{0.01}
		f8.ThruDeg[ci] = []float64{5}
		f8.HarmDeg[ci] = []float64{4}
	}
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CPU,0.5,0.900000,0.010000,5.000,4.000") {
		t.Fatalf("fig8 csv:\n%s", buf.String())
	}

	buf.Reset()
	f10 := &Fig10Result{Fracs: []float64{0.5}, Schemes: []string{"a", "b", "c", "d", "e"}}
	for si := range f10.PVE {
		for ci := range f10.PVE[si] {
			f10.PVE[si][ci] = []float64{0.25}
		}
	}
	if err := f10.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a,CPU,0.5,0.250000") {
		t.Fatalf("fig10 csv:\n%s", buf.String())
	}

	buf.Reset()
	t1 := &Table1Result{Benchmarks: []string{"gcc"}, Accuracy: []float64{0.9}, ACEFrac: []float64{0.4}}
	if err := t1.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gcc,0.900000,0.400000") {
		t.Fatalf("table1 csv:\n%s", buf.String())
	}
}
