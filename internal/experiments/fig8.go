package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// DVMFracs are the reliability-target fractions of MaxIQ_AVF the paper
// sweeps (0.7·MaxAVF down to 0.3·MaxAVF).
var DVMFracs = []float64{0.7, 0.6, 0.5, 0.4, 0.3}

// Fig8Result is DVM efficiency and performance impact under one base fetch
// policy: percentage of vulnerability emergencies (PVE) with and without
// DVM, and throughput/harmonic IPC degradation, per category and threshold.
// Figure 8 uses ICOUNT; Figure 9 repeats it under FLUSH.
type Fig8Result struct {
	Policy pipeline.FetchPolicyKind
	Fracs  []float64
	// Indexed [category][frac].
	PVEBase   [3][]float64
	PVEDVM    [3][]float64
	ThruDeg   [3][]float64 // % throughput IPC degradation (negative = gain)
	HarmDeg   [3][]float64 // % harmonic IPC degradation
	MeanRatio float64      // mean dynamic wq_ratio across runs (for Fig 10)
}

// figDVM runs the DVM threshold sweep under pol.
func figDVM(p Params, pol pipeline.FetchPolicyKind) (*Fig8Result, error) {
	// Phase 1: per-mix baselines define MaxIQ_AVF and reference IPC.
	base, err := runMixes(p, []core.Scheme{core.SchemeBase}, []pipeline.FetchPolicyKind{pol})
	if err != nil {
		return nil, err
	}

	// Phase 2: DVM per mix × threshold.
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		b := base[key(mix.Name, core.SchemeBase, pol)]
		for _, f := range DVMFracs {
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, "dvm", pol, f),
				Cfg: core.Config{
					Benchmarks:      mix.Benchmarks[:],
					Scheme:          core.SchemeDVM,
					Policy:          pol,
					MaxInstructions: p.budget(),
					DVMTarget:       f * b.MaxIQAVF,
				},
			})
		}
	}
	dvmRes, err := p.run(cells)
	if err != nil {
		return nil, err
	}

	out := &Fig8Result{Policy: pol, Fracs: DVMFracs}
	var ratioSum float64
	var ratioN int
	for ci := range workload.Categories() {
		out.PVEBase[ci] = make([]float64, len(DVMFracs))
		out.PVEDVM[ci] = make([]float64, len(DVMFracs))
		out.ThruDeg[ci] = make([]float64, len(DVMFracs))
		out.HarmDeg[ci] = make([]float64, len(DVMFracs))
	}
	for fi, f := range DVMFracs {
		pveB := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			return b.PVE(f * b.MaxIQAVF)
		})
		pveD := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			return dvmRes[key(mix.Name, "dvm", pol, f)].PVE(f * b.MaxIQAVF)
		})
		thru := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			d := dvmRes[key(mix.Name, "dvm", pol, f)]
			return 100 * (1 - d.ThroughputIPC/b.ThroughputIPC)
		})
		harm := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			d := dvmRes[key(mix.Name, "dvm", pol, f)]
			if b.HarmonicIPC == 0 {
				return 0
			}
			return 100 * (1 - d.HarmonicIPC/b.HarmonicIPC)
		})
		for ci := 0; ci < 3; ci++ {
			out.PVEBase[ci][fi] = pveB[ci]
			out.PVEDVM[ci][fi] = pveD[ci]
			out.ThruDeg[ci][fi] = thru[ci]
			out.HarmDeg[ci][fi] = harm[ci]
		}
	}
	for _, r := range dvmRes {
		ratioSum += r.DVMMeanRatio
		ratioN++
	}
	out.MeanRatio = ratioSum / float64(ratioN)
	return out, nil
}

// Fig8 reproduces Figure 8 (DVM under ICOUNT).
func Fig8(p Params) (*Fig8Result, error) { return figDVM(p, pipeline.PolicyICOUNT) }

// Fig9 reproduces Figure 9 (DVM under FLUSH).
func Fig9(p Params) (*Fig8Result, error) { return figDVM(p, pipeline.PolicyFLUSH) }

// String renders PVE and degradation per category and threshold.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: DVM efficiency and performance impact (fetch policy: %v)\n",
		map[pipeline.FetchPolicyKind]string{pipeline.PolicyICOUNT: "8", pipeline.PolicyFLUSH: "9"}[r.Policy],
		r.Policy)
	cats := []string{"CPU", "MIX", "MEM"}
	for ci, cat := range cats {
		fmt.Fprintf(&b, "\n[%s]\n%-14s %10s %10s %12s %12s\n", cat,
			"target", "PVE base", "PVE DVM", "thru deg %", "harm deg %")
		for fi, f := range r.Fracs {
			fmt.Fprintf(&b, "%.1f*MaxAVF     %9.1f%% %9.1f%% %12.1f %12.1f\n",
				f, 100*r.PVEBase[ci][fi], 100*r.PVEDVM[ci][fi],
				r.ThruDeg[ci][fi], r.HarmDeg[ci][fi])
		}
	}
	fmt.Fprintf(&b, "\nmean dynamic wq_ratio: %.2f\n", r.MeanRatio)
	return b.String()
}
