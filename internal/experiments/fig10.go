package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// fig10Schemes are the compared reliability schemes, in figure order. The
// DVM variants are handled separately because they need targets.
var fig10Schemes = []core.Scheme{core.SchemeVISA, core.SchemeVISAOpt1, core.SchemeVISAOpt2}

// Fig10Result compares DVM against the open-loop reliability optimisations:
// the percentage of vulnerability emergencies each scheme leaves at each
// reliability target. Only DVM actively tracks the target, so the paper
// expects VISA/+opt1/+opt2 to show high PVE, static-ratio DVM to manage
// partially, and dynamic DVM to win everywhere.
type Fig10Result struct {
	Fracs []float64
	// PVE indexed [scheme][category][frac]; schemes are VISA, +opt1,
	// +opt2, DVM-static, DVM-dynamic.
	Schemes []string
	PVE     [5][3][]float64
}

// Fig10 reproduces Figure 10 (ICOUNT fetch policy).
func Fig10(p Params) (*Fig10Result, error) {
	pol := pipeline.PolicyICOUNT
	// Open-loop schemes plus baseline (for MaxIQ_AVF).
	schemes := append([]core.Scheme{core.SchemeBase}, fig10Schemes...)
	res, err := runMixes(p, schemes, []pipeline.FetchPolicyKind{pol})
	if err != nil {
		return nil, err
	}

	// Dynamic DVM per mix × frac; its mean ratio then configures the
	// static variant, as the paper does.
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		b := res[key(mix.Name, core.SchemeBase, pol)]
		for _, f := range DVMFracs {
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, "dvm", f),
				Cfg: core.Config{
					Benchmarks:      mix.Benchmarks[:],
					Scheme:          core.SchemeDVM,
					Policy:          pol,
					MaxInstructions: p.budget(),
					DVMTarget:       f * b.MaxIQAVF,
				},
			})
		}
	}
	dyn, err := p.run(cells)
	if err != nil {
		return nil, err
	}

	cells = cells[:0]
	for _, mix := range workload.Mixes() {
		b := res[key(mix.Name, core.SchemeBase, pol)]
		for _, f := range DVMFracs {
			ratio := dyn[key(mix.Name, "dvm", f)].DVMMeanRatio
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, "dvms", f),
				Cfg: core.Config{
					Benchmarks:      mix.Benchmarks[:],
					Scheme:          core.SchemeDVMStatic,
					Policy:          pol,
					MaxInstructions: p.budget(),
					DVMTarget:       f * b.MaxIQAVF,
					DVMStaticRatio:  ratio,
				},
			})
		}
	}
	stat, err := p.run(cells)
	if err != nil {
		return nil, err
	}

	out := &Fig10Result{
		Fracs:   DVMFracs,
		Schemes: []string{"visa", "visa+opt1", "visa+opt2", "dvm-static", "dvm-dynamic"},
	}
	for si := range out.PVE {
		for ci := range out.PVE[si] {
			out.PVE[si][ci] = make([]float64, len(DVMFracs))
		}
	}
	for fi, f := range DVMFracs {
		for si := 0; si < 5; si++ {
			pve := categoryMean(func(mix workload.Mix) float64 {
				b := res[key(mix.Name, core.SchemeBase, pol)]
				target := f * b.MaxIQAVF
				switch si {
				case 0, 1, 2:
					return res[key(mix.Name, fig10Schemes[si], pol)].PVE(target)
				case 3:
					return stat[key(mix.Name, "dvms", f)].PVE(target)
				default:
					return dyn[key(mix.Name, "dvm", f)].PVE(target)
				}
			})
			for ci := 0; ci < 3; ci++ {
				out.PVE[si][ci][fi] = pve[ci]
			}
		}
	}
	return out, nil
}

// String renders the comparison.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: PVE of DVM vs. open-loop reliability optimisations (ICOUNT)\n")
	cats := []string{"CPU", "MIX", "MEM"}
	for ci, cat := range cats {
		fmt.Fprintf(&b, "\n[%s]\n%-12s", cat, "target")
		for _, s := range r.Schemes {
			fmt.Fprintf(&b, " %11s", s)
		}
		b.WriteByte('\n')
		for fi, f := range r.Fracs {
			fmt.Fprintf(&b, "%.1f*MaxAVF  ", f)
			for si := range r.Schemes {
				fmt.Fprintf(&b, " %10.1f%%", 100*r.PVE[si][ci][fi])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
