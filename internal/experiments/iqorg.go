package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/iqorg"
	"visasim/internal/pipeline"
	"visasim/internal/report"
	"visasim/internal/workload"
)

// iqMatrixMixes are the representative mixes the organization/protection
// matrix sweeps — one per Table 3 category, matching the explorer's
// calibration coverage.
var iqMatrixMixes = []string{"CPU-A", "MIX-A", "MEM-A"}

// iqMatrixSchemes are the schemes the matrix crosses the new axes with:
// the unmanaged baseline, the paper's VISA issue priority, and the DVM
// feedback controller (at 0.5·MaxIQ_AVF of the per-mix baseline).
var iqMatrixSchemes = []core.Scheme{core.SchemeBase, core.SchemeVISA, core.SchemeDVM}

// iqMatrixDVMFrac is the DVM target depth the matrix uses. The target is
// absolute and shared by every cell of a mix, so an organization or
// protection that lowers intrinsic vulnerability shows up as fewer
// throttle engagements rather than a shifted goalpost.
const iqMatrixDVMFrac = 0.5

// mixByName resolves a Table 3 mix by its name.
func mixByName(name string) (workload.Mix, error) {
	for _, m := range workload.Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return workload.Mix{}, fmt.Errorf("experiments: unknown mix %q", name)
}

// IQMatrixCell is one point of the organization × protection × scheme
// matrix.
type IQMatrixCell struct {
	Mix    string
	Org    iqorg.Kind
	Prot   iqorg.Protection
	Scheme core.Scheme

	IPC         float64
	IQAVF       float64 // residual, after the protection's mitigation
	IQOcc       float64
	DVMTriggers uint64
	// AreaExtra is the protection's added area in explore.AreaProxy units
	// (AreaPerEntry × IQ entries) — the cost axis the reliability gain
	// trades against.
	AreaExtra float64
}

// IQMatrixResult is the full matrix: every issue-queue organization and
// protection mode crossed with the baseline, VISA and DVM schemes on one
// representative mix per workload category.
type IQMatrixResult struct {
	Mixes   []string
	Orgs    []iqorg.Kind
	Prots   []iqorg.Protection
	Schemes []core.Scheme
	Cells   []IQMatrixCell // mix-major, then org, prot, scheme
}

// cell returns the matrix entry for the given coordinates (nil if absent).
func (r *IQMatrixResult) cell(mix string, org iqorg.Kind, prot iqorg.Protection, scheme core.Scheme) *IQMatrixCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Mix == mix && c.Org == org && c.Prot == prot && c.Scheme == scheme {
			return c
		}
	}
	return nil
}

// IQMatrix sweeps the organization/protection design axes against the
// paper's schemes. Phase 1 measures the per-mix unmanaged baseline (its
// MaxIQ_AVF anchors the DVM target); phase 2 runs the full cross product.
func IQMatrix(p Params) (*IQMatrixResult, error) {
	out := &IQMatrixResult{
		Mixes:   iqMatrixMixes,
		Orgs:    iqorg.Kinds(),
		Prots:   iqorg.Protections(),
		Schemes: iqMatrixSchemes,
	}

	var baseCells []harness.Cell
	for _, mix := range iqMatrixMixes {
		m, err := mixByName(mix)
		if err != nil {
			return nil, err
		}
		baseCells = append(baseCells, harness.Cell{
			Key: key("iqmatrix-ref", mix),
			Cfg: core.Config{
				Benchmarks:      m.Benchmarks[:],
				Scheme:          core.SchemeBase,
				Policy:          pipeline.PolicyICOUNT,
				MaxInstructions: p.budget(),
			},
		})
	}
	baseRes, err := p.run(baseCells)
	if err != nil {
		return nil, err
	}

	var cells []harness.Cell
	for _, mix := range iqMatrixMixes {
		m, _ := mixByName(mix)
		ref := baseRes[key("iqmatrix-ref", mix)]
		for _, org := range out.Orgs {
			for _, prot := range out.Prots {
				for _, scheme := range out.Schemes {
					mach := config.Default()
					mach.IQOrg = org.String()
					mach.IQProtection = prot.String()
					cfg := core.Config{
						Machine:         &mach,
						Benchmarks:      m.Benchmarks[:],
						Scheme:          scheme,
						Policy:          pipeline.PolicyICOUNT,
						MaxInstructions: p.budget(),
					}
					if scheme == core.SchemeDVM {
						cfg.DVMTarget = iqMatrixDVMFrac * ref.MaxIQAVF
					}
					cells = append(cells, harness.Cell{
						Key: key("iqmatrix", mix, org, prot, scheme),
						Cfg: cfg,
					})
				}
			}
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}

	iqSize := config.Default().IQSize
	for _, mix := range iqMatrixMixes {
		for _, org := range out.Orgs {
			for _, prot := range out.Prots {
				for _, scheme := range out.Schemes {
					r := res[key("iqmatrix", mix, org, prot, scheme)]
					out.Cells = append(out.Cells, IQMatrixCell{
						Mix: mix, Org: org, Prot: prot, Scheme: scheme,
						IPC:         r.ThroughputIPC,
						IQAVF:       r.IQAVF,
						IQOcc:       r.MeanIQOccupancy,
						DVMTriggers: r.DVMTriggers,
						AreaExtra:   prot.AreaCost(iqSize),
					})
				}
			}
		}
	}
	return out, nil
}

// String renders one table per mix: organizations × protections down the
// rows, IPC and residual IQ AVF per scheme across the columns.
func (r *IQMatrixResult) String() string {
	var b strings.Builder
	b.WriteString("IQ organization x protection matrix (ICOUNT fetch; DVM at " +
		fmt.Sprintf("%.1f*MaxIQ_AVF of the per-mix baseline)\n", iqMatrixDVMFrac))
	for _, mix := range r.Mixes {
		cols := []string{"org", "prot", "area+"}
		for _, s := range r.Schemes {
			cols = append(cols, fmt.Sprintf("%v IPC", s), fmt.Sprintf("%v AVF", s))
		}
		t := report.NewTable(fmt.Sprintf("[%s]", mix), cols...)
		for _, org := range r.Orgs {
			for _, prot := range r.Prots {
				row := []string{org.String(), prot.String(),
					fmt.Sprintf("%.0f", prot.AreaCost(config.Default().IQSize))}
				for _, s := range r.Schemes {
					c := r.cell(mix, org, prot, s)
					if c == nil {
						row = append(row, "-", "-")
						continue
					}
					row = append(row, fmt.Sprintf("%.3f", c.IPC), fmt.Sprintf("%.4f", c.IQAVF))
				}
				t.AddRow(row...)
			}
		}
		b.WriteString(t.String())
		// The DVM interplay is the matrix's headline: report how much
		// less the controller throttles once the queue is protected.
		unp := r.cell(mix, iqorg.UnifiedAGE, iqorg.None, core.SchemeDVM)
		par := r.cell(mix, iqorg.UnifiedAGE, iqorg.Parity, core.SchemeDVM)
		if unp != nil && par != nil {
			fmt.Fprintf(&b, "DVM triggers: %d unprotected -> %d under parity\n",
				unp.DVMTriggers, par.DVMTriggers)
		}
		b.WriteString("\n")
	}
	return b.String()
}
