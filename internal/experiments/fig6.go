package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

// fig6Policies are the advanced fetch policies Figure 6 evaluates under.
var fig6Policies = []pipeline.FetchPolicyKind{
	pipeline.PolicySTALL, pipeline.PolicyDG, pipeline.PolicyPDG, pipeline.PolicyFLUSH,
}

// Fig6Result holds, per advanced fetch policy, the same normalised IQ AVF
// and IPC panels as Figure 5 (normalised to that policy's own baseline).
type Fig6Result struct {
	Policies []pipeline.FetchPolicyKind
	// NormAVF[policy][scheme][category], likewise NormIPC.
	NormAVF [][3][3]float64
	NormIPC [][3][3]float64
}

// Fig6 reproduces Figure 6.
func Fig6(p Params) (*Fig6Result, error) {
	schemes := append([]core.Scheme{core.SchemeBase}, fig5Schemes...)
	res, err := runMixes(p, schemes, fig6Policies)
	if err != nil {
		return nil, err
	}
	out := &Fig6Result{
		Policies: fig6Policies,
		NormAVF:  make([][3][3]float64, len(fig6Policies)),
		NormIPC:  make([][3][3]float64, len(fig6Policies)),
	}
	for pi, pol := range fig6Policies {
		fillNormalized(res, pol, fig5Schemes, &out.NormAVF[pi], &out.NormIPC[pi])
	}
	return out, nil
}

// AvgAVFReduction returns the mean VISA+opt2 AVF reduction across all
// policies and categories (the paper reports 36%).
func (r *Fig6Result) AvgAVFReduction() float64 {
	sum, n := 0.0, 0
	for pi := range r.Policies {
		for ci := 0; ci < 3; ci++ {
			sum += r.NormAVF[pi][2][ci]
			n++
		}
	}
	return 1 - sum/float64(n)
}

// AvgIPCChange returns the mean VISA+opt2 IPC change across all policies.
func (r *Fig6Result) AvgIPCChange() float64 {
	sum, n := 0.0, 0
	for pi := range r.Policies {
		for ci := 0; ci < 3; ci++ {
			sum += r.NormIPC[pi][2][ci]
			n++
		}
	}
	return sum/float64(n) - 1
}

// String renders per-policy panels.
func (r *Fig6Result) String() string {
	var b strings.Builder
	for pi, pol := range r.Policies {
		b.WriteString(renderNormalized(fmt.Sprintf("Figure 6 (%v)", pol),
			fig5Schemes, &r.NormAVF[pi], &r.NormIPC[pi]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "VISA+opt2 across advanced policies: AVF reduction %.0f%%, IPC change %+.1f%%\n",
		100*r.AvgAVFReduction(), 100*r.AvgIPCChange())
	return b.String()
}
