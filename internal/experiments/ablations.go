package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// The ablations probe the design choices DESIGN.md calls out: the 1-bit
// per-PC tag (vs oracle per-instance ACE-ness), the profiling window, the
// 10K-cycle control interval, opt2's Tcache_miss threshold, and the IQ
// size itself. None appears in the paper as a figure; each answers a
// "what if" the paper's design settles by fiat.

// OracleTagResult compares VISA+opt2 driven by profiled tags against the
// same mechanism with perfect per-instance ACE knowledge: the gap is the
// price of the paper's practical 1-bit ISA encoding.
type OracleTagResult struct {
	// Per category: normalised IQ AVF under profiled tags and oracle
	// tags (relative to the unprotected baseline).
	Profiled [3]float64
	Oracle   [3]float64
}

// AblationOracleTags runs the tag-fidelity ablation under ICOUNT.
func AblationOracleTags(p Params) (*OracleTagResult, error) {
	pol := pipeline.PolicyICOUNT
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		for _, variant := range []string{"base", "tags", "oracle"} {
			cfg := core.Config{
				Benchmarks:      mix.Benchmarks[:],
				Scheme:          core.SchemeVISAOpt2,
				Policy:          pol,
				MaxInstructions: p.budget(),
				OracleTags:      variant == "oracle",
			}
			if variant == "base" {
				cfg.Scheme = core.SchemeBase
			}
			cells = append(cells, harness.Cell{Key: key(mix.Name, variant), Cfg: cfg})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}
	out := &OracleTagResult{}
	for vi, variant := range []string{"tags", "oracle"} {
		m := categoryMean(func(mix workload.Mix) float64 {
			base := res[key(mix.Name, "base")]
			r := res[key(mix.Name, variant)]
			if base.IQAVF == 0 {
				return 1
			}
			return r.IQAVF / base.IQAVF
		})
		for ci := 0; ci < 3; ci++ {
			if vi == 0 {
				out.Profiled[ci] = m[ci]
			} else {
				out.Oracle[ci] = m[ci]
			}
		}
	}
	return out, nil
}

// String renders the tag-fidelity comparison.
func (r *OracleTagResult) String() string {
	t := newAblationTable("Ablation: profiled 1-bit tags vs oracle ACE knowledge (VISA+opt2, normalised IQ AVF)")
	t.AddRowf(3, "profiled tags", r.Profiled[0], r.Profiled[1], r.Profiled[2],
		(r.Profiled[0]+r.Profiled[1]+r.Profiled[2])/3)
	t.AddRowf(3, "oracle", r.Oracle[0], r.Oracle[1], r.Oracle[2],
		(r.Oracle[0]+r.Oracle[1]+r.Oracle[2])/3)
	return t.String()
}

// WindowResult sweeps the offline analysis window: small windows
// over-classify instructions as ACE (conservative window-exit rule), which
// both inflates measured AVF inputs and dilutes VISA's prioritisation.
type WindowResult struct {
	Windows  []int
	Accuracy []float64 // mean committed tag accuracy across Table 1 benchmarks
	ACEFrac  []float64
}

// AblationWindow sweeps the ACE analysis window.
func AblationWindow(p Params) (*WindowResult, error) {
	out := &WindowResult{Windows: []int{2000, 10000, ace.DefaultWindow, 100000}}
	for _, w := range out.Windows {
		var acc, frac float64
		names := workload.Table1Benchmarks()
		for _, name := range names {
			b, err := workload.Get(name)
			if err != nil {
				return nil, err
			}
			prof, err := core.ProfileFor(b, p.budget(), w)
			if err != nil {
				return nil, err
			}
			acc += prof.Accuracy()
			frac += prof.ACEFraction()
		}
		out.Accuracy = append(out.Accuracy, acc/float64(len(names)))
		out.ACEFrac = append(out.ACEFrac, frac/float64(len(names)))
	}
	return out, nil
}

// String renders the window sweep.
func (r *WindowResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: post-retirement analysis window (suite means)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "window", "accuracy", "ACE frac")
	for i, w := range r.Windows {
		fmt.Fprintf(&b, "%-10d %9.1f%% %9.1f%%\n", w, 100*r.Accuracy[i], 100*r.ACEFrac[i])
	}
	return b.String()
}

// ThresholdResult sweeps opt2's Tcache_miss on the MIX workloads, where the
// switch between capping and flushing actually matters.
type ThresholdResult struct {
	Thresholds []uint64
	NormAVF    []float64 // MIX-category mean, normalised to baseline
	NormIPC    []float64
}

// AblationTcache sweeps the opt2 L2-miss threshold.
func AblationTcache(p Params) (*ThresholdResult, error) {
	pol := pipeline.PolicyICOUNT
	out := &ThresholdResult{Thresholds: []uint64{2, 8, 16, 64, 1 << 30}}
	var cells []harness.Cell
	for _, mix := range workload.MixesIn(workload.CatMIX) {
		cells = append(cells, harness.Cell{
			Key: key(mix.Name, "base"),
			Cfg: core.Config{
				Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeBase,
				Policy: pol, MaxInstructions: p.budget(),
			},
		})
		for _, th := range out.Thresholds {
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, th),
				Cfg: core.Config{
					Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeVISAOpt2,
					Policy: pol, MaxInstructions: p.budget(), Opt2Threshold: th,
				},
			})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}
	mixes := workload.MixesIn(workload.CatMIX)
	for _, th := range out.Thresholds {
		var avf, ipc float64
		for _, mix := range mixes {
			base := res[key(mix.Name, "base")]
			r := res[key(mix.Name, th)]
			avf += r.IQAVF / base.IQAVF
			ipc += r.ThroughputIPC / base.ThroughputIPC
		}
		out.NormAVF = append(out.NormAVF, avf/float64(len(mixes)))
		out.NormIPC = append(out.NormIPC, ipc/float64(len(mixes)))
	}
	return out, nil
}

// String renders the threshold sweep.
func (r *ThresholdResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: opt2 Tcache_miss threshold (MIX workloads, normalised)\n")
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "threshold", "IQ AVF", "IPC")
	for i, th := range r.Thresholds {
		name := fmt.Sprint(th)
		if th >= 1<<29 {
			name = "∞ (opt1)"
		}
		fmt.Fprintf(&b, "%-12s %10.3f %10.3f\n", name, r.NormAVF[i], r.NormIPC[i])
	}
	return b.String()
}

// IQSizeResult sweeps the issue-queue size on the baseline machine: AVF and
// IPC both grow with the window, motivating why the paper manages the IQ
// rather than shrinking it.
type IQSizeResult struct {
	Sizes []int
	IPC   []float64 // all-mix mean throughput IPC
	AVF   []float64 // all-mix mean IQ AVF
}

// AblationIQSize sweeps the IQ capacity.
func AblationIQSize(p Params) (*IQSizeResult, error) {
	out := &IQSizeResult{Sizes: []int{32, 64, 96, 128}}
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		for _, size := range out.Sizes {
			m := config.Default()
			m.IQSize = size
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, size),
				Cfg: core.Config{
					Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeBase,
					Policy: pipeline.PolicyICOUNT, MaxInstructions: p.budget(),
					Machine: &m,
				},
			})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}
	for _, size := range out.Sizes {
		var ipc, avf float64
		for _, mix := range workload.Mixes() {
			r := res[key(mix.Name, size)]
			ipc += r.ThroughputIPC
			avf += r.IQAVF
		}
		n := float64(len(workload.Mixes()))
		out.IPC = append(out.IPC, ipc/n)
		out.AVF = append(out.AVF, avf/n)
	}
	return out, nil
}

// String renders the IQ size sweep.
func (r *IQSizeResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: issue queue size (baseline, all-mix means)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "entries", "IPC", "IQ AVF")
	for i, s := range r.Sizes {
		fmt.Fprintf(&b, "%-8d %10.3f %10.4f\n", s, r.IPC[i], r.AVF[i])
	}
	return b.String()
}

// IntervalResult sweeps the control interval for opt1 (the paper settled on
// 10K cycles after its own sensitivity experiments).
type IntervalResult struct {
	Intervals []int
	NormAVF   []float64 // all-mix mean vs baseline
	NormIPC   []float64
}

// AblationInterval sweeps the opt1 control interval.
func AblationInterval(p Params) (*IntervalResult, error) {
	pol := pipeline.PolicyICOUNT
	out := &IntervalResult{Intervals: []int{1000, 5000, 10000, 50000}}
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		cells = append(cells, harness.Cell{
			Key: key(mix.Name, "base"),
			Cfg: core.Config{
				Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeBase,
				Policy: pol, MaxInstructions: p.budget(),
			},
		})
		for _, iv := range out.Intervals {
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, iv),
				Cfg: core.Config{
					Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeVISAOpt1,
					Policy: pol, MaxInstructions: p.budget(), IntervalCycles: iv,
				},
			})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}
	for _, iv := range out.Intervals {
		var avf, ipc float64
		for _, mix := range workload.Mixes() {
			base := res[key(mix.Name, "base")]
			r := res[key(mix.Name, iv)]
			avf += r.IQAVF / base.IQAVF
			ipc += r.ThroughputIPC / base.ThroughputIPC
		}
		n := float64(len(workload.Mixes()))
		out.NormAVF = append(out.NormAVF, avf/n)
		out.NormIPC = append(out.NormIPC, ipc/n)
	}
	return out, nil
}

// String renders the interval sweep.
func (r *IntervalResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: opt1 control interval (all-mix means, normalised)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "cycles", "IQ AVF", "IPC")
	for i, iv := range r.Intervals {
		fmt.Fprintf(&b, "%-10d %10.3f %10.3f\n", iv, r.NormAVF[i], r.NormIPC[i])
	}
	return b.String()
}

// WidthResult sweeps the machine width (fetch/issue/commit) with the FU
// complement scaled proportionally: AVF pressure on the IQ grows with the
// exploited parallelism, the observation that motivates the whole paper.
type WidthResult struct {
	Widths []int
	IPC    []float64 // all-mix mean
	AVF    []float64 // all-mix mean IQ AVF
}

// AblationWidth sweeps the pipeline width.
func AblationWidth(p Params) (*WidthResult, error) {
	out := &WidthResult{Widths: []int{4, 8, 16}}
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		for _, w := range out.Widths {
			m := config.Default()
			scale := func(v int) int { return v * w / 8 }
			m.FetchWidth, m.IssueWidth, m.CommitWidth = w, w, w
			m.IntALUs = scale(m.IntALUs)
			m.IntMulDivs = maxInt(1, scale(m.IntMulDivs))
			m.LoadStores = maxInt(1, scale(m.LoadStores))
			m.FPALUs = maxInt(1, scale(m.FPALUs))
			m.FPMulDivs = maxInt(1, scale(m.FPMulDivs))
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, w),
				Cfg: core.Config{
					Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeBase,
					Policy: pipeline.PolicyICOUNT, MaxInstructions: p.budget(),
					Machine: &m,
				},
			})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}
	for _, w := range out.Widths {
		var ipc, avf float64
		for _, mix := range workload.Mixes() {
			r := res[key(mix.Name, w)]
			ipc += r.ThroughputIPC
			avf += r.IQAVF
		}
		n := float64(len(workload.Mixes()))
		out.IPC = append(out.IPC, ipc/n)
		out.AVF = append(out.AVF, avf/n)
	}
	return out, nil
}

// String renders the width sweep.
func (r *WidthResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: machine width (baseline, all-mix means)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s\n", "width", "IPC", "IQ AVF")
	for i, w := range r.Widths {
		fmt.Fprintf(&b, "%-8d %10.3f %10.4f\n", w, r.IPC[i], r.AVF[i])
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func newAblationTable(title string) *tableWrap {
	return &tableWrap{title: title}
}

// tableWrap is a minimal 5-column table for the per-category ablations.
type tableWrap struct {
	title string
	rows  []string
}

func (t *tableWrap) AddRowf(prec int, name string, vals ...float64) {
	row := fmt.Sprintf("%-14s", name)
	for _, v := range vals {
		row += fmt.Sprintf(" %8.*f", prec, v)
	}
	t.rows = append(t.rows, row)
}

func (t *tableWrap) String() string {
	head := fmt.Sprintf("%-14s %8s %8s %8s %8s", "", "CPU", "MIX", "MEM", "avg")
	return t.title + "\n" + head + "\n" + strings.Join(t.rows, "\n") + "\n"
}

// PredictorResult compares branch direction predictors: prediction quality
// sets the wrong-path occupancy, which dilutes the IQ's ACE density while
// wasting bandwidth. (On this synthetic substrate — bias-driven
// conditionals and geometric loop trips — history is of limited value, so
// bimodal is competitive with gshare; on real code gshare wins.)
type PredictorResult struct {
	Kinds       []config.PredictorKind
	IPC         []float64 // all-mix mean
	AVF         []float64
	MispredRate []float64
}

// AblationPredictor sweeps the direction predictor.
func AblationPredictor(p Params) (*PredictorResult, error) {
	out := &PredictorResult{Kinds: []config.PredictorKind{config.PredGshare, config.PredBimodal}}
	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		for _, k := range out.Kinds {
			m := config.Default()
			m.Branch.Kind = k
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, k),
				Cfg: core.Config{
					Benchmarks: mix.Benchmarks[:], Scheme: core.SchemeBase,
					Policy: pipeline.PolicyICOUNT, MaxInstructions: p.budget(),
					Machine: &m,
				},
			})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}
	for _, k := range out.Kinds {
		var ipc, avf, mr float64
		for _, mix := range workload.Mixes() {
			r := res[key(mix.Name, k)]
			ipc += r.ThroughputIPC
			avf += r.IQAVF
			mr += r.MispredictRate
		}
		n := float64(len(workload.Mixes()))
		out.IPC = append(out.IPC, ipc/n)
		out.AVF = append(out.AVF, avf/n)
		out.MispredRate = append(out.MispredRate, mr/n)
	}
	return out, nil
}

// String renders the predictor comparison.
func (r *PredictorResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: direction predictor (baseline, all-mix means)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %12s\n", "predictor", "IPC", "IQ AVF", "mispredict")
	for i, k := range r.Kinds {
		fmt.Fprintf(&b, "%-10v %10.3f %10.4f %11.1f%%\n", k, r.IPC[i], r.AVF[i], 100*r.MispredRate[i])
	}
	return b.String()
}
