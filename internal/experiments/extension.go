package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/dvm"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// ROBDVMResult evaluates the paper's future-work suggestion ("we believe
// our technique could be extended to other microarchitecture structures"):
// the DVM controller retargeted at the reorder buffer, with an online
// tag-based ROB-AVF estimator driving the same trigger/response machinery.
type ROBDVMResult struct {
	Fracs []float64
	// Indexed [category][frac]: ROB-AVF emergencies before/after, and
	// the throughput cost.
	PVEBase [3][]float64
	PVEDVM  [3][]float64
	ThruDeg [3][]float64
}

// ExtensionROBDVM runs the ROB-DVM threshold sweep under ICOUNT.
func ExtensionROBDVM(p Params) (*ROBDVMResult, error) {
	pol := pipeline.PolicyICOUNT
	base, err := runMixes(p, []core.Scheme{core.SchemeBase}, []pipeline.FetchPolicyKind{pol})
	if err != nil {
		return nil, err
	}

	var cells []harness.Cell
	for _, mix := range workload.Mixes() {
		b := base[key(mix.Name, core.SchemeBase, pol)]
		for _, f := range DVMFracs {
			cells = append(cells, harness.Cell{
				Key: key(mix.Name, "robdvm", f),
				Cfg: core.Config{
					Benchmarks:      mix.Benchmarks[:],
					Scheme:          core.SchemeDVM,
					Policy:          pol,
					MaxInstructions: p.budget(),
					DVMTarget:       f * b.MaxROBAVF,
					DVMStructure:    dvm.StructROB,
				},
			})
		}
	}
	res, err := p.run(cells)
	if err != nil {
		return nil, err
	}

	out := &ROBDVMResult{Fracs: DVMFracs}
	for ci := range workload.Categories() {
		out.PVEBase[ci] = make([]float64, len(DVMFracs))
		out.PVEDVM[ci] = make([]float64, len(DVMFracs))
		out.ThruDeg[ci] = make([]float64, len(DVMFracs))
	}
	for fi, f := range DVMFracs {
		pveB := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			return b.PVEROB(f * b.MaxROBAVF)
		})
		pveD := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			return res[key(mix.Name, "robdvm", f)].PVEROB(f * b.MaxROBAVF)
		})
		thru := categoryMean(func(mix workload.Mix) float64 {
			b := base[key(mix.Name, core.SchemeBase, pol)]
			d := res[key(mix.Name, "robdvm", f)]
			return 100 * (1 - d.ThroughputIPC/b.ThroughputIPC)
		})
		for ci := 0; ci < 3; ci++ {
			out.PVEBase[ci][fi] = pveB[ci]
			out.PVEDVM[ci][fi] = pveD[ci]
			out.ThruDeg[ci][fi] = thru[ci]
		}
	}
	return out, nil
}

// String renders the extension sweep.
func (r *ROBDVMResult) String() string {
	var b strings.Builder
	b.WriteString("Extension: DVM retargeted at the reorder buffer (ICOUNT)\n")
	cats := []string{"CPU", "MIX", "MEM"}
	for ci, cat := range cats {
		fmt.Fprintf(&b, "\n[%s]\n%-14s %12s %12s %12s\n", cat,
			"target", "PVE base", "PVE ROB-DVM", "thru deg %")
		for fi, f := range r.Fracs {
			fmt.Fprintf(&b, "%.1f*MaxROBAVF  %11.1f%% %11.1f%% %12.1f\n",
				f, 100*r.PVEBase[ci][fi], 100*r.PVEDVM[ci][fi], r.ThruDeg[ci][fi])
		}
	}
	return b.String()
}
