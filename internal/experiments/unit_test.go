package experiments

import (
	"testing"

	"visasim/internal/workload"
)

func TestKeyStable(t *testing.T) {
	if key("a", 1, 2.5) != "a/1/2.5" {
		t.Fatalf("key = %q", key("a", 1, 2.5))
	}
	if key() != "" {
		t.Fatal("empty key")
	}
}

func TestParamsBudgetDefault(t *testing.T) {
	if (Params{}).budget() != DefaultBudget {
		t.Fatal("default budget")
	}
	if (Params{Budget: 5}).budget() != 5 {
		t.Fatal("explicit budget")
	}
}

func TestCategoryMean(t *testing.T) {
	// f returns 1 for CPU mixes, 2 for MIX, 3 for MEM.
	vals := categoryMean(func(m workload.Mix) float64 {
		switch m.Category {
		case workload.CatCPU:
			return 1
		case workload.CatMIX:
			return 2
		default:
			return 3
		}
	})
	if vals != [3]float64{1, 2, 3} {
		t.Fatalf("categoryMean = %v", vals)
	}
}

func TestFig1MaxStructure(t *testing.T) {
	r := &Fig1Result{}
	for ci := 0; ci < 3; ci++ {
		r.AVF[ci][0] = 0.5 // IQ
		r.AVF[ci][1] = 0.2
	}
	if r.MaxStructure() != "IQ" {
		t.Fatal("IQ not detected as max")
	}
	r.AVF[1][2] = 0.9 // RF wins in MIX only
	if r.MaxStructure() != "" {
		t.Fatal("disagreeing categories must yield empty winner")
	}
}

func TestDVMFracsMatchPaper(t *testing.T) {
	want := []float64{0.7, 0.6, 0.5, 0.4, 0.3}
	if len(DVMFracs) != len(want) {
		t.Fatal("threshold sweep length")
	}
	for i, f := range want {
		if DVMFracs[i] != f {
			t.Fatalf("frac %d = %v", i, DVMFracs[i])
		}
	}
}
