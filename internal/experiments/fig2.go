package experiments

import (
	"fmt"
	"strings"

	"visasim/internal/core"
	"visasim/internal/pipeline"
	"visasim/internal/stats"
)

// Fig2Result is the joint ready-queue-length / ACE-percentage
// characterisation of the baseline machine on the 4-context CPU workload
// (bzip2, eon, gcc, perlbmk) — the observation that motivates VISA issue.
type Fig2Result struct {
	Hist *stats.RQHistogram
	// MeanLen is the mean ready-queue length; the paper's histogram
	// peaks around 26 with abundant ready instructions relative to the
	// issue width of 8.
	MeanLen float64
	// MeanACEPct is the average ACE share of ready instructions
	// (~60% in the paper).
	MeanACEPct float64
	// FracBelowIssueWidth is the fraction of cycles with fewer ready
	// instructions than the issue width (~10% below 9 in the paper).
	FracBelowIssueWidth float64
	// MaxLen is the largest observed ready-queue length (73 in the
	// paper).
	MaxLen int
}

// Fig2 reproduces Figure 2.
func Fig2(p Params) (*Fig2Result, error) {
	res, err := core.Run(core.Config{
		Benchmarks:      []string{"bzip2", "eon", "gcc", "perlbmk"},
		Scheme:          core.SchemeBase,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: p.budget(),
	})
	if err != nil {
		return nil, err
	}
	h := res.RQHist
	out := &Fig2Result{
		Hist:       h,
		MeanLen:    h.MeanLen(),
		MeanACEPct: h.MeanACEPct(),
		MaxLen:     h.MaxObserved(),
	}
	var below, total uint64
	for l, c := range h.Cycles {
		if l < 9 {
			below += c
		}
		total += c
	}
	if total > 0 {
		out.FracBelowIssueWidth = float64(below) / float64(total)
	}
	return out, nil
}

// String renders the histogram in 4-entry buckets with per-bucket ACE%.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: ready-queue length histogram and ACE%% (CPU group A)\n")
	fmt.Fprintf(&b, "mean RQL %.1f  max %d  ACE%% of ready %.1f  cycles with RQL<9: %.1f%%\n\n",
		r.MeanLen, r.MaxLen, r.MeanACEPct, 100*r.FracBelowIssueWidth)
	fmt.Fprintf(&b, "%-8s %-8s %-8s %s\n", "RQL", "cycles%", "ACE%", "")
	h := r.Hist
	maxFrac := 0.0
	type bucket struct {
		frac, ace float64
	}
	var buckets []bucket
	for lo := 0; lo <= r.MaxLen; lo += 4 {
		var frac, aceSum, cyc float64
		for l := lo; l < lo+4 && l < len(h.Cycles); l++ {
			frac += h.Frac(l)
			aceSum += h.ACEPct(l) * float64(h.Cycles[l])
			cyc += float64(h.Cycles[l])
		}
		ace := 0.0
		if cyc > 0 {
			ace = aceSum / cyc
		}
		buckets = append(buckets, bucket{frac, ace})
		if frac > maxFrac {
			maxFrac = frac
		}
	}
	for i, bk := range buckets {
		bar := ""
		if maxFrac > 0 {
			n := int(bk.frac / maxFrac * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%3d-%-3d  %-8.2f %-8.1f %s\n", i*4, i*4+3, 100*bk.frac, bk.ace, bar)
	}
	return b.String()
}
