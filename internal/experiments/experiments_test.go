package experiments

import (
	"strings"
	"testing"

	"visasim/internal/core"
	"visasim/internal/iqorg"
)

// small returns a budget small enough for CI but large enough to cross
// interval boundaries on slow (MEM) mixes.
func small() Params { return Params{Budget: 60_000} }

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := Fig1(small())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// The paper's headline: the IQ is the reliability hot-spot in every
	// workload category.
	if got := r.MaxStructure(); got != "IQ" {
		t.Errorf("most vulnerable structure = %q, paper says IQ", got)
	}
	for ci := range r.AVF {
		for si := range r.AVF[ci] {
			if v := r.AVF[ci][si]; v < 0 || v > 1 {
				t.Errorf("AVF[%d][%d] = %v", ci, si, v)
			}
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := Fig2(Params{Budget: 120_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// Abundant ready instructions relative to the issue width of 8, and
	// a majority-ACE ready population (paper: ~60%).
	if r.MeanLen < 8 {
		t.Errorf("mean ready-queue length %.1f below issue width", r.MeanLen)
	}
	if r.MaxLen < 24 {
		t.Errorf("max ready-queue length %d suspiciously small", r.MaxLen)
	}
	if r.MeanACEPct < 30 || r.MeanACEPct > 90 {
		t.Errorf("ready-ACE share %.1f%% implausible", r.MeanACEPct)
	}
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := Table1(Params{Budget: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if len(r.Benchmarks) != 18 {
		t.Fatalf("%d benchmarks", len(r.Benchmarks))
	}
	// Paper: average ~93%, spread 74.9%–99.9%; squashed-inclusive ~83%.
	if r.Average < 0.82 || r.Average > 0.99 {
		t.Errorf("average accuracy %.3f, paper ~0.93", r.Average)
	}
	if r.SquashedInclusive >= r.Average {
		t.Error("squashed instructions must reduce accuracy")
	}
	if r.SquashedInclusive < 0.65 {
		t.Errorf("squashed-inclusive accuracy %.3f too low", r.SquashedInclusive)
	}
}

func TestTables2And3Render(t *testing.T) {
	if !strings.Contains(Table2(), "96") || !strings.Contains(Table2(), "Gshare") {
		t.Error("Table 2 misses configuration rows")
	}
	t3 := Table3()
	for _, want := range []string{"CPU", "MIX", "MEM", "bzip2", "mcf"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := Fig5(Params{Budget: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// Scheme indices: 0=visa, 1=+opt1, 2=+opt2.
	// VISA alone: small effect (paper −5% AVF, +1% IPC).
	if red := r.AvgAVFReduction(0); red < -0.15 || red > 0.3 {
		t.Errorf("VISA AVF reduction %.2f outside small-effect band", red)
	}
	// opt1: strong AVF cut, real IPC cost on MIX/MEM.
	if r.AvgAVFReduction(1) < 0.2 {
		t.Errorf("opt1 AVF reduction %.2f too small", r.AvgAVFReduction(1))
	}
	if r.NormIPC[1][1] > 0.95 && r.NormIPC[1][2] > 0.95 {
		t.Error("opt1 should cost IPC on MIX/MEM (paper §4)")
	}
	// opt2: large AVF cut at near-baseline IPC (paper: −48%, +1%).
	if r.AvgAVFReduction(2) < 0.1 {
		t.Errorf("opt2 AVF reduction %.2f too small", r.AvgAVFReduction(2))
	}
	if ipc := r.AvgIPCChange(2); ipc < -0.10 || ipc > 0.25 {
		t.Errorf("opt2 IPC change %.2f not near baseline", ipc)
	}
	// opt2 must dominate opt1's performance on MIX/MEM.
	if r.NormIPC[2][1] <= r.NormIPC[1][1] || r.NormIPC[2][2] <= r.NormIPC[1][2] {
		t.Error("opt2 does not recover opt1's MIX/MEM performance loss")
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := Fig8(Params{Budget: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	for ci := 0; ci < 3; ci++ {
		for fi := range r.Fracs {
			base, dvm := r.PVEBase[ci][fi], r.PVEDVM[ci][fi]
			if dvm > base+1e-9 {
				t.Errorf("cat %d frac %v: DVM PVE %.2f above baseline %.2f",
					ci, r.Fracs[fi], dvm, base)
			}
		}
		// DVM eliminates the majority of emergencies at the middle
		// threshold (paper: to ~1%).
		if r.PVEBase[ci][2] > 0.2 && r.PVEDVM[ci][2] > 0.5*r.PVEBase[ci][2] {
			t.Errorf("cat %d: DVM PVE %.2f vs base %.2f at 0.5*MaxAVF",
				ci, r.PVEDVM[ci][2], r.PVEBase[ci][2])
		}
	}
	if r.MeanRatio <= 0 {
		t.Error("mean wq_ratio not recorded")
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := Fig10(Params{Budget: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// Aggregate PVE across categories and thresholds per scheme: the
	// open-loop schemes cannot manage runtime vulnerability; dynamic
	// DVM must beat them, and the static variant must sit in between
	// open-loop and dynamic.
	var agg [5]float64
	for si := 0; si < 5; si++ {
		for ci := 0; ci < 3; ci++ {
			for fi := range r.Fracs {
				agg[si] += r.PVE[si][ci][fi]
			}
		}
	}
	openLoop := (agg[0] + agg[1] + agg[2]) / 3
	if agg[4] >= openLoop {
		t.Errorf("dynamic DVM PVE %.2f not below open-loop schemes %.2f", agg[4], openLoop)
	}
	if agg[4] > agg[3]+1e-9 {
		t.Errorf("dynamic DVM PVE %.2f above static variant %.2f", agg[4], agg[3])
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	p := Params{Budget: 50_000}

	oracle, err := AblationOracleTags(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + oracle.String())

	tc, err := AblationTcache(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tc.String())
	// An infinite threshold degenerates opt2 into opt1: it must cost
	// more IPC on MIX than the paper's finite threshold.
	last := len(tc.Thresholds) - 1
	if tc.NormIPC[last] >= tc.NormIPC[2] {
		t.Errorf("opt1-degenerate IPC %.3f not below Tcache=16's %.3f",
			tc.NormIPC[last], tc.NormIPC[2])
	}

	iq, err := AblationIQSize(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + iq.String())
	// Bigger windows expose more ILP: IPC must not shrink with size.
	if iq.IPC[len(iq.IPC)-1] < iq.IPC[0] {
		t.Errorf("IPC fell from %.3f to %.3f as the IQ grew", iq.IPC[0], iq.IPC[len(iq.IPC)-1])
	}

	ivl, err := AblationInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + ivl.String())

	win, err := AblationWindow(Params{Budget: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + win.String())
	// Windows shorter than typical value lifetimes inflate the ACE
	// fraction via the conservative exit rule.
	if win.ACEFrac[0] <= win.ACEFrac[2] {
		t.Errorf("2K window ACE fraction %.3f not above 40K's %.3f",
			win.ACEFrac[0], win.ACEFrac[2])
	}
}

func TestExtensionROBDVM(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := ExtensionROBDVM(Params{Budget: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// The retargeted controller must reduce ROB emergencies wherever the
	// baseline has a meaningful number of them.
	for ci := 0; ci < 3; ci++ {
		for fi := range r.Fracs {
			if r.PVEBase[ci][fi] > 0.3 && r.PVEDVM[ci][fi] > r.PVEBase[ci][fi]*0.8 {
				t.Errorf("cat %d frac %v: ROB-DVM PVE %.2f vs base %.2f",
					ci, r.Fracs[fi], r.PVEDVM[ci][fi], r.PVEBase[ci][fi])
			}
		}
	}
}

func TestAblationWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := AblationWidth(Params{Budget: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if r.IPC[2] <= r.IPC[0] {
		t.Errorf("16-wide IPC %.2f not above 4-wide %.2f", r.IPC[2], r.IPC[0])
	}
}

func TestAblationPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := AblationPredictor(Params{Budget: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	// No direction assertion: on this synthetic substrate (bias-driven
	// conditionals, geometric loop trips) history can hurt as much as it
	// helps. Both predictors must simply be in a plausible band.
	for i, mr := range r.MispredRate {
		if mr < 0.01 || mr > 0.35 {
			t.Errorf("%v mispredict rate %.3f implausible", r.Kinds[i], mr)
		}
	}
}

func TestIQMatrixShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r, err := IQMatrix(Params{Budget: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())
	if want := len(r.Mixes) * len(r.Orgs) * len(r.Prots) * len(r.Schemes); len(r.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(r.Cells), want)
	}
	for _, mix := range r.Mixes {
		// The default corner must behave like the unadorned scheme runs,
		// and every protection must leave the baseline scheme with no more
		// residual vulnerability than the unprotected queue.
		unp := r.cell(mix, iqorg.UnifiedAGE, iqorg.None, core.SchemeBase)
		if unp == nil || unp.IPC <= 0 {
			t.Fatalf("%s: missing or implausible default cell", mix)
		}
		for _, prot := range []iqorg.Protection{iqorg.Parity, iqorg.ECC, iqorg.PartialReplication} {
			c := r.cell(mix, iqorg.UnifiedAGE, prot, core.SchemeBase)
			if c.IQAVF >= unp.IQAVF {
				t.Errorf("%s/%v: residual AVF %.4f not below unprotected %.4f",
					mix, prot, c.IQAVF, unp.IQAVF)
			}
			if c.AreaExtra <= 0 {
				t.Errorf("%s/%v: protection reported no area cost", mix, prot)
			}
		}
		// Protected queues need less DVM throttling at the same absolute
		// target.
		dvmU := r.cell(mix, iqorg.UnifiedAGE, iqorg.None, core.SchemeDVM)
		dvmP := r.cell(mix, iqorg.UnifiedAGE, iqorg.Parity, core.SchemeDVM)
		if dvmU.DVMTriggers > 0 && dvmP.DVMTriggers > dvmU.DVMTriggers {
			t.Errorf("%s: parity increased DVM triggers (%d -> %d)",
				mix, dvmU.DVMTriggers, dvmP.DVMTriggers)
		}
	}
}
