// Package dvm implements the paper's Dynamic Vulnerability Management (§5):
// a feedback controller that keeps the issue queue's runtime AVF below a
// pre-set reliability target while minimising performance loss.
//
// Mechanism (Figure 7):
//
//   - an ACE-bit counter estimates the online IQ AVF; it is sampled five
//     times per 10K-cycle interval and compared against a trigger threshold
//     set to 90% of the reliability target;
//   - an L2 cache miss immediately enables the response mechanism
//     (dispatch for the missing thread is throttled, because dependent ACE
//     bits would otherwise sit in the IQ for hundreds of cycles);
//   - above the trigger, wq_ratio — the permitted ratio of waiting to ready
//     instructions in the IQ — is decreased rapidly; below it, increased
//     slowly. The implied waiting-instruction cap is recomputed every 50
//     cycles (the integer division the paper mentions);
//   - if every thread is dispatch-gated, dispatch is restored for the
//     thread with the fewest ACE-tagged instructions in its fetch queue
//     whenever the online AVF drops below the trigger: un-ACE instructions
//     add little vulnerability but keep exploiting ILP.
package dvm

import "visasim/internal/pipeline"

// Tunables (paper values where stated; otherwise chosen by the sensitivity
// sweeps in the bench suite).
const (
	// TriggerFraction: trigger threshold = 0.9 × reliability target.
	TriggerFraction = 0.9
	// RatioComputeCycles: the waiting cap is recomputed every 50 cycles.
	RatioComputeCycles = 50
	// MaxRatio bounds wq_ratio; an unconstrained IQ runs at roughly 2
	// waiting instructions per ready one, so 4 is effectively "off".
	MaxRatio = 4.0
	// MinRatio keeps the machine alive under the most aggressive
	// targets.
	MinRatio = 0.05
	// IncreaseStep is the slow additive recovery per sample below
	// trigger.
	IncreaseStep = 0.3
	// DecreaseFactor is the rapid multiplicative cut per sample above
	// trigger.
	DecreaseFactor = 0.6
)

// Structure selects which hardware structure a controller manages. The
// paper evaluates the IQ and suggests the technique extends to other
// structures; StructROB implements that extension for the reorder buffer.
type Structure uint8

// Managed structures.
const (
	StructIQ Structure = iota
	StructROB
)

func (s Structure) String() string {
	if s == StructROB {
		return "rob"
	}
	return "iq"
}

// Controller implements pipeline.Controller for DVM.
type Controller struct {
	// Target is the absolute AVF reliability target for the managed
	// structure (the paper expresses it as a fraction of the baseline's
	// maximum interval AVF).
	Target float64
	// Struct selects the managed structure (the IQ by default).
	Struct Structure
	// Static, when true, freezes wq_ratio at StaticRatio (the paper's
	// "DVM (static ratio)" comparison variant).
	Static      bool
	StaticRatio float64

	ratio      float64
	waitingCap int
	lastSample int
	lastRatioC uint64
	name       string

	ratioSum     float64
	ratioSamples uint64
}

// New returns a dynamic-ratio DVM controller for the given absolute AVF
// target.
func New(target float64) *Controller {
	return &Controller{
		Target:     target,
		ratio:      MaxRatio,
		waitingCap: -1,
		lastSample: -1,
		name:       "dvm",
	}
}

// NewStatic returns the static-ratio variant: the response mechanisms are
// identical but wq_ratio stays fixed.
func NewStatic(target, ratio float64) *Controller {
	c := New(target)
	c.Static = true
	c.StaticRatio = ratio
	c.ratio = ratio
	c.name = "dvm-static"
	return c
}

// Name implements pipeline.Controller.
func (c *Controller) Name() string { return c.name }

// Ratio exposes the current wq_ratio (tests, and the harness uses the
// dynamic variant's mean to configure the static one, as the paper does).
func (c *Controller) Ratio() float64 { return c.ratio }

// MeanRatio returns the average wq_ratio over the run — the paper sets the
// static variant's ratio to this value.
func (c *Controller) MeanRatio() float64 {
	if c.ratioSamples == 0 {
		return c.ratio
	}
	return c.ratioSum / float64(c.ratioSamples)
}

// trigger returns the trigger threshold.
func (c *Controller) trigger() float64 { return TriggerFraction * c.Target }

// estimates returns the managed structure's sampled and interval-so-far
// tag-AVF estimates.
func (c *Controller) estimates(v *pipeline.View) (sample, soFar float64) {
	if c.Struct == StructROB {
		return v.SampleROBAVFTag, v.IntervalROBAVFTagSoFar
	}
	return v.SampleAVFTag, v.IntervalAVFTagSoFar
}

// Decide implements pipeline.Controller.
func (c *Controller) Decide(v *pipeline.View) pipeline.Decision {
	d := pipeline.NoDecision()
	sample, soFar := c.estimates(v)

	// Adapt wq_ratio on each fresh fine-grained AVF sample: rapid
	// decrease above trigger, slow increase below.
	if v.SampleIndex != c.lastSample {
		c.lastSample = v.SampleIndex
		c.ratioSum += c.ratio
		c.ratioSamples++
		if !c.Static {
			if sample > c.trigger() {
				c.ratio *= DecreaseFactor
				if c.ratio < MinRatio {
					c.ratio = MinRatio
				}
			} else {
				c.ratio += IncreaseStep
				if c.ratio > MaxRatio {
					c.ratio = MaxRatio
				}
			}
		}
	}

	// The waiting cap (wq_ratio × ready instructions) involves a
	// division, performed once every 50 cycles.
	if v.Cycle-c.lastRatioC >= RatioComputeCycles || c.waitingCap < 0 {
		c.lastRatioC = v.Cycle
		ready := v.ReadyLen
		if ready < 1 {
			ready = 1
		}
		c.waitingCap = int(c.ratio * float64(ready))
		if c.waitingCap < 1 {
			c.waitingCap = 1
		}
		if c.waitingCap > v.IQSize {
			c.waitingCap = v.IQSize
		}
	}

	// Engage the response mechanisms only while the estimated AVF is
	// near the target; far below it the IQ runs unmanaged. (Throttling
	// outside emergencies is what the paper's performance numbers rule
	// out: DVM must be near-free when the machine is already safe.)
	responding := soFar > c.trigger()
	if responding {
		d.WaitingCap = c.waitingCap
	}

	// During an emergency, an L2 miss immediately extends the response:
	// dispatch for threads with outstanding misses is throttled, since
	// their dependents would park ACE bits in the IQ for hundreds of
	// cycles.
	gatedAll := true
	anyGated := false
	for i := 0; i < v.NumThreads; i++ {
		if responding && v.OutstandingL2[i] > 0 {
			d.GateDispatch[i] = true
			anyGated = true
		} else {
			gatedAll = false
		}
	}

	// Restore dispatch for the thread with the fewest ACE-tagged
	// instructions in its fetch queue when the online AVF is below
	// trigger, so an all-threads-stalled machine keeps making progress.
	if anyGated && sample < c.trigger() {
		if gatedAll || sample < 0.5*c.trigger() {
			best := -1
			for i := 0; i < v.NumThreads; i++ {
				if !d.GateDispatch[i] {
					continue
				}
				if best < 0 || v.FetchQACETag[i] < v.FetchQACETag[best] {
					best = i
				}
			}
			if best >= 0 {
				d.GateDispatch[best] = false
			}
		}
	}
	return d
}
