package dvm

import (
	"math"
	"testing"

	"visasim/internal/pipeline"
)

func baseView() *pipeline.View {
	return &pipeline.View{
		NumThreads: 4,
		IQSize:     96,
		ReadyLen:   10,
	}
}

func TestRatioDecreasesOnEmergency(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.5 // above trigger 0.36
	c.Decide(v)
	if c.Ratio() >= MaxRatio {
		t.Fatalf("ratio %v did not decrease", c.Ratio())
	}
	prev := c.Ratio()
	v.SampleIndex = 2
	c.Decide(v)
	if c.Ratio() >= prev {
		t.Fatal("ratio did not keep decreasing")
	}
}

func TestRatioRecoversSlowly(t *testing.T) {
	c := New(0.4)
	v := baseView()
	// Crash the ratio first.
	for i := 1; i <= 6; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 0.9
		c.Decide(v)
	}
	low := c.Ratio()
	// Recovery step must be additive and smaller than the cut.
	v.SampleIndex = 7
	v.SampleAVFTag = 0.0
	c.Decide(v)
	if c.Ratio() != low+IncreaseStep {
		t.Fatalf("recovery %v -> %v, want +%v", low, c.Ratio(), IncreaseStep)
	}
}

func TestRatioBounds(t *testing.T) {
	c := New(0.1)
	v := baseView()
	for i := 1; i < 100; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 1
		c.Decide(v)
	}
	if c.Ratio() < MinRatio {
		t.Fatalf("ratio %v below floor", c.Ratio())
	}
	for i := 100; i < 300; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 0
		c.Decide(v)
	}
	if c.Ratio() > MaxRatio {
		t.Fatalf("ratio %v above ceiling", c.Ratio())
	}
}

func TestWaitingCapFollowsReadyLen(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.39 // emergency: responding
	v.IntervalAVFTagSoFar = 0.39
	v.ReadyLen = 10
	d := c.Decide(v)
	if d.WaitingCap < 1 || d.WaitingCap > v.IQSize {
		t.Fatalf("waiting cap %d out of range", d.WaitingCap)
	}
	// Recomputed only every RatioComputeCycles.
	v.Cycle = 10
	v.ReadyLen = 40
	d2 := c.Decide(v)
	if d2.WaitingCap != d.WaitingCap {
		t.Fatal("waiting cap recomputed too early")
	}
	v.Cycle = RatioComputeCycles + 1
	d3 := c.Decide(v)
	if d3.WaitingCap == d.WaitingCap {
		t.Fatal("waiting cap never recomputed")
	}
}

func TestL2MissGatesDispatch(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.OutstandingL2[1] = 2
	v.SampleAVFTag = 0.9 // above trigger: no restore
	v.IntervalAVFTagSoFar = 0.9
	d := c.Decide(v)
	if !d.GateDispatch[1] {
		t.Fatal("missing thread not gated")
	}
	if d.GateDispatch[0] || d.GateDispatch[2] {
		t.Fatal("clean threads gated")
	}
}

func TestRestoreFewestACEWhenAllGated(t *testing.T) {
	c := New(0.4)
	v := baseView()
	for i := 0; i < 4; i++ {
		v.OutstandingL2[i] = 1
	}
	v.FetchQACETag = [8]int32{5, 2, 9, 7}
	v.IntervalAVFTagSoFar = 0.5 // emergency interval...
	v.SampleAVFTag = 0.1        // ...but the latest sample is safe: restore one
	d := c.Decide(v)
	ungated := -1
	for i := 0; i < 4; i++ {
		if !d.GateDispatch[i] {
			if ungated >= 0 {
				t.Fatal("more than one thread restored")
			}
			ungated = i
		}
	}
	if ungated != 1 {
		t.Fatalf("restored thread %d, want 1 (fewest ACE tags)", ungated)
	}
}

func TestNoRestoreAboveTrigger(t *testing.T) {
	c := New(0.4)
	v := baseView()
	for i := 0; i < 4; i++ {
		v.OutstandingL2[i] = 1
	}
	v.SampleAVFTag = 0.39 // above trigger (0.36)
	v.IntervalAVFTagSoFar = 0.39
	d := c.Decide(v)
	for i := 0; i < 4; i++ {
		if !d.GateDispatch[i] {
			t.Fatal("thread restored during emergency")
		}
	}
}

func TestStaticRatioFrozen(t *testing.T) {
	c := NewStatic(0.4, 1.5)
	v := baseView()
	for i := 1; i < 20; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 0.9
		c.Decide(v)
	}
	if c.Ratio() != 1.5 {
		t.Fatalf("static ratio drifted to %v", c.Ratio())
	}
	if c.Name() != "dvm-static" || New(0.1).Name() != "dvm" {
		t.Fatal("names wrong")
	}
}

// TestTriggerThresholdBoundary pins the strict inequalities around the
// trigger (0.9 × target): a sample exactly AT the trigger is below the
// emergency (ratio recovers, no throttle), and only strictly above it does
// the ratio cut and the waiting cap engage. Off-by-one drift here changes
// when every DVM response in the simulator fires.
func TestTriggerThresholdBoundary(t *testing.T) {
	const target = 0.4
	trig := New(target).trigger()

	// Exactly at trigger: `sample > trigger` is false → slow increase path
	// (clamped at MaxRatio here), and `soFar > trigger` is false → no cap.
	c := New(target)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = trig
	v.IntervalAVFTagSoFar = trig
	d := c.Decide(v)
	if c.Ratio() != MaxRatio {
		t.Fatalf("ratio cut at exactly the trigger: %v", c.Ratio())
	}
	if d.WaitingCap >= 0 {
		t.Fatalf("waiting cap %d engaged at exactly the trigger", d.WaitingCap)
	}

	// The smallest float strictly above: both responses engage.
	c = New(target)
	v = baseView()
	v.SampleIndex = 1
	above := math.Nextafter(trig, 1)
	v.SampleAVFTag = above
	v.IntervalAVFTagSoFar = above
	d = c.Decide(v)
	if c.Ratio() >= MaxRatio {
		t.Fatalf("ratio %v not cut just above the trigger", c.Ratio())
	}
	if d.WaitingCap < 0 {
		t.Fatal("waiting cap not engaged just above the trigger")
	}
}

// TestROBStructureUsesROBEstimates pins the ROB extension's input selection:
// a StructROB controller must decide from the ROB tag-AVF estimates and
// ignore the IQ ones.
func TestROBStructureUsesROBEstimates(t *testing.T) {
	c := New(0.4)
	c.Struct = StructROB
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.9        // IQ estimate screams emergency...
	v.IntervalAVFTagSoFar = 0.9 // ...but the managed structure is the ROB
	v.SampleROBAVFTag = 0.0
	v.IntervalROBAVFTagSoFar = 0.0
	d := c.Decide(v)
	if c.Ratio() != MaxRatio {
		t.Fatalf("ROB controller reacted to IQ estimates (ratio %v)", c.Ratio())
	}
	if d.WaitingCap >= 0 {
		t.Fatal("ROB controller throttled on IQ estimates")
	}

	v.SampleIndex = 2
	v.SampleROBAVFTag = 0.9
	v.IntervalROBAVFTagSoFar = 0.9
	d = c.Decide(v)
	if c.Ratio() >= MaxRatio {
		t.Fatal("ROB controller ignored ROB emergency")
	}
	if d.WaitingCap < 0 {
		t.Fatal("ROB controller did not throttle on ROB emergency")
	}
	if StructROB.String() != "rob" || StructIQ.String() != "iq" {
		t.Fatal("structure names wrong")
	}
}

// TestWaitingCapClamps pins the cap's bounds: at least 1, at most IQSize.
func TestWaitingCapClamps(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.9
	v.IntervalAVFTagSoFar = 0.9
	v.ReadyLen = 0 // ratio × max(ready,1) after heavy cuts → floor of 1
	for i := 1; i <= 20; i++ {
		v.SampleIndex = i
		v.Cycle += RatioComputeCycles
		if d := c.Decide(v); d.WaitingCap < 1 {
			t.Fatalf("waiting cap %d below floor", d.WaitingCap)
		}
	}

	c = New(0.4)
	v = baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.37 // just above trigger: one mild cut, ratio stays high
	v.IntervalAVFTagSoFar = 0.37
	v.ReadyLen = 96 // MaxRatio × 96 ≫ IQSize
	if d := c.Decide(v); d.WaitingCap > v.IQSize {
		t.Fatalf("waiting cap %d above IQ size %d", d.WaitingCap, v.IQSize)
	}
}

func TestMeanRatio(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0 // stays at MaxRatio
	c.Decide(v)
	if got := c.MeanRatio(); got != MaxRatio {
		t.Fatalf("mean ratio %v", got)
	}
}
