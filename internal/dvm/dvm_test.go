package dvm

import (
	"testing"

	"visasim/internal/pipeline"
)

func baseView() *pipeline.View {
	return &pipeline.View{
		NumThreads: 4,
		IQSize:     96,
		ReadyLen:   10,
	}
}

func TestRatioDecreasesOnEmergency(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.5 // above trigger 0.36
	c.Decide(v)
	if c.Ratio() >= MaxRatio {
		t.Fatalf("ratio %v did not decrease", c.Ratio())
	}
	prev := c.Ratio()
	v.SampleIndex = 2
	c.Decide(v)
	if c.Ratio() >= prev {
		t.Fatal("ratio did not keep decreasing")
	}
}

func TestRatioRecoversSlowly(t *testing.T) {
	c := New(0.4)
	v := baseView()
	// Crash the ratio first.
	for i := 1; i <= 6; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 0.9
		c.Decide(v)
	}
	low := c.Ratio()
	// Recovery step must be additive and smaller than the cut.
	v.SampleIndex = 7
	v.SampleAVFTag = 0.0
	c.Decide(v)
	if c.Ratio() != low+IncreaseStep {
		t.Fatalf("recovery %v -> %v, want +%v", low, c.Ratio(), IncreaseStep)
	}
}

func TestRatioBounds(t *testing.T) {
	c := New(0.1)
	v := baseView()
	for i := 1; i < 100; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 1
		c.Decide(v)
	}
	if c.Ratio() < MinRatio {
		t.Fatalf("ratio %v below floor", c.Ratio())
	}
	for i := 100; i < 300; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 0
		c.Decide(v)
	}
	if c.Ratio() > MaxRatio {
		t.Fatalf("ratio %v above ceiling", c.Ratio())
	}
}

func TestWaitingCapFollowsReadyLen(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0.39 // emergency: responding
	v.IntervalAVFTagSoFar = 0.39
	v.ReadyLen = 10
	d := c.Decide(v)
	if d.WaitingCap < 1 || d.WaitingCap > v.IQSize {
		t.Fatalf("waiting cap %d out of range", d.WaitingCap)
	}
	// Recomputed only every RatioComputeCycles.
	v.Cycle = 10
	v.ReadyLen = 40
	d2 := c.Decide(v)
	if d2.WaitingCap != d.WaitingCap {
		t.Fatal("waiting cap recomputed too early")
	}
	v.Cycle = RatioComputeCycles + 1
	d3 := c.Decide(v)
	if d3.WaitingCap == d.WaitingCap {
		t.Fatal("waiting cap never recomputed")
	}
}

func TestL2MissGatesDispatch(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.OutstandingL2[1] = 2
	v.SampleAVFTag = 0.9 // above trigger: no restore
	v.IntervalAVFTagSoFar = 0.9
	d := c.Decide(v)
	if !d.GateDispatch[1] {
		t.Fatal("missing thread not gated")
	}
	if d.GateDispatch[0] || d.GateDispatch[2] {
		t.Fatal("clean threads gated")
	}
}

func TestRestoreFewestACEWhenAllGated(t *testing.T) {
	c := New(0.4)
	v := baseView()
	for i := 0; i < 4; i++ {
		v.OutstandingL2[i] = 1
	}
	v.FetchQACETag = [8]int32{5, 2, 9, 7}
	v.IntervalAVFTagSoFar = 0.5 // emergency interval...
	v.SampleAVFTag = 0.1        // ...but the latest sample is safe: restore one
	d := c.Decide(v)
	ungated := -1
	for i := 0; i < 4; i++ {
		if !d.GateDispatch[i] {
			if ungated >= 0 {
				t.Fatal("more than one thread restored")
			}
			ungated = i
		}
	}
	if ungated != 1 {
		t.Fatalf("restored thread %d, want 1 (fewest ACE tags)", ungated)
	}
}

func TestNoRestoreAboveTrigger(t *testing.T) {
	c := New(0.4)
	v := baseView()
	for i := 0; i < 4; i++ {
		v.OutstandingL2[i] = 1
	}
	v.SampleAVFTag = 0.39 // above trigger (0.36)
	v.IntervalAVFTagSoFar = 0.39
	d := c.Decide(v)
	for i := 0; i < 4; i++ {
		if !d.GateDispatch[i] {
			t.Fatal("thread restored during emergency")
		}
	}
}

func TestStaticRatioFrozen(t *testing.T) {
	c := NewStatic(0.4, 1.5)
	v := baseView()
	for i := 1; i < 20; i++ {
		v.SampleIndex = i
		v.SampleAVFTag = 0.9
		c.Decide(v)
	}
	if c.Ratio() != 1.5 {
		t.Fatalf("static ratio drifted to %v", c.Ratio())
	}
	if c.Name() != "dvm-static" || New(0.1).Name() != "dvm" {
		t.Fatal("names wrong")
	}
}

func TestMeanRatio(t *testing.T) {
	c := New(0.4)
	v := baseView()
	v.SampleIndex = 1
	v.SampleAVFTag = 0 // stays at MaxRatio
	c.Decide(v)
	if got := c.MeanRatio(); got != MaxRatio {
		t.Fatalf("mean ratio %v", got)
	}
}
