package program

import (
	"testing"
	"testing/quick"

	"visasim/internal/isa"
)

// testParams returns a small valid parameter set.
func testParams(seed uint64) Params {
	return Params{
		Name:          "test",
		Seed:          seed,
		StaticInstrs:  800,
		Phases:        2,
		LoopsPerPhase: 2,
		LoopNestProb:  0.4,
		TripMean:      12,
		BlockLen:      6,
		IfProb:        0.4,
		IfBiasMean:    0.85,
		IfBiasSpread:  0.1,
		Routines:      2,
		CallProb:      0.5,
		Mix:           KindMix{IntALU: 0.5, Load: 0.25, Store: 0.12, Nop: 0.05, IntMul: 0.03},
		DepMean:       5,
		IndepFrac:     0.2,
		DeadFrac:      0.15,
		AccumFrac:     0.05,
		Mem: MemParams{
			LoadBufBytes: 512,
			OutBufBytes:  1 << 20,
			CommBufBytes: 512,
			TempFrac:     0.2,
			CommFrac:     0.3,
			StrideBytes:  8,
			RandomFrac:   0.05,
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(testParams(1))
	b := MustGenerate(testParams(1))
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
	if len(a.Streams) != len(b.Streams) || len(a.Branches) != len(b.Branches) {
		t.Fatal("metadata differs")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(testParams(1))
	b := MustGenerate(testParams(2))
	same := 0
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if a.Instrs[i] == b.Instrs[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGenerateValidates(t *testing.T) {
	p := MustGenerate(testParams(3))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() < testParams(3).StaticInstrs/2 {
		t.Fatalf("program too small: %d", p.Len())
	}
}

func TestParamErrors(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.StaticInstrs = 10 },
		func(p *Params) { p.Phases = 0 },
		func(p *Params) { p.TripMean = 0.5 },
		func(p *Params) { p.Mix = KindMix{} },
		func(p *Params) { p.DepMean = 0 },
		func(p *Params) { p.Mem.LoadBufBytes = 8 },
		func(p *Params) { p.Mem.StrideBytes = 0 },
		func(p *Params) { p.Mem.TempFrac = 0.8; p.Mem.CommFrac = 0.8 },
	}
	for i, mut := range mutations {
		p := testParams(1)
		p.Mix = KindMix{IntALU: 1, Load: 0.3, Store: 0.1}
		mut(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("mutation %d generated but should error", i)
		}
	}
}

func TestScratchNeverSourced(t *testing.T) {
	p := testParams(4)
	p.Mix = KindMix{IntALU: 0.5, Load: 0.25, Store: 0.12, Nop: 0.05}
	prog := MustGenerate(p)
	for i, in := range prog.Instrs {
		for _, r := range [2]isa.Reg{in.Src1, in.Src2} {
			if r >= scratchBase && r < scratchBase+scratchCount {
				t.Fatalf("instr %d sources scratch register %v", i, r)
			}
		}
	}
}

func TestControlTargetsInImage(t *testing.T) {
	p := testParams(5)
	p.Mix = KindMix{IntALU: 0.5, Load: 0.25, Store: 0.12, Nop: 0.05}
	prog := MustGenerate(p)
	end := CodeBase + uint64(prog.Len())*isa.InstBytes
	branches, loops := 0, 0
	for _, in := range prog.Instrs {
		if !in.Kind.IsControl() || in.Kind == isa.Return {
			continue
		}
		if in.Target < CodeBase || in.Target >= end {
			t.Fatalf("target %#x outside image", in.Target)
		}
		if in.Kind == isa.Branch {
			branches++
			if prog.Branch(&in).Class == BranchLoop {
				loops++
				if in.Target >= in.PC {
					t.Fatalf("loop back-edge at %#x targets forward %#x", in.PC, in.Target)
				}
			} else if in.Target <= in.PC {
				t.Fatalf("if-branch at %#x targets backward %#x", in.PC, in.Target)
			}
		}
	}
	if branches == 0 || loops == 0 {
		t.Fatalf("no branches (%d) or loops (%d) generated", branches, loops)
	}
}

func TestIndexOfRoundTrip(t *testing.T) {
	p := testParams(6)
	p.Mix = KindMix{IntALU: 1}
	prog := MustGenerate(p)
	for i := 0; i < prog.Len(); i += 17 {
		if got := prog.IndexOf(prog.PCOf(i)); got != i {
			t.Fatalf("IndexOf(PCOf(%d)) = %d", i, got)
		}
	}
	// Wrapping: out-of-image PCs stay in range.
	for _, pc := range []uint64{0, CodeBase - 4, CodeBase + uint64(prog.Len())*4, 1 << 60} {
		idx := prog.IndexOf(pc)
		if idx < 0 || idx >= prog.Len() {
			t.Fatalf("IndexOf(%#x) = %d out of range", pc, idx)
		}
	}
}

func TestStreamsDisjointBuffers(t *testing.T) {
	p := testParams(7)
	p.Mix = KindMix{IntALU: 0.5, Load: 0.3, Store: 0.15}
	prog := MustGenerate(p)
	if len(prog.Streams) == 0 {
		t.Fatal("no streams generated")
	}
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for _, s := range prog.Streams {
		ivs = append(ivs, iv{s.Base, s.Base + s.Mask})
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			a, b := ivs[i], ivs[j]
			if a.lo == b.lo && a.hi == b.hi {
				continue // the shared temp stream id is reused, not duplicated
			}
			if a.lo <= b.hi && b.lo <= a.hi {
				t.Fatalf("streams %d and %d overlap: [%#x,%#x] vs [%#x,%#x]",
					i, j, a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

func TestMemPatternsAssigned(t *testing.T) {
	p := testParams(8)
	p.Mix = KindMix{IntALU: 0.5, Load: 0.3, Store: 0.15}
	prog := MustGenerate(p)
	loads, stores := 0, 0
	for _, in := range prog.Instrs {
		switch in.Kind {
		case isa.Load:
			loads++
			if in.MemPattern == 0 {
				t.Fatal("load without stream")
			}
		case isa.Store:
			stores++
			if in.MemPattern == 0 {
				t.Fatal("store without stream")
			}
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatalf("loads=%d stores=%d", loads, stores)
	}
}

// Property: any parameter point in a reasonable envelope generates a
// program that passes Validate.
func TestQuickGenerateAlwaysValid(t *testing.T) {
	f := func(seed uint64, trip, block, dead uint8) bool {
		p := testParams(seed)
		p.Mix = KindMix{IntALU: 0.5, Load: 0.25, Store: 0.12, Nop: 0.05}
		p.TripMean = 2 + float64(trip%60)
		p.BlockLen = 2 + int(block%16)
		p.DeadFrac = float64(dead%50) / 100
		prog, err := Generate(p)
		if err != nil {
			return false
		}
		return prog.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
