package program

import (
	"fmt"

	"visasim/internal/isa"
	"visasim/internal/rng"
)

// KindMix weights the non-control instruction classes emitted inside basic
// blocks. Weights need not sum to 1; they are normalised. Branches, jumps,
// calls and returns are placed structurally by the CFG builder, not drawn
// from the mix. The generator budgets draws by *expected dynamic execution
// weight* (loop trip products), so the dynamic instruction mix tracks these
// weights even though loops amplify some static instructions by orders of
// magnitude.
type KindMix struct {
	IntALU float64
	IntMul float64
	IntDiv float64
	Load   float64
	Store  float64
	FPALU  float64
	FPMul  float64
	FPDiv  float64
	Nop    float64
}

func (m KindMix) total() float64 {
	return m.IntALU + m.IntMul + m.IntDiv + m.Load + m.Store +
		m.FPALU + m.FPMul + m.FPDiv + m.Nop
}

func (m KindMix) weights() [9]struct {
	k isa.Kind
	w float64
} {
	return [9]struct {
		k isa.Kind
		w float64
	}{
		{isa.IntALU, m.IntALU}, {isa.IntMul, m.IntMul}, {isa.IntDiv, m.IntDiv},
		{isa.Load, m.Load}, {isa.Store, m.Store},
		{isa.FPALU, m.FPALU}, {isa.FPMul, m.FPMul}, {isa.FPDiv, m.FPDiv},
		{isa.Nop, m.Nop},
	}
}

// fpShare returns the fraction of value traffic on the FP side, used to
// decide how often stores write FP values.
func (m KindMix) fpShare() float64 {
	t := m.total()
	if t == 0 {
		return 0
	}
	return (m.FPALU + m.FPMul + m.FPDiv) / t
}

// MemParams shapes the program's data-memory behaviour. Every static
// memory instruction owns a private buffer, so whether a store's data is
// re-read before being overwritten — which decides its ACE-ness — is a
// structural property of the code, as it is in real compiled programs,
// rather than an accident of cursor interleaving:
//
//   - loads walk per-PC input buffers (LoadBufBytes each): small buffers
//     stay cache-resident (compute-bound programs), multi-megabyte ones
//     with high RandomFrac thrash the L2 (memory-bound programs);
//   - a TempFrac of stores write small self-overwriting scratch buffers
//     that nothing reads: dynamically dead stores;
//   - a CommFrac of stores are paired with a load later in the same basic
//     block walking the same buffer at the same rate: reliably re-read
//     (communication through memory);
//   - remaining stores write large append-style output buffers that do not
//     wrap within the ACE analysis window: architecturally live results.
type MemParams struct {
	LoadBufBytes uint64 // per-load-PC input buffer size
	OutBufBytes  uint64 // per-store output buffer size
	CommBufBytes uint64 // per-pair communication buffer size
	TempFrac     float64
	CommFrac     float64
	StrideBytes  uint64  // sequential step within a buffer
	RandomFrac   float64 // random-access probability for input loads
}

// tempBufBytes is the scratch-buffer size for dead stores: small enough to
// self-overwrite well inside the analysis window.
const tempBufBytes = 512

// Params fully determines a generated program.
type Params struct {
	Name string
	Seed uint64

	// StaticInstrs is the approximate size of the code image; code
	// comfortably below the 8K-instruction L1I capacity mostly hits.
	StaticInstrs int

	// CFG shape.
	Phases        int     // minimum top-level phases in the main loop
	LoopsPerPhase int     // loops per phase
	LoopNestProb  float64 // probability a loop contains a nested loop
	TripMean      float64 // mean loop trip count
	BlockLen      int     // mean straight-line block length
	IfProb        float64 // probability of a forward conditional per block
	IfBiasMean    float64 // mean taken-probability of forward conditionals
	IfBiasSpread  float64 // uniform spread around IfBiasMean
	Routines      int     // callable routines
	CallProb      float64 // probability a phase calls a routine

	Mix KindMix

	// DepMean is the mean backward distance, in value-producing
	// instructions, from which source operands are drawn. Short
	// distances serialise execution (low ILP); long distances expose
	// parallelism.
	DepMean float64

	// IndepFrac is the probability that a source operand is a constant
	// (the zero register) rather than a recent value: it starts a fresh
	// dependence strand, widening the dataflow. High values yield the
	// large ready-queue populations of compute-bound SMT workloads
	// (Figure 2 of the paper).
	IndepFrac float64

	// DeadFrac is the probability that a value-producing instruction
	// writes a scratch register that no later instruction reads before
	// it is overwritten, i.e. is dynamically dead (un-ACE).
	DeadFrac float64

	// AccumFrac is the probability that a loop-body value-producer
	// targets the loop's accumulator register, which is read only
	// after the loop exits: every instance but the last is dead. This
	// is the paper's "un-ACE in early iterations, ACE in the last"
	// case, and drives per-PC profiling false-positives (Table 1).
	AccumFrac float64

	Mem MemParams
}

// check reports parameter errors before generation.
func (p Params) check() error {
	switch {
	case p.StaticInstrs < 64:
		return fmt.Errorf("program %q: StaticInstrs %d too small", p.Name, p.StaticInstrs)
	case p.Phases < 1 || p.LoopsPerPhase < 1 || p.BlockLen < 1:
		return fmt.Errorf("program %q: non-positive CFG shape", p.Name)
	case p.TripMean < 1:
		return fmt.Errorf("program %q: TripMean %v < 1", p.Name, p.TripMean)
	case p.Mix.total() <= 0:
		return fmt.Errorf("program %q: empty kind mix", p.Name)
	case p.DepMean < 1:
		return fmt.Errorf("program %q: DepMean %v < 1", p.Name, p.DepMean)
	case p.Mem.LoadBufBytes < 64 || p.Mem.OutBufBytes < 64 || p.Mem.CommBufBytes < 64:
		return fmt.Errorf("program %q: memory buffers must be at least 64 bytes", p.Name)
	case p.Mem.StrideBytes == 0:
		return fmt.Errorf("program %q: zero stride", p.Name)
	case p.Mem.TempFrac < 0 || p.Mem.CommFrac < 0 || p.Mem.TempFrac+p.Mem.CommFrac > 1:
		return fmt.Errorf("program %q: store role fractions out of range", p.Name)
	}
	return nil
}

// Generate builds the program determined by p.
func Generate(p Params) (*Program, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	g := &generator{
		params:   p,
		prog:     &Program{Name: p.Name, Params: p},
		layout:   rng.New(subSeed(p.Seed, seedLayout)),
		dataflow: rng.New(subSeed(p.Seed, seedDataflow)),
		memory:   rng.New(subSeed(p.Seed, seedMemory)),
		branches: rng.New(subSeed(p.Seed, seedBranches)),
		weight:   1,
	}
	g.buildStreams()
	g.build()
	if err := g.prog.Validate(); err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}
	return g.prog, nil
}

// MustGenerate is Generate, panicking on parameter errors. Intended for
// static profiles that are validated by tests.
func MustGenerate(p Params) *Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

// maxLoopWeight caps the expected dynamic execution weight of any single
// instruction (trip-count product of its enclosing loops): one deeply
// nested hot loop must not dominate the dynamic instruction stream.
const maxLoopWeight = 2000

type generator struct {
	params   Params
	prog     *Program
	layout   *rng.Source // CFG shape decisions
	dataflow *rng.Source // register operand choices
	memory   *rng.Source // memory stream assignment
	branches *rng.Source // branch bias draws

	// recent is a ring of recently written registers from which source
	// operands are drawn; head is the next slot to overwrite. The ring
	// is snapshotted/restored around loop bodies, if-blocks and
	// routines so that dataflow crosses control boundaries only through
	// the explicit mechanisms (accumulators, pre-loop values): this
	// keeps per-PC liveness consistent across dynamic instances, which
	// real compiled code exhibits and Table 1 measures.
	recent [24]isa.Reg
	head   int

	// Round-robin destination allocation keeps register overwrite
	// distances uniform (liveness windows deterministic).
	nextInt int
	nextFP  int

	// protected counts, per register, how many enclosing control
	// contexts (loop bodies, if-blocks) hold it live-through: a real
	// compiler never allocates a loop temporary to a register carrying
	// a live value across the loop. Writing a protected register would
	// make first-iteration reads and last-iteration liveness depend on
	// dynamic history, destroying per-PC tag consistency (Table 1).
	protected [isa.NumRegs]int8

	// loop context stack.
	loops []loopCtx
	// weight is the expected dynamic execution count of code emitted
	// now (product of enclosing loops' trip means).
	weight float64

	// dynCount tracks expected dynamic instructions per kind for
	// mix budgeting; dynTotal is their sum.
	dynCount [isa.NumKinds]float64
	dynTotal float64

	// nextBase is the data-segment allocation cursor for per-PC
	// buffers.
	nextBase uint64
	// tempStream is the shared scratch buffer all dead stores write
	// (like stack slots reused across the whole program): each store's
	// data is soon overwritten by another, so no tail of "still live"
	// final writes survives to poison the PC tag.
	tempStream uint32

	routineStarts []int
	pendingCalls  []int
}

type loopCtx struct {
	counter isa.Reg
	// lastOnly registers hold loop-body results consumed only after
	// the loop exits: every dynamic instance but the final one is
	// dynamically dead, the paper's canonical per-PC tagging
	// false-positive (§2.1).
	lastOnly []isa.Reg
}

type ringState struct {
	recent [24]isa.Reg
	head   int
}

func (g *generator) saveRing() ringState { return ringState{g.recent, g.head} }
func (g *generator) restoreRing(s ringState) {
	g.recent, g.head = s.recent, s.head
}

// protectRing marks every register currently visible in the source ring as
// live-through for a nested context. Call unprotectRing with the same ring
// state on context exit.
func (g *generator) protectRing(s ringState) {
	for _, r := range s.recent {
		if r != isa.RegNone {
			g.protected[r]++
		}
	}
}

func (g *generator) unprotectRing(s ringState) {
	for _, r := range s.recent {
		if r != isa.RegNone {
			g.protected[r]--
		}
	}
}
func (g *generator) clearRing() {
	for i := range g.recent {
		g.recent[i] = isa.RegNone
	}
	g.head = 0
}

// Register allocation plan (64 architectural registers):
//
//	r0          hardwired zero
//	r1          stack pointer (reserved)
//	r2..r5      scratch (dead-write targets; never used as sources)
//	r6..r13     loop counters / accumulators (rotating)
//	r14..r31    integer general pool
//	f0..f31     floating-point general pool (f == r32..r63)
const (
	scratchBase  = isa.Reg(2)
	scratchCount = 4
	loopRegBase  = isa.Reg(6)
	loopRegCount = 8
	intPoolBase  = isa.Reg(14)
	intPoolCount = 18
	fpPoolBase   = isa.FPBase
	fpPoolCount  = 32
)

func (g *generator) buildStreams() {
	g.prog.DataBase = 0x0000_0001_0000_0000
	g.nextBase = g.prog.DataBase
}

// newStream allocates a private buffer of (at least) size bytes and returns
// its 1-based stream id.
func (g *generator) newStream(size uint64, randomFrac float64) uint32 {
	size = nextPow2(size)
	if size < 64 {
		size = 64
	}
	stride := g.params.Mem.StrideBytes &^ 7
	if stride == 0 {
		stride = 8
	}
	g.prog.Streams = append(g.prog.Streams, MemMeta{
		Base:       g.nextBase,
		Mask:       size - 1,
		Stride:     stride,
		RandomFrac: randomFrac,
	})
	g.nextBase += size
	return uint32(len(g.prog.Streams))
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}

// build lays out: main loop { phases } jump-back, then routine bodies.
func (g *generator) build() {
	g.clearRing()
	// Emit at least Phases phases, continuing until the code image
	// approaches its target size (leaving ~25% headroom for routines).
	target := g.params.StaticInstrs * 3 / 4
	for ph := 0; ph < g.params.Phases || len(g.prog.Instrs) < target; ph++ {
		g.emitPhase()
	}
	// Close the infinite main loop.
	g.emitCtl(isa.Jump, CodeBase, 0)

	// Routine bodies. Each routine starts from an empty ring: its
	// dataflow must not depend on which call site ran last.
	for r := 0; r < g.params.Routines; r++ {
		g.routineStarts = append(g.routineStarts, len(g.prog.Instrs))
		g.clearRing()
		g.emitBlock(g.blockLen())
		if g.layout.Bool(0.7) {
			g.emitLoop(1)
		}
		g.emitBlock(g.blockLen())
		g.emitCtl(isa.Return, 0, 0)
	}

	// Patch call targets now that routine addresses are known.
	for _, ci := range g.pendingCalls {
		if len(g.routineStarts) == 0 {
			g.prog.Instrs[ci].Target = g.prog.PCOf(ci + 1)
			continue
		}
		r := g.layout.Intn(len(g.routineStarts))
		g.prog.Instrs[ci].Target = g.prog.PCOf(g.routineStarts[r])
	}
}

func (g *generator) emitPhase() {
	g.emitBlock(g.blockLen())
	for l := 0; l < g.params.LoopsPerPhase; l++ {
		g.emitLoop(1)
		if g.layout.Bool(g.params.IfProb) {
			g.emitIf()
		}
	}
	if g.params.Routines > 0 && g.layout.Bool(g.params.CallProb) {
		g.pendingCalls = append(g.pendingCalls, len(g.prog.Instrs))
		g.emitCtl(isa.Call, 0, 0) // target patched later
	}
	g.emitBlock(g.blockLen())
}

// loopTrip picks a trip mean for a loop at the current weight, respecting
// the dynamic-weight cap.
func (g *generator) loopTrip() float64 {
	trip := g.params.TripMean * (0.5 + g.layout.Float64())
	if trip < 2 {
		trip = 2
	}
	if g.weight*trip > maxLoopWeight {
		trip = maxLoopWeight / g.weight
		if trip < 2 {
			trip = 2
		}
	}
	return trip
}

// pickLoopReg selects a loop-control register not used by any enclosing
// loop (and not equal to avoid).
func (g *generator) pickLoopReg(avoid isa.Reg) isa.Reg {
	off := g.layout.Intn(loopRegCount)
	for try := 0; try < loopRegCount; try++ {
		r := loopRegBase + isa.Reg((off+try)%loopRegCount)
		if r == avoid {
			continue
		}
		inUse := false
		for _, lc := range g.loops {
			if lc.counter == r {
				inUse = true
				break
			}
		}
		if !inUse {
			return r
		}
	}
	return loopRegBase + isa.Reg(off)
}

// emitLoop emits: init counter; header: body ... counter++ ; branch header.
func (g *generator) emitLoop(depth int) {
	lr := g.pickLoopReg(isa.RegNone)
	// counter = 0.
	g.emit(isa.Inst{Kind: isa.IntALU, Dest: lr, Src1: isa.RegZero, Src2: isa.RegNone})

	trip := g.loopTrip()
	header := len(g.prog.Instrs)
	g.loops = append(g.loops, loopCtx{counter: lr})
	ring := g.saveRing()
	g.protectRing(ring)
	outerWeight := g.weight
	g.weight *= trip

	g.emitBlock(g.blockLen())
	if g.layout.Bool(g.params.IfProb) {
		g.emitIf()
	}
	if depth < 3 && g.weight*2 < maxLoopWeight && g.layout.Bool(g.params.LoopNestProb) {
		g.emitLoop(depth + 1)
	}
	g.emitBlock(g.blockLen())

	// counter = counter + 1 (loop-carried dependence), then back-edge.
	g.emit(isa.Inst{Kind: isa.IntALU, Dest: lr, Src1: lr, Src2: isa.RegNone})
	g.prog.Branches = append(g.prog.Branches, BranchMeta{
		Class:    BranchLoop,
		TripMean: trip,
	})
	g.emit(isa.Inst{
		Kind:          isa.Branch,
		Src1:          lr,
		Dest:          isa.RegNone,
		Src2:          isa.RegNone,
		Target:        g.prog.PCOf(header),
		BranchPattern: uint32(len(g.prog.Branches)),
	})
	g.weight = outerWeight
	lc := g.loops[len(g.loops)-1]
	g.loops = g.loops[:len(g.loops)-1]

	// Post-loop code sees the pre-loop values; last-only registers are
	// consumed exactly once here, so only their final iteration's write
	// was architecturally required.
	g.unprotectRing(ring)
	g.restoreRing(ring)
	for _, r := range lc.lastOnly {
		g.protected[r]--
		consume := isa.Inst{
			Kind: isa.IntALU,
			Dest: g.pickPoolReg(false),
			Src1: r,
			Src2: isa.RegNone,
		}
		g.emit(consume)
		g.noteWrite(consume.Dest)
		g.noteKind(isa.IntALU)
	}
}

// emitIf emits a forward conditional skipping a short block. The skipped
// block's values are consumed only inside it (ring restored after), so
// per-PC liveness does not depend on the branch direction history.
func (g *generator) emitIf() {
	bias := g.params.IfBiasMean + (g.branches.Float64()*2-1)*g.params.IfBiasSpread
	if bias < 0.02 {
		bias = 0.02
	}
	if bias > 0.98 {
		bias = 0.98
	}
	g.prog.Branches = append(g.prog.Branches, BranchMeta{
		Class:     BranchCond,
		TakenProb: bias,
	})
	bi := len(g.prog.Instrs)
	g.emit(isa.Inst{
		Kind:          isa.Branch,
		Src1:          g.pickSource(false),
		Dest:          isa.RegNone,
		Src2:          isa.RegNone,
		BranchPattern: uint32(len(g.prog.Branches)),
	})
	ring := g.saveRing()
	g.protectRing(ring)
	w := g.weight
	g.weight *= 1 - bias // block executes on the not-taken path
	skip := 2 + g.layout.Intn(g.params.BlockLen)
	g.emitBlock(skip)
	g.weight = w
	g.unprotectRing(ring)
	g.restoreRing(ring)
	g.prog.Instrs[bi].Target = g.prog.PCOf(len(g.prog.Instrs))
}

// emitBlock emits n mix-drawn straight-line instructions.
func (g *generator) emitBlock(n int) {
	for i := 0; i < n; i++ {
		g.emitMixInst()
	}
}

func (g *generator) blockLen() int {
	n := g.layout.Geometric(float64(g.params.BlockLen))
	if n > 4*g.params.BlockLen {
		n = 4 * g.params.BlockLen
	}
	return n
}

func (g *generator) emitMixInst() {
	k := g.drawKind()
	in := isa.Inst{Kind: k, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	fp := k.IsFP()
	mem := g.params.Mem
	switch k {
	case isa.Nop:
	case isa.Load:
		in.Dest = g.pickDest(fp)
		in.Src1 = g.pickSource(false) // index/base dependence
		in.MemPattern = g.newStream(mem.LoadBufBytes, mem.RandomFrac)
	case isa.Store:
		// Stores drain FP values in proportion to the FP share of
		// the mix, so FP dataflow chains reach an anchor.
		fpVal := g.dataflow.Bool(g.params.Mix.fpShare() * 2)
		in.Src1 = g.pickSource(fpVal) // value
		in.Src2 = g.pickSource(false) // address dependence
		r := g.dataflow.Float64()
		switch {
		case r < mem.TempFrac:
			// Dead temporary: all temp stores share one tiny
			// scratch buffer that nothing reads and everything
			// overwrites.
			if g.tempStream == 0 {
				g.tempStream = g.newStream(tempBufBytes, 0)
			}
			in.MemPattern = g.tempStream
			g.emit(in)
			return
		case r < mem.TempFrac+mem.CommFrac:
			// Communication through memory: pair with a load
			// later in this block walking the same buffer at the
			// same rate, so the stored value is reliably read.
			in.MemPattern = g.newStream(mem.CommBufBytes, 0)
			g.emit(in)
			ld := isa.Inst{
				Kind:       isa.Load,
				Dest:       g.pickDest(fpVal),
				Src1:       g.pickSource(false),
				Src2:       isa.RegNone,
				MemPattern: in.MemPattern,
			}
			g.emit(ld)
			g.noteWrite(ld.Dest)
			g.noteKind(isa.Load)
			return
		default:
			// Output: append-style buffer that does not wrap
			// within the analysis window.
			in.MemPattern = g.newStream(mem.OutBufBytes, 0)
		}
	default: // ALU-class
		in.Dest = g.pickDest(fp)
		in.Src1 = g.pickSource(fp)
		if g.dataflow.Bool(0.6) {
			in.Src2 = g.pickSource(fp)
		}
	}
	g.emit(in)
	if in.HasDest() {
		g.noteWrite(in.Dest)
	}
}

// drawKind samples the mix, rejecting kinds whose expected dynamic share
// already exceeds their target (hot loops would otherwise skew the dynamic
// mix arbitrarily far from the static one).
func (g *generator) drawKind() isa.Kind {
	weights := g.params.Mix.weights()
	total := g.params.Mix.total()
	for try := 0; try < 8; try++ {
		x := g.dataflow.Float64() * total
		k := isa.IntALU
		for _, wk := range weights {
			if x < wk.w {
				k = wk.k
				break
			}
			x -= wk.w
		}
		share := 0.0
		for _, wk := range weights {
			if wk.k == k {
				share = wk.w / total
				break
			}
		}
		if g.dynTotal > 64 && g.dynCount[k]+g.weight > 1.3*share*(g.dynTotal+g.weight) {
			continue // this kind is already dynamically over-represented
		}
		g.noteKind(k)
		return k
	}
	g.noteKind(isa.IntALU)
	return isa.IntALU
}

// pickDest chooses a destination register: scratch (dead), the enclosing
// loop's accumulator, or the general pool.
func (g *generator) pickDest(fp bool) isa.Reg {
	if !fp && g.dataflow.Bool(g.params.DeadFrac) {
		return scratchBase + isa.Reg(g.dataflow.Intn(scratchCount))
	}
	if !fp && len(g.loops) > 0 && g.dataflow.Bool(g.params.AccumFrac) {
		lc := &g.loops[len(g.loops)-1]
		maxLastOnly := 1 + int(g.params.AccumFrac*20)
		if len(lc.lastOnly) < maxLastOnly && (len(lc.lastOnly) == 0 || g.dataflow.Bool(0.3)) {
			r := g.pickPoolReg(false)
			g.protected[r]++ // reserve against ordinary pool reuse
			lc.lastOnly = append(lc.lastOnly, r)
			return r
		}
		return lc.lastOnly[g.dataflow.Intn(len(lc.lastOnly))]
	}
	return g.pickPoolReg(fp)
}

// pickPoolReg allocates pool registers round-robin (uniform value
// lifetimes), skipping registers protected as live-through by enclosing
// contexts. If every pool register is protected — possible only in deeply
// nested code — the round-robin choice is used regardless.
func (g *generator) pickPoolReg(fp bool) isa.Reg {
	base, count, next := intPoolBase, intPoolCount, &g.nextInt
	if fp {
		base, count, next = fpPoolBase, fpPoolCount, &g.nextFP
	}
	for try := 0; try < count; try++ {
		r := base + isa.Reg(*next)
		*next = (*next + 1) % count
		if g.protected[r] == 0 {
			return r
		}
	}
	r := base + isa.Reg(*next)
	*next = (*next + 1) % count
	return r
}

// pickSource draws a source register from recently written registers with a
// geometric backward-distance distribution (mean DepMean). When the ring
// holds no value of the wanted class, the source degrades to the zero
// register (no dataflow) rather than aliasing an arbitrary pool register,
// which would make liveness depend on dynamic history.
func (g *generator) pickSource(fp bool) isa.Reg {
	if g.dataflow.Bool(g.params.IndepFrac) {
		return isa.RegZero
	}
	n := len(g.recent)
	d := g.dataflow.Geometric(g.params.DepMean)
	if d > n {
		d = n
	}
	for try := 0; try < n; try++ {
		idx := ((g.head-d-try)%n + 2*n) % n
		r := g.recent[idx]
		if r != isa.RegNone && r.IsFP() == fp {
			return r
		}
	}
	if len(g.loops) > 0 && !fp && g.dataflow.Bool(0.5) {
		return g.loops[len(g.loops)-1].counter
	}
	return isa.RegZero
}

func (g *generator) noteWrite(r isa.Reg) {
	// Scratch registers never enter the source ring: their writes stay
	// dead by construction.
	if r >= scratchBase && r < scratchBase+scratchCount {
		return
	}
	g.recent[g.head] = r
	g.head = (g.head + 1) % len(g.recent)
}

// noteKind charges one instruction of kind k against the dynamic-mix
// budget at the current loop weight.
func (g *generator) noteKind(k isa.Kind) {
	g.dynCount[k] += g.weight
	g.dynTotal += g.weight
}

func (g *generator) emitCtl(k isa.Kind, target uint64, pattern uint32) {
	g.emit(isa.Inst{
		Kind: k, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
		Target: target, BranchPattern: pattern,
	})
}

func (g *generator) emit(in isa.Inst) {
	in.PC = g.prog.PCOf(len(g.prog.Instrs))
	g.prog.Instrs = append(g.prog.Instrs, in)
}
