package program_test

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/program"
	"visasim/internal/trace"
)

// dynParams mirrors the internal test fixture for the external test package.
func dynParams(seed uint64) program.Params {
	return program.Params{
		Name:          "dyn-test",
		Seed:          seed,
		StaticInstrs:  800,
		Phases:        2,
		LoopsPerPhase: 2,
		LoopNestProb:  0.4,
		TripMean:      12,
		BlockLen:      6,
		IfProb:        0.4,
		IfBiasMean:    0.85,
		IfBiasSpread:  0.1,
		Routines:      2,
		CallProb:      0.5,
		Mix:           program.KindMix{IntALU: 0.5, Load: 0.25, Store: 0.12, Nop: 0.05, IntMul: 0.03},
		DepMean:       5,
		IndepFrac:     0.2,
		DeadFrac:      0.15,
		AccumFrac:     0.05,
		Mem: program.MemParams{
			LoadBufBytes: 512,
			OutBufBytes:  1 << 20,
			CommBufBytes: 512,
			TempFrac:     0.2,
			CommFrac:     0.3,
			StrideBytes:  8,
			RandomFrac:   0.05,
		},
	}
}

// runDynamic executes prog for n instructions and returns dynamic per-kind
// counts. It lives here (with an import of trace) to validate generator
// guarantees that only hold dynamically.
func runDynamic(t *testing.T, prog *program.Program, n int) map[isa.Kind]int {
	t.Helper()
	exec := trace.NewExecutor(prog, 7, 0)
	var d trace.DynInst
	counts := map[isa.Kind]int{}
	for i := 0; i < n; i++ {
		exec.Next(&d)
		counts[d.Static.Kind]++
	}
	return counts
}

// TestDynamicMixTracksWeights: loop amplification must not let any mix
// class drift arbitrarily far from its static weight (the generator budgets
// draws by expected dynamic weight).
func TestDynamicMixTracksWeights(t *testing.T) {
	p := dynParams(21)
	p.StaticInstrs = 2000
	p.Mix = program.KindMix{IntALU: 0.45, IntMul: 0.03, IntDiv: 0.01, Load: 0.25, Store: 0.12, Nop: 0.06}
	prog := program.MustGenerate(p)
	const n = 300_000
	counts := runDynamic(t, prog, n)

	// Structural instructions (branches etc.) dilute the mix classes;
	// compare within the mix-drawn population.
	mixTotal := 0
	for _, k := range []isa.Kind{isa.IntALU, isa.IntMul, isa.IntDiv, isa.Load, isa.Store, isa.Nop} {
		mixTotal += counts[k]
	}
	check := func(k isa.Kind, share float64) {
		got := float64(counts[k]) / float64(mixTotal)
		if got > share*3 || got < share/6 {
			t.Errorf("%v: dynamic share %.3f vs target %.3f", k, got, share)
		}
	}
	total := 0.45 + 0.03 + 0.01 + 0.25 + 0.12 + 0.06
	check(isa.IntMul, 0.03/total)
	check(isa.IntDiv, 0.01/total)
	check(isa.Load, 0.25/total)
	check(isa.Store, 0.12/total)
	check(isa.Nop, 0.06/total)
}

// TestCommPairsReadBack: every communication store is followed, in the same
// block, by a load on the same stream — dynamically they alternate, so the
// load reads what the store wrote.
func TestCommPairsReadBack(t *testing.T) {
	p := dynParams(22)
	p.Mem.CommFrac = 0.5
	prog := program.MustGenerate(p)

	// Statically: a store whose stream id is shared with a load must be
	// immediately followed by that load.
	streams := map[uint32][]int{} // stream -> instruction indices
	for i, in := range prog.Instrs {
		if in.Kind.IsMem() {
			streams[in.MemPattern] = append(streams[in.MemPattern], i)
		}
	}
	commPairs := 0
	for _, idxs := range streams {
		if len(idxs) != 2 {
			continue
		}
		a, b := &prog.Instrs[idxs[0]], &prog.Instrs[idxs[1]]
		if a.Kind == isa.Store && b.Kind == isa.Load {
			commPairs++
			if idxs[1] != idxs[0]+1 {
				t.Errorf("comm pair %d/%d not adjacent", idxs[0], idxs[1])
			}
		}
	}
	if commPairs == 0 {
		t.Fatal("no communication pairs generated at CommFrac=0.5")
	}

	// Dynamically: the pair's addresses coincide instance by instance.
	exec := trace.NewExecutor(prog, 7, 0)
	var d trace.DynInst
	lastStoreAddr := map[uint32]uint64{}
	checked := 0
	for i := 0; i < 100_000; i++ {
		exec.Next(&d)
		if !d.Static.Kind.IsMem() {
			continue
		}
		idxs := streams[d.Static.MemPattern]
		if len(idxs) != 2 || prog.Instrs[idxs[0]].Kind != isa.Store || prog.Instrs[idxs[1]].Kind != isa.Load {
			continue
		}
		if d.Static.Kind == isa.Store {
			lastStoreAddr[d.Static.MemPattern] = d.Addr
		} else if want, ok := lastStoreAddr[d.Static.MemPattern]; ok {
			if d.Addr != want {
				t.Fatalf("comm load read %#x, store wrote %#x", d.Addr, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no communication pairs executed")
	}
}

// TestTempStoresShareScratch: all dead-temporary stores write one shared
// buffer, so no final-iteration write survives to poison its tag.
func TestTempStoresShareScratch(t *testing.T) {
	p := dynParams(23)
	p.Mem.TempFrac = 0.5
	p.Mem.CommFrac = 0.1
	prog := program.MustGenerate(p)
	// The temp stream is the one shared by the most static stores.
	users := map[uint32]int{}
	for _, in := range prog.Instrs {
		if in.Kind == isa.Store {
			users[in.MemPattern]++
		}
	}
	maxUsers := 0
	for _, n := range users {
		if n > maxUsers {
			maxUsers = n
		}
	}
	if maxUsers < 3 {
		t.Fatalf("no shared temp stream (max users %d)", maxUsers)
	}
}

// TestIfBranchBias: conditional outcomes track the generated biases.
func TestIfBranchBias(t *testing.T) {
	p := dynParams(24)
	prog := program.MustGenerate(p)
	exec := trace.NewExecutor(prog, 9, 0)
	var d trace.DynInst
	taken := map[uint32]int{}
	execs := map[uint32]int{}
	for i := 0; i < 200_000; i++ {
		exec.Next(&d)
		if d.Static.Kind != isa.Branch {
			continue
		}
		if prog.Branch(d.Static).Class != program.BranchCond {
			continue
		}
		execs[d.Static.BranchPattern]++
		if d.Taken {
			taken[d.Static.BranchPattern]++
		}
	}
	checked := 0
	for id, n := range execs {
		if n < 200 {
			continue
		}
		got := float64(taken[id]) / float64(n)
		want := prog.Branches[id-1].TakenProb
		if got < want-0.1 || got > want+0.1 {
			t.Errorf("branch %d: taken rate %.2f vs bias %.2f (n=%d)", id, got, want, n)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no conditional branch executed often enough")
	}
}
