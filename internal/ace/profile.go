package ace

import (
	"fmt"

	"visasim/internal/program"
	"visasim/internal/trace"
)

// Profile is the result of an offline vulnerability-profiling run over one
// program (§2.1 of the paper): ground-truth per-instance ACE-ness for the
// profiled prefix of the dynamic stream, plus the per-PC 1-bit ACE tags the
// proposed hardware reads from the extended ISA.
type Profile struct {
	// Bits holds ground-truth ACE-ness per dynamic instruction (by
	// commit sequence number) for the profiled prefix.
	Bits *trace.BitSet

	// Tag holds the per-static-instruction (per-PC) ACE tag: true if
	// any profiled dynamic instance of that PC was ACE. Indexed by
	// static instruction index.
	Tag []bool

	// Instances and ACEInstances count profiled dynamic instances per
	// static instruction.
	Instances    []uint64
	ACEInstances []uint64

	// DynInstrs is the number of classified dynamic instructions.
	DynInstrs uint64
	// DynACE is how many of them were ACE.
	DynACE uint64
	// LateMarks is the analyzer's windowing-error count.
	LateMarks uint64
}

// ACEFraction returns the fraction of profiled dynamic instructions that
// were ACE.
func (p *Profile) ACEFraction() float64 {
	if p.DynInstrs == 0 {
		return 0
	}
	return float64(p.DynACE) / float64(p.DynInstrs)
}

// Accuracy returns the accuracy of per-PC tagging measured against
// per-instance ground truth over committed instructions (Table 1 of the
// paper): the fraction of dynamic instances whose instance ACE-ness matches
// the final PC tag. Because a PC is tagged ACE if any instance is ACE, all
// mismatches are false positives (un-ACE instances tagged ACE); ACE
// instances are never mispredicted.
func (p *Profile) Accuracy() float64 {
	if p.DynInstrs == 0 {
		return 1
	}
	var mismatches uint64
	for i, n := range p.Instances {
		if p.Tag[i] {
			// ACE-tagged PC: un-ACE instances mismatch.
			mismatches += n - p.ACEInstances[i]
		}
		// un-ACE-tagged PC: by construction every instance was
		// un-ACE; no mismatch possible.
	}
	return 1 - float64(mismatches)/float64(p.DynInstrs)
}

// Run profiles prog for dynInstrs dynamic instructions using the given
// analysis window (0 = DefaultWindow). The executor is seeded exactly as
// the timing simulation will seed its own (see trace.NewExecutor), so the
// profiled prefix matches the simulated stream instruction for instruction.
func Run(prog *program.Program, seed uint64, thread int, dynInstrs uint64, window int) (*Profile, error) {
	if dynInstrs == 0 {
		return nil, fmt.Errorf("ace: zero-length profile of %s", prog.Name)
	}
	p := &Profile{
		Bits:         trace.NewBitSet(dynInstrs),
		Tag:          make([]bool, prog.Len()),
		Instances:    make([]uint64, prog.Len()),
		ACEInstances: make([]uint64, prog.Len()),
	}
	exec := trace.NewExecutor(prog, seed, thread)

	// Static index per profiled seq so resolution can attribute
	// instances to PCs; ring sized to the analyzer window.
	if window <= 0 {
		window = DefaultWindow
	}
	staticIdx := make([]int32, window)

	an := New(window, func(seq uint64, isACE bool) {
		if seq >= dynInstrs {
			return // lookahead tail beyond the profiled prefix
		}
		p.Bits.Set(seq, isACE)
		si := staticIdx[seq%uint64(window)]
		p.Instances[si]++
		if isACE {
			p.ACEInstances[si]++
			p.Tag[si] = true
			p.DynACE++
		}
		p.DynInstrs++
	})

	var d trace.DynInst
	// Feed dynInstrs + window instructions so every profiled
	// instruction gets a full analysis window behind it.
	total := dynInstrs + uint64(window)
	for i := uint64(0); i < total; i++ {
		exec.Next(&d)
		// Retire first: it may resolve seq-window, whose staticIdx
		// slot this instruction is about to overwrite.
		an.Retire(&d)
		staticIdx[d.Seq%uint64(window)] = int32(prog.IndexOf(d.Static.PC))
	}
	an.Flush()
	p.LateMarks = an.LateMarks()
	return p, nil
}

// Apply writes the profile's per-PC tags into prog's instruction image
// (the paper's 1-bit ISA extension).
func (p *Profile) Apply(prog *program.Program) {
	for i := range prog.Instrs {
		prog.Instrs[i].ACETag = p.Tag[i]
	}
}
