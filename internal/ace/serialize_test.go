package ace

import (
	"bytes"
	"testing"

	"visasim/internal/workload"
)

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	b := workload.MustGet("gcc")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 20_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf, b.Name, b.Params.Seed, 2000); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf, b.Name, b.Params.Seed, prog.Len())
	if err != nil {
		t.Fatal(err)
	}
	if q.DynInstrs != p.DynInstrs || q.DynACE != p.DynACE || q.LateMarks != p.LateMarks {
		t.Fatal("scalar fields differ after round trip")
	}
	if q.Accuracy() != p.Accuracy() || q.ACEFraction() != p.ACEFraction() {
		t.Fatal("derived metrics differ after round trip")
	}
	for i := range p.Tag {
		if q.Tag[i] != p.Tag[i] || q.Instances[i] != p.Instances[i] {
			t.Fatalf("per-PC data differs at %d", i)
		}
	}
	for i := uint64(0); i < p.Bits.Len(); i++ {
		if q.Bits.Get(i) != p.Bits.Get(i) {
			t.Fatalf("ACE bit %d differs", i)
		}
	}
}

func TestProfileLoadRejectsMismatches(t *testing.T) {
	b := workload.MustGet("gcc")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 5_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	save := func() *bytes.Buffer {
		var buf bytes.Buffer
		if err := p.Save(&buf, "gcc", b.Params.Seed, 1000); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if _, err := Load(save(), "mcf", b.Params.Seed, prog.Len()); err == nil {
		t.Error("wrong benchmark accepted")
	}
	if _, err := Load(save(), "gcc", b.Params.Seed+1, prog.Len()); err == nil {
		t.Error("wrong seed accepted")
	}
	if _, err := Load(save(), "gcc", b.Params.Seed, prog.Len()+5); err == nil {
		t.Error("wrong program length accepted")
	}
	if _, err := Load(bytes.NewBufferString("garbage"), "gcc", b.Params.Seed, 0); err == nil {
		t.Error("garbage accepted")
	}
}
