package ace

import (
	"testing"

	"visasim/internal/workload"
)

func TestProfileDeterministic(t *testing.T) {
	b := workload.MustGet("gcc")
	prog, err := b.Generate()
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Run(prog, b.Params.Seed, 0, 30_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Run(prog, b.Params.Seed, 0, 30_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p1.DynACE != p2.DynACE || p1.DynInstrs != p2.DynInstrs {
		t.Fatal("profiles differ across runs")
	}
	for i := uint64(0); i < p1.Bits.Len(); i++ {
		if p1.Bits.Get(i) != p2.Bits.Get(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestProfileThreadInvariant(t *testing.T) {
	// The address-space tag must not change ACE classification.
	b := workload.MustGet("bzip2")
	prog, _ := b.Generate()
	p0, err := Run(prog, b.Params.Seed, 0, 20_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Run(prog, b.Params.Seed, 3, 20_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < p0.Bits.Len(); i++ {
		if p0.Bits.Get(i) != p3.Bits.Get(i) {
			t.Fatalf("ACE bit %d depends on thread tag", i)
		}
	}
}

func TestProfileTagIsAnyInstance(t *testing.T) {
	b := workload.MustGet("mesa")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 50_000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Tag {
		if p.Tag[i] != (p.ACEInstances[i] > 0) {
			t.Fatalf("tag[%d]=%v but ACE instances=%d", i, p.Tag[i], p.ACEInstances[i])
		}
		if p.ACEInstances[i] > p.Instances[i] {
			t.Fatalf("instr %d: more ACE instances than instances", i)
		}
	}
}

func TestProfileNoFalseNegatives(t *testing.T) {
	// The paper's claim: PC tagging never mispredicts an ACE instance.
	b := workload.MustGet("twolf")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 50_000, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Tag {
		if !p.Tag[i] && p.ACEInstances[i] > 0 {
			t.Fatalf("instr %d has ACE instances but un-ACE tag", i)
		}
	}
}

func TestProfileAccuracyMatchesDefinition(t *testing.T) {
	b := workload.MustGet("vpr")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 40_000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	var mismatch, total uint64
	for i := range p.Tag {
		total += p.Instances[i]
		if p.Tag[i] {
			mismatch += p.Instances[i] - p.ACEInstances[i]
		}
	}
	want := 1 - float64(mismatch)/float64(total)
	if got := p.Accuracy(); got != want {
		t.Fatalf("Accuracy() = %v, recomputed %v", got, want)
	}
	if total != p.DynInstrs {
		t.Fatalf("instance total %d != DynInstrs %d", total, p.DynInstrs)
	}
}

func TestApplyWritesTags(t *testing.T) {
	b := workload.MustGet("gap")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 20_000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p.Apply(prog)
	for i := range prog.Instrs {
		if prog.Instrs[i].ACETag != p.Tag[i] {
			t.Fatalf("instr %d tag not applied", i)
		}
	}
}

func TestRunRejectsZeroLength(t *testing.T) {
	b := workload.MustGet("gcc")
	prog, _ := b.Generate()
	if _, err := Run(prog, 1, 0, 0, 0); err == nil {
		t.Fatal("zero-length profile accepted")
	}
}

// TestSuiteShapes asserts the paper-level aggregates across the full
// benchmark suite: average tagging accuracy near the paper's 93% and a
// plausible ACE fraction.
func TestSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var accSum, aceSum float64
	n := 0
	for _, name := range workload.Table1Benchmarks() {
		b := workload.MustGet(name)
		prog, err := b.Generate()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Run(prog, b.Params.Seed, 0, 150_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		acc := p.Accuracy()
		if acc < 0.55 || acc > 1 {
			t.Errorf("%s: accuracy %.3f out of plausible range", name, acc)
		}
		accSum += acc
		aceSum += p.ACEFraction()
		n++
	}
	avgAcc := accSum / float64(n)
	avgACE := aceSum / float64(n)
	t.Logf("suite: avg accuracy %.3f, avg ACE fraction %.3f", avgAcc, avgACE)
	if avgAcc < 0.85 || avgAcc > 0.99 {
		t.Errorf("average accuracy %.3f, paper reports ~0.93", avgAcc)
	}
	if avgACE < 0.30 || avgACE > 0.75 {
		t.Errorf("average ACE fraction %.3f out of plausible range", avgACE)
	}
}
