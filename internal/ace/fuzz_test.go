package ace

import (
	"bytes"
	"reflect"
	"testing"

	"visasim/internal/trace"
)

// fuzzSeedProfile builds a small but fully-populated profile for the fuzz
// corpus.
func fuzzSeedProfile() *Profile {
	bits := trace.NewBitSet(130)
	for i := uint64(0); i < 130; i += 3 {
		bits.Set(i, true)
	}
	return &Profile{
		Bits:         bits,
		Tag:          []bool{true, false, true, true},
		Instances:    []uint64{40, 30, 40, 20},
		ACEInstances: []uint64{40, 2, 39, 0},
		DynInstrs:    130,
		DynACE:       44,
		LateMarks:    1,
	}
}

// FuzzProfileRoundTrip feeds arbitrary bytes to Load. Load must never panic;
// whenever it accepts an input, saving the decoded profile and loading it
// back must reproduce it exactly — the serialize round-trip property the
// profile cache relies on.
func FuzzProfileRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedProfile().Save(&seed, "bench", 7, DefaultWindow); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	truncated := seed.Bytes()
	f.Add(truncated[:len(truncated)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data), "bench", 7, 0)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := p.Save(&out, "bench", 7, DefaultWindow); err != nil {
			t.Fatalf("saving an accepted profile: %v", err)
		}
		p2, err := Load(&out, "bench", 7, 0)
		if err != nil {
			t.Fatalf("re-loading a saved profile: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the profile:\n got %+v\nwant %+v", p2, p)
		}
	})
}
