package ace

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/workload"
)

// TestProfileDiagnostics prints per-kind ACE ratios and per-PC consistency
// for one benchmark; used to tune generator profiles against the paper's
// Table 1. Not an assertion test beyond sanity bounds.
func TestProfileDiagnostics(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	verbose := map[string]bool{"gcc": true, "mgrid": true, "lucas": true}
	for _, name := range workload.Table1Benchmarks() {
		b := workload.MustGet(name)
		prog, err := b.Generate()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Run(prog, b.Params.Seed, 0, 200_000, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Aggregate per kind: instances, ACE instances, and mixed PCs
		// (PCs whose instances are neither all-ACE nor all-unACE).
		var inst, aceInst, mixedInst [isa.NumKinds]uint64
		for i := range prog.Instrs {
			k := prog.Instrs[i].Kind
			inst[k] += p.Instances[i]
			aceInst[k] += p.ACEInstances[i]
			if p.ACEInstances[i] > 0 && p.ACEInstances[i] < p.Instances[i] {
				mixedInst[k] += p.Instances[i] - p.ACEInstances[i]
			}
		}
		t.Logf("%s: aceFrac=%.3f acc=%.3f late=%d", name, p.ACEFraction(), p.Accuracy(), p.LateMarks)
		if !verbose[name] {
			continue
		}
		for k := 0; k < isa.NumKinds; k++ {
			if inst[k] == 0 {
				continue
			}
			t.Logf("  %-6v n=%-8d ace=%.3f mismatch=%.3f", isa.Kind(k), inst[k],
				float64(aceInst[k])/float64(inst[k]),
				float64(mixedInst[k])/float64(inst[k]))
		}
	}
}
