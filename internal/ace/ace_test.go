package ace

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/trace"
)

// feeder drives an Analyzer with hand-built instruction streams and records
// resolutions.
type feeder struct {
	an    *Analyzer
	out   map[uint64]bool
	seq   uint64
	insts []*isa.Inst // keep static instructions alive
}

func newFeeder(window int) *feeder {
	f := &feeder{out: map[uint64]bool{}}
	f.an = New(window, func(seq uint64, ace bool) { f.out[seq] = ace })
	return f
}

func (f *feeder) inst(kind isa.Kind, dest, src1, src2 isa.Reg) *isa.Inst {
	in := &isa.Inst{PC: 0x1000 + uint64(len(f.insts))*4, Kind: kind, Dest: dest, Src1: src1, Src2: src2}
	f.insts = append(f.insts, in)
	return in
}

// feed retires one instruction and returns its seq.
func (f *feeder) feed(in *isa.Inst, addr uint64) uint64 {
	d := trace.DynInst{Static: in, Seq: f.seq, Addr: addr}
	f.an.Retire(&d)
	f.seq++
	return f.seq - 1
}

// pad retires n filler NOPs (no dataflow).
func (f *feeder) pad(n int) {
	nop := f.inst(isa.Nop, isa.RegNone, isa.RegNone, isa.RegNone)
	for i := 0; i < n; i++ {
		f.feed(nop, 0)
	}
}

func (f *feeder) finish() { f.an.Flush() }

const r = isa.Reg(10) // test registers start here

func TestNopNeverACE(t *testing.T) {
	f := newFeeder(64)
	nop := f.inst(isa.Nop, isa.RegNone, isa.RegNone, isa.RegNone)
	s := f.feed(nop, 0)
	f.finish()
	if f.out[s] {
		t.Fatal("NOP classified ACE")
	}
}

func TestBranchIsAnchor(t *testing.T) {
	f := newFeeder(64)
	w := f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone)
	br := f.inst(isa.Branch, isa.RegNone, r, isa.RegNone)
	sw := f.feed(w, 0)
	sb := f.feed(br, 0)
	// Overwrite r so the write is not live at window exit.
	f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	f.pad(80)
	f.finish()
	if !f.out[sb] {
		t.Fatal("branch not ACE")
	}
	if !f.out[sw] {
		t.Fatal("branch operand producer not ACE")
	}
}

func TestDeadWriteUnACE(t *testing.T) {
	f := newFeeder(64)
	w1 := f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	// Overwritten without any read.
	f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	f.pad(80)
	f.finish()
	if f.out[w1] {
		t.Fatal("dead write classified ACE")
	}
}

func TestTransitiveChain(t *testing.T) {
	f := newFeeder(64)
	a := f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone)
	b := f.inst(isa.IntALU, r+1, r, isa.RegNone)
	c := f.inst(isa.IntALU, r+2, r+1, isa.RegNone)
	br := f.inst(isa.Branch, isa.RegNone, r+2, isa.RegNone)
	sa := f.feed(a, 0)
	sb := f.feed(b, 0)
	sc := f.feed(c, 0)
	f.feed(br, 0)
	// Kill liveness-at-exit for all three registers.
	for i := 0; i < 3; i++ {
		f.feed(f.inst(isa.IntALU, r+isa.Reg(i), isa.RegZero, isa.RegNone), 0)
		f.feed(f.inst(isa.IntALU, r+isa.Reg(i), isa.RegZero, isa.RegNone), 0)
	}
	f.pad(100)
	f.finish()
	for _, s := range []uint64{sa, sb, sc} {
		if !f.out[s] {
			t.Fatalf("chain element seq %d not ACE", s)
		}
	}
}

func TestChainWithoutAnchorDies(t *testing.T) {
	f := newFeeder(64)
	a := f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone)
	b := f.inst(isa.IntALU, r+1, r, isa.RegNone)
	sa := f.feed(a, 0)
	sb := f.feed(b, 0)
	// Overwrite both without any anchor consuming the chain.
	for i := 0; i < 2; i++ {
		f.feed(f.inst(isa.IntALU, r+isa.Reg(i), isa.RegZero, isa.RegNone), 0)
		f.feed(f.inst(isa.IntALU, r+isa.Reg(i), isa.RegZero, isa.RegNone), 0)
	}
	f.pad(100)
	f.finish()
	if f.out[sa] || f.out[sb] {
		t.Fatal("anchorless chain classified ACE")
	}
}

func TestStoreReadBeforeOverwrite(t *testing.T) {
	f := newFeeder(64)
	v := f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone)
	st := f.inst(isa.Store, isa.RegNone, r, isa.RegNone)
	ld := f.inst(isa.Load, r+1, isa.RegZero, isa.RegNone)
	sv := f.feed(v, 0)
	ss := f.feed(st, 0x4000)
	f.feed(ld, 0x4000)
	// Kill register liveness tails.
	for i := 0; i < 2; i++ {
		f.feed(f.inst(isa.IntALU, r+isa.Reg(i), isa.RegZero, isa.RegNone), 0)
		f.feed(f.inst(isa.IntALU, r+isa.Reg(i), isa.RegZero, isa.RegNone), 0)
	}
	f.pad(100)
	f.finish()
	if !f.out[ss] {
		t.Fatal("read-back store not ACE")
	}
	if !f.out[sv] {
		t.Fatal("store value producer not ACE")
	}
}

func TestStoreOverwrittenUnreadDies(t *testing.T) {
	f := newFeeder(64)
	st := f.inst(isa.Store, isa.RegNone, isa.RegZero, isa.RegNone)
	s1 := f.feed(st, 0x4000)
	s2 := f.feed(st, 0x4000) // overwrites s1 before any read
	_ = s2
	f.pad(100)
	f.finish()
	if f.out[s1] {
		t.Fatal("overwritten unread store classified ACE")
	}
}

func TestStoreLiveAtExitConservativeACE(t *testing.T) {
	f := newFeeder(64)
	st := f.inst(isa.Store, isa.RegNone, isa.RegZero, isa.RegNone)
	s := f.feed(st, 0x4000)
	f.pad(200) // never overwritten, never read
	f.finish()
	if !f.out[s] {
		t.Fatal("window-exit live store should be conservatively ACE")
	}
}

func TestRegisterLiveAtExitConservativeACE(t *testing.T) {
	f := newFeeder(64)
	w := f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	f.pad(200) // r never overwritten
	f.finish()
	if !f.out[w] {
		t.Fatal("window-exit live register should be conservatively ACE")
	}
}

func TestLoadFeedingBranch(t *testing.T) {
	f := newFeeder(64)
	ld := f.inst(isa.Load, r, isa.RegZero, isa.RegNone)
	br := f.inst(isa.Branch, isa.RegNone, r, isa.RegNone)
	sl := f.feed(ld, 0x8000)
	f.feed(br, 0)
	f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	f.feed(f.inst(isa.IntALU, r, isa.RegZero, isa.RegNone), 0)
	f.pad(100)
	f.finish()
	if !f.out[sl] {
		t.Fatal("load feeding branch not ACE")
	}
}

func TestOutOfOrderRetirePanics(t *testing.T) {
	an := New(64, func(uint64, bool) {})
	in := &isa.Inst{Kind: isa.Nop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	an.Retire(&trace.DynInst{Static: in, Seq: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("skipping a sequence number must panic")
		}
	}()
	an.Retire(&trace.DynInst{Static: in, Seq: 5})
}

func TestEverySeqResolvedExactlyOnce(t *testing.T) {
	counts := map[uint64]int{}
	an := New(128, func(seq uint64, _ bool) { counts[seq]++ })
	in := &isa.Inst{Kind: isa.IntALU, Dest: r, Src1: isa.RegZero, Src2: isa.RegNone}
	const n = 1000
	for i := uint64(0); i < n; i++ {
		an.Retire(&trace.DynInst{Static: in, Seq: i})
	}
	an.Flush()
	if len(counts) != n {
		t.Fatalf("resolved %d of %d", len(counts), n)
	}
	for seq, c := range counts {
		if c != 1 {
			t.Fatalf("seq %d resolved %d times", seq, c)
		}
	}
}
