// Package ace implements architecturally-correct-execution (ACE) analysis
// following Mukherjee et al. (MICRO 2003), the methodology the paper builds
// on.
//
// The Analyzer consumes a committed dynamic instruction stream and decides,
// for every instruction, whether its result can affect the program's final
// output (ACE) or not (un-ACE). Classification uses backward liveness
// propagation inside a sliding post-retirement window (the paper uses a
// 40,000-instruction window):
//
//   - control instructions (branches, jumps, calls, returns) are anchors:
//     they and, transitively, their operand producers are ACE;
//   - a store becomes ACE when a later load reads its location before
//     another store overwrites it, or when it survives the window still
//     holding the newest value for its location (it may escape as output);
//     its value/address producers become ACE transitively;
//   - a register write that is never consumed on an ACE path, and is
//     overwritten before the window closes, is dynamically dead: un-ACE;
//   - a register write still architecturally live when it leaves the window
//     is conservatively ACE (a future read remains possible);
//   - NOPs are never ACE.
package ace

import (
	"visasim/internal/isa"
	"visasim/internal/trace"
)

// DefaultWindow is the post-retirement analysis window used by the paper.
const DefaultWindow = 40000

// anchorSlack is how many instructions before final resolution the
// conservative anchor decisions (store still holding the newest value,
// register still architecturally live) are taken. Deciding early leaves the
// anchor's producers — at most a few tens of instructions older — still
// inside the window so backward propagation reaches them; deciding at
// resolution time would mark anchors whose producers had just been resolved
// (visible as LateMarks).
const anchorSlack = 512

const noProducer = -1

type entry struct {
	producers [3]int64 // seq of source producers; [2] is a load's feeding store
	kind      isa.Kind
	dest      isa.Reg
	addr      uint64 // word-aligned address for stores
	ace       bool
	isStore   bool
	storeLive bool // store not yet overwritten
}

type regState struct {
	writer int64 // seq of last writer, noProducer if none in window
}

type memState struct {
	writer int64 // seq of last store to this word
}

// Analyzer performs streaming ACE classification. Feed committed
// instructions in order with Retire; resolved classifications come back via
// the callback passed to New, in order, delayed by up to the window size.
// Call Flush at end of stream to resolve the tail.
type Analyzer struct {
	window  uint64
	ring    []entry
	next    uint64 // seq of the next instruction to be retired into the analyzer
	settled uint64 // seq of the next instruction to be resolved out
	checked uint64 // seq of the next instruction to get its anchor decision

	regs [isa.NumRegs]regState
	mem  map[uint64]memState

	resolve func(seq uint64, ace bool)

	// dfs is the reusable backward-propagation work stack.
	dfs []int64

	// lateMarks counts ACE marks that arrived after the target had
	// already left the window — a measure of windowing error.
	lateMarks uint64
}

// New returns an analyzer with the given window (0 selects DefaultWindow).
// resolve is invoked exactly once per instruction, in retirement order.
func New(window int, resolve func(seq uint64, ace bool)) *Analyzer {
	if window <= 0 {
		window = DefaultWindow
	}
	a := &Analyzer{
		window:  uint64(window),
		ring:    make([]entry, window),
		mem:     make(map[uint64]memState),
		resolve: resolve,
	}
	for i := range a.regs {
		a.regs[i].writer = noProducer
	}
	return a
}

// LateMarks reports how many ACE marks arrived too late to change an
// already-resolved instruction (windowing error diagnostic).
func (a *Analyzer) LateMarks() uint64 { return a.lateMarks }

func (a *Analyzer) at(seq uint64) *entry { return &a.ring[seq%a.window] }

// inWindow reports whether seq is still held in the ring.
func (a *Analyzer) inWindow(seq int64) bool {
	return seq >= 0 && uint64(seq) >= a.settled && uint64(seq) < a.next
}

// Retire feeds the next committed instruction. d.Seq must equal the number
// of previously retired instructions.
func (a *Analyzer) Retire(d *trace.DynInst) {
	if d.Seq != a.next {
		panic("ace: out-of-order retirement")
	}
	// Conservative anchor decisions run anchorSlack instructions ahead
	// of resolution, then the oldest instruction falls out.
	if a.next >= a.window-a.slack() {
		a.anchorCheck(a.checked)
		a.checked++
	}
	if a.next >= a.window {
		a.settle(a.next - a.window)
	}

	in := d.Static
	e := a.at(d.Seq)
	*e = entry{
		producers: [3]int64{noProducer, noProducer, noProducer},
		kind:      in.Kind,
		dest:      isa.RegNone,
		isStore:   in.Kind == isa.Store,
	}
	a.next = d.Seq + 1

	// Record operand producers.
	if r := in.Src1; r != isa.RegNone && r != isa.RegZero {
		e.producers[0] = a.regs[r].writer
	}
	if r := in.Src2; r != isa.RegNone && r != isa.RegZero {
		e.producers[1] = a.regs[r].writer
	}

	switch in.Kind {
	case isa.Nop:
		// Never ACE; no dataflow.
	case isa.Store:
		word := d.Addr &^ 7
		e.addr = word
		e.storeLive = true
		// Overwriting a prior store kills it if it was never read.
		if prev, ok := a.mem[word]; ok && a.inWindow(prev.writer) {
			a.at(uint64(prev.writer)).storeLive = false
		}
		a.mem[word] = memState{writer: int64(d.Seq)}
	case isa.Load:
		word := d.Addr &^ 7
		if prev, ok := a.mem[word]; ok && a.inWindow(prev.writer) {
			st := a.at(uint64(prev.writer))
			e.producers[2] = prev.writer
			// The stored value reached a consumer: the store is
			// architecturally required.
			a.mark(uint64(prev.writer), st)
		}
	case isa.Branch, isa.Jump, isa.Call, isa.Return:
		// Control flow is always ACE.
		a.mark(d.Seq, e)
	}

	if in.HasDest() {
		e.dest = in.Dest
		a.regs[in.Dest].writer = int64(d.Seq)
	}
}

// mark sets e (at seq) ACE and propagates backwards through its producers.
func (a *Analyzer) mark(seq uint64, e *entry) {
	if e.ace {
		return
	}
	e.ace = true
	// Iterative DFS over producer edges; each entry is marked at most
	// once across the analyzer's lifetime, so total work is linear.
	push := func(p int64) {
		if p == noProducer {
			return
		}
		if !a.inWindow(p) {
			if p >= 0 {
				a.lateMarks++
			}
			return
		}
		a.dfs = append(a.dfs, p)
	}
	for _, p := range e.producers {
		push(p)
	}
	for len(a.dfs) > 0 {
		p := uint64(a.dfs[len(a.dfs)-1])
		a.dfs = a.dfs[:len(a.dfs)-1]
		pe := a.at(p)
		if pe.ace || pe.kind == isa.Nop {
			continue
		}
		pe.ace = true
		for _, pp := range pe.producers {
			push(pp)
		}
	}
}

// slack returns the anchor-decision lead, clamped for tiny windows.
func (a *Analyzer) slack() uint64 {
	if a.window/2 < anchorSlack {
		return a.window / 2
	}
	return anchorSlack
}

// anchorCheck takes the conservative anchor decisions for seq while its
// producers are still resolvable.
func (a *Analyzer) anchorCheck(seq uint64) {
	e := a.at(seq)
	if e.ace {
		return
	}
	switch {
	case e.isStore && e.storeLive:
		// Still the newest value for its location: may be program
		// output or read beyond the window. Conservatively ACE, and
		// so are its producers.
		a.mark(seq, e)
	case e.dest != isa.RegNone && a.regs[e.dest].writer == int64(seq):
		// Register still architecturally live near window exit: a
		// future read remains possible. Conservative ACE.
		a.mark(seq, e)
	}
}

// settle resolves the instruction at seq as it leaves the window.
func (a *Analyzer) settle(seq uint64) {
	if seq != a.settled {
		panic("ace: out-of-order settle")
	}
	e := a.at(seq)
	ace := e.ace
	// Drop stale tracking state pointing at this instruction.
	if e.dest != isa.RegNone && a.regs[e.dest].writer == int64(seq) {
		a.regs[e.dest].writer = noProducer
	}
	if e.isStore {
		if m, ok := a.mem[e.addr]; ok && m.writer == int64(seq) {
			delete(a.mem, e.addr)
		}
	}
	a.settled = seq + 1
	a.resolve(seq, ace)
}

// Flush resolves every instruction still inside the window. The analyzer
// must not be fed further after flushing.
func (a *Analyzer) Flush() {
	for ; a.checked < a.next; a.checked++ {
		a.anchorCheck(a.checked)
	}
	for a.settled < a.next {
		a.settle(a.settled)
	}
}
