package ace

import (
	"sort"
	"testing"

	"visasim/internal/workload"
)

// TestTopInconsistentPCs prints the static instructions with the most
// per-PC tag mismatches for one benchmark — the tuning view used while
// calibrating the generator's dataflow discipline (see DESIGN.md).
func TestTopInconsistentPCs(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	b := workload.MustGet("gcc")
	prog, _ := b.Generate()
	p, err := Run(prog, b.Params.Seed, 0, 200_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		idx      int
		mismatch uint64
	}
	var rows []row
	var totalMis uint64
	for i := range prog.Instrs {
		if p.ACEInstances[i] > 0 && p.ACEInstances[i] < p.Instances[i] {
			rows = append(rows, row{i, p.Instances[i] - p.ACEInstances[i]})
			totalMis += p.Instances[i] - p.ACEInstances[i]
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].mismatch > rows[b].mismatch })
	t.Logf("total mismatch=%d of %d", totalMis, p.DynInstrs)
	if len(rows) > 25 {
		rows = rows[:25]
	}
	for _, r := range rows {
		in := prog.Instrs[r.idx]
		t.Logf("idx=%d n=%d ace=%d pat=%d %v", r.idx, p.Instances[r.idx], p.ACEInstances[r.idx], in.MemPattern, in.String())
	}
}
