package ace

import (
	"encoding/gob"
	"fmt"
	"io"

	"visasim/internal/trace"
)

// profileFileVersion guards the on-disk format.
const profileFileVersion = 1

// profileFile is the serialised form of a Profile plus the provenance
// needed to detect mismatched reuse.
type profileFile struct {
	Version   int
	Benchmark string
	Seed      uint64
	Window    int

	BitWords     []uint64
	BitLen       uint64
	Tag          []bool
	Instances    []uint64
	ACEInstances []uint64
	DynInstrs    uint64
	DynACE       uint64
	LateMarks    uint64
}

// Save writes the profile to w with its provenance (benchmark name, seed
// and analysis window), so a later Load can refuse a mismatched program.
func (p *Profile) Save(w io.Writer, benchmark string, seed uint64, window int) error {
	if window <= 0 {
		window = DefaultWindow
	}
	return gob.NewEncoder(w).Encode(profileFile{
		Version:      profileFileVersion,
		Benchmark:    benchmark,
		Seed:         seed,
		Window:       window,
		BitWords:     p.Bits.Words(),
		BitLen:       p.Bits.Len(),
		Tag:          p.Tag,
		Instances:    p.Instances,
		ACEInstances: p.ACEInstances,
		DynInstrs:    p.DynInstrs,
		DynACE:       p.DynACE,
		LateMarks:    p.LateMarks,
	})
}

// Load reads a profile written by Save. It verifies provenance: the stored
// benchmark and seed must match, and the static-instruction count must
// agree with staticLen (0 skips that check).
func Load(r io.Reader, benchmark string, seed uint64, staticLen int) (*Profile, error) {
	var f profileFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("ace: decoding profile: %w", err)
	}
	switch {
	case f.Version != profileFileVersion:
		return nil, fmt.Errorf("ace: profile version %d, want %d", f.Version, profileFileVersion)
	case f.Benchmark != benchmark:
		return nil, fmt.Errorf("ace: profile is for %q, not %q", f.Benchmark, benchmark)
	case f.Seed != seed:
		return nil, fmt.Errorf("ace: profile seed %d, want %d", f.Seed, seed)
	case staticLen > 0 && len(f.Tag) != staticLen:
		return nil, fmt.Errorf("ace: profile covers %d static instructions, program has %d",
			len(f.Tag), staticLen)
	case len(f.Instances) != len(f.Tag) || len(f.ACEInstances) != len(f.Tag):
		return nil, fmt.Errorf("ace: inconsistent profile arrays")
	}
	bits, err := trace.NewBitSetFromWords(f.BitWords, f.BitLen)
	if err != nil {
		return nil, fmt.Errorf("ace: %w", err)
	}
	return &Profile{
		Bits:         bits,
		Tag:          f.Tag,
		Instances:    f.Instances,
		ACEInstances: f.ACEInstances,
		DynInstrs:    f.DynInstrs,
		DynACE:       f.DynACE,
		LateMarks:    f.LateMarks,
	}, nil
}
