package alloc

import (
	"testing"

	"visasim/internal/pipeline"
)

// TestIQLCapFigure3 checks the Figure 3 formula table-driven: IQ_SIZE = 96.
func TestIQLCapFigure3(t *testing.T) {
	const iq = 96
	tests := []struct {
		ipc, rql float64
		want     int
	}{
		// Region 0 ≤ IPC ≤ 2: min(RQL + 16, 32).
		{1, 0, 16},
		{1, 10, 26},
		{2, 30, 32},
		// Region 2 < IPC ≤ 4: min(RQL + 32, 48).
		{3, 0, 32},
		{3, 10, 42},
		{4, 40, 48},
		// Region 4 < IPC ≤ 6: min(RQL + 48, 64).
		{5, 0, 48},
		{5, 10, 58},
		{6, 40, 64},
		// Region 6 < IPC ≤ 8: min(RQL + 64, 96).
		{7, 0, 64},
		{7, 20, 84},
		{8, 50, 96},
	}
	for _, tt := range tests {
		if got := IQLCap(tt.ipc, tt.rql, iq); got != tt.want {
			t.Errorf("IQLCap(ipc=%v, rql=%v) = %d, want %d", tt.ipc, tt.rql, got, tt.want)
		}
	}
}

func TestIQLCapBounds(t *testing.T) {
	if got := IQLCap(0, 0, 96); got < 1 {
		t.Fatalf("cap %d below 1", got)
	}
	if got := IQLCap(8, 1000, 96); got > 96 {
		t.Fatalf("cap %d above IQ size", got)
	}
}

func view(interval int, ipc, rql float64, l2 uint64) *pipeline.View {
	return &pipeline.View{
		IQSize:           96,
		IntervalIndex:    interval,
		PrevIPC:          ipc,
		PrevMeanReadyLen: rql,
		PrevL2Misses:     l2,
	}
}

func TestOpt1FirstIntervalUncapped(t *testing.T) {
	o := NewOpt1()
	d := o.Decide(view(0, 0, 0, 0))
	if d.IQLCap >= 0 {
		t.Fatal("opt1 must not cap before the first interval completes")
	}
}

func TestOpt1CachesPerInterval(t *testing.T) {
	o := NewOpt1()
	d1 := o.Decide(view(1, 3, 10, 0))
	if d1.IQLCap != 42 {
		t.Fatalf("cap %d, want 42", d1.IQLCap)
	}
	// Same interval, different (stale) stats: decision unchanged.
	d2 := o.Decide(view(1, 7, 50, 0))
	if d2.IQLCap != 42 {
		t.Fatal("decision recomputed within an interval")
	}
	// New interval: recomputed.
	d3 := o.Decide(view(2, 7, 20, 0))
	if d3.IQLCap != 84 {
		t.Fatalf("new interval cap %d, want 84", d3.IQLCap)
	}
}

func TestOpt2SwitchesToFlush(t *testing.T) {
	o := NewOpt2()
	// Below threshold: cap like opt1, no flush.
	d := o.Decide(view(1, 3, 10, DefaultCacheMissThreshold))
	if d.UseFlush || d.IQLCap != 42 {
		t.Fatalf("below threshold: flush=%v cap=%d", d.UseFlush, d.IQLCap)
	}
	// Above threshold: flush, no cap.
	d = o.Decide(view(2, 3, 10, DefaultCacheMissThreshold+1))
	if !d.UseFlush || d.IQLCap >= 0 {
		t.Fatalf("above threshold: flush=%v cap=%d", d.UseFlush, d.IQLCap)
	}
}

func TestOpt2Names(t *testing.T) {
	if NewOpt1().Name() != "visa+opt1" || NewOpt2().Name() != "visa+opt2" {
		t.Fatal("controller names wrong")
	}
}
