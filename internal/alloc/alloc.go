// Package alloc implements the paper's dynamic IQ resource allocation
// (§2.2): Opt1 caps the number of allocatable issue-queue entries per
// 10K-cycle interval as a function of the previous interval's IPC and mean
// ready-queue length (Figure 3), and Opt2 additionally switches to the
// FLUSH fetch policy when the interval's L2 cache misses exceed a threshold
// (Figure 4), because capping the IQ while it is clogged by misses costs
// performance.
package alloc

import "visasim/internal/pipeline"

// DefaultCacheMissThreshold is the paper's Tcache_miss: interval L2-miss
// counts above it engage FLUSH instead of the IQL cap (the paper performed
// a sensitivity analysis and chose 16).
const DefaultCacheMissThreshold = 16

// Opt1 is the Figure 3 controller: IQL = min(RQL + a·IQ_SIZE, b·IQ_SIZE)
// with (a, b) selected by the previous interval's IPC quartile.
type Opt1 struct {
	// cached decision, recomputed at interval boundaries.
	interval int
	decision pipeline.Decision
}

// NewOpt1 returns the dynamic-allocation controller.
func NewOpt1() *Opt1 {
	return &Opt1{interval: -1, decision: pipeline.NoDecision()}
}

// Name implements pipeline.Controller.
func (o *Opt1) Name() string { return "visa+opt1" }

// Decide implements pipeline.Controller.
func (o *Opt1) Decide(v *pipeline.View) pipeline.Decision {
	if v.IntervalIndex != o.interval {
		o.interval = v.IntervalIndex
		o.decision = pipeline.NoDecision()
		if v.IntervalIndex > 0 { // need one completed interval of statistics
			o.decision.IQLCap = IQLCap(v.PrevIPC, v.PrevMeanReadyLen, v.IQSize)
		}
	}
	return o.decision
}

// IQLCap evaluates the Figure 3 formula: the allocation cap given the
// observed IPC, ready-queue length and total IQ size. The commit width of
// the studied machine is 8, so IPC is partitioned into four regions.
func IQLCap(ipc, rql float64, iqSize int) int {
	s := float64(iqSize)
	var add, ceil float64
	switch {
	case ipc <= 2:
		add, ceil = s/6, s/3
	case ipc <= 4:
		add, ceil = s/3, s/2
	case ipc <= 6:
		add, ceil = s/2, 2*s/3
	default:
		add, ceil = 2*s/3, s
	}
	iql := rql + add
	if iql > ceil {
		iql = ceil
	}
	if iql < 1 {
		iql = 1
	}
	if iql > s {
		iql = s
	}
	return int(iql)
}

// Opt2 is the Figure 4 controller: Opt1's cap while interval L2 misses stay
// at or below Tcache_miss, FLUSH above it.
type Opt2 struct {
	// Tcache is the L2-miss threshold (DefaultCacheMissThreshold when
	// zero-valued via NewOpt2).
	Tcache uint64

	interval int
	decision pipeline.Decision
}

// NewOpt2 returns the L2-miss-sensitive controller with the paper's
// threshold.
func NewOpt2() *Opt2 {
	return &Opt2{Tcache: DefaultCacheMissThreshold, interval: -1, decision: pipeline.NoDecision()}
}

// Name implements pipeline.Controller.
func (o *Opt2) Name() string { return "visa+opt2" }

// Decide implements pipeline.Controller.
func (o *Opt2) Decide(v *pipeline.View) pipeline.Decision {
	if v.IntervalIndex != o.interval {
		o.interval = v.IntervalIndex
		o.decision = pipeline.NoDecision()
		if v.IntervalIndex > 0 {
			if v.PrevL2Misses > o.Tcache {
				o.decision.UseFlush = true
			} else {
				o.decision.IQLCap = IQLCap(v.PrevIPC, v.PrevMeanReadyLen, v.IQSize)
			}
		}
	}
	return o.decision
}
