package cache

import (
	"testing"
	"testing/quick"

	"visasim/internal/config"
	"visasim/internal/rng"
)

// refLRU is a naive reference model of a set-associative LRU cache.
type refLRU struct {
	sets      int
	assoc     int
	lineShift uint
	entries   map[int][]uint64 // set -> line addresses, MRU first
}

func newRefLRU(cfg config.CacheConfig) *refLRU {
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &refLRU{
		sets:      cfg.Sets(),
		assoc:     cfg.Assoc,
		lineShift: shift,
		entries:   map[int][]uint64{},
	}
}

func (r *refLRU) access(addr uint64) bool {
	line := addr >> r.lineShift
	set := int(line) % r.sets
	ways := r.entries[set]
	for i, l := range ways {
		if l == line {
			// Move to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	// Miss: install at MRU, evict LRU.
	ways = append([]uint64{line}, ways...)
	if len(ways) > r.assoc {
		ways = ways[:r.assoc]
	}
	r.entries[set] = ways
	return false
}

// TestQuickCacheMatchesReference drives the cache and a naive LRU model with
// identical random access streams; every hit/miss decision must agree.
func TestQuickCacheMatchesReference(t *testing.T) {
	cfg := config.CacheConfig{Name: "q", SizeBytes: 4096, Assoc: 4, LineBytes: 64, HitLatency: 1}
	f := func(seed uint64, n uint16) bool {
		c := NewCache(cfg)
		ref := newRefLRU(cfg)
		src := rng.New(seed)
		now := uint64(0)
		for i := 0; i < int(n%800)+50; i++ {
			now++
			// Confine to 4x the cache size so reuse is common.
			addr := src.Uint64() % (4 * 4096)
			hit := c.Touch(addr, now, false)
			if !hit {
				c.Fill(addr, now, false)
			}
			if hit != ref.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTLBMatchesReference does the same for the TLB.
func TestQuickTLBMatchesReference(t *testing.T) {
	cfg := config.TLBConfig{Name: "q", Entries: 16, Assoc: 4, PageBytes: 4096, MissPenalty: 100}
	f := func(seed uint64, n uint16) bool {
		tlb := NewTLB(cfg)
		ref := newRefLRU(config.CacheConfig{
			Name: "ref", SizeBytes: cfg.Entries * cfg.PageBytes,
			Assoc: cfg.Assoc, LineBytes: cfg.PageBytes, HitLatency: 1,
		})
		src := rng.New(seed)
		now := uint64(0)
		for i := 0; i < int(n%800)+50; i++ {
			now++
			addr := src.Uint64() % (64 * 4096)
			hit := tlb.Access(addr, now) == 0
			if hit != ref.access(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyMonotoneLatency: a hierarchy access never returns data in
// the past and deeper levels are never faster than shallower ones.
func TestHierarchyMonotoneLatency(t *testing.T) {
	h := NewHierarchy(config.Default())
	src := rng.New(99)
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		now += uint64(src.Intn(3))
		addr := src.Uint64() % (8 << 20)
		r := h.Data(addr, now, src.Bool(0.2))
		if r.ReadyAt <= now {
			t.Fatalf("access at %d ready at %d", now, r.ReadyAt)
		}
		minLat := map[Level]uint64{HitL1: 1, HitL2: 2, HitMemory: 2}[r.Level]
		if !r.TLBMiss && r.Level == HitL1 && r.ReadyAt-now > 1 {
			t.Fatalf("clean L1 hit took %d cycles", r.ReadyAt-now)
		}
		if r.ReadyAt-now < minLat && !r.TLBMiss {
			t.Fatalf("%v hit too fast: %d cycles", r.Level, r.ReadyAt-now)
		}
	}
}
