// Package cache models the simulated memory hierarchy: set-associative
// write-back caches with true-LRU replacement, MSHR-style merging of
// outstanding misses on the same line, and TLBs (package-level, Table 2
// geometry comes from package config).
//
// Timing is returned as an absolute data-ready cycle so the pipeline can
// schedule load completion without callback plumbing; miss events are
// reported per level so fetch policies (STALL/FLUSH/DG/PDG) and the
// paper's optimisations can key off L2 misses.
package cache

import (
	"math/bits"

	"visasim/internal/config"
)

// Level identifies the deepest level that satisfied an access.
type Level uint8

// Access result levels.
const (
	HitL1 Level = iota
	HitL2
	HitMemory // missed in L2; satisfied by main memory
)

func (l Level) String() string {
	switch l {
	case HitL1:
		return "l1"
	case HitL2:
		return "l2"
	default:
		return "memory"
	}
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      config.CacheConfig
	sets     []line // sets*assoc, row-major
	assoc    int
	setShift uint
	setMask  uint64

	// pending maps a line-address to its outstanding fill (MSHR merge:
	// later accesses to the line wait on the same fill instead of
	// issuing another).
	pending map[uint64]pendingFill

	// Stats.
	Accesses  uint64
	Misses    uint64
	Evictions uint64
	Writeback uint64
}

// NewCache builds a cache with the given geometry.
func NewCache(cfg config.CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:      cfg,
		sets:     make([]line, cfg.Sets()*cfg.Assoc),
		assoc:    cfg.Assoc,
		setShift: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		setMask:  uint64(cfg.Sets() - 1),
		pending:  make(map[uint64]pendingFill),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

func (c *Cache) set(addr uint64) (base int, tag uint64) {
	lineAddr := addr >> c.setShift
	return int(lineAddr&c.setMask) * c.assoc, lineAddr >> bits.Len64(c.setMask)
}

// LineAddr returns addr's line address (for MSHR merging at callers).
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.setShift }

// Lookup probes for addr without modifying state (except stats are not
// touched either). Reports whether the line is resident.
func (c *Cache) Lookup(addr uint64) bool {
	base, tag := c.set(addr)
	for i := 0; i < c.assoc; i++ {
		if l := &c.sets[base+i]; l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Touch probes for addr; on hit it refreshes LRU and returns true.
func (c *Cache) Touch(addr uint64, now uint64, write bool) bool {
	c.Accesses++
	base, tag := c.set(addr)
	for i := 0; i < c.assoc; i++ {
		if l := &c.sets[base+i]; l.valid && l.tag == tag {
			l.used = now
			if write {
				l.dirty = true
			}
			return true
		}
	}
	c.Misses++
	return false
}

// Fill installs addr's line, evicting LRU if needed. Reports whether a
// dirty line was written back.
func (c *Cache) Fill(addr uint64, now uint64, write bool) bool {
	base, tag := c.set(addr)
	victim := base
	for i := 0; i < c.assoc; i++ {
		l := &c.sets[base+i]
		if !l.valid {
			victim = base + i
			break
		}
		if l.used < c.sets[victim].used {
			victim = base + i
		}
	}
	v := &c.sets[victim]
	wb := v.valid && v.dirty
	if v.valid {
		c.Evictions++
		if wb {
			c.Writeback++
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, used: now}
	return wb
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// pendingFill records one outstanding line fill: when the data arrives and
// which level it is coming from.
type pendingFill struct {
	ready uint64
	from  Level
}

// pendingAt returns the outstanding fill for addr's line, if any, pruning
// completed fills lazily.
func (c *Cache) pendingAt(addr, now uint64) (pendingFill, bool) {
	la := c.LineAddr(addr)
	p, ok := c.pending[la]
	if !ok {
		return pendingFill{}, false
	}
	if p.ready <= now {
		delete(c.pending, la)
		return pendingFill{}, false
	}
	return p, true
}

func (c *Cache) notePending(addr, ready uint64, from Level) {
	c.pending[c.LineAddr(addr)] = pendingFill{ready: ready, from: from}
}

// TLB is a set-associative translation buffer.
type TLB struct {
	cfg       config.TLBConfig
	sets      []line
	assoc     int
	pageShift uint
	setMask   uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given geometry.
func NewTLB(cfg config.TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &TLB{
		cfg:       cfg,
		sets:      make([]line, cfg.Entries),
		assoc:     cfg.Assoc,
		pageShift: uint(bits.TrailingZeros64(uint64(cfg.PageBytes))),
		setMask:   uint64(cfg.Sets() - 1),
	}
}

// Access translates addr: returns the added latency (0 on hit, the miss
// penalty on a miss, with the translation installed).
func (t *TLB) Access(addr uint64, now uint64) int {
	t.Accesses++
	page := addr >> t.pageShift
	base := int(page&t.setMask) * t.assoc
	tag := page >> bits.Len64(t.setMask)
	victim := base
	for i := 0; i < t.assoc; i++ {
		l := &t.sets[base+i]
		if l.valid && l.tag == tag {
			l.used = now
			return 0
		}
		if !l.valid {
			victim = base + i
		} else if c := &t.sets[victim]; c.valid && l.used < c.used {
			victim = base + i
		}
	}
	t.Misses++
	t.sets[victim] = line{tag: tag, valid: true, used: now}
	return t.cfg.MissPenalty
}

// MissRate returns misses/accesses (0 when idle).
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}
