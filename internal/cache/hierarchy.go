package cache

import "visasim/internal/config"

// Result describes one hierarchy access.
type Result struct {
	// ReadyAt is the absolute cycle the data is available.
	ReadyAt uint64
	// Level is the deepest level consulted (HitL1, HitL2, HitMemory).
	Level Level
	// TLBMiss reports whether translation added the TLB miss penalty.
	TLBMiss bool
}

// L2Miss reports whether the access went to main memory.
func (r Result) L2Miss() bool { return r.Level == HitMemory }

// Hierarchy is the full simulated memory system: split L1s behind a shared
// unified L2 and main memory, with ITLB/DTLB translation. All SMT threads
// share every level, as on real SMT hardware — inter-thread cache
// interference is a first-order effect in the paper's MIX/MEM workloads.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	ITLB *TLB
	DTLB *TLB

	memLatency uint64

	// Stats.
	L2MissCount uint64 // data-side L2 misses (the paper's trigger metric)
}

// NewHierarchy builds the hierarchy from the machine configuration.
func NewHierarchy(m config.Machine) *Hierarchy {
	return &Hierarchy{
		L1I:        NewCache(m.L1I),
		L1D:        NewCache(m.L1D),
		L2:         NewCache(m.L2),
		ITLB:       NewTLB(m.ITLB),
		DTLB:       NewTLB(m.DTLB),
		memLatency: uint64(m.MemoryLatency),
	}
}

// Fetch performs an instruction fetch access at pc.
func (h *Hierarchy) Fetch(pc uint64, now uint64) Result {
	return h.access(h.L1I, h.ITLB, pc, now, false, false)
}

// Data performs a data access (write=true for stores).
func (h *Hierarchy) Data(addr uint64, now uint64, write bool) Result {
	return h.access(h.L1D, h.DTLB, addr, now, write, true)
}

// access runs the common L1 → L2 → memory path.
func (h *Hierarchy) access(l1 *Cache, tlb *TLB, addr uint64, now uint64, write, data bool) Result {
	res := Result{}
	t := uint64(tlb.Access(addr, now))
	res.TLBMiss = t > 0
	when := now + t

	if l1.Touch(addr, now, write) {
		// A tag hit on a line whose fill is still outstanding waits
		// for the fill (MSHR merge); otherwise it is a true hit.
		if p, ok := l1.pendingAt(addr, now); ok {
			res.Level = p.from
			res.ReadyAt = maxU64(p.ready, when)
			return res
		}
		res.Level = HitL1
		res.ReadyAt = when + uint64(l1.cfg.HitLatency)
		return res
	}

	l2Start := when + uint64(l1.cfg.HitLatency)
	if h.L2.Touch(addr, now, false) {
		if p, ok := h.L2.pendingAt(addr, now); ok {
			res.Level = HitMemory
			res.ReadyAt = maxU64(p.ready, when)
			l1.Fill(addr, now, write)
			l1.notePending(addr, res.ReadyAt, HitMemory)
			return res
		}
		res.Level = HitL2
		res.ReadyAt = l2Start + uint64(h.L2.cfg.HitLatency)
	} else if p, ok := h.L2.pendingAt(addr, now); ok {
		res.Level = HitMemory
		res.ReadyAt = maxU64(p.ready, when)
	} else {
		res.Level = HitMemory
		res.ReadyAt = l2Start + uint64(h.L2.cfg.HitLatency) + h.memLatency
		h.L2.notePending(addr, res.ReadyAt, HitMemory)
		h.L2.Fill(addr, now, false)
		if data {
			// Count one miss event per line fill (MSHR-merged
			// waiters do not raise new misses), matching the
			// hardware counter the paper's mechanisms read.
			h.L2MissCount++
		}
	}
	l1.Fill(addr, now, write)
	l1.notePending(addr, res.ReadyAt, res.Level)
	return res
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
