package cache

import (
	"testing"

	"visasim/internal/config"
)

func smallCache() *Cache {
	return NewCache(config.CacheConfig{
		Name: "t", SizeBytes: 1024, Assoc: 2, LineBytes: 64, HitLatency: 1,
	}) // 8 sets × 2 ways
}

func TestTouchMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Touch(0x100, 1, false) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x100, 1, false)
	if !c.Touch(0x100, 2, false) {
		t.Fatal("filled line missed")
	}
	if !c.Touch(0x13F, 3, false) {
		t.Fatal("same line different offset missed")
	}
	if c.Touch(0x140, 4, false) {
		t.Fatal("adjacent line hit")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines in the same set (set stride = 8 sets × 64B = 512B).
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Fill(a, 1, false)
	c.Fill(b, 2, false)
	c.Touch(a, 3, false) // a most recent
	c.Fill(d, 4, false)  // evicts b (LRU)
	if !c.Lookup(a) {
		t.Fatal("recently used line evicted")
	}
	if c.Lookup(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Lookup(d) {
		t.Fatal("new line absent")
	}
}

func TestWritebackCounting(t *testing.T) {
	c := smallCache()
	c.Fill(0x0000, 1, true) // dirty
	c.Fill(0x0200, 2, false)
	if wb := c.Fill(0x0400, 3, false); !wb {
		t.Fatal("evicting dirty line must report writeback")
	}
	if c.Writeback != 1 {
		t.Fatalf("writebacks %d", c.Writeback)
	}
}

func TestTouchWriteSetsDirty(t *testing.T) {
	c := smallCache()
	c.Fill(0x0000, 1, false)
	c.Touch(0x0000, 2, true) // dirty via write hit
	c.Fill(0x0200, 3, false)
	if wb := c.Fill(0x0400, 4, false); !wb {
		t.Fatal("write-hit dirtied line should write back")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Fatal("idle cache miss rate nonzero")
	}
	c.Touch(0, 1, false)
	c.Fill(0, 1, false)
	c.Touch(0, 2, false)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", got)
	}
}

func TestTLBMissPenaltyAndFill(t *testing.T) {
	tlb := NewTLB(config.TLBConfig{Name: "t", Entries: 8, Assoc: 2, PageBytes: 4096, MissPenalty: 200})
	if got := tlb.Access(0x1000, 1); got != 200 {
		t.Fatalf("cold access penalty %d", got)
	}
	if got := tlb.Access(0x1FFF, 2); got != 0 {
		t.Fatalf("same page penalty %d", got)
	}
	if got := tlb.Access(0x2000, 3); got != 200 {
		t.Fatalf("new page penalty %d", got)
	}
	if tlb.MissRate() != 2.0/3.0 {
		t.Fatalf("miss rate %v", tlb.MissRate())
	}
}

func TestTLBLRU(t *testing.T) {
	tlb := NewTLB(config.TLBConfig{Name: "t", Entries: 4, Assoc: 2, PageBytes: 4096, MissPenalty: 100})
	// Two sets; pages 0,2,4 map to set 0.
	p0, p2, p4 := uint64(0x0000), uint64(0x2000), uint64(0x4000)
	tlb.Access(p0, 1)
	tlb.Access(p2, 2)
	tlb.Access(p0, 3) // refresh p0
	tlb.Access(p4, 4) // evicts p2
	if tlb.Access(p0, 5) != 0 {
		t.Fatal("refreshed page evicted")
	}
	if tlb.Access(p2, 6) == 0 {
		t.Fatal("LRU page survived")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	m := config.Default()
	h := NewHierarchy(m)
	const addr = 0x1000_0000

	r := h.Data(addr, 100, false)
	if !r.L2Miss() || !r.TLBMiss {
		t.Fatal("cold access must miss everywhere")
	}
	// TLB(200) + L1(1) + L2(12) + memory(200).
	want := uint64(100 + 200 + 1 + 12 + 200)
	if r.ReadyAt != want {
		t.Fatalf("cold latency ready at %d, want %d", r.ReadyAt, want)
	}

	r = h.Data(addr, 1000, false)
	if r.Level != HitL1 || r.TLBMiss {
		t.Fatalf("warm access level %v", r.Level)
	}
	if r.ReadyAt != 1001 {
		t.Fatalf("L1 hit ready at %d", r.ReadyAt)
	}

	// L2 hit: evict from L1 only by touching conflicting lines.
	other := uint64(addr) + uint64(m.L1D.SizeBytes)
	for i := 0; i < m.L1D.Assoc+1; i++ {
		h.Data(other+uint64(i)*uint64(m.L1D.SizeBytes), 2000+uint64(i)*500, false)
	}
	r = h.Data(addr, 9000, false)
	if r.Level != HitL2 {
		t.Fatalf("expected L2 hit, got %v", r.Level)
	}
	if r.ReadyAt != 9000+1+12 {
		t.Fatalf("L2 hit ready at %d", r.ReadyAt)
	}
}

func TestMSHRMerge(t *testing.T) {
	h := NewHierarchy(config.Default())
	const a = 0x2000_0000
	h.Data(a, 100, false) // warm the TLB? no — first access includes TLB miss
	// Use a second access in flight on the same line.
	start := uint64(10_000)
	r1 := h.Data(a+4096, start, false) // new page+line: miss to memory
	if !r1.L2Miss() {
		t.Fatal("expected memory miss")
	}
	miss := h.L2MissCount
	r2 := h.Data(a+4096+8, start+2, false) // same line, fill outstanding
	if r2.ReadyAt != r1.ReadyAt {
		t.Fatalf("merged access ready %d, fill ready %d", r2.ReadyAt, r1.ReadyAt)
	}
	if h.L2MissCount != miss {
		t.Fatal("merged access counted as new L2 miss")
	}
}

func TestL2MissCountPerLine(t *testing.T) {
	h := NewHierarchy(config.Default())
	base := uint64(0x3000_0000)
	for i := uint64(0); i < 4; i++ {
		h.Data(base+i*8, 100+i, false) // same 128B L2 line
	}
	if h.L2MissCount != 1 {
		t.Fatalf("L2 miss events %d, want 1", h.L2MissCount)
	}
	h.Data(base+4096, 500, false) // different page/line
	if h.L2MissCount != 2 {
		t.Fatalf("L2 miss events %d, want 2", h.L2MissCount)
	}
}

func TestFetchPath(t *testing.T) {
	h := NewHierarchy(config.Default())
	r := h.Fetch(0x40_0000, 50)
	if r.Level == HitL1 {
		t.Fatal("cold I-fetch hit")
	}
	r = h.Fetch(0x40_0000, 1000)
	if r.Level != HitL1 || r.ReadyAt != 1001 {
		t.Fatalf("warm I-fetch level %v ready %d", r.Level, r.ReadyAt)
	}
	if h.L2MissCount != 0 {
		t.Fatal("instruction misses must not count as data L2 misses")
	}
}

func TestLevelString(t *testing.T) {
	if HitL1.String() != "l1" || HitL2.String() != "l2" || HitMemory.String() != "memory" {
		t.Fatal("level names wrong")
	}
}
