package harness

import (
	"errors"
	"strings"
	"testing"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

func cell(key, bench string) Cell {
	return Cell{
		Key: key,
		Cfg: core.Config{
			Benchmarks:      []string{bench},
			Scheme:          core.SchemeBase,
			Policy:          pipeline.PolicyICOUNT,
			MaxInstructions: 8000,
		},
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	cells := []Cell{cell("a", "gcc"), cell("b", "mcf"), cell("c", "bzip2")}
	seq, err := Run(cells, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(cells, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range seq {
		if seq[k].Cycles != par[k].Cycles || seq[k].IQAVF != par[k].IQAVF {
			t.Fatalf("cell %s differs between schedules", k)
		}
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	if _, err := Run([]Cell{cell("x", "gcc"), cell("x", "mcf")}, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if err := ValidateKeys([]Cell{cell("x", "gcc"), cell("x", "mcf")}); err == nil {
		t.Fatal("ValidateKeys accepted duplicate keys")
	}
	if err := ValidateKeys([]Cell{cell("x", "gcc"), cell("y", "gcc")}); err != nil {
		t.Fatalf("ValidateKeys rejected distinct keys: %v", err)
	}
}

func TestErrorPropagates(t *testing.T) {
	bad := Cell{Key: "bad", Cfg: core.Config{Benchmarks: []string{"nonesuch"}, MaxInstructions: 1000}}
	_, err := Run([]Cell{cell("ok", "gcc"), bad}, Options{Workers: 2})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %v does not name the failing cell", err)
	}
}

// TestAbortErrorIsKeyed pins the abort path's contract: when a cell fails,
// the batch aborts, no partial results leak out, and the returned error is
// a *CellError carrying the failing cell's key and the underlying cause.
func TestAbortErrorIsKeyed(t *testing.T) {
	bad := Cell{Key: "doomed", Cfg: core.Config{Benchmarks: []string{"nonesuch"}, MaxInstructions: 1000}}
	cells := []Cell{bad, cell("ok1", "gcc"), cell("ok2", "mcf")}

	res, stats, err := RunStats(cells, Options{Workers: 1})
	if err == nil {
		t.Fatal("bad cell did not abort the batch")
	}
	if res != nil || stats != nil {
		t.Fatalf("aborted batch leaked partial results: %v %v", res, stats)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CellError", err)
	}
	if ce.Key != "doomed" {
		t.Fatalf("CellError names cell %q, want %q", ce.Key, "doomed")
	}
	if ce.Err == nil || !strings.Contains(ce.Err.Error(), "nonesuch") {
		t.Fatalf("CellError cause %v does not carry the simulation error", ce.Err)
	}
	// The wrapped cause must stay reachable through errors.Unwrap.
	if !errors.Is(err, ce.Err) {
		t.Fatal("errors.Is cannot reach the wrapped cause")
	}
}

func TestEmptyBatch(t *testing.T) {
	res, err := Run(nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
}
