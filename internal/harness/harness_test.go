package harness

import (
	"strings"
	"testing"

	"visasim/internal/core"
	"visasim/internal/pipeline"
)

func cell(key, bench string) Cell {
	return Cell{
		Key: key,
		Cfg: core.Config{
			Benchmarks:      []string{bench},
			Scheme:          core.SchemeBase,
			Policy:          pipeline.PolicyICOUNT,
			MaxInstructions: 8000,
		},
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	cells := []Cell{cell("a", "gcc"), cell("b", "mcf"), cell("c", "bzip2")}
	seq, err := Run(cells, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(cells, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := range seq {
		if seq[k].Cycles != par[k].Cycles || seq[k].IQAVF != par[k].IQAVF {
			t.Fatalf("cell %s differs between schedules", k)
		}
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	if _, err := Run([]Cell{cell("x", "gcc"), cell("x", "mcf")}, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestErrorPropagates(t *testing.T) {
	bad := Cell{Key: "bad", Cfg: core.Config{Benchmarks: []string{"nonesuch"}, MaxInstructions: 1000}}
	_, err := Run([]Cell{cell("ok", "gcc"), bad}, Options{Workers: 2})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %v does not name the failing cell", err)
	}
}

func TestEmptyBatch(t *testing.T) {
	res, err := Run(nil, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v %v", res, err)
	}
}
