// Package harness runs batches of independent simulations across a worker
// pool. Experiment sweeps (scheme × policy × workload × threshold) are
// embarrassingly parallel; every cell is deterministic on its own, so the
// parallel schedule never affects results.
package harness

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"visasim/internal/core"
	"visasim/internal/decision"
	"visasim/internal/uarch"
)

// Cell is one simulation in a sweep.
type Cell struct {
	// Key identifies the cell in the result map; it must be unique
	// within a batch.
	Key string
	Cfg core.Config
}

// Results maps cell keys to simulation results.
type Results map[string]*core.Result

// Traces maps cell keys to recorded decision traces (present only for
// batches run with Options.TraceLevel > 0).
type Traces map[string]*decision.Trace

// CellStats records one cell's simulator cost: how long the simulation
// took and how fast the simulated machine advanced. Seconds covers only
// core.Run (workload generation, profiling and simulation), not queueing;
// SimSeconds narrows further to the pipeline run alone, so the core loop's
// rate (SimCyclesPerSec) is separable from one-time per-cell setup such as
// the ACE profiling pass.
type CellStats struct {
	Seconds      float64
	Cycles       uint64
	Instructions uint64
	CyclesPerSec float64
	InstrsPerSec float64

	SimSeconds      float64 `json:",omitempty"`
	SimCyclesPerSec float64 `json:",omitempty"`

	// Telemetry summarises the cell's per-stage simulator behaviour, so a
	// hot cell is explainable from its cost record alone — without
	// decoding the full Result — wherever the record travels (the
	// daemon's metrics, the dispatch coordinator, the persistent store).
	Telemetry StageTelemetry
}

// StageTelemetry is the per-stage summary carried alongside a cell's cost
// record. All fields are deterministic functions of the cell's Config (they
// come from the simulated machine, not the wall clock), so identical cells
// carry identical telemetry wherever they were run.
type StageTelemetry struct {
	// MeanIQOccupancy and IQHighWater describe issue-queue pressure;
	// MeanReadyLen is the mean ready-queue depth (the paper's Figure 2
	// x-axis).
	MeanIQOccupancy float64
	IQHighWater     int
	MeanReadyLen    float64
	// PolicySwitches counts controller-driven fetch-policy mode changes;
	// DVMTriggers counts waiting-queue throttle engagements.
	PolicySwitches uint64
	DVMTriggers    uint64
}

// Stats maps cell keys to their cost records.
type Stats map[string]CellStats

// DefaultWorkers returns the worker count used when Options.Workers is 0
// (GOMAXPROCS), so other pools — e.g. the simulation service — can share
// the default.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options tunes batch execution.
type Options struct {
	// Workers bounds concurrent simulations (GOMAXPROCS when 0).
	Workers int
	// CPUProfile, when non-empty, writes a pprof CPU profile covering
	// the whole batch to this path.
	CPUProfile string
	// Labels are extra pprof labels applied to every cell's simulation
	// goroutine alongside the always-present "cell" label (e.g. the
	// daemon attaches the sweep correlation ID), so profiles attribute
	// CPU time per sweep and per cell.
	Labels map[string]string
	// TraceLevel enables per-cell decision recording (see
	// core.RunOptions.TraceLevel). It never affects results: tracing is
	// observation only, and the field is not part of any cell's
	// content-address hash.
	TraceLevel int
}

// CellError reports which cell of a batch failed and why. It is the
// concrete type of the error Run and RunStats return when a simulation
// fails, so callers sweeping many cells can recover the failing cell's key
// with errors.As instead of parsing the message.
type CellError struct {
	// Key is the failing cell's key.
	Key string
	// Err is the underlying simulation error.
	Err error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %s: %v", e.Key, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// ValidateKeys rejects batches with duplicate cell keys. Every runner that
// accepts a []Cell — RunStats here, the simulation service's submit path,
// the dispatch coordinator — applies the same rule, so a batch that one
// accepts is never rejected by another over its keys.
func ValidateKeys(cells []Cell) error {
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if seen[c.Key] {
			return fmt.Errorf("harness: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}
	return nil
}

// Run executes every cell and returns the keyed results. The first error
// aborts the batch (outstanding cells finish; queued ones are skipped) and
// is returned as a *CellError naming the cell that failed.
func Run(cells []Cell, opt Options) (Results, error) {
	res, _, err := RunStats(cells, opt)
	return res, err
}

// RunStats is Run plus per-cell wall-clock and throughput records, so
// sweeps can report where the simulation budget went.
func RunStats(cells []Cell, opt Options) (Results, Stats, error) {
	res, stats, _, err := RunTraced(cells, opt)
	return res, stats, err
}

// RunTraced is RunStats plus the per-cell decision traces recorded when
// opt.TraceLevel > 0 (the Traces map is empty otherwise). The parallel
// schedule never affects traces: every cell records in its own goroutine
// from its own deterministic simulation.
func RunTraced(cells []Cell, opt Options) (Results, Stats, Traces, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if err := ValidateKeys(cells); err != nil {
		return nil, nil, nil, err
	}

	if opt.CPUProfile != "" {
		f, err := os.Create(opt.CPUProfile)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("harness: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("harness: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var (
		mu       sync.Mutex
		results  = make(Results, len(cells))
		stats    = make(Stats, len(cells))
		traces   = make(Traces)
		firstErr error
	)
	// Stable extra-label ordering so profiles of identical batches carry
	// identically ordered label sets.
	extraKeys := make([]string, 0, len(opt.Labels))
	for k := range opt.Labels {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)

	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One uop free list per worker, shared across its (strictly
			// sequential) cells: steady-state allocation is paid once per
			// worker instead of once per cell. Never shared across
			// goroutines, and result-neutral by the pool's generation
			// protocol.
			pool := &uarch.UopPool{}
			for c := range jobs {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue
				}
				kv := make([]string, 0, 2+2*len(extraKeys))
				kv = append(kv, "cell", c.Key)
				for _, k := range extraKeys {
					kv = append(kv, k, opt.Labels[k])
				}
				var res *core.Result
				var tr *decision.Trace
				var err error
				var simTime time.Duration
				t0 := time.Now()
				// Label the simulation goroutine so CPU profiles
				// (harness-level or daemon-wide) attribute samples to the
				// cell — and, through opt.Labels, to the sweep — that
				// spent them.
				pprof.Do(context.Background(), pprof.Labels(kv...), func(context.Context) {
					res, tr, err = core.RunTraced(c.Cfg, core.RunOptions{
						TraceLevel: opt.TraceLevel,
						CellKey:    c.Key,
						Pool:       pool,
						SimTime:    &simTime,
					})
				})
				elapsed := time.Since(t0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = &CellError{Key: c.Key, Err: err}
					}
				} else {
					results[c.Key] = res
					if tr != nil {
						traces[c.Key] = tr
					}
					st := CellStats{
						Seconds:      elapsed.Seconds(),
						Cycles:       res.Cycles,
						Instructions: res.TotalCommits(),
						Telemetry: StageTelemetry{
							MeanIQOccupancy: res.MeanIQOccupancy,
							IQHighWater:     res.IQHighWater,
							MeanReadyLen:    res.MeanReadyLen,
							PolicySwitches:  res.PolicySwitches,
							DVMTriggers:     res.DVMTriggers,
						},
					}
					if st.Seconds > 0 {
						st.CyclesPerSec = float64(st.Cycles) / st.Seconds
						st.InstrsPerSec = float64(st.Instructions) / st.Seconds
					}
					st.SimSeconds = simTime.Seconds()
					if st.SimSeconds > 0 {
						st.SimCyclesPerSec = float64(st.Cycles) / st.SimSeconds
					}
					stats[c.Key] = st
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, nil, firstErr
	}
	return results, stats, traces, nil
}
