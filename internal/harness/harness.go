// Package harness runs batches of independent simulations across a worker
// pool. Experiment sweeps (scheme × policy × workload × threshold) are
// embarrassingly parallel; every cell is deterministic on its own, so the
// parallel schedule never affects results.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"visasim/internal/core"
)

// Cell is one simulation in a sweep.
type Cell struct {
	// Key identifies the cell in the result map; it must be unique
	// within a batch.
	Key string
	Cfg core.Config
}

// Results maps cell keys to simulation results.
type Results map[string]*core.Result

// Options tunes batch execution.
type Options struct {
	// Workers bounds concurrent simulations (GOMAXPROCS when 0).
	Workers int
}

// Run executes every cell and returns the keyed results. The first error
// aborts the batch (outstanding cells finish; queued ones are skipped).
func Run(cells []Cell, opt Options) (Results, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key] {
			return nil, fmt.Errorf("harness: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}

	var (
		mu       sync.Mutex
		results  = make(Results, len(cells))
		firstErr error
	)
	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue
				}
				res, err := core.Run(c.Cfg)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("cell %s: %w", c.Key, err)
					}
				} else {
					results[c.Key] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
