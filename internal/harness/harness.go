// Package harness runs batches of independent simulations across a worker
// pool. Experiment sweeps (scheme × policy × workload × threshold) are
// embarrassingly parallel; every cell is deterministic on its own, so the
// parallel schedule never affects results.
package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"visasim/internal/core"
)

// Cell is one simulation in a sweep.
type Cell struct {
	// Key identifies the cell in the result map; it must be unique
	// within a batch.
	Key string
	Cfg core.Config
}

// Results maps cell keys to simulation results.
type Results map[string]*core.Result

// CellStats records one cell's simulator cost: how long the simulation
// took and how fast the simulated machine advanced. Seconds covers only
// core.Run (workload generation, profiling and simulation), not queueing.
type CellStats struct {
	Seconds      float64
	Cycles       uint64
	Instructions uint64
	CyclesPerSec float64
	InstrsPerSec float64
}

// Stats maps cell keys to their cost records.
type Stats map[string]CellStats

// DefaultWorkers returns the worker count used when Options.Workers is 0
// (GOMAXPROCS), so other pools — e.g. the simulation service — can share
// the default.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options tunes batch execution.
type Options struct {
	// Workers bounds concurrent simulations (GOMAXPROCS when 0).
	Workers int
	// CPUProfile, when non-empty, writes a pprof CPU profile covering
	// the whole batch to this path.
	CPUProfile string
}

// CellError reports which cell of a batch failed and why. It is the
// concrete type of the error Run and RunStats return when a simulation
// fails, so callers sweeping many cells can recover the failing cell's key
// with errors.As instead of parsing the message.
type CellError struct {
	// Key is the failing cell's key.
	Key string
	// Err is the underlying simulation error.
	Err error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %s: %v", e.Key, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// ValidateKeys rejects batches with duplicate cell keys. Every runner that
// accepts a []Cell — RunStats here, the simulation service's submit path,
// the dispatch coordinator — applies the same rule, so a batch that one
// accepts is never rejected by another over its keys.
func ValidateKeys(cells []Cell) error {
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if seen[c.Key] {
			return fmt.Errorf("harness: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = true
	}
	return nil
}

// Run executes every cell and returns the keyed results. The first error
// aborts the batch (outstanding cells finish; queued ones are skipped) and
// is returned as a *CellError naming the cell that failed.
func Run(cells []Cell, opt Options) (Results, error) {
	res, _, err := RunStats(cells, opt)
	return res, err
}

// RunStats is Run plus per-cell wall-clock and throughput records, so
// sweeps can report where the simulation budget went.
func RunStats(cells []Cell, opt Options) (Results, Stats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if err := ValidateKeys(cells); err != nil {
		return nil, nil, err
	}

	if opt.CPUProfile != "" {
		f, err := os.Create(opt.CPUProfile)
		if err != nil {
			return nil, nil, fmt.Errorf("harness: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("harness: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var (
		mu       sync.Mutex
		results  = make(Results, len(cells))
		stats    = make(Stats, len(cells))
		firstErr error
	)
	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue
				}
				t0 := time.Now()
				res, err := core.Run(c.Cfg)
				elapsed := time.Since(t0)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = &CellError{Key: c.Key, Err: err}
					}
				} else {
					results[c.Key] = res
					st := CellStats{
						Seconds:      elapsed.Seconds(),
						Cycles:       res.Cycles,
						Instructions: res.TotalCommits(),
					}
					if st.Seconds > 0 {
						st.CyclesPerSec = float64(st.Cycles) / st.Seconds
						st.InstrsPerSec = float64(st.Instructions) / st.Seconds
					}
					stats[c.Key] = st
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return results, stats, nil
}
