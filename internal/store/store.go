// Package store is the durable tier under the simulation system's
// content-addressed caches: one file per core.Config.Hash address holding
// the simulation's Result and cost record, under a versioned directory
// root. The simulator is deterministic, so an address fully determines its
// contents — which is what makes serving a stored result (across daemon
// restarts, across sweeps, across machines sharing a filesystem)
// indistinguishable from re-simulating, and what makes checkpointed resume
// sound: a sweep's progress *is* the set of addresses present in the
// store. See DESIGN.md §8.
//
// Writes are atomic (temp file + rename in the same directory), so a
// crashed writer never leaves a half-written entry at a live address.
// Reads are corruption-tolerant: an entry that fails to decode or whose
// recorded hash mismatches its address is treated as a miss and removed.
// The store enforces an optional LRU size cap; entry access order is
// approximated across restarts by file modification times, which Get
// refreshes best-effort.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
)

// layoutVersion names the on-disk layout. Entries live under
// <root>/<layoutVersion>/<hash>.json; bumping it (e.g. if the entry
// envelope changes incompatibly) orphans old entries instead of
// misreading them. The *addresses* are already versioned independently by
// core's hash domain, so a Config semantics change never aliases here.
const layoutVersion = "v1"

// entryExt is the filename suffix of one stored result.
const entryExt = ".json"

// envelope is the JSON form of one entry file.
type envelope struct {
	// Hash echoes the entry's address so a misplaced or tampered file is
	// detected on read.
	Hash string `json:"hash"`
	// Stats is the cost record of the run that produced the result.
	Stats harness.CellStats `json:"stats"`
	// Result is the simulation outcome, exactly core.Result's JSON.
	Result json.RawMessage `json:"result"`
}

// Options tunes a Store.
type Options struct {
	// MaxBytes caps the total size of stored entries; past it the
	// least-recently-used entries are evicted. Zero means no cap.
	MaxBytes int64
}

// Store is a persistent content-addressed result store. It is safe for
// concurrent use by multiple goroutines. Multiple processes may share one
// root: writes are atomic renames and equal addresses hold byte-identical
// contents (determinism), so concurrent writers of the same address
// converge; a reader either sees a complete entry or a miss.
type Store struct {
	dir string // <root>/<layoutVersion>
	opt Options

	mu    sync.Mutex
	sizes map[string]int64 // hash -> entry file size
	seq   map[string]int64 // hash -> last-access sequence (higher = newer)
	tick  int64
	total int64
}

// Open creates (if needed) and indexes the store rooted at dir. Existing
// entries are indexed by file modification time, oldest first, so LRU
// eviction order survives restarts approximately.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	vdir := filepath.Join(dir, layoutVersion)
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:   vdir,
		opt:   opt,
		sizes: map[string]int64{},
		seq:   map[string]int64{},
	}
	ents, err := os.ReadDir(vdir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type stamped struct {
		hash string
		size int64
		mod  int64
	}
	var found []stamped
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, entryExt) {
			continue // leftover temp files are cleaned below
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, stamped{
			hash: strings.TrimSuffix(name, entryExt),
			size: info.Size(),
			mod:  info.ModTime().UnixNano(),
		})
	}
	// Abandoned temp files (crashed writers) are junk at non-live names;
	// sweep them so the directory doesn't accumulate them forever.
	for _, de := range ents {
		if !de.IsDir() && strings.HasPrefix(de.Name(), tmpPrefix) {
			os.Remove(filepath.Join(vdir, de.Name())) //nolint:errcheck
		}
	}
	// Order by modification time, then by hash: many filesystems store
	// mtimes at second or coarser granularity, so entries written in one
	// burst collide on mod and an mtime-only sort would seed the LRU
	// order — and therefore eviction order — differently on every Open.
	// The hash tie-break keeps restart eviction deterministic.
	sort.Slice(found, func(i, j int) bool {
		if found[i].mod != found[j].mod {
			return found[i].mod < found[j].mod
		}
		return found[i].hash < found[j].hash
	})
	for _, f := range found {
		s.tick++
		s.sizes[f.hash] = f.size
		s.seq[f.hash] = s.tick
		s.total += f.size
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// tmpPrefix marks in-progress writes; Open sweeps abandoned ones.
const tmpPrefix = ".tmp-"

// Dir returns the versioned directory entries live in.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash+entryExt)
}

// validHash guards against path escape: addresses are hex SHA-256 digests,
// so anything with separators or traversal parts is rejected outright.
func validHash(hash string) bool {
	if hash == "" || len(hash) > 128 {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

// Get returns the stored result and cost record at hash, or ok=false on a
// miss. A corrupt entry (undecodable, or recorded hash differing from its
// address) counts as a miss and is removed so a later Put can heal it.
func (s *Store) Get(hash string) (res *core.Result, stats harness.CellStats, ok bool) {
	if !validHash(hash) {
		return nil, harness.CellStats{}, false
	}
	blob, err := os.ReadFile(s.path(hash))
	if err != nil {
		return nil, harness.CellStats{}, false
	}
	var env envelope
	if err := json.Unmarshal(blob, &env); err != nil || env.Hash != hash ||
		len(env.Result) == 0 || string(env.Result) == "null" {
		s.drop(hash)
		return nil, harness.CellStats{}, false
	}
	var r core.Result
	if err := json.Unmarshal(env.Result, &r); err != nil {
		s.drop(hash)
		return nil, harness.CellStats{}, false
	}
	s.touch(hash, int64(len(blob)))
	return &r, env.Stats, true
}

// touch refreshes hash's LRU position (and, best-effort, its file mtime so
// the order survives a restart). It also adopts entries written by another
// process sharing the root, which Open never saw.
func (s *Store) touch(hash string, size int64) {
	now := time.Now()
	os.Chtimes(s.path(hash), now, now) //nolint:errcheck // advisory only
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, known := s.sizes[hash]; known {
		s.total += size - old
	} else {
		s.total += size
	}
	s.sizes[hash] = size
	s.tick++
	s.seq[hash] = s.tick
}

// drop removes a corrupt or evicted entry from disk and the index.
func (s *Store) drop(hash string) {
	os.Remove(s.path(hash)) //nolint:errcheck
	s.mu.Lock()
	defer s.mu.Unlock()
	s.forgetLocked(hash)
}

func (s *Store) forgetLocked(hash string) {
	if size, ok := s.sizes[hash]; ok {
		s.total -= size
		delete(s.sizes, hash)
		delete(s.seq, hash)
	}
}

// Put stores res and stats at hash, overwriting any previous entry. The
// write is atomic: the entry is staged in a temp file in the same
// directory and renamed into place, so readers never observe a partial
// entry. Putting past Options.MaxBytes evicts least-recently-used entries.
func (s *Store) Put(hash string, res *core.Result, stats harness.CellStats) error {
	if !validHash(hash) {
		return fmt.Errorf("store: invalid address %q", hash)
	}
	if res == nil {
		return errors.New("store: nil result")
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding result: %w", err)
	}
	blob, err := json.Marshal(envelope{Hash: hash, Stats: stats, Result: resJSON})
	if err != nil {
		return fmt.Errorf("store: encoding entry: %w", err)
	}
	blob = append(blob, '\n')

	tmp, err := os.CreateTemp(s.dir, tmpPrefix+hash+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(hash)); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("store: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, known := s.sizes[hash]; known {
		s.total += int64(len(blob)) - old
	} else {
		s.total += int64(len(blob))
	}
	s.sizes[hash] = int64(len(blob))
	s.tick++
	s.seq[hash] = s.tick
	s.evictLocked()
	return nil
}

// evictLocked removes least-recently-used entries until the total size is
// within Options.MaxBytes. Callers hold s.mu.
func (s *Store) evictLocked() {
	if s.opt.MaxBytes <= 0 {
		return
	}
	for s.total > s.opt.MaxBytes && len(s.sizes) > 1 {
		oldest, oldestSeq := "", int64(0)
		for h, q := range s.seq {
			// Sequence numbers are unique in-process; the hash tie-break
			// guards the impossible-by-construction case anyway so eviction
			// never depends on map iteration order.
			if oldest == "" || q < oldestSeq || (q == oldestSeq && h < oldest) {
				oldest, oldestSeq = h, q
			}
		}
		os.Remove(s.path(oldest)) //nolint:errcheck
		s.forgetLocked(oldest)
	}
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sizes)
}

// Bytes returns the total indexed entry size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Hashes returns the indexed addresses in unspecified order — the
// checkpoint set a resuming coordinator skips re-dispatching.
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sizes))
	for h := range s.sizes {
		out = append(out, h)
	}
	return out
}
