package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
)

// simOnce runs one tiny simulation and returns its hash, result, and cost
// record. Results are cached per scheme across the package's tests (the
// simulator's own profile cache makes repeats cheap anyway).
func simOnce(t *testing.T, scheme core.Scheme) (string, *core.Result, harness.CellStats) {
	t.Helper()
	cfg := core.Config{
		Benchmarks:      []string{"gcc"},
		Scheme:          scheme,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: 6000,
	}
	hash, err := cfg.Hash()
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := harness.RunStats([]harness.Cell{{Key: "c", Cfg: cfg}}, harness.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return hash, res["c"], stats["c"]
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, res, stats := simOnce(t, core.SchemeBase)

	if _, _, ok := s.Get(hash); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(hash, res, stats); err != nil {
		t.Fatal(err)
	}
	got, gotStats, ok := s.Get(hash)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if gotStats != stats {
		t.Fatalf("stats changed across the store: %+v != %+v", gotStats, stats)
	}
	// The byte-identical guarantee: re-encoding the loaded Result matches
	// the original encoding exactly.
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(have, want) {
		t.Fatal("stored Result JSON differs from the original")
	}
	if s.Len() != 1 || s.Bytes() <= 0 {
		t.Fatalf("index: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestReopenServesEntries(t *testing.T) {
	dir := t.TempDir()
	hash, res, stats := simOnce(t, core.SchemeVISA)

	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(hash, res, stats); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, ok := s2.Get(hash)
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if got.Cycles != res.Cycles {
		t.Fatalf("cycles %d != %d after reopen", got.Cycles, res.Cycles)
	}
	if s2.Len() != 1 {
		t.Fatalf("reopened index has %d entries", s2.Len())
	}
}

func TestCorruptEntryIsAMissAndRemoved(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, res, stats := simOnce(t, core.SchemeBase)
	if err := s.Put(hash, res, stats); err != nil {
		t.Fatal(err)
	}
	path := s.path(hash)

	cases := []struct {
		name string
		blob []byte
	}{
		{"truncated json", []byte(`{"hash":"` + hash + `","result":`)},
		{"hash mismatch", mustEnvelope(t, strings.Repeat("ab", 32), res, stats)},
		{"empty result", []byte(`{"hash":"` + hash + `","result":null}`)},
		{"garbage result", []byte(`{"hash":"` + hash + `","result":{"Cycles":"NaN-ish"}}`)},
	}
	for _, tc := range cases {
		if err := os.WriteFile(path, tc.blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok := s.Get(hash); ok {
			t.Fatalf("%s: corrupt entry served as a hit", tc.name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt entry not removed (stat err %v)", tc.name, err)
		}
		// Heal for the next case.
		if err := s.Put(hash, res, stats); err != nil {
			t.Fatal(err)
		}
	}
}

func mustEnvelope(t *testing.T, hash string, res *core.Result, stats harness.CellStats) []byte {
	t.Helper()
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(envelope{Hash: hash, Stats: stats, Result: resJSON})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestInvalidAddressesRejected(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, res, stats := simOnce(t, core.SchemeBase)
	for _, bad := range []string{"", "../escape", "a/b", "ABCZ", strings.Repeat("f", 200)} {
		if err := s.Put(bad, res, stats); err == nil {
			t.Errorf("Put(%q) accepted an invalid address", bad)
		}
		if _, _, ok := s.Get(bad); ok {
			t.Errorf("Get(%q) hit on an invalid address", bad)
		}
	}
}

// TestLRUEviction pins the size cap: with room for roughly two entries,
// putting a third evicts the least-recently-used one — and a Get refreshes
// recency, steering eviction away from the just-read entry.
func TestLRUEviction(t *testing.T) {
	hashA, res, stats := simOnce(t, core.SchemeBase)
	hashB, resB, statsB := simOnce(t, core.SchemeVISA)
	hashC, resC, statsC := simOnce(t, core.SchemeVISAOpt1)

	blob := mustEnvelope(t, hashA, res, stats)
	s, err := Open(t.TempDir(), Options{MaxBytes: int64(len(blob))*2 + 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(hashA, res, stats); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(hashB, resB, statsB); err != nil {
		t.Fatal(err)
	}
	// Read A so B becomes the LRU entry.
	if _, _, ok := s.Get(hashA); !ok {
		t.Fatal("A missing before eviction")
	}
	if err := s.Put(hashC, resC, statsC); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := s.Get(hashB); ok {
		t.Fatal("least-recently-used entry B survived past the cap")
	}
	if _, _, ok := s.Get(hashA); !ok {
		t.Fatal("recently-read entry A was evicted")
	}
	if _, _, ok := s.Get(hashC); !ok {
		t.Fatal("just-written entry C was evicted")
	}
	if s.Bytes() > s.opt.MaxBytes {
		t.Fatalf("store size %d exceeds cap %d", s.Bytes(), s.opt.MaxBytes)
	}
}

// TestOpenSweepsTempFiles checks crashed-writer hygiene: stray tmpPrefix
// files are removed on Open and never indexed.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	vdir := filepath.Join(dir, layoutVersion)
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(vdir, tmpPrefix+"deadbeef-123")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("temp file was indexed (%d entries)", s.Len())
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("temp file survived Open (stat err %v)", err)
	}
}

// TestConcurrentPutGet exercises the index under parallel access (run with
// -race in CI's race job).
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	hash, res, stats := simOnce(t, core.SchemeBase)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := s.Put(hash, res, stats); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.Get(hash) // must never observe a partial entry (checked below)
		select {
		case <-done:
			// The writes have all landed; the final read must hit.
			if _, _, ok := s.Get(hash); !ok {
				t.Fatal("entry missing after concurrent writes finished")
			}
			return
		default:
		}
	}
	t.Fatal("writer never finished")
}

// TestOpenEvictionDeterministicOnMtimeTies pins the LRU tie-break fix: on
// filesystems with coarse mtimes, a burst of writes lands many entries on
// the same timestamp, and Open's former mtime-only ordering left restart
// eviction order to sort.Slice's unstable whims. With the hash tie-break,
// equal-mtime entries always evict smallest-hash-first — byte-identical
// survivor sets on every reopen.
func TestOpenEvictionDeterministicOnMtimeTies(t *testing.T) {
	hashes := []string{"0a", "1b", "2c", "3d", "4e", "5f"}
	blob := bytes.Repeat([]byte("x"), 100)
	when := time.Now().Add(-time.Hour).Truncate(time.Second)

	survivors := func() []string {
		dir := t.TempDir()
		vdir := filepath.Join(dir, layoutVersion)
		if err := os.MkdirAll(vdir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, h := range hashes {
			p := filepath.Join(vdir, h+entryExt)
			if err := os.WriteFile(p, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			// Collapse every mtime onto one instant, as a coarse-mtime
			// filesystem would for a write burst.
			if err := os.Chtimes(p, when, when); err != nil {
				t.Fatal(err)
			}
		}
		// Room for three 100-byte entries: Open must evict the other three.
		s, err := Open(dir, Options{MaxBytes: 350})
		if err != nil {
			t.Fatal(err)
		}
		out := s.Hashes()
		sort.Strings(out)
		return out
	}

	want := []string{"3d", "4e", "5f"} // smallest hashes evict first on a tie
	for round := 0; round < 3; round++ {
		got := survivors()
		if len(got) != len(want) {
			t.Fatalf("round %d: %d survivors %v, want %v", round, len(got), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: survivors %v, want %v", round, got, want)
			}
		}
	}
}
