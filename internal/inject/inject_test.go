package inject

import (
	"math"
	"testing"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/pipeline"
	"visasim/internal/trace"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

func newProc(t testing.TB, names []string, budget uint64) *pipeline.Processor {
	t.Helper()
	streams := make([]*trace.Stream, len(names))
	for i, name := range names {
		b, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Generate()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ace.Run(prog, b.Params.Seed, 0, budget+8192, 0)
		if err != nil {
			t.Fatal(err)
		}
		prof.Apply(prog)
		streams[i] = trace.NewStream(trace.NewExecutor(prog, b.Params.Seed, i), prof.Bits)
	}
	proc, err := pipeline.New(pipeline.Params{
		Machine:         config.Default(),
		Scheduler:       uarch.SchedOldestFirst,
		Policy:          pipeline.PolicyICOUNT,
		Streams:         streams,
		MaxInstructions: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

// TestEmpiricalAVFMatchesAccounting is the statistical validation the AVF
// methodology is defined by: random strikes must corrupt at the accounted
// AVF rate.
func TestEmpiricalAVFMatchesAccounting(t *testing.T) {
	const budget = 60_000
	proc := newProc(t, []string{"bzip2", "eon", "gcc", "perlbmk"}, budget)
	c, err := Run(proc, Options{
		Instructions:     budget,
		StrikesPerKCycle: 800, // dense sampling for a tight CI
		Seed:             42,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(c.String())
	if c.Trials < 1000 {
		t.Fatalf("only %d strikes", c.Trials)
	}
	diff := math.Abs(c.EmpiricalAVF() - c.MeasuredAVF)
	if tol := 5*c.StdErr() + 0.01; diff > tol {
		t.Fatalf("empirical %.4f vs accounted %.4f differ by %.4f (tol %.4f)",
			c.EmpiricalAVF(), c.MeasuredAVF, diff, tol)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	const budget = 15_000
	run := func() *Campaign {
		proc := newProc(t, []string{"gcc", "mcf"}, budget)
		c, err := Run(proc, Options{Instructions: budget, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if a.Trials != b.Trials || a.Corrupted != b.Corrupted || a.MeasuredAVF != b.MeasuredAVF {
		t.Fatalf("campaigns differ: %v vs %v", a, b)
	}
}

func TestObserverSeesEveryStrike(t *testing.T) {
	const budget = 10_000
	proc := newProc(t, []string{"gcc"}, budget)
	var seen uint64
	var corrupting uint64
	c, err := Run(proc, Options{
		Instructions: budget,
		Seed:         3,
		Observer: func(s Strike) {
			seen++
			if s.Outcome == Corrupting {
				corrupting++
			}
			if s.Slot < 0 || s.Slot >= 96 || s.Bit < 0 || s.Bit >= 128 {
				t.Errorf("strike out of range: %+v", s)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != c.Trials || corrupting != c.Corrupted {
		t.Fatalf("observer saw %d/%d, campaign counted %d/%d",
			seen, corrupting, c.Trials, c.Corrupted)
	}
}

func TestZeroInstructionCampaignRejected(t *testing.T) {
	proc := newProc(t, []string{"gcc"}, 1000)
	if _, err := Run(proc, Options{}); err == nil {
		t.Fatal("zero-instruction campaign accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	if Masked.String() != "masked" || Corrupting.String() != "corrupting" {
		t.Fatal("outcome names")
	}
}
