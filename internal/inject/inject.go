// Package inject runs statistical fault-injection campaigns against the
// simulated issue queue.
//
// The AVF methodology the paper builds on (Mukherjee et al.) defines a
// structure's AVF as the probability that a uniformly random single-bit
// upset — random in both time and location — corrupts architecturally
// visible state. This package performs exactly that experiment: strike a
// uniformly random (cycle, entry, bit) of the IQ during a simulation and
// classify the strike with the simulator's ground-truth ACE analysis. Over
// many trials the corrupting fraction must converge to the accounted IQ
// AVF, which makes a campaign both a validation of the AVF bookkeeping and
// the natural way to translate AVF into an expected soft-error rate.
package inject

import (
	"fmt"
	"math"

	"visasim/internal/avf"
	"visasim/internal/pipeline"
	"visasim/internal/rng"
)

// Outcome classifies one injected upset.
type Outcome uint8

// Strike outcomes.
const (
	// Masked: the struck bit was in an idle entry, a wrong-path
	// instruction, or un-ACE payload — the program's output is
	// unaffected.
	Masked Outcome = iota
	// Corrupting: the struck bit was ACE — architecturally required —
	// so the upset propagates to program-visible state.
	Corrupting
)

func (o Outcome) String() string {
	if o == Corrupting {
		return "corrupting"
	}
	return "masked"
}

// Strike records one injected upset.
type Strike struct {
	Cycle   uint64
	Slot    int
	Bit     int
	Outcome Outcome
}

// Campaign is a completed injection campaign.
type Campaign struct {
	Trials      uint64
	Corrupted   uint64
	IdleHits    uint64  // strikes on unoccupied entries
	WrongPath   uint64  // strikes on wrong-path instructions
	MeasuredAVF float64 // the simulator's accounted IQ AVF over the run
}

// EmpiricalAVF is the corrupting fraction of strikes.
func (c *Campaign) EmpiricalAVF() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Corrupted) / float64(c.Trials)
}

// StdErr is the binomial standard error of EmpiricalAVF.
func (c *Campaign) StdErr() float64 {
	if c.Trials == 0 {
		return 0
	}
	p := c.EmpiricalAVF()
	return math.Sqrt(p * (1 - p) / float64(c.Trials))
}

// String summarises the campaign.
func (c *Campaign) String() string {
	return fmt.Sprintf("strikes %d: corrupting %.4f ±%.4f (accounted AVF %.4f); idle %.1f%%, wrong-path %.1f%%",
		c.Trials, c.EmpiricalAVF(), c.StdErr(), c.MeasuredAVF,
		100*float64(c.IdleHits)/float64(c.Trials),
		100*float64(c.WrongPath)/float64(c.Trials))
}

// Options tunes a campaign.
type Options struct {
	// Instructions to commit during the campaign.
	Instructions uint64
	// StrikesPerKCycle is the expected injection rate (strikes are
	// Bernoulli per cycle so time sampling is uniform).
	StrikesPerKCycle float64
	// Seed drives the strike generator.
	Seed uint64
	// Observer, if set, receives every strike.
	Observer func(Strike)
}

// Run drives proc for opt.Instructions committed instructions, injecting
// strikes along the way, and returns the campaign statistics. The processor
// must be freshly constructed; its results are finalised by the campaign.
func Run(proc *pipeline.Processor, opt Options) (*Campaign, error) {
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("inject: zero-instruction campaign")
	}
	rate := opt.StrikesPerKCycle
	if rate <= 0 {
		rate = 64
	}
	p := rate / 1000
	if p > 1 {
		p = 1
	}
	src := rng.New(rng.Hash64(opt.Seed, 0x57121CE))

	c := &Campaign{}
	iq := proc.IQ()
	size := iq.Size()
	cycleCap := proc.Cycle() + 128*opt.Instructions
	for proc.TotalCommits() < opt.Instructions && proc.Cycle() < cycleCap {
		proc.Step()
		if !src.Bool(p) {
			continue
		}
		s := Strike{
			Cycle: proc.Cycle(),
			Slot:  src.Intn(size),
			Bit:   src.Intn(avf.IQEntryBits),
		}
		c.Trials++
		u := iq.At(s.Slot)
		switch {
		case u == nil:
			c.IdleHits++
		case u.WrongPath:
			c.WrongPath++
		case uint64(s.Bit) < avf.IQBits(false, u.ACE):
			s.Outcome = Corrupting
			c.Corrupted++
		}
		if opt.Observer != nil {
			opt.Observer(s)
		}
	}
	res := proc.Run() // budget reached: finalises and returns results
	c.MeasuredAVF = res.IQAVF
	return c, nil
}
