// Package avf computes architectural vulnerability factors (AVF) for
// microarchitecture structures, per Mukherjee et al. (MICRO 2003): the AVF
// of a structure over an execution is the average fraction of its bits that
// are ACE per cycle,
//
//	AVF = Σ_cycles (resident ACE bits) / (total bits × cycles).
//
// Although instructions are classified at instruction granularity, AVF is
// accounted at bit level using explicit per-entry bit layouts (below), as
// the paper does.
package avf

// Per-entry bit layouts. These model the fields a real implementation
// holds; the split between "payload" bits (ACE only when the instruction is
// ACE) and "control" bits (opcode, tags — ACE whenever the entry holds a
// correct-path instruction, because corrupting them can change architectural
// behaviour even for dynamically dead instructions) follows the paper's
// observation that un-ACE instructions still contain some ACE bits.
// Wrong-path instructions contribute no ACE bits: any corruption is
// squashed with them.
const (
	// IQEntryBits: opcode(8) + thread(3) + dest tag(8) + two source
	// tags(16) + ready/valid flags(5) + immediate/displacement(64) +
	// ROB/LSQ links(16) + branch info(8) = 128.
	IQEntryBits = 128
	// IQACEBitsACE is the ACE-bit count of an IQ entry holding an ACE
	// instruction (payload + control).
	IQACEBitsACE = 112
	// IQACEBitsUnACE is the ACE-bit count for a correct-path un-ACE
	// instruction (opcode + routing control only).
	IQACEBitsUnACE = 24

	// ROBEntryBits: PC(32 used) + dest arch reg(6) + old mapping(8) +
	// exception/complete flags(6) + result-status(24) = 76. Result
	// values live in the register file, not the ROB, so the ACE payload
	// is modest: corrupting most of a completed entry cannot change
	// architectural state.
	ROBEntryBits = 76
	// ROBACEBitsACE / ROBACEBitsUnACE follow the same payload/control
	// split; most ROB payload matters only if the instruction is ACE.
	ROBACEBitsACE   = 28
	ROBACEBitsUnACE = 8

	// RegBits is one architectural register.
	RegBits = 64

	// FULatchBits models the pipeline latches of one function unit.
	FULatchBits = 128
)

// Accumulator tracks one structure's ACE-bit residency incrementally. Two
// equivalent usage styles exist and must not be mixed on one accumulator:
//
//   - Eager: Add/Sub on every occupancy change plus Tick once per cycle.
//   - Lazy: AddAt/SubAt with the absolute cycle of the change, and
//     SettleTo before reading Sum/Cycles/AVF/AVFSince. The idle cycles
//     between changes are charged in one multiply instead of one Tick
//     each, keeping per-cycle accounting off the simulation hot path.
//
// Under both styles a change during cycle N is counted for cycle N onward
// (an Add before the cycle's Tick; an AddAt(…, N) settling cycles < N
// first), so the two styles produce bit-identical sums.
type Accumulator struct {
	totalBits uint64 // structure capacity in bits
	current   uint64 // ACE bits resident this cycle
	sum       uint64 // Σ over cycles of current
	cycles    uint64
	settled   uint64 // absolute cycle sum covers (exclusive; lazy style)
}

// NewAccumulator returns an accumulator for a structure with entries
// entries of entryBits bits each.
func NewAccumulator(entries, entryBits int) *Accumulator {
	return &Accumulator{totalBits: uint64(entries) * uint64(entryBits)}
}

// Add notes bits ACE bits becoming resident.
func (a *Accumulator) Add(bits uint64) { a.current += bits }

// Sub notes bits ACE bits draining.
func (a *Accumulator) Sub(bits uint64) {
	if bits > a.current {
		panic("avf: accumulator underflow")
	}
	a.current -= bits
}

// Tick closes one cycle.
func (a *Accumulator) Tick() {
	a.sum += a.current
	a.cycles++
}

// SettleTo charges current residency for every cycle in [settled, now),
// bringing the sums up to date through cycle now-1 (lazy style).
func (a *Accumulator) SettleTo(now uint64) {
	if now <= a.settled {
		return
	}
	d := now - a.settled
	a.sum += a.current * d
	a.cycles += d
	a.settled = now
}

// AddAt notes bits ACE bits becoming resident during cycle now: they count
// from cycle now onward (lazy style).
func (a *Accumulator) AddAt(bits, now uint64) {
	a.SettleTo(now)
	a.current += bits
}

// SubAt notes bits ACE bits draining during cycle now: they no longer count
// for cycle now (lazy style).
func (a *Accumulator) SubAt(bits, now uint64) {
	a.SettleTo(now)
	if bits > a.current {
		panic("avf: accumulator underflow")
	}
	a.current -= bits
}

// ResetStatsAt zeroes the accumulated sums as of cycle now, preserving the
// resident ACE-bit count (lazy style).
func (a *Accumulator) ResetStatsAt(now uint64) {
	a.SettleTo(now)
	a.sum, a.cycles = 0, 0
}

// Current returns the ACE bits resident now.
func (a *Accumulator) Current() uint64 { return a.current }

// ResetStats zeroes the accumulated sums while preserving the currently
// resident ACE-bit count (in-flight entries keep contributing).
func (a *Accumulator) ResetStats() { a.sum, a.cycles = 0, 0 }

// Sum returns the cumulative ACE-bit-cycles.
func (a *Accumulator) Sum() uint64 { return a.sum }

// Cycles returns the ticked cycle count.
func (a *Accumulator) Cycles() uint64 { return a.cycles }

// TotalBits returns the structure capacity in bits.
func (a *Accumulator) TotalBits() uint64 { return a.totalBits }

// AVF returns the whole-run AVF.
func (a *Accumulator) AVF() float64 {
	if a.cycles == 0 || a.totalBits == 0 {
		return 0
	}
	return float64(a.sum) / (float64(a.totalBits) * float64(a.cycles))
}

// AVFSince returns the AVF of the window since a prior (sum, cycles)
// snapshot — the online interval estimator DVM samples.
func (a *Accumulator) AVFSince(sum, cycles uint64) float64 {
	dc := a.cycles - cycles
	if dc == 0 {
		return 0
	}
	return float64(a.sum-sum) / (float64(a.totalBits) * float64(dc))
}

// SpanAccumulator accounts structures whose ACE residency is only known
// retrospectively (the register file: a value's vulnerable span runs from
// its write to its last read, discovered when it is overwritten). Spans are
// charged in bulk; cycles tick as usual.
type SpanAccumulator struct {
	totalBits uint64
	sum       uint64
	cycles    uint64
	settled   uint64 // absolute cycle the cycle count covers (lazy style)
}

// NewSpanAccumulator returns a span accumulator for entries×entryBits.
func NewSpanAccumulator(entries, entryBits int) *SpanAccumulator {
	return &SpanAccumulator{totalBits: uint64(entries) * uint64(entryBits)}
}

// AddSpan charges bits ACE bits as resident for cycles cycles.
func (a *SpanAccumulator) AddSpan(bits, cycles uint64) { a.sum += bits * cycles }

// ResetStats zeroes the accumulated sums.
func (a *SpanAccumulator) ResetStats() { a.sum, a.cycles = 0, 0 }

// Tick closes one cycle.
func (a *SpanAccumulator) Tick() { a.cycles++ }

// SettleTo brings the cycle count up to date through cycle now-1 (lazy
// style; spans are charged in bulk so only the denominator accrues).
func (a *SpanAccumulator) SettleTo(now uint64) {
	if now > a.settled {
		a.cycles += now - a.settled
		a.settled = now
	}
}

// ResetStatsAt zeroes the accumulated sums as of cycle now (lazy style).
func (a *SpanAccumulator) ResetStatsAt(now uint64) {
	a.SettleTo(now)
	a.sum, a.cycles = 0, 0
}

// AVF returns the whole-run AVF.
func (a *SpanAccumulator) AVF() float64 {
	if a.cycles == 0 || a.totalBits == 0 {
		return 0
	}
	return float64(a.sum) / (float64(a.totalBits) * float64(a.cycles))
}

// IQBits returns the ACE-bit contribution of one IQ entry holding an
// instruction with the given classification.
func IQBits(wrongPath, aceInst bool) uint64 {
	switch {
	case wrongPath:
		return 0
	case aceInst:
		return IQACEBitsACE
	default:
		return IQACEBitsUnACE
	}
}

// ROBBits returns the ACE-bit contribution of one ROB entry.
func ROBBits(wrongPath, aceInst bool) uint64 {
	switch {
	case wrongPath:
		return 0
	case aceInst:
		return ROBACEBitsACE
	default:
		return ROBACEBitsUnACE
	}
}
