package avf

import (
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	a := NewAccumulator(2, 100) // 200 bits total
	a.Add(50)
	a.Tick()
	a.Tick()
	a.Sub(50)
	a.Add(100)
	a.Tick()
	// Sum = 50 + 50 + 100 = 200 over 3 cycles of 200 bits.
	if got, want := a.AVF(), 200.0/600.0; got != want {
		t.Fatalf("AVF %v, want %v", got, want)
	}
	if a.Current() != 100 || a.Sum() != 200 || a.Cycles() != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestAccumulatorUnderflowPanics(t *testing.T) {
	a := NewAccumulator(1, 10)
	a.Add(5)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on underflow")
		}
	}()
	a.Sub(6)
}

func TestAccumulatorAVFSince(t *testing.T) {
	a := NewAccumulator(1, 100)
	a.Add(100)
	a.Tick() // full
	s, c := a.Sum(), a.Cycles()
	a.Sub(100)
	a.Tick() // empty
	a.Tick() // empty
	if got := a.AVFSince(s, c); got != 0 {
		t.Fatalf("window AVF %v, want 0", got)
	}
	if got := a.AVF(); got != 100.0/300.0 {
		t.Fatalf("overall AVF %v", got)
	}
}

func TestAccumulatorReset(t *testing.T) {
	a := NewAccumulator(1, 100)
	a.Add(40)
	a.Tick()
	a.ResetStats()
	if a.Sum() != 0 || a.Cycles() != 0 {
		t.Fatal("reset incomplete")
	}
	if a.Current() != 40 {
		t.Fatal("reset dropped resident bits")
	}
	a.Tick()
	if a.AVF() != 0.4 {
		t.Fatalf("post-reset AVF %v", a.AVF())
	}
}

func TestEmptyAVFZero(t *testing.T) {
	if NewAccumulator(4, 64).AVF() != 0 {
		t.Fatal("idle accumulator AVF nonzero")
	}
	if NewSpanAccumulator(4, 64).AVF() != 0 {
		t.Fatal("idle span accumulator AVF nonzero")
	}
}

func TestSpanAccumulator(t *testing.T) {
	a := NewSpanAccumulator(2, 64) // 128 bits
	for i := 0; i < 10; i++ {
		a.Tick()
	}
	a.AddSpan(64, 5) // one register live 5 of 10 cycles
	if got, want := a.AVF(), 64.0*5/(128*10); got != want {
		t.Fatalf("AVF %v want %v", got, want)
	}
	a.ResetStats()
	if a.AVF() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBitHelpers(t *testing.T) {
	if IQBits(true, true) != 0 || ROBBits(true, true) != 0 {
		t.Fatal("wrong-path entries must contribute no ACE bits")
	}
	if IQBits(false, true) != IQACEBitsACE || IQBits(false, false) != IQACEBitsUnACE {
		t.Fatal("IQ bit split wrong")
	}
	if ROBBits(false, true) != ROBACEBitsACE || ROBBits(false, false) != ROBACEBitsUnACE {
		t.Fatal("ROB bit split wrong")
	}
	if IQACEBitsACE <= IQACEBitsUnACE || IQACEBitsACE > IQEntryBits {
		t.Fatal("IQ bit constants inconsistent")
	}
	if ROBACEBitsACE <= ROBACEBitsUnACE || ROBACEBitsACE > ROBEntryBits {
		t.Fatal("ROB bit constants inconsistent")
	}
}

// Property: AVF is always within [0, 1] for arbitrary add/sub/tick schedules
// that never exceed capacity.
func TestQuickAVFBounded(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewAccumulator(2, 64) // 128 bits
		cur := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				if cur+16 <= 128 {
					a.Add(16)
					cur += 16
				}
			case 1:
				if cur >= 16 {
					a.Sub(16)
					cur -= 16
				}
			default:
				a.Tick()
			}
		}
		v := a.AVF()
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
