package cluster

import (
	"visasim/internal/config"
	"visasim/internal/core"
	"visasim/internal/isa"
	"visasim/internal/twin"
	"visasim/internal/workload"
)

// Estimator predicts the relative cost of simulating one cell — the number
// SJF ordering compares. Units are arbitrary; only the ordering matters.
// Estimators must be cheap (they run once per dispatch group on the submit
// path) and must never fail: off-model configurations get a heuristic.
type Estimator func(cfg core.Config) float64

// InstrCost is the fallback estimator: the committed-instruction budget.
// Simulator wall-clock is roughly proportional to simulated cycles, and
// cycles scale with the budget, so this orders mixed-size sweeps correctly
// even when the twin cannot see the configuration.
func InstrCost(cfg core.Config) float64 {
	budget := cfg.MaxInstructions
	if budget == 0 {
		budget = core.DefaultInstructions
	}
	return float64(budget)
}

// TwinCost returns an estimator backed by the analytical twin: predicted
// simulated cycles = instruction budget / predicted IPC, so an IQ-starved
// MEM-mix cell correctly sorts as more expensive than a CPU-mix cell with
// the same budget. Configurations the twin cannot evaluate (unknown
// benchmark set, off-grid geometry, out-of-scope scheme) fall back to
// InstrCost, so the estimator totally orders any sweep.
func TwinCost(m *twin.Model) Estimator {
	mixes := workload.Mixes()
	return func(cfg core.Config) float64 {
		in, ok := inputFor(&cfg, mixes)
		if !ok || m.Valid(&in) != nil {
			return InstrCost(cfg)
		}
		var p twin.Prediction
		m.Evaluate(&in, &p)
		if p.IPC <= 0 {
			return InstrCost(cfg)
		}
		return InstrCost(cfg) / p.IPC
	}
}

// inputFor maps a cell configuration back onto the twin's input grid: the
// benchmark list must be a prefix of a Table 3 mix, and the machine
// geometry feeds IQ size and the FU pool. ok is false when no mix matches.
func inputFor(cfg *core.Config, mixes []workload.Mix) (twin.Input, bool) {
	threads := len(cfg.Benchmarks)
	if threads < 1 || threads > twin.MaxThreads {
		return twin.Input{}, false
	}
	mix := -1
	for i := range mixes {
		match := true
		for t := 0; t < threads; t++ {
			if mixes[i].Benchmarks[t] != cfg.Benchmarks[t] {
				match = false
				break
			}
		}
		if match {
			mix = i
			break
		}
	}
	if mix < 0 {
		return twin.Input{}, false
	}
	m := cfg.Machine
	if m == nil {
		def := config.Default()
		m = &def
	}
	in := twin.Input{
		Mix:     mix,
		Threads: threads,
		Scheme:  cfg.Scheme,
		Policy:  cfg.Policy,
		IQSize:  m.IQSize,
	}
	in.FU[isa.FUIntALU] = m.IntALUs
	in.FU[isa.FUIntMulDiv] = m.IntMulDivs
	in.FU[isa.FULoadStore] = m.LoadStores
	in.FU[isa.FUFPALU] = m.FPALUs
	in.FU[isa.FUFPMulDiv] = m.FPMulDivs
	if cfg.Scheme == core.SchemeDVM {
		// The twin expresses DVM targets as a fraction of the mix's peak
		// interval AVF, but a cell carries an absolute target; inverting
		// one into the other needs per-mix signature data that is not an
		// estimator's business. Cost DVM cells by their budget instead.
		return in, false
	}
	return in, true
}
