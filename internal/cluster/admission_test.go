package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry([]Tenant{
		{ID: "papers", Key: "pk", Class: "interactive", RatePerSec: 10, Burst: 5, MaxQueued: 8},
		{ID: "scan", Key: "sk", Class: "bulk"},
	})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	return reg
}

// fakeClock drives the admission controller without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestAdmission(t *testing.T) (*Admission, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	a := NewAdmission(testRegistry(t))
	a.Now = clk.now
	return a, clk
}

func TestAdmitUnknownKey(t *testing.T) {
	a, _ := newTestAdmission(t)
	for _, key := range []string{"", "nope"} {
		if _, err := a.Admit(key, 1); !errors.Is(err, ErrUnknownKey) {
			t.Fatalf("Admit(%q) err = %v, want ErrUnknownKey", key, err)
		}
	}
}

func TestAdmitBurstThenRateReject(t *testing.T) {
	a, clk := newTestAdmission(t)
	// Burst 5: the first 5 cells pass in one instant.
	ten, err := a.Admit("pk", 5)
	if err != nil {
		t.Fatalf("burst admit: %v", err)
	}
	if ten.ID != "papers" {
		t.Fatalf("admitted tenant %q, want papers", ten.ID)
	}
	// The bucket is empty: the next cell is rate-rejected with a hint
	// matching 1 cell / 10 cells-per-sec = 100ms.
	_, err = a.Admit("pk", 1)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != "rate" {
		t.Fatalf("over-burst admit err = %v, want rate AdmissionError", err)
	}
	if ae.RetryAfter < 90*time.Millisecond || ae.RetryAfter > 110*time.Millisecond {
		t.Fatalf("rate RetryAfter = %v, want ~100ms", ae.RetryAfter)
	}
	// After the hinted wait the bucket has refilled exactly enough.
	clk.advance(ae.RetryAfter)
	if _, err := a.Admit("pk", 1); err != nil {
		t.Fatalf("admit after hinted wait: %v", err)
	}
}

func TestAdmitRefillCapsAtBurst(t *testing.T) {
	a, clk := newTestAdmission(t)
	if _, err := a.Admit("pk", 5); err != nil {
		t.Fatalf("drain burst: %v", err)
	}
	a.Release("papers", 5) // keep the quota out of the picture
	clk.advance(time.Hour) // refills far more than burst...
	if _, err := a.Admit("pk", 3); err != nil {
		t.Fatalf("admit 3 after idle: %v", err)
	}
	// ...but the bucket capped at 5, so 3 more cells exceed the 2 left.
	var ae *AdmissionError
	if _, err := a.Admit("pk", 3); !errors.As(err, &ae) || ae.Reason != "rate" {
		t.Fatalf("admit past capped bucket err = %v, want rate AdmissionError", err)
	}
}

func TestAdmitQuotaAndRelease(t *testing.T) {
	a, clk := newTestAdmission(t)
	// MaxQueued 8: fill the quota across two admissions, refilling the
	// bucket between them so only the quota can reject.
	if _, err := a.Admit("pk", 5); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	clk.advance(time.Second)
	if _, err := a.Admit("pk", 3); err != nil {
		t.Fatalf("second admit: %v", err)
	}
	clk.advance(time.Second)
	var ae *AdmissionError
	if _, err := a.Admit("pk", 1); !errors.As(err, &ae) || ae.Reason != "quota" {
		t.Fatalf("admit past quota err = %v, want quota AdmissionError", err)
	}
	// Releasing outstanding cells reopens the quota.
	a.Release("papers", 4)
	if _, err := a.Admit("pk", 1); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestAdmitUnlimitedTenant(t *testing.T) {
	a, clk := newTestAdmission(t)
	// "scan" has no rate and no quota: any batch passes, forever.
	for i := 0; i < 3; i++ {
		if _, err := a.Admit("sk", 10_000); err != nil {
			t.Fatalf("unlimited admit %d: %v", i, err)
		}
		clk.advance(time.Millisecond)
	}
}

func TestSnapshotCountsAndHidesKeys(t *testing.T) {
	a, clk := newTestAdmission(t)
	if _, err := a.Admit("pk", 5); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := a.Admit("pk", 5); err == nil {
		t.Fatal("expected a rejection to count")
	}
	clk.advance(time.Second)
	a.Release("papers", 2)
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].ID != "papers" || snap[1].ID != "scan" {
		t.Fatalf("snapshot IDs = %+v, want [papers scan]", snap)
	}
	p := snap[0]
	if p.Admitted != 5 || p.Rejected != 5 || p.Queued != 3 {
		t.Fatalf("papers status = %+v, want admitted 5, rejected 5, queued 3", p)
	}
	if p.Class != "interactive" || p.Burst != 5 || p.MaxQueued != 8 {
		t.Fatalf("papers config in status = %+v", p)
	}
}

func TestRegistryValidation(t *testing.T) {
	bad := [][]Tenant{
		{{ID: "", Key: "k"}},
		{{ID: "a", Key: ""}},
		{{ID: "a", Key: "k", Class: "vip"}},
		{{ID: "a", Key: "k", RatePerSec: -1}},
		{{ID: "a", Key: "k"}, {ID: "a", Key: "k2"}},
		{{ID: "a", Key: "k"}, {ID: "b", Key: "k"}},
	}
	for i, tenants := range bad {
		if _, err := NewRegistry(tenants); err == nil {
			t.Errorf("NewRegistry(case %d) accepted invalid tenants %+v", i, tenants)
		}
	}
}

func TestLoadRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	blob := `{"tenants":[{"id":"papers","key":"pk","class":"interactive","rate_per_sec":50,"burst":100,"max_queued_cells":500}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadRegistry(path)
	if err != nil {
		t.Fatalf("LoadRegistry: %v", err)
	}
	ten, ok := reg.LookupKey("pk")
	if !ok || ten.ID != "papers" || ten.DefaultClass() != Interactive || ten.MaxQueued != 500 {
		t.Fatalf("loaded tenant = %+v", ten)
	}
	if _, err := LoadRegistry(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadRegistry(missing) should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"tenants":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRegistry(empty); err == nil {
		t.Fatal("LoadRegistry(empty set) should error")
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if c, err := ParseClass(""); err != nil || c != Standard {
		t.Fatalf(`ParseClass("") = %v, %v, want Standard`, c, err)
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Fatal(`ParseClass("vip") should error`)
	}
}
