package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeCluster is both the load source and the scaling actions: ScaleUp and
// ScaleDown simply move the backend count. Locked because the Start loop
// test reads it from the test goroutine while the loop mutates it.
type fakeCluster struct {
	mu       sync.Mutex
	depth    int
	backends int
	ups      int
	downs    int
}

func (f *fakeCluster) QueueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.depth
}

func (f *fakeCluster) BackendCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.backends
}

func (f *fakeCluster) scaleUps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ups
}

func (f *fakeCluster) ScaleUp(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ups++
	f.backends++
	return nil
}

func (f *fakeCluster) ScaleDown(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.downs++
	f.backends--
	return nil
}

func newTestAutoscaler(f *fakeCluster) *Autoscaler {
	return NewAutoscaler(f, f, AutoscalerOptions{
		Min: 1, Max: 3, ScaleUpDepth: 4, ScaleDownIdle: 10 * time.Second,
	})
}

func TestAutoscalerScalesUpOnDepth(t *testing.T) {
	f := &fakeCluster{depth: 10, backends: 1}
	a := newTestAutoscaler(f)
	now := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ {
		if v := a.Step(now); v != Hold {
			if v != ScaleUp {
				t.Fatalf("step %d verdict = %v", i, v)
			}
			f.ScaleUp(context.Background())
		}
		now = now.Add(time.Second)
	}
	// Deep queue, but the pool never exceeds Max.
	if f.backends != 3 {
		t.Fatalf("backends = %d, want Max=3", f.backends)
	}
}

func TestAutoscalerScalesUpBelowMin(t *testing.T) {
	f := &fakeCluster{depth: 0, backends: 0}
	a := newTestAutoscaler(f)
	if v := a.Step(time.Unix(1700000000, 0)); v != ScaleUp {
		t.Fatalf("verdict below Min = %v, want ScaleUp", v)
	}
}

func TestAutoscalerScaleDownNeedsSustainedIdle(t *testing.T) {
	f := &fakeCluster{depth: 2, backends: 3}
	a := newTestAutoscaler(f)
	now := time.Unix(1700000000, 0)
	if v := a.Step(now); v != Hold {
		t.Fatalf("busy verdict = %v, want Hold", v)
	}
	// Queue empties; not yet idle long enough.
	f.depth = 0
	now = now.Add(5 * time.Second)
	if v := a.Step(now); v != Hold {
		t.Fatalf("5s-idle verdict = %v, want Hold", v)
	}
	// Past the idle window: shrink one.
	now = now.Add(6 * time.Second)
	if v := a.Step(now); v != ScaleDown {
		t.Fatalf("11s-idle verdict = %v, want ScaleDown", v)
	}
	f.ScaleDown(context.Background())
	// The idle clock reset: the next shrink waits a full window again.
	now = now.Add(time.Second)
	if v := a.Step(now); v != Hold {
		t.Fatalf("verdict right after a shrink = %v, want Hold", v)
	}
	now = now.Add(10 * time.Second)
	if v := a.Step(now); v != ScaleDown {
		t.Fatalf("verdict a full window later = %v, want ScaleDown", v)
	}
	f.ScaleDown(context.Background())
	// Never below Min.
	now = now.Add(time.Hour)
	if v := a.Step(now); v != Hold {
		t.Fatalf("verdict at Min = %v, want Hold", v)
	}
}

func TestAutoscalerLoopAppliesVerdicts(t *testing.T) {
	f := &fakeCluster{depth: 10, backends: 1}
	a := NewAutoscaler(f, f, AutoscalerOptions{
		Min: 1, Max: 2, ScaleUpDepth: 1, Interval: time.Millisecond,
	})
	a.Start()
	defer a.Close()
	deadline := time.Now().Add(2 * time.Second)
	for f.scaleUps() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f.scaleUps() == 0 {
		t.Fatal("loop never applied a ScaleUp")
	}
}
