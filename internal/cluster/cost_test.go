package cluster

import (
	"testing"

	"visasim/internal/core"
	"visasim/internal/twin"
	"visasim/internal/workload"
)

func TestInstrCost(t *testing.T) {
	if got := InstrCost(core.Config{MaxInstructions: 1000}); got != 1000 {
		t.Fatalf("InstrCost = %v, want 1000", got)
	}
	if got := InstrCost(core.Config{}); got != float64(core.DefaultInstructions) {
		t.Fatalf("zero-budget InstrCost = %v, want default budget", got)
	}
}

func TestTwinCostOrdersByPredictedCycles(t *testing.T) {
	m, err := twin.Default()
	if err != nil {
		t.Fatalf("twin.Default: %v", err)
	}
	est := TwinCost(m)
	mixes := workload.Mixes()
	cfg := func(mix int) core.Config {
		return core.Config{Benchmarks: mixes[mix].Benchmarks[:], Scheme: core.SchemeBase}
	}
	// Every on-model cost is predicted cycles = budget / IPC: positive,
	// finite, and visibly not the raw-budget fallback (IPC is never
	// exactly 1.0 on the calibrated grid).
	for mix := range mixes {
		c := est(cfg(mix))
		if c <= 0 || c > 100*float64(core.DefaultInstructions) {
			t.Fatalf("mix %d cost = %v, want a plausible cycle count", mix, c)
		}
		if c == float64(core.DefaultInstructions) {
			t.Fatalf("mix %d cost fell back to InstrCost", mix)
		}
	}
	// CPU-A (mix 0) runs well above 1 IPC, so its predicted cycle count
	// sits below its instruction budget.
	if c := est(cfg(0)); c >= float64(core.DefaultInstructions) {
		t.Fatalf("CPU-A cost = %v, want < budget %d", c, core.DefaultInstructions)
	}
	// A bigger budget for the same mix must cost proportionally more.
	small, big := cfg(0), cfg(0)
	small.MaxInstructions, big.MaxInstructions = 100_000, 400_000
	if est(small) >= est(big) {
		t.Fatalf("cost not monotonic in budget: %v >= %v", est(small), est(big))
	}
}

func TestTwinCostFallsBackOffModel(t *testing.T) {
	m, err := twin.Default()
	if err != nil {
		t.Fatalf("twin.Default: %v", err)
	}
	est := TwinCost(m)
	cases := []core.Config{
		{Benchmarks: []string{"not-a-benchmark"}},                               // unknown mix
		{Benchmarks: workload.Mixes()[0].Benchmarks[:], Scheme: core.SchemeDVM}, // absolute DVM target
		{}, // no benchmarks at all
	}
	for i, cfg := range cases {
		if got := est(cfg); got != InstrCost(cfg) {
			t.Fatalf("case %d: cost = %v, want InstrCost fallback %v", i, got, InstrCost(cfg))
		}
	}
}
