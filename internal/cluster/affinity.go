package cluster

import "hash/fnv"

// AffinityPrefixLen is how much of a cell's content hash feeds the
// rendezvous weight. A 16-hex-character prefix (64 bits) is far beyond
// collision range for any sweep while keeping the hashed key short.
const AffinityPrefixLen = 16

// RendezvousPick implements highest-random-weight (rendezvous) hashing:
// every (key, member) pair gets a deterministic pseudo-random weight and
// the member with the highest weight wins. The winning member is stable
// under membership change everywhere except the slots that touched the
// joined/left member — exactly the property that makes per-backend result
// caches behave like one sharded cache instead of N overlapping ones
// (DESIGN.md §12). Returns "" when members is empty.
func RendezvousPick(key string, members []string) string {
	if len(key) > AffinityPrefixLen {
		key = key[:AffinityPrefixLen]
	}
	best, bestW := "", uint64(0)
	for _, m := range members {
		h := fnv.New64a()
		h.Write([]byte(key)) //nolint:errcheck // fnv never errors
		h.Write([]byte{0})
		h.Write([]byte(m)) //nolint:errcheck
		if w := h.Sum64(); best == "" || w > bestW || (w == bestW && m < best) {
			best, bestW = m, w
		}
	}
	return best
}

// Jain computes Jain's fairness index over the service shares xs:
// (Σx)² / (n·Σx²). It is 1 when every share is equal, and approaches 1/n
// as one share dominates. Empty or all-zero input reports 1 (nothing is
// being treated unfairly when nothing is being served).
func Jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if len(xs) == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
