package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// ErrUnknownKey reports a submission whose API key matches no tenant —
// an authentication failure (HTTP 401), distinct from an admitted tenant
// being throttled (HTTP 429, AdmissionError).
var ErrUnknownKey = errors.New("cluster: unknown API key")

// AdmissionError is a rejected-but-authenticated submission: the tenant is
// over its rate limit or cell quota. Servers map it to 429 with the
// RetryAfter hint in Retry-After / RetryAfterMsHeader.
type AdmissionError struct {
	// Tenant is the rejected tenant's ID.
	Tenant string
	// Reason is "rate" (token bucket empty) or "quota" (MaxQueued cells
	// already outstanding).
	Reason string
	// RetryAfter is the controller's estimate of when the same submission
	// could be admitted.
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("cluster: tenant %s over %s limit, retry after %v",
		e.Tenant, e.Reason, e.RetryAfter)
}

// quotaRetryAfter is the retry hint for quota rejections: the quota frees
// as outstanding cells complete, which the controller cannot predict, so a
// fixed short hint keeps clients probing without hammering.
const quotaRetryAfter = time.Second

// tenantState is one tenant's live accounting.
type tenantState struct {
	tokens float64 // token bucket fill, in cells
	last   time.Time
	queued int // outstanding admitted cells (quota)

	admitted int64 // cells admitted, cumulative
	rejected int64 // cells rejected, cumulative
}

// Admission is a per-tenant token-bucket rate limiter plus outstanding-cell
// quota. One Admission guards one admission point (a visasimd, or the
// coordinator); safe for concurrent use.
type Admission struct {
	reg *Registry
	// Now is the clock, swappable in tests; time.Now by default.
	Now func() time.Time

	mu     sync.Mutex
	states map[string]*tenantState
}

// NewAdmission builds an admission controller over the registry. Every
// tenant starts with a full token bucket.
func NewAdmission(reg *Registry) *Admission {
	return &Admission{reg: reg, Now: time.Now, states: map[string]*tenantState{}}
}

// Registry returns the tenant registry the controller enforces.
func (a *Admission) Registry() *Registry { return a.reg }

// Admit asks to enqueue `cells` cells under the given API key. An unknown
// key returns ErrUnknownKey; a throttled tenant returns an *AdmissionError
// with a retry hint; success reserves the cells against the tenant's quota
// until Release.
func (a *Admission) Admit(key string, cells int) (*Tenant, error) {
	t, ok := a.reg.LookupKey(key)
	if !ok {
		return nil, ErrUnknownKey
	}
	now := a.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.states[t.ID]
	if st == nil {
		st = &tenantState{tokens: t.burst(), last: now}
		a.states[t.ID] = st
	}
	// Refill the bucket for the time since the last decision.
	if t.RatePerSec > 0 {
		st.tokens = math.Min(t.burst(), st.tokens+t.RatePerSec*now.Sub(st.last).Seconds())
	}
	st.last = now

	if t.MaxQueued > 0 && st.queued+cells > t.MaxQueued {
		st.rejected += int64(cells)
		return nil, &AdmissionError{Tenant: t.ID, Reason: "quota", RetryAfter: quotaRetryAfter}
	}
	if t.RatePerSec > 0 {
		if st.tokens < float64(cells) {
			st.rejected += int64(cells)
			wait := time.Duration((float64(cells) - st.tokens) / t.RatePerSec * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			return nil, &AdmissionError{Tenant: t.ID, Reason: "rate", RetryAfter: wait}
		}
		st.tokens -= float64(cells)
	}
	st.queued += cells
	st.admitted += int64(cells)
	return t, nil
}

// Release returns completed (or failed) cells to the tenant's quota.
func (a *Admission) Release(tenantID string, cells int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.states[tenantID]; st != nil {
		st.queued -= cells
		if st.queued < 0 {
			st.queued = 0
		}
	}
}

// TenantStatus is one tenant's quota/usage view (for /v1/tenants and the
// per-tenant metric families). It never carries the API key.
type TenantStatus struct {
	ID         string  `json:"id"`
	Class      string  `json:"class"`
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      int     `json:"burst"`
	MaxQueued  int     `json:"max_queued_cells"`

	// Queued is the tenant's outstanding admitted cells right now.
	Queued int `json:"queued_cells"`
	// Admitted and Rejected are cumulative cell counts.
	Admitted int64 `json:"admitted_cells"`
	Rejected int64 `json:"rejected_cells"`
}

// Snapshot returns every tenant's status, sorted by tenant ID.
func (a *Admission) Snapshot() []TenantStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]TenantStatus, 0, a.reg.Len())
	for _, t := range a.reg.Tenants() {
		st := a.states[t.ID]
		ts := TenantStatus{
			ID:         t.ID,
			Class:      t.DefaultClass().String(),
			RatePerSec: t.RatePerSec,
			Burst:      int(t.burst()),
			MaxQueued:  t.MaxQueued,
		}
		if st != nil {
			ts.Queued, ts.Admitted, ts.Rejected = st.queued, st.admitted, st.rejected
		}
		out = append(out, ts)
	}
	return out
}
