package cluster

import (
	"fmt"
	"math"
	"testing"
)

func TestRendezvousPickDeterministicAndCovering(t *testing.T) {
	members := []string{"http://a:9090", "http://b:9090", "http://c:9090"}
	hits := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("%016x", i*2654435761)
		first := RendezvousPick(key, members)
		if again := RendezvousPick(key, members); again != first {
			t.Fatalf("pick for %s unstable: %s then %s", key, first, again)
		}
		hits[first]++
	}
	// Every member should own a meaningful share of a uniform keyspace.
	for _, m := range members {
		if hits[m] < 30 {
			t.Fatalf("member %s owns only %d/300 keys: %v", m, hits[m], hits)
		}
	}
}

func TestRendezvousPickStableUnderMembershipChange(t *testing.T) {
	members := []string{"http://a:9090", "http://b:9090", "http://c:9090"}
	shrunk := []string{"http://a:9090", "http://c:9090"}
	moved := 0
	const n = 500
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%016x", i*40503+7)
		before := RendezvousPick(key, members)
		after := RendezvousPick(key, shrunk)
		if before != "http://b:9090" && after != before {
			// The defining rendezvous property: removing b must not move
			// keys between the survivors.
			t.Fatalf("key %s moved %s -> %s though b was not its owner", key, before, after)
		}
		if before == "http://b:9090" {
			moved++
		}
	}
	// b owned roughly a third of the keyspace; all of it (and only it)
	// redistributes.
	if moved < n/6 || moved > n/2 {
		t.Fatalf("%d/%d keys owned by the removed member, want roughly a third", moved, n)
	}
}

func TestRendezvousPickEdgeCases(t *testing.T) {
	if got := RendezvousPick("abc", nil); got != "" {
		t.Fatalf("empty members pick = %q", got)
	}
	if got := RendezvousPick("abc", []string{"only"}); got != "only" {
		t.Fatalf("single member pick = %q", got)
	}
	// Keys longer than the affinity prefix truncate: same prefix, same pick.
	members := []string{"m1", "m2", "m3"}
	long1 := "0123456789abcdefAAAA"
	long2 := "0123456789abcdefBBBB"
	if RendezvousPick(long1, members) != RendezvousPick(long2, members) {
		t.Fatal("picks differ for keys sharing the 16-char prefix")
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0}, 1},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{4, 2}, (6 * 6) / (2 * 20.0)},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}
