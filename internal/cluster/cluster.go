// Package cluster holds the control-plane primitives the sweep service is
// built from: tenancy and token-bucket admission control, SLO priority
// classes with a priority-/SJF-ordered scheduling queue, rendezvous-hash
// cache-affinity routing, a Jain fairness index, an analytical-twin cost
// estimator for shortest-job-first ordering, and a queue-depth autoscaler.
//
// The package is deliberately mechanism, not policy wiring: internal/server
// uses the tenant registry and admission controller to gate visasimd
// submissions (429 + Retry-After past a tenant's rate or quota), and
// internal/dispatch uses the queue, router, estimator and fairness pieces to
// turn the coordinator into an SLO-aware scheduler with dynamic membership.
// Nothing here touches simulation results: scheduling and routing only
// decide *where and when* a cell runs, and the simulator's determinism
// guarantees the bytes that come back are identical either way (the
// byte-parity property every dispatch test pins). See DESIGN.md §12.
package cluster

import (
	"context"
	"fmt"
)

// HTTP headers the control plane speaks across process boundaries.
const (
	// KeyHeader carries a tenant's API key on submissions (visasimd's
	// POST /v1/sweeps, the coordinator's POST /v1/dispatch).
	KeyHeader = "X-Visasim-Key"
	// ClassHeader carries the requested priority class name
	// ("interactive", "standard", "bulk") on coordinator submissions.
	ClassHeader = "X-Visasim-Priority"
	// RetryAfterMsHeader carries the admission controller's retry hint in
	// milliseconds alongside the standard (integer-second) Retry-After
	// header, so backoff loops don't have to round 20ms up to 1s.
	RetryAfterMsHeader = "X-Visasim-Retry-After-Ms"
)

// PriorityClass is an SLO service class. Lower values schedule first:
// a small interactive paper-reproduction sweep jumps a 14M-point bulk
// design-space scan, never the other way around.
type PriorityClass uint8

const (
	// Interactive is for small, latency-sensitive sweeps (a human waiting
	// on a table).
	Interactive PriorityClass = iota
	// Standard is the default when a submission names no class.
	Standard
	// Bulk is for throughput-bound background work (explore-verify scans).
	Bulk

	// NumClasses counts the classes above.
	NumClasses = 3
)

// Classes returns every priority class in scheduling order.
func Classes() []PriorityClass { return []PriorityClass{Interactive, Standard, Bulk} }

// String returns the class's wire name.
func (p PriorityClass) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Standard:
		return "standard"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("class-%d", uint8(p))
}

// ParseClass parses a wire name; "" is Standard so absent headers and flags
// need no special-casing at call sites.
func ParseClass(s string) (PriorityClass, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "standard", "":
		return Standard, nil
	case "bulk":
		return Bulk, nil
	}
	return Standard, fmt.Errorf("cluster: unknown priority class %q (interactive, standard, bulk)", s)
}

// classKey and keyKey carry the scheduling context through a Run call.
type (
	classKey struct{}
	keyKey   struct{}
)

// WithClass returns ctx carrying the priority class a sweep should be
// scheduled under.
func WithClass(ctx context.Context, c PriorityClass) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassFrom returns the priority class carried by ctx and whether one was
// set; callers fall back to the tenant's default class, then Standard.
func ClassFrom(ctx context.Context) (PriorityClass, bool) {
	c, ok := ctx.Value(classKey{}).(PriorityClass)
	return c, ok
}

// WithAPIKey returns ctx carrying the tenant API key a sweep is submitted
// under; the coordinator's admission controller reads it at sweep entry.
func WithAPIKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, keyKey{}, key)
}

// APIKeyFrom returns the tenant API key carried by ctx, or "".
func APIKeyFrom(ctx context.Context) string {
	k, _ := ctx.Value(keyKey{}).(string)
	return k
}
