package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Tenant is one paying (or at least accountable) caller of the cluster.
// Tenants are declared up front — a JSON file handed to visasimd and the
// coordinator — and identified on the wire by API key (KeyHeader).
type Tenant struct {
	// ID names the tenant in metrics, logs and /v1/tenants listings.
	ID string `json:"id"`
	// Key is the API key submissions authenticate with. Keys are bearer
	// secrets; the registry never prints them.
	Key string `json:"key"`
	// Class is the tenant's default priority class name ("interactive",
	// "standard", "bulk"); submissions may not escalate above it. Empty
	// means "standard".
	Class string `json:"class,omitempty"`
	// RatePerSec is the tenant's sustained admission rate in cells per
	// second, enforced by a token bucket; 0 means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token bucket's capacity in cells (how far above the
	// sustained rate a quiet tenant may spike). Defaults to
	// max(ceil(RatePerSec), 1) when 0.
	Burst int `json:"burst,omitempty"`
	// MaxQueued caps the tenant's outstanding cells — admitted but not
	// yet terminal — across all its sweeps; 0 means unlimited. This is
	// the cell quota: one tenant cannot fill the whole queue.
	MaxQueued int `json:"max_queued_cells,omitempty"`
}

// DefaultClass returns the tenant's default priority class.
func (t *Tenant) DefaultClass() PriorityClass {
	c, err := ParseClass(t.Class)
	if err != nil {
		return Standard // NewRegistry validated; unreachable for registry tenants
	}
	return c
}

// burst returns the effective token-bucket capacity.
func (t *Tenant) burst() float64 {
	if t.Burst > 0 {
		return float64(t.Burst)
	}
	if t.RatePerSec >= 1 {
		return float64(int(t.RatePerSec + 0.999999))
	}
	return 1
}

// Registry is an immutable set of tenants with key lookup. Create with
// NewRegistry or LoadRegistry; safe for concurrent use.
type Registry struct {
	tenants []Tenant
	byKey   map[string]*Tenant
	byID    map[string]*Tenant
}

// NewRegistry validates the tenant set: IDs and keys must be non-empty and
// unique, classes must parse, rates and quotas non-negative.
func NewRegistry(tenants []Tenant) (*Registry, error) {
	r := &Registry{
		tenants: append([]Tenant(nil), tenants...),
		byKey:   make(map[string]*Tenant, len(tenants)),
		byID:    make(map[string]*Tenant, len(tenants)),
	}
	for i := range r.tenants {
		t := &r.tenants[i]
		if t.ID == "" {
			return nil, fmt.Errorf("cluster: tenant %d has no id", i)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("cluster: tenant %s has no key", t.ID)
		}
		if _, err := ParseClass(t.Class); err != nil {
			return nil, fmt.Errorf("cluster: tenant %s: %w", t.ID, err)
		}
		if t.RatePerSec < 0 || t.Burst < 0 || t.MaxQueued < 0 {
			return nil, fmt.Errorf("cluster: tenant %s has a negative rate, burst or quota", t.ID)
		}
		if _, dup := r.byID[t.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate tenant id %s", t.ID)
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("cluster: tenants share an API key (second: %s)", t.ID)
		}
		r.byID[t.ID] = t
		r.byKey[t.Key] = t
	}
	return r, nil
}

// tenantsFile is the on-disk shape LoadRegistry reads.
type tenantsFile struct {
	Tenants []Tenant `json:"tenants"`
}

// LoadRegistry reads a tenant registry from a JSON file of the shape
//
//	{"tenants":[{"id":"papers","key":"...","class":"interactive",
//	             "rate_per_sec":50,"burst":100,"max_queued_cells":500}, ...]}
func LoadRegistry(path string) (*Registry, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f tenantsFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("cluster: parsing %s: %w", path, err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("cluster: %s declares no tenants", path)
	}
	return NewRegistry(f.Tenants)
}

// LookupKey resolves an API key to its tenant.
func (r *Registry) LookupKey(key string) (*Tenant, bool) {
	if key == "" {
		return nil, false
	}
	t, ok := r.byKey[key]
	return t, ok
}

// Lookup resolves a tenant ID.
func (r *Registry) Lookup(id string) (*Tenant, bool) {
	t, ok := r.byID[id]
	return t, ok
}

// Tenants returns the tenants sorted by ID (copies, so callers cannot
// mutate registry state).
func (r *Registry) Tenants() []Tenant {
	out := append([]Tenant(nil), r.tenants...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of tenants.
func (r *Registry) Len() int { return len(r.tenants) }
