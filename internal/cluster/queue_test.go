package cluster

import (
	"sync"
	"testing"
	"time"
)

func drain(t *testing.T, q *Queue) []*Item {
	t.Helper()
	q.Close()
	var out []*Item
	for {
		it, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func TestQueuePriorityFCFSOrder(t *testing.T) {
	q := NewQueue(OrderPriorityFCFS)
	q.Push(&Item{Class: Bulk, Payload: "b1"})
	q.Push(&Item{Class: Standard, Payload: "s1"})
	q.Push(&Item{Class: Interactive, Payload: "i1"})
	q.Push(&Item{Class: Bulk, Payload: "b2"})
	q.Push(&Item{Class: Interactive, Payload: "i2"})
	want := []string{"i1", "i2", "s1", "b1", "b2"}
	for i, it := range drain(t, q) {
		if it.Payload.(string) != want[i] {
			t.Fatalf("pop %d = %v, want %s", i, it.Payload, want[i])
		}
	}
}

func TestQueueSJFOrdersWithinClass(t *testing.T) {
	q := NewQueue(OrderSJF)
	q.Push(&Item{Class: Standard, Cost: 30, Payload: "big"})
	q.Push(&Item{Class: Standard, Cost: 10, Payload: "small"})
	q.Push(&Item{Class: Standard, Cost: 20, Payload: "mid"})
	q.Push(&Item{Class: Interactive, Cost: 99, Payload: "urgent"})
	want := []string{"urgent", "small", "mid", "big"}
	for i, it := range drain(t, q) {
		if it.Payload.(string) != want[i] {
			t.Fatalf("pop %d = %v, want %s", i, it.Payload, want[i])
		}
	}
}

func TestQueueFCFSIgnoresClass(t *testing.T) {
	q := NewQueue(OrderFCFS)
	q.Push(&Item{Class: Bulk, Payload: "first"})
	q.Push(&Item{Class: Interactive, Payload: "second"})
	want := []string{"first", "second"}
	for i, it := range drain(t, q) {
		if it.Payload.(string) != want[i] {
			t.Fatalf("pop %d = %v, want %s", i, it.Payload, want[i])
		}
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := NewQueue(OrderPriorityFCFS)
	got := make(chan *Item, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		it, ok := q.Pop()
		if !ok {
			t.Error("Pop returned !ok before Close")
		}
		got <- it
	}()
	time.Sleep(10 * time.Millisecond) // let the Pop block
	q.Push(&Item{Payload: "late"})
	select {
	case it := <-got:
		if it.Payload.(string) != "late" {
			t.Fatalf("popped %v", it.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
	wg.Wait()
}

func TestQueueCloseDrainsThenRefuses(t *testing.T) {
	q := NewQueue(OrderPriorityFCFS)
	if !q.Push(&Item{Payload: "queued"}) {
		t.Fatal("Push before Close refused")
	}
	q.Close()
	if q.Push(&Item{Payload: "rejected"}) {
		t.Fatal("Push after Close accepted")
	}
	// The queued item still drains...
	if it, ok := q.Pop(); !ok || it.Payload.(string) != "queued" {
		t.Fatalf("post-Close Pop = %v, %v", it, ok)
	}
	// ...and only then does Pop report done.
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain reported an item")
	}
}

func TestQueueLenByClassAndEnqueueStamp(t *testing.T) {
	q := NewQueue(OrderPriorityFCFS)
	it := &Item{Class: Bulk}
	q.Push(it)
	q.Push(&Item{Class: Interactive})
	if it.Enqueued.IsZero() {
		t.Fatal("Push did not stamp Enqueued")
	}
	if q.Len() != 2 || q.LenByClass(Bulk) != 1 || q.LenByClass(Interactive) != 1 || q.LenByClass(Standard) != 0 {
		t.Fatalf("lens = %d bulk=%d inter=%d std=%d", q.Len(), q.LenByClass(Bulk), q.LenByClass(Interactive), q.LenByClass(Standard))
	}
	q.Pop()
	if q.LenByClass(Interactive) != 0 {
		t.Fatal("Pop did not decrement the popped class")
	}
}

func TestParseOrdering(t *testing.T) {
	cases := map[string]Ordering{"": OrderPriorityFCFS, "priority-fcfs": OrderPriorityFCFS, "sjf": OrderSJF, "fcfs": OrderFCFS}
	for s, want := range cases {
		got, err := ParseOrdering(s)
		if err != nil || got != want {
			t.Fatalf("ParseOrdering(%q) = %v, %v", s, got, err)
		}
		if s != "" && got.String() != s {
			t.Fatalf("Ordering(%q).String() = %q", s, got.String())
		}
	}
	if _, err := ParseOrdering("lifo"); err == nil {
		t.Fatal(`ParseOrdering("lifo") should error`)
	}
}
