package cluster

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"visasim/internal/obs"
)

// AutoscaleSource exposes the load signals the autoscaler steers by. The
// dispatch coordinator implements it.
type AutoscaleSource interface {
	// QueueDepth is how many dispatch groups are waiting for a backend.
	QueueDepth() int
	// BackendCount is how many non-draining backends are in the pool.
	BackendCount() int
}

// AutoscaleActions performs the scaling the autoscaler decides on. The
// coordinator daemon implements it by spawning and draining local visasimd
// processes; tests implement it with counters.
type AutoscaleActions interface {
	// ScaleUp adds one backend to the pool.
	ScaleUp(ctx context.Context) error
	// ScaleDown drains and removes one backend from the pool.
	ScaleDown(ctx context.Context) error
}

// AutoscalerOptions tune the control loop.
type AutoscalerOptions struct {
	// Min and Max bound the backend count. Min defaults to 1, Max to Min.
	Min, Max int
	// ScaleUpDepth is the queue depth at or above which the loop adds a
	// backend (default 4 groups).
	ScaleUpDepth int
	// ScaleDownIdle is how long the queue must sit empty before the loop
	// removes a backend (default 30s).
	ScaleDownIdle time.Duration
	// Interval is how often the loop samples the source (default 1s).
	Interval time.Duration
	// Logger receives scaling decisions; nil discards them.
	Logger *slog.Logger
}

func (o AutoscalerOptions) withDefaults() AutoscalerOptions {
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	if o.ScaleUpDepth <= 0 {
		o.ScaleUpDepth = 4
	}
	if o.ScaleDownIdle <= 0 {
		o.ScaleDownIdle = 30 * time.Second
	}
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Logger == nil {
		o.Logger = obs.NopLogger()
	}
	return o
}

// Verdict is one autoscaler decision.
type Verdict uint8

const (
	// Hold keeps the pool as it is.
	Hold Verdict = iota
	// ScaleUp adds one backend.
	ScaleUp
	// ScaleDown removes one backend.
	ScaleDown
)

// String names the verdict for logs.
func (v Verdict) String() string {
	switch v {
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	}
	return "hold"
}

// Autoscaler is a sampled hysteresis controller: queue depth at or above
// ScaleUpDepth grows the pool one backend per interval; a queue that stays
// empty for ScaleDownIdle shrinks it one backend at a time, never below
// Min. The decision rule (Step) is pure and clocked externally so tests
// drive it without sleeping; Start runs it on a ticker.
type Autoscaler struct {
	opt      AutoscalerOptions
	src      AutoscaleSource
	act      AutoscaleActions
	lastBusy time.Time

	quit chan struct{}
	wg   sync.WaitGroup
}

// NewAutoscaler builds an autoscaler over the given source and actions.
func NewAutoscaler(src AutoscaleSource, act AutoscaleActions, opt AutoscalerOptions) *Autoscaler {
	return &Autoscaler{opt: opt.withDefaults(), src: src, act: act, quit: make(chan struct{})}
}

// Step samples the source at time now and returns the verdict. It mutates
// only the idle clock; callers (Start, or a test) apply the verdict.
func (a *Autoscaler) Step(now time.Time) Verdict {
	depth := a.src.QueueDepth()
	n := a.src.BackendCount()
	if depth > 0 || a.lastBusy.IsZero() {
		a.lastBusy = now
	}
	switch {
	case n < a.opt.Min:
		return ScaleUp
	case depth >= a.opt.ScaleUpDepth && n < a.opt.Max:
		return ScaleUp
	case depth == 0 && n > a.opt.Min && now.Sub(a.lastBusy) >= a.opt.ScaleDownIdle:
		// Reset the idle clock so the next shrink waits a full idle
		// period again — one backend per ScaleDownIdle, not a collapse.
		a.lastBusy = now
		return ScaleDown
	}
	return Hold
}

// Start runs the control loop until Close.
func (a *Autoscaler) Start() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		tick := time.NewTicker(a.opt.Interval)
		defer tick.Stop()
		for {
			select {
			case <-a.quit:
				return
			case now := <-tick.C:
				a.apply(a.Step(now))
			}
		}
	}()
}

// apply executes one verdict with a per-action timeout.
func (a *Autoscaler) apply(v Verdict) {
	if v == Hold {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var err error
	if v == ScaleUp {
		err = a.act.ScaleUp(ctx)
	} else {
		err = a.act.ScaleDown(ctx)
	}
	if err != nil {
		a.opt.Logger.Warn("autoscale action failed", "verdict", v.String(), "err", err)
		return
	}
	a.opt.Logger.Info("autoscaled", "verdict", v.String(),
		"backends", a.src.BackendCount(), "queue_depth", a.src.QueueDepth())
}

// Close stops the control loop. It does not undo past scaling.
func (a *Autoscaler) Close() {
	close(a.quit)
	a.wg.Wait()
}
