package cluster

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Ordering selects how the scheduling queue orders waiting work.
type Ordering uint8

const (
	// OrderPriorityFCFS serves classes strictly in priority order and
	// first-come-first-served within a class — the default: interactive
	// sweeps jump bulk scans, and nothing inside a class can starve.
	OrderPriorityFCFS Ordering = iota
	// OrderSJF serves classes in priority order and shortest-estimated-job
	// first within a class (cost from a cluster.Estimator), which minimizes
	// mean wait when job sizes vary a lot inside one class.
	OrderSJF
	// OrderFCFS ignores classes entirely — PR 4's behaviour, kept as the
	// control arm for scheduler benchmarks.
	OrderFCFS
)

// String returns the ordering's flag name.
func (o Ordering) String() string {
	switch o {
	case OrderPriorityFCFS:
		return "priority-fcfs"
	case OrderSJF:
		return "sjf"
	case OrderFCFS:
		return "fcfs"
	}
	return fmt.Sprintf("ordering-%d", uint8(o))
}

// ParseOrdering parses a scheduler flag value; "" is OrderPriorityFCFS, and
// "priority" is accepted as its shorthand.
func ParseOrdering(s string) (Ordering, error) {
	switch s {
	case "priority-fcfs", "priority", "":
		return OrderPriorityFCFS, nil
	case "sjf":
		return OrderSJF, nil
	case "fcfs":
		return OrderFCFS, nil
	}
	return OrderPriorityFCFS, fmt.Errorf("cluster: unknown scheduler %q (priority-fcfs, sjf, fcfs)", s)
}

// Item is one schedulable unit of work.
type Item struct {
	// Class is the item's priority class; lower schedules first except
	// under OrderFCFS.
	Class PriorityClass
	// Cost is the item's estimated cost, compared only under OrderSJF.
	Cost float64
	// Enqueued is when the item entered the queue; Push stamps it when
	// zero. Queue-wait metrics derive from it.
	Enqueued time.Time
	// Payload is the caller's work (the dispatch coordinator stores its
	// per-group scheduling state here).
	Payload any

	seq uint64 // FCFS tiebreak: Push order
}

// Queue is a blocking scheduling queue: producers Push work, a fixed pool
// of consumers Pop the best-ordered item. Close drains gracefully — Pops
// keep returning queued items until the queue is empty, then report done —
// so in-flight sweeps finish while new ones are refused.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ord    Ordering
	h      itemHeap
	closed bool
	seq    uint64
	byCls  [NumClasses]int
}

// NewQueue builds an empty queue with the given ordering.
func NewQueue(ord Ordering) *Queue {
	q := &Queue{ord: ord}
	q.h.ord = ord
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues it; false means the queue is closed and the item was
// refused.
func (q *Queue) Push(it *Item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	if it.Enqueued.IsZero() {
		it.Enqueued = time.Now()
	}
	q.seq++
	it.seq = q.seq
	heap.Push(&q.h, it)
	if int(it.Class) < NumClasses {
		q.byCls[it.Class]++
	}
	q.cond.Signal()
	return true
}

// Pop blocks until an item is available and returns the best-ordered one;
// ok is false once the queue is closed and drained.
func (q *Queue) Pop() (*Item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.h.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	it := heap.Pop(&q.h).(*Item)
	if int(it.Class) < NumClasses {
		q.byCls[it.Class]--
	}
	return it, true
}

// Close refuses further Pushes and wakes blocked Pops; already-queued items
// still drain through Pop.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns how many items are waiting.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h.items)
}

// LenByClass returns how many items of one class are waiting.
func (q *Queue) LenByClass(c PriorityClass) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if int(c) >= NumClasses {
		return 0
	}
	return q.byCls[c]
}

// Ordering returns the queue's ordering.
func (q *Queue) Ordering() Ordering { return q.ord }

// itemHeap implements container/heap over the queue's ordering. Callers
// hold the Queue mutex.
type itemHeap struct {
	ord   Ordering
	items []*Item
}

func (h *itemHeap) Len() int { return len(h.items) }

func (h *itemHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.ord != OrderFCFS && a.Class != b.Class {
		return a.Class < b.Class
	}
	if h.ord == OrderSJF && a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return a.seq < b.seq
}

func (h *itemHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *itemHeap) Push(x any) { h.items = append(h.items, x.(*Item)) }

func (h *itemHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return it
}
