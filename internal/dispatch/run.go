package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/server"
)

// group is one unit of dispatch: all cells of a sweep that share a content
// hash. Only keys[0] is sent to a backend; the others share its result —
// the coordinator-side analogue of the daemon's single-flight cache.
type group struct {
	hash  string
	cfg   core.Config // canonical
	keys  []string
	res   *core.Result
	stats harness.CellStats
}

// Run dispatches the cells across the cluster and returns keyed results
// with harness.Run's semantics: the first failing cell aborts the sweep
// (in-flight cells finish, queued ones are skipped) and is returned as a
// *harness.CellError naming the cell. It ignores caller cancellation;
// interactive callers use RunContext.
func (c *Coordinator) Run(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStats(cells, opt)
	return res, err
}

// RunContext is Run bounded by ctx: canceling ctx aborts queued groups and
// every in-flight dispatch attempt.
func (c *Coordinator) RunContext(ctx context.Context, cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStatsContext(ctx, cells, opt)
	return res, err
}

// RunStats is RunStatsContext with a background context — it returns only
// when the sweep resolves or fails.
func (c *Coordinator) RunStats(cells []harness.Cell, opt harness.Options) (harness.Results, harness.Stats, error) {
	return c.RunStatsContext(context.Background(), cells, opt)
}

// RunStatsContext is Run plus the per-cell cost records the winning backend
// measured, bounded by ctx. The opt.Workers bound is ignored — concurrency
// is Options.Workers across the whole cluster. When ctx does not already
// carry a sweep correlation ID one is minted here, so a sweep entering the
// cluster at the coordinator is correlated end to end exactly like one
// entering at a client.
func (c *Coordinator) RunStatsContext(ctx context.Context, cells []harness.Cell, _ harness.Options) (harness.Results, harness.Stats, error) {
	if len(cells) == 0 {
		return harness.Results{}, harness.Stats{}, nil
	}
	if err := harness.ValidateKeys(cells); err != nil {
		return nil, nil, err
	}
	ctx, sweep := obs.EnsureSweep(ctx)

	// Content-address every cell up front and fold duplicates into one
	// dispatch group each.
	var groups []*group
	byHash := make(map[string]*group, len(cells))
	for _, cell := range cells {
		canon, err := cell.Cfg.Canonical()
		if err != nil {
			return nil, nil, &harness.CellError{Key: cell.Key, Err: err}
		}
		hash, err := canon.Hash()
		if err != nil {
			return nil, nil, &harness.CellError{Key: cell.Key, Err: err}
		}
		g := byHash[hash]
		if g == nil {
			g = &group{hash: hash, cfg: canon}
			byHash[hash] = g
			groups = append(groups, g)
		}
		g.keys = append(g.keys, cell.Key)
	}
	c.met.cellsTotal.Add(int64(len(cells)))
	if shared := len(cells) - len(groups); shared > 0 {
		c.met.dedupShares.Add(int64(shared))
	}

	// Resume: anything already checkpointed in the store is complete —
	// its address fully determines its result — so serve it from disk and
	// dispatch only the missing hashes.
	pending := groups[:0:0]
	for _, g := range groups {
		if c.opt.Resume && c.opt.Store != nil {
			if res, st, ok := c.opt.Store.Get(g.hash); ok {
				g.res, g.stats = res, st
				c.met.storeHits.Add(1)
				c.met.resumeSkips.Add(int64(len(g.keys)))
				continue
			}
			c.met.storeMisses.Add(1)
		}
		pending = append(pending, g)
	}
	c.log.Info("sweep dispatching", "sweep", sweep,
		"cells", len(cells), "groups", len(groups),
		"pending", len(pending), "resumed", len(groups)-len(pending),
		"backends", len(c.backends))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	workers := c.opt.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	jobs := make(chan *group)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range jobs {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					continue
				}
				res, st, err := c.dispatchGroup(ctx, g)
				if err == nil && c.opt.Store != nil {
					// Checkpoint as cells complete: a killed coordinator
					// resumes from exactly this set. Best-effort — a full
					// disk costs durability, not the sweep.
					if perr := c.opt.Store.Put(g.hash, res, st); perr != nil {
						c.met.storePutErrors.Add(1)
						c.log.Warn("checkpoint write failed", "sweep", sweep,
							"hash", g.hash[:12], "err", perr)
					}
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = keyedError(g.keys[0], err)
						cancel()
					}
				} else {
					g.res, g.stats = res, st
				}
				mu.Unlock()
			}
		}()
	}
	for _, g := range pending {
		jobs <- g
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		c.log.Error("sweep failed", "sweep", sweep, "err", firstErr)
		return nil, nil, firstErr
	}
	c.log.Info("sweep dispatched", "sweep", sweep,
		"cells", len(cells), "dispatched_groups", len(pending))

	results := make(harness.Results, len(cells))
	stats := make(harness.Stats, len(cells))
	for _, g := range groups {
		for _, k := range g.keys {
			results[k] = g.res
			stats[k] = g.stats
		}
	}
	return results, stats, nil
}

// keyedError guarantees the sweep's abort error is a *harness.CellError
// naming the failing cell, whatever layer produced the cause.
func keyedError(key string, err error) error {
	var ce *harness.CellError
	if errors.As(err, &ce) {
		return ce
	}
	return &harness.CellError{Key: key, Err: err}
}

// permanent reports whether retrying err elsewhere is pointless: the
// backend executed the cell and the simulation itself failed (determinism
// means every backend fails it identically), or the request was rejected
// as malformed. Transport errors, timeouts, 5xx and shutdown races are all
// retryable.
func permanent(err error) bool {
	var ce *harness.CellError
	if errors.As(err, &ce) {
		return true
	}
	var he *server.HTTPError
	if errors.As(err, &he) {
		return !he.Temporary()
	}
	return false
}

// dispatchGroup runs one group to completion: up to MaxAttempts dispatch
// attempts, exponential backoff with jitter between them, each attempt on
// the least-loaded backend — preferring one the group has not just failed
// on (failover).
func (c *Coordinator) dispatchGroup(ctx context.Context, g *group) (*core.Result, harness.CellStats, error) {
	sweep := obs.SweepID(ctx)
	var lastErr error
	avoid := ""
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.met.retries.Add(1)
			delay := c.backoff(attempt)
			c.log.Warn("cell retrying", "sweep", sweep, "cell", g.keys[0],
				"attempt", attempt+1, "backoff", delay, "err", lastErr)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, harness.CellStats{}, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, harness.CellStats{}, err
		}
		b := c.pick(avoid)
		if b == nil {
			lastErr = errors.New("dispatch: no backend available")
			continue
		}
		if avoid != "" && b.url != avoid {
			c.met.failovers.Add(1)
			c.log.Warn("cell failing over", "sweep", sweep, "cell", g.keys[0],
				"from", avoid, "to", b.url)
		}
		res, st, err := c.attempt(ctx, b, g)
		if err == nil {
			return res, st, nil
		}
		if permanent(err) || ctx.Err() != nil {
			return nil, harness.CellStats{}, err
		}
		avoid = b.url
		lastErr = err
	}
	c.log.Error("cell exhausted attempts", "sweep", sweep, "cell", g.keys[0],
		"attempts", c.opt.MaxAttempts, "err", lastErr)
	return nil, harness.CellStats{}, fmt.Errorf(
		"dispatch: cell %s failed after %d attempts: %w", g.keys[0], c.opt.MaxAttempts, lastErr)
}

// backoff returns the pre-attempt delay: BaseBackoff doubled per retry,
// capped at MaxBackoff, jittered uniformly over [0.5, 1.5)× so the
// retries of many concurrently failing cells decorrelate instead of
// stampeding the next backend together. The jitter comes from the
// coordinator's own seedable RNG (Options.Seed), never the process-global
// math/rand.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opt.BaseBackoff << (attempt - 1)
	if d > c.opt.MaxBackoff || d <= 0 { // <=0: shift overflow
		d = c.opt.MaxBackoff
	}
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * (0.5 + j))
}

// attempt dispatches g to backend b once, optionally hedging: when the
// attempt has not resolved within HedgeAfter, the cell is re-dispatched to
// a second backend and the first result wins (the loser's HTTP work is
// canceled). The whole attempt — both legs — is bounded by CellTimeout.
func (c *Coordinator) attempt(ctx context.Context, b *backend, g *group) (*core.Result, harness.CellStats, error) {
	actx, cancel := context.WithTimeout(ctx, c.opt.CellTimeout)
	defer cancel()

	type outcome struct {
		res   *core.Result
		stats harness.CellStats
		err   error
	}
	ch := make(chan outcome, 2) // buffered: the losing leg must not leak
	launch := func(b *backend) {
		res, st, err := c.runOn(actx, b, g)
		ch <- outcome{res, st, err}
	}
	go launch(b)
	outstanding := 1

	var hedge <-chan time.Time
	if c.opt.HedgeAfter > 0 && len(c.backends) > 1 {
		t := time.NewTimer(c.opt.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				return out.res, out.stats, nil
			}
			if permanent(out.err) || outstanding == 0 {
				return nil, harness.CellStats{}, out.err
			}
			// A leg failed retryably but the other is still running; let
			// it decide the attempt.
		case <-hedge:
			hedge = nil
			if hb := c.pick(b.url); hb != nil && hb != b {
				c.met.hedges.Add(1)
				c.log.Info("cell hedged", "sweep", obs.SweepID(ctx),
					"cell", g.keys[0], "first", b.url, "hedge", hb.url,
					"after", c.opt.HedgeAfter)
				outstanding++
				go launch(hb)
			}
		}
	}
}

// runOn executes g's representative cell on backend b as a single-cell
// job and decodes the one result.
func (c *Coordinator) runOn(ctx context.Context, b *backend, g *group) (*core.Result, harness.CellStats, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.dispatched.Add(1)
	t0 := time.Now()
	defer func() { c.met.histAttempt.Observe(time.Since(t0).Seconds()) }()

	fail := func(err error) (*core.Result, harness.CellStats, error) {
		if !errors.Is(err, context.Canceled) { // losing a hedge is not the backend's fault
			b.failures.Add(1)
			if !permanent(err) {
				// Don't wait for the next probe to stop routing here.
				if b.healthy.Swap(false) {
					c.log.Warn("backend marked unhealthy",
						"sweep", obs.SweepID(ctx), "backend", b.url, "err", err)
				}
			}
		}
		return nil, harness.CellStats{}, err
	}

	ack, err := b.cli.Submit(ctx, []harness.Cell{{Key: g.keys[0], Cfg: g.cfg}})
	if err != nil {
		return fail(err)
	}
	st, err := b.cli.Wait(ctx, ack.ID)
	if err != nil {
		return fail(err)
	}
	switch st.State {
	case server.StateDone, server.StateFailed:
	default: // canceled: the backend shut down under the job
		return fail(fmt.Errorf("dispatch: backend %s canceled job %s: %s", b.url, ack.ID, st.Error))
	}
	if len(st.Cells) != 1 {
		return fail(fmt.Errorf("dispatch: backend %s returned %d cells for a 1-cell job", b.url, len(st.Cells)))
	}
	cell := st.Cells[0]
	if cell.Error != "" {
		// The simulation itself failed — permanent, and keyed like a
		// local harness failure so callers' errors.As handling works
		// unchanged through the cluster.
		return nil, harness.CellStats{}, &harness.CellError{Key: cell.Key, Err: errors.New(cell.Error)}
	}
	var res core.Result
	if err := json.Unmarshal(cell.Result, &res); err != nil {
		return fail(fmt.Errorf("dispatch: decoding result from %s: %w", b.url, err))
	}
	return &res, cell.Stats, nil
}
