package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/server"
)

// group is one unit of dispatch: all cells of a sweep that share a content
// hash. Only keys[0] is sent to a backend; the others share its result —
// the coordinator-side analogue of the daemon's single-flight cache.
type group struct {
	hash  string
	cfg   core.Config // canonical
	keys  []string
	res   *core.Result
	stats harness.CellStats
}

// schedJob is one group waiting in the scheduling queue, with the channel
// its Run collects the outcome on.
type schedJob struct {
	ctx    context.Context
	g      *group
	tenant string
	ch     chan<- schedOutcome
}

// schedOutcome is a dispatcher's verdict on one group.
type schedOutcome struct {
	g   *group
	res *core.Result
	st  harness.CellStats
	err error
}

// Run dispatches the cells across the cluster and returns keyed results
// with harness.Run's semantics: the first failing cell aborts the sweep
// (in-flight cells finish, queued ones are skipped) and is returned as a
// *harness.CellError naming the cell. It ignores caller cancellation;
// interactive callers use RunContext.
func (c *Coordinator) Run(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStats(cells, opt)
	return res, err
}

// RunContext is Run bounded by ctx: canceling ctx aborts queued groups and
// every in-flight dispatch attempt.
func (c *Coordinator) RunContext(ctx context.Context, cells []harness.Cell, opt harness.Options) (harness.Results, error) {
	res, _, err := c.RunStatsContext(ctx, cells, opt)
	return res, err
}

// RunStats is RunStatsContext with a background context — it returns only
// when the sweep resolves or fails.
func (c *Coordinator) RunStats(cells []harness.Cell, opt harness.Options) (harness.Results, harness.Stats, error) {
	return c.RunStatsContext(context.Background(), cells, opt)
}

// classOf resolves the priority class a sweep schedules under: the class
// the context asks for, clamped to the tenant's own class (a bulk tenant
// cannot ask for interactive service), defaulting to the tenant's class,
// then Standard.
func classOf(ctx context.Context, tenant *cluster.Tenant) cluster.PriorityClass {
	cls := cluster.Standard
	if tenant != nil {
		cls = tenant.DefaultClass()
	}
	if want, ok := cluster.ClassFrom(ctx); ok {
		if tenant != nil && want < tenant.DefaultClass() {
			want = tenant.DefaultClass()
		}
		cls = want
	}
	return cls
}

// RunStatsContext is Run plus the per-cell cost records the winning backend
// measured, bounded by ctx. The opt.Workers bound is ignored — concurrency
// is Options.Workers across the whole cluster, shared by all concurrent
// sweeps through the priority scheduler. When ctx does not already carry a
// sweep correlation ID one is minted here, so a sweep entering the cluster
// at the coordinator is correlated end to end exactly like one entering at
// a client. With Options.Admission set, ctx must carry an admitted
// tenant's API key (cluster.WithAPIKey); rejections surface unwrapped as
// cluster.ErrUnknownKey or *cluster.AdmissionError before any cell
// dispatches.
func (c *Coordinator) RunStatsContext(ctx context.Context, cells []harness.Cell, _ harness.Options) (harness.Results, harness.Stats, error) {
	if len(cells) == 0 {
		return harness.Results{}, harness.Stats{}, nil
	}
	if err := harness.ValidateKeys(cells); err != nil {
		return nil, nil, err
	}
	ctx, sweep := obs.EnsureSweep(ctx)

	var tenant *cluster.Tenant
	tenantID := "default"
	if c.opt.Admission != nil {
		t, err := c.opt.Admission.Admit(cluster.APIKeyFrom(ctx), len(cells))
		if err != nil {
			c.met.admissionRejects.Add(int64(1))
			c.log.Warn("sweep rejected at admission", "sweep", sweep,
				"cells", len(cells), "err", err)
			return nil, nil, err
		}
		tenant = t
		tenantID = t.ID
		defer c.opt.Admission.Release(t.ID, len(cells))
	}
	class := classOf(ctx, tenant)

	// Content-address every cell up front and fold duplicates into one
	// dispatch group each.
	var groups []*group
	byHash := make(map[string]*group, len(cells))
	for _, cell := range cells {
		canon, err := cell.Cfg.Canonical()
		if err != nil {
			return nil, nil, &harness.CellError{Key: cell.Key, Err: err}
		}
		hash, err := canon.Hash()
		if err != nil {
			return nil, nil, &harness.CellError{Key: cell.Key, Err: err}
		}
		g := byHash[hash]
		if g == nil {
			g = &group{hash: hash, cfg: canon}
			byHash[hash] = g
			groups = append(groups, g)
		}
		g.keys = append(g.keys, cell.Key)
	}
	c.met.cellsTotal.Add(int64(len(cells)))
	c.met.addAdmitted(tenantID, class, len(cells))
	if shared := len(cells) - len(groups); shared > 0 {
		c.met.dedupShares.Add(int64(shared))
	}

	// Resume: anything already checkpointed in the store is complete —
	// its address fully determines its result — so serve it from disk and
	// dispatch only the missing hashes.
	pending := groups[:0:0]
	for _, g := range groups {
		if c.opt.Resume && c.opt.Store != nil {
			if res, st, ok := c.opt.Store.Get(g.hash); ok {
				g.res, g.stats = res, st
				c.met.storeHits.Add(1)
				c.met.resumeSkips.Add(int64(len(g.keys)))
				continue
			}
			c.met.storeMisses.Add(1)
		}
		pending = append(pending, g)
	}
	c.log.Info("sweep dispatching", "sweep", sweep,
		"cells", len(cells), "groups", len(groups),
		"pending", len(pending), "resumed", len(groups)-len(pending),
		"tenant", tenantID, "class", class.String(),
		"backends", c.BackendCount())

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	outcomes := make(chan schedOutcome, len(pending))
	queued := 0
	var firstErr error
	for _, g := range pending {
		item := &cluster.Item{
			Class:   class,
			Payload: &schedJob{ctx: ctx, g: g, tenant: tenantID, ch: outcomes},
		}
		if c.sched.Ordering() == cluster.OrderSJF {
			item.Cost = c.opt.Cost(g.cfg)
		}
		if !c.sched.Push(item) {
			firstErr = keyedError(g.keys[0], errors.New("dispatch: coordinator closed"))
			cancel()
			break
		}
		queued++
	}
	for i := 0; i < queued; i++ {
		out := <-outcomes
		if out.err != nil {
			if firstErr == nil {
				firstErr = keyedError(out.g.keys[0], out.err)
				cancel()
			}
			continue
		}
		out.g.res, out.g.stats = out.res, out.st
	}
	if firstErr != nil {
		c.log.Error("sweep failed", "sweep", sweep, "err", firstErr)
		return nil, nil, firstErr
	}
	c.log.Info("sweep dispatched", "sweep", sweep,
		"cells", len(cells), "dispatched_groups", len(pending))

	results := make(harness.Results, len(cells))
	stats := make(harness.Stats, len(cells))
	for _, g := range groups {
		for _, k := range g.keys {
			results[k] = g.res
			stats[k] = g.stats
		}
	}
	return results, stats, nil
}

// dispatcher is one worker of the shared pool: it drains the scheduling
// queue in priority order, runs each group to completion, checkpoints the
// result, and reports back to the owning Run. The pool — not the number of
// concurrent Runs — bounds cluster-wide in-flight cells.
func (c *Coordinator) dispatcher() {
	defer c.wg.Done()
	for {
		it, ok := c.sched.Pop()
		if !ok {
			return
		}
		j := it.Payload.(*schedJob)
		cls := it.Class.String()
		c.met.queueWait.Observe(cls, time.Since(it.Enqueued).Seconds())
		if err := j.ctx.Err(); err != nil {
			// The owning Run already failed or was canceled; don't burn a
			// backend on a result nobody collects.
			j.ch <- schedOutcome{g: j.g, err: err}
			continue
		}
		res, st, err := c.dispatchGroup(j.ctx, j.g)
		if err == nil {
			c.met.classLatency.Observe(cls, time.Since(it.Enqueued).Seconds())
			c.met.addServed(j.tenant, len(j.g.keys))
			if c.opt.Store != nil {
				// Checkpoint as cells complete: a killed coordinator
				// resumes from exactly this set. Best-effort — a full
				// disk costs durability, not the sweep.
				if perr := c.opt.Store.Put(j.g.hash, res, st); perr != nil {
					c.met.storePutErrors.Add(1)
					c.log.Warn("checkpoint write failed", "sweep", obs.SweepID(j.ctx),
						"hash", j.g.hash[:12], "err", perr)
				}
			}
		}
		j.ch <- schedOutcome{g: j.g, res: res, st: st, err: err}
	}
}

// keyedError guarantees the sweep's abort error is a *harness.CellError
// naming the failing cell, whatever layer produced the cause.
func keyedError(key string, err error) error {
	var ce *harness.CellError
	if errors.As(err, &ce) {
		return ce
	}
	return &harness.CellError{Key: key, Err: err}
}

// permanent reports whether retrying err elsewhere is pointless: the
// backend executed the cell and the simulation itself failed (determinism
// means every backend fails it identically), or the request was rejected
// as malformed. Transport errors, timeouts, 5xx and shutdown races are all
// retryable.
func permanent(err error) bool {
	var ce *harness.CellError
	if errors.As(err, &ce) {
		return true
	}
	var he *server.HTTPError
	if errors.As(err, &he) {
		return !he.Temporary()
	}
	return false
}

// dispatchGroup runs one group to completion: up to MaxAttempts dispatch
// attempts, exponential backoff with jitter between them, each attempt
// routed by Options.Routing — preferring a backend the group has not just
// failed on (failover).
func (c *Coordinator) dispatchGroup(ctx context.Context, g *group) (*core.Result, harness.CellStats, error) {
	sweep := obs.SweepID(ctx)
	var lastErr error
	avoid := ""
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.met.retries.Add(1)
			delay := c.backoff(attempt)
			c.log.Warn("cell retrying", "sweep", sweep, "cell", g.keys[0],
				"attempt", attempt+1, "backoff", delay, "err", lastErr)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, harness.CellStats{}, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, harness.CellStats{}, err
		}
		b, err := c.pickWait(ctx, avoid, g.hash)
		if err != nil {
			return nil, harness.CellStats{}, err
		}
		if b == nil {
			lastErr = errors.New("dispatch: no backend available")
			continue
		}
		if avoid != "" && b.url != avoid {
			c.met.failovers.Add(1)
			c.log.Warn("cell failing over", "sweep", sweep, "cell", g.keys[0],
				"from", avoid, "to", b.url)
		}
		res, st, err := c.attempt(ctx, b, g)
		if err == nil {
			return res, st, nil
		}
		if permanent(err) || ctx.Err() != nil {
			return nil, harness.CellStats{}, err
		}
		avoid = b.url
		lastErr = err
	}
	c.log.Error("cell exhausted attempts", "sweep", sweep, "cell", g.keys[0],
		"attempts", c.opt.MaxAttempts, "err", lastErr)
	return nil, harness.CellStats{}, fmt.Errorf(
		"dispatch: cell %s failed after %d attempts: %w", g.keys[0], c.opt.MaxAttempts, lastErr)
}

// backoff returns the pre-attempt delay: BaseBackoff doubled per retry,
// capped at MaxBackoff, jittered uniformly over [0.5, 1.5)× so the
// retries of many concurrently failing cells decorrelate instead of
// stampeding the next backend together. The jitter comes from the
// coordinator's own seedable RNG (Options.Seed), never the process-global
// math/rand.
func (c *Coordinator) backoff(attempt int) time.Duration {
	d := c.opt.BaseBackoff << (attempt - 1)
	if d > c.opt.MaxBackoff || d <= 0 { // <=0: shift overflow
		d = c.opt.MaxBackoff
	}
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * (0.5 + j))
}

// attempt dispatches g to backend b once, optionally hedging: when the
// attempt has not resolved within HedgeAfter, the cell is re-dispatched to
// a second backend and the first result wins (the loser's HTTP work is
// canceled). The whole attempt — both legs — is bounded by CellTimeout.
func (c *Coordinator) attempt(ctx context.Context, b *backend, g *group) (*core.Result, harness.CellStats, error) {
	actx, cancel := context.WithTimeout(ctx, c.opt.CellTimeout)
	defer cancel()

	type outcome struct {
		res   *core.Result
		stats harness.CellStats
		err   error
	}
	ch := make(chan outcome, 2) // buffered: the losing leg must not leak
	// pick reserved the backend's inflight slot at selection time; each leg
	// holds that reservation until it resolves, so concurrent least-loaded
	// pickers always see each other's choices.
	launch := func(b *backend) {
		go func() {
			defer b.inflight.Add(-1)
			res, st, err := c.runOn(actx, b, g)
			ch <- outcome{res, st, err}
		}()
	}
	launch(b)
	outstanding := 1

	var hedge <-chan time.Time
	if c.opt.HedgeAfter > 0 {
		t := time.NewTimer(c.opt.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	for {
		select {
		case out := <-ch:
			outstanding--
			if out.err == nil {
				return out.res, out.stats, nil
			}
			if permanent(out.err) || outstanding == 0 {
				return nil, harness.CellStats{}, out.err
			}
			// A leg failed retryably but the other is still running; let
			// it decide the attempt.
		case <-hedge:
			hedge = nil
			if hb := c.pick(b.url, g.hash); hb != nil {
				if hb == b {
					hb.inflight.Add(-1) // not dispatching twice to the same backend
				} else {
					c.met.hedges.Add(1)
					c.log.Info("cell hedged", "sweep", obs.SweepID(ctx),
						"cell", g.keys[0], "first", b.url, "hedge", hb.url,
						"after", c.opt.HedgeAfter)
					outstanding++
					launch(hb)
				}
			}
		}
	}
}

// runOn executes g's representative cell on backend b as a single-cell
// job and decodes the one result.
// The caller holds b's inflight reservation for the duration of the call.
func (c *Coordinator) runOn(ctx context.Context, b *backend, g *group) (*core.Result, harness.CellStats, error) {
	b.dispatched.Add(1)
	t0 := time.Now()
	defer func() { c.met.histAttempt.Observe(time.Since(t0).Seconds()) }()

	fail := func(err error) (*core.Result, harness.CellStats, error) {
		if !errors.Is(err, context.Canceled) { // losing a hedge is not the backend's fault
			b.failures.Add(1)
			if !permanent(err) {
				// Don't wait for the next probe to stop routing here.
				if b.healthy.Swap(false) {
					c.log.Warn("backend marked unhealthy",
						"sweep", obs.SweepID(ctx), "backend", b.url, "err", err)
				}
			}
		}
		return nil, harness.CellStats{}, err
	}

	ack, err := b.cli.Submit(ctx, []harness.Cell{{Key: g.keys[0], Cfg: g.cfg}})
	if err != nil {
		return fail(err)
	}
	st, err := b.cli.Wait(ctx, ack.ID)
	if err != nil {
		return fail(err)
	}
	switch st.State {
	case server.StateDone, server.StateFailed:
	default: // canceled: the backend shut down under the job
		return fail(fmt.Errorf("dispatch: backend %s canceled job %s: %s", b.url, ack.ID, st.Error))
	}
	if len(st.Cells) != 1 {
		return fail(fmt.Errorf("dispatch: backend %s returned %d cells for a 1-cell job", b.url, len(st.Cells)))
	}
	cell := st.Cells[0]
	if cell.Error != "" {
		// The simulation itself failed — permanent, and keyed like a
		// local harness failure so callers' errors.As handling works
		// unchanged through the cluster.
		return nil, harness.CellStats{}, &harness.CellError{Key: cell.Key, Err: errors.New(cell.Error)}
	}
	var res core.Result
	if err := json.Unmarshal(cell.Result, &res); err != nil {
		return fail(fmt.Errorf("dispatch: decoding result from %s: %w", b.url, err))
	}
	return &res, cell.Stats, nil
}
