package dispatch

import (
	"bytes"
	"context"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/server"
)

// TestSweepCorrelationAcrossLayers runs one sweep through all three layers —
// server.Client, the dispatch coordinator, and a visasimd daemon — each
// logging to its own buffer, and asserts the single correlation ID shows up
// in every one: the grep-one-ID-to-see-the-whole-sweep property DESIGN.md §9
// promises.
func TestSweepCorrelationAcrossLayers(t *testing.T) {
	var bufClient, bufCoord, bufDaemon bytes.Buffer
	newLogger := func(buf *bytes.Buffer) *slog.Logger {
		return slog.New(slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	srv := server.New(server.Options{Logger: newLogger(&bufDaemon)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})

	ctx, sweep := obs.EnsureSweep(context.Background())

	cli := &server.Client{BaseURL: ts.URL, PollInterval: 2 * time.Millisecond,
		Logger: newLogger(&bufClient)}
	if _, err := cli.RunContext(ctx, []harness.Cell{
		{Key: "direct", Cfg: testCfg("gcc", core.SchemeBase)},
	}, harness.Options{}); err != nil {
		t.Fatal(err)
	}

	coord := newCoordinator(t, Options{
		Backends: []string{ts.URL},
		Logger:   newLogger(&bufCoord),
	})
	if _, err := coord.RunContext(ctx, []harness.Cell{
		{Key: "via-coord", Cfg: testCfg("gcc", core.SchemeVISA)},
	}, harness.Options{}); err != nil {
		t.Fatal(err)
	}

	for _, layer := range []struct {
		name string
		buf  *bytes.Buffer
	}{
		{"client", &bufClient},
		{"coordinator", &bufCoord},
		{"daemon", &bufDaemon},
	} {
		if !strings.Contains(layer.buf.String(), sweep) {
			t.Errorf("%s log does not mention sweep %s:\n%s", layer.name, sweep, layer.buf.String())
		}
	}
}

// TestSeededBackoffReproducible pins the satellite fix for the jitter RNG:
// two coordinators with the same Options.Seed draw identical backoff
// sequences (reproducible retry timing in tests), and drawing does not touch
// the process-global math/rand state.
func TestSeededBackoffReproducible(t *testing.T) {
	mk := func(seed int64) *Coordinator {
		c, err := New(Options{Backends: []string{"http://unused:1"}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	draw := func(c *Coordinator) []time.Duration {
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoff(i%3 + 1)
		}
		return out
	}

	a, b := draw(mk(42)), draw(mk(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(mk(43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}
