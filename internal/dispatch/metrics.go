package dispatch

import (
	"expvar"
	"io"
	"sort"
	"sync"

	"visasim/internal/cluster"
	"visasim/internal/obs"
)

// metrics aggregates the coordinator's counters in a private expvar.Map —
// like the server's, deliberately not published to the process-global
// registry so multiple coordinators (tests!) never collide; binaries
// publish MetricsVar once.
type metrics struct {
	root expvar.Map

	cellsTotal  expvar.Int // cells accepted across all sweeps
	dedupShares expvar.Int // cells folded into another cell's dispatch
	retries     expvar.Int // re-dispatches after a retryable failure
	failovers   expvar.Int // retries that moved to a different backend
	hedges      expvar.Int // straggler re-dispatches launched

	storeHits      expvar.Int // groups served from the durable store
	storeMisses    expvar.Int // resume lookups that fell through
	storePutErrors expvar.Int // failed checkpoint writes (sweep kept going)
	resumeSkips    expvar.Int // cells not dispatched thanks to the store

	joins            expvar.Int // backends that joined (or rejoined) the pool
	leaves           expvar.Int // backends removed from the pool
	drains           expvar.Int // graceful drains started
	admissionRejects expvar.Int // sweeps bounced by the admission gate

	backends expvar.Map // per-backend: dispatched, failures, healthy, inflight

	// admittedByClass counts cells accepted per priority class; the class
	// set is fixed so a plain array works where tenants need snapshots.
	admittedByClass [cluster.NumClasses]expvar.Int

	// served tracks resolved cells per tenant — the service shares the
	// Jain fairness gauge is computed over.
	servedMu sync.Mutex
	served   map[string]int64

	// prom is the Prometheus rendering of the counters above (same
	// sources, second format) plus the latency histograms, which expvar
	// cannot express. Per-backend and per-tenant families are
	// obs.SnapshotVec — membership is dynamic, so the child set is
	// recomputed at scrape time instead of registered up front. Rendered
	// by Coordinator.WritePrometheus and `visasimctl metrics -prom`.
	prom         *obs.Registry
	histAttempt  *obs.Histogram    // one dispatch attempt: submit → cell resolved
	queueWait    *obs.HistogramVec // scheduling-queue wait by priority class
	classLatency *obs.HistogramVec // enqueue → resolved latency by priority class
}

func newMetrics(c *Coordinator) *metrics {
	m := &metrics{served: map[string]int64{}}
	m.root.Init()
	m.backends.Init()
	for name, v := range map[string]expvar.Var{
		"cells_total":       &m.cellsTotal,
		"dedup_shares":      &m.dedupShares,
		"retries":           &m.retries,
		"failovers":         &m.failovers,
		"hedges":            &m.hedges,
		"store_hits":        &m.storeHits,
		"store_misses":      &m.storeMisses,
		"store_put_errors":  &m.storePutErrors,
		"resume_skips":      &m.resumeSkips,
		"joins":             &m.joins,
		"leaves":            &m.leaves,
		"drains":            &m.drains,
		"admission_rejects": &m.admissionRejects,
		"backends":          &m.backends,
	} {
		m.root.Set(name, v)
	}
	m.initProm(c)
	return m
}

// addBackendVar registers a backend's expvar children when it joins; Set
// replaces any previous incarnation, so a rejoin cannot duplicate.
func (m *metrics) addBackendVar(b *backend) {
	per := &expvar.Map{}
	per.Init()
	per.Set("dispatched", &b.dispatched)
	per.Set("failures", &b.failures)
	per.Set("healthy", expvar.Func(func() any { return b.healthy.Load() }))
	per.Set("inflight", expvar.Func(func() any { return b.inflight.Load() }))
	m.backends.Set(b.url, per)
}

// removeBackendVar drops a departed backend's expvar children.
func (m *metrics) removeBackendVar(url string) {
	m.backends.Delete(url)
}

// addAdmitted records cells entering the scheduler under a class.
func (m *metrics) addAdmitted(_ string, class cluster.PriorityClass, cells int) {
	if int(class) < len(m.admittedByClass) {
		m.admittedByClass[class].Add(int64(cells))
	}
}

// addServed records resolved cells against a tenant's service share.
func (m *metrics) addServed(tenant string, cells int) {
	m.servedMu.Lock()
	m.served[tenant] += int64(cells)
	m.servedMu.Unlock()
}

// serviceShares returns the per-tenant resolved-cell counts, tenant-sorted.
func (m *metrics) serviceShares() ([]string, []float64) {
	m.servedMu.Lock()
	defer m.servedMu.Unlock()
	tenants := make([]string, 0, len(m.served))
	for t := range m.served {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	shares := make([]float64, len(tenants))
	for i, t := range tenants {
		shares[i] = float64(m.served[t])
	}
	return tenants, shares
}

// intFn adapts an expvar.Int into a scrape-time Prometheus reader.
func intFn(v *expvar.Int) func() float64 {
	return func() float64 { return float64(v.Value()) }
}

// initProm builds the Prometheus view over the same sources.
func (m *metrics) initProm(c *Coordinator) {
	m.prom = obs.NewRegistry()
	p := m.prom
	p.NewCounterFunc("visasim_dispatch_cells_total", "Cells accepted across all sweeps.", intFn(&m.cellsTotal))
	p.NewCounterFunc("visasim_dispatch_dedup_shares_total", "Cells folded into another cell's dispatch.", intFn(&m.dedupShares))
	p.NewCounterFunc("visasim_dispatch_retries_total", "Re-dispatches after a retryable failure.", intFn(&m.retries))
	p.NewCounterFunc("visasim_dispatch_failovers_total", "Retries that moved to a different backend.", intFn(&m.failovers))
	p.NewCounterFunc("visasim_dispatch_hedges_total", "Straggler re-dispatches launched.", intFn(&m.hedges))
	p.NewCounterFunc("visasim_dispatch_store_hits_total", "Groups served from the durable store.", intFn(&m.storeHits))
	p.NewCounterFunc("visasim_dispatch_store_misses_total", "Resume lookups that fell through to a dispatch.", intFn(&m.storeMisses))
	p.NewCounterFunc("visasim_dispatch_store_put_errors_total", "Failed checkpoint writes (sweep kept going).", intFn(&m.storePutErrors))
	p.NewCounterFunc("visasim_dispatch_resume_skips_total", "Cells not dispatched thanks to the store.", intFn(&m.resumeSkips))
	p.NewCounterFunc("visasim_dispatch_membership_joins_total", "Backends that joined or rejoined the pool.", intFn(&m.joins))
	p.NewCounterFunc("visasim_dispatch_membership_leaves_total", "Backends removed from the pool.", intFn(&m.leaves))
	p.NewCounterFunc("visasim_dispatch_membership_drains_total", "Graceful backend drains started.", intFn(&m.drains))
	p.NewCounterFunc("visasim_dispatch_admission_rejected_sweeps_total", "Sweeps bounced by the admission gate.", intFn(&m.admissionRejects))

	// Per-backend families reflect the live pool at scrape time.
	backendSamples := func(value func(b *backend) float64) func() []obs.Sample {
		return func() []obs.Sample {
			backends := c.snapshot()
			out := make([]obs.Sample, 0, len(backends))
			for _, b := range backends {
				out = append(out, obs.Sample{
					Labels: map[string]string{"backend": b.url},
					Value:  value(b),
				})
			}
			return out
		}
	}
	bool01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	p.NewCounterSnapshotVec("visasim_dispatch_backend_dispatched_total",
		"Attempts sent to the backend (including hedges).",
		backendSamples(func(b *backend) float64 { return float64(b.dispatched.Value()) }))
	p.NewCounterSnapshotVec("visasim_dispatch_backend_failures_total",
		"Attempts the backend failed retryably.",
		backendSamples(func(b *backend) float64 { return float64(b.failures.Value()) }))
	p.NewGaugeSnapshotVec("visasim_dispatch_backend_healthy",
		"1 when the backend's last probe or dispatch succeeded.",
		backendSamples(func(b *backend) float64 { return bool01(b.healthy.Load()) }))
	p.NewGaugeSnapshotVec("visasim_dispatch_backend_draining",
		"1 while the backend is draining out of the pool.",
		backendSamples(func(b *backend) float64 { return bool01(b.draining.Load()) }))
	p.NewGaugeSnapshotVec("visasim_dispatch_backend_inflight",
		"Cells currently dispatched to the backend.",
		backendSamples(func(b *backend) float64 { return float64(b.inflight.Load()) }))

	// Per-class families: the class set is fixed, so FuncVec children work.
	admitted := p.NewCounterFuncVec("visasim_dispatch_class_admitted_cells_total",
		"Cells accepted into the scheduler per priority class.")
	queued := p.NewGaugeFuncVec("visasim_dispatch_class_queued_groups",
		"Dispatch groups waiting in the scheduling queue per priority class.")
	for _, class := range cluster.Classes() {
		class := class
		lbl := map[string]string{"class": class.String()}
		admitted.With(lbl, intFn(&m.admittedByClass[class]))
		queued.With(lbl, func() float64 { return float64(c.sched.LenByClass(class)) })
	}
	m.queueWait = p.NewHistogramVec("visasim_dispatch_queue_wait_seconds",
		"Time a dispatch group waited in the scheduling queue, by priority class.", "class", nil)
	m.classLatency = p.NewHistogramVec("visasim_dispatch_class_latency_seconds",
		"Enqueue-to-resolution latency of a dispatch group, by priority class.", "class", nil)

	p.NewGaugeFunc("visasim_dispatch_jain_fairness",
		"Jain fairness index over per-tenant resolved-cell shares (1 = perfectly fair).",
		func() float64 {
			_, shares := m.serviceShares()
			return cluster.Jain(shares)
		})
	p.NewCounterSnapshotVec("visasim_dispatch_served_cells_total",
		"Cells resolved per tenant.", func() []obs.Sample {
			tenants, shares := m.serviceShares()
			out := make([]obs.Sample, len(tenants))
			for i, t := range tenants {
				out[i] = obs.Sample{Labels: map[string]string{"tenant": t}, Value: shares[i]}
			}
			return out
		})

	if adm := c.opt.Admission; adm != nil {
		tenantSamples := func(value func(cluster.TenantStatus) float64) func() []obs.Sample {
			return func() []obs.Sample {
				snap := adm.Snapshot()
				out := make([]obs.Sample, len(snap))
				for i, ts := range snap {
					out[i] = obs.Sample{
						Labels: map[string]string{"tenant": ts.ID},
						Value:  value(ts),
					}
				}
				return out
			}
		}
		p.NewCounterSnapshotVec("visasim_dispatch_tenant_admitted_cells_total",
			"Cells admitted per tenant.",
			tenantSamples(func(ts cluster.TenantStatus) float64 { return float64(ts.Admitted) }))
		p.NewCounterSnapshotVec("visasim_dispatch_tenant_rejected_cells_total",
			"Cells rejected per tenant (rate or quota).",
			tenantSamples(func(ts cluster.TenantStatus) float64 { return float64(ts.Rejected) }))
		p.NewGaugeSnapshotVec("visasim_dispatch_tenant_queued_cells",
			"Outstanding admitted cells per tenant (the quota in use).",
			tenantSamples(func(ts cluster.TenantStatus) float64 { return float64(ts.Queued) }))
	}

	m.histAttempt = p.NewHistogram("visasim_dispatch_attempt_seconds",
		"One dispatch attempt end to end: submit through cell resolution.", nil)
}

// WritePrometheus renders the coordinator's metrics in Prometheus text
// exposition format 0.0.4 — the coordinator-side twin of the daemon's
// GET /metrics/prom.
func (c *Coordinator) WritePrometheus(w io.Writer) {
	c.met.prom.WritePrometheus(w)
}
