package dispatch

import (
	"expvar"
)

// metrics aggregates the coordinator's counters in a private expvar.Map —
// like the server's, deliberately not published to the process-global
// registry so multiple coordinators (tests!) never collide; binaries
// publish MetricsVar once.
type metrics struct {
	root expvar.Map

	cellsTotal  expvar.Int // cells accepted across all sweeps
	dedupShares expvar.Int // cells folded into another cell's dispatch
	retries     expvar.Int // re-dispatches after a retryable failure
	failovers   expvar.Int // retries that moved to a different backend
	hedges      expvar.Int // straggler re-dispatches launched

	storeHits      expvar.Int // groups served from the durable store
	storeMisses    expvar.Int // resume lookups that fell through
	storePutErrors expvar.Int // failed checkpoint writes (sweep kept going)
	resumeSkips    expvar.Int // cells not dispatched thanks to the store

	backends expvar.Map // per-backend: dispatched, failures, healthy, inflight
}

func newMetrics(backends []*backend) *metrics {
	m := &metrics{}
	m.root.Init()
	m.backends.Init()
	for name, v := range map[string]expvar.Var{
		"cells_total":      &m.cellsTotal,
		"dedup_shares":     &m.dedupShares,
		"retries":          &m.retries,
		"failovers":        &m.failovers,
		"hedges":           &m.hedges,
		"store_hits":       &m.storeHits,
		"store_misses":     &m.storeMisses,
		"store_put_errors": &m.storePutErrors,
		"resume_skips":     &m.resumeSkips,
		"backends":         &m.backends,
	} {
		m.root.Set(name, v)
	}
	for _, b := range backends {
		b := b
		per := &expvar.Map{}
		per.Init()
		per.Set("dispatched", &b.dispatched)
		per.Set("failures", &b.failures)
		per.Set("healthy", expvar.Func(func() any { return b.healthy.Load() }))
		per.Set("inflight", expvar.Func(func() any { return b.inflight.Load() }))
		m.backends.Set(b.url, per)
	}
	return m
}
