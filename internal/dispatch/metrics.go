package dispatch

import (
	"expvar"
	"io"

	"visasim/internal/obs"
)

// metrics aggregates the coordinator's counters in a private expvar.Map —
// like the server's, deliberately not published to the process-global
// registry so multiple coordinators (tests!) never collide; binaries
// publish MetricsVar once.
type metrics struct {
	root expvar.Map

	cellsTotal  expvar.Int // cells accepted across all sweeps
	dedupShares expvar.Int // cells folded into another cell's dispatch
	retries     expvar.Int // re-dispatches after a retryable failure
	failovers   expvar.Int // retries that moved to a different backend
	hedges      expvar.Int // straggler re-dispatches launched

	storeHits      expvar.Int // groups served from the durable store
	storeMisses    expvar.Int // resume lookups that fell through
	storePutErrors expvar.Int // failed checkpoint writes (sweep kept going)
	resumeSkips    expvar.Int // cells not dispatched thanks to the store

	backends expvar.Map // per-backend: dispatched, failures, healthy, inflight

	// prom is the Prometheus rendering of the counters above (same
	// sources, second format) plus the attempt-latency histogram, which
	// expvar cannot express. Rendered by Coordinator.WritePrometheus and
	// `visasimctl metrics -prom`.
	prom        *obs.Registry
	histAttempt *obs.Histogram // one dispatch attempt: submit → cell resolved
}

func newMetrics(backends []*backend) *metrics {
	m := &metrics{}
	m.root.Init()
	m.backends.Init()
	for name, v := range map[string]expvar.Var{
		"cells_total":      &m.cellsTotal,
		"dedup_shares":     &m.dedupShares,
		"retries":          &m.retries,
		"failovers":        &m.failovers,
		"hedges":           &m.hedges,
		"store_hits":       &m.storeHits,
		"store_misses":     &m.storeMisses,
		"store_put_errors": &m.storePutErrors,
		"resume_skips":     &m.resumeSkips,
		"backends":         &m.backends,
	} {
		m.root.Set(name, v)
	}
	for _, b := range backends {
		b := b
		per := &expvar.Map{}
		per.Init()
		per.Set("dispatched", &b.dispatched)
		per.Set("failures", &b.failures)
		per.Set("healthy", expvar.Func(func() any { return b.healthy.Load() }))
		per.Set("inflight", expvar.Func(func() any { return b.inflight.Load() }))
		m.backends.Set(b.url, per)
	}
	m.initProm(backends)
	return m
}

// intFn adapts an expvar.Int into a scrape-time Prometheus reader.
func intFn(v *expvar.Int) func() float64 {
	return func() float64 { return float64(v.Value()) }
}

// initProm builds the Prometheus view over the same expvar counters.
func (m *metrics) initProm(backends []*backend) {
	m.prom = obs.NewRegistry()
	p := m.prom
	p.NewCounterFunc("visasim_dispatch_cells_total", "Cells accepted across all sweeps.", intFn(&m.cellsTotal))
	p.NewCounterFunc("visasim_dispatch_dedup_shares_total", "Cells folded into another cell's dispatch.", intFn(&m.dedupShares))
	p.NewCounterFunc("visasim_dispatch_retries_total", "Re-dispatches after a retryable failure.", intFn(&m.retries))
	p.NewCounterFunc("visasim_dispatch_failovers_total", "Retries that moved to a different backend.", intFn(&m.failovers))
	p.NewCounterFunc("visasim_dispatch_hedges_total", "Straggler re-dispatches launched.", intFn(&m.hedges))
	p.NewCounterFunc("visasim_dispatch_store_hits_total", "Groups served from the durable store.", intFn(&m.storeHits))
	p.NewCounterFunc("visasim_dispatch_store_misses_total", "Resume lookups that fell through to a dispatch.", intFn(&m.storeMisses))
	p.NewCounterFunc("visasim_dispatch_store_put_errors_total", "Failed checkpoint writes (sweep kept going).", intFn(&m.storePutErrors))
	p.NewCounterFunc("visasim_dispatch_resume_skips_total", "Cells not dispatched thanks to the store.", intFn(&m.resumeSkips))
	dispatched := p.NewCounterFuncVec("visasim_dispatch_backend_dispatched_total", "Attempts sent to the backend (including hedges).")
	failures := p.NewCounterFuncVec("visasim_dispatch_backend_failures_total", "Attempts the backend failed retryably.")
	healthy := p.NewGaugeFuncVec("visasim_dispatch_backend_healthy", "1 when the backend's last probe or dispatch succeeded.")
	inflight := p.NewGaugeFuncVec("visasim_dispatch_backend_inflight", "Cells currently dispatched to the backend.")
	for _, b := range backends {
		b := b
		lbl := map[string]string{"backend": b.url}
		dispatched.With(lbl, intFn(&b.dispatched))
		failures.With(lbl, intFn(&b.failures))
		healthy.With(lbl, func() float64 {
			if b.healthy.Load() {
				return 1
			}
			return 0
		})
		inflight.With(lbl, func() float64 { return float64(b.inflight.Load()) })
	}
	m.histAttempt = p.NewHistogram("visasim_dispatch_attempt_seconds",
		"One dispatch attempt end to end: submit through cell resolution.", nil)
}

// WritePrometheus renders the coordinator's metrics in Prometheus text
// exposition format 0.0.4 — the coordinator-side twin of the daemon's
// GET /metrics/prom.
func (c *Coordinator) WritePrometheus(w io.Writer) {
	c.met.prom.WritePrometheus(w)
}
