package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/server"
)

// recordingBackend wraps a real backend handler and records the cell key
// of every sweep submission, in arrival order.
type recordingBackend struct {
	real http.Handler

	mu   sync.Mutex
	keys []string
}

func (rb *recordingBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sweeps") {
		blob, err := io.ReadAll(r.Body)
		if err == nil {
			var req server.SubmitRequest
			if json.Unmarshal(blob, &req) == nil {
				rb.mu.Lock()
				for _, c := range req.Cells {
					rb.keys = append(rb.keys, c.Key)
				}
				rb.mu.Unlock()
			}
			r.Body = io.NopCloser(bytes.NewReader(blob))
		}
	}
	rb.real.ServeHTTP(w, r)
}

func (rb *recordingBackend) seen() []string {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return append([]string(nil), rb.keys...)
}

// newRecordingBackend boots a real in-process backend that records
// submission order.
func newRecordingBackend(t *testing.T) (*httptest.Server, *recordingBackend) {
	t.Helper()
	s := server.New(server.Options{})
	rb := &recordingBackend{real: s.Handler()}
	ts := httptest.NewServer(rb)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return ts, rb
}

// bulkCells builds n distinct single-benchmark cells named prefix-i.
func bulkCells(prefix string, n int) []harness.Cell {
	cells := make([]harness.Cell, n)
	for i := range cells {
		cfg := testCfg("gcc", core.SchemeBase)
		cfg.MaxInstructions = testBudget + uint64(i) // distinct content hashes
		cells[i] = harness.Cell{Key: fmt.Sprintf("%s-%d", prefix, i), Cfg: cfg}
	}
	return cells
}

// TestPrioritySchedulingResistsStarvation pins the SLO scheduler: with one
// dispatcher and a queue full of bulk work, a later interactive sweep
// jumps the line — its cells dispatch before the bulk backlog, so bulk
// load cannot starve interactive latency.
func TestPrioritySchedulingResistsStarvation(t *testing.T) {
	ts, rb := newRecordingBackend(t)
	c := newCoordinator(t, Options{Backends: []string{ts.URL}, Workers: 1})

	bulk := bulkCells("bulk", 12)
	interactive := bulkCells("inter", 3)
	for i := range interactive {
		interactive[i].Cfg.MaxInstructions = testBudget + 100 + uint64(i)
	}

	var wg sync.WaitGroup
	var bulkErr, interErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, bulkErr = c.RunContext(cluster.WithClass(context.Background(), cluster.Bulk),
			bulk, harness.Options{})
	}()
	// Wait until the bulk backlog is actually queued and being served.
	deadline := time.Now().Add(5 * time.Second)
	for len(rb.seen()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(rb.seen()) == 0 {
		t.Fatal("bulk sweep never started dispatching")
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, interErr = c.RunContext(cluster.WithClass(context.Background(), cluster.Interactive),
			interactive, harness.Options{})
	}()
	wg.Wait()
	if bulkErr != nil || interErr != nil {
		t.Fatalf("sweeps failed: bulk=%v interactive=%v", bulkErr, interErr)
	}

	order := rb.seen()
	lastInter := -1
	for i, k := range order {
		if strings.HasPrefix(k, "inter-") {
			lastInter = i
		}
	}
	if lastInter < 0 {
		t.Fatalf("no interactive submissions recorded in %v", order)
	}
	bulkAfter := 0
	for _, k := range order[lastInter+1:] {
		if strings.HasPrefix(k, "bulk-") {
			bulkAfter++
		}
	}
	// With a single dispatcher at most a couple of bulk cells can be
	// in flight when the interactive sweep lands; the rest of the backlog
	// must queue behind it.
	if bulkAfter < 3 {
		t.Fatalf("interactive cells did not jump the bulk backlog; order: %v", order)
	}

	// The scheduler's class families observed the traffic.
	var prom bytes.Buffer
	c.WritePrometheus(&prom)
	for _, want := range []string{
		`visasim_dispatch_class_admitted_cells_total{class="bulk"} 12`,
		`visasim_dispatch_class_admitted_cells_total{class="interactive"} 3`,
		`visasim_dispatch_class_latency_seconds_count{class="interactive"} 3`,
		"visasim_dispatch_jain_fairness",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestJoinAndDrainMidSweepLosesNoCells pins dynamic membership: a sweep
// starts on one backend, a second joins mid-flight, the first drains away
// — and every cell still resolves, byte-identical to a local run.
func TestJoinAndDrainMidSweepLosesNoCells(t *testing.T) {
	ts1, rb1 := newRecordingBackend(t)
	ts2, _ := newRecordingBackend(t)
	c := newCoordinator(t, Options{Backends: []string{ts1.URL}, Dynamic: true, Workers: 2})

	cells := bulkCells("cell", 16)
	var (
		wg      sync.WaitGroup
		results harness.Results
		runErr  error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results, runErr = c.Run(cells, harness.Options{})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for len(rb1.seen()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(rb1.seen()) < 2 {
		t.Fatal("sweep never started on the first backend")
	}
	if err := c.Join(ts2.URL); err != nil {
		t.Fatalf("Join: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Drain(ctx, ts1.URL); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("sweep failed across the membership change: %v", runErr)
	}

	local, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for key := range local {
		rj, _ := json.Marshal(results[key])
		lj, _ := json.Marshal(local[key])
		if !bytes.Equal(rj, lj) {
			t.Fatalf("cell %s: result differs after join+drain", key)
		}
	}

	members := c.Members()
	if len(members) != 1 || members[0].URL != ts2.URL {
		t.Fatalf("members after drain = %+v, want only the joined backend", members)
	}
	if members[0].Dispatched == 0 {
		t.Fatal("joined backend received no work")
	}
	if got := intMetric(t, c, "joins"); got != 2 { // seed + join
		t.Errorf("joins = %v, want 2", got)
	}
	if got := intMetric(t, c, "drains"); got != 1 {
		t.Errorf("drains = %v, want 1", got)
	}
	if got := intMetric(t, c, "leaves"); got != 1 {
		t.Errorf("leaves = %v, want 1", got)
	}
}

// TestDynamicPoolWaitsForFirstBackend: a sweep submitted to an empty
// dynamic pool blocks instead of failing, and completes once the first
// backend registers.
func TestDynamicPoolWaitsForFirstBackend(t *testing.T) {
	c := newCoordinator(t, Options{Dynamic: true, Workers: 2})
	ts := newBackend(t)

	cells := bulkCells("cell", 3)
	done := make(chan error, 1)
	var results harness.Results
	go func() {
		var err error
		results, err = c.Run(cells, harness.Options{})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("sweep resolved with no backends: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := c.Join(ts.URL); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sweep failed after late join: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not resolve after a backend joined")
	}
	if len(results) != len(cells) {
		t.Fatalf("got %d results, want %d", len(results), len(cells))
	}
}

// sameBackendRate runs the same distinct-cell sweep twice through c and
// reports what fraction of cells hit the same backend both times.
func sameBackendRate(t *testing.T, c *Coordinator, rbs map[string]*recordingBackend, n int) float64 {
	t.Helper()
	cells := bulkCells("aff", n)
	for run := 0; run < 2; run++ {
		if _, err := c.Run(cells, harness.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	owner := map[string][]string{} // key -> backends that served it, in order
	for url, rb := range rbs {
		for _, k := range rb.seen() {
			owner[k] = append(owner[k], url)
		}
	}
	same := 0
	for _, urls := range owner {
		if len(urls) == 2 && urls[0] == urls[1] {
			same++
		}
	}
	return float64(same) / float64(n)
}

// TestAffinityRoutingBeatsRandom pins cache-affinity routing: re-submitted
// cells land on the backend that already served them (hit rate 1), while
// the random control arm scatters them.
func TestAffinityRoutingBeatsRandom(t *testing.T) {
	const n = 12
	newPair := func(routing Routing) (*Coordinator, map[string]*recordingBackend) {
		ts1, rb1 := newRecordingBackend(t)
		ts2, rb2 := newRecordingBackend(t)
		c := newCoordinator(t, Options{
			Backends: []string{ts1.URL, ts2.URL},
			Routing:  routing,
			Seed:     7,
		})
		return c, map[string]*recordingBackend{ts1.URL: rb1, ts2.URL: rb2}
	}

	affC, affRBs := newPair(RouteAffinity)
	affinity := sameBackendRate(t, affC, affRBs, n)
	randC, randRBs := newPair(RouteRandom)
	random := sameBackendRate(t, randC, randRBs, n)

	if affinity != 1 {
		t.Errorf("affinity same-backend rate = %v, want 1.0", affinity)
	}
	// 12 independent coin flips all landing on their first backend has
	// probability 2^-12; any real random run scatters at least one.
	if random >= affinity {
		t.Errorf("random same-backend rate %v not below affinity %v", random, affinity)
	}
}

// TestCoordinatorAdmission pins the admission gate at Run entry: unknown
// keys bounce, quota exhaustion returns a typed AdmissionError before any
// dispatch, and released quota admits again.
func TestCoordinatorAdmission(t *testing.T) {
	reg, err := cluster.NewRegistry([]cluster.Tenant{
		{ID: "papers", Key: "pk", Class: "interactive", RatePerSec: 10000, MaxQueued: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newBackend(t)
	c := newCoordinator(t, Options{
		Backends:  []string{ts.URL},
		Admission: cluster.NewAdmission(reg),
	})

	cells := bulkCells("adm", 3)
	if _, err := c.Run(cells, harness.Options{}); !errors.Is(err, cluster.ErrUnknownKey) {
		t.Fatalf("keyless Run err = %v, want ErrUnknownKey", err)
	}
	ctx := cluster.WithAPIKey(context.Background(), "pk")
	if _, err := c.RunContext(ctx, cells, harness.Options{}); err != nil {
		t.Fatalf("admitted Run failed: %v", err)
	}

	var ae *cluster.AdmissionError
	if _, err := c.RunContext(ctx, bulkCells("big", 5), harness.Options{}); !errors.As(err, &ae) {
		t.Fatalf("over-quota Run err = %v, want AdmissionError", err)
	}
	if ae.Reason != "quota" || ae.RetryAfter <= 0 {
		t.Fatalf("AdmissionError = %+v, want quota reason with a retry hint", ae)
	}

	// The completed sweep released its quota: a fitting sweep admits.
	if _, err := c.RunContext(ctx, bulkCells("adm", 2), harness.Options{}); err != nil {
		t.Fatalf("Run after release failed: %v", err)
	}

	snap := c.opt.Admission.Snapshot()
	if len(snap) != 1 || snap[0].Admitted != 5 || snap[0].Rejected != 5 || snap[0].Queued != 0 {
		t.Fatalf("tenant status = %+v, want 5 admitted, 5 rejected, 0 queued", snap)
	}
}
