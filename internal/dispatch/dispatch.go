// Package dispatch fans experiment sweeps out across a cluster of
// visasimd backends: a coordinator that shards a sweep's cells over a
// static backend list with least-loaded assignment, health probing,
// per-cell retry with exponential backoff and jitter, failover after
// repeated failures, and optional hedged re-dispatch for straggler cells.
//
// The coordinator's Run and RunStats mirror harness.Run / harness.RunStats
// (keyed results, first failing cell aborts with a *harness.CellError), so
// it drops into the experiments.Params.Runner seam: every paper table and
// figure regenerates through the cluster unchanged. Determinism makes the
// distribution invisible — a cell's core.Config fully determines its
// core.Result, so which backend ran it, how many times it was retried, or
// whether a hedge raced it cannot change the bytes that come back.
//
// With a persistent store attached (internal/store), completed cells are
// checkpointed to disk as they finish and — in resume mode — cells whose
// content address is already stored are served without dispatching at all.
// A coordinator killed mid-sweep therefore re-dispatches only the missing
// hashes on the next run. See DESIGN.md §8.
package dispatch

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"visasim/internal/obs"
	"visasim/internal/server"
	"visasim/internal/store"
)

// Options tunes a Coordinator.
type Options struct {
	// Backends lists the visasimd base URLs the sweep shards across
	// (required, e.g. "http://host:8080"). Trailing slashes are trimmed.
	Backends []string
	// HTTP is the transport shared by all backend clients and health
	// probes (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval spaces job polls against a backend (the client's 50ms
	// default when 0).
	PollInterval time.Duration
	// ProbeInterval spaces /healthz probes of every backend (2s when 0).
	// A backend that fails a probe — or a dispatch — is deprioritized
	// until a probe succeeds again; it is never removed.
	ProbeInterval time.Duration
	// MaxAttempts bounds how many times one cell is dispatched before the
	// sweep fails (3 when 0). Attempts after the first prefer a different
	// backend (failover) and are spaced by exponential backoff.
	MaxAttempts int
	// BaseBackoff is the first retry delay (100ms when 0); each further
	// retry doubles it up to MaxBackoff (5s when 0). Both are jittered by
	// a uniform ±50% so synchronized retries from many cells spread out.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// CellTimeout bounds one dispatch attempt end to end — submit plus
	// the wait for the backend to finish the cell (10m when 0). A wedged
	// backend costs one timeout, not the sweep.
	CellTimeout time.Duration
	// HedgeAfter, when positive, re-dispatches a cell to a second backend
	// if the first attempt has not resolved within this duration; the
	// first result wins and the loser is canceled. Zero disables hedging.
	HedgeAfter time.Duration
	// Workers bounds concurrently in-flight cells across all backends
	// (4×len(Backends) when 0).
	Workers int
	// Store, when non-nil, is the durable checkpoint tier: every
	// completed cell is written through to it keyed by content hash.
	Store *store.Store
	// Resume, with Store set, serves cells whose content address is
	// already stored without dispatching them — which is also the
	// cross-sweep dedup path. Sound because the address fully determines
	// the result (DESIGN.md §8).
	Resume bool
	// Seed seeds the coordinator's backoff-jitter RNG; 0 seeds from the
	// clock. A fixed seed makes retry timing reproducible in tests without
	// touching the process-global math/rand state.
	Seed int64
	// Logger receives the coordinator's structured log lines — every
	// retry, failover and hedge decision, tagged with the sweep
	// correlation ID so one grep follows a sweep through client,
	// coordinator and daemon. It is also handed to the per-backend
	// clients. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 10 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = 4 * len(o.Backends)
	}
	return o
}

// backend is one visasimd instance the coordinator dispatches to.
type backend struct {
	url string
	cli *server.Client

	healthy  atomic.Bool  // last known probe/dispatch outcome
	inflight atomic.Int64 // cells currently dispatched here

	dispatched expvar.Int // attempts sent here (including hedges)
	failures   expvar.Int // attempts that came back retryable-failed
}

// Coordinator shards sweeps across backends. Create with New, release the
// health prober with Close. Safe for concurrent Run/RunStats calls — the
// worker bound and metrics are shared across them.
type Coordinator struct {
	opt      Options
	backends []*backend
	met      *metrics
	log      *slog.Logger

	// rng jitters retry backoff. Per-instance and mutex-guarded rather
	// than the global math/rand: seedable for reproducible tests, and no
	// cross-talk with anything else in the process drawing randomness.
	rngMu sync.Mutex
	rng   *rand.Rand

	quit chan struct{}
	wg   sync.WaitGroup
}

// New validates the backend list and starts the health prober. Backends
// start out presumed healthy; the first probe (or failed dispatch)
// corrects that, so a coordinator is usable immediately.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Backends) == 0 {
		return nil, errors.New("dispatch: no backends")
	}
	opt = opt.withDefaults()
	seed := opt.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Coordinator{
		opt:  opt,
		log:  obs.Logger(opt.Logger),
		rng:  rand.New(rand.NewSource(seed)), //nolint:gosec // jitter, not crypto
		quit: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, raw := range opt.Backends {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		if url == "" {
			return nil, fmt.Errorf("dispatch: empty backend URL in %q", strings.Join(opt.Backends, ","))
		}
		if seen[url] {
			return nil, fmt.Errorf("dispatch: duplicate backend %s", url)
		}
		seen[url] = true
		b := &backend{
			url: url,
			cli: &server.Client{BaseURL: url, HTTP: opt.HTTP, PollInterval: opt.PollInterval,
				Logger: opt.Logger},
		}
		b.healthy.Store(true)
		c.backends = append(c.backends, b)
	}
	c.met = newMetrics(c.backends)
	c.wg.Add(1)
	go c.probeLoop()
	return c, nil
}

// Close stops the health prober. In-flight sweeps are unaffected.
func (c *Coordinator) Close() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.wg.Wait()
}

// MetricsVar exposes the coordinator's metrics map (dispatch counts per
// backend, retries, failovers, hedges, store hits/misses, resume skips),
// e.g. for expvar.Publish in a binary. Never touches the global registry.
func (c *Coordinator) MetricsVar() expvar.Var { return &c.met.root }

// BackendStatus is one backend's health as seen by Probe.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Error is the probe failure, when unhealthy.
	Error string `json:"error,omitempty"`
	// Inflight is how many cells the coordinator currently has dispatched
	// to this backend.
	Inflight int64 `json:"inflight"`
}

// Probe checks every backend's /healthz once, updates the coordinator's
// health view, and returns the statuses in Options.Backends order.
func (c *Coordinator) Probe(ctx context.Context) []BackendStatus {
	out := make([]BackendStatus, len(c.backends))
	var wg sync.WaitGroup
	for i, b := range c.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			err := b.probe(ctx, c.httpClient())
			st := BackendStatus{URL: b.url, Healthy: err == nil, Inflight: b.inflight.Load()}
			if err != nil {
				st.Error = err.Error()
			}
			out[i] = st
		}(i, b)
	}
	wg.Wait()
	return out
}

func (c *Coordinator) httpClient() *http.Client {
	if c.opt.HTTP != nil {
		return c.opt.HTTP
	}
	return http.DefaultClient
}

func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.opt.ProbeInterval)
			c.Probe(ctx)
			cancel()
		}
	}
}

// probe hits the backend's /healthz and records the outcome.
func (b *backend) probe(ctx context.Context, hc *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		b.healthy.Store(false)
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.healthy.Store(false)
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	b.healthy.Store(true)
	return nil
}

// pick chooses the backend for the next dispatch attempt: the
// least-loaded healthy backend, avoiding `avoid` (the backend a previous
// attempt of the same cell just failed on) when any alternative exists.
// With no healthy backend it falls back to the least-loaded of all of
// them — a sweep should limp through a window where every probe failed
// rather than spin, and the per-attempt timeout bounds the cost of being
// wrong.
func (c *Coordinator) pick(avoid string) *backend {
	if b := c.pickFrom(avoid, true); b != nil {
		return b
	}
	return c.pickFrom(avoid, false)
}

func (c *Coordinator) pickFrom(avoid string, healthyOnly bool) *backend {
	var best *backend
	for _, b := range c.backends {
		if healthyOnly && !b.healthy.Load() {
			continue
		}
		if b.url == avoid {
			continue
		}
		if best == nil || b.inflight.Load() < best.inflight.Load() {
			best = b
		}
	}
	if best == nil && avoid != "" {
		// avoid was the only candidate; better it than nothing.
		for _, b := range c.backends {
			if b.url == avoid && (!healthyOnly || b.healthy.Load()) {
				return b
			}
		}
	}
	return best
}
