// Package dispatch fans experiment sweeps out across a cluster of
// visasimd backends: a coordinator that shards a sweep's cells over the
// backend pool with pluggable routing (least-loaded, cache-affinity
// rendezvous hashing, or seeded random), health probing, per-cell retry
// with exponential backoff and jitter, failover after repeated failures,
// and optional hedged re-dispatch for straggler cells.
//
// Since PR 8 the coordinator is also the cluster's control plane: the
// backend pool may be dynamic (backends register, drain and deregister at
// runtime — see Join, Drain, Leave and the Control HTTP surface), every
// sweep passes through an SLO-aware scheduler (a cluster.Queue ordering
// work by priority class, optionally shortest-job-first using the
// analytical twin's cost estimate), and an optional cluster.Admission
// gate enforces per-tenant rate limits and quotas at sweep entry.
//
// The coordinator's Run and RunStats mirror harness.Run / harness.RunStats
// (keyed results, first failing cell aborts with a *harness.CellError), so
// it drops into the experiments.Params.Runner seam: every paper table and
// figure regenerates through the cluster unchanged. Determinism makes the
// distribution invisible — a cell's core.Config fully determines its
// core.Result, so which backend ran it, what priority class it queued
// under, how many times it was retried, or whether a hedge raced it cannot
// change the bytes that come back.
//
// With a persistent store attached (internal/store), completed cells are
// checkpointed to disk as they finish and — in resume mode — cells whose
// content address is already stored are served without dispatching at all.
// A coordinator killed mid-sweep therefore re-dispatches only the missing
// hashes on the next run. See DESIGN.md §8 and §12.
package dispatch

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/obs"
	"visasim/internal/server"
	"visasim/internal/store"
)

// Routing selects how the coordinator maps a dispatch attempt to a backend.
type Routing uint8

const (
	// RouteLeastLoaded sends each attempt to the healthy backend with the
	// fewest in-flight cells — the default, and the best pick when backends
	// are symmetric and caches don't matter.
	RouteLeastLoaded Routing = iota
	// RouteAffinity routes by rendezvous-hashing the cell's content address
	// over the live members, so re-submissions of a cell keep landing on
	// the backend whose result cache already holds it. Failover still moves
	// a cell elsewhere when its home backend fails.
	RouteAffinity
	// RouteRandom picks uniformly among healthy backends — the control arm
	// affinity is measured against.
	RouteRandom
)

// String returns the routing's flag name.
func (r Routing) String() string {
	switch r {
	case RouteAffinity:
		return "affinity"
	case RouteRandom:
		return "random"
	}
	return "least-loaded"
}

// ParseRouting parses a routing flag value; "" is RouteLeastLoaded.
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "least-loaded", "":
		return RouteLeastLoaded, nil
	case "affinity":
		return RouteAffinity, nil
	case "random":
		return RouteRandom, nil
	}
	return RouteLeastLoaded, fmt.Errorf("dispatch: unknown routing %q (least-loaded, affinity, random)", s)
}

// Options tunes a Coordinator.
type Options struct {
	// Backends lists the visasimd base URLs the sweep shards across, e.g.
	// "http://host:8080" (trailing slashes are trimmed). Required unless
	// Dynamic is set; with Dynamic it seeds the pool, which may be empty.
	Backends []string
	// Dynamic allows runtime membership: the pool may start empty, and
	// backends Join/Drain/Leave while sweeps run. Dispatch waits for a
	// member instead of failing when the pool is momentarily empty.
	Dynamic bool
	// Routing picks the backend-selection policy (RouteLeastLoaded when
	// zero).
	Routing Routing
	// Ordering picks the scheduling-queue order across concurrently
	// submitted sweeps (priority-FCFS when zero).
	Ordering cluster.Ordering
	// Cost estimates a dispatch group's cost for OrderSJF
	// (cluster.InstrCost when nil; cluster.TwinCost for twin-predicted
	// cycles).
	Cost cluster.Estimator
	// Admission, when non-nil, gates every Run at entry: the sweep's
	// context must carry a tenant API key (cluster.WithAPIKey) that admits
	// len(cells) cells, and the tenant's quota is held until the sweep
	// resolves.
	Admission *cluster.Admission
	// HTTP is the transport shared by all backend clients and health
	// probes (http.DefaultClient when nil).
	HTTP *http.Client
	// PollInterval spaces job polls against a backend (the client's 50ms
	// default when 0).
	PollInterval time.Duration
	// ProbeInterval spaces /healthz probes of every backend (2s when 0).
	// A backend that fails a probe — or a dispatch — is deprioritized
	// until a probe succeeds again; it is never removed.
	ProbeInterval time.Duration
	// MaxAttempts bounds how many times one cell is dispatched before the
	// sweep fails (3 when 0). Attempts after the first prefer a different
	// backend (failover) and are spaced by exponential backoff.
	MaxAttempts int
	// BaseBackoff is the first retry delay (100ms when 0); each further
	// retry doubles it up to MaxBackoff (5s when 0). Both are jittered by
	// a uniform ±50% so synchronized retries from many cells spread out.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// CellTimeout bounds one dispatch attempt end to end — submit plus
	// the wait for the backend to finish the cell (10m when 0). A wedged
	// backend costs one timeout, not the sweep.
	CellTimeout time.Duration
	// HedgeAfter, when positive, re-dispatches a cell to a second backend
	// if the first attempt has not resolved within this duration; the
	// first result wins and the loser is canceled. Zero disables hedging.
	HedgeAfter time.Duration
	// Workers is the size of the dispatcher pool draining the scheduling
	// queue — the bound on concurrently in-flight cells across all
	// backends and all concurrent sweeps (4×len(Backends) when 0, with a
	// floor of 8 so a dynamic pool that starts empty still dispatches).
	Workers int
	// Store, when non-nil, is the durable checkpoint tier: every
	// completed cell is written through to it keyed by content hash.
	Store *store.Store
	// Resume, with Store set, serves cells whose content address is
	// already stored without dispatching them — which is also the
	// cross-sweep dedup path. Sound because the address fully determines
	// the result (DESIGN.md §8).
	Resume bool
	// Seed seeds the coordinator's backoff-jitter (and RouteRandom) RNG;
	// 0 seeds from the clock. A fixed seed makes retry timing reproducible
	// in tests without touching the process-global math/rand state.
	Seed int64
	// Logger receives the coordinator's structured log lines — every
	// retry, failover, hedge and membership decision, tagged with a
	// correlation ID so one grep follows a sweep through client,
	// coordinator and daemon. It is also handed to the per-backend
	// clients. Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 10 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = 4 * len(o.Backends)
		if o.Workers < 8 {
			o.Workers = 8
		}
	}
	if o.Cost == nil {
		o.Cost = cluster.InstrCost
	}
	return o
}

// backend is one visasimd instance the coordinator dispatches to.
type backend struct {
	url string
	cli *server.Client

	healthy  atomic.Bool  // last known probe/dispatch outcome
	draining atomic.Bool  // excluded from routing; finishing in-flight work
	inflight atomic.Int64 // cells currently dispatched here

	dispatched expvar.Int // attempts sent here (including hedges)
	failures   expvar.Int // attempts that came back retryable-failed
}

// Coordinator shards sweeps across backends. Create with New, release the
// dispatcher pool and health prober with Close. Safe for concurrent
// Run/RunStats calls — the scheduler, worker bound and metrics are shared
// across them.
type Coordinator struct {
	opt   Options
	met   *metrics
	log   *slog.Logger
	scope string // membership-event correlation ID (one per coordinator)

	// bmu guards the member list; memberCh is closed and replaced on every
	// membership change so pickWait can block on "the pool changed".
	bmu      sync.RWMutex
	backends []*backend
	memberCh chan struct{}

	// sched is the shared scheduling queue every Run feeds; the dispatcher
	// pool drains it best-class-first.
	sched *cluster.Queue

	// rng jitters retry backoff and drives RouteRandom. Per-instance and
	// mutex-guarded rather than the global math/rand: seedable for
	// reproducible tests, and no cross-talk with anything else in the
	// process drawing randomness.
	rngMu sync.Mutex
	rng   *rand.Rand

	quit      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New validates the backend list, starts the dispatcher pool and the
// health prober. Backends start out presumed healthy; the first probe (or
// failed dispatch) corrects that, so a coordinator is usable immediately.
// With Options.Dynamic the initial list may be empty and backends join
// later.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Backends) == 0 && !opt.Dynamic {
		return nil, errors.New("dispatch: no backends")
	}
	opt = opt.withDefaults()
	seed := opt.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Coordinator{
		opt:      opt,
		log:      obs.Logger(opt.Logger),
		scope:    "cluster-" + strings.TrimPrefix(obs.NewSweepID(), "sweep-"),
		memberCh: make(chan struct{}),
		sched:    cluster.NewQueue(opt.Ordering),
		rng:      rand.New(rand.NewSource(seed)), //nolint:gosec // jitter, not crypto
		quit:     make(chan struct{}),
	}
	c.met = newMetrics(c)
	seen := map[string]bool{}
	for _, raw := range opt.Backends {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		if url == "" {
			return nil, fmt.Errorf("dispatch: empty backend URL in %q", strings.Join(opt.Backends, ","))
		}
		if seen[url] {
			return nil, fmt.Errorf("dispatch: duplicate backend %s", url)
		}
		seen[url] = true
		c.join(url, "seed")
	}
	c.wg.Add(1)
	go c.probeLoop()
	for i := 0; i < opt.Workers; i++ {
		c.wg.Add(1)
		go c.dispatcher()
	}
	return c, nil
}

// Close stops accepting new sweeps, lets queued and in-flight work drain,
// and releases the dispatcher pool and health prober.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.quit)
		c.sched.Close()
	})
	c.wg.Wait()
}

// MetricsVar exposes the coordinator's metrics map (dispatch counts per
// backend, retries, failovers, hedges, store hits/misses, resume skips,
// membership transitions), e.g. for expvar.Publish in a binary. Never
// touches the global registry.
func (c *Coordinator) MetricsVar() expvar.Var { return &c.met.root }

// --- membership -----------------------------------------------------------

// Join adds a backend to the pool (or revives a draining one). The URL is
// normalized like Options.Backends entries; joining a member that is
// already present and serving is a no-op.
func (c *Coordinator) Join(rawURL string) error {
	url := strings.TrimRight(strings.TrimSpace(rawURL), "/")
	if url == "" {
		return errors.New("dispatch: empty backend URL")
	}
	c.join(url, "join")
	return nil
}

// join adds or revives url. reason tags the membership log line.
func (c *Coordinator) join(url, reason string) {
	c.bmu.Lock()
	for _, b := range c.backends {
		if b.url == url {
			revived := b.draining.Swap(false)
			c.notifyLocked()
			c.bmu.Unlock()
			if revived {
				c.met.joins.Add(1)
				c.log.Info("backend rejoined", "scope", c.scope, "backend", url)
			}
			return
		}
	}
	b := &backend{
		url: url,
		cli: &server.Client{BaseURL: url, HTTP: c.opt.HTTP, PollInterval: c.opt.PollInterval,
			Logger: c.opt.Logger},
	}
	b.healthy.Store(true)
	c.backends = append(c.backends, b)
	c.met.addBackendVar(b)
	c.notifyLocked()
	n := len(c.backends)
	c.bmu.Unlock()
	c.met.joins.Add(1)
	c.log.Info("backend joined", "scope", c.scope, "backend", url,
		"reason", reason, "members", n)
}

// Leave removes a backend immediately. Cells in flight on it fail their
// current attempt and retry elsewhere — with Dynamic pools the sweep loses
// time, never cells.
func (c *Coordinator) Leave(rawURL string) error {
	url := strings.TrimRight(strings.TrimSpace(rawURL), "/")
	c.bmu.Lock()
	idx := -1
	for i, b := range c.backends {
		if b.url == url {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.bmu.Unlock()
		return fmt.Errorf("dispatch: unknown backend %s", url)
	}
	c.backends = append(c.backends[:idx], c.backends[idx+1:]...)
	c.met.removeBackendVar(url)
	c.notifyLocked()
	n := len(c.backends)
	c.bmu.Unlock()
	c.met.leaves.Add(1)
	c.log.Info("backend left", "scope", c.scope, "backend", url, "members", n)
	return nil
}

// Drain gracefully removes a backend: it stops receiving new dispatches
// immediately, Drain blocks until its in-flight cells resolve (or ctx
// cancels), then it leaves the pool. Queued cells simply route to the
// remaining members — a drain mid-sweep loses zero cells.
func (c *Coordinator) Drain(ctx context.Context, rawURL string) error {
	url := strings.TrimRight(strings.TrimSpace(rawURL), "/")
	c.bmu.RLock()
	var target *backend
	for _, b := range c.backends {
		if b.url == url {
			target = b
			break
		}
	}
	c.bmu.RUnlock()
	if target == nil {
		return fmt.Errorf("dispatch: unknown backend %s", url)
	}
	if !target.draining.Swap(true) {
		c.met.drains.Add(1)
		c.log.Info("backend draining", "scope", c.scope, "backend", url,
			"inflight", target.inflight.Load())
	}
	c.notify()
	for target.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	err := c.Leave(url)
	c.log.Info("backend drained", "scope", c.scope, "backend", url)
	return err
}

// notifyLocked wakes pickWait blockers; callers hold bmu.
func (c *Coordinator) notifyLocked() {
	close(c.memberCh)
	c.memberCh = make(chan struct{})
}

func (c *Coordinator) notify() {
	c.bmu.Lock()
	c.notifyLocked()
	c.bmu.Unlock()
}

// snapshot returns the current member list.
func (c *Coordinator) snapshot() []*backend {
	c.bmu.RLock()
	defer c.bmu.RUnlock()
	return append([]*backend(nil), c.backends...)
}

// BackendCount reports the non-draining pool size (cluster.AutoscaleSource).
func (c *Coordinator) BackendCount() int {
	n := 0
	for _, b := range c.snapshot() {
		if !b.draining.Load() {
			n++
		}
	}
	return n
}

// QueueDepth reports how many dispatch groups are waiting for a backend
// (cluster.AutoscaleSource).
func (c *Coordinator) QueueDepth() int { return c.sched.Len() }

// BackendStatus is one backend's state as seen by Probe/Members.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Draining reports the backend is leaving: it finishes in-flight cells
	// but receives no new ones.
	Draining bool `json:"draining,omitempty"`
	// Error is the probe failure, when unhealthy.
	Error string `json:"error,omitempty"`
	// Inflight is how many cells the coordinator currently has dispatched
	// to this backend.
	Inflight int64 `json:"inflight"`
	// Dispatched counts attempts sent here, including hedges.
	Dispatched int64 `json:"dispatched"`
}

// Members returns every pool member's last-known state without probing.
func (c *Coordinator) Members() []BackendStatus {
	backends := c.snapshot()
	out := make([]BackendStatus, len(backends))
	for i, b := range backends {
		out[i] = BackendStatus{
			URL:        b.url,
			Healthy:    b.healthy.Load(),
			Draining:   b.draining.Load(),
			Inflight:   b.inflight.Load(),
			Dispatched: b.dispatched.Value(),
		}
	}
	return out
}

// Probe checks every backend's /healthz once, updates the coordinator's
// health view, and returns the statuses in pool order.
func (c *Coordinator) Probe(ctx context.Context) []BackendStatus {
	backends := c.snapshot()
	out := make([]BackendStatus, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			err := b.probe(ctx, c.httpClient())
			st := BackendStatus{URL: b.url, Healthy: err == nil,
				Draining: b.draining.Load(), Inflight: b.inflight.Load(),
				Dispatched: b.dispatched.Value()}
			if err != nil {
				st.Error = err.Error()
			}
			out[i] = st
		}(i, b)
	}
	wg.Wait()
	return out
}

func (c *Coordinator) httpClient() *http.Client {
	if c.opt.HTTP != nil {
		return c.opt.HTTP
	}
	return http.DefaultClient
}

func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.opt.ProbeInterval)
			c.Probe(ctx)
			cancel()
		}
	}
}

// probe hits the backend's /healthz and records the outcome.
func (b *backend) probe(ctx context.Context, hc *http.Client) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		b.healthy.Store(false)
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.healthy.Store(false)
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	b.healthy.Store(true)
	return nil
}

// --- routing --------------------------------------------------------------

// pick chooses the backend for the next dispatch attempt of the group with
// content address hash, avoiding `avoid` (the backend a previous attempt
// of the same cell just failed on) when any alternative exists. Draining
// members never receive new work. With no healthy candidate it falls back
// to unhealthy ones — a sweep should limp through a window where every
// probe failed rather than spin, and the per-attempt timeout bounds the
// cost of being wrong. Returns nil only when the pool is empty (or all
// draining).
//
// A non-nil return carries an inflight reservation: the slot is claimed
// atomically at selection (CAS under least-loaded, so concurrent pickers
// observe each other and spread), and the caller must release it with
// inflight.Add(-1) when the leg resolves — or immediately, if it decides
// not to dispatch.
func (c *Coordinator) pick(avoid, hash string) *backend {
	backends := c.snapshot()
	if b := c.pickFrom(backends, avoid, hash, true); b != nil {
		return b
	}
	return c.pickFrom(backends, avoid, hash, false)
}

func (c *Coordinator) pickFrom(backends []*backend, avoid, hash string, healthyOnly bool) *backend {
	cands := make([]*backend, 0, len(backends))
	for _, b := range backends {
		if b.draining.Load() {
			continue
		}
		if healthyOnly && !b.healthy.Load() {
			continue
		}
		if b.url == avoid {
			continue
		}
		cands = append(cands, b)
	}
	if len(cands) == 0 {
		// avoid was the only candidate; better it than nothing.
		for _, b := range backends {
			if b.url == avoid && !b.draining.Load() && (!healthyOnly || b.healthy.Load()) {
				b.inflight.Add(1)
				return b
			}
		}
		return nil
	}
	switch c.opt.Routing {
	case RouteAffinity:
		urls := make([]string, len(cands))
		for i, b := range cands {
			urls[i] = b.url
		}
		home := cluster.RendezvousPick(hash, urls)
		for _, b := range cands {
			if b.url == home {
				b.inflight.Add(1)
				return b
			}
		}
	case RouteRandom:
		c.rngMu.Lock()
		b := cands[c.rng.Intn(len(cands))]
		c.rngMu.Unlock()
		b.inflight.Add(1)
		return b
	}
	// Least-loaded, and the fallback for the impossible affinity miss. The
	// read-choose-claim sequence is not atomic across backends, so claim
	// the slot with a CAS on the chosen backend's count: if another picker
	// (or a finishing leg) moved it first, re-run the selection with the
	// fresh counts instead of piling onto a stale choice.
	for {
		best := cands[0]
		for _, b := range cands[1:] {
			if b.inflight.Load() < best.inflight.Load() {
				best = b
			}
		}
		n := best.inflight.Load()
		if best.inflight.CompareAndSwap(n, n+1) {
			return best
		}
	}
}

// pickWait is pick, but in a Dynamic pool it blocks until a member exists
// rather than failing the attempt: a sweep submitted before the first
// backend registers — or while the whole pool drains away — waits instead
// of dying.
func (c *Coordinator) pickWait(ctx context.Context, avoid, hash string) (*backend, error) {
	for {
		if b := c.pick(avoid, hash); b != nil {
			return b, nil
		}
		if !c.opt.Dynamic {
			return nil, errors.New("dispatch: no backend available")
		}
		c.bmu.RLock()
		ch := c.memberCh
		c.bmu.RUnlock()
		c.log.Warn("dispatch waiting for a backend", "scope", c.scope)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-c.quit:
			return nil, errors.New("dispatch: coordinator closed")
		case <-ch:
		}
	}
}
