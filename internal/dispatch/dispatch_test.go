package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
	"visasim/internal/server"
	"visasim/internal/store"
)

const testBudget = 6000

func testCfg(bench string, scheme core.Scheme) core.Config {
	return core.Config{
		Benchmarks:      []string{bench},
		Scheme:          scheme,
		Policy:          pipeline.PolicyICOUNT,
		MaxInstructions: testBudget,
	}
}

// newBackend boots one real in-process visasimd backend.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return ts
}

func newCoordinator(t *testing.T, opt Options) *Coordinator {
	t.Helper()
	opt.PollInterval = 2 * time.Millisecond
	if opt.BaseBackoff == 0 {
		opt.BaseBackoff = time.Millisecond
	}
	if opt.MaxBackoff == 0 {
		opt.MaxBackoff = 5 * time.Millisecond
	}
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// metricsOf decodes the coordinator's expvar map.
func metricsOf(t *testing.T, c *Coordinator) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(c.MetricsVar().String()), &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func intMetric(t *testing.T, c *Coordinator, name string) float64 {
	t.Helper()
	v, _ := metricsOf(t, c)[name].(float64)
	return v
}

// backendDispatchCounts returns per-backend dispatch counts keyed by URL.
func backendDispatchCounts(t *testing.T, c *Coordinator) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	per, _ := metricsOf(t, c)["backends"].(map[string]any)
	for url, v := range per {
		row, _ := v.(map[string]any)
		n, _ := row["dispatched"].(float64)
		out[url] = n
	}
	return out
}

// TestClusterParity is the acceptance check (and `make cluster-test`'s
// smoke sweep): a sweep dispatched across two in-process backends returns
// results byte-identical to a local harness.Run, exercises both backends,
// and folds duplicate configs into one dispatch. Run under -race in CI.
func TestClusterParity(t *testing.T) {
	b1, b2 := newBackend(t), newBackend(t)
	c := newCoordinator(t, Options{Backends: []string{b1.URL, b2.URL}})

	cells := []harness.Cell{
		{Key: "gcc-base", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "gcc-visa", Cfg: testCfg("gcc", core.SchemeVISA)},
		{Key: "mcf-base", Cfg: testCfg("mcf", core.SchemeBase)},
		{Key: "mcf-visa", Cfg: testCfg("mcf", core.SchemeVISA)},
		{Key: "gcc-base-dup", Cfg: testCfg("gcc", core.SchemeBase)}, // same hash as gcc-base
	}
	remote, remoteStats, err := c.RunStats(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(cells) || len(remoteStats) != len(cells) {
		t.Fatalf("remote returned %d results, %d stats, want %d", len(remote), len(remoteStats), len(cells))
	}
	for key := range local {
		rj, err := json.Marshal(remote[key])
		if err != nil {
			t.Fatal(err)
		}
		lj, err := json.Marshal(local[key])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rj, lj) {
			t.Fatalf("cell %s: dispatched Result differs from local harness.Run", key)
		}
	}

	counts := backendDispatchCounts(t, c)
	for url, n := range counts {
		if n == 0 {
			t.Errorf("backend %s received no dispatches: %v", url, counts)
		}
	}
	if got := intMetric(t, c, "dedup_shares"); got != 1 {
		t.Errorf("dedup_shares = %v, want 1 (gcc-base-dup folds into gcc-base)", got)
	}
	if got := intMetric(t, c, "cells_total"); got != float64(len(cells)) {
		t.Errorf("cells_total = %v, want %d", got, len(cells))
	}
}

// flakyBackend wraps a real backend handler and fails the first `left`
// sweep submissions: errors when hang is false, stalls until client
// disconnect when true. Everything else (healthz, job polls) passes
// through, like a daemon that is reachable but misbehaving on work.
type flakyBackend struct {
	real    http.Handler
	hang    bool
	release chan struct{} // unblocks hung handlers at test teardown
	mu      sync.Mutex
	left    int
	tripped int
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/sweeps") {
		f.mu.Lock()
		bad := f.left > 0
		if bad {
			f.left--
			f.tripped++
		}
		f.mu.Unlock()
		if bad {
			if f.hang {
				// Drain the body first: with unread request data the server
				// never notices a client disconnect (its one-byte background
				// read eats a body byte and stops), so r.Context() would only
				// cancel when the handler returns — a deadlock.
				io.Copy(io.Discard, r.Body) //nolint:errcheck
				select {
				case <-r.Context().Done():
				case <-f.release:
				}
				return
			}
			http.Error(w, `{"error":"injected fault"}`, http.StatusInternalServerError)
			return
		}
	}
	f.real.ServeHTTP(w, r)
}

// TestFlakyBackendDoesNotFailSweep is the fault-injection satellite: a
// backend that errors on first contact costs retries/failovers, never the
// sweep, and the results still match a local run byte-for-byte.
func TestFlakyBackendDoesNotFailSweep(t *testing.T) {
	healthySrv := newBackend(t)

	flakySim := server.New(server.Options{})
	flaky := &flakyBackend{real: flakySim.Handler(), left: 2}
	flakyTS := httptest.NewServer(flaky)
	t.Cleanup(func() {
		flakyTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		flakySim.Shutdown(ctx) //nolint:errcheck
	})

	// The flaky backend first so least-loaded tie-breaking sends the first
	// cell straight into the fault.
	c := newCoordinator(t, Options{
		Backends:    []string{flakyTS.URL, healthySrv.URL},
		MaxAttempts: 4,
	})
	cells := []harness.Cell{
		{Key: "a", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "b", Cfg: testCfg("gcc", core.SchemeVISA)},
		{Key: "c", Cfg: testCfg("mcf", core.SchemeBase)},
	}
	remote, err := c.Run(cells, harness.Options{})
	if err != nil {
		t.Fatalf("sweep failed despite a healthy backend: %v", err)
	}
	local, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for key := range local {
		rj, _ := json.Marshal(remote[key])
		lj, _ := json.Marshal(local[key])
		if !bytes.Equal(rj, lj) {
			t.Fatalf("cell %s differs from local run after failover", key)
		}
	}
	if flaky.tripped == 0 {
		t.Fatal("fault was never exercised")
	}
	if got := intMetric(t, c, "retries"); got < 1 {
		t.Fatalf("retries = %v, want >= 1", got)
	}
	if got := intMetric(t, c, "failovers"); got < 1 {
		t.Fatalf("failovers = %v, want >= 1", got)
	}
}

// TestCellErrorKeySurvivesDispatch pins the error contract through the
// cluster: a doomed cell aborts the sweep with a *harness.CellError whose
// Key is the submitted cell's key, exactly as local harness.Run would.
func TestCellErrorKeySurvivesDispatch(t *testing.T) {
	b := newBackend(t)
	c := newCoordinator(t, Options{Backends: []string{b.URL}})

	cells := []harness.Cell{
		{Key: "fine", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "doomed", Cfg: core.Config{Benchmarks: []string{"nonesuch"}, MaxInstructions: 1000}},
	}
	_, err := c.Run(cells, harness.Options{})
	if err == nil {
		t.Fatal("sweep with a doomed cell succeeded")
	}
	var ce *harness.CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *harness.CellError: %v", err, err)
	}
	if ce.Key != "doomed" {
		t.Fatalf("CellError key %q, want %q", ce.Key, "doomed")
	}
	// Rejected requests are permanent: no retry storm against the backend.
	if got := intMetric(t, c, "retries"); got != 0 {
		t.Fatalf("retries = %v for a permanent failure, want 0", got)
	}
}

// TestResumeSkipsCompletedCells is the checkpointed-resume acceptance
// check: a coordinator killed mid-sweep leaves its completed cells in the
// store; re-running with Resume dispatches only the missing hashes.
func TestResumeSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	cells := []harness.Cell{
		{Key: "a", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "b", Cfg: testCfg("gcc", core.SchemeVISA)},
		{Key: "c", Cfg: testCfg("mcf", core.SchemeBase)},
		{Key: "d", Cfg: testCfg("mcf", core.SchemeVISA)},
	}

	// "First life": the sweep got through cells a and b before the
	// coordinator died — their results are checkpointed in the store.
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newBackend(t)
	first := newCoordinator(t, Options{Backends: []string{b1.URL}, Store: st1})
	if _, err := first.Run(cells[:2], harness.Options{}); err != nil {
		t.Fatal(err)
	}
	if st1.Len() != 2 {
		t.Fatalf("store holds %d checkpoints after partial sweep, want 2", st1.Len())
	}

	// "Second life": fresh store handle, fresh coordinator, fresh
	// backend, full sweep in resume mode.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b2 := newBackend(t)
	second := newCoordinator(t, Options{Backends: []string{b2.URL}, Store: st2, Resume: true})
	remote, err := second.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for key := range local {
		rj, _ := json.Marshal(remote[key])
		lj, _ := json.Marshal(local[key])
		if !bytes.Equal(rj, lj) {
			t.Fatalf("cell %s differs after resume", key)
		}
	}
	if got := intMetric(t, second, "resume_skips"); got != 2 {
		t.Fatalf("resume_skips = %v, want 2", got)
	}
	var total float64
	for _, n := range backendDispatchCounts(t, second) {
		total += n
	}
	if total != 2 {
		t.Fatalf("resumed sweep dispatched %v cells, want only the 2 missing ones", total)
	}
	if st2.Len() != 4 {
		t.Fatalf("store holds %d checkpoints after resume, want 4", st2.Len())
	}
}

// TestHedgedDispatchBeatsStraggler: the first backend hangs on first
// contact; with hedging enabled the cell re-dispatches to the second
// backend and the sweep finishes long before the straggler's timeout.
func TestHedgedDispatchBeatsStraggler(t *testing.T) {
	fastSrv := newBackend(t)

	slowSim := server.New(server.Options{})
	slow := &flakyBackend{real: slowSim.Handler(), left: 1, hang: true, release: make(chan struct{})}
	slowTS := httptest.NewServer(slow)
	t.Cleanup(func() {
		close(slow.release) // runs before slowTS.Close would wait on the conn
		slowTS.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		slowSim.Shutdown(ctx) //nolint:errcheck
	})

	// Straggler first in the list so the single cell lands on it.
	c := newCoordinator(t, Options{
		Backends:   []string{slowTS.URL, fastSrv.URL},
		HedgeAfter: 25 * time.Millisecond,
	})
	cells := []harness.Cell{{Key: "x", Cfg: testCfg("gcc", core.SchemeBase)}}
	done := make(chan error, 1)
	var remote harness.Results
	go func() {
		var err error
		remote, err = c.Run(cells, harness.Options{})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hedged sweep did not finish while the straggler hung")
	}
	if got := intMetric(t, c, "hedges"); got < 1 {
		t.Fatalf("hedges = %v, want >= 1", got)
	}
	local, err := harness.Run(cells, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rj, _ := json.Marshal(remote["x"])
	lj, _ := json.Marshal(local["x"])
	if !bytes.Equal(rj, lj) {
		t.Fatal("hedged result differs from local run")
	}
}

// TestProbeMarksDownBackend: a dead URL is reported unhealthy by Probe and
// dispatch routes around it without retries once probed.
func TestProbeMarksDownBackend(t *testing.T) {
	alive := newBackend(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	c := newCoordinator(t, Options{Backends: []string{deadURL, alive.URL}})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sts := c.Probe(ctx)
	if len(sts) != 2 {
		t.Fatalf("probe returned %d statuses", len(sts))
	}
	if sts[0].Healthy || sts[0].Error == "" {
		t.Fatalf("dead backend reported healthy: %+v", sts[0])
	}
	if !sts[1].Healthy {
		t.Fatalf("live backend reported unhealthy: %+v", sts[1])
	}

	remote, err := c.Run([]harness.Cell{{Key: "k", Cfg: testCfg("gcc", core.SchemeBase)}}, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if remote["k"] == nil {
		t.Fatal("no result for k")
	}
	counts := backendDispatchCounts(t, c)
	if counts[deadURL] != 0 {
		t.Fatalf("dispatched %v cells to a probed-down backend", counts[deadURL])
	}
}

// TestEmptyAndInvalidSweeps covers the edges shared with harness.Run.
func TestEmptyAndInvalidSweeps(t *testing.T) {
	b := newBackend(t)
	c := newCoordinator(t, Options{Backends: []string{b.URL}})
	res, stats, err := c.RunStats(nil, harness.Options{})
	if err != nil || len(res) != 0 || len(stats) != 0 {
		t.Fatalf("empty sweep: %v %v %v", res, stats, err)
	}
	dup := []harness.Cell{
		{Key: "x", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "x", Cfg: testCfg("mcf", core.SchemeBase)},
	}
	if _, err := c.Run(dup, harness.Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

// TestNewRejectsBadBackendLists pins constructor validation.
func TestNewRejectsBadBackendLists(t *testing.T) {
	for _, bad := range [][]string{nil, {}, {""}, {"http://a", "http://a/"}} {
		if c, err := New(Options{Backends: bad}); err == nil {
			c.Close()
			t.Errorf("New(%q) succeeded", bad)
		}
	}
}
