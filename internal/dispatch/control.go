package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"visasim/internal/cluster"
	"visasim/internal/harness"
	"visasim/internal/obs"
	"visasim/internal/server"
)

// This file is the coordinator's own HTTP surface — the control plane the
// cluster binaries speak. Backends register and deregister themselves here
// (dynamic membership: `visasimd -register`), operators drain them
// (`visasimctl drain`), and clients submit whole sweeps through the
// scheduler with tenant and priority headers (POST /v1/dispatch) instead
// of linking the coordinator in-process.

// registerRequest is the body of the membership POSTs.
type registerRequest struct {
	URL string `json:"url"`
}

// DispatchResponse is the body of a successful POST /v1/dispatch: every
// cell's result, keyed and key-sorted. Cells carry exactly the daemon's
// CellStatus shape so existing decoders work against either endpoint.
type DispatchResponse struct {
	Sweep string              `json:"sweep"`
	Cells []server.CellStatus `json:"cells"`
}

// Control returns the coordinator's control-plane handler:
//
//	GET  /healthz                 liveness
//	GET  /v1/backends             pool membership and health
//	POST /v1/backends/register    {"url": ...} join after a handshake probe
//	POST /v1/backends/deregister  {"url": ...} leave immediately
//	POST /v1/backends/drain       {"url": ...} drain gracefully, then leave
//	GET  /v1/tenants              tenant quotas and usage (admission mode)
//	POST /v1/dispatch             run a sweep synchronously through the scheduler
//	GET  /metrics                 coordinator counters as JSON (expvar shape)
//	GET  /metrics/prom            Prometheus text exposition
func (c *Coordinator) Control() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, c.Members())
	})
	mux.HandleFunc("/v1/backends/register", c.membershipHandler(func(ctx context.Context, url string) error {
		if err := c.handshake(ctx, url); err != nil {
			return fmt.Errorf("handshake with %s failed: %w", url, err)
		}
		return c.Join(url)
	}))
	mux.HandleFunc("/v1/backends/deregister", c.membershipHandler(func(_ context.Context, url string) error {
		return c.Leave(url)
	}))
	mux.HandleFunc("/v1/backends/drain", c.membershipHandler(c.Drain))
	mux.HandleFunc("/v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpErr(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		if c.opt.Admission == nil {
			writeJSON(w, []cluster.TenantStatus{})
			return
		}
		writeJSON(w, c.opt.Admission.Snapshot())
	})
	mux.HandleFunc("/v1/dispatch", c.handleDispatch)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, c.met.root.String())
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.WritePrometheus(w)
	})
	return mux
}

// handshake verifies a registering backend actually answers /healthz
// before it enters the pool — a typo'd URL should bounce at registration,
// not poison routing.
func (c *Coordinator) handshake(ctx context.Context, url string) error {
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	b := &backend{url: url}
	return b.probe(hctx, c.httpClient())
}

// membershipHandler adapts a membership mutation into a POST handler.
func (c *Coordinator) membershipHandler(op func(ctx context.Context, url string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req registerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
			httpErr(w, http.StatusBadRequest, "body must be {\"url\": \"http://host:port\"}")
			return
		}
		if err := op(r.Context(), req.URL); err != nil {
			status := http.StatusBadGateway
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			httpErr(w, status, err.Error())
			return
		}
		writeJSON(w, c.Members())
	}
}

// handleDispatch runs a whole sweep synchronously through the scheduler:
// the daemon's SubmitRequest body, the tenant key in cluster.KeyHeader,
// the priority class in cluster.ClassHeader, the sweep correlation ID in
// obs.SweepHeader. Admission rejections return 401 (unknown key) or 429
// with Retry-After and cluster.RetryAfterMsHeader hints.
func (c *Coordinator) handleDispatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req server.SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Cells) == 0 {
		httpErr(w, http.StatusBadRequest, "no cells")
		return
	}
	if req.TraceLevel > 0 {
		httpErr(w, http.StatusBadRequest, "tracing is per-daemon; submit traced sweeps to a backend directly")
		return
	}
	cells := make([]harness.Cell, len(req.Cells))
	for i, sc := range req.Cells {
		key := sc.Key
		if key == "" {
			canon, err := sc.Config.Canonical()
			if err != nil {
				httpErr(w, http.StatusBadRequest, fmt.Sprintf("cell %d: %v", i, err))
				return
			}
			if key, err = canon.Hash(); err != nil {
				httpErr(w, http.StatusBadRequest, fmt.Sprintf("cell %d: %v", i, err))
				return
			}
		}
		cells[i] = harness.Cell{Key: key, Cfg: sc.Config}
	}

	ctx := r.Context()
	if sweep := r.Header.Get(obs.SweepHeader); obs.ValidSweepID(sweep) {
		ctx = obs.WithSweep(ctx, sweep)
	}
	if key := r.Header.Get(cluster.KeyHeader); key != "" {
		ctx = cluster.WithAPIKey(ctx, key)
	}
	if name := r.Header.Get(cluster.ClassHeader); name != "" {
		class, err := cluster.ParseClass(name)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		ctx = cluster.WithClass(ctx, class)
	}
	ctx, sweep := obs.EnsureSweep(ctx)

	results, stats, err := c.RunStatsContext(ctx, cells, harness.Options{})
	if err != nil {
		dispatchErr(w, err)
		return
	}
	resp := DispatchResponse{Sweep: sweep, Cells: make([]server.CellStatus, 0, len(cells))}
	for _, cell := range cells {
		res := results[cell.Key]
		blob, merr := json.Marshal(res)
		if merr != nil {
			httpErr(w, http.StatusInternalServerError, "encoding result: "+merr.Error())
			return
		}
		resp.Cells = append(resp.Cells, server.CellStatus{
			Key:    cell.Key,
			Done:   true,
			Result: blob,
			Stats:  stats[cell.Key],
		})
	}
	sort.Slice(resp.Cells, func(i, j int) bool { return resp.Cells[i].Key < resp.Cells[j].Key })
	writeJSON(w, resp)
}

// dispatchErr maps a Run failure onto the control plane's status codes.
func dispatchErr(w http.ResponseWriter, err error) {
	var ae *cluster.AdmissionError
	switch {
	case errors.Is(err, cluster.ErrUnknownKey):
		httpErr(w, http.StatusUnauthorized, err.Error())
	case errors.As(err, &ae):
		secs := int((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.Header().Set(cluster.RetryAfterMsHeader,
			strconv.FormatInt(ae.RetryAfter.Milliseconds(), 10))
		httpErr(w, http.StatusTooManyRequests, err.Error())
	default:
		var ce *harness.CellError
		if errors.As(err, &ce) {
			httpErr(w, http.StatusUnprocessableEntity, err.Error())
			return
		}
		httpErr(w, http.StatusInternalServerError, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func httpErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck
}
