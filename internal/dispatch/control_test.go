package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"visasim/internal/cluster"
	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/server"
)

// newControlPlane boots a dynamic, admission-gated coordinator and its
// control HTTP surface.
func newControlPlane(t *testing.T) (*Coordinator, *httptest.Server) {
	t.Helper()
	reg, err := cluster.NewRegistry([]cluster.Tenant{
		{ID: "papers", Key: "pk", Class: "interactive", RatePerSec: 10000, MaxQueued: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newCoordinator(t, Options{Dynamic: true, Admission: cluster.NewAdmission(reg), Workers: 4})
	ctl := httptest.NewServer(c.Control())
	t.Cleanup(ctl.Close)
	return c, ctl
}

func postJSON(t *testing.T, url string, body any, headers map[string]string) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestControlPlaneLifecycle drives the whole control surface end to end:
// register two daemons over HTTP, dispatch a mixed sweep with tenant and
// priority headers, verify byte parity with a local run, exercise 401/429
// admission answers, then drain a backend out.
func TestControlPlaneLifecycle(t *testing.T) {
	_, ctl := newControlPlane(t)
	b1, b2 := newBackend(t), newBackend(t)

	// Registration handshakes and reports membership.
	for i, b := range []string{b1.URL, b2.URL} {
		resp := postJSON(t, ctl.URL+"/v1/backends/register", registerRequest{URL: b}, nil)
		var members []BackendStatus
		decodeInto(t, resp, &members)
		if resp.StatusCode != http.StatusOK || len(members) != i+1 {
			t.Fatalf("register %s: HTTP %d, %d members", b, resp.StatusCode, len(members))
		}
	}
	// A dead URL is refused at the handshake.
	if resp := postJSON(t, ctl.URL+"/v1/backends/register",
		registerRequest{URL: "http://127.0.0.1:1"}, nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("registering a dead backend: HTTP %d, want 502", resp.StatusCode)
	}

	// Dispatch through the scheduler with tenant + priority headers.
	sub := server.SubmitRequest{Cells: []server.SubmitCell{
		{Key: "gcc", Config: testCfg("gcc", core.SchemeBase)},
		{Key: "mcf", Config: testCfg("mcf", core.SchemeVISA)},
	}}
	hdrs := map[string]string{
		cluster.KeyHeader:   "pk",
		cluster.ClassHeader: "interactive",
	}
	resp := postJSON(t, ctl.URL+"/v1/dispatch", sub, hdrs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dispatch: HTTP %d", resp.StatusCode)
	}
	var dr DispatchResponse
	decodeInto(t, resp, &dr)
	if dr.Sweep == "" || len(dr.Cells) != 2 {
		t.Fatalf("dispatch response = %+v", dr)
	}
	local, err := harness.Run([]harness.Cell{
		{Key: "gcc", Cfg: testCfg("gcc", core.SchemeBase)},
		{Key: "mcf", Cfg: testCfg("mcf", core.SchemeVISA)},
	}, harness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range dr.Cells {
		lj, err := json.Marshal(local[cell.Key])
		if err != nil {
			t.Fatal(err)
		}
		var compact bytes.Buffer // the indenting encoder reformatted the raw result
		if err := json.Compact(&compact, cell.Result); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(compact.Bytes(), lj) {
			t.Fatalf("cell %s: dispatched result differs from local run", cell.Key)
		}
	}

	// Unknown key → 401; over-quota → 429 with both retry hints.
	if resp := postJSON(t, ctl.URL+"/v1/dispatch", sub,
		map[string]string{cluster.KeyHeader: "wrong"}); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad-key dispatch: HTTP %d, want 401", resp.StatusCode)
	}
	big := server.SubmitRequest{}
	for i := 0; i < 5; i++ {
		cfg := testCfg("gcc", core.SchemeBase)
		cfg.MaxInstructions = testBudget + uint64(i)
		big.Cells = append(big.Cells, server.SubmitCell{Key: fmt.Sprintf("big-%d", i), Config: cfg})
	}
	resp = postJSON(t, ctl.URL+"/v1/dispatch", big, hdrs)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota dispatch: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer second count", ra)
	}
	if ms := resp.Header.Get(cluster.RetryAfterMsHeader); ms == "" {
		t.Errorf("429 without %s", cluster.RetryAfterMsHeader)
	}

	// Tenant usage shows up without leaking keys.
	var tenants []cluster.TenantStatus
	tresp, err := http.Get(ctl.URL + "/v1/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	decodeInto(t, tresp, &tenants)
	if len(tenants) != 1 || tenants[0].ID != "papers" || tenants[0].Admitted != 2 || tenants[0].Rejected != 5 {
		t.Fatalf("tenants = %+v, want papers with 2 admitted, 5 rejected", tenants)
	}

	// Drain removes a backend gracefully.
	if resp := postJSON(t, ctl.URL+"/v1/backends/drain",
		registerRequest{URL: b1.URL}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: HTTP %d", resp.StatusCode)
	}
	bresp, err := http.Get(ctl.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var members []BackendStatus
	decodeInto(t, bresp, &members)
	if len(members) != 1 || members[0].URL != b2.URL {
		t.Fatalf("members after drain = %+v", members)
	}
}
