package twin

import (
	"visasim/internal/config"
	"visasim/internal/isa"
	"visasim/internal/workload"
)

// configForFU is the reference (Table 2) machine with the design point's
// issue-queue size and function-unit pools substituted in.
func configForFU(iqSize int, fu *[5]int) config.Machine {
	m := config.Default()
	m.IQSize = iqSize
	m.IntALUs = fu[isa.FUIntALU]
	m.IntMulDivs = fu[isa.FUIntMulDiv]
	m.LoadStores = fu[isa.FULoadStore]
	m.FPALUs = fu[isa.FUFPALU]
	m.FPMulDivs = fu[isa.FUFPMulDiv]
	return m
}

// RefFU returns the Table 2 function-unit mix, indexed by isa.FUClass.
func RefFU() [5]int {
	return config.Default().FUCount()
}

// prefixCategory classifies the first n benchmarks of a mix the same way
// Table 3 classifies full mixes: all CPU-intensive → CPU (0), all
// memory-intensive → MEM (2), otherwise MIX (1). Thread-count prefixes of
// a MIX workload can land in a different category than the full mix —
// what matters for the correction factors is the behaviour of the threads
// actually running.
func prefixCategory(mix workload.Mix, n int) (int, error) {
	mem := 0
	for _, name := range mix.Benchmarks[:n] {
		b, err := workload.Get(name)
		if err != nil {
			return 0, err
		}
		if b.Class == workload.MEMIntensive {
			mem++
		}
	}
	switch mem {
	case 0:
		return 0, nil
	case n:
		return 2, nil
	default:
		return 1, nil
	}
}

// prefixShares estimates the per-function-unit-class share of issued
// instructions for the first n benchmarks of a mix, from the generators'
// static kind weights. Control instructions and nops execute on the
// integer ALU pool, and every thread contributes equally (the fetch
// policies keep thread progress roughly balanced over a whole run).
func prefixShares(mix workload.Mix, n int) ([5]float64, error) {
	var shares [5]float64
	for _, name := range mix.Benchmarks[:n] {
		b, err := workload.Get(name)
		if err != nil {
			return shares, err
		}
		km := b.Params.Mix
		total := km.IntALU + km.IntMul + km.IntDiv + km.Load + km.Store +
			km.FPALU + km.FPMul + km.FPDiv + km.Nop
		// Control flow is emitted structurally, not drawn from the
		// mix; a fixed estimate of its dynamic share routes it to the
		// integer ALUs alongside nops.
		const controlShare = 0.12
		if total <= 0 {
			shares[isa.FUIntALU] += 1
			continue
		}
		scale := (1 - controlShare) / total
		shares[isa.FUIntALU] += controlShare + scale*(km.IntALU+km.Nop)
		shares[isa.FUIntMulDiv] += scale * (km.IntMul + km.IntDiv)
		shares[isa.FULoadStore] += scale * (km.Load + km.Store)
		shares[isa.FUFPALU] += scale * km.FPALU
		shares[isa.FUFPMulDiv] += scale * (km.FPMul + km.FPDiv)
	}
	for c := range shares {
		shares[c] /= float64(n)
	}
	return shares, nil
}
