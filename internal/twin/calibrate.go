package twin

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/iqorg"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// PinnedBudget is the committed-instruction budget of the pinned
// calibration sample. Signatures, calibration and frontier verification
// all use it, so the twin is always compared against the simulator at the
// operating point it was fitted for.
const PinnedBudget = 40_000

// Accuracy floors enforced by the golden regression test
// (internal/twin, TestGoldenCalibration): a model whose calibration
// report exceeds a MAPE floor or undershoots a Pearson floor fails the
// build. The IPC and IQ-AVF floors are the acceptance bar; occupancy and
// ROB AVF get looser floors because the explorer only ranks with them.
const (
	MAPEFloorIPC    = 0.15
	MAPEFloorIQAVF  = 0.15
	MAPEFloorIQOcc  = 0.25
	MAPEFloorROBAVF = 0.30

	PearsonFloorIPC   = 0.90
	PearsonFloorIQAVF = 0.90
)

// Observed is the simulator's answer for one design point — the subset of
// core.Result the twin predicts, plus MaxIQAVF (the DVM target reference
// the signatures carry).
type Observed struct {
	IPC      float64
	IQOcc    float64
	IQAVF    float64
	ROBAVF   float64
	MaxIQAVF float64
	ReadyLen float64
}

// ObservedFrom extracts the twin-comparable metrics from a full simulation
// result.
func ObservedFrom(res *core.Result) Observed {
	return Observed{
		IPC:      res.ThroughputIPC,
		IQOcc:    res.MeanIQOccupancy,
		IQAVF:    res.IQAVF,
		ROBAVF:   res.ROBAVF,
		MaxIQAVF: res.MaxIQAVF,
		ReadyLen: res.MeanReadyLen,
	}
}

// CalCell is one cell of the calibration sample: a design point plus the
// stable key it simulates under.
type CalCell struct {
	Key string
	In  Input
}

// Runner executes a batch of simulations with harness.Run semantics. The
// local harness, a visasimd client and the dispatch coordinator all
// satisfy it (it is the same seam as experiments.Params.Runner), so
// calibration can run against any backend tier.
type Runner func(cells []harness.Cell, opt harness.Options) (harness.Results, error)

// PinnedSample returns the calibration sample the golden regression test
// pins: base cells for every (mix, threads) signature, plus scheme,
// policy, IQ-size, function-unit, DVM and composed variation cells
// spanning every explorer axis. The sample is deterministic — same cells,
// same keys, every call.
func PinnedSample() []CalCell {
	mixIdx := MixIndices()
	refFU := RefFU()
	halfFU := [5]int{4, 2, 2, 4, 2}
	doubleFU := [5]int{16, 8, 8, 16, 8}
	intLeanFU := [5]int{4, 2, 4, 8, 4}

	var cells []CalCell
	add := func(key string, in Input) {
		cells = append(cells, CalCell{Key: "twin/" + key, In: in})
	}
	base := func(mix string, threads int) Input {
		return Input{Mix: mixIdx[mix], Threads: threads,
			Scheme: core.SchemeBase, Policy: pipeline.PolicyICOUNT,
			IQSize: 96, FU: refFU}
	}

	// Base signatures: every Table 3 mix at every thread count. These
	// double as the Fit measurement set.
	for _, mix := range mixNames() {
		for t := 1; t <= MaxThreads; t++ {
			add(fmt.Sprintf("base/%s/t%d", mix, t), base(mix, t))
		}
	}

	// Scheme factors under ICOUNT, every mix. The factors are fitted as
	// per-category geometric means; covering the whole category membership
	// keeps no mix out-of-sample, which matters because the explorer's
	// frontier gravitates to wherever the model is most optimistic.
	for _, s := range []core.Scheme{core.SchemeVISA, core.SchemeVISAOpt1, core.SchemeVISAOpt2} {
		for _, mix := range mixNames() {
			in := base(mix, 4)
			in.Scheme = s
			add(fmt.Sprintf("scheme/%v/%s", s, mix), in)
		}
	}

	// Fetch-policy factors on the base scheme, every mix, for the same
	// reason (single-mix fitting over-fits policies like PDG whose benefit
	// varies a lot within a category).
	policyMixes := []string{"CPU-A", "MIX-A", "MEM-A"}
	for _, pol := range []pipeline.FetchPolicyKind{
		pipeline.PolicySTALL, pipeline.PolicyFLUSH, pipeline.PolicyDG, pipeline.PolicyPDG} {
		for _, mix := range mixNames() {
			in := base(mix, 4)
			in.Policy = pol
			add(fmt.Sprintf("policy/%v/%s", pol, mix), in)
		}
	}

	// Issue-queue sizing response.
	for _, size := range []int{48, 64, 128} {
		for _, mix := range policyMixes {
			in := base(mix, 4)
			in.IQSize = size
			add(fmt.Sprintf("iq/%d/%s", size, mix), in)
		}
	}

	// Function-unit mix response.
	for _, fv := range []struct {
		name string
		fu   [5]int
	}{{"half", halfFU}, {"double", doubleFU}, {"int-lean", intLeanFU}} {
		for _, mix := range policyMixes {
			in := base(mix, 4)
			in.FU = fv.fu
			add(fmt.Sprintf("fu/%s/%s", fv.name, mix), in)
		}
	}

	// DVM feedback response across target depths.
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		for _, mix := range policyMixes {
			in := base(mix, 4)
			in.Scheme = core.SchemeDVM
			in.DVMFrac = frac
			add(fmt.Sprintf("dvm/%.1f/%s", frac, mix), in)
		}
	}

	// Issue-queue organization factors on the base scheme, every mix —
	// same whole-category coverage rationale as the scheme rows.
	for _, org := range []iqorg.Kind{iqorg.SWQUE, iqorg.Partitioned} {
		for _, mix := range mixNames() {
			in := base(mix, 4)
			in.Org = org
			add(fmt.Sprintf("org/%v/%s", org, mix), in)
		}
	}

	// Protection-mode residual factors. Parity and partial replication sit
	// off the timing paths (the analytic mitigation already covers them, so
	// their residuals fit near identity); ECC's wakeup-cycle IPC tax is
	// what these rows exist to learn.
	for _, prot := range []iqorg.Protection{iqorg.Parity, iqorg.ECC, iqorg.PartialReplication} {
		for _, mix := range policyMixes {
			in := base(mix, 4)
			in.Prot = prot
			add(fmt.Sprintf("prot/%v/%s", prot, mix), in)
		}
	}

	// Composed cells: multiplicative factors under test, never used for
	// fitting. These are the honest rows of the calibration report.
	composed := []struct {
		key string
		mod func(*Input)
	}{
		{"visa+stall/MIX-A", func(in *Input) { in.Scheme = core.SchemeVISA; in.Policy = pipeline.PolicySTALL }},
		{"opt2+flush/MEM-A", func(in *Input) { in.Scheme = core.SchemeVISAOpt2; in.Policy = pipeline.PolicyFLUSH }},
		{"opt1+iq64/CPU-A", func(in *Input) { in.Scheme = core.SchemeVISAOpt1; in.IQSize = 64 }},
		{"visa+iq128/MEM-B", func(in *Input) { in.Scheme = core.SchemeVISA; in.IQSize = 128 }},
		{"dvm0.5+iq64/MIX-B", func(in *Input) { in.Scheme = core.SchemeDVM; in.DVMFrac = 0.5; in.IQSize = 64 }},
		{"opt2+fuhalf/CPU-B", func(in *Input) { in.Scheme = core.SchemeVISAOpt2; in.FU = halfFU }},
		{"visa+t2/MEM-C", func(in *Input) { in.Scheme = core.SchemeVISA; in.Threads = 2 }},
		{"dvm0.4+pdg/MEM-A", func(in *Input) { in.Scheme = core.SchemeDVM; in.DVMFrac = 0.4; in.Policy = pipeline.PolicyPDG }},
		{"partitioned+visa/MIX-A", func(in *Input) { in.Org = iqorg.Partitioned; in.Scheme = core.SchemeVISA }},
		{"swque+parity/CPU-A", func(in *Input) { in.Org = iqorg.SWQUE; in.Prot = iqorg.Parity }},
		{"ecc+iq64/MEM-A", func(in *Input) { in.Prot = iqorg.ECC; in.IQSize = 64 }},
		{"partitioned+prepl/MEM-B", func(in *Input) { in.Org = iqorg.Partitioned; in.Prot = iqorg.PartialReplication }},
	}
	for _, c := range composed {
		mix := c.key[strings.LastIndexByte(c.key, '/')+1:]
		in := base(mix, 4)
		c.mod(&in)
		add("composed/"+c.key, in)
	}
	return cells
}

// CellsFor materialises the harness cells a calibration sample simulates.
func (m *Model) CellsFor(sample []CalCell) ([]harness.Cell, error) {
	cells := make([]harness.Cell, 0, len(sample))
	for _, cc := range sample {
		cfg, err := m.ConfigFor(&cc.In)
		if err != nil {
			return nil, fmt.Errorf("twin: cell %s: %w", cc.Key, err)
		}
		cells = append(cells, harness.Cell{Key: cc.Key, Cfg: cfg})
	}
	return cells, nil
}

// MetricReport is one predicted metric's accuracy over the sample.
type MetricReport struct {
	Name    string
	MAPE    float64 // mean absolute percentage error, as a fraction
	Pearson float64 // Pearson correlation of predicted vs observed
}

// CellReport is one sample cell's predicted-vs-observed record.
type CellReport struct {
	Key  string
	In   Input
	Pred Prediction
	Obs  Observed
}

// Report is a complete calibration: per-metric accuracy plus the per-cell
// records it was computed from. The golden artifact under
// testdata/golden/twin serialises exactly this.
type Report struct {
	Model   int // model version the report was computed against
	Budget  uint64
	Cells   []CellReport
	Metrics []MetricReport
}

// Metric returns the named metric report (zero value if absent).
func (r *Report) Metric(name string) MetricReport {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m
		}
	}
	return MetricReport{}
}

// Check enforces the accuracy floors, returning an error naming every
// violated floor. A nil error is the twin's regression contract.
func (r *Report) Check() error {
	type floor struct {
		metric     string
		mape       float64
		pearsonMin float64 // 0 disables
	}
	floors := []floor{
		{"ipc", MAPEFloorIPC, PearsonFloorIPC},
		{"iq-avf", MAPEFloorIQAVF, PearsonFloorIQAVF},
		{"iq-occ", MAPEFloorIQOcc, 0},
		{"rob-avf", MAPEFloorROBAVF, 0},
	}
	var errs []string
	for _, f := range floors {
		m := r.Metric(f.metric)
		if m.Name == "" {
			errs = append(errs, fmt.Sprintf("metric %s missing from report", f.metric))
			continue
		}
		if m.MAPE > f.mape {
			errs = append(errs, fmt.Sprintf("%s MAPE %.3f exceeds floor %.2f", f.metric, m.MAPE, f.mape))
		}
		if f.pearsonMin > 0 && m.Pearson < f.pearsonMin {
			errs = append(errs, fmt.Sprintf("%s Pearson r %.3f below floor %.2f", f.metric, m.Pearson, f.pearsonMin))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("twin: calibration floors violated: %v", errs)
	}
	return nil
}

// Calibrate runs the sample through the simulator (via runner — local
// harness, daemon or cluster) and reports the twin's accuracy against it.
func Calibrate(m *Model, sample []CalCell, runner Runner, workers int) (*Report, error) {
	cells, err := m.CellsFor(sample)
	if err != nil {
		return nil, err
	}
	if runner == nil {
		runner = func(cells []harness.Cell, opt harness.Options) (harness.Results, error) {
			return harness.Run(cells, opt)
		}
	}
	results, err := runner(cells, harness.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("twin: calibration sweep: %w", err)
	}
	observed := make(map[string]Observed, len(results))
	for key, res := range results {
		observed[key] = ObservedFrom(res)
	}
	return CalibrateAgainst(m, sample, observed)
}

// CalibrateAgainst computes the calibration report from already-measured
// simulator metrics — e.g. the observations stored in the golden artifact,
// which is how the drift test proves a perturbed coefficient trips the
// floors without re-simulating.
func CalibrateAgainst(m *Model, sample []CalCell, observed map[string]Observed) (*Report, error) {
	rep := &Report{Model: m.Version, Budget: m.Budget}
	var pred Prediction
	for _, cc := range sample {
		obs, ok := observed[cc.Key]
		if !ok {
			return nil, fmt.Errorf("twin: no observation for cell %s", cc.Key)
		}
		if err := m.Valid(&cc.In); err != nil {
			return nil, err
		}
		m.Evaluate(&cc.In, &pred)
		rep.Cells = append(rep.Cells, CellReport{Key: cc.Key, In: cc.In, Pred: pred, Obs: obs})
	}
	sort.Slice(rep.Cells, func(i, j int) bool { return rep.Cells[i].Key < rep.Cells[j].Key })

	type series struct {
		name string
		pred func(*CellReport) float64
		obs  func(*CellReport) float64
	}
	metrics := []series{
		{"ipc", func(c *CellReport) float64 { return c.Pred.IPC }, func(c *CellReport) float64 { return c.Obs.IPC }},
		{"iq-occ", func(c *CellReport) float64 { return c.Pred.IQOcc }, func(c *CellReport) float64 { return c.Obs.IQOcc }},
		{"iq-avf", func(c *CellReport) float64 { return c.Pred.IQAVF }, func(c *CellReport) float64 { return c.Obs.IQAVF }},
		{"rob-avf", func(c *CellReport) float64 { return c.Pred.ROBAVF }, func(c *CellReport) float64 { return c.Obs.ROBAVF }},
	}
	for _, s := range metrics {
		p := make([]float64, len(rep.Cells))
		o := make([]float64, len(rep.Cells))
		for i := range rep.Cells {
			p[i] = s.pred(&rep.Cells[i])
			o[i] = s.obs(&rep.Cells[i])
		}
		rep.Metrics = append(rep.Metrics, MetricReport{
			Name:    s.name,
			MAPE:    mape(p, o),
			Pearson: pearson(p, o),
		})
	}
	return rep, nil
}

// MarshalReport serialises a calibration report as indented JSON — the
// golden artifact format under testdata/golden/twin.
func MarshalReport(r *Report) ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// UnmarshalReport parses a serialised calibration report.
func UnmarshalReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("twin: parsing report: %w", err)
	}
	return &r, nil
}

// ObservedByKey extracts the report's simulator observations, keyed like
// the sample — what CalibrateAgainst consumes.
func (r *Report) ObservedByKey() map[string]Observed {
	out := make(map[string]Observed, len(r.Cells))
	for _, c := range r.Cells {
		out[c.Key] = c.Obs
	}
	return out
}

// mape is the mean absolute percentage error of pred against obs,
// as a fraction (0.1 = 10%). Cells whose observation is (numerically)
// zero are skipped rather than divided by.
func mape(pred, obs []float64) float64 {
	var sum float64
	n := 0
	for i := range obs {
		if math.Abs(obs[i]) < epsilon {
			continue
		}
		sum += math.Abs(pred[i]-obs[i]) / math.Abs(obs[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// pearson is the Pearson correlation coefficient of the two series.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx < epsilon || syy < epsilon {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MixIndices maps mix names to their index in workload.Mixes().
func MixIndices() map[string]int {
	idx := make(map[string]int)
	for i, m := range workload.Mixes() {
		idx[m.Name] = i
	}
	return idx
}

func mixNames() []string {
	mixes := workload.Mixes()
	names := make([]string, len(mixes))
	for i, m := range mixes {
		names[i] = m.Name
	}
	return names
}
