// Package twin is an analytical model — a "digital twin" — of the
// simulated SMT pipeline. Where the full simulator walks every cycle
// (~milliseconds per configuration), the twin composes a calibrated
// per-workload signature with closed-form queueing corrections and predicts
// IPC, mean issue-queue occupancy, IQ AVF and ROB AVF in well under a
// microsecond, with zero allocation on the evaluation path.
//
// The model is deliberately a *calibrated surrogate*, in the spirit of
// Carroll & Lin's queuing model for functional-unit and issue-queue
// configuration: per-(mix, thread-count) base signatures are measured once
// from the simulator on the reference (Table 2) machine, and analytic
// scaling laws — finite-buffer IQ occupancy, function-unit capability
// bounds, per-scheme/per-policy correction factors, and a DVM feedback
// clamp — extrapolate those signatures across the design space. Fit
// derives every coefficient from simulator observations; Calibrate
// measures how well the result tracks the simulator (MAPE and Pearson r
// per metric) so the twin's accuracy is itself a regression-tested
// artifact (see testdata/golden/twin and DESIGN.md §11).
//
// The intended workflow is screen-then-verify: internal/explore screens
// millions of configurations through Evaluate, keeps only the Pareto
// frontier over (IPC, IQ AVF, area), and hands that frontier to the full
// simulator for verification. The twin ranks and prunes; the simulator
// decides.
package twin

import (
	"fmt"
	"math"

	"visasim/internal/core"
	"visasim/internal/iqorg"
	"visasim/internal/isa"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// MaxThreads is the largest thread count the twin models (the Table 3
// mixes co-schedule four threads; prefixes model 1..4).
const MaxThreads = 4

// NumMixes is the number of Table 3 workload mixes the twin carries
// signatures for.
var NumMixes = len(workload.Mixes())

// Input selects one point of the design space. It is a compact value type:
// the explorer generates billions of them without touching the heap, and
// ConfigFor materialises a full core.Config only for the handful of points
// that survive screening.
type Input struct {
	// Mix indexes workload.Mixes(); Threads co-schedules the first
	// Threads benchmarks of that mix (1..MaxThreads).
	Mix     int
	Threads int

	Scheme core.Scheme
	Policy pipeline.FetchPolicyKind

	// IQSize is the shared issue-queue capacity (entries).
	IQSize int
	// DVMFrac expresses the DVM reliability target as a fraction of the
	// base machine's MaxIQAVF for this (mix, threads) — the paper's
	// convention. It must be 0 unless Scheme is core.SchemeDVM.
	DVMFrac float64
	// FU is the function-unit pool mix, indexed by isa.FUClass.
	FU [5]int

	// Org selects the issue-queue organization and Prot its protection
	// mode. The zero values — unified AGE, unprotected — are the Table 2
	// machine, so inputs predating these axes keep their meaning.
	Org  iqorg.Kind
	Prot iqorg.Protection
}

// Prediction is the twin's estimate for one Input.
type Prediction struct {
	IPC    float64 // throughput IPC
	IQOcc  float64 // mean issue-queue occupancy (entries)
	IQAVF  float64 // issue-queue architectural vulnerability factor
	ROBAVF float64 // reorder-buffer AVF

	// DVMTarget is the absolute AVF target implied by Input.DVMFrac
	// (zero for non-DVM schemes); ConfigFor uses it so verification
	// simulates exactly the machine the twin predicted.
	DVMTarget float64

	// Area is the area proxy the explorer trades against IPC and AVF
	// (see AreaProxy).
	Area float64
}

// Signature is the measured behaviour of one (mix, thread-count) workload
// on the reference machine: base scheme, ICOUNT fetch, Table 2 geometry.
// Everything else the twin predicts is a correction applied to these.
type Signature struct {
	IPC      float64 // throughput IPC
	IQOcc    float64 // mean IQ occupancy (entries)
	IQAVF    float64 // whole-run IQ AVF
	ROBAVF   float64 // whole-run ROB AVF
	MaxIQAVF float64 // peak 10K-cycle interval IQ AVF (DVM's reference)
	ReadyLen float64 // mean ready-queue depth

	// Share is the estimated fraction of issued instructions per
	// function-unit class (static, from the mix's program parameters;
	// control instructions execute on the integer ALUs).
	Share [5]float64

	// Cat is the workload category of this prefix (0 CPU, 1 MIX, 2 MEM),
	// derived from the benchmarks' resource classes.
	Cat int
}

// Factors are the multiplicative corrections one scheme or fetch policy
// applies to the base prediction, fitted per workload category.
//
// Dens scales ACE density — AVF per occupied IQ entry — which is how VISA
// issue priority shows up: the same occupancy holds its vulnerable bits
// for less time.
type Factors struct {
	IPC  float64
	Dens float64
	Occ  float64
	ROB  float64
}

func unitFactors() Factors { return Factors{IPC: 1, Dens: 1, Occ: 1, ROB: 1} }

// IQCoeffs shape the finite-buffer issue-queue response (§11.2 of
// DESIGN.md): occupancy demand saturates against Fill·IQSize with
// smooth-min sharpness Q, IPC degrades as (occ/demand)^EIPC when the queue
// clamps, and queues larger than the reference recover Grow of the
// clamped demand.
type IQCoeffs struct {
	Fill    float64 // usable fraction of the queue before dispatch stalls
	Q       float64 // smooth-min sharpness
	EIPC    float64 // IPC sensitivity to occupancy clamping
	Grow    float64 // IPC recovery per e-fold of extra queue beyond reference
	GrowOcc float64 // occupancy growth coupled to the IPC recovery
}

// FUCoeffs shape the function-unit capability bound: a class with share s
// and U units caps IPC near Headroom·U/s; P is the smooth-min sharpness
// and OccK converts lost throughput into extra queue occupancy (blocked
// instructions wait somewhere).
type FUCoeffs struct {
	Headroom float64
	P        float64
	OccK     float64
}

// DVMCoeffs shape the closed-loop clamp: when the open-loop AVF exceeds
// the target T, the controller lands at Overshoot·T and pays
// Pen·(1-T/AVF)^EPen of IPC; occupancy and ROB AVF move with OccPen and
// ROBPen.
type DVMCoeffs struct {
	Overshoot float64
	Pen       float64
	EPen      float64
	OccPen    float64
	ROBPen    float64
}

// Model is the complete calibrated twin: per-(mix, threads) signatures
// plus the fitted coefficient blocks. Models are produced by Fit, shipped
// as the embedded model.json (Default), and pinned by the golden
// calibration test.
type Model struct {
	// Version guards the serialised form.
	Version int
	// Budget is the committed-instruction budget the signatures were
	// measured at; calibration and verification use the same budget so
	// transient effects cancel.
	Budget uint64
	// RefIQ and RefFU are the reference geometry the signatures were
	// measured on (Table 2: 96 entries; 8/4/4/8/4 units).
	RefIQ int
	RefFU [5]int

	// Base holds the measured signatures, indexed [mix][threads-1].
	Base [][]Signature

	// SchemeF and PolicyF are the per-category correction factors,
	// indexed [scheme][category] and [policy][category]. The base
	// scheme and ICOUNT rows are identity; the DVM rows stay identity
	// because the feedback clamp below models the controller instead.
	SchemeF [][]Factors
	PolicyF [][]Factors

	// OrgF are the issue-queue organization factors, indexed
	// [iqorg.Kind][category]; the unified-AGE row is identity. ProtF are
	// the protection-mode *residual* factors, [iqorg.Protection][category]:
	// the mitigation itself is applied analytically from the iqorg cost
	// table, so these carry only what the table cannot — chiefly ECC's
	// wakeup-tax IPC cost.
	OrgF  [][]Factors
	ProtF [][]Factors

	IQ  IQCoeffs
	FU  FUCoeffs
	DVM DVMCoeffs
}

// Valid reports whether in addresses a point this model can evaluate.
// Evaluate assumes a valid input; the explorer validates its Space once
// rather than per point.
func (m *Model) Valid(in *Input) error {
	switch {
	case in.Mix < 0 || in.Mix >= len(m.Base):
		return fmt.Errorf("twin: mix index %d outside model's %d mixes", in.Mix, len(m.Base))
	case in.Threads < 1 || in.Threads > len(m.Base[in.Mix]):
		return fmt.Errorf("twin: %d threads outside 1..%d", in.Threads, len(m.Base[in.Mix]))
	case int(in.Scheme) >= len(m.SchemeF):
		return fmt.Errorf("twin: scheme %v outside model", in.Scheme)
	case in.Scheme == core.SchemeDVMStatic:
		return fmt.Errorf("twin: scheme %v is outside the twin's scope (see DESIGN.md §11)", in.Scheme)
	case int(in.Policy) >= len(m.PolicyF):
		return fmt.Errorf("twin: policy %v outside model", in.Policy)
	case int(in.Org) >= len(m.OrgF):
		return fmt.Errorf("twin: IQ organization %v outside model", in.Org)
	case int(in.Prot) >= len(m.ProtF):
		return fmt.Errorf("twin: IQ protection %v outside model", in.Prot)
	case in.IQSize < 8:
		return fmt.Errorf("twin: IQ size %d below the modelled minimum 8", in.IQSize)
	case in.Scheme == core.SchemeDVM && (in.DVMFrac <= 0 || in.DVMFrac > 1):
		return fmt.Errorf("twin: DVM fraction %v outside (0,1]", in.DVMFrac)
	case in.Scheme != core.SchemeDVM && in.DVMFrac != 0:
		return fmt.Errorf("twin: DVM fraction set on non-DVM scheme %v", in.Scheme)
	case in.FU[isa.FUIntALU] < 1 || in.FU[isa.FULoadStore] < 1:
		return fmt.Errorf("twin: need at least one int ALU and one load/store unit")
	case in.FU[isa.FUIntMulDiv] < 0 || in.FU[isa.FUFPALU] < 0 || in.FU[isa.FUFPMulDiv] < 0:
		return fmt.Errorf("twin: negative function-unit count")
	}
	return nil
}

// smoothMin blends min(a, b) with sharpness p: exact min as p→∞, softer
// shoulders for finite p so fitted responses stay differentiable across
// the capability boundary. a, b must be positive.
func smoothMin(a, b, p float64) float64 {
	// Harmonic-power mean: (a^-p + b^-p)^(-1/p).
	ra := math.Pow(a, -p)
	rb := math.Pow(b, -p)
	return math.Pow(ra+rb, -1/p)
}

// capability is the IPC the function-unit pools can sustain for this
// workload: the binding class's Headroom·units/share.
func (m *Model) capability(sig *Signature, fu *[5]int) float64 {
	bound := math.Inf(1)
	for c := 0; c < len(fu); c++ {
		s := sig.Share[c]
		if s < epsilon {
			continue
		}
		u := float64(fu[c])
		if u < epsilon {
			u = epsilon
		}
		if b := m.FU.Headroom * u / s; b < bound {
			bound = b
		}
	}
	return bound
}

const epsilon = 1e-9

// Evaluate predicts one design point. It is the explorer's hot path:
// no allocation, no locks, ~hundreds of nanoseconds per call. The input
// must satisfy Valid; out is fully overwritten.
func (m *Model) Evaluate(in *Input, out *Prediction) {
	sig := &m.Base[in.Mix][in.Threads-1]
	cat := sig.Cat

	ipc := sig.IPC
	occ := sig.IQOcc
	rob := sig.ROBAVF
	// ACE density: AVF per occupied-entry fraction on the reference
	// queue. AVF recomposes as dens·occ/size, which is what makes the
	// prediction respond to IQ resizing: occupancy clamps sublinearly,
	// so smaller queues concentrate vulnerability.
	dens := sig.IQAVF * float64(m.RefIQ) / math.Max(sig.IQOcc, epsilon)

	// Function-unit capability bound, expressed relative to the
	// reference pools so the base point reproduces its signature
	// exactly. Each class supports at most Headroom·units/share IPC;
	// the binding class caps throughput and the lost throughput queues
	// up as extra occupancy.
	capNew := m.capability(sig, &in.FU)
	capRef := m.capability(sig, &m.RefFU)
	fuFac := smoothMin(ipc, capNew, m.FU.P) / smoothMin(ipc, capRef, m.FU.P)
	ipc *= fuFac
	if fuFac < 1 {
		occ *= 1 + m.FU.OccK*(1/fuFac-1)
	}

	// Finite-buffer issue queue, again relative to the reference
	// geometry: demand is the occupancy the workload held on the
	// reference queue, and the realised occupancy saturates against the
	// usable capacity Fill·size. IPC follows the clamped fraction, and
	// queues beyond the reference recover a fitted share of whatever the
	// reference itself was clipping.
	size := float64(in.IQSize)
	ref := float64(m.RefIQ)
	demand := occ
	occFac := smoothMin(demand, m.IQ.Fill*size, m.IQ.Q) /
		smoothMin(demand, m.IQ.Fill*ref, m.IQ.Q)
	ipc *= math.Pow(occFac, m.IQ.EIPC)
	if size > ref {
		sat := demand / (m.IQ.Fill * ref)
		if sat > 1 {
			sat = 1
		}
		g := m.IQ.Grow * (1 - math.Exp(-(size-ref)/ref)) * sat * sat
		ipc *= 1 + g
		occFac *= 1 + m.IQ.GrowOcc*g
	}
	occ = demand * occFac

	// Fetch-policy and scheme corrections (fitted per category).
	pf := &m.PolicyF[in.Policy][cat]
	ipc *= pf.IPC
	dens *= pf.Dens
	occ *= pf.Occ
	rob *= pf.ROB
	sf := &m.SchemeF[in.Scheme][cat]
	ipc *= sf.IPC
	dens *= sf.Dens
	occ *= sf.Occ
	rob *= sf.ROB

	// Issue-queue organization and protection residuals, fitted like the
	// scheme rows. Protection's mitigation is then analytic — straight from
	// the iqorg cost table — applied to IQ AVF only, *before* the DVM clamp
	// below, because the simulator's controller also throttles on the
	// residual (post-mitigation) vulnerability.
	of := &m.OrgF[in.Org][cat]
	ipc *= of.IPC
	dens *= of.Dens
	occ *= of.Occ
	rob *= of.ROB
	pr := &m.ProtF[in.Prot][cat]
	ipc *= pr.IPC
	dens *= pr.Dens
	occ *= pr.Occ
	rob *= pr.ROB

	if occ > size {
		occ = size
	}
	iqavf := dens * occ / size
	if s := in.Prot.AVFScale(); s != 1 {
		iqavf *= s
	}

	out.DVMTarget = 0
	if in.Scheme == core.SchemeDVM {
		target := in.DVMFrac * sig.MaxIQAVF
		out.DVMTarget = target
		if iqavf > target && iqavf > epsilon {
			over := 1 - target/iqavf
			iqavf = target * m.DVM.Overshoot
			ipc *= 1 - m.DVM.Pen*math.Pow(over, m.DVM.EPen)
			occ *= 1 - m.DVM.OccPen*over
			rob *= 1 - m.DVM.ROBPen*over
		}
	}

	if iqavf < 0 {
		iqavf = 0
	}
	if iqavf > 1 {
		iqavf = 1
	}
	if rob < 0 {
		rob = 0
	}
	if rob > 1 {
		rob = 1
	}

	out.IPC = ipc
	out.IQOcc = occ
	out.IQAVF = iqavf
	out.ROBAVF = rob
	out.Area = AreaProxy(in.IQSize, in.Threads, &in.FU) + in.Prot.AreaCost(in.IQSize)
}

// AreaProxy is the relative silicon cost the explorer trades against IPC
// and AVF. The weights are deliberately coarse — CAM-heavy IQ entries cost
// ~4 units each, function units 8–24 by complexity, plus a fixed per-thread
// ROB/LSQ overhead — because the proxy only has to order designs, not
// price them (DESIGN.md §11.4).
func AreaProxy(iqSize, threads int, fu *[5]int) float64 {
	var fuWeights = [5]float64{8, 16, 12, 12, 24}
	area := 4 * float64(iqSize)
	for c := 0; c < len(fu); c++ {
		area += fuWeights[c] * float64(fu[c])
	}
	area += 64 * float64(threads)
	return area
}

// ConfigFor materialises the core.Config a design point verifies as: the
// Table 2 machine with the point's IQ size and function-unit mix, the
// mix's first Threads benchmarks, and — for DVM — the absolute reliability
// target the twin's signature implies. The budget is the model's
// calibration budget, so twin and simulator are compared like for like.
func (m *Model) ConfigFor(in *Input) (core.Config, error) {
	if err := m.Valid(in); err != nil {
		return core.Config{}, err
	}
	var target float64
	if in.Scheme == core.SchemeDVM {
		target = in.DVMFrac * m.Base[in.Mix][in.Threads-1].MaxIQAVF
	}
	return in.ConfigWith(m.Budget, target)
}

// ConfigWith materialises the design point's core.Config with an explicit
// budget and absolute DVM target (0 for non-DVM schemes). Fit uses it
// before any model exists — the DVM target then comes straight from the
// base cell's measured MaxIQAVF.
func (in *Input) ConfigWith(budget uint64, dvmTarget float64) (core.Config, error) {
	mixes := workload.Mixes()
	if in.Mix < 0 || in.Mix >= len(mixes) {
		return core.Config{}, fmt.Errorf("twin: mix index %d outside 0..%d", in.Mix, len(mixes)-1)
	}
	if in.Threads < 1 || in.Threads > MaxThreads {
		return core.Config{}, fmt.Errorf("twin: %d threads outside 1..%d", in.Threads, MaxThreads)
	}
	mix := mixes[in.Mix]
	mach := configForFU(in.IQSize, &in.FU)
	mach.IQOrg = in.Org.String()
	mach.IQProtection = in.Prot.String()
	cfg := core.Config{
		Machine:         &mach,
		Benchmarks:      append([]string(nil), mix.Benchmarks[:in.Threads]...),
		Scheme:          in.Scheme,
		Policy:          in.Policy,
		MaxInstructions: budget,
		DVMTarget:       dvmTarget,
	}
	return cfg, nil
}
