package twin

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"visasim/internal/core"
	"visasim/internal/harness"
	"visasim/internal/pipeline"
)

// -update refits the model against fresh simulator measurements and
// rewrites both golden artifacts: the embedded model (model.json, this
// package) and the calibration report (testdata/golden/twin).
var update = flag.Bool("update", false, "refit the twin model and regenerate golden calibration artifacts")

const goldenReportPath = "../../testdata/golden/twin/calibration.json"

// measureSample runs the pinned sample through the real simulator. DVM
// cells need an absolute reliability target derived from the base
// machine's MaxIQAVF, so measurement is two-phase: every non-DVM cell
// first (which includes all base cells), then the DVM cells with targets
// taken from the matching base observations.
func measureSample(t *testing.T, sample []CalCell) map[string]Observed {
	t.Helper()
	var phase1, phase2 []CalCell
	for _, cc := range sample {
		if cc.In.Scheme == core.SchemeDVM {
			phase2 = append(phase2, cc)
		} else {
			phase1 = append(phase1, cc)
		}
	}
	observed := make(map[string]Observed, len(sample))
	run := func(cells []harness.Cell) {
		t.Helper()
		results, err := harness.Run(cells, harness.Options{})
		if err != nil {
			t.Fatalf("measuring sample: %v", err)
		}
		for key, res := range results {
			observed[key] = ObservedFrom(res)
		}
	}
	cells1 := make([]harness.Cell, 0, len(phase1))
	for _, cc := range phase1 {
		cfg, err := cc.In.ConfigWith(PinnedBudget, 0)
		if err != nil {
			t.Fatalf("cell %s: %v", cc.Key, err)
		}
		cells1 = append(cells1, harness.Cell{Key: cc.Key, Cfg: cfg})
	}
	run(cells1)

	cells2 := make([]harness.Cell, 0, len(phase2))
	for _, cc := range phase2 {
		baseKey := fmt.Sprintf("twin/base/%s/t%d", mixNames()[cc.In.Mix], cc.In.Threads)
		base, ok := observed[baseKey]
		if !ok {
			t.Fatalf("cell %s: no base observation %s for its DVM target", cc.Key, baseKey)
		}
		cfg, err := cc.In.ConfigWith(PinnedBudget, cc.In.DVMFrac*base.MaxIQAVF)
		if err != nil {
			t.Fatalf("cell %s: %v", cc.Key, err)
		}
		cells2 = append(cells2, harness.Cell{Key: cc.Key, Cfg: cfg})
	}
	run(cells2)
	return observed
}

// TestGoldenCalibration is the twin's regression contract: the shipped
// model, evaluated against a live simulator run of the pinned sample,
// must stay within the accuracy floors and must match the golden
// calibration report. With -update it refits and rewrites both artifacts.
func TestGoldenCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("live simulator calibration skipped in -short mode")
	}
	sample := PinnedSample()

	if *update {
		observed := measureSample(t, sample)
		model, err := Fit(sample, observed)
		if err != nil {
			t.Fatalf("fit: %v", err)
		}
		report, err := CalibrateAgainst(model, sample, observed)
		if err != nil {
			t.Fatalf("calibrate: %v", err)
		}
		if err := report.Check(); err != nil {
			t.Fatalf("refitted model violates its own floors: %v", err)
		}
		blob, err := MarshalModel(model)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("model.json", blob, 0o644); err != nil {
			t.Fatal(err)
		}
		rblob, err := MarshalReport(report)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenReportPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReportPath, rblob, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, m := range report.Metrics {
			t.Logf("refit: %-8s MAPE %5.2f%%  Pearson r %.4f", m.Name, 100*m.MAPE, m.Pearson)
		}
		return
	}

	model, err := Default()
	if err != nil {
		t.Fatalf("loading embedded model: %v", err)
	}
	report, err := Calibrate(model, sample, nil, 0)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	for _, m := range report.Metrics {
		t.Logf("%-8s MAPE %5.2f%%  Pearson r %.4f", m.Name, 100*m.MAPE, m.Pearson)
	}
	if err := report.Check(); err != nil {
		t.Errorf("accuracy floors: %v", err)
	}

	goldenBlob, err := os.ReadFile(goldenReportPath)
	if err != nil {
		t.Fatalf("reading golden report (run with -update to create): %v", err)
	}
	golden, err := UnmarshalReport(goldenBlob)
	if err != nil {
		t.Fatal(err)
	}
	if golden.Model != report.Model || golden.Budget != report.Budget {
		t.Fatalf("golden report is for model v%d budget %d, live is v%d budget %d",
			golden.Model, golden.Budget, report.Model, report.Budget)
	}
	if len(golden.Cells) != len(report.Cells) {
		t.Fatalf("golden report has %d cells, live has %d", len(golden.Cells), len(report.Cells))
	}
	// The simulator and the twin are both deterministic, so live and
	// golden must agree to float round-off; the tolerance only shields
	// against cross-platform libm differences.
	const tol = 1e-9
	for i := range golden.Cells {
		g, l := &golden.Cells[i], &report.Cells[i]
		if g.Key != l.Key {
			t.Fatalf("cell %d: golden key %s, live key %s", i, g.Key, l.Key)
		}
		checkClose(t, g.Key+" obs ipc", g.Obs.IPC, l.Obs.IPC, tol)
		checkClose(t, g.Key+" obs iq-avf", g.Obs.IQAVF, l.Obs.IQAVF, tol)
		checkClose(t, g.Key+" pred ipc", g.Pred.IPC, l.Pred.IPC, tol)
		checkClose(t, g.Key+" pred iq-avf", g.Pred.IQAVF, l.Pred.IQAVF, tol)
	}
	for _, gm := range golden.Metrics {
		lm := report.Metric(gm.Name)
		checkClose(t, gm.Name+" MAPE", gm.MAPE, lm.MAPE, tol)
		checkClose(t, gm.Name+" Pearson", gm.Pearson, lm.Pearson, tol)
	}
}

func checkClose(t *testing.T, what string, want, got, tol float64) {
	t.Helper()
	if math.Abs(want-got) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s: golden %v, live %v", what, want, got)
	}
}

// TestCalibrationDrift proves the harness can catch a regression: with
// one perturbed coefficient, the same golden observations must trip the
// MAPE floors. No simulation runs — the observations come from the golden
// artifact.
func TestCalibrationDrift(t *testing.T) {
	model, golden := loadGolden(t)
	sample := PinnedSample()
	observed := golden.ObservedByKey()

	// Control: the unperturbed model passes against the same data.
	report, err := CalibrateAgainst(model, sample, observed)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Check(); err != nil {
		t.Fatalf("unperturbed model fails its floors: %v", err)
	}

	// Perturb exactly one coefficient: a broken DVM overshoot predicts
	// clamped AVFs several times above what the controller delivers.
	blob, err := MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	perturbed.DVM.Overshoot = 5
	report, err = CalibrateAgainst(perturbed, sample, observed)
	if err != nil {
		t.Fatal(err)
	}
	err = report.Check()
	if err == nil {
		t.Fatal("perturbed model passed the calibration floors; the harness cannot catch drift")
	}
	if !strings.Contains(err.Error(), "iq-avf MAPE") {
		t.Errorf("expected an iq-avf MAPE violation, got: %v", err)
	}
}

func loadGolden(t *testing.T) (*Model, *Report) {
	t.Helper()
	model, err := Default()
	if err != nil {
		t.Fatalf("loading embedded model: %v", err)
	}
	blob, err := os.ReadFile(goldenReportPath)
	if err != nil {
		t.Fatalf("reading golden report (run with -update to create): %v", err)
	}
	golden, err := UnmarshalReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	return model, golden
}

// TestEvaluateIdentityAtBase pins the model's structural property that
// makes calibration meaningful: at the reference geometry, base scheme and
// ICOUNT, the prediction reproduces the measured signature exactly.
func TestEvaluateIdentityAtBase(t *testing.T) {
	model, _ := loadGolden(t)
	refFU := RefFU()
	var pred Prediction
	for mi := range model.Base {
		for ti := range model.Base[mi] {
			sig := model.Base[mi][ti]
			in := Input{Mix: mi, Threads: ti + 1, Scheme: core.SchemeBase,
				Policy: pipeline.PolicyICOUNT, IQSize: model.RefIQ, FU: refFU}
			model.Evaluate(&in, &pred)
			const tol = 1e-9
			checkClose(t, fmt.Sprintf("mix %d t%d ipc", mi, ti+1), sig.IPC, pred.IPC, tol)
			checkClose(t, fmt.Sprintf("mix %d t%d occ", mi, ti+1), sig.IQOcc, pred.IQOcc, tol)
			checkClose(t, fmt.Sprintf("mix %d t%d iq-avf", mi, ti+1), sig.IQAVF, pred.IQAVF, tol)
			checkClose(t, fmt.Sprintf("mix %d t%d rob-avf", mi, ti+1), sig.ROBAVF, pred.ROBAVF, tol)
		}
	}
}

// TestEvaluateZeroAlloc pins the hot-path property the explorer depends
// on: screening a design point allocates nothing.
func TestEvaluateZeroAlloc(t *testing.T) {
	model, _ := loadGolden(t)
	in := Input{Mix: 3, Threads: 4, Scheme: core.SchemeDVM, Policy: pipeline.PolicyFLUSH,
		IQSize: 64, DVMFrac: 0.5, FU: RefFU()}
	if err := model.Valid(&in); err != nil {
		t.Fatal(err)
	}
	var pred Prediction
	allocs := testing.AllocsPerRun(1000, func() {
		model.Evaluate(&in, &pred)
	})
	if allocs != 0 {
		t.Fatalf("Evaluate allocates %.1f objects per call; the screening path must be allocation-free", allocs)
	}
}

func TestValidRejects(t *testing.T) {
	model, _ := loadGolden(t)
	ok := Input{Mix: 0, Threads: 4, Scheme: core.SchemeVISA,
		Policy: pipeline.PolicyICOUNT, IQSize: 96, FU: RefFU()}
	if err := model.Valid(&ok); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	cases := map[string]func(*Input){
		"mix-low":         func(in *Input) { in.Mix = -1 },
		"mix-high":        func(in *Input) { in.Mix = len(model.Base) },
		"threads-low":     func(in *Input) { in.Threads = 0 },
		"threads-high":    func(in *Input) { in.Threads = MaxThreads + 1 },
		"dvm-static":      func(in *Input) { in.Scheme = core.SchemeDVMStatic },
		"iq-small":        func(in *Input) { in.IQSize = 4 },
		"dvm-no-frac":     func(in *Input) { in.Scheme = core.SchemeDVM },
		"frac-without":    func(in *Input) { in.DVMFrac = 0.5 },
		"frac-over-one":   func(in *Input) { in.Scheme = core.SchemeDVM; in.DVMFrac = 1.5 },
		"no-int-alu":      func(in *Input) { in.FU[0] = 0 },
		"no-load-store":   func(in *Input) { in.FU[2] = 0 },
		"negative-fp-alu": func(in *Input) { in.FU[3] = -1 },
	}
	for name, mod := range cases {
		in := ok
		mod(&in)
		if err := model.Valid(&in); err == nil {
			t.Errorf("%s: invalid input accepted: %+v", name, in)
		}
	}
}

func TestModelRoundTrip(t *testing.T) {
	model, _ := loadGolden(t)
	blob, err := MarshalModel(model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := MarshalModel(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("model does not round-trip byte-identically through JSON")
	}
}

func TestPinnedSampleWellFormed(t *testing.T) {
	sample := PinnedSample()
	if len(sample) < 80 {
		t.Fatalf("pinned sample has only %d cells", len(sample))
	}
	seen := map[string]bool{}
	for _, cc := range sample {
		if seen[cc.Key] {
			t.Fatalf("duplicate sample key %s", cc.Key)
		}
		seen[cc.Key] = true
	}
	model, _ := loadGolden(t)
	cells, err := model.CellsFor(sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := harness.ValidateKeys(cells); err != nil {
		t.Fatal(err)
	}
	// Every cell's config must be one the simulator accepts.
	for _, c := range cells {
		if err := c.Cfg.Machine.Validate(); err != nil {
			t.Errorf("cell %s: invalid machine: %v", c.Key, err)
		}
	}
}
