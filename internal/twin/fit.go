package twin

import (
	"fmt"
	"math"
	"strings"

	"visasim/internal/core"
	"visasim/internal/iqorg"
	"visasim/internal/pipeline"
	"visasim/internal/workload"
)

// Fit derives a complete Model from simulator observations of the pinned
// sample (or any sample with the same key structure):
//
//  1. base/ cells become the per-(mix, threads) signatures, measured
//     directly;
//  2. fu/ and iq/ cells fit the function-unit and finite-buffer
//     coefficients by deterministic grid search;
//  3. policy/ and scheme/ cells fit the per-category correction factors
//     as geometric-mean ratios of observed over predicted;
//  4. dvm/ cells fit the feedback-clamp coefficients by grid search.
//
// composed/ cells are deliberately ignored: they exist so the calibration
// report always contains points the fit never saw.
//
// Everything is deterministic — fixed iteration order, strict-improvement
// grid search — so refitting against the same observations reproduces the
// model byte-identically.
func Fit(sample []CalCell, observed map[string]Observed) (*Model, error) {
	m := &Model{
		Version: modelVersion,
		Budget:  PinnedBudget,
		RefIQ:   refIQSize,
		RefFU:   RefFU(),
		// Neutral starting coefficients; the grid searches below move
		// them. Q and P (smooth-min sharpness) and EPen stay fixed:
		// they trade against the other coefficients almost perfectly,
		// so fitting them only adds degrees of freedom.
		IQ:  IQCoeffs{Fill: 0.9, Q: 6, EIPC: 0.5, Grow: 0, GrowOcc: 0},
		FU:  FUCoeffs{Headroom: 0.9, P: 4, OccK: 0.5},
		DVM: DVMCoeffs{Overshoot: 0.9, Pen: 0.3, EPen: 1, OccPen: 0.3, ROBPen: 0},
	}
	mixes := workload.Mixes()
	m.Base = make([][]Signature, len(mixes))
	for i := range m.Base {
		m.Base[i] = make([]Signature, MaxThreads)
	}
	m.SchemeF = identityFactors(core.NumSchemes)
	m.PolicyF = identityFactors(pipeline.NumPolicies)
	m.OrgF = identityFactors(int(iqorg.NumKinds))
	m.ProtF = identityFactors(iqorg.NumProtections)

	// Group the sample by key family.
	groups := map[string][]CalCell{}
	for _, cc := range sample {
		parts := strings.SplitN(strings.TrimPrefix(cc.Key, "twin/"), "/", 2)
		groups[parts[0]] = append(groups[parts[0]], cc)
	}
	obsFor := func(cc CalCell) (Observed, error) {
		o, ok := observed[cc.Key]
		if !ok {
			return Observed{}, fmt.Errorf("twin: fit: no observation for %s", cc.Key)
		}
		return o, nil
	}

	// 1. Signatures.
	seen := make(map[[2]int]bool)
	for _, cc := range groups["base"] {
		o, err := obsFor(cc)
		if err != nil {
			return nil, err
		}
		mix := mixes[cc.In.Mix]
		cat, err := prefixCategory(mix, cc.In.Threads)
		if err != nil {
			return nil, err
		}
		share, err := prefixShares(mix, cc.In.Threads)
		if err != nil {
			return nil, err
		}
		m.Base[cc.In.Mix][cc.In.Threads-1] = Signature{
			IPC: o.IPC, IQOcc: o.IQOcc, IQAVF: o.IQAVF, ROBAVF: o.ROBAVF,
			MaxIQAVF: o.MaxIQAVF, ReadyLen: o.ReadyLen,
			Share: share, Cat: cat,
		}
		seen[[2]int{cc.In.Mix, cc.In.Threads}] = true
	}
	for mi := range m.Base {
		for t := 1; t <= MaxThreads; t++ {
			if !seen[[2]int{mi, t}] {
				return nil, fmt.Errorf("twin: fit: sample has no base cell for mix %s at %d threads", mixes[mi].Name, t)
			}
		}
	}

	// 2. Function-unit coefficients, then issue-queue coefficients. The
	// groups are orthogonal (fu/ cells run the reference queue, iq/
	// cells the reference pools), so the order only matters for the
	// tiny smooth-min shoulder.
	if cells := groups["fu"]; len(cells) > 0 {
		if err := gridSearch(m, cells, observed, fuGrid); err != nil {
			return nil, err
		}
	}
	if cells := groups["iq"]; len(cells) > 0 {
		if err := gridSearch(m, cells, observed, iqGrid); err != nil {
			return nil, err
		}
	}

	// 3. Correction factors: observed/predicted ratios, geometric mean
	// per (policy|scheme, category).
	if err := fitFactors(m, groups["policy"], observed, func(in *Input) int { return int(in.Policy) }, m.PolicyF); err != nil {
		return nil, err
	}
	if err := fitFactors(m, groups["scheme"], observed, func(in *Input) int { return int(in.Scheme) }, m.SchemeF); err != nil {
		return nil, err
	}
	if err := fitFactors(m, groups["org"], observed, func(in *Input) int { return int(in.Org) }, m.OrgF); err != nil {
		return nil, err
	}
	// Protection rows fit against predictions that already apply the
	// analytic mitigation, so they converge near identity except where the
	// cost table is silent (ECC's wakeup-cycle IPC tax).
	if err := fitFactors(m, groups["prot"], observed, func(in *Input) int { return int(in.Prot) }, m.ProtF); err != nil {
		return nil, err
	}

	// 4. DVM feedback clamp.
	if cells := groups["dvm"]; len(cells) > 0 {
		if err := gridSearch(m, cells, observed, dvmGrid); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// refIQSize is the Table 2 issue-queue size the signatures are measured
// on.
const refIQSize = 96

func identityFactors(n int) [][]Factors {
	out := make([][]Factors, n)
	for i := range out {
		out[i] = []Factors{unitFactors(), unitFactors(), unitFactors()}
	}
	return out
}

// cellLoss is the squared relative error of the twin on one cell, summed
// over the metrics the coefficients under fit can move.
func cellLoss(m *Model, cc CalCell, o Observed) float64 {
	var p Prediction
	m.Evaluate(&cc.In, &p)
	loss := 0.0
	add := func(pred, obs float64) {
		if math.Abs(obs) < epsilon {
			return
		}
		e := (pred - obs) / obs
		loss += e * e
	}
	add(p.IPC, o.IPC)
	add(p.IQOcc, o.IQOcc)
	add(p.IQAVF, o.IQAVF)
	add(p.ROBAVF, o.ROBAVF)
	return loss
}

// gridDim is one coefficient axis of a grid search: where it lives in the
// model and the values to try.
type gridDim struct {
	set    func(*Model, float64)
	values []float64
}

// seq enumerates from..to inclusive in steps of by (endpoint included
// within a half-step tolerance).
func seq(from, to, by float64) []float64 {
	var out []float64
	for v := from; v <= to+by/2; v += by {
		out = append(out, v)
	}
	return out
}

var fuGrid = []gridDim{
	{func(m *Model, v float64) { m.FU.Headroom = v }, seq(0.4, 1.4, 0.02)},
	{func(m *Model, v float64) { m.FU.OccK = v }, seq(0, 2, 0.1)},
}

var iqGrid = []gridDim{
	{func(m *Model, v float64) { m.IQ.Fill = v }, seq(0.6, 1.0, 0.02)},
	{func(m *Model, v float64) { m.IQ.EIPC = v }, seq(0.1, 1.5, 0.05)},
	{func(m *Model, v float64) { m.IQ.Grow = v }, seq(0, 0.5, 0.025)},
	{func(m *Model, v float64) { m.IQ.GrowOcc = v }, seq(0, 2, 0.25)},
}

var dvmGrid = []gridDim{
	{func(m *Model, v float64) { m.DVM.Overshoot = v }, seq(0.4, 1.2, 0.025)},
	{func(m *Model, v float64) { m.DVM.Pen = v }, seq(0, 1, 0.05)},
	{func(m *Model, v float64) { m.DVM.OccPen = v }, seq(0, 1, 0.05)},
	{func(m *Model, v float64) { m.DVM.ROBPen = v }, seq(-0.5, 1, 0.05)},
}

// gridSearch exhaustively minimises the summed cell loss over the cross
// product of the dimensions' values, writing the best combination into m.
// Ties keep the first (lowest-index) combination, so the result is
// deterministic.
func gridSearch(m *Model, cells []CalCell, observed map[string]Observed, dims []gridDim) error {
	for _, cc := range cells {
		if _, ok := observed[cc.Key]; !ok {
			return fmt.Errorf("twin: fit: no observation for %s", cc.Key)
		}
	}
	best := math.Inf(1)
	bestIdx := make([]int, len(dims))
	idx := make([]int, len(dims))
	for {
		for d, i := range idx {
			dims[d].set(m, dims[d].values[i])
		}
		loss := 0.0
		for _, cc := range cells {
			loss += cellLoss(m, cc, observed[cc.Key])
		}
		if loss < best {
			best = loss
			copy(bestIdx, idx)
		}
		// Odometer increment.
		d := len(idx) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(dims[d].values) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	for d, i := range bestIdx {
		dims[d].set(m, dims[d].values[i])
	}
	return nil
}

// fitFactors computes per-(kind, category) correction factors as the
// geometric mean of observed/predicted ratios, with the target factor row
// held at identity while predicting.
func fitFactors(m *Model, cells []CalCell, observed map[string]Observed, kindOf func(*Input) int, out [][]Factors) error {
	type acc struct {
		logIPC, logDens, logOcc, logROB float64
		n                               int
	}
	accs := map[[2]int]*acc{}
	for _, cc := range cells {
		o, ok := observed[cc.Key]
		if !ok {
			return fmt.Errorf("twin: fit: no observation for %s", cc.Key)
		}
		var p Prediction
		m.Evaluate(&cc.In, &p)
		cat := m.Base[cc.In.Mix][cc.In.Threads-1].Cat
		k := [2]int{kindOf(&cc.In), cat}
		a := accs[k]
		if a == nil {
			a = &acc{}
			accs[k] = a
		}
		ratio := func(obs, pred float64) float64 {
			if pred < epsilon || obs < epsilon {
				return 1
			}
			return obs / pred
		}
		rOcc := ratio(o.IQOcc, p.IQOcc)
		a.logIPC += math.Log(ratio(o.IPC, p.IPC))
		a.logOcc += math.Log(rOcc)
		// AVF decomposes as dens·occ/size: attribute the occupancy
		// move to Occ and the remainder to Dens.
		a.logDens += math.Log(ratio(o.IQAVF, p.IQAVF) / rOcc)
		a.logROB += math.Log(ratio(o.ROBAVF, p.ROBAVF))
		a.n++
	}
	for k, a := range accs {
		n := float64(a.n)
		out[k[0]][k[1]] = Factors{
			IPC:  math.Exp(a.logIPC / n),
			Dens: math.Exp(a.logDens / n),
			Occ:  math.Exp(a.logOcc / n),
			ROB:  math.Exp(a.logROB / n),
		}
	}
	return nil
}
