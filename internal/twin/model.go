package twin

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"sync"
)

// modelVersion guards the serialised form; bump on any change to the
// model equations or the Model layout, and refit (go test ./internal/twin
// -run TestGoldenCalibration -update).
//
// v2 added the issue-queue organization and protection axes (OrgF/ProtF
// factor rows, analytic mitigation and protection area in Evaluate).
const modelVersion = 2

//go:embed model.json
var embeddedModel []byte

var (
	defaultOnce  sync.Once
	defaultModel *Model
	defaultErr   error
)

// Default returns the shipped calibrated model — the one the golden
// calibration artifacts under testdata/golden/twin were produced with.
// The returned model is shared; treat it as read-only.
func Default() (*Model, error) {
	defaultOnce.Do(func() {
		defaultModel, defaultErr = UnmarshalModel(embeddedModel)
	})
	return defaultModel, defaultErr
}

// MarshalModel serialises a model in the format UnmarshalModel accepts
// (indented JSON; encoding/json round-trips float64 exactly, so a model
// survives marshal→unmarshal byte-identically).
func MarshalModel(m *Model) ([]byte, error) {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// UnmarshalModel parses a serialised model, rejecting unknown fields and
// version mismatches.
func UnmarshalModel(data []byte) (*Model, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Model
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("twin: parsing model: %w", err)
	}
	if m.Version != modelVersion {
		return nil, fmt.Errorf("twin: model version %d, want %d (refit with -update)", m.Version, modelVersion)
	}
	if len(m.Base) == 0 {
		return nil, fmt.Errorf("twin: model has no signatures")
	}
	return &m, nil
}
