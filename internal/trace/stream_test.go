package trace

import (
	"testing"
	"testing/quick"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	if b.Len() != 130 {
		t.Fatalf("len %d", b.Len())
	}
	for _, i := range []uint64{0, 1, 63, 64, 65, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set initially", i)
		}
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := b.Count(130); got != 6 {
		t.Fatalf("count %d, want 6", got)
	}
	b.Set(63, false)
	if b.Get(63) || b.Count(130) != 5 {
		t.Fatal("clear failed")
	}
	if got := b.Count(64); got != 2 { // bits 0,1 set below 64
		t.Fatalf("partial count %d, want 2", got)
	}
}

func TestBitSetOutOfRangePanics(t *testing.T) {
	b := NewBitSet(8)
	for _, f := range []func(){
		func() { b.Get(8) },
		func() { b.Set(9, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

// Property: Count equals a naive recount after arbitrary set/clear actions.
func TestQuickBitSetCount(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 257
		b := NewBitSet(n)
		ref := make([]bool, n)
		for _, op := range ops {
			i := uint64(op) % n
			v := op&0x8000 == 0
			b.Set(i, v)
			ref[i] = v
		}
		want := uint64(0)
		for _, v := range ref {
			if v {
				want++
			}
		}
		return b.Count(n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamWindow(t *testing.T) {
	prog := testProgram(10)
	s := NewStream(NewExecutor(prog, 1, 0), nil)

	d0 := *s.At(0)
	if s.At(0).Seq != 0 || s.At(5).Seq != 5 {
		t.Fatal("positions do not match sequence numbers")
	}
	if *s.At(0) != d0 {
		t.Fatal("re-read changed the instruction")
	}
	s.Release(3)
	if s.At(3).Seq != 3 {
		t.Fatal("position 3 should still be readable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("reading a released position must panic")
			}
		}()
		s.At(2)
	}()
}

func TestStreamOverflowPanics(t *testing.T) {
	prog := testProgram(11)
	s := NewStream(NewExecutor(prog, 1, 0), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("window overflow must panic")
		}
	}()
	s.At(streamCap + 1) // never released: exceeds the ring
}

func TestStreamCarriesACEBits(t *testing.T) {
	prog := testProgram(12)
	ace := NewBitSet(100)
	ace.Set(4, true)
	ace.Set(7, true)
	s := NewStream(NewExecutor(prog, 1, 0), ace)
	for i := uint64(0); i < 100; i++ {
		want := i == 4 || i == 7
		if got := s.At(i).ACE; got != want {
			t.Fatalf("position %d ACE=%v want %v", i, got, want)
		}
		s.Release(i)
	}
	// Beyond the profiled prefix: defaults to un-ACE.
	if s.At(200).ACE {
		t.Fatal("unprofiled position marked ACE")
	}
}

func TestStreamMatchesExecutor(t *testing.T) {
	prog := testProgram(13)
	s := NewStream(NewExecutor(prog, 9, 0), nil)
	ref := NewExecutor(prog, 9, 0)
	var d DynInst
	for i := uint64(0); i < 5000; i++ {
		ref.Next(&d)
		got := *s.At(i)
		got.ACE = d.ACE // stream may default ACE; executor leaves false too
		if got != d {
			t.Fatalf("position %d: %+v vs %+v", i, got, d)
		}
		if i > 64 {
			s.Release(i - 64)
		}
	}
}
