package trace

import (
	"fmt"
	"math/bits"
)

// BitSet is a compact per-dynamic-instruction boolean store, used to carry
// ground-truth ACE-ness from the offline profiling pass into the timing
// simulation.
type BitSet struct {
	words []uint64
	n     uint64
}

// NewBitSet returns a bit set of length n.
func NewBitSet(n uint64) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *BitSet) Len() uint64 { return b.n }

// Set sets bit i to v.
func (b *BitSet) Set(i uint64, v bool) {
	if i >= b.n {
		panic(fmt.Sprintf("trace: BitSet.Set(%d) out of range %d", i, b.n))
	}
	if v {
		b.words[i/64] |= 1 << (i % 64)
	} else {
		b.words[i/64] &^= 1 << (i % 64)
	}
}

// Get returns bit i.
func (b *BitSet) Get(i uint64) bool {
	if i >= b.n {
		panic(fmt.Sprintf("trace: BitSet.Get(%d) out of range %d", i, b.n))
	}
	return b.words[i/64]&(1<<(i%64)) != 0
}

// Words exposes the backing words (for serialisation).
func (b *BitSet) Words() []uint64 { return b.words }

// NewBitSetFromWords reconstructs a bit set from serialised words.
func NewBitSetFromWords(words []uint64, n uint64) (*BitSet, error) {
	if uint64(len(words)) != (n+63)/64 {
		return nil, fmt.Errorf("trace: %d words cannot back %d bits", len(words), n)
	}
	return &BitSet{words: words, n: n}, nil
}

// Count returns the number of set bits in [0, upto).
func (b *BitSet) Count(upto uint64) uint64 {
	if upto > b.n {
		upto = b.n
	}
	var c uint64
	var i uint64
	for ; i+64 <= upto; i += 64 {
		c += uint64(bits.OnesCount64(b.words[i/64]))
	}
	for ; i < upto; i++ {
		if b.Get(i) {
			c++
		}
	}
	return c
}

// streamCap is the ring capacity of a Stream: it must exceed the maximum
// number of in-flight correct-path instructions per thread (fetch queue +
// ROB + slack). Power of two for cheap indexing.
const streamCap = 1024

// Stream is a sliding window over a thread's committed dynamic instruction
// stream. The pipeline's fetch unit addresses it by absolute position; the
// commit stage releases positions it will never need again. If the profiled
// ACE bit set is attached, each instruction carries its ground-truth
// ACE-ness.
type Stream struct {
	exec *Executor
	ace  *BitSet // may be nil (unprofiled run)

	buf  [streamCap]DynInst
	next uint64 // absolute index of the first ungenerated position
	low  uint64 // lowest position still addressable
}

// NewStream wraps exec. ace, if non-nil, supplies ground-truth ACE bits by
// sequence number; positions beyond its length default to un-ACE.
func NewStream(exec *Executor, ace *BitSet) *Stream {
	return &Stream{exec: exec, ace: ace}
}

// At returns the dynamic instruction at absolute position pos, generating
// forward as needed. Positions below the released low-water mark panic:
// that is a pipeline bookkeeping bug, not a recoverable condition.
func (s *Stream) At(pos uint64) *DynInst {
	if pos < s.low {
		panic(fmt.Sprintf("trace: Stream.At(%d) below released mark %d", pos, s.low))
	}
	for s.next <= pos {
		if s.next-s.low >= streamCap {
			panic(fmt.Sprintf("trace: Stream window overflow (low=%d next=%d); pipeline holds too many in-flight instructions", s.low, s.next))
		}
		d := &s.buf[s.next%streamCap]
		s.exec.Next(d)
		if s.ace != nil && d.Seq < s.ace.Len() {
			d.ACE = s.ace.Get(d.Seq)
		}
		s.next++
	}
	return &s.buf[pos%streamCap]
}

// Release marks all positions below pos as no longer needed.
func (s *Stream) Release(pos uint64) {
	if pos > s.low {
		s.low = pos
	}
}

// Executor exposes the underlying executor (for wrong-path address
// generation).
func (s *Stream) Executor() *Executor { return s.exec }
