// Package trace functionally executes a synthetic program (package program)
// into its committed-path dynamic instruction stream.
//
// The executor resolves control flow (loop trip counts, conditional
// outcomes, call/return) and effective addresses deterministically from the
// program's metadata and a seed, so the same (program, seed) pair always
// yields the same stream. The timing simulator replays this stream as its
// oracle for correct-path fetch, and the offline vulnerability profiler
// (package ace) runs over the same stream to compute ground-truth ACE-ness.
package trace

import (
	"visasim/internal/isa"
	"visasim/internal/program"
	"visasim/internal/rng"
)

// DynInst is one committed-path dynamic instruction.
type DynInst struct {
	Static *isa.Inst
	Seq    uint64 // commit-order index within the thread, starting at 0
	Addr   uint64 // effective address for loads/stores (8-byte aligned)
	Taken  bool   // actual outcome for control instructions
	NextPC uint64 // actual successor PC
	ACE    bool   // ground-truth ACE-ness, filled by the profiling pass
}

// Executor generates a program's committed dynamic stream one instruction at
// a time.
type Executor struct {
	Prog *program.Program

	pc  uint64
	seq uint64

	outcomes *rng.Source // conditional-branch outcome draws
	addrs    *rng.Source // random-access address draws
	wrong    *rng.Source // wrong-path address draws (separate stream so
	// speculative fetch cannot perturb the committed path)

	// branch holds per-static-branch loop state, indexed by
	// BranchPattern-1. remaining == -1 means "trip count not drawn".
	branch []loopState

	// cursor holds per-static-instruction sequential positions: each
	// load/store walks its region independently, so a store PC's data
	// is re-read (or not) by the load PCs sharing its region in a
	// consistent way across dynamic instances.
	cursor []uint64

	// ras is the functional return-address stack (unbounded; the
	// microarchitectural RAS in the pipeline is separately bounded).
	ras []uint64

	// addrTag is XORed into bits 40+ of every data address so that
	// co-scheduled threads occupy disjoint address spaces, as separate
	// processes on an SMT core do.
	addrTag uint64
}

type loopState struct {
	remaining int // back-edge takens left before exit; -1 = draw on entry
}

// NewExecutor returns an executor over prog. Streams from different seeds
// share the program's control structure but differ in conditional outcomes
// and random-access addresses. thread tags the address space.
func NewExecutor(prog *program.Program, seed uint64, thread int) *Executor {
	e := &Executor{
		Prog:     prog,
		pc:       program.CodeBase,
		outcomes: rng.New(rng.Hash64(seed, 0x6f75)),
		addrs:    rng.New(rng.Hash64(seed, 0x6164)),
		wrong:    rng.New(rng.Hash64(seed, 0x7770)),
		branch:   make([]loopState, len(prog.Branches)),
		cursor:   make([]uint64, prog.Len()),
		addrTag:  uint64(thread) << 40,
	}
	for i := range e.branch {
		e.branch[i].remaining = -1
	}
	return e
}

// Next fills out with the next committed instruction and advances the
// executor. The stream is unbounded (programs loop forever).
func (e *Executor) Next(out *DynInst) {
	in := e.Prog.At(e.pc)
	out.Static = in
	out.Seq = e.seq
	out.Addr = 0
	out.Taken = false
	out.ACE = false
	e.seq++

	next := in.FallThrough()
	switch in.Kind {
	case isa.Load, isa.Store:
		out.Addr = e.dataAddr(in)
	case isa.Branch:
		out.Taken = e.branchOutcome(in)
		if out.Taken {
			next = in.Target
		}
	case isa.Jump:
		out.Taken = true
		next = in.Target
	case isa.Call:
		out.Taken = true
		e.ras = append(e.ras, in.FallThrough())
		next = in.Target
	case isa.Return:
		out.Taken = true
		if n := len(e.ras); n > 0 {
			next = e.ras[n-1]
			e.ras = e.ras[:n-1]
		}
	}
	out.NextPC = next
	e.pc = next
}

func (e *Executor) branchOutcome(in *isa.Inst) bool {
	meta := e.Prog.Branch(in)
	if meta.Class == program.BranchLoop {
		st := &e.branch[in.BranchPattern-1]
		if st.remaining < 0 {
			// Entering the loop: draw this entry's trip count.
			st.remaining = e.outcomes.Geometric(meta.TripMean) - 1
		}
		if st.remaining > 0 {
			st.remaining--
			return true
		}
		st.remaining = -1 // exited; redraw on next entry
		return false
	}
	return e.outcomes.Bool(meta.TakenProb)
}

func (e *Executor) dataAddr(in *isa.Inst) uint64 {
	meta := e.Prog.Stream(in)
	cur := &e.cursor[e.Prog.IndexOf(in.PC)]
	var off uint64
	if e.addrs.Bool(meta.RandomFrac) {
		off = e.addrs.Uint64() & meta.Mask
	} else {
		off = (*cur * meta.Stride) & meta.Mask
		*cur++
	}
	return (meta.Base+off)&^7 ^ e.addrTag
}

// WrongPathAddr produces a plausible effective address for a wrong-path
// load/store at static instruction in, without disturbing the committed
// stream's cursors.
func (e *Executor) WrongPathAddr(in *isa.Inst) uint64 {
	meta := e.Prog.Stream(in)
	if meta == nil {
		return e.addrTag
	}
	off := e.wrong.Uint64() & meta.Mask
	return (meta.Base+off)&^7 ^ e.addrTag
}

// Seq returns the number of instructions generated so far.
func (e *Executor) Seq() uint64 { return e.seq }
