package trace

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/program"
)

func testProgram(seed uint64) *program.Program {
	return program.MustGenerate(program.Params{
		Name:          "trace-test",
		Seed:          seed,
		StaticInstrs:  600,
		Phases:        2,
		LoopsPerPhase: 2,
		LoopNestProb:  0.3,
		TripMean:      10,
		BlockLen:      6,
		IfProb:        0.4,
		IfBiasMean:    0.8,
		IfBiasSpread:  0.1,
		Routines:      2,
		CallProb:      0.6,
		Mix:           program.KindMix{IntALU: 0.5, Load: 0.25, Store: 0.12, Nop: 0.05},
		DepMean:       5,
		IndepFrac:     0.2,
		DeadFrac:      0.15,
		AccumFrac:     0.05,
		Mem: program.MemParams{
			LoadBufBytes: 512, OutBufBytes: 1 << 20, CommBufBytes: 512,
			TempFrac: 0.2, CommFrac: 0.3, StrideBytes: 8, RandomFrac: 0.05,
		},
	})
}

func TestExecutorDeterministic(t *testing.T) {
	prog := testProgram(1)
	a := NewExecutor(prog, 7, 0)
	b := NewExecutor(prog, 7, 0)
	var da, db DynInst
	for i := 0; i < 20000; i++ {
		a.Next(&da)
		b.Next(&db)
		if da != db {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, da, db)
		}
	}
}

func TestExecutorSequenceNumbers(t *testing.T) {
	prog := testProgram(2)
	e := NewExecutor(prog, 1, 0)
	var d DynInst
	for i := uint64(0); i < 5000; i++ {
		e.Next(&d)
		if d.Seq != i {
			t.Fatalf("seq %d at step %d", d.Seq, i)
		}
		if d.Static == nil {
			t.Fatal("nil static instruction")
		}
	}
	if e.Seq() != 5000 {
		t.Fatalf("Seq() = %d", e.Seq())
	}
}

func TestControlFlowConsistency(t *testing.T) {
	prog := testProgram(3)
	e := NewExecutor(prog, 1, 0)
	var d DynInst
	prevNext := uint64(program.CodeBase)
	for i := 0; i < 50000; i++ {
		e.Next(&d)
		if d.Static.PC != prevNext {
			t.Fatalf("step %d: fetched %#x, expected successor %#x", i, d.Static.PC, prevNext)
		}
		switch d.Static.Kind {
		case isa.Branch:
			want := d.Static.FallThrough()
			if d.Taken {
				want = d.Static.Target
			}
			if d.NextPC != want {
				t.Fatalf("branch NextPC %#x, want %#x", d.NextPC, want)
			}
		case isa.Jump, isa.Call:
			if !d.Taken || d.NextPC != d.Static.Target {
				t.Fatalf("jump/call must go to target")
			}
		case isa.Return:
			if !d.Taken {
				t.Fatal("return must be taken")
			}
		default:
			if d.NextPC != d.Static.FallThrough() {
				t.Fatalf("%v NextPC %#x, want fall-through", d.Static.Kind, d.NextPC)
			}
		}
		prevNext = d.NextPC
	}
}

func TestCallReturnPairing(t *testing.T) {
	prog := testProgram(4)
	e := NewExecutor(prog, 1, 0)
	var d DynInst
	var stack []uint64
	for i := 0; i < 100000; i++ {
		e.Next(&d)
		switch d.Static.Kind {
		case isa.Call:
			stack = append(stack, d.Static.FallThrough())
		case isa.Return:
			if len(stack) == 0 {
				t.Fatal("return without call")
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if d.NextPC != want {
				t.Fatalf("return to %#x, want %#x", d.NextPC, want)
			}
		}
	}
}

func TestAddressesInsideBuffers(t *testing.T) {
	prog := testProgram(5)
	e := NewExecutor(prog, 1, 0)
	var d DynInst
	for i := 0; i < 50000; i++ {
		e.Next(&d)
		if !d.Static.Kind.IsMem() {
			continue
		}
		meta := prog.Stream(d.Static)
		if d.Addr < meta.Base || d.Addr > meta.Base+meta.Mask {
			t.Fatalf("address %#x outside buffer [%#x, %#x]", d.Addr, meta.Base, meta.Base+meta.Mask)
		}
		if d.Addr%8 != 0 {
			t.Fatalf("address %#x not word aligned", d.Addr)
		}
	}
}

func TestThreadAddressTag(t *testing.T) {
	prog := testProgram(6)
	e0 := NewExecutor(prog, 1, 0)
	e3 := NewExecutor(prog, 1, 3)
	var d0, d3 DynInst
	for i := 0; i < 20000; i++ {
		e0.Next(&d0)
		e3.Next(&d3)
		if d0.Static != d3.Static || d0.Taken != d3.Taken {
			t.Fatal("thread tag changed control flow")
		}
		if d0.Static.Kind.IsMem() {
			if d0.Addr^d3.Addr != 3<<40 {
				t.Fatalf("tags differ unexpectedly: %#x vs %#x", d0.Addr, d3.Addr)
			}
		}
	}
}

func TestWrongPathAddrDoesNotPerturb(t *testing.T) {
	prog := testProgram(7)
	a := NewExecutor(prog, 1, 0)
	b := NewExecutor(prog, 1, 0)
	var da, db DynInst
	// Interleave wrong-path draws on b only.
	var anyMem *isa.Inst
	for i := range prog.Instrs {
		if prog.Instrs[i].Kind.IsMem() {
			anyMem = &prog.Instrs[i]
			break
		}
	}
	for i := 0; i < 20000; i++ {
		a.Next(&da)
		if i%3 == 0 {
			b.WrongPathAddr(anyMem)
		}
		b.Next(&db)
		if da != db {
			t.Fatalf("wrong-path draws perturbed the committed stream at %d", i)
		}
	}
}

func TestLoopTripsFollowMeta(t *testing.T) {
	prog := testProgram(8)
	e := NewExecutor(prog, 1, 0)
	var d DynInst
	// Track consecutive takens per loop branch; exits end a run.
	trips := map[uint32][]int{}
	run := map[uint32]int{}
	for i := 0; i < 200000; i++ {
		e.Next(&d)
		if d.Static.Kind != isa.Branch {
			continue
		}
		meta := prog.Branch(d.Static)
		if meta.Class != program.BranchLoop {
			continue
		}
		id := d.Static.BranchPattern
		if d.Taken {
			run[id]++
		} else {
			trips[id] = append(trips[id], run[id]+1)
			run[id] = 0
		}
	}
	checked := 0
	for id, ts := range trips {
		if len(ts) < 10 {
			continue
		}
		mean := 0.0
		for _, v := range ts {
			mean += float64(v)
		}
		mean /= float64(len(ts))
		want := prog.Branches[id-1].TripMean
		if mean < want/3 || mean > want*3 {
			t.Errorf("loop %d trip mean %.1f, meta %.1f", id, mean, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no loops observed enough exits")
	}
}
