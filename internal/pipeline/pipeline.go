// Package pipeline implements the cycle-driven 8-wide SMT processor model:
// fetch (ICOUNT-family policies), decode, rename, dispatch into a shared
// issue queue, schedule (baseline or VISA), execute on Table 2's function
// units against a realistic memory hierarchy, and in-order per-thread
// commit — with branch misprediction and wrong-path execution, FLUSH-style
// thread squashing, and bit-level AVF accounting for the issue queue,
// reorder buffer, register file and function units.
//
// Stages are evaluated in reverse order each cycle (commit → writeback →
// issue → dispatch → fetch), so results complete before consumers are
// selected (modelling bypass) and a uop moves at most one stage per cycle.
package pipeline

import (
	"fmt"

	"visasim/internal/avf"
	"visasim/internal/branch"
	"visasim/internal/cache"
	"visasim/internal/config"
	"visasim/internal/decision"
	"visasim/internal/iqorg"
	"visasim/internal/program"
	"visasim/internal/stats"
	"visasim/internal/trace"
	"visasim/internal/uarch"
)

// wheelSize is the completion wheel capacity; it must exceed the largest
// possible completion latency (TLB miss + L2 + memory ≈ 420 cycles).
const wheelSize = 1024

// Params configures one simulation.
type Params struct {
	Machine   config.Machine
	Scheduler uarch.Scheduler
	Policy    FetchPolicyKind
	// Controller implements dynamic IQ allocation or DVM; nil runs the
	// unmanaged machine.
	Controller Controller
	// Streams supplies one oracle stream per thread (1..MaxThreads).
	Streams []*trace.Stream
	// MaxInstructions stops the run once total commits reach it
	// (counted after warmup).
	MaxInstructions uint64
	// MaxCycles is the safety stop (0 selects 64×MaxInstructions),
	// counted after warmup.
	MaxCycles uint64
	// WarmupInstructions are committed before statistics collection
	// begins, letting caches and predictors reach steady state (the
	// paper fast-forwards to SimPoint regions for the same reason).
	WarmupInstructions uint64
	// OracleTags replaces the profiled per-PC ACE tags with perfect
	// per-instance ACE-ness at fetch (ablation: how much do profiling
	// false positives cost the VISA mechanisms?).
	OracleTags bool
	// IntervalCycles overrides the statistics/controller interval
	// (IntervalCycles constant when 0; ablation knob).
	IntervalCycles int
	// InvariantEvery, when positive, cross-checks the incrementally
	// maintained counters against a full O(machine-size) walk every N
	// cycles during Run (see CheckInvariants). Zero disables checking;
	// long-running tests sample (e.g. every few thousand cycles) so the
	// fast-path bookkeeping stays validated without O(n) work per cycle.
	InvariantEvery uint64
	// Decisions, when non-nil, receives a decision.Event at every
	// edge-detected policy decision (DVM triggers, allocation-cap and
	// FLUSH-engagement changes, dispatch-gate changes; see decisions.go).
	// Recording is observation only: attaching a sink never changes the
	// simulated machine.
	Decisions decision.Sink
	// Forced is the counterfactual-replay override schedule; empty forces
	// nothing. Overrides are applied after the live controller decides,
	// so a replayed run re-decides everything else exactly as recorded.
	Forced decision.Schedule
	// DisableSkipAhead forces cycle-by-cycle execution even when the run
	// is eligible for dead-cycle skip-ahead (controller-less, no forced
	// schedule). Results must be identical either way; the parity tests
	// pin that.
	DisableSkipAhead bool
	// Pool, when non-nil, supplies the uop free list, letting sequential
	// runs (a sweep worker's cells) share one steady-state allocation.
	// Safe only for strictly sequential runs; nil allocates a private pool.
	Pool *uarch.UopPool
}

// Processor is the simulated SMT core.
type Processor struct {
	cfg     config.Machine
	n       int
	threads []*thread

	// org is the issue queue's policy layer (admission, candidate
	// selection, mode bookkeeping); iq is its storage layer, shared by
	// every organization. Storage operations — Insert, Remove, Wake,
	// Census, occupancy reads, slot walks, invariant checks, fault
	// injection — go straight to iq: every organization forwards them
	// unchanged, so the indirection would buy nothing and the issue
	// hot path stays devirtualized. Only the policy decisions
	// (CanAccept, Select, EndCycle) dispatch through org.
	org   iqorg.Organization
	iq    *uarch.IQ
	fus   *uarch.FUPools
	mem   *cache.Hierarchy
	bp    *branch.Predictor
	sched uarch.Scheduler
	pol   *policyState
	ctrl  Controller
	dec   Decision

	// Issue-queue protection: reported IQ AVF scales by protScale
	// (1 - mitigation) and every result broadcast pays protWake extra
	// cycles (see iqorg.ProtCost). protScale is 1 and protWake 0 for the
	// unprotected default, leaving the hot path untouched.
	prot      iqorg.Protection
	protScale float64
	protWake  uint64

	// Decision tracing and forced replay (see decisions.go). decForced
	// flags that this cycle's decision carries schedule overrides.
	sink      decision.Sink
	forced    decision.Schedule
	decForced bool

	budget

	cycle        uint64
	statsCycle0  uint64 // cycle at last ResetStats
	age          uint64
	totalCommits uint64
	occSum       uint64 // Σ IQ occupancy per measured cycle

	oracleTags     bool
	intervalCycles uint64
	sampleCycles   uint64
	invariantEvery uint64

	wheel    [wheelSize][]*uarch.Uop
	flushReq []*uarch.Uop

	// Wheel occupancy index for skip-ahead: one bit per slot (set iff the
	// slot's list is non-empty) plus the total in-flight entry count, so
	// the next completion event is a word scan away instead of a walk.
	wheelBits  [wheelSize / 64]uint64
	wheelCount int

	// Dead-cycle skip-ahead (see skip.go). skipOK gates eligibility for
	// the whole run: no controller, no forced schedule, not disabled.
	skipOK        bool
	skippedCycles uint64

	// pool recycles uop allocations; fetch draws from it and commit,
	// squash and the completion wheel return to it. It may be shared with
	// other (strictly sequential) runs via Params.Pool.
	pool *uarch.UopPool

	// fetchCands is the fetch stage's reusable priority scratch.
	fetchCands [uarch.MaxThreads]fetchCand

	// stepView is Step's reusable controller-view scratch (see Step).
	stepView View

	// Per-thread IQ ACE-bit attribution (ground truth): current
	// resident bits and their lazily settled per-cycle integral
	// (occSum follows the same discipline; see settleIQStats).
	iqThreadAce    [uarch.MaxThreads]uint64
	iqThreadSum    [uarch.MaxThreads]uint64
	iqStatsSettled uint64 // absolute cycle occSum/iqThreadSum cover

	// AVF accounting.
	iqTrue *avf.Accumulator
	iqTag  *avf.Accumulator
	robAcc *avf.Accumulator
	robTag *avf.Accumulator
	rfAcc  *avf.SpanAccumulator

	// Per-cycle census (computed after writeback, before issue).
	census uarch.Census

	// Interval machinery.
	intervals      []stats.Interval
	rqHist         *stats.RQHistogram
	ivStartCycle   uint64
	ivStartCommits uint64
	ivStartL2      uint64
	ivStartTrue    uint64 // iqTrue.Sum() at interval start
	ivStartTag     uint64
	ivStartROB     uint64 // robAcc.Sum() at interval start
	ivStartROBTag  uint64
	ivReadySum     uint64
	prevIPC        float64
	prevMeanRQL    float64
	prevL2         uint64

	sampStartTag     uint64
	sampStartROBTag  uint64
	sampStartCycles  uint64
	lastSampleAVF    float64
	lastSampleROBAVF float64
	sampleIdx        int

	// Per-stage telemetry: controller-driven fetch-policy mode changes
	// (FLUSH engaging/disengaging) and waiting-queue throttle engagements
	// (DVM triggers), cumulative since ResetStats, with the previous
	// cycle's decision state for edge detection; ivStart* carry the
	// interval deltas.
	policySwitches  uint64
	dvmTriggers     uint64
	prevUseFlush    bool
	prevWaitCapped  bool
	recPrevIQLCap   int
	recPrevGate     uint8
	recPrevSample   int
	ivStartOcc      uint64
	ivStartSwitches uint64
	ivStartTriggers uint64

	// Squashed-instruction tag accounting (Table 1's second accuracy
	// figure): a squashed instruction's ground truth is un-ACE, so a
	// set ACE tag is a false positive.
	squashedTotal  uint64
	squashedTagged uint64

	// Per-class issue-queue accounting split by ACE tag: full
	// dispatch→issue residency, and ready→issue wait (the portion the
	// scheduler controls — VISA's lever).
	resTaggedSum     uint64
	resTaggedCount   uint64
	resUntaggedSum   uint64
	resUntaggedCount uint64
	waitTaggedSum    uint64
	waitUntaggedSum  uint64
}

// New builds a processor. The thread count is len(p.Streams).
func New(p Params) (*Processor, error) {
	p.Machine = p.Machine.Canonical()
	if err := p.Machine.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Streams)
	if n < 1 || n > uarch.MaxThreads {
		return nil, fmt.Errorf("pipeline: %d threads outside 1..%d", n, uarch.MaxThreads)
	}
	if p.MaxInstructions == 0 {
		return nil, fmt.Errorf("pipeline: zero instruction budget")
	}
	if p.MaxCycles == 0 {
		p.MaxCycles = 64 * p.MaxInstructions
	}
	m := p.Machine
	org, err := iqorg.New(m)
	if err != nil {
		return nil, err
	}
	prot, err := iqorg.ParseProtection(m.IQProtection)
	if err != nil {
		return nil, err
	}
	proc := &Processor{
		cfg:       m,
		n:         n,
		org:       org,
		iq:        org.Queue(),
		prot:      prot,
		protScale: prot.AVFScale(),
		protWake:  uint64(prot.Cost().WakeupLatency),
		fus:       uarch.NewFUPools(m.FUCount()),
		mem:       cache.NewHierarchy(m),
		bp:        branch.New(m.Branch, n),
		sched:     p.Scheduler,
		pol:       newPolicyState(p.Policy),
		ctrl:      p.Controller,
		dec:       NoDecision(),
		sink:      p.Decisions,
		forced:    p.Forced,
		iqTrue:    avf.NewAccumulator(m.IQSize, avf.IQEntryBits),
		iqTag:     avf.NewAccumulator(m.IQSize, avf.IQEntryBits),
		robAcc:    avf.NewAccumulator(n*m.ROBSize, avf.ROBEntryBits),
		robTag:    avf.NewAccumulator(n*m.ROBSize, avf.ROBEntryBits),
		rfAcc:     avf.NewSpanAccumulator(n*64, avf.RegBits),
		rqHist:    stats.NewRQHistogram(m.IQSize),
	}
	for i := 0; i < n; i++ {
		proc.threads = append(proc.threads, &thread{
			id:      i,
			stream:  p.Streams[i],
			rob:     uarch.NewROB(m.ROBSize),
			lsq:     uarch.NewLSQ(m.LSQSize),
			fq:      newFetchQueue(m.FetchQueueSize),
			pc:      program.CodeBase,
			onTrace: true,
		})
	}
	proc.maxInstructions = p.MaxInstructions
	proc.maxCycles = p.MaxCycles
	proc.warmup = p.WarmupInstructions
	proc.oracleTags = p.OracleTags
	proc.intervalCycles = IntervalCycles
	if p.IntervalCycles > 0 {
		proc.intervalCycles = uint64(p.IntervalCycles)
	}
	proc.sampleCycles = proc.intervalCycles / SampleDivisor
	if proc.sampleCycles == 0 {
		proc.sampleCycles = 1
	}
	proc.invariantEvery = p.InvariantEvery
	proc.recPrevIQLCap = proc.dec.IQLCap
	proc.pool = p.Pool
	if proc.pool == nil {
		proc.pool = &uarch.UopPool{}
	}
	proc.skipOK = p.Controller == nil && len(p.Forced) == 0 && !p.DisableSkipAhead
	return proc, nil
}

// Budget fields (kept off Params so Step can also be driven manually).
type budget struct {
	maxInstructions uint64
	maxCycles       uint64
	warmup          uint64
}

// Run simulates the warmup followed by the measured region and returns the
// results.
func (p *Processor) Run() *Results {
	if p.warmup > 0 {
		warmupCycleCap := p.cycle + 64*p.warmup
		for p.totalCommits < p.warmup && p.cycle < warmupCycleCap {
			p.Step()
			p.maybeCheckInvariants()
			// Skip only when the loop will continue: once the budget is
			// met the run must stop at exactly the cycle the stepped
			// machine would, not at the end of a skipped span.
			if p.skipOK && p.totalCommits < p.warmup && p.skipAhead(warmupCycleCap) {
				p.maybeCheckInvariants()
			}
		}
		p.ResetStats()
	}
	cycleCap := p.statsCycle0 + p.maxCycles
	for p.totalCommits < p.maxInstructions && p.cycle < cycleCap {
		p.Step()
		p.maybeCheckInvariants()
		if p.skipOK && p.totalCommits < p.maxInstructions && p.skipAhead(cycleCap) {
			p.maybeCheckInvariants()
		}
	}
	return p.results()
}

// maybeCheckInvariants runs the sampled invariant cross-check configured by
// Params.InvariantEvery. A failure is a simulator bug, never a modelling
// outcome, so it panics like the other internal-consistency checks.
func (p *Processor) maybeCheckInvariants() {
	if p.invariantEvery > 0 && p.cycle%p.invariantEvery == 0 {
		if err := p.CheckInvariants(); err != nil {
			panic(fmt.Sprintf("pipeline: invariant violated at cycle %d: %v", p.cycle, err))
		}
	}
}

// ResetStats zeroes all statistics while preserving machine state (cache,
// predictor and queue contents survive): measurement starts here.
func (p *Processor) ResetStats() {
	p.statsCycle0 = p.cycle
	p.totalCommits = 0
	for _, t := range p.threads {
		t.commits = 0
		t.fetched = 0
		t.wrongFetched = 0
		t.squashed = 0
		t.flushes = 0
		t.mispredicts = 0
		// Forget pre-measurement register lifetimes so RF spans are
		// charged only within the measured region.
		for r := range t.regs {
			t.regs[r].valid = false
		}
	}
	p.iqTrue.ResetStatsAt(p.cycle)
	p.iqTag.ResetStatsAt(p.cycle)
	p.robAcc.ResetStatsAt(p.cycle)
	p.robTag.ResetStatsAt(p.cycle)
	p.rfAcc.ResetStatsAt(p.cycle)
	for c := range p.fus.BusyCycles {
		p.fus.BusyCycles[c] = 0
		p.fus.BusyCyclesACE[c] = 0
	}
	p.mem.L2MissCount = 0
	p.mem.L1I.Accesses, p.mem.L1I.Misses = 0, 0
	p.mem.L1D.Accesses, p.mem.L1D.Misses = 0, 0
	p.mem.L2.Accesses, p.mem.L2.Misses = 0, 0
	p.mem.ITLB.Accesses, p.mem.ITLB.Misses = 0, 0
	p.mem.DTLB.Accesses, p.mem.DTLB.Misses = 0, 0
	p.bp.Lookups, p.bp.Mispredicts = 0, 0
	p.squashedTotal, p.squashedTagged = 0, 0
	p.skippedCycles = 0
	p.occSum = 0
	p.iqStatsSettled = p.cycle
	p.iqThreadAce = [uarch.MaxThreads]uint64{}
	p.iqThreadSum = [uarch.MaxThreads]uint64{}
	// Re-derive the resident per-thread ACE bits from the live queue.
	p.iq.ForEach(func(u *uarch.Uop) {
		p.iqThreadAce[u.Thread] += avf.IQBits(u.WrongPath, u.ACE)
	})
	p.resTaggedSum, p.resTaggedCount = 0, 0
	p.resUntaggedSum, p.resUntaggedCount = 0, 0
	p.waitTaggedSum, p.waitUntaggedSum = 0, 0
	p.iq.ResetHighWater()
	p.policySwitches, p.dvmTriggers = 0, 0
	p.prevUseFlush = p.dec.UseFlush
	p.prevWaitCapped = p.dec.WaitingCap >= 0
	p.recPrevIQLCap = p.dec.IQLCap
	p.recPrevGate = gateMask(&p.dec, p.n)
	p.recPrevSample = 0
	if p.sink != nil {
		p.sink.MeasureStart(p.cycle)
	}
	p.ivStartOcc, p.ivStartSwitches, p.ivStartTriggers = 0, 0, 0

	p.intervals = nil
	p.rqHist = stats.NewRQHistogram(p.cfg.IQSize)
	p.ivStartCycle = 0
	p.ivStartCommits = 0
	p.ivStartL2 = 0
	p.ivStartTrue, p.ivStartTag = 0, 0
	p.ivStartROB, p.ivStartROBTag = 0, 0
	p.ivReadySum = 0
	p.prevIPC, p.prevMeanRQL, p.prevL2 = 0, 0, 0
	p.sampStartTag, p.sampStartROBTag, p.sampStartCycles = 0, 0, 0
	p.lastSampleAVF, p.lastSampleROBAVF = 0, 0
	p.sampleIdx = 0
}

// Step advances the machine one cycle.
func (p *Processor) Step() {
	now := p.cycle
	p.commit(now)
	p.complete(now)
	p.census = p.iq.Census()
	// stepView is a Processor-owned scratch: taking the address of a local
	// here would heap-allocate a View on every cycle (noteDecision's
	// pointer parameter defeats escape analysis; nothing retains it).
	v := &p.stepView
	haveView := false
	if p.ctrl != nil {
		*v = p.view(now)
		haveView = true
		p.dec = p.ctrl.Decide(v)
	} else {
		p.dec = NoDecision()
	}
	p.decForced = false
	if len(p.forced) > 0 {
		p.decForced = p.applyForced(now)
	}
	p.noteDecision(now, v, haveView)
	p.issue(now)
	p.processFlushes(now)
	p.dispatch(now)
	p.fetch(now)
	p.org.EndCycle(now)
	p.account(now)
	p.cycle++
}

// Cycle returns the current cycle number.
func (p *Processor) Cycle() uint64 { return p.cycle }

// TotalCommits returns the committed instruction count.
func (p *Processor) TotalCommits() uint64 { return p.totalCommits }

// IQ exposes the issue queue's storage layer (tests, diagnostics and fault
// injection); identical for every organization.
func (p *Processor) IQ() *uarch.IQ { return p.iq }

// Organization exposes the issue queue's policy layer.
func (p *Processor) Organization() iqorg.Organization { return p.org }

// protAVF applies the protection mode's AVF mitigation to a reported
// issue-queue AVF. The unprotected default is exactly the identity.
func (p *Processor) protAVF(v float64) float64 {
	if p.protScale != 1 {
		return v * p.protScale
	}
	return v
}

// Memory exposes the cache hierarchy (tests and diagnostics).
func (p *Processor) Memory() *cache.Hierarchy { return p.mem }

// view assembles the controller-visible state.
func (p *Processor) view(now uint64) View {
	// The interval-so-far AVF estimates read the lazy accumulators
	// mid-cycle; settle them through the last closed cycle first.
	p.iqTag.SettleTo(now)
	p.robTag.SettleTo(now)
	v := View{
		Cycle:            now,
		NumThreads:       p.n,
		IQSize:           p.iq.Size(),
		IQLen:            p.iq.Len(),
		ReadyLen:         p.census.Ready,
		WaitingLen:       p.census.Waiting,
		ReadyACETag:      p.census.ReadyACETag,
		IntervalIndex:    len(p.intervals),
		PrevIPC:          p.prevIPC,
		PrevMeanReadyLen: p.prevMeanRQL,
		PrevL2Misses:     p.prevL2,
		SampleIndex:      p.sampleIdx,
		SampleAVFTag:     p.lastSampleAVF,
		SampleROBAVFTag:  p.lastSampleROBAVF,
		// Controllers see the residual (post-mitigation) IQ vulnerability:
		// a protected queue needs less DVM throttling for the same target.
		IntervalAVFTagSoFar:    p.protAVF(p.iqTag.AVFSince(p.ivStartTag, p.ivStartCycle)),
		IntervalROBAVFTagSoFar: p.robTag.AVFSince(p.ivStartROBTag, p.ivStartCycle),
	}
	for i, t := range p.threads {
		v.OutstandingL2[i] = t.outstandingL2
		v.FetchQLen[i] = int32(t.fq.Len())
		v.FetchQACETag[i] = t.fqACETag
	}
	return v
}

// account closes the cycle: ready-queue histogram and the interval/sample
// boundaries. AVF accounting is settled lazily (on occupancy deltas and at
// the boundaries below) rather than ticked every cycle.
func (p *Processor) account(now uint64) {
	p.rqHist.Observe(p.census.Ready, p.census.ReadyACE)
	p.ivReadySum += uint64(p.census.Ready)

	done := now + 1
	if done%p.sampleCycles == 0 {
		p.iqTag.SettleTo(done)
		p.robTag.SettleTo(done)
		p.lastSampleAVF = p.protAVF(p.iqTag.AVFSince(p.sampStartTag, p.sampStartCycles))
		p.lastSampleROBAVF = p.robTag.AVFSince(p.sampStartROBTag, p.sampStartCycles)
		p.sampStartTag = p.iqTag.Sum()
		p.sampStartROBTag = p.robTag.Sum()
		p.sampStartCycles = p.iqTag.Cycles()
		p.sampleIdx++
	}
	if done%p.intervalCycles == 0 {
		p.settleAccounting(done)
		p.closeInterval()
	}
}

// settleIQStats charges the IQ occupancy integrals (occSum, per-thread ACE
// bits) for the cycles since the last occupancy change.
func (p *Processor) settleIQStats(now uint64) {
	d := now - p.iqStatsSettled
	if d == 0 {
		return
	}
	p.occSum += uint64(p.iq.Len()) * d
	for i := 0; i < p.n; i++ {
		p.iqThreadSum[i] += p.iqThreadAce[i] * d
	}
	p.iqStatsSettled = now
}

// settleAccounting brings every lazily maintained statistic up to date
// through cycle now-1 (interval boundaries and end of run).
func (p *Processor) settleAccounting(now uint64) {
	p.iqTrue.SettleTo(now)
	p.iqTag.SettleTo(now)
	p.robAcc.SettleTo(now)
	p.robTag.SettleTo(now)
	p.rfAcc.SettleTo(now)
	p.settleIQStats(now)
}

func (p *Processor) closeInterval() {
	cycles := p.iqTrue.Cycles() - p.ivStartCycle
	if cycles == 0 {
		return
	}
	commits := p.totalCommits - p.ivStartCommits
	iv := stats.Interval{
		Index:          len(p.intervals),
		Cycles:         cycles,
		Commits:        commits,
		IPC:            float64(commits) / float64(cycles),
		AvgReadyLen:    float64(p.ivReadySum) / float64(cycles),
		L2Misses:       p.mem.L2MissCount - p.ivStartL2,
		IQAVF:          p.protAVF(p.iqTrue.AVFSince(p.ivStartTrue, p.ivStartCycle)),
		IQAVFTagged:    p.protAVF(p.iqTag.AVFSince(p.ivStartTag, p.ivStartCycle)),
		ROBAVF:         p.robAcc.AVFSince(p.ivStartROB, p.ivStartCycle),
		MeanIQOcc:      float64(p.occSum-p.ivStartOcc) / float64(cycles),
		PolicySwitches: p.policySwitches - p.ivStartSwitches,
		DVMTriggers:    p.dvmTriggers - p.ivStartTriggers,
	}
	p.intervals = append(p.intervals, iv)
	p.prevIPC = iv.IPC
	p.prevMeanRQL = iv.AvgReadyLen
	p.prevL2 = iv.L2Misses

	p.ivStartCycle = p.iqTrue.Cycles()
	p.ivStartCommits = p.totalCommits
	p.ivStartL2 = p.mem.L2MissCount
	p.ivStartTrue = p.iqTrue.Sum()
	p.ivStartTag = p.iqTag.Sum()
	p.ivStartROB = p.robAcc.Sum()
	p.ivStartROBTag = p.robTag.Sum()
	p.ivReadySum = 0
	p.ivStartOcc = p.occSum
	p.ivStartSwitches = p.policySwitches
	p.ivStartTriggers = p.dvmTriggers
}

func (p *Processor) wheelPush(u *uarch.Uop, now uint64) {
	d := u.CompleteAt - now
	if d == 0 || d >= wheelSize {
		panic(fmt.Sprintf(
			"pipeline: completion delta %d outside wheel (size %d): uop age %d thread %d pc %#x kind %v, CompleteAt %d, now %d",
			d, wheelSize, u.Age, u.Thread, u.Static().PC, u.Kind(), u.CompleteAt, now))
	}
	slot := u.CompleteAt % wheelSize
	p.wheel[slot] = append(p.wheel[slot], u)
	p.wheelBits[slot/64] |= 1 << (slot % 64)
	p.wheelCount++
}
