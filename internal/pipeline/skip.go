package pipeline

import "math/bits"

// Dead-cycle skip-ahead.
//
// On memory-bound workloads the machine spends long spans with nothing to
// do: every thread stalled on an L2 miss, the issue queue holding only
// waiting uops, the front end gated. Stepping those cycles one at a time
// costs the full stage walk per cycle for zero state change. skipAhead
// proves a span dead — no stage could do work before some future event —
// and jumps the clock there in O(1), folding the span's per-cycle
// accounting into bulk updates.
//
// Eligibility is decided once per run (Processor.skipOK): a controller or a
// forced decision schedule observes (and can act on) every cycle, so such
// runs always step cycle by cycle. Without them the per-cycle decision is
// the constant NoDecision, decision tracing emits no events, and the only
// per-cycle observers are the statistics boundaries — which the skip target
// is capped to, so boundary cycles are always simulated, never skipped.
// Results, decision traces and telemetry must be byte-identical with skip
// on or off; the parity tests pin that.

// noWake marks "no bounded wake-up event" targets.
const noWake = ^uint64(0)

// skipAhead advances the clock across a maximal dead span, never past
// limit. It returns whether the clock moved. Called between Step calls:
// p.cycle is the next cycle to simulate, and every queue is in its
// end-of-cycle state.
//
// A cycle is dead when each stage provably idles:
//   - issue: no ready uop (live census);
//   - writeback: this cycle's completion-wheel slot is empty;
//   - commit: no thread's ROB head has completed;
//   - dispatch: every fetch-queue head is absent, not yet decode-ready
//     (wake-up at its ready cycle), or structurally blocked — and a block
//     releases only through a completion event or an organization
//     boundary, both of which bound the skip target;
//   - fetch: every thread is stalled (wake-up at stallUntil), has a full
//     fetch queue, or is policy-gated — and gating clears only when
//     outstanding misses drain, which is again a completion event. Under
//     FLUSH any eligible thread fetches even when gated (the ungate-one
//     exception), so an eligible thread ends the span.
//
// The target is then the earliest future event: the next occupied wheel
// slot, decode-ready and fetch-stall wake-ups, the organization's next
// policy boundary, the next statistics sample/interval boundary cycle, and
// the next invariant-check multiple (so sampled cross-checks keep their
// cadence). Boundary cycles themselves are simulated normally.
func (p *Processor) skipAhead(limit uint64) bool {
	now := p.cycle
	if now >= limit {
		return false
	}
	// Live census, not the Step-time snapshot: dispatch may have inserted
	// ready uops after the snapshot was taken.
	if p.iq.Census().Ready != 0 {
		return false // issue has work
	}
	if len(p.wheel[now%wheelSize]) != 0 {
		return false // writeback has work
	}
	target := limit
	if p.wheelCount != 0 {
		if next := p.nextWheelEvent(now); next < target {
			target = next
		}
	}
	for _, t := range p.threads {
		if t.rob.HeadCompleted() {
			return false // commit has work
		}
		if dr, ok := t.fq.HeadReadyAt(); ok {
			if dr > now {
				if dr < target {
					target = dr
				}
			} else if p.headCanDispatch(t) {
				return false // dispatch has work
			}
			// Structurally blocked head: unblocks only via completion
			// events or an organization boundary, both already bounding
			// target.
		}
		if !t.fq.Full() {
			if t.stallUntil > now {
				if t.stallUntil < target {
					target = t.stallUntil
				}
			} else if p.pol.kind == PolicyFLUSH || !p.pol.gated(t, false) {
				return false // fetch has work (FLUSH ungates one candidate)
			}
			// Gated: clears only when outstanding misses drain (wheel).
		}
	}
	if nb := p.org.NextBoundary(now); nb < target {
		target = nb
	}
	target = capAtStatBoundary(target, now, p.sampleCycles)
	target = capAtStatBoundary(target, now, p.intervalCycles)
	if p.invariantEvery > 0 {
		if next := (now/p.invariantEvery + 1) * p.invariantEvery; next < target {
			target = next
		}
	}
	if target <= now {
		return false
	}

	// Bulk-account the skipped cycles [now, target). Each would have
	// observed an empty ready queue and contributed nothing to ivReadySum;
	// the AVF and occupancy integrals are lazily settled against absolute
	// cycles, so they need no update here. The organization folds its
	// elided EndCycle calls into one span update (occupancy is constant
	// across a dead span and the span never crosses its boundary).
	d := target - now
	p.rqHist.ObserveN(0, 0, d)
	p.org.EndCycleSpan(now, target)
	p.skippedCycles += d
	p.cycle = target
	return true
}

// headCanDispatch reports whether t's decode-ready fetch-queue head could
// enter the machine this cycle — the dead-span mirror of dispatch's gates
// under NoDecision (no IQL cap, no waiting cap, no thread gating).
func (p *Processor) headCanDispatch(t *thread) bool {
	if t.rob.Full() || (t.fq.HeadIsMem() && t.lsq.Full()) || p.iq.Full() {
		return false
	}
	return p.org.CanAccept(t.id)
}

// nextWheelEvent returns the cycle of the first occupied completion-wheel
// slot strictly after now (noWake when the wheel is empty), scanning the
// occupancy bitmap a word at a time.
func (p *Processor) nextWheelEvent(now uint64) uint64 {
	const words = wheelSize / 64
	start := (now + 1) % wheelSize
	wi := int(start) / 64
	w := p.wheelBits[wi] &^ (1<<(start%64) - 1)
	for i := 0; i <= words; i++ {
		if w != 0 {
			slot := uint64(wi)*64 + uint64(bits.TrailingZeros64(w))
			return now + 1 + (slot+wheelSize-start)%wheelSize
		}
		wi = (wi + 1) % words
		w = p.wheelBits[wi]
	}
	return noWake
}

// capAtStatBoundary caps a skip target so the next statistics boundary
// cycle — the smallest c >= now with (c+1) % every == 0, where account
// settles samples or closes an interval — is simulated rather than skipped.
func capAtStatBoundary(target, now, every uint64) uint64 {
	if b := (now+every)/every*every - 1; b < target {
		return b
	}
	return target
}
