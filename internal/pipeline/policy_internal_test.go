package pipeline

import (
	"testing"

	"visasim/internal/uarch"
)

func TestPDGPredictorTraining(t *testing.T) {
	ps := newPolicyState(PolicyPDG)
	const pc = 0x40_0100
	if ps.pdgPredictMiss(pc) {
		t.Fatal("cold predictor predicts miss")
	}
	ps.pdgTrain(pc, true)
	if ps.pdgPredictMiss(pc) {
		t.Fatal("one miss should not saturate a 2-bit counter")
	}
	ps.pdgTrain(pc, true)
	if !ps.pdgPredictMiss(pc) {
		t.Fatal("two misses should predict miss")
	}
	ps.pdgTrain(pc, false)
	ps.pdgTrain(pc, false)
	if ps.pdgPredictMiss(pc) {
		t.Fatal("hits should untrain the predictor")
	}
}

func TestPDGDisabledForOtherPolicies(t *testing.T) {
	ps := newPolicyState(PolicyICOUNT)
	ps.pdgTrain(0x1000, true)
	ps.pdgTrain(0x1000, true)
	if ps.pdgPredictMiss(0x1000) {
		t.Fatal("non-PDG policy allocated predictor state")
	}
}

func TestGatingMatrix(t *testing.T) {
	mk := func() *thread { return &thread{} }
	cases := []struct {
		kind  FetchPolicyKind
		setup func(*thread)
		gated bool
	}{
		{PolicyICOUNT, func(th *thread) { th.outstandingL2 = 3 }, false},
		{PolicySTALL, func(th *thread) { th.outstandingL2 = 1 }, true},
		{PolicySTALL, func(th *thread) {}, false},
		{PolicyFLUSH, func(th *thread) { th.flushStall = true }, true},
		{PolicyFLUSH, func(th *thread) { th.outstandingL2 = 1 }, true},
		{PolicyDG, func(th *thread) { th.outstandingL1D = 1 }, true},
		{PolicyDG, func(th *thread) { th.outstandingL2 = 1 }, false},
		{PolicyPDG, func(th *thread) { th.pdgInFlight = 1 }, true},
		{PolicyPDG, func(th *thread) { th.outstandingL1D = 5 }, false},
	}
	for i, c := range cases {
		ps := newPolicyState(c.kind)
		th := mk()
		c.setup(th)
		if got := ps.gated(th, false); got != c.gated {
			t.Errorf("case %d (%v): gated=%v want %v", i, c.kind, got, c.gated)
		}
	}
}

func TestUseFlushOverridesAnyPolicy(t *testing.T) {
	ps := newPolicyState(PolicyICOUNT)
	th := &thread{outstandingL2: 1}
	if ps.gated(th, false) {
		t.Fatal("ICOUNT gated without flush override")
	}
	if !ps.gated(th, true) {
		t.Fatal("useFlush must gate missing threads under any base policy")
	}
	if !ps.flushOnL2Miss(true) || ps.flushOnL2Miss(false) {
		t.Fatal("flushOnL2Miss wrong for ICOUNT")
	}
	if !newPolicyState(PolicyFLUSH).flushOnL2Miss(false) {
		t.Fatal("FLUSH policy must flush on L2 miss")
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[FetchPolicyKind]string{
		PolicyICOUNT: "ICOUNT", PolicySTALL: "STALL", PolicyFLUSH: "FLUSH",
		PolicyDG: "DG", PolicyPDG: "PDG",
	}
	if len(AllPolicies()) != len(want) {
		t.Fatal("AllPolicies incomplete")
	}
	for k, n := range want {
		if k.String() != n {
			t.Errorf("%d renders %q", k, k.String())
		}
	}
}

func TestWheelPushGuards(t *testing.T) {
	p := &Processor{}
	u := &uarch.Uop{CompleteAt: 100}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delta wheel push must panic")
		}
	}()
	p.wheelPush(u, 100)
}
