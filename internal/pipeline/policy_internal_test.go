package pipeline

import (
	"testing"

	"visasim/internal/uarch"
)

func TestPDGPredictorTraining(t *testing.T) {
	ps := newPolicyState(PolicyPDG)
	const pc = 0x40_0100
	if ps.pdgPredictMiss(pc) {
		t.Fatal("cold predictor predicts miss")
	}
	ps.pdgTrain(pc, true)
	if ps.pdgPredictMiss(pc) {
		t.Fatal("one miss should not saturate a 2-bit counter")
	}
	ps.pdgTrain(pc, true)
	if !ps.pdgPredictMiss(pc) {
		t.Fatal("two misses should predict miss")
	}
	ps.pdgTrain(pc, false)
	ps.pdgTrain(pc, false)
	if ps.pdgPredictMiss(pc) {
		t.Fatal("hits should untrain the predictor")
	}
}

func TestPDGDisabledForOtherPolicies(t *testing.T) {
	ps := newPolicyState(PolicyICOUNT)
	ps.pdgTrain(0x1000, true)
	ps.pdgTrain(0x1000, true)
	if ps.pdgPredictMiss(0x1000) {
		t.Fatal("non-PDG policy allocated predictor state")
	}
}

func TestGatingMatrix(t *testing.T) {
	mk := func() *thread { return &thread{} }
	cases := []struct {
		kind  FetchPolicyKind
		setup func(*thread)
		gated bool
	}{
		{PolicyICOUNT, func(th *thread) { th.outstandingL2 = 3 }, false},
		{PolicySTALL, func(th *thread) { th.outstandingL2 = 1 }, true},
		{PolicySTALL, func(th *thread) {}, false},
		{PolicyFLUSH, func(th *thread) { th.flushStall = true }, true},
		{PolicyFLUSH, func(th *thread) { th.outstandingL2 = 1 }, true},
		{PolicyDG, func(th *thread) { th.outstandingL1D = 1 }, true},
		{PolicyDG, func(th *thread) { th.outstandingL2 = 1 }, false},
		{PolicyPDG, func(th *thread) { th.pdgInFlight = 1 }, true},
		{PolicyPDG, func(th *thread) { th.outstandingL1D = 5 }, false},
	}
	for i, c := range cases {
		ps := newPolicyState(c.kind)
		th := mk()
		c.setup(th)
		if got := ps.gated(th, false); got != c.gated {
			t.Errorf("case %d (%v): gated=%v want %v", i, c.kind, got, c.gated)
		}
	}
}

func TestUseFlushOverridesAnyPolicy(t *testing.T) {
	ps := newPolicyState(PolicyICOUNT)
	th := &thread{outstandingL2: 1}
	if ps.gated(th, false) {
		t.Fatal("ICOUNT gated without flush override")
	}
	if !ps.gated(th, true) {
		t.Fatal("useFlush must gate missing threads under any base policy")
	}
	if !ps.flushOnL2Miss(true) || ps.flushOnL2Miss(false) {
		t.Fatal("flushOnL2Miss wrong for ICOUNT")
	}
	if !newPolicyState(PolicyFLUSH).flushOnL2Miss(false) {
		t.Fatal("FLUSH policy must flush on L2 miss")
	}
}

// TestUseFlushComposesWithGatingPolicies pins the override's composition:
// useFlush adds L2/flush-stall gating on top of the base policy without
// displacing the base condition. A DG thread with only an L1D miss stays
// gated by DG even under useFlush; a DG thread with only an L2 miss is
// gated only when useFlush engages.
func TestUseFlushComposesWithGatingPolicies(t *testing.T) {
	cases := []struct {
		name string
		kind FetchPolicyKind
		th   thread
		want bool
	}{
		{"dg-l1d-only", PolicyDG, thread{outstandingL1D: 1}, true},
		{"dg-l2-only", PolicyDG, thread{outstandingL2: 1}, true},
		{"dg-clean", PolicyDG, thread{}, false},
		{"pdg-inflight-only", PolicyPDG, thread{pdgInFlight: 1}, true},
		{"pdg-l2-only", PolicyPDG, thread{outstandingL2: 1}, true},
		{"pdg-clean", PolicyPDG, thread{}, false},
		{"stall-flushstall", PolicySTALL, thread{flushStall: true}, true},
		{"icount-flushstall", PolicyICOUNT, thread{flushStall: true}, true},
	}
	for _, c := range cases {
		ps := newPolicyState(c.kind)
		th := c.th
		if got := ps.gated(&th, true); got != c.want {
			t.Errorf("%s under useFlush: gated=%v want %v", c.name, got, c.want)
		}
	}
}

// TestFlushOnL2MissPerPolicy pins which policies squash behind a missing
// load: only FLUSH itself, or any policy once the opt2/DVM override engages.
func TestFlushOnL2MissPerPolicy(t *testing.T) {
	for _, kind := range AllPolicies() {
		ps := newPolicyState(kind)
		wantBase := kind == PolicyFLUSH
		if got := ps.flushOnL2Miss(false); got != wantBase {
			t.Errorf("%v: flushOnL2Miss(false)=%v want %v", kind, got, wantBase)
		}
		if !ps.flushOnL2Miss(true) {
			t.Errorf("%v: useFlush must force flush-on-miss", kind)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	want := map[FetchPolicyKind]string{
		PolicyICOUNT: "ICOUNT", PolicySTALL: "STALL", PolicyFLUSH: "FLUSH",
		PolicyDG: "DG", PolicyPDG: "PDG",
	}
	if len(AllPolicies()) != len(want) {
		t.Fatal("AllPolicies incomplete")
	}
	for k, n := range want {
		if k.String() != n {
			t.Errorf("%d renders %q", k, k.String())
		}
	}
}

func TestWheelPushGuards(t *testing.T) {
	p := &Processor{}
	u := &uarch.Uop{CompleteAt: 100}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delta wheel push must panic")
		}
	}()
	p.wheelPush(u, 100)
}
