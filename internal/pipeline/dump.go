package pipeline

import (
	"fmt"
	"io"

	"visasim/internal/uarch"
)

// DumpState writes a human-readable snapshot of the machine to w — a
// debugging aid for pipeline investigations (front-end state per thread,
// issue-queue contents, in-flight counts).
func (p *Processor) DumpState(w io.Writer) {
	fmt.Fprintf(w, "cycle %d  commits %d  IQ %d/%d (ready %d, waiting %d)\n",
		p.cycle, p.totalCommits, p.iq.Len(), p.iq.Size(),
		p.census.Ready, p.census.Waiting)
	for _, t := range p.threads {
		path := "correct"
		if !t.onTrace {
			path = "wrong"
		}
		fmt.Fprintf(w, "thread %d: pc %#x (%s path, pos %d)  fq %d  rob %d  lsq %d  iq %d  L2miss %d",
			t.id, t.pc, path, t.streamPos, t.fq.Len(), t.rob.Len(), t.lsq.Len(),
			p.iq.ThreadLen(t.id), t.outstandingL2)
		if t.stallUntil > p.cycle {
			fmt.Fprintf(w, "  stalled until %d", t.stallUntil)
		}
		if t.flushStall {
			fmt.Fprintf(w, "  flush-stalled")
		}
		if t.pendingMispredict != nil {
			fmt.Fprintf(w, "  mispredict pending @%#x", t.pendingMispredict.Static().PC)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "issue queue (oldest first):")
	var uops []*uarch.Uop
	p.iq.ForEach(func(u *uarch.Uop) { uops = append(uops, u) })
	for i := 0; i < len(uops); i++ {
		for j := i + 1; j < len(uops); j++ {
			if uops[j].Age < uops[i].Age {
				uops[i], uops[j] = uops[j], uops[i]
			}
		}
	}
	for _, u := range uops {
		state := "waiting"
		if u.Ready() {
			state = "ready"
		}
		flags := ""
		if u.ACETag {
			flags += " tag"
		}
		if u.ACE {
			flags += " ACE"
		}
		if u.WrongPath {
			flags += " wrong-path"
		}
		fmt.Fprintf(w, "  t%d age %-8d %-8s%v  [%s%s]\n",
			u.Thread, u.Age, state, u.Static(), u.Kind().FU(), flags)
	}
}
