package pipeline

import "visasim/internal/uarch"

// View is the per-cycle machine state exposed to dispatch controllers (the
// paper's dynamic IQ resource allocation, §2.2, and DVM, §5). It contains
// only quantities a real implementation could read from counters.
type View struct {
	Cycle      uint64
	NumThreads int

	// Issue-queue occupancy split (from the per-cycle census).
	IQSize      int
	IQLen       int
	ReadyLen    int
	WaitingLen  int
	ReadyACETag int

	// Interval statistics: index of the current 10K-cycle interval and
	// the previous interval's figures (available from its boundary on).
	IntervalIndex    int
	PrevIPC          float64
	PrevMeanReadyLen float64
	PrevL2Misses     uint64

	// Online tag-based IQ AVF estimation (what DVM's ACE-bit counter
	// hardware computes): the most recent fine-grained sample and the
	// running estimate over the current interval so far.
	SampleIndex            int
	SampleAVFTag           float64
	SampleROBAVFTag        float64
	IntervalAVFTagSoFar    float64
	IntervalROBAVFTagSoFar float64

	// Per-thread state.
	OutstandingL2 [uarch.MaxThreads]int32 // in-flight loads missed to memory
	FetchQLen     [uarch.MaxThreads]int32
	FetchQACETag  [uarch.MaxThreads]int32 // ACE-tagged instructions in fetch queue
}

// Decision is a controller's dispatch-stage directive for the current cycle.
type Decision struct {
	// IQLCap caps allocated IQ entries (the paper's IQL); <0 means no
	// cap.
	IQLCap int
	// WaitingCap caps the number of waiting (not-ready) instructions in
	// the IQ (derived from DVM's wq_ratio); <0 means no cap.
	WaitingCap int
	// GateDispatch stalls dispatch per thread.
	GateDispatch [uarch.MaxThreads]bool
	// UseFlush engages FLUSH-style handling of L2 misses (opt2's
	// response when the interval's L2 misses exceed Tcache_miss),
	// regardless of the base fetch policy.
	UseFlush bool
}

// NoDecision is the neutral decision (no caps, no gating).
func NoDecision() Decision { return Decision{IQLCap: -1, WaitingCap: -1} }

// Controller adjusts dispatch behaviour each cycle. Implementations live in
// internal/alloc (opt1/opt2) and internal/dvm.
type Controller interface {
	// Name identifies the scheme in reports.
	Name() string
	// Decide is invoked once per cycle, after completion/wakeup and
	// before issue and dispatch.
	Decide(v *View) Decision
}

// SampleDivisor is how many fine-grained AVF samples DVM takes per
// interval (the paper samples "five times within each interval").
const SampleDivisor = 5

// IntervalCycles is the sampling interval used by the interval statistics,
// the dynamic allocation mechanism and DVM (the paper uses 10K cycles).
const IntervalCycles = 10000
