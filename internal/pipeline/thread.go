package pipeline

import (
	"visasim/internal/isa"
	"visasim/internal/trace"
	"visasim/internal/uarch"
)

// fetchQueue is a small FIFO ring of fetched, not-yet-dispatched uops.
//
// Two struct-of-arrays rings ride alongside the pointer ring: the head's
// decode-ready cycle and memory-op flag. Dispatch polls both every cycle
// for every thread, and while the head is blocked (decode latency, full
// downstream queues) the dense rings answer without dereferencing the uop.
type fetchQueue struct {
	buf     []*uarch.Uop
	readyAt []uint64 // DecodeReady per slot
	mem     []bool   // Kind().IsMem() per slot
	head    int
	len     int
}

func newFetchQueue(size int) *fetchQueue {
	return &fetchQueue{
		buf:     make([]*uarch.Uop, size),
		readyAt: make([]uint64, size),
		mem:     make([]bool, size),
	}
}

func (q *fetchQueue) Len() int   { return q.len }
func (q *fetchQueue) Full() bool { return q.len == len(q.buf) }

func (q *fetchQueue) Push(u *uarch.Uop) {
	if q.Full() {
		panic("pipeline: fetch queue overflow")
	}
	slot := (q.head + q.len) % len(q.buf)
	q.buf[slot] = u
	q.readyAt[slot] = u.DecodeReady
	q.mem[slot] = u.Kind().IsMem()
	q.len++
}

func (q *fetchQueue) Head() *uarch.Uop {
	if q.len == 0 {
		return nil
	}
	return q.buf[q.head]
}

// HeadReadyAt returns the head's decode-ready cycle, or ok=false when the
// queue is empty — the dispatch stage's per-cycle poll, answered from the
// dense ring.
func (q *fetchQueue) HeadReadyAt() (uint64, bool) {
	if q.len == 0 {
		return 0, false
	}
	return q.readyAt[q.head], true
}

// HeadIsMem reports whether the head is a memory operation (false when
// empty).
func (q *fetchQueue) HeadIsMem() bool {
	return q.len > 0 && q.mem[q.head]
}

func (q *fetchQueue) Pop() *uarch.Uop {
	u := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.len--
	return u
}

// Drain empties the queue, invoking f on each uop (squash path).
func (q *fetchQueue) Drain(f func(*uarch.Uop)) {
	for q.len > 0 {
		f(q.Pop())
	}
}

// regLife tracks one architectural register's current value lifetime for
// register-file AVF accounting (resolved retrospectively at overwrite).
type regLife struct {
	writeCycle uint64
	lastRead   uint64
	ace        bool
	valid      bool
}

// thread is one hardware context.
type thread struct {
	id     int
	stream *trace.Stream

	rob *uarch.ROB
	lsq *uarch.LSQ
	fq  *fetchQueue

	// renameMap points each architectural register at its newest
	// in-flight writer (nil: value is architectural, always ready).
	renameMap [isa.NumRegs]*uarch.Uop

	// Fetch state.
	pc         uint64
	onTrace    bool   // fetching the oracle (correct) path
	streamPos  uint64 // next correct-path position to fetch
	stallUntil uint64 // I-cache miss / mispredict redirect penalty
	flushStall bool   // FLUSH: fetch disabled until the missing load returns

	// pendingMispredict is the unresolved mispredicted correct-path
	// branch, if any (at most one: everything fetched after it is
	// wrong-path).
	pendingMispredict *uarch.Uop

	// Outstanding-miss tracking for fetch policies.
	outstandingL2  int32 // in-flight loads that went to memory
	outstandingL1D int32 // in-flight loads that missed L1D
	pdgInFlight    int32 // in-flight loads PDG predicted to miss

	// fqACETag counts ACE-tagged uops in the fetch queue (DVM's
	// restore-dispatch heuristic reads it).
	fqACETag int32

	// Per-thread register lifetimes for RF AVF.
	regs [isa.NumRegs]regLife

	// Statistics.
	commits      uint64
	fetched      uint64
	wrongFetched uint64
	squashed     uint64
	flushes      uint64
	mispredicts  uint64
}

// icount is the classic ICOUNT priority key: instructions in the front-end
// and issue queue (fewer = higher fetch priority).
func (t *thread) icount(iq *uarch.IQ) int {
	return t.fq.Len() + iq.ThreadLen(t.id)
}

// fqPush adds a fetched uop to the fetch queue, maintaining tag counts.
func (t *thread) fqPush(u *uarch.Uop) {
	t.fq.Push(u)
	if u.ACETag {
		t.fqACETag++
	}
}

// fqPop removes the head of the fetch queue, maintaining tag counts.
func (t *thread) fqPop() *uarch.Uop {
	u := t.fq.Pop()
	if u.ACETag {
		t.fqACETag--
	}
	return u
}
