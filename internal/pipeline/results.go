package pipeline

import (
	"visasim/internal/isa"
	"visasim/internal/stats"
)

// Results summarises one simulation.
type Results struct {
	Cycles     uint64
	NumThreads int
	// Commits holds per-thread committed instruction counts.
	Commits []uint64

	ThroughputIPC float64
	HarmonicIPC   float64

	// Whole-run AVFs (ground truth unless noted).
	IQAVF        float64
	IQAVFTagged  float64 // tag-estimated (what DVM's counter hardware sees)
	ROBAVF       float64
	ROBAVFTagged float64
	RFAVF        float64
	FUAVF        float64

	// MaxIQAVF is the largest 10K-cycle interval IQ AVF (the paper's
	// MaxIQ_AVF reference for DVM thresholds); MaxROBAVF is the ROB
	// analogue used by the ROB-DVM extension.
	MaxIQAVF  float64
	MaxROBAVF float64

	Intervals []stats.Interval
	RQHist    *stats.RQHistogram

	// SkippedCycles counts measured-region cycles advanced by dead-cycle
	// skip-ahead rather than stepped (they are included in Cycles and in
	// every per-cycle statistic; this is throughput telemetry only).
	SkippedCycles uint64

	// Event counts.
	L2Misses         uint64
	Mispredicts      uint64
	Fetched          uint64
	WrongPathFetched uint64
	Squashed         uint64
	Flushes          uint64

	// Per-stage telemetry (whole run; the per-interval series lives in
	// Intervals). PolicySwitches counts controller-driven fetch-policy
	// mode changes (FLUSH engaging or disengaging); DVMTriggers counts
	// waiting-queue throttle engagements; IQHighWater is the peak issue-
	// queue occupancy in the measured region.
	PolicySwitches uint64
	DVMTriggers    uint64
	IQHighWater    int

	// Diagnostics.
	L1IMissRate     float64
	L1DMissRate     float64
	L2MissRate      float64
	DTLBMissRate    float64
	MispredictRate  float64 // per conditional-direction lookup
	MeanIQOccupancy float64
	MeanReadyLen    float64

	// Mean dispatch→issue residency (cycles) by ACE tag, sampled on
	// integer-ALU instructions — the quantity VISA issue reduces for
	// vulnerable instructions.
	MeanResidencyTagged   float64
	MeanResidencyUntagged float64
	// Mean ready→issue wait by ACE tag (integer-ALU class): the portion
	// of residency the scheduler controls.
	MeanReadyWaitTagged   float64
	MeanReadyWaitUntagged float64

	// IQThreadShare attributes the IQ's ACE-bit-cycles to the thread
	// that contributed them (sums to 1 when the IQ saw any ACE bits):
	// on MIX workloads the memory-bound threads dominate, which is why
	// the paper's mechanisms target dispatch.
	IQThreadShare []float64

	// Squashed-instruction tag statistics: squashed instructions are
	// un-ACE, so tagged ones are false positives.
	SquashedTotal  uint64
	SquashedTagged uint64
}

// PVE returns the fraction of intervals whose IQ AVF exceeded threshold.
func (r *Results) PVE(threshold float64) float64 {
	return stats.PVE(r.Intervals, threshold)
}

// PVEROB returns the fraction of intervals whose ROB AVF exceeded
// threshold (the ROB-DVM extension's emergency metric).
func (r *Results) PVEROB(threshold float64) float64 {
	if len(r.Intervals) == 0 {
		return 0
	}
	n := 0
	for _, iv := range r.Intervals {
		if iv.ROBAVF > threshold {
			n++
		}
	}
	return float64(n) / float64(len(r.Intervals))
}

// TotalCommits returns the summed per-thread commits.
func (r *Results) TotalCommits() uint64 {
	var n uint64
	for _, c := range r.Commits {
		n += c
	}
	return n
}

// results finalises the run.
func (p *Processor) results() *Results {
	// Bring the lazily settled statistics up to date through the final
	// simulated cycle.
	p.settleAccounting(p.cycle)
	// Close a meaningful partial final interval (short runs would
	// otherwise record no intervals at all).
	if p.iqTrue.Cycles()-p.ivStartCycle >= p.intervalCycles/10 {
		p.closeInterval()
	}
	// Close register-file spans still open at the end of the run.
	for _, t := range p.threads {
		for r := 0; r < isa.NumRegs; r++ {
			p.closeRegSpan(t, isa.Reg(r))
			t.regs[r].valid = false
		}
	}

	cycles := p.cycle - p.statsCycle0
	r := &Results{
		Cycles:        cycles,
		NumThreads:    p.n,
		Commits:       make([]uint64, p.n),
		SkippedCycles: p.skippedCycles,

		// Whole-run IQ AVFs report the residual vulnerability after the
		// protection mode's mitigation (identity for the unprotected
		// default); interval AVFs were scaled the same way at close.
		IQAVF:        p.protAVF(p.iqTrue.AVF()),
		IQAVFTagged:  p.protAVF(p.iqTag.AVF()),
		ROBAVF:       p.robAcc.AVF(),
		ROBAVFTagged: p.robTag.AVF(),
		RFAVF:        p.rfAcc.AVF(),

		Intervals: p.intervals,
		RQHist:    p.rqHist,

		L2Misses:       p.mem.L2MissCount,
		Mispredicts:    p.bp.Mispredicts,
		SquashedTotal:  p.squashedTotal,
		SquashedTagged: p.squashedTagged,

		PolicySwitches: p.policySwitches,
		DVMTriggers:    p.dvmTriggers,
		IQHighWater:    p.iq.HighWater(),
	}
	for i, t := range p.threads {
		r.Commits[i] = t.commits
		r.Fetched += t.fetched
		r.WrongPathFetched += t.wrongFetched
		r.Squashed += t.squashed
		r.Flushes += t.flushes
	}
	r.ThroughputIPC = stats.ThroughputIPC(r.Commits, cycles)
	r.HarmonicIPC = stats.HarmonicIPC(r.Commits, cycles)
	r.MaxIQAVF = stats.MaxIQAVF(p.intervals)
	for _, iv := range p.intervals {
		if iv.ROBAVF > r.MaxROBAVF {
			r.MaxROBAVF = iv.ROBAVF
		}
	}

	// FU AVF: every unit's latch bits are vulnerable while it executes
	// an ACE instruction.
	var busyACE uint64
	for c := 0; c < int(isa.NumFUClasses); c++ {
		busyACE += p.fus.BusyCyclesACE[c]
	}
	if units := p.fus.TotalUnits(); units > 0 && cycles > 0 {
		r.FUAVF = float64(busyACE) / (float64(units) * float64(cycles))
	}

	r.IQThreadShare = make([]float64, p.n)
	if total := p.iqTrue.Sum(); total > 0 {
		for i := 0; i < p.n; i++ {
			r.IQThreadShare[i] = float64(p.iqThreadSum[i]) / float64(total)
		}
	}
	r.L1IMissRate = p.mem.L1I.MissRate()
	r.L1DMissRate = p.mem.L1D.MissRate()
	r.L2MissRate = p.mem.L2.MissRate()
	r.DTLBMissRate = p.mem.DTLB.MissRate()
	r.MispredictRate = p.bp.MispredictRate()
	if cycles > 0 {
		r.MeanIQOccupancy = float64(p.occSum) / float64(cycles)
	}
	r.MeanReadyLen = p.rqHist.MeanLen()
	if p.resTaggedCount > 0 {
		r.MeanResidencyTagged = float64(p.resTaggedSum) / float64(p.resTaggedCount)
		r.MeanReadyWaitTagged = float64(p.waitTaggedSum) / float64(p.resTaggedCount)
	}
	if p.resUntaggedCount > 0 {
		r.MeanResidencyUntagged = float64(p.resUntaggedSum) / float64(p.resUntaggedCount)
		r.MeanReadyWaitUntagged = float64(p.waitUntaggedSum) / float64(p.resUntaggedCount)
	}
	return r
}
