package pipeline_test

import (
	"strings"
	"testing"

	"visasim/internal/ace"
	"visasim/internal/config"
	"visasim/internal/pipeline"
	"visasim/internal/trace"
	"visasim/internal/uarch"
	"visasim/internal/workload"
)

// buildStreams assembles profiled oracle streams for the named benchmarks.
func buildStreams(t testing.TB, names []string, budget uint64) []*trace.Stream {
	t.Helper()
	streams := make([]*trace.Stream, len(names))
	for i, name := range names {
		b, err := workload.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := b.Generate()
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ace.Run(prog, b.Params.Seed, 0, budget+8192, 0)
		if err != nil {
			t.Fatal(err)
		}
		prof.Apply(prog)
		streams[i] = trace.NewStream(trace.NewExecutor(prog, b.Params.Seed, i), prof.Bits)
	}
	return streams
}

func newProc(t testing.TB, names []string, mod func(*pipeline.Params)) *pipeline.Processor {
	t.Helper()
	p := pipeline.Params{
		Machine:         config.Default(),
		Scheduler:       uarch.SchedOldestFirst,
		Policy:          pipeline.PolicyICOUNT,
		Streams:         buildStreams(t, names, 80_000),
		MaxInstructions: 20_000,
	}
	if mod != nil {
		mod(&p)
	}
	proc, err := pipeline.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

var cpuMix = []string{"bzip2", "eon", "gcc", "perlbmk"}
var memMix = []string{"mcf", "equake", "vpr", "swim"}

func TestRunDeterministic(t *testing.T) {
	r1 := newProc(t, cpuMix, nil).Run()
	r2 := newProc(t, cpuMix, nil).Run()
	if r1.Cycles != r2.Cycles || r1.IQAVF != r2.IQAVF || r1.Mispredicts != r2.Mispredicts {
		t.Fatalf("runs differ: %d/%d cycles, %v/%v AVF",
			r1.Cycles, r2.Cycles, r1.IQAVF, r2.IQAVF)
	}
	for i := range r1.Commits {
		if r1.Commits[i] != r2.Commits[i] {
			t.Fatalf("thread %d commits differ", i)
		}
	}
}

func TestInvariantsHoldEveryCycle(t *testing.T) {
	proc := newProc(t, cpuMix, func(p *pipeline.Params) { p.MaxInstructions = 4000 })
	for proc.TotalCommits() < 4000 && proc.Cycle() < 400_000 {
		proc.Step()
		if proc.Cycle()%64 == 0 {
			if err := proc.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", proc.Cycle(), err)
			}
		}
	}
	if err := proc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsUnderFlushPolicy(t *testing.T) {
	proc := newProc(t, memMix, func(p *pipeline.Params) {
		p.MaxInstructions = 3000
		p.Policy = pipeline.PolicyFLUSH
	})
	for proc.TotalCommits() < 3000 && proc.Cycle() < 800_000 {
		proc.Step()
		if proc.Cycle()%64 == 0 {
			if err := proc.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", proc.Cycle(), err)
			}
		}
	}
}

// TestInvariantSamplingDuringRun exercises Params.InvariantEvery: a long
// VISA+FLUSH run on the memory-bound mix cross-checks the incremental
// counters against the O(machine-size) walk every 256 cycles, through both
// the warmup and the measured region. Any drift panics inside Run.
func TestInvariantSamplingDuringRun(t *testing.T) {
	proc := newProc(t, memMix, func(p *pipeline.Params) {
		p.MaxInstructions = 6000
		p.WarmupInstructions = 1500
		p.Policy = pipeline.PolicyFLUSH
		p.Scheduler = uarch.SchedVISA
		p.InvariantEvery = 256
	})
	if r := proc.Run(); r.TotalCommits() == 0 {
		t.Fatal("run committed nothing")
	}
}

func TestBudgetReached(t *testing.T) {
	r := newProc(t, cpuMix, nil).Run()
	if got := r.TotalCommits(); got < 20_000 {
		t.Fatalf("committed %d of 20000", got)
	}
	if r.ThroughputIPC <= 0 || r.ThroughputIPC > 8 {
		t.Fatalf("IPC %v implausible", r.ThroughputIPC)
	}
	for i, c := range r.Commits {
		if c == 0 {
			t.Errorf("thread %d starved", i)
		}
	}
}

func TestSingleThread(t *testing.T) {
	r := newProc(t, []string{"gcc"}, nil).Run()
	if r.TotalCommits() < 20_000 {
		t.Fatal("single-thread run under budget")
	}
	if diff := r.HarmonicIPC - r.ThroughputIPC; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("single thread harmonic %v != throughput %v", r.HarmonicIPC, r.ThroughputIPC)
	}
}

func TestWrongPathActivity(t *testing.T) {
	r := newProc(t, cpuMix, nil).Run()
	if r.Mispredicts == 0 {
		t.Fatal("no mispredicts on biased-branch workload")
	}
	if r.WrongPathFetched == 0 || r.Squashed == 0 {
		t.Fatal("no wrong-path activity despite mispredicts")
	}
	if r.SquashedTotal < r.Squashed/2 {
		t.Fatal("squashed tag accounting missing entries")
	}
}

func TestFlushPolicyFlushes(t *testing.T) {
	r := newProc(t, memMix, func(p *pipeline.Params) {
		p.Policy = pipeline.PolicyFLUSH
		p.MaxInstructions = 10_000
	}).Run()
	if r.Flushes == 0 {
		t.Fatal("FLUSH policy never flushed a memory-bound mix")
	}
	base := newProc(t, memMix, func(p *pipeline.Params) { p.MaxInstructions = 10_000 }).Run()
	if r.IQAVF >= base.IQAVF*1.2 {
		t.Fatalf("FLUSH AVF %.3f not below baseline-ish %.3f", r.IQAVF, base.IQAVF)
	}
}

func TestGatingPoliciesReduceOccupancy(t *testing.T) {
	base := newProc(t, memMix, func(p *pipeline.Params) { p.MaxInstructions = 8000 }).Run()
	for _, pol := range []pipeline.FetchPolicyKind{pipeline.PolicySTALL, pipeline.PolicyDG, pipeline.PolicyPDG} {
		r := newProc(t, memMix, func(p *pipeline.Params) {
			p.MaxInstructions = 8000
			p.Policy = pol
		}).Run()
		if r.MeanIQOccupancy >= base.MeanIQOccupancy {
			t.Errorf("%v occupancy %.1f not below ICOUNT's %.1f", pol, r.MeanIQOccupancy, base.MeanIQOccupancy)
		}
		if r.TotalCommits() < 8000 {
			t.Errorf("%v starved the machine", pol)
		}
	}
}

// capController caps the IQ at a fixed size.
type capController struct{ cap int }

func (c capController) Name() string { return "cap" }
func (c capController) Decide(*pipeline.View) pipeline.Decision {
	d := pipeline.NoDecision()
	d.IQLCap = c.cap
	return d
}

func TestIQLCapRespected(t *testing.T) {
	proc := newProc(t, cpuMix, func(p *pipeline.Params) {
		p.MaxInstructions = 5000
		p.Controller = capController{cap: 24}
	})
	for proc.TotalCommits() < 5000 && proc.Cycle() < 400_000 {
		proc.Step()
		if got := proc.IQ().Len(); got > 24 {
			t.Fatalf("cycle %d: IQ occupancy %d above cap", proc.Cycle(), got)
		}
	}
	if proc.TotalCommits() < 5000 {
		t.Fatal("capped machine starved")
	}
}

// gateAllController blocks all dispatch.
type gateAllController struct{}

func (gateAllController) Name() string { return "gate-all" }
func (gateAllController) Decide(v *pipeline.View) pipeline.Decision {
	d := pipeline.NoDecision()
	for i := 0; i < v.NumThreads; i++ {
		d.GateDispatch[i] = true
	}
	return d
}

func TestGateDispatchStallsMachine(t *testing.T) {
	proc := newProc(t, cpuMix, func(p *pipeline.Params) {
		p.MaxInstructions = 1 << 30
		p.MaxCycles = 3000
		p.Controller = gateAllController{}
	})
	r := proc.Run()
	// The pipeline drains whatever was in flight, then commits nothing.
	if r.TotalCommits() > 500 {
		t.Fatalf("gated machine committed %d instructions", r.TotalCommits())
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	warm := newProc(t, cpuMix, func(p *pipeline.Params) {
		p.MaxInstructions = 10_000
		p.WarmupInstructions = 10_000
	}).Run()
	cold := newProc(t, cpuMix, func(p *pipeline.Params) {
		p.MaxInstructions = 10_000
	}).Run()
	if warm.TotalCommits() < 10_000 {
		t.Fatal("warm run under budget")
	}
	// Warmed caches/predictors must not be slower than cold start.
	if warm.ThroughputIPC < cold.ThroughputIPC*0.9 {
		t.Fatalf("warm IPC %.2f well below cold %.2f", warm.ThroughputIPC, cold.ThroughputIPC)
	}
	if warm.L1IMissRate > cold.L1IMissRate+0.01 {
		t.Fatal("warmup did not warm the I-cache stats")
	}
}

func TestVISAPrioritisesTagged(t *testing.T) {
	base := newProc(t, cpuMix, func(p *pipeline.Params) {
		p.MaxInstructions = 40_000
		p.WarmupInstructions = 15_000
	}).Run()
	visa := newProc(t, cpuMix, func(p *pipeline.Params) {
		p.MaxInstructions = 40_000
		p.WarmupInstructions = 15_000
		p.Scheduler = uarch.SchedVISA
	}).Run()
	// The schedulers must actually differ in behaviour...
	if visa.Cycles == base.Cycles && visa.IQAVF == base.IQAVF {
		t.Fatal("VISA run identical to baseline")
	}
	t.Logf("base: wait tagged %.2f untagged %.2f AVF %.3f; visa: wait tagged %.2f untagged %.2f AVF %.3f",
		base.MeanReadyWaitTagged, base.MeanReadyWaitUntagged, base.IQAVF,
		visa.MeanReadyWaitTagged, visa.MeanReadyWaitUntagged, visa.IQAVF)
	// ...and VISA's defining mechanism must hold: once ready, tagged
	// instructions issue ahead of untagged ones, by a clearly larger
	// margin than any composition effect under age-order issue.
	if visa.MeanReadyWaitTagged >= visa.MeanReadyWaitUntagged {
		t.Fatalf("VISA does not favour tagged instructions (%.2f vs %.2f)",
			visa.MeanReadyWaitTagged, visa.MeanReadyWaitUntagged)
	}
	gapBase := base.MeanReadyWaitUntagged - base.MeanReadyWaitTagged
	gapVISA := visa.MeanReadyWaitUntagged - visa.MeanReadyWaitTagged
	if gapVISA <= gapBase {
		t.Fatalf("VISA priority gap %.2f not above baseline's %.2f", gapVISA, gapBase)
	}
}

func TestIntervalsRecorded(t *testing.T) {
	r := newProc(t, cpuMix, func(p *pipeline.Params) { p.MaxInstructions = 130_000 }).Run()
	if len(r.Intervals) == 0 {
		t.Fatal("no intervals recorded")
	}
	var commits uint64
	for i, iv := range r.Intervals {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
		if iv.Cycles != pipeline.IntervalCycles && i != len(r.Intervals)-1 {
			t.Fatalf("interval %d spans %d cycles", i, iv.Cycles)
		}
		if iv.IQAVF < 0 || iv.IQAVF > 1 {
			t.Fatalf("interval %d AVF %v", i, iv.IQAVF)
		}
		commits += iv.Commits
	}
	if commits > r.TotalCommits() {
		t.Fatal("interval commits exceed total")
	}
	if r.MaxIQAVF < r.IQAVF*0.9 {
		t.Fatalf("max interval AVF %.3f below overall %.3f", r.MaxIQAVF, r.IQAVF)
	}
}

func TestParamValidation(t *testing.T) {
	streams := buildStreams(t, []string{"gcc"}, 1000)
	bad := []pipeline.Params{
		{Machine: config.Default(), Streams: nil, MaxInstructions: 1},
		{Machine: config.Default(), Streams: streams, MaxInstructions: 0},
		{Machine: config.Machine{}, Streams: streams, MaxInstructions: 1},
	}
	for i, p := range bad {
		if _, err := pipeline.New(p); err == nil {
			t.Errorf("params %d accepted", i)
		}
	}
}

func TestDumpState(t *testing.T) {
	proc := newProc(t, cpuMix, func(p *pipeline.Params) { p.MaxInstructions = 2000 })
	for proc.TotalCommits() < 500 {
		proc.Step()
	}
	var sb strings.Builder
	proc.DumpState(&sb)
	out := sb.String()
	for _, want := range []string{"cycle", "thread 0", "thread 3", "issue queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestIQThreadShare(t *testing.T) {
	// Two compute-bound and two memory-bound threads: the memory-bound
	// pair's miss-dependent chains dominate the IQ's ACE-bit-cycles.
	r := newProc(t, []string{"gcc", "mcf", "vpr", "perlbmk"}, func(p *pipeline.Params) {
		p.MaxInstructions = 15_000
	}).Run()
	if len(r.IQThreadShare) != 4 {
		t.Fatalf("share vector %v", r.IQThreadShare)
	}
	sum := 0.0
	for _, s := range r.IQThreadShare {
		if s < 0 || s > 1 {
			t.Fatalf("share out of range: %v", r.IQThreadShare)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
	memShare := r.IQThreadShare[1] + r.IQThreadShare[2] // mcf, vpr
	cpuShare := r.IQThreadShare[0] + r.IQThreadShare[3] // gcc, perlbmk
	t.Logf("shares: %v (mem %.2f, cpu %.2f)", r.IQThreadShare, memShare, cpuShare)
	if memShare <= cpuShare {
		t.Errorf("memory-bound threads should dominate IQ vulnerability: mem %.2f vs cpu %.2f",
			memShare, cpuShare)
	}
}
