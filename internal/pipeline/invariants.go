package pipeline

import (
	"fmt"

	"visasim/internal/avf"
	"visasim/internal/uarch"
)

// CheckInvariants validates cross-structure bookkeeping; tests call it
// between steps to catch accounting drift early. It is O(machine size) and
// intended for testing, not the simulation hot path.
func (p *Processor) CheckInvariants() error {
	// The incrementally maintained census must match a fresh walk, and
	// the scheduler's ready list must mirror the ready residents in age
	// order.
	c := p.iq.Census()
	if walk := p.iq.CensusWalk(); c != walk {
		return fmt.Errorf("incremental census %+v != walked census %+v", c, walk)
	}
	if c.Ready+c.Waiting != p.iq.Len() {
		return fmt.Errorf("census %d+%d != IQ len %d", c.Ready, c.Waiting, p.iq.Len())
	}
	if err := p.iq.CheckReady(); err != nil {
		return err
	}

	// AVF current counters must equal a fresh walk of the structures.
	var iqTrue, iqTag uint64
	p.iq.ForEach(func(u *uarch.Uop) {
		iqTrue += iqBitsOf(u, false)
		iqTag += iqBitsOf(u, true)
	})
	if iqTrue != p.iqTrue.Current() || iqTag != p.iqTag.Current() {
		return fmt.Errorf("IQ ACE bits walk (%d,%d) != counters (%d,%d)",
			iqTrue, iqTag, p.iqTrue.Current(), p.iqTag.Current())
	}
	var robBits, robTagBits uint64
	perThreadIQ := make([]int, p.n)
	for _, t := range p.threads {
		t.rob.ForEach(func(u *uarch.Uop) {
			robBits += robBitsOf(u)
			robTagBits += avf.ROBBits(u.WrongPath, u.ACETag)
			if u.Stage == uarch.StageInIQ {
				perThreadIQ[t.id]++
			}
			if u.Stage == uarch.StageSquashed || u.Stage == uarch.StageCommitted {
				panic("dead uop in ROB")
			}
		})
		// Rename-map entries must be live in-flight uops of this
		// thread: a committed or squashed (possibly recycled) entry
		// would mean the pool release protocol leaked a reference.
		for r, w := range t.renameMap {
			if w == nil {
				continue
			}
			if int(w.Thread) != t.id || w.Stage == uarch.StageCommitted || w.Stage == uarch.StageSquashed || w.Stage == uarch.StageFetched {
				return fmt.Errorf("thread %d renameMap[%d] holds a non-in-flight uop (stage %v)", t.id, r, w.Stage)
			}
		}
	}
	if robBits != p.robAcc.Current() {
		return fmt.Errorf("ROB ACE bits walk %d != counter %d", robBits, p.robAcc.Current())
	}
	if robTagBits != p.robTag.Current() {
		return fmt.Errorf("ROB tag bits walk %d != counter %d", robTagBits, p.robTag.Current())
	}
	for i, t := range p.threads {
		if got := p.iq.ThreadLen(i); got != perThreadIQ[i] {
			return fmt.Errorf("thread %d IQ count %d != ROB walk %d", i, got, perThreadIQ[i])
		}
		// Policy counters never go negative.
		if t.outstandingL2 < 0 || t.outstandingL1D < 0 || t.pdgInFlight < 0 || t.fqACETag < 0 {
			return fmt.Errorf("thread %d negative policy counter (%d,%d,%d,%d)",
				i, t.outstandingL2, t.outstandingL1D, t.pdgInFlight, t.fqACETag)
		}
		// LSQ entries must be live memory uops of this thread.
		var lsqErr error
		t.lsq.ForEach(func(u *uarch.Uop) {
			if !u.Kind().IsMem() || int(u.Thread) != t.id || u.Stage == uarch.StageSquashed {
				lsqErr = fmt.Errorf("thread %d LSQ holds invalid uop %v", t.id, u.Stage)
			}
		})
		if lsqErr != nil {
			return lsqErr
		}
	}
	return nil
}

func iqBitsOf(u *uarch.Uop, tagged bool) uint64 {
	ace := u.ACE
	if tagged {
		ace = u.ACETag
	}
	return avf.IQBits(u.WrongPath, ace)
}

func robBitsOf(u *uarch.Uop) uint64 {
	return avf.ROBBits(u.WrongPath, u.ACE)
}
