package pipeline

import (
	"testing"

	"visasim/internal/config"
	"visasim/internal/iqorg"
	"visasim/internal/isa"
)

// TestWheelCoversModeledLatencies pins the completion wheel's sizing
// invariant: the largest completion delta any issued uop can carry — the
// worst-case data access (DTLB miss + L1D miss + L2 miss to memory) plus
// the slowest functional-unit latency and the largest protection-mode
// wakeup adder — must stay strictly inside wheelSize, or wheelPush panics
// mid-run. Anyone growing a latency or adding a protection mode trips this
// test before they trip the panic.
func TestWheelCoversModeledLatencies(t *testing.T) {
	m := config.Default()

	// Worst-case memory access as the hierarchy models it: a DTLB miss
	// pays its penalty, then the access misses L1D and L2 and walks to
	// memory through each level's latency.
	worstData := m.DTLB.MissPenalty + m.L1D.HitLatency + m.L2.HitLatency + m.MemoryLatency

	maxFU := 0
	for k := isa.Kind(0); k < isa.Kind(isa.NumKinds); k++ {
		if l := k.Latency(); l > maxFU {
			maxFU = l
		}
	}

	maxWake := 0
	for _, p := range iqorg.Protections() {
		if w := p.Cost().WakeupLatency; w > maxWake {
			maxWake = w
		}
	}

	worst := worstData + maxFU + maxWake
	if worst >= wheelSize {
		t.Fatalf("worst-case completion delta %d (data %d + FU %d + wakeup %d) >= wheelSize %d",
			worst, worstData, maxFU, maxWake, wheelSize)
	}
	t.Logf("worst-case completion delta %d of wheelSize %d (data %d, FU %d, wakeup %d)",
		worst, wheelSize, worstData, maxFU, maxWake)
}
