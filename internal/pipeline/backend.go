package pipeline

import (
	"fmt"

	"visasim/internal/avf"
	"visasim/internal/cache"
	"visasim/internal/isa"
	"visasim/internal/uarch"
)

// dispatch moves decoded uops from the per-thread fetch queues into the
// shared issue queue (and ROB/LSQ), in program order per thread with
// round-robin arbitration across threads, subject to the controller's
// decision (IQL cap, waiting cap, per-thread gating).
func (p *Processor) dispatch(now uint64) {
	iqCap := p.iq.Size()
	if p.dec.IQLCap >= 0 && p.dec.IQLCap < iqCap {
		iqCap = p.dec.IQLCap
	}
	width := p.cfg.IssueWidth
	start := int(now) % p.n
	for i := 0; i < p.n && width > 0; i++ {
		t := p.threads[(start+i)%p.n]
		if p.dec.GateDispatch[t.id] {
			continue
		}
		for width > 0 {
			// Head gating reads the fetch queue's dense SoA rings; the
			// uop itself is dereferenced only once dispatch is certain.
			dr, ok := t.fq.HeadReadyAt()
			if !ok || dr > now {
				break
			}
			if t.rob.Full() || (t.fq.HeadIsMem() && t.lsq.Full()) {
				break
			}
			if p.iq.Len() >= iqCap {
				// Shared structure exhausted (or capped): no
				// thread can dispatch.
				return
			}
			if !p.org.CanAccept(t.id) {
				// Organization-level admission: a partitioned queue's
				// per-thread watermark, or a circular-mode queue's
				// reduced usable capacity.
				break
			}
			// Peek readiness for the waiting-cap check before
			// committing to dispatch.
			if p.dec.WaitingCap >= 0 && p.iq.Census().Waiting >= p.dec.WaitingCap && p.wouldWait(t, t.fq.Head()) {
				break // in-order dispatch: this thread stalls
			}
			p.dispatchUop(t, t.fqPop(), now)
			width--
		}
	}
}

// schedSources returns the operands u must wait for before issuing. Stores
// are split STA/STD style: address generation (Src2) gates issue, while the
// data operand (Src1) is only needed at commit, by which point its older
// producer has necessarily committed.
func schedSources(u *uarch.Uop) [2]isa.Reg {
	in := u.Static()
	if in.Kind == isa.Store {
		return [2]isa.Reg{in.Src2, isa.RegNone}
	}
	return [2]isa.Reg{in.Src1, in.Src2}
}

// wouldWait reports whether u would enter the IQ with unavailable sources.
func (p *Processor) wouldWait(t *thread, u *uarch.Uop) bool {
	for _, r := range schedSources(u) {
		if r == isa.RegNone || r == isa.RegZero {
			continue
		}
		if w := t.renameMap[r]; w != nil && w.Stage < uarch.StageCompleted {
			return true
		}
	}
	return false
}

// dispatchUop renames u and inserts it into the IQ, ROB and (for memory
// operations) LSQ, updating AVF accounting.
func (p *Processor) dispatchUop(t *thread, u *uarch.Uop, now uint64) {
	in := u.Static()
	pending := int8(0)
	for _, r := range schedSources(u) {
		if r == isa.RegNone || r == isa.RegZero {
			continue
		}
		if w := t.renameMap[r]; w != nil && w.Stage < uarch.StageCompleted {
			pending++
			w.AddDependent(u)
		}
	}
	u.SrcPending = pending
	if pending == 0 {
		u.ReadyAt = now
	}
	if in.HasDest() {
		if pw := t.renameMap[in.Dest]; pw != nil {
			pw.NextWriter = u
		}
		u.PrevWriter = t.renameMap[in.Dest]
		t.renameMap[in.Dest] = u
	}
	t.rob.Push(u)
	if u.Kind().IsMem() {
		t.lsq.Push(u)
	}
	// Settle the lazily accumulated occupancy statistics through the
	// cycles the old occupancy covered before this entry changes them.
	p.settleIQStats(now)
	p.iq.Insert(u)
	u.DispatchedAt = now
	p.iqTrue.AddAt(avf.IQBits(u.WrongPath, u.ACE), now)
	p.iqTag.AddAt(avf.IQBits(u.WrongPath, u.ACETag), now)
	p.iqThreadAce[u.Thread] += avf.IQBits(u.WrongPath, u.ACE)
	p.robAcc.AddAt(avf.ROBBits(u.WrongPath, u.ACE), now)
	p.robTag.AddAt(avf.ROBBits(u.WrongPath, u.ACETag), now)
}

// iqDrain removes u from the issue queue, reversing its AVF contribution.
func (p *Processor) iqDrain(u *uarch.Uop) {
	now := p.cycle
	p.settleIQStats(now)
	p.iq.Remove(u)
	p.iqTrue.SubAt(avf.IQBits(u.WrongPath, u.ACE), now)
	p.iqTag.SubAt(avf.IQBits(u.WrongPath, u.ACETag), now)
	p.iqThreadAce[u.Thread] -= avf.IQBits(u.WrongPath, u.ACE)
}

// issue selects up to IssueWidth ready instructions per the scheduler
// (oldest-first or VISA) and starts them on function units. Loads honour
// the LSQ's memory-dependence discipline and access the cache hierarchy;
// L2 misses are recorded and may request a FLUSH.
func (p *Processor) issue(now uint64) {
	// Census was snapshotted after writeback this cycle and nothing touches
	// the queue in between, so an empty ready set means Select would return
	// no candidates (Select is side-effect-free in every organization).
	if p.census.Ready == 0 {
		return
	}
	cands := p.org.Select(p.sched)
	issued := 0
	for _, slot := range cands {
		if issued >= p.cfg.IssueWidth {
			break
		}
		u := p.iq.At(int(slot))
		if u == nil || u.Stage != uarch.StageInIQ {
			continue
		}
		t := p.threads[u.Thread]
		if u.Kind() == isa.Load {
			disp := t.lsq.CheckLoad(u)
			if disp == uarch.LoadBlocked {
				continue
			}
			if !p.fus.TryIssue(u, now) {
				continue
			}
			p.iqDrain(u)
			if disp == uarch.LoadForward {
				u.CompleteAt = now + 1
			} else {
				res := p.mem.Data(u.Dyn.Addr, now, false)
				u.CompleteAt = res.ReadyAt
				if res.Level != cache.HitL1 {
					u.MissedL1 = true
					t.outstandingL1D++
				}
				if res.L2Miss() {
					u.L2Miss = true
					t.outstandingL2++
					if p.pol.flushOnL2Miss(p.dec.UseFlush) {
						p.flushReq = append(p.flushReq, u)
					}
				}
			}
		} else {
			if !p.fus.TryIssue(u, now) {
				continue
			}
			p.iqDrain(u)
			u.CompleteAt = now + uint64(u.Kind().Latency())
		}
		if p.protWake != 0 {
			// Protection logic in the result-broadcast path (ECC
			// correction) delays every wakeup.
			u.CompleteAt += p.protWake
		}
		u.Stage = uarch.StageIssued
		u.IssuedAt = now
		// Ready→issue wait is sampled on the integer-ALU class only:
		// its eight units never bind, so the wait isolates the
		// scheduler's ordering from FU contention and LSQ blocking.
		if u.Kind().FU() == isa.FUIntALU {
			if u.ACETag {
				p.resTaggedSum += now - u.DispatchedAt
				p.waitTaggedSum += now - u.ReadyAt
				p.resTaggedCount++
			} else {
				p.resUntaggedSum += now - u.DispatchedAt
				p.waitUntaggedSum += now - u.ReadyAt
				p.resUntaggedCount++
			}
		}
		p.wheelPush(u, now)
		issued++
	}
}

// processFlushes applies FLUSH to threads whose loads missed to memory this
// cycle: squash everything younger than the missing load and stall fetch
// until the line returns.
func (p *Processor) processFlushes(now uint64) {
	for _, load := range p.flushReq {
		t := p.threads[load.Thread]
		if load.Stage == uarch.StageSquashed {
			continue // an earlier flush this cycle already covered it
		}
		p.squashAfter(t, load)
		t.flushStall = true
		t.flushes++
		// Resume fetch right after the load once the miss resolves.
		t.pc = load.Dyn.NextPC
		if load.WrongPath {
			t.onTrace = false
		} else {
			t.onTrace = true
			t.streamPos = load.StreamPos + 1
		}
	}
	p.flushReq = p.flushReq[:0]
}

// complete processes this cycle's completion-wheel slot: writeback, wakeup,
// policy counter maintenance and branch-misprediction resolution.
func (p *Processor) complete(now uint64) {
	slot := now % wheelSize
	// The occupancy bit is authoritative (set iff the slot list is
	// non-empty), so an empty slot costs one word test — no slice header
	// load, and no store that would drag a GC write barrier into every
	// quiet cycle.
	if p.wheelBits[slot/64]>>(slot%64)&1 == 0 {
		return
	}
	list := p.wheel[slot]
	p.wheel[slot] = list[:0]
	p.wheelBits[slot/64] &^= 1 << (slot % 64)
	p.wheelCount -= len(list)
	for _, u := range list {
		t := p.threads[u.Thread]
		// Miss-tracking counters drain even for squashed uops: the
		// line fill completes regardless.
		if u.Kind() == isa.Load {
			if u.MissedL1 {
				t.outstandingL1D--
			}
			if u.PDGPredMiss {
				t.pdgInFlight--
			}
			if u.L2Miss {
				t.outstandingL2--
				if t.flushStall && t.outstandingL2 == 0 {
					t.flushStall = false
				}
			}
		}
		if u.Stage != uarch.StageIssued {
			// Squashed while executing: the wheel entry was the last
			// reference keeping the allocation alive.
			if u.Stage == uarch.StageSquashed {
				p.pool.Put(u)
			}
			continue
		}
		if u.Kind() == isa.Load {
			p.pol.pdgTrain(u.Static().PC, u.MissedL1)
		}
		u.Stage = uarch.StageCompleted
		// Mirror the stage into the ROB's completed-flag ring: every
		// issued, unsquashed uop is resident in its thread's ROB.
		t.rob.MarkCompleted(u)
		for _, ref := range u.Dependents() {
			d := ref.U
			// A stale generation is a squashed consumer whose
			// allocation was recycled; skip it.
			if !ref.Live() || d.Stage != uarch.StageInIQ {
				continue
			}
			d.SrcPending--
			if d.SrcPending == 0 {
				p.iq.Wake(d)
				d.ReadyAt = now
			}
			if d.SrcPending < 0 {
				panic("pipeline: negative source-pending count")
			}
		}
		u.ClearDependents()
		if u.Mispredicted && !u.WrongPath {
			p.resolveMispredict(t, u, now)
		}
	}
}

// resolveMispredict repairs predictor state, squashes the wrong path and
// redirects fetch.
func (p *Processor) resolveMispredict(t *thread, u *uarch.Uop, now uint64) {
	p.bp.Restore(t.id, u.CP)
	if u.Kind() == isa.Branch {
		p.bp.FixHistory(t.id, u.Dyn.Taken)
	}
	p.bp.NoteMispredict()
	t.mispredicts++

	p.squashAfter(t, u)
	if t.pendingMispredict != u {
		panic("pipeline: resolving a mispredict that is not pending")
	}
	t.pendingMispredict = nil
	t.onTrace = true
	t.streamPos = u.StreamPos + 1
	t.pc = u.Dyn.NextPC
	if redirect := now + uint64(p.cfg.MispredictPenalty); redirect > t.stallUntil {
		t.stallUntil = redirect
	}
}

// squashAfter removes every uop of t younger than u (which must be in t's
// ROB) from the machine, and empties the fetch queue.
func (p *Processor) squashAfter(t *thread, u *uarch.Uop) {
	for {
		y := t.rob.Tail()
		if y == nil {
			panic("pipeline: squash target not in ROB")
		}
		if y == u {
			break
		}
		t.rob.PopTail()
		p.squashUop(t, y)
	}
	for t.fq.Len() > 0 {
		f := t.fqPop()
		p.releasePredMiss(t, f)
		f.Stage = uarch.StageSquashed
		if f == t.pendingMispredict {
			t.pendingMispredict = nil
		}
		p.noteSquashed(t, f)
		// Never dispatched: nothing else references it.
		p.pool.Put(f)
	}
}

// releasePredMiss returns a squashed, never-issued load's PDG reservation.
// Must run before the uop's stage changes to Squashed; issued loads release
// theirs when their completion-wheel entry fires.
func (p *Processor) releasePredMiss(t *thread, u *uarch.Uop) {
	if u.PDGPredMiss && u.Stage < uarch.StageIssued {
		u.PDGPredMiss = false
		t.pdgInFlight--
	}
}

// squashUop reverses a dispatched uop's machine state.
func (p *Processor) squashUop(t *thread, y *uarch.Uop) {
	p.releasePredMiss(t, y)
	// Issued-but-incomplete uops stay referenced by the completion wheel;
	// their allocation is recycled when that slot fires.
	onWheel := y.Stage == uarch.StageIssued
	switch y.Stage {
	case uarch.StageInIQ:
		p.iqDrain(y)
	case uarch.StageIssued, uarch.StageCompleted:
		// Issued uops stay on the wheel; complete() skips them.
	default:
		panic(fmt.Sprintf("pipeline: squashing uop in stage %v", y.Stage))
	}
	if y.LSQSlot >= 0 {
		t.lsq.Remove(y)
	}
	in := y.Static()
	if in.HasDest() {
		if t.renameMap[in.Dest] == y {
			t.renameMap[in.Dest] = y.PrevWriter
		}
		// Squash runs youngest-first, so y's own NextWriter is already
		// dead and unhooked; y in turn unhooks from its predecessor.
		if pw := y.PrevWriter; pw != nil && pw.NextWriter == y {
			pw.NextWriter = nil
		}
	}
	if y == t.pendingMispredict {
		t.pendingMispredict = nil
	}
	p.robAcc.SubAt(avf.ROBBits(y.WrongPath, y.ACE), p.cycle)
	p.robTag.SubAt(avf.ROBBits(y.WrongPath, y.ACETag), p.cycle)
	y.Stage = uarch.StageSquashed
	p.noteSquashed(t, y)
	if !onWheel {
		p.pool.Put(y)
	}
}

// noteSquashed records squashed-instruction tag statistics (the paper's
// "83% accuracy including squashed instructions" figure: a squashed
// instruction is un-ACE, so a set tag is a false positive).
func (p *Processor) noteSquashed(t *thread, y *uarch.Uop) {
	t.squashed++
	p.squashedTotal++
	if y.ACETag {
		p.squashedTagged++
	}
}

// commit retires completed uops in order per thread, up to CommitWidth
// total per cycle, round-robin across threads.
func (p *Processor) commit(now uint64) {
	width := p.cfg.CommitWidth
	start := int(now) % p.n
	for i := 0; i < p.n && width > 0; i++ {
		t := p.threads[(start+i)%p.n]
		for width > 0 {
			// The completed-flag ring answers the common "head still in
			// flight" case without touching the uop.
			if !t.rob.HeadCompleted() {
				break
			}
			p.commitUop(t, t.rob.Head(), now)
			width--
		}
	}
}

func (p *Processor) commitUop(t *thread, u *uarch.Uop, now uint64) {
	if u.WrongPath {
		panic("pipeline: committing a wrong-path uop")
	}
	t.rob.Pop()
	u.Stage = uarch.StageCommitted
	u.PrevWriter = nil // release the rename-history chain

	in := u.Static()
	// Unhook from the rename structures so the allocation can be
	// recycled: a committed writer is indistinguishable from "no
	// in-flight writer" to every rename-map reader.
	if w := u.NextWriter; w != nil && w.PrevWriter == u {
		w.PrevWriter = nil
	}
	u.NextWriter = nil
	if in.HasDest() && t.renameMap[in.Dest] == u {
		t.renameMap[in.Dest] = nil
	}
	// Register-file AVF: reads refresh the value's last-use time;
	// a write closes the previous value's vulnerable span.
	for _, r := range [2]isa.Reg{in.Src1, in.Src2} {
		if r == isa.RegNone || r == isa.RegZero {
			continue
		}
		t.regs[r].lastRead = now
	}
	if in.HasDest() {
		p.closeRegSpan(t, in.Dest)
		t.regs[in.Dest] = regLife{writeCycle: now, lastRead: now, ace: u.ACE, valid: true}
	}

	switch in.Kind {
	case isa.Store:
		p.mem.Data(u.Dyn.Addr, now, true)
		t.lsq.Remove(u)
	case isa.Load:
		t.lsq.Remove(u)
	case isa.Branch:
		p.bp.Resolve(t.id, in.PC, u.CP.History, u.Dyn.Taken)
		if u.Dyn.Taken {
			p.bp.BTBInsert(in.PC, in.Target, now)
		}
	case isa.Jump, isa.Call:
		p.bp.BTBInsert(in.PC, in.Target, now)
	}

	p.robAcc.SubAt(avf.ROBBits(u.WrongPath, u.ACE), now)
	p.robTag.SubAt(avf.ROBBits(u.WrongPath, u.ACETag), now)
	t.commits++
	p.totalCommits++
	t.stream.Release(u.StreamPos + 1)
	p.pool.Put(u)
}

// closeRegSpan charges the register's previous value lifetime to RF AVF.
func (p *Processor) closeRegSpan(t *thread, r isa.Reg) {
	old := &t.regs[r]
	if old.valid && old.ace && old.lastRead > old.writeCycle {
		p.rfAcc.AddSpan(avf.RegBits, old.lastRead-old.writeCycle)
	}
}
