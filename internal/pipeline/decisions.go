package pipeline

import "visasim/internal/decision"

// This file is the pipeline side of decision tracing and counterfactual
// replay (DESIGN.md §10): edge-detecting the controller's effective
// directive into decision.Events, and applying a forced-action schedule on
// top of the live controller. Recording is pure observation — a run with a
// sink attached simulates the exact same machine as one without — and an
// empty schedule forces nothing, which is what makes an untouched replay
// byte-identical to the recorded run.

// gateMask packs the per-thread dispatch gates of d into one bit per
// thread (MaxThreads is 8, so a uint8 always fits).
func gateMask(d *Decision, n int) uint8 {
	var m uint8
	for i := 0; i < n; i++ {
		if d.GateDispatch[i] {
			m |= 1 << i
		}
	}
	return m
}

// applyForced overlays the schedule's overrides for this cycle onto the
// controller's decision and reports whether any field was forced.
func (p *Processor) applyForced(now uint64) bool {
	act, mask, any := p.forced.OverridesAt(now)
	if !any {
		return false
	}
	if mask&decision.ForceIQLCap != 0 {
		p.dec.IQLCap = int(act.IQLCap)
	}
	if mask&decision.ForceWaitingCap != 0 {
		p.dec.WaitingCap = int(act.WaitingCap)
	}
	if mask&decision.ForceUseFlush != 0 {
		p.dec.UseFlush = act.UseFlush
	}
	if mask&decision.ForceGates != 0 {
		for i := 0; i < p.n; i++ {
			p.dec.GateDispatch[i] = act.GateMask&(1<<i) != 0
		}
	}
	return true
}

// snapshotInputs projects the controller-visible View into the portable
// trace form.
func snapshotInputs(v *View) decision.Inputs {
	return decision.Inputs{
		IntervalIndex:    int32(v.IntervalIndex),
		SampleIndex:      int32(v.SampleIndex),
		IQLen:            int32(v.IQLen),
		ReadyLen:         int32(v.ReadyLen),
		WaitingLen:       int32(v.WaitingLen),
		PrevIPC:          v.PrevIPC,
		PrevMeanReadyLen: v.PrevMeanReadyLen,
		PrevL2Misses:     v.PrevL2Misses,
		SampleAVF:        v.SampleAVFTag,
		IntervalAVF:      v.IntervalAVFTagSoFar,
	}
}

// snapshotAction projects the effective decision into the portable trace
// form.
func snapshotAction(d *Decision, n int) decision.Action {
	return decision.Action{
		IQLCap:     int32(d.IQLCap),
		WaitingCap: int32(d.WaitingCap),
		UseFlush:   d.UseFlush,
		GateMask:   gateMask(d, n),
	}
}

// noteDecision closes the decision phase of a cycle: it advances the
// telemetry counters (policySwitches, dvmTriggers — semantics unchanged
// from before tracing existed) and, when a sink is attached, emits one
// event per edge. v is the View the controller decided from; haveView is
// false on controller-less runs, in which case the snapshot is assembled
// lazily and only if an event actually fires (so tracing a base run stays
// free).
func (p *Processor) noteDecision(now uint64, v *View, haveView bool) {
	flushChanged := p.dec.UseFlush != p.prevUseFlush
	capped := p.dec.WaitingCap >= 0
	capChanged := capped != p.prevWaitCapped
	iqlChanged := p.dec.IQLCap != p.recPrevIQLCap
	gm := gateMask(&p.dec, p.n)
	gateChanged := gm != p.recPrevGate

	if flushChanged {
		p.policySwitches++
	}
	if capChanged && capped {
		p.dvmTriggers++
	}

	if p.sink != nil {
		sampleFresh := haveView && p.sink.Level() >= 2 && v.SampleIndex != p.recPrevSample
		if flushChanged || capChanged || iqlChanged || gateChanged || sampleFresh {
			if !haveView {
				*v = p.view(now)
				haveView = true
			}
			ev := decision.Event{
				Cycle:  now,
				Forced: p.decForced,
				Inputs: snapshotInputs(v),
				Action: snapshotAction(&p.dec, p.n),
			}
			// Fixed emission order keeps same-cycle events — and therefore
			// the encoded trace — deterministic.
			if flushChanged {
				ev.Kind = decision.KindPolicySwitch
				p.sink.Record(ev)
			}
			if capChanged {
				if capped {
					ev.Kind = decision.KindDVMTrigger
				} else {
					ev.Kind = decision.KindDVMRelease
				}
				p.sink.Record(ev)
			}
			if iqlChanged {
				ev.Kind = decision.KindIQLCap
				p.sink.Record(ev)
			}
			if gateChanged {
				ev.Kind = decision.KindGate
				p.sink.Record(ev)
			}
			if sampleFresh {
				ev.Kind = decision.KindSample
				p.sink.Record(ev)
			}
		}
		if haveView {
			p.recPrevSample = v.SampleIndex
		}
	}

	p.prevUseFlush = p.dec.UseFlush
	p.prevWaitCapped = capped
	p.recPrevIQLCap = p.dec.IQLCap
	p.recPrevGate = gm
}
