package pipeline

// FetchPolicyKind selects the SMT front-end fetch policy. All policies use
// ICOUNT priority ordering (the thread with the fewest in-flight front-end
// instructions fetches first); the advanced policies add long-latency-load
// gating on top, per their original papers:
//
//	STALL (Tullsen & Brown, MICRO'01): stop fetching for a thread with an
//	outstanding L2 miss.
//	FLUSH (Tullsen & Brown, MICRO'01): additionally squash the thread's
//	instructions after the missing load, freeing its pipeline resources.
//	DG — data gating (El-Moursy & Albonesi, HPCA'03): stop fetching for a
//	thread with any outstanding L1 data-cache miss.
//	PDG — predictive data gating (ibid.): predict which loads will miss
//	at fetch time and gate while any predicted-miss load is in flight.
type FetchPolicyKind uint8

// Fetch policies.
const (
	PolicyICOUNT FetchPolicyKind = iota
	PolicySTALL
	PolicyFLUSH
	PolicyDG
	PolicyPDG

	numPolicies
)

// NumPolicies is the number of fetch policies.
const NumPolicies = int(numPolicies)

var policyNames = [...]string{
	PolicyICOUNT: "ICOUNT",
	PolicySTALL:  "STALL",
	PolicyFLUSH:  "FLUSH",
	PolicyDG:     "DG",
	PolicyPDG:    "PDG",
}

func (k FetchPolicyKind) String() string {
	if int(k) < len(policyNames) {
		return policyNames[k]
	}
	return "policy(?)"
}

// AllPolicies lists every fetch policy.
func AllPolicies() []FetchPolicyKind {
	return []FetchPolicyKind{PolicyICOUNT, PolicySTALL, PolicyFLUSH, PolicyDG, PolicyPDG}
}

// pdgTableSize is the PDG load-miss predictor capacity (2-bit counters).
const pdgTableSize = 4096

// policyState holds fetch-policy bookkeeping beyond the per-thread
// counters (which live in thread).
type policyState struct {
	kind FetchPolicyKind
	pdg  []uint8 // 2-bit miss-prediction counters, PC-indexed
}

func newPolicyState(kind FetchPolicyKind) *policyState {
	ps := &policyState{kind: kind}
	if kind == PolicyPDG {
		ps.pdg = make([]uint8, pdgTableSize)
	}
	return ps
}

// gated reports whether the policy forbids fetching for t this cycle.
// useFlush indicates FLUSH semantics are active (either the base policy is
// FLUSH or opt2/DVM engaged it).
func (ps *policyState) gated(t *thread, useFlush bool) bool {
	if useFlush && (t.flushStall || t.outstandingL2 > 0) {
		return true
	}
	switch ps.kind {
	case PolicySTALL:
		return t.outstandingL2 > 0
	case PolicyFLUSH:
		return t.flushStall || t.outstandingL2 > 0
	case PolicyDG:
		return t.outstandingL1D > 0
	case PolicyPDG:
		return t.pdgInFlight > 0
	default:
		return false
	}
}

// flushOnL2Miss reports whether an L2 data miss should squash the thread
// behind the missing load.
func (ps *policyState) flushOnL2Miss(useFlush bool) bool {
	return useFlush || ps.kind == PolicyFLUSH
}

func (ps *policyState) pdgIndex(pc uint64) int {
	return int(pc>>2) & (pdgTableSize - 1)
}

// pdgPredictMiss predicts whether the load at pc will miss the L1D.
func (ps *policyState) pdgPredictMiss(pc uint64) bool {
	if ps.pdg == nil {
		return false
	}
	return ps.pdg[ps.pdgIndex(pc)] >= 2
}

// pdgTrain updates the miss predictor with a load's actual behaviour.
func (ps *policyState) pdgTrain(pc uint64, missed bool) {
	if ps.pdg == nil {
		return
	}
	i := ps.pdgIndex(pc)
	c := ps.pdg[i]
	if missed {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	ps.pdg[i] = c
}
