package pipeline

import (
	"testing"

	"visasim/internal/isa"
	"visasim/internal/trace"
	"visasim/internal/uarch"
)

func fqUop(tag bool) *uarch.Uop {
	in := &isa.Inst{Kind: isa.IntALU, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, ACETag: tag}
	return &uarch.Uop{Dyn: trace.DynInst{Static: in}, ACETag: tag, IQSlot: -1, LSQSlot: -1}
}

func TestFetchQueueFIFO(t *testing.T) {
	q := newFetchQueue(3)
	a, b, c := fqUop(false), fqUop(true), fqUop(false)
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Head() != a || q.Pop() != a || q.Pop() != b {
		t.Fatal("FIFO order broken")
	}
	q.Push(a) // wraparound
	if q.Pop() != c || q.Pop() != a {
		t.Fatal("wraparound order broken")
	}
	if q.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestFetchQueueOverflowPanics(t *testing.T) {
	q := newFetchQueue(1)
	q.Push(fqUop(false))
	defer func() {
		if recover() == nil {
			t.Fatal("overflow must panic")
		}
	}()
	q.Push(fqUop(false))
}

func TestThreadFqTagCounting(t *testing.T) {
	th := &thread{fq: newFetchQueue(8)}
	th.fqPush(fqUop(true))
	th.fqPush(fqUop(false))
	th.fqPush(fqUop(true))
	if th.fqACETag != 2 {
		t.Fatalf("fqACETag = %d", th.fqACETag)
	}
	th.fqPop()
	if th.fqACETag != 1 {
		t.Fatalf("fqACETag after pop = %d", th.fqACETag)
	}
	th.fq.Drain(func(*uarch.Uop) {})
	// Drain bypasses fqPop deliberately (callers adjust); counting via
	// fqPop only.
}

func TestICountKey(t *testing.T) {
	iq := uarch.NewIQ(8)
	th := &thread{id: 0, fq: newFetchQueue(8)}
	th.fqPush(fqUop(false))
	th.fqPush(fqUop(false))
	u := fqUop(false)
	u.Thread = 0
	iq.Insert(u)
	if got := th.icount(iq); got != 3 {
		t.Fatalf("icount = %d, want 3", got)
	}
}

func TestNoDecisionNeutral(t *testing.T) {
	d := NoDecision()
	if d.IQLCap >= 0 || d.WaitingCap >= 0 || d.UseFlush {
		t.Fatal("NoDecision is not neutral")
	}
	for _, g := range d.GateDispatch {
		if g {
			t.Fatal("NoDecision gates a thread")
		}
	}
}
