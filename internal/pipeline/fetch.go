package pipeline

import (
	"fmt"

	"visasim/internal/isa"
	"visasim/internal/trace"
	"visasim/internal/uarch"
)

// fetchCand is one thread competing for fetch slots this cycle.
type fetchCand struct {
	t     *thread
	count int32
	gated bool
}

// fetch runs the front end for one cycle: order threads by ICOUNT, apply
// the policy's gating, and fetch up to FetchWidth instructions from up to
// MaxFetchThreads threads (ICOUNT.2.8), stopping per thread at a
// predicted-taken branch or an I-cache line boundary.
func (p *Processor) fetch(now uint64) {
	useFlush := p.dec.UseFlush
	cands := p.fetchCands[:0]
	for _, t := range p.threads {
		if t.stallUntil > now || t.fq.Full() {
			continue
		}
		cands = append(cands, fetchCand{t: t, count: int32(t.icount(p.iq)), gated: p.pol.gated(t, useFlush)})
	}
	if len(cands) == 0 {
		return
	}
	// Insertion sort by (icount, thread id): at most MaxThreads entries,
	// already id-ordered, so this beats sort.Slice and allocates nothing.
	// Ties keep id order because candidates were appended in id order.
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i
		for j > 0 && cands[j-1].count > c.count {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = c
	}

	// FLUSH keeps fetching for at least one thread even when every
	// thread is stalled on an L2 miss (Tullsen & Brown; the paper's §4
	// discussion of MEM workloads depends on this). The exception is
	// part of the FLUSH fetch policy itself: it applies when FLUSH is
	// the base policy, or when opt2's flush mode replaces ICOUNT
	// (which has no miss gating of its own and would otherwise starve).
	// Under STALL/DG/PDG, the base policy's gating keeps governing
	// fetch and flush mode only adds the squashes.
	allGated := true
	for _, c := range cands {
		if !c.gated {
			allGated = false
			break
		}
	}
	ungateOne := -1
	if allGated && (p.pol.kind == PolicyFLUSH || (useFlush && p.pol.kind == PolicyICOUNT)) {
		best := -1
		for i, c := range cands {
			if best < 0 || c.t.outstandingL2 < cands[best].t.outstandingL2 {
				best = i
			}
		}
		ungateOne = best
	}

	slots := p.cfg.FetchWidth
	used := 0
	for i, c := range cands {
		if slots <= 0 || used >= p.cfg.MaxFetchThreads {
			break
		}
		if c.gated && i != ungateOne {
			continue
		}
		slots -= p.fetchThread(c.t, now, slots)
		used++
	}
}

// fetchThread fetches up to maxN instructions for t, returning how many
// were fetched.
func (p *Processor) fetchThread(t *thread, now uint64, maxN int) int {
	// One I-cache access per thread per cycle; a miss stalls the thread
	// until the line arrives.
	res := p.mem.Fetch(t.pc, now)
	if res.ReadyAt > now+uint64(p.cfg.L1I.HitLatency) {
		t.stallUntil = res.ReadyAt
		return 0
	}
	lineMask := uint64(p.cfg.L1I.LineBytes - 1)
	line := t.pc &^ lineMask

	count := 0
	for count < maxN && !t.fq.Full() {
		if t.pc&^lineMask != line {
			break // next line: next cycle
		}
		u, stop := p.fetchOne(t, now)
		t.fqPush(u)
		t.fetched++
		if u.WrongPath {
			t.wrongFetched++
		}
		count++
		if stop {
			break
		}
	}
	return count
}

// fetchOne builds the uop at t.pc, runs branch prediction, advances the
// fetch PC down the predicted path, and reports whether fetch must stop
// (predicted-taken control flow).
func (p *Processor) fetchOne(t *thread, now uint64) (*uarch.Uop, bool) {
	prog := t.stream.Executor().Prog
	in := prog.At(t.pc)

	u := p.pool.Get()
	u.Thread = int32(t.id)
	u.Age = p.age
	u.FetchedAt = now
	u.DecodeReady = now + uint64(p.cfg.DecodeLatency)
	u.ACETag = in.ACETag
	p.age++

	if t.onTrace {
		d := t.stream.At(t.streamPos)
		if d.Static != in {
			panic(fmt.Sprintf("pipeline: fetch desync at pc %#x (oracle %#x)", in.PC, d.Static.PC))
		}
		u.Dyn = *d
		u.StreamPos = t.streamPos
		u.ACE = d.ACE
		if p.oracleTags {
			u.ACETag = d.ACE
		}
		t.streamPos++
	} else {
		u.WrongPath = true
		u.Dyn = trace.DynInst{Static: in}
		if in.Kind.IsMem() {
			u.Dyn.Addr = t.stream.Executor().WrongPathAddr(in)
		}
		if p.oracleTags {
			// An oracle knows wrong-path instructions are harmless.
			u.ACETag = false
		}
	}

	// Branch prediction. Checkpoints are taken before any speculative
	// predictor update so mispredict repair can rewind.
	predNext := in.FallThrough()
	predTaken := false
	switch in.Kind {
	case isa.Branch:
		u.CP = p.bp.Checkpoint(t.id)
		predTaken = p.bp.PredictDirection(t.id, in.PC)
		if predTaken {
			if tgt, ok := p.bp.BTBLookup(in.PC, now); ok {
				predNext = tgt
			} else {
				// Direction says taken but no target is known:
				// the front end cannot redirect.
				predTaken = false
			}
		}
	case isa.Jump:
		u.CP = p.bp.Checkpoint(t.id)
		if tgt, ok := p.bp.BTBLookup(in.PC, now); ok {
			predNext, predTaken = tgt, true
		}
	case isa.Call:
		u.CP = p.bp.Checkpoint(t.id)
		p.bp.Push(t.id, in.FallThrough())
		if tgt, ok := p.bp.BTBLookup(in.PC, now); ok {
			predNext, predTaken = tgt, true
		}
	case isa.Return:
		u.CP = p.bp.Checkpoint(t.id)
		predNext, predTaken = p.bp.Pop(t.id), true
	case isa.Load:
		if p.pol.kind == PolicyPDG && p.pol.pdgPredictMiss(in.PC) {
			u.PDGPredMiss = true
			t.pdgInFlight++
		}
	}
	u.PredTaken, u.PredNext = predTaken, predNext

	if t.onTrace {
		if predNext != u.Dyn.NextPC {
			u.Mispredicted = true
			if t.pendingMispredict != nil {
				panic("pipeline: second in-flight mispredict on correct path")
			}
			t.pendingMispredict = u
			t.onTrace = false
		}
	} else {
		// Wrong path: the prediction defines the (never-verified)
		// outcome.
		u.Dyn.Taken = predTaken
		u.Dyn.NextPC = predNext
	}

	t.pc = predNext
	return u, predTaken // fetch stops at predicted-taken control flow
}
