package iqorg

import (
	"fmt"

	"visasim/internal/config"
)

// Protection enumerates the issue-queue protection modes. Each mode carries
// a cost model (Cost): the fraction of IQ AVF it removes, the extra area per
// queue entry, and the wakeup-latency tax of sitting in the result-broadcast
// path. The zero value is unprotected, so zero-valued inputs mean "today's
// machine".
type Protection uint8

// Registered protection modes, in canonical order.
const (
	None Protection = iota
	Parity
	ECC
	PartialReplication

	// NumProtections is the number of registered protection modes.
	NumProtections = 4
)

func (p Protection) String() string {
	switch p {
	case Parity:
		return config.ProtParity
	case ECC:
		return config.ProtECC
	case PartialReplication:
		return config.ProtPartialRepl
	default:
		return config.ProtNone
	}
}

// ParseProtection maps a config.Machine.IQProtection spelling to its
// Protection. The empty string is the canonical default, none.
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "", config.ProtNone:
		return None, nil
	case config.ProtParity:
		return Parity, nil
	case config.ProtECC:
		return ECC, nil
	case config.ProtPartialRepl:
		return PartialReplication, nil
	}
	return None, fmt.Errorf("iqorg: unknown protection %q", s)
}

// Protections returns every registered mode in canonical order.
func Protections() []Protection {
	return []Protection{None, Parity, ECC, PartialReplication}
}

// ProtCost is the reliability/area/latency tradeoff of one protection mode.
type ProtCost struct {
	// Mitigation is the fraction of unprotected issue-queue AVF the mode
	// removes; reported IQ AVF scales by (1 - Mitigation).
	Mitigation float64
	// AreaPerEntry is the added area per queue entry in explore.AreaProxy
	// units, where an unprotected entry costs 4 units.
	AreaPerEntry float64
	// WakeupLatency is the extra cycles the mode adds to every result
	// broadcast (checkers/correctors sitting in the wakeup path).
	WakeupLatency int
}

// protCosts is the per-mode cost table, indexed by Protection.
//
//   - Parity: one interleaved parity group per entry (~6% storage, 0.25 of a
//     4-unit entry). Detection plus squash-and-refetch recovers strikes on
//     entries that have not issued; late-detected strikes still escape, so
//     mitigation is 70%, not full coverage. Checking overlaps issue, no
//     wakeup tax.
//   - ECC: SEC-DED check bits plus correction logic (~20% of the entry).
//     Single-bit upsets — essentially all soft errors at queue scale — are
//     corrected in place (99%), but the corrector sits in the broadcast
//     path and costs one wakeup cycle (Hardisc pays the same pipeline tax).
//   - Partial replication: duplicate the ACE-dense payload fields and vote,
//     Elzar-style partial TMR. Half the entry doubled is +2 units; fields
//     outside the replicated slice stay exposed, so mitigation is 85% with
//     no added wakeup latency.
var protCosts = [NumProtections]ProtCost{
	None:               {Mitigation: 0, AreaPerEntry: 0, WakeupLatency: 0},
	Parity:             {Mitigation: 0.70, AreaPerEntry: 0.25, WakeupLatency: 0},
	ECC:                {Mitigation: 0.99, AreaPerEntry: 0.80, WakeupLatency: 1},
	PartialReplication: {Mitigation: 0.85, AreaPerEntry: 2.0, WakeupLatency: 0},
}

// Cost returns the mode's cost model. Unknown values cost nothing, like None.
func (p Protection) Cost() ProtCost {
	if int(p) < len(protCosts) {
		return protCosts[p]
	}
	return ProtCost{}
}

// AVFScale returns the factor reported IQ AVF is multiplied by under p.
func (p Protection) AVFScale() float64 { return 1 - p.Cost().Mitigation }

// AreaCost returns the total added area of protecting iqSize entries, in
// explore.AreaProxy units.
func (p Protection) AreaCost(iqSize int) float64 {
	return p.Cost().AreaPerEntry * float64(iqSize)
}
