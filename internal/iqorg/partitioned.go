package iqorg

import (
	"visasim/internal/config"
	"visasim/internal/uarch"
)

// PartitionedOrg is a dynamically partitioned per-thread organization after
// SMTcheck's reverse-engineered SMT issue queue (70 entries, watermark 17):
// entries are allocated from the shared pool, but a thread whose resident
// count has reached the watermark may not dispatch further uops until some of
// its entries issue. This caps how far a stalled thread (a load-miss chain)
// can fill the queue with unissuable, highly-ACE entries — the same pathology
// the paper's DVM attacks reactively, enforced here structurally.
type PartitionedOrg struct {
	q         *uarch.IQ
	watermark int
}

// NewPartitioned wraps q with a per-thread dispatch watermark; 0 selects the
// SMTcheck default clamped to the queue size.
func NewPartitioned(q *uarch.IQ, watermark int) *PartitionedOrg {
	if watermark <= 0 {
		watermark = config.DefaultWatermark
	}
	if watermark > q.Size() {
		watermark = q.Size()
	}
	return &PartitionedOrg{q: q, watermark: watermark}
}

func (o *PartitionedOrg) Kind() Kind           { return Partitioned }
func (o *PartitionedOrg) Name() string         { return config.OrgPartitioned }
func (o *PartitionedOrg) Queue() *uarch.IQ     { return o.q }
func (o *PartitionedOrg) Insert(u *uarch.Uop)  { o.q.Insert(u) }
func (o *PartitionedOrg) Remove(u *uarch.Uop)  { o.q.Remove(u) }
func (o *PartitionedOrg) Wake(u *uarch.Uop)    { o.q.Wake(u) }
func (o *PartitionedOrg) Census() uarch.Census { return o.q.Census() }
func (o *PartitionedOrg) EndCycle(uint64)      {}

// NextBoundary and EndCycleSpan: the watermark is static, so EndCycle
// carries no state and skipped dead cycles need no bookkeeping.
func (o *PartitionedOrg) NextBoundary(uint64) uint64 { return NoBoundary }
func (o *PartitionedOrg) EndCycleSpan(_, _ uint64)   {}

// Watermark returns the per-thread dispatch cap.
func (o *PartitionedOrg) Watermark() int { return o.watermark }

// CanAccept admits a thread only while it holds fewer than watermark entries.
func (o *PartitionedOrg) CanAccept(thread int) bool {
	return o.q.ThreadLen(thread) < o.watermark
}

// Select is age-ordered like the unified queue: SMTcheck's partitioning
// governs allocation, not issue priority.
func (o *PartitionedOrg) Select(sched uarch.Scheduler) []int32 {
	return o.q.ReadyCandidates(sched)
}
