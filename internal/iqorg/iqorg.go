// Package iqorg makes the issue-queue organization a pluggable axis of the
// simulated machine. The paper studies a single design — one shared queue
// with oldest-first (AGE) selection — but the related work spans a space:
// SWQUE-style mode-switching circular/AGE queues, dynamically partitioned
// per-thread queues with dispatch watermarks as reverse-engineered on real
// SMT silicon (SMTcheck: 70 entries, watermark 17), and hardened queues
// trading area and wakeup latency for soft-error mitigation (parity, ECC,
// partial replication à la Elzar's partial TMR).
//
// An Organization wraps the policy layer of the queue — admission, candidate
// selection, end-of-cycle mode bookkeeping — around the storage layer, which
// remains *uarch.IQ for every organization. The pipeline routes its
// insert/wake/select/census traffic through the interface and keeps using the
// underlying queue directly for storage reads (occupancy, per-thread counts,
// slot walks), so the default organization stays byte-identical to the
// pre-interface pipeline.
package iqorg

import (
	"fmt"

	"visasim/internal/config"
	"visasim/internal/uarch"
)

// Kind enumerates the registered issue-queue organizations.
type Kind uint8

// Registered organizations, in canonical order. The zero value is the
// paper's baseline so zero-valued inputs (twin, explore) mean "unchanged".
const (
	UnifiedAGE Kind = iota
	SWQUE
	Partitioned

	// NumKinds is the number of registered organizations.
	NumKinds = 3
)

func (k Kind) String() string {
	switch k {
	case SWQUE:
		return config.OrgSWQUE
	case Partitioned:
		return config.OrgPartitioned
	default:
		return config.OrgUnifiedAGE
	}
}

// ParseKind maps a config.Machine.IQOrg spelling to its Kind. The empty
// string is the canonical default, unified-age.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", config.OrgUnifiedAGE:
		return UnifiedAGE, nil
	case config.OrgSWQUE:
		return SWQUE, nil
	case config.OrgPartitioned:
		return Partitioned, nil
	}
	return UnifiedAGE, fmt.Errorf("iqorg: unknown organization %q", s)
}

// Kinds returns every registered organization in canonical order.
func Kinds() []Kind { return []Kind{UnifiedAGE, SWQUE, Partitioned} }

// Organization is the policy layer of an issue queue. Storage is always the
// wrapped *uarch.IQ; implementations differ in admission (CanAccept),
// candidate ordering (Select), and per-cycle bookkeeping (EndCycle).
//
// The contract mirrors the pipeline's use exactly:
//
//   - Insert/Remove/Wake/Census delegate to the queue and must preserve its
//     semantics (Insert panics on a full queue — dispatch checks CanAccept
//     and occupancy first).
//   - Select returns the cycle's issue candidates as IQ slot indices in
//     priority order (resolve with Queue().At); the returned slice is valid
//     until the next Select call.
//   - CanAccept(thread) is the per-thread admission gate consulted by
//     dispatch in addition to the shared-occupancy check.
//   - EndCycle runs once per simulated cycle after issue and dispatch, and
//     is where mode-switching organizations re-decide.
//   - NextBoundary and EndCycleSpan let the pipeline's dead-cycle
//     skip-ahead jump over runs of cycles in which the machine provably
//     does nothing: NextBoundary bounds how far the clock may jump before
//     EndCycle could change policy state, and EndCycleSpan applies the
//     bookkeeping of the skipped cycles in one call.
type Organization interface {
	Kind() Kind
	Name() string
	// Queue exposes the storage layer for occupancy reads, slot walks,
	// invariant checks, and fault injection.
	Queue() *uarch.IQ

	// Insert, Remove, Wake and Census are storage operations every
	// organization forwards unchanged to Queue(). They complete the
	// interface so standalone drivers (tests, benchmarks) can treat an
	// Organization as a whole issue queue; the pipeline's hot path
	// calls the shared *uarch.IQ directly and dispatches only the
	// policy decisions below through the interface.
	Insert(u *uarch.Uop)
	Remove(u *uarch.Uop)
	Wake(u *uarch.Uop)
	Census() uarch.Census

	// CanAccept, Select and EndCycle are the policy seam — the three
	// decisions that actually differ between organizations: dispatch
	// admission, issue candidate ordering, and per-cycle mode
	// bookkeeping.
	CanAccept(thread int) bool
	Select(sched uarch.Scheduler) []int32
	EndCycle(now uint64)

	// NextBoundary returns the first cycle ≥ now at which EndCycle may
	// change the organization's externally visible policy state
	// (admission or selection behaviour), or NoBoundary for stateless
	// organizations. The pipeline's skip-ahead never jumps the clock
	// past this cycle: the boundary cycle itself is always simulated,
	// so EndCycle runs there exactly as in a cycle-by-cycle execution.
	NextBoundary(now uint64) uint64
	// EndCycleSpan replaces the per-cycle EndCycle calls for the skipped
	// dead cycles [from, until). The caller guarantees the queue did not
	// change during the span and until ≤ NextBoundary(from), so the
	// organization can apply the span's bookkeeping (e.g. an occupancy
	// high-water update against a constant occupancy) in O(1).
	EndCycleSpan(from, until uint64)
}

// NoBoundary is NextBoundary's "never" answer: the organization's EndCycle
// carries no policy state, so skip-ahead needs no cap on its account.
const NoBoundary = ^uint64(0)

// New builds the organization named by m.IQOrg over a fresh IQ of m.IQSize
// entries. The machine is canonicalized first, so empty spellings and a zero
// watermark get their defaults.
func New(m config.Machine) (Organization, error) {
	m = m.Canonical()
	k, err := ParseKind(m.IQOrg)
	if err != nil {
		return nil, err
	}
	return NewKind(k, uarch.NewIQ(m.IQSize), m.IQWatermark), nil
}

// NewKind wraps an existing queue in the organization k. watermark is only
// consulted by Partitioned; pass 0 for the SMTcheck default.
func NewKind(k Kind, q *uarch.IQ, watermark int) Organization {
	switch k {
	case SWQUE:
		return NewSWQUEOrg(q)
	case Partitioned:
		return NewPartitioned(q, watermark)
	default:
		return &Unified{q: q}
	}
}
