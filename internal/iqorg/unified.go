package iqorg

import (
	"visasim/internal/config"
	"visasim/internal/uarch"
)

// Unified is the paper's baseline organization: one shared queue, age-ordered
// selection, no admission policy beyond shared occupancy. Every method is a
// direct delegation, so the pipeline's behaviour through this organization is
// byte-identical to the pre-interface hard-wired queue (pinned by the golden
// and determinism tests).
type Unified struct {
	q *uarch.IQ
}

// NewUnified wraps q in the baseline organization.
func NewUnified(q *uarch.IQ) *Unified { return &Unified{q: q} }

func (o *Unified) Kind() Kind           { return UnifiedAGE }
func (o *Unified) Name() string         { return config.OrgUnifiedAGE }
func (o *Unified) Queue() *uarch.IQ     { return o.q }
func (o *Unified) Insert(u *uarch.Uop)  { o.q.Insert(u) }
func (o *Unified) Remove(u *uarch.Uop)  { o.q.Remove(u) }
func (o *Unified) Wake(u *uarch.Uop)    { o.q.Wake(u) }
func (o *Unified) Census() uarch.Census { return o.q.Census() }
func (o *Unified) CanAccept(int) bool   { return true }
func (o *Unified) EndCycle(uint64)      {}

// NextBoundary and EndCycleSpan: the unified queue keeps no per-cycle
// policy state, so skipped dead cycles need no bookkeeping and no cap.
func (o *Unified) NextBoundary(uint64) uint64 { return NoBoundary }
func (o *Unified) EndCycleSpan(_, _ uint64)   {}

func (o *Unified) Select(sched uarch.Scheduler) []int32 {
	return o.q.ReadyCandidates(sched)
}
