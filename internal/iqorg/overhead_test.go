package iqorg

import (
	"testing"
	"time"

	"visasim/internal/isa"
	"visasim/internal/trace"
	"visasim/internal/uarch"
)

// overheadPool builds a pool of synthetic uops across four threads, one
// per queue slot, odd-indexed uops arriving with a pending source.
func overheadPool(n int) []*uarch.Uop {
	in := &isa.Inst{Kind: isa.IntALU, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	pool := make([]*uarch.Uop, n)
	for i := range pool {
		pool[i] = &uarch.Uop{Dyn: trace.DynInst{Static: in}, Thread: int32(i % 4), IQSlot: -1, LSQSlot: -1}
	}
	return pool
}

// overheadPass is one fill/wake/drain op mix shaped like the pipeline's
// hot path: storage operations (Insert, Wake, Remove) always go straight
// to the shared queue; the policy decisions (CanAccept, Select, EndCycle)
// dispatch through the Organization interface when org is non-nil and are
// hand-inlined to the unified-AGE behaviour when it is nil — reproducing
// the seed's pre-extraction loop.
func overheadPass(org Organization, q *uarch.IQ, pool []*uarch.Uop, age uint64) uint64 {
	const issueWidth = 8
	for i, u := range pool {
		u.Age = age + uint64(i)
		u.SrcPending = int8(i & 1)
		if org != nil && !org.CanAccept(int(u.Thread)) {
			u.SrcPending = 0
			continue
		}
		q.Insert(u)
	}
	for _, u := range pool {
		if u.IQSlot >= 0 && u.SrcPending != 0 {
			u.SrcPending = 0
			q.Wake(u)
		}
	}
	cycles := uint64(0)
	for q.Len() > 0 {
		var sel []int32
		if org != nil {
			sel = org.Select(uarch.SchedOldestFirst)
		} else {
			sel = q.ReadyCandidates(uarch.SchedOldestFirst)
		}
		if len(sel) > issueWidth {
			sel = sel[:issueWidth]
		}
		for _, slot := range sel {
			q.Remove(q.At(int(slot)))
		}
		if org != nil {
			org.EndCycle(age + cycles)
		}
		cycles++
	}
	return cycles
}

// newOrgOpaque launders the constructor through a package-level variable so
// the compiler cannot devirtualize the interface calls under test.
var newOrgOpaque = func(q *uarch.IQ) Organization { return NewUnified(q) }

// TestInterfaceOverhead pins the tentpole's performance bar: routing the
// issue-queue policy seam (CanAccept, Select, EndCycle) through the
// Organization interface must cost less than 5% over the seed's direct
// unified-AGE loop on the bare *uarch.IQ. Paired best-of-N ratio timing
// keeps the comparison robust to scheduler noise and machine load.
func TestInterfaceOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short mode")
	}
	const (
		iqSize   = 96
		passes   = 1000 // ~5ms per trial: large enough to time reliably
		trials   = 12
		attempts = 5 // re-measure on a miss; fail only if consistently over
	)
	pool := overheadPool(iqSize)

	// Warm both paths once so neither trial set pays first-touch costs.
	qDirect := uarch.NewIQ(iqSize)
	org := newOrgOpaque(uarch.NewIQ(iqSize))
	overheadPass(nil, qDirect, pool, 0)
	overheadPass(org, org.Queue(), pool, uint64(iqSize)+1)

	// The estimator targets the *intrinsic* overhead, so it must survive
	// the suite running packages in parallel, where contention inflates
	// indirect calls beyond their quiet-machine cost. Variants alternate
	// trial by trial and each takes its minimum block time across the
	// attempt — its quietest window — so a load spike has to cover every
	// window of one variant to skew the ratio; re-measuring on a miss
	// (attempts) rides out sustained spikes. BenchmarkIQOrganizations
	// keeps the absolute numbers visible for trend review.
	measure := func() float64 {
		direct, viaOrg := time.Duration(1<<62), time.Duration(1<<62)
		for trial := 0; trial < trials; trial++ {
			age := uint64(0)
			t0 := time.Now()
			for p := 0; p < passes; p++ {
				age += uint64(iqSize) + overheadPass(nil, qDirect, pool, age)
			}
			if d := time.Since(t0); d < direct {
				direct = d
			}
			t0 = time.Now()
			for p := 0; p < passes; p++ {
				age += uint64(iqSize) + overheadPass(org, org.Queue(), pool, age)
			}
			if d := time.Since(t0); d < viaOrg {
				viaOrg = d
			}
		}
		return float64(viaOrg)/float64(direct) - 1
	}

	var overhead float64
	for attempt := 1; attempt <= attempts; attempt++ {
		overhead = measure()
		t.Logf("attempt %d: interface overhead %+.2f%% (per-variant best of %d trials)",
			attempt, 100*overhead, trials)
		if overhead < 0.05 {
			return
		}
	}
	t.Errorf("Organization interface overhead %.2f%% >= 5%% on %d consecutive measurements",
		100*overhead, attempts)
}
