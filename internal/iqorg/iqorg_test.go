package iqorg

import (
	"math"
	"testing"

	"visasim/internal/config"
	"visasim/internal/isa"
	"visasim/internal/trace"
	"visasim/internal/uarch"
)

func mkUop(age uint64, thread int32) *uarch.Uop {
	in := &isa.Inst{Kind: isa.IntALU, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	return &uarch.Uop{
		Dyn:     trace.DynInst{Static: in},
		Thread:  thread,
		Age:     age,
		IQSlot:  -1,
		LSQSlot: -1,
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != UnifiedAGE {
		t.Errorf("empty spelling must parse to UnifiedAGE, got %v, %v", k, err)
	}
	if _, err := ParseKind("ring"); err == nil {
		t.Error("unknown organization must not parse")
	}
	if len(Kinds()) != NumKinds {
		t.Errorf("Kinds() lists %d of %d kinds", len(Kinds()), NumKinds)
	}
}

func TestParseProtectionRoundTrip(t *testing.T) {
	for _, p := range Protections() {
		got, err := ParseProtection(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtection(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParseProtection(""); err != nil || p != None {
		t.Errorf("empty spelling must parse to None, got %v, %v", p, err)
	}
	if _, err := ParseProtection("tmr"); err == nil {
		t.Error("unknown protection must not parse")
	}
	if len(Protections()) != NumProtections {
		t.Errorf("Protections() lists %d of %d modes", len(Protections()), NumProtections)
	}
}

func TestProtectionCostModel(t *testing.T) {
	if c := None.Cost(); c != (ProtCost{}) {
		t.Errorf("None must cost nothing, got %+v", c)
	}
	for _, p := range []Protection{Parity, ECC, PartialReplication} {
		c := p.Cost()
		if c.Mitigation <= 0 || c.Mitigation >= 1 {
			t.Errorf("%s mitigation %v out of (0,1)", p, c.Mitigation)
		}
		if c.AreaPerEntry <= 0 {
			t.Errorf("%s must cost area", p)
		}
		if s := p.AVFScale(); s != 1-c.Mitigation {
			t.Errorf("%s AVFScale %v != 1-mitigation", p, s)
		}
	}
	// The modes must present a real tradeoff: ECC mitigates the most and is
	// the only mode taxing the wakeup path; replication burns the most area.
	if !(ECC.Cost().Mitigation > PartialReplication.Cost().Mitigation &&
		PartialReplication.Cost().Mitigation > Parity.Cost().Mitigation) {
		t.Error("mitigation order must be ecc > partial-replication > parity")
	}
	if !(PartialReplication.Cost().AreaPerEntry > ECC.Cost().AreaPerEntry &&
		ECC.Cost().AreaPerEntry > Parity.Cost().AreaPerEntry) {
		t.Error("area order must be partial-replication > ecc > parity")
	}
	if ECC.Cost().WakeupLatency != 1 || Parity.Cost().WakeupLatency != 0 {
		t.Error("only ECC taxes the wakeup path")
	}
	if a := ECC.AreaCost(96); math.Abs(a-76.8) > 1e-9 {
		t.Errorf("ECC area for 96 entries = %v, want 76.8", a)
	}
	if a := None.AreaCost(96); a != 0 {
		t.Errorf("None area must be 0, got %v", a)
	}
}

func TestNewSelectsOrganization(t *testing.T) {
	for _, tc := range []struct {
		org  string
		want Kind
	}{
		{"", UnifiedAGE},
		{config.OrgUnifiedAGE, UnifiedAGE},
		{config.OrgSWQUE, SWQUE},
		{config.OrgPartitioned, Partitioned},
	} {
		m := config.Default()
		m.IQOrg = tc.org
		o, err := New(m)
		if err != nil {
			t.Fatalf("New(%q): %v", tc.org, err)
		}
		if o.Kind() != tc.want {
			t.Errorf("New(%q).Kind() = %v, want %v", tc.org, o.Kind(), tc.want)
		}
		if o.Queue().Size() != m.IQSize {
			t.Errorf("New(%q) queue size %d, want %d", tc.org, o.Queue().Size(), m.IQSize)
		}
	}
	m := config.Default()
	m.IQOrg = "bogus"
	if _, err := New(m); err == nil {
		t.Error("New must reject unknown organizations")
	}
}

// TestUnifiedDelegates pins that the baseline organization is a transparent
// wrapper: same census, same candidate set and order as the bare queue.
func TestUnifiedDelegates(t *testing.T) {
	o := NewUnified(uarch.NewIQ(8))
	var uops []*uarch.Uop
	for i := 0; i < 4; i++ {
		u := mkUop(uint64(i), int32(i%2))
		u.SrcPending = 1
		o.Insert(u)
		uops = append(uops, u)
	}
	if c := o.Census(); c.Waiting != 4 || c.Ready != 0 {
		t.Fatalf("census %+v after 4 waiting inserts", c)
	}
	for _, u := range uops {
		u.SrcPending = 0
		o.Wake(u)
	}
	cands := o.Select(uarch.SchedOldestFirst)
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want 4", len(cands))
	}
	for i, slot := range cands {
		u := o.Queue().At(int(slot))
		if u == nil || u.Age != uint64(i) {
			t.Fatalf("candidates not age-ordered at position %d: %+v", i, u)
		}
	}
	if !o.CanAccept(0) || !o.CanAccept(7) {
		t.Error("unified admission must be unconditional")
	}
	o.Remove(uops[0])
	if o.Queue().Len() != 3 {
		t.Error("remove must delegate")
	}
}

// TestSWQUEModes pins the mode machine: starts circular with 3/4 capacity and
// strict oldest-first selection, switches to AGE after a high-occupancy
// window, and back after a quiet one.
func TestSWQUEModes(t *testing.T) {
	o := NewSWQUEOrg(uarch.NewIQ(8)) // circCap = 6
	if !o.CircularMode() {
		t.Fatal("must start in circular mode")
	}
	var uops []*uarch.Uop
	for i := 0; i < 6; i++ {
		u := mkUop(uint64(i), 0)
		u.ACETag = i%2 == 0
		o.Insert(u)
		uops = append(uops, u)
	}
	if o.CanAccept(0) {
		t.Fatal("circular mode must refuse dispatch at 3/4 occupancy")
	}
	// Circular mode ignores VISA's ACE-tag partitioning: candidates stay in
	// pure age order even though tagged and untagged uops interleave.
	cands := o.Select(uarch.SchedVISA)
	for i, slot := range cands {
		if u := o.Queue().At(int(slot)); u.Age != uint64(i) {
			t.Fatalf("circular VISA select reordered: age %d at %d", u.Age, i)
		}
	}
	// A window that saw occupancy at circCap switches to AGE mode.
	o.EndCycle(swqueWindow - 1)
	if o.CircularMode() {
		t.Fatal("high-occupancy window must switch to AGE mode")
	}
	if !o.CanAccept(0) {
		t.Fatal("AGE mode admits up to full occupancy")
	}
	age := o.Select(uarch.SchedVISA)
	if len(age) != 6 ||
		!o.Queue().At(int(age[0])).ACETag ||
		o.Queue().At(int(age[len(age)-1])).ACETag {
		t.Fatal("AGE mode must honour VISA partitioning (ACE-tagged first)")
	}
	// Drain and run a quiet window: back to circular.
	for _, u := range uops {
		o.Remove(u)
	}
	for c := uint64(swqueWindow); c < 2*swqueWindow; c++ {
		o.EndCycle(c)
	}
	if !o.CircularMode() {
		t.Fatal("quiet window must switch back to circular mode")
	}
	if o.Switches() != 2 {
		t.Fatalf("switch count %d, want 2", o.Switches())
	}
}

// TestPartitionedWatermark pins per-thread admission and the SMTcheck
// defaults.
func TestPartitionedWatermark(t *testing.T) {
	o := NewPartitioned(uarch.NewIQ(70), 0)
	if o.Watermark() != config.DefaultWatermark {
		t.Fatalf("default watermark %d, want %d", o.Watermark(), config.DefaultWatermark)
	}
	small := NewPartitioned(uarch.NewIQ(8), 0)
	if small.Watermark() != 8 {
		t.Fatalf("watermark must clamp to queue size, got %d", small.Watermark())
	}

	o = NewPartitioned(uarch.NewIQ(16), 3)
	age := uint64(0)
	for i := 0; i < 3; i++ {
		if !o.CanAccept(1) {
			t.Fatalf("thread 1 refused below watermark at %d entries", i)
		}
		o.Insert(mkUop(age, 1))
		age++
	}
	if o.CanAccept(1) {
		t.Fatal("thread 1 must be refused at its watermark")
	}
	if !o.CanAccept(0) {
		t.Fatal("other threads must stay admissible")
	}
	u := mkUop(age, 0)
	o.Insert(u)
	o.Remove(u)
	if !o.CanAccept(0) {
		t.Fatal("thread 0 admissible after its entry drains")
	}
}
