package iqorg

import (
	"visasim/internal/config"
	"visasim/internal/uarch"
)

// SWQUE mode-switching parameters.
const (
	// swqueWindow is the decision interval: the queue re-picks its mode
	// every window from the occupancy high-water of the previous window.
	swqueWindow = 1024
	// swqueCircNum/Den bound the circular mode's usable capacity at 3/4
	// of the queue: a circular FIFO reclaims slots only in allocation
	// order, so out-of-order completion leaves holes that age-matrix
	// compaction would have reused.
	swqueCircNum = 3
	swqueCircDen = 4
)

// SWQUEOrg is a mode-switching organization after SWQUE: in low-occupancy
// phases it behaves as a circular FIFO — cheaper wakeup/select hardware,
// modelled here as strict oldest-first selection (no ACE-tag reordering even
// under the VISA scheduler, since a circular queue cannot reorder) and a
// usable capacity of 3/4 of the entries (slot-reclamation holes). When a
// window's occupancy high-water reaches the circular capacity the queue
// switches to full AGE-matrix behaviour, identical to Unified, and switches
// back once demand subsides.
type SWQUEOrg struct {
	q *uarch.IQ

	circ      bool // current mode: circular FIFO vs AGE matrix
	circCap   int  // usable entries in circular mode
	highWater int  // occupancy high-water in the current window
	switches  int  // mode transitions (telemetry/testing aid)
}

// NewSWQUEOrg wraps q in the mode-switching organization, starting in the
// circular mode (the reset state is empty, hence low-occupancy).
func NewSWQUEOrg(q *uarch.IQ) *SWQUEOrg {
	cap := q.Size() * swqueCircNum / swqueCircDen
	if cap < 1 {
		cap = 1
	}
	return &SWQUEOrg{q: q, circ: true, circCap: cap}
}

func (o *SWQUEOrg) Kind() Kind           { return SWQUE }
func (o *SWQUEOrg) Name() string         { return config.OrgSWQUE }
func (o *SWQUEOrg) Queue() *uarch.IQ     { return o.q }
func (o *SWQUEOrg) Insert(u *uarch.Uop)  { o.q.Insert(u) }
func (o *SWQUEOrg) Remove(u *uarch.Uop)  { o.q.Remove(u) }
func (o *SWQUEOrg) Wake(u *uarch.Uop)    { o.q.Wake(u) }
func (o *SWQUEOrg) Census() uarch.Census { return o.q.Census() }

// CircularMode reports the current mode (testing/telemetry aid).
func (o *SWQUEOrg) CircularMode() bool { return o.circ }

// Switches returns the number of mode transitions so far.
func (o *SWQUEOrg) Switches() int { return o.switches }

// CanAccept gates dispatch at the circular mode's reduced capacity; the AGE
// mode admits up to the full queue like Unified.
func (o *SWQUEOrg) CanAccept(int) bool {
	return !o.circ || o.q.Len() < o.circCap
}

// Select returns age-ordered candidates. The circular mode cannot reorder,
// so it ignores the VISA scheduler's ACE-tag partitioning and issues strictly
// oldest-first.
func (o *SWQUEOrg) Select(sched uarch.Scheduler) []int32 {
	if o.circ {
		return o.q.ReadyCandidates(uarch.SchedOldestFirst)
	}
	return o.q.ReadyCandidates(sched)
}

// EndCycle tracks the window's occupancy high-water and re-picks the mode at
// window boundaries: AGE when demand reached the circular capacity, circular
// otherwise.
func (o *SWQUEOrg) EndCycle(now uint64) {
	if l := o.q.Len(); l > o.highWater {
		o.highWater = l
	}
	if now%swqueWindow != swqueWindow-1 {
		return
	}
	wantCirc := o.highWater < o.circCap
	if wantCirc != o.circ {
		o.circ = wantCirc
		o.switches++
	}
	o.highWater = 0
}

// NextBoundary returns the next window-boundary cycle (the only cycle at
// which EndCycle can switch modes). The pipeline's skip-ahead never jumps
// past it, so the boundary's EndCycle always runs cycle-exactly.
func (o *SWQUEOrg) NextBoundary(now uint64) uint64 {
	return now - now%swqueWindow + swqueWindow - 1
}

// EndCycleSpan folds [from, until) dead cycles into the window bookkeeping:
// the occupancy is constant across a skipped span and the span never
// crosses a window boundary (the caller caps at NextBoundary), so the only
// effect of the elided EndCycle calls is a single high-water update.
func (o *SWQUEOrg) EndCycleSpan(from, until uint64) {
	if until <= from {
		return
	}
	if l := o.q.Len(); l > o.highWater {
		o.highWater = l
	}
}
